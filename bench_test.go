package yat

// One benchmark per experiment of EXPERIMENTS.md (the paper has no
// quantitative tables; every figure and performance claim maps to a
// benchmark here — see DESIGN.md §4), plus ablations for the design
// choices called out in DESIGN.md §6.

import (
	"fmt"
	"testing"

	"yat/internal/compose"
	"yat/internal/engine"
	"yat/internal/mediator"
	"yat/internal/pattern"
	"yat/internal/source"
	"yat/internal/tree"
	"yat/internal/workload"
	"yat/internal/yatl"
)

func mustProg(b *testing.B, src string) *Program {
	b.Helper()
	p, err := ParseProgram(src)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func mustRunB(b *testing.B, p *Program, s *Store) *Result {
	b.Helper()
	r, err := Run(p, s, nil)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// --- E1: Figure 1 scenario ------------------------------------------------

func BenchmarkFig1Scenario(b *testing.B) {
	first := mustProg(b, Rules1And2)
	web := mustProg(b, WebRules)
	inputs := workload.BrochureStore(20, 3, 10, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mid := mustRunB(b, first, inputs)
		interm := NewStore()
		for _, e := range mid.Outputs.Entries() {
			interm.Put(e.Name, e.Tree)
		}
		res := mustRunB(b, web, interm)
		if _, err := ExportHTML(res.Outputs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: Figure 2 instantiation chain --------------------------------------

func BenchmarkFig2Instantiation(b *testing.B) {
	golf := pattern.GolfModel()
	odmg := ODMGModel()
	car := CarSchemaModel()
	yatM := YatModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := InstanceOf(golf, car); err != nil {
			b.Fatal(err)
		}
		if err := InstanceOf(car, odmg); err != nil {
			b.Fatal(err)
		}
		if err := InstanceOf(odmg, yatM); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: Figure 3 / Rule 1 scaling ------------------------------------------

func BenchmarkFig3Rule1(b *testing.B) {
	prog := mustProg(b, "program p\n"+yatl.Rule1Source)
	for _, n := range []int{10, 100, 1000} {
		store := workload.BrochureStore(n, 3, 20, 42)
		b.Run(fmt.Sprintf("brochures=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustRunB(b, prog, store)
			}
		})
	}
}

// --- E5: Rule 3 heterogeneous join ------------------------------------------

func BenchmarkRule3Join(b *testing.B) {
	prog := mustProg(b, "program p\n"+yatl.Rule3Source)
	for _, n := range []int{10, 50, 200} {
		pool := workload.Suppliers(n/2+2, 7)
		brochures := workload.Brochures(n, 2, pool, 7)
		db := workload.DealerDatabase(brochures, pool, 7)
		store := NewStore()
		for i, br := range brochures {
			store.Put(PlainName(fmt.Sprintf("b%d", i+1)), br.Tree())
		}
		for _, e := range ImportRelational(db).Entries() {
			store.Put(e.Name, e.Tree)
		}
		b.Run(fmt.Sprintf("brochures=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustRunB(b, prog, store)
			}
		})
	}
}

// --- E6: Rule 4 ordered grouping --------------------------------------------

func BenchmarkRule4Grouping(b *testing.B) {
	prog := mustProg(b, "program p\n"+yatl.Rule4Source)
	store := workload.BrochureStore(100, 8, 40, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustRunB(b, prog, store)
	}
}

// --- E7: Figure 4 transpose ---------------------------------------------------

func BenchmarkFig4Transpose(b *testing.B) {
	prog := mustProg(b, TransposeRule)
	for _, n := range []int{8, 32, 64} {
		store := NewStore()
		store.Put(PlainName("m"), workload.MatrixTree(n, n))
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustRunB(b, prog, store)
			}
		})
	}
}

// --- E8: the Web program ------------------------------------------------------

func BenchmarkWebProgram(b *testing.B) {
	prog := mustProg(b, WebRules)
	for _, n := range []int{5, 25, 100} {
		store := workload.ODMGStore(n, n/2+1, 3, 11)
		b.Run(fmt.Sprintf("cars=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustRunB(b, prog, store)
			}
		})
	}
}

// --- E9: deriving WebCar --------------------------------------------------------

func BenchmarkInstantiateWebCar(b *testing.B) {
	web := mustProg(b, WebRules)
	env := CarSchemaModel().Merge(ODMGModel())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Instantiate(web, pattern.PcarPattern(), &InstantiateOptions{Model: env}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E10: hierarchy dispatch ------------------------------------------------------

func BenchmarkHierarchyDispatch(b *testing.B) {
	// Dispatching through the six-rule Web hierarchy vs a program
	// where only the generic Web2 exists: the hierarchy adds the
	// specificity checks but converts objects the generic rule
	// cannot.
	full := mustProg(b, WebRules)
	store := workload.ODMGStore(25, 13, 3, 11)
	b.Run("full-hierarchy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mustRunB(b, full, store)
		}
	})
	generic := mustProg(b, `
program web2only
`+yatl.ODMGModelSource+`
rule Web2 {
  head HtmlElement(Pany) = S
  from Pany = Data
  let S = data_to_string(Data)
}
`)
	b.Run("generic-only", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mustRunB(b, generic, store)
		}
	})
}

// --- E11: composed vs sequential (the §4.3 claim) -------------------------------

func BenchmarkComposedVsSequential(b *testing.B) {
	first := mustProg(b, Rules1And2Typed)
	second := mustProg(b, WebRules)
	composed, err := ComposePrograms(first, second, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{10, 50, 200} {
		inputs := workload.BrochureStore(n, 3, n/2+2, 5)
		b.Run(fmt.Sprintf("sequential/brochures=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mid := mustRunB(b, first, inputs)
				interm := NewStore()
				for _, e := range mid.Outputs.Entries() {
					interm.Put(e.Name, e.Tree)
				}
				mustRunB(b, second, interm)
			}
		})
		b.Run(fmt.Sprintf("composed/brochures=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustRunB(b, composed, inputs)
			}
		})
	}
}

// --- E12: typing ------------------------------------------------------------------

func BenchmarkSignatureInference(b *testing.B) {
	prog := mustProg(b, WebRules)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Infer(prog, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks and ablations (DESIGN.md §6) ---------------------------------

func BenchmarkParseProgram(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseProgram(WebRules); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatcherRule1(b *testing.B) {
	rule, err := ParseRule(trimLead(yatl.Rule1Source))
	if err != nil {
		b.Fatal(err)
	}
	m := &engine.Matcher{}
	store := workload.BrochureStore(1, 8, 8, 1)
	input, _ := store.Get(PlainName("b1"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bs := m.MatchTree(rule.Body[0].Tree, input); len(bs) == 0 {
			b.Fatal("no match")
		}
	}
}

func trimLead(s string) string {
	for len(s) > 0 && (s[0] == '\n' || s[0] == ' ') {
		s = s[1:]
	}
	return s
}

// Ablation: cached conformance checking (the matcher's strategy) vs
// rebuilding the ground model per check (the naive pattern.Conforms).
func BenchmarkConformanceCachedVsUncached(b *testing.B) {
	store := workload.ODMGStore(50, 25, 3, 9)
	model := CarSchemaModel()
	c1, _ := store.Get(PlainName("c1"))
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !Conforms(c1, store, model, "Pcar") {
				b.Fatal("should conform")
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		checker := pattern.NewConformanceChecker(store, model)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !checker.Conforms(c1, "Pcar") {
				b.Fatal("should conform")
			}
		}
	})
}

// Ablation: Skolem identity keying — canonical Name.Key encoding cost
// for plain, atom-argument and subtree-argument identities.
func BenchmarkSkolemKeying(b *testing.B) {
	subtree := workload.MatrixTree(4, 4)
	names := []Name{
		PlainName("s1"),
		SkolemName("Psup", tree.String("VW center")),
		SkolemName("HtmlElement", tree.TreeVal{Root: subtree}),
	}
	labels := []string{"plain", "atom-arg", "subtree-arg"}
	for i, n := range names {
		b.Run(labels[i], func(b *testing.B) {
			b.ReportAllocs()
			for j := 0; j < b.N; j++ {
				if n.Key() == "" {
					b.Fatal("empty key")
				}
			}
		})
	}
}

// Ablation: the binding join strategy — hash join vs the naive
// Cartesian product with consistency filtering (Rule 3's shape).
func BenchmarkJoinStrategies(b *testing.B) {
	mk := func(n int, key string) []engine.Binding {
		out := make([]engine.Binding, n)
		for i := range out {
			out[i] = engine.Binding{
				key:   tree.Int(int64(i % 50)),
				"pay": tree.String(fmt.Sprintf("row-%d", i)),
			}
		}
		return out
	}
	as := mk(400, "K")
	bs := mk(400, "K")
	b.Run("hash-join", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := engine.HashJoinForBench(as, bs); len(got) == 0 {
				b.Fatal("empty join")
			}
		}
	})
	b.Run("nested-loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := engine.ProductForBench(as, bs); len(got) == 0 {
				b.Fatal("empty join")
			}
		}
	})
}

// Composition setup cost (one-time, amortized over runs).
func BenchmarkComposeSetup(b *testing.B) {
	first := mustProg(b, Rules1And2Typed)
	second := mustProg(b, WebRules)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComposePrograms(first, second, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// SGML import path: parse + validate + convert.
func BenchmarkSGMLImport(b *testing.B) {
	docs := workload.BrochureDocs(50, 3, 20, 13)
	opts := &SGMLOptions{InferTypes: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ImportSGML(docs, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// compose.Combine is cheap; included to round out §4 coverage.
func BenchmarkCombine(b *testing.B) {
	web := mustProg(b, WebRules)
	sgml := mustProg(b, Rules1And2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := compose.Combine("all", web, sgml); len(p.Rules) != 8 {
			b.Fatal("combine lost rules")
		}
	}
}

// --- E13: the parallel engine -------------------------------------------------

// benchParallelism sweeps the engine's worker-pool width on one
// workload. The parallelism=1 entry exercises the sequential path;
// speedup claims compare parallelism=N against it on an N-core
// runner. Outputs are byte-identical at every width (see
// TestParallelByteIdenticalOnWorkloads), so this measures pure
// scheduling gain.
func benchParallelism(b *testing.B, prog *Program, store *Store) {
	b.Helper()
	for _, par := range []int{1, 2, 4, 8} {
		name := fmt.Sprintf("parallelism=%d", par)
		if par == 1 {
			name = "sequential"
		}
		opts := &RunOptions{Parallelism: par}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(prog, store, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelBrochure is the speedup gate of the parallel
// engine: Rules 1+2 over a large brochure store.
func BenchmarkParallelBrochure(b *testing.B) {
	benchParallelism(b, mustProg(b, Rules1And2), workload.BrochureStore(200, 3, 30, 42))
}

// BenchmarkParallelCarDealer sweeps the heterogeneous-join workload
// (Rule 3 over brochures × relational rows).
func BenchmarkParallelCarDealer(b *testing.B) {
	n := 120
	pool := workload.Suppliers(n/2+2, 7)
	brochures := workload.Brochures(n, 2, pool, 7)
	db := workload.DealerDatabase(brochures, pool, 7)
	store := NewStore()
	for i, br := range brochures {
		store.Put(PlainName(fmt.Sprintf("b%d", i+1)), br.Tree())
	}
	for _, e := range ImportRelational(db).Entries() {
		store.Put(e.Name, e.Tree)
	}
	benchParallelism(b, mustProg(b, "program p\n"+yatl.Rule3Source), store)
}

// BenchmarkParallelWeb sweeps the recursive Web program, whose
// round-by-round activation discovery bounds the per-round fan-out.
func BenchmarkParallelWeb(b *testing.B) {
	benchParallelism(b, mustProg(b, WebRules), workload.ODMGStore(100, 51, 3, 11))
}

// BenchmarkMediatorConcurrentClients measures a warm mediator under
// many concurrent askers (b.RunParallel scales clients with
// GOMAXPROCS) — the serving scenario the thread-safe materialization
// exists for.
func BenchmarkMediatorConcurrentClients(b *testing.B) {
	prog := mustProg(b, Rules1And2)
	inputs := workload.BrochureStore(50, 3, 20, 21)
	m := NewMediator(prog, inputs, nil)
	if _, err := m.Ask(`X`); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := m.Ask(`class -> supplier < -> name -> N, -> city -> C, -> zip -> Z >`, "Psup"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Mediator query over the virtual target (extension S19): first query
// pays the materialization, later queries are matching only.
func BenchmarkMediatorQuery(b *testing.B) {
	prog := mustProg(b, Rules1And2)
	inputs := workload.BrochureStore(50, 3, 20, 21)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewMediator(prog, inputs, nil)
			if _, err := m.Ask(`class -> supplier < -> name -> N, -> city -> C, -> zip -> Z >`, "Psup"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		m := NewMediator(prog, inputs, nil)
		if _, err := m.Ask(`X`); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Ask(`class -> supplier < -> name -> N, -> city -> C, -> zip -> Z >`, "Psup"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E14: the trace layer ----------------------------------------------------

// BenchmarkRunNilSink is the zero-overhead gate for the trace layer:
// with Options.Trace nil the engine must construct no events, take no
// timestamps and allocate nothing on behalf of tracing, so this must
// stay within noise of the pre-trace engine (CI's bench-guard job
// compares it against the merge base with benchstat).
func BenchmarkRunNilSink(b *testing.B) {
	prog := mustProg(b, Rules1And2)
	store := workload.BrochureStore(60, 3, 15, 42)
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			opts := &RunOptions{Parallelism: par}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(prog, store, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunWithProfile prices the enabled path on the same
// workload as BenchmarkRunNilSink: the delta between the two is the
// full cost of observability (event construction, timestamps, and the
// Profile's locked aggregation).
func BenchmarkRunWithProfile(b *testing.B) {
	prog := mustProg(b, Rules1And2)
	store := workload.BrochureStore(60, 3, 15, 42)
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallelism=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				profile := NewTraceProfile()
				if _, err := Run(prog, store, &RunOptions{Parallelism: par, Trace: profile}); err != nil {
					b.Fatal(err)
				}
				if profile.Events() == 0 {
					b.Fatal("profile saw no events")
				}
			}
		})
	}
}

// BenchmarkSelectiveAsk is the demand-driven payoff experiment: a
// mediator over a many-view program answers a single-view query. The
// full strategy materializes every view on the first ask; the demand
// strategy slices to the one rule the query needs. CI enforces the
// gap (demand-cold must beat full-cold; see the bench-guard job).
func BenchmarkSelectiveAsk(b *testing.B) {
	prog := mustProg(b, workload.SelectiveProgram(8))
	inputs := workload.BrochureStore(120, 3, 30, 7)
	const pat = `view < -> name -> N, -> city -> C, -> zip -> Z >`
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewMediator(prog, inputs)
			if _, err := m.Ask(pat, "Pview1"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("demand", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewMediator(prog, inputs, WithDemandDriven(true))
			if _, err := m.Ask(pat, "Pview1"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("demand-warm", func(b *testing.B) {
		m := NewMediator(prog, inputs, WithDemandDriven(true))
		if _, err := m.Ask(pat, "Pview1"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Ask(pat, "Pview1"); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The pure cache-hit floor: warm demand cache, cached parsed
	// pattern, and a pattern that matches nothing — the ask path's
	// fixed overhead with zero answer construction.
	b.Run("demand-warm-nomatch", func(b *testing.B) {
		m := NewMediator(prog, inputs, WithDemandDriven(true))
		const miss = `nosuchroot < -> name -> N >`
		if _, err := m.Ask(miss, "Pview1"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Ask(miss, "Pview1"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestSelectiveAskCacheHitAllocs pins the demand-mode cache-hit ask to
// at most 2 allocations: the pattern must come from the parse cache,
// the repeat of an identical ask must serve from the answer memo (one
// allocation — the defensive copy of the memoized slice), and a
// no-match repeat must build nothing at all.
func TestSelectiveAskCacheHitAllocs(t *testing.T) {
	prog, err := ParseProgram(workload.SelectiveProgram(8))
	if err != nil {
		t.Fatal(err)
	}
	inputs := workload.BrochureStore(60, 3, 20, 7)
	m := NewMediator(prog, inputs, WithDemandDriven(true))
	for _, tc := range []struct {
		name    string
		pattern string
		budget  float64
	}{
		{"match", `view < -> name -> N, -> city -> C, -> zip -> Z >`, 2},
		{"nomatch", `nosuchroot < -> name -> N >`, 0},
	} {
		if _, err := m.Ask(tc.pattern, "Pview1"); err != nil {
			t.Fatal(err)
		}
		got := testing.AllocsPerRun(200, func() {
			if _, err := m.Ask(tc.pattern, "Pview1"); err != nil {
				t.Fatal(err)
			}
		})
		if got > tc.budget {
			t.Errorf("%s: demand cache-hit ask allocates %.1f times per op, want <= %.0f", tc.name, got, tc.budget)
		}
	}
}

// BenchmarkSourcedAsk measures the fault-tolerant source layer's cost
// on the ask path: the brochure store federated across k sources,
// served through the full decorator chain, cold ask per iteration
// (Invalidate forces the refetch). "direct" is the no-source-layer
// baseline on the same merged store.
func BenchmarkSourcedAsk(b *testing.B) {
	prog := mustProg(b, yatl.SGMLToODMGSource)
	store := workload.BrochureStore(64, 2, 16, 42)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := mediator.New(prog, store)
			if _, err := m.Ask(`X`, "Psup"); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, k := range []int{1, 4} {
		parts := workload.SplitStore(store, k)
		b.Run(fmt.Sprintf("sources-%d", k), func(b *testing.B) {
			clock := source.NewFakeClock()
			srcs := make([]source.Source, k)
			for j, p := range parts {
				srcs[j] = source.WithCache(
					source.WithBreaker(
						source.WithRetry(source.Static(fmt.Sprintf("s%d", j), p),
							source.RetryOptions{Clock: clock}),
						source.BreakerOptions{Clock: clock}),
					source.CacheOptions{Clock: clock})
			}
			m := mediator.New(prog, nil, mediator.WithSources(srcs...))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Ask(`X`, "Psup"); err != nil {
					b.Fatal(err)
				}
				m.Invalidate()
			}
		})
	}
}
