// Yatbench regenerates the experiment series of EXPERIMENTS.md: for
// every figure of the paper it runs the corresponding conversion at a
// sweep of sizes and prints measured counts and timings. The paper
// itself reports no numbers (its evaluation is qualitative), so the
// series here establish the *shapes*: Skolem deduplication, join
// scaling, and — the paper's efficiency claim for §4.3 — composed
// programs beating the sequential pipeline by skipping the
// intermediate model.
//
// Usage: yatbench [-quick] [-parallelism N]
//
// With -parallelism N every conversion in the sweep runs on an
// N-worker engine (0 = sequential, -1 = one worker per CPU); the eP
// series additionally reports sequential vs parallel side by side.
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"yat"
	"yat/internal/tree"
	"yat/internal/workload"
)

var (
	quick       = flag.Bool("quick", false, "smaller sweeps")
	parallelism = flag.Int("parallelism", 0, "engine workers for all series (0 = sequential, -1 = all CPUs)")
)

func main() {
	flag.Parse()
	e1Scenario()
	e3Rule1()
	e5Rule3Join()
	e7Transpose()
	e8WebProgram()
	e11ComposedVsSequential()
	ePParallelSpeedup()
}

// timed runs fn repeatedly and returns the best wall time.
func timed(fn func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func sizes(quickSizes, fullSizes []int) []int {
	if *quick {
		return quickSizes
	}
	return fullSizes
}

func mustProgram(src string) *yat.Program {
	p, err := yat.ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

func mustRun(p *yat.Program, s *yat.Store) *yat.Result {
	return mustRunOpts(p, s, &yat.RunOptions{Parallelism: *parallelism})
}

func mustRunOpts(p *yat.Program, s *yat.Store, opts *yat.RunOptions) *yat.Result {
	r, err := yat.Run(p, s, opts)
	if err != nil {
		panic(err)
	}
	return r
}

// E1: the Figure 1 scenario end to end.
func e1Scenario() {
	fmt.Println("E1  Figure 1 scenario: SGML + relational → ODMG → HTML")
	fmt.Println("    brochures  suppliers  objects  pages  time")
	for _, n := range sizes([]int{5, 20}, []int{5, 20, 100, 400}) {
		nSup := n / 2
		if nSup < 2 {
			nSup = 2
		}
		var objects, pages int
		d := timed(func() {
			inputs := workload.BrochureStore(n, 3, nSup, 42)
			mid := mustRun(mustProgram(yat.Rules1And2), inputs)
			interm := yat.NewStore()
			for _, e := range mid.Outputs.Entries() {
				interm.Put(e.Name, e.Tree)
			}
			objects = interm.Len()
			web := mustRun(mustProgram(yat.WebRules), interm)
			out, err := yat.ExportHTML(web.Outputs, nil)
			if err != nil {
				panic(err)
			}
			pages = len(out)
		})
		fmt.Printf("    %9d  %9d  %7d  %5d  %v\n", n, nSup, objects, pages, d)
	}
	fmt.Println()
}

// E3: Figure 3 / Rule 1 — Skolem deduplication keeps the output count
// at the distinct-supplier count, not the binding count.
func e3Rule1() {
	fmt.Println("E3  Rule 1 (Figure 3): Skolem dedup across brochures")
	fmt.Println("    brochures  pool  bindings  supplier objects  time")
	prog := mustProgram("program p\n" + rule1Source())
	for _, n := range sizes([]int{10, 100}, []int{10, 100, 1000, 4000}) {
		pool := 20
		store := workload.BrochureStore(n, 3, pool, 42)
		var res *yat.Result
		d := timed(func() { res = mustRun(prog, store) })
		fmt.Printf("    %9d  %4d  %8d  %16d  %v\n",
			n, pool, res.Stats.Bindings, res.Outputs.Len(), d)
	}
	fmt.Println()
}

// E5: Rule 3 — the heterogeneous join between brochures and the
// relational database.
func e5Rule3Join() {
	fmt.Println("E5  Rule 3: heterogeneous SGML × relational join")
	fmt.Println("    brochures  rel rows  cars out  time")
	prog := mustProgram("program p\n" + rule3Source())
	for _, n := range sizes([]int{10, 50}, []int{10, 50, 200, 800}) {
		pool := workload.Suppliers(n/2+2, 7)
		brochures := workload.Brochures(n, 2, pool, 7)
		db := workload.DealerDatabase(brochures, pool, 7)
		store := yat.NewStore()
		for i, b := range brochures {
			store.Put(yat.PlainName(fmt.Sprintf("b%d", i+1)), b.Tree())
		}
		for _, e := range yat.ImportRelational(db).Entries() {
			store.Put(e.Name, e.Tree)
		}
		rows := 0
		for _, name := range db.Names() {
			t, _ := db.Table(name)
			rows += t.Len()
		}
		var res *yat.Result
		d := timed(func() { res = mustRun(prog, store) })
		cars := 0
		for _, e := range res.Outputs.Entries() {
			if e.Name.Functor == "Pcar" {
				cars++
			}
		}
		fmt.Printf("    %9d  %8d  %8d  %v\n", n, rows, cars, d)
	}
	fmt.Println()
}

// E7: Figure 4 / Rule 5 — matrix transpose via index edges.
func e7Transpose() {
	fmt.Println("E7  Rule 5 (Figure 4): matrix transpose")
	fmt.Println("    matrix      cells  time")
	prog := mustProgram(yat.TransposeRule)
	for _, n := range sizes([]int{8, 32}, []int{8, 32, 64, 128}) {
		store := yat.NewStore()
		store.Put(yat.PlainName("m"), workload.MatrixTree(n, n))
		d := timed(func() { mustRun(prog, store) })
		fmt.Printf("    %4dx%-4d  %7d  %v\n", n, n, n*n, d)
	}
	fmt.Println()
}

// E8: the Web program — safe recursion over object graphs.
func e8WebProgram() {
	fmt.Println("E8  Web1–Web6: ODMG → HTML (safe-recursive program)")
	fmt.Println("    cars  suppliers  pages  elements  time")
	prog := mustProgram(yat.WebRules)
	for _, n := range sizes([]int{5, 25}, []int{5, 25, 100, 400}) {
		store := workload.ODMGStore(n, n/2+1, 3, 11)
		var res *yat.Result
		d := timed(func() { res = mustRun(prog, store) })
		pages, elems := 0, 0
		for _, e := range res.Outputs.Entries() {
			switch e.Name.Functor {
			case "HtmlPage":
				pages++
			case "HtmlElement":
				elems++
			}
		}
		fmt.Printf("    %4d  %9d  %5d  %8d  %v\n", n, n/2+1, pages, elems, d)
	}
	fmt.Println()
}

// E11: the §4.3 claim — the composed program avoids materializing the
// intermediate model and beats the sequential pipeline.
func e11ComposedVsSequential() {
	fmt.Println("E11 Composition (§4.3): composed vs sequential SGML → HTML")
	fmt.Println("    brochures  sequential  composed  speedup  intermediates skipped")
	first := mustProgram(yat.Rules1And2Typed)
	second := mustProgram(yat.WebRules)
	composed, err := yat.ComposePrograms(first, second, nil)
	if err != nil {
		panic(err)
	}
	for _, n := range sizes([]int{10, 50}, []int{10, 50, 200, 800}) {
		inputs := workload.BrochureStore(n, 3, n/2+2, 5)
		var intermediates int
		seq := timed(func() {
			mid := mustRun(first, inputs)
			interm := tree.NewStore()
			for _, e := range mid.Outputs.Entries() {
				interm.Put(e.Name, e.Tree)
			}
			intermediates = interm.Len()
			mustRun(second, interm)
		})
		direct := timed(func() { mustRun(composed, inputs) })
		fmt.Printf("    %9d  %10v  %8v  %6.2fx  %d\n",
			n, seq, direct, float64(seq)/float64(direct), intermediates)
	}
	fmt.Println()
}

// eP: the parallel engine — sequential vs worker-pool wall time on
// the brochure and Web workloads (outputs are byte-identical; only
// the schedule differs).
func ePParallelSpeedup() {
	workers := *parallelism
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("eP  Parallel engine: sequential vs %d workers\n", workers)
	fmt.Println("    workload            size  sequential  parallel  speedup")
	seqOpts := &yat.RunOptions{}
	parOpts := &yat.RunOptions{Parallelism: workers}

	rules12 := mustProgram(yat.Rules1And2)
	for _, n := range sizes([]int{20, 100}, []int{20, 100, 400}) {
		store := workload.BrochureStore(n, 3, n/4+2, 42)
		seq := timed(func() { mustRunOpts(rules12, store, seqOpts) })
		par := timed(func() { mustRunOpts(rules12, store, parOpts) })
		fmt.Printf("    %-18s  %4d  %10v  %8v  %6.2fx\n",
			"brochures", n, seq, par, float64(seq)/float64(par))
	}
	web := mustProgram(yat.WebRules)
	for _, n := range sizes([]int{25}, []int{25, 100}) {
		store := workload.ODMGStore(n, n/2+1, 3, 11)
		seq := timed(func() { mustRunOpts(web, store, seqOpts) })
		par := timed(func() { mustRunOpts(web, store, parOpts) })
		fmt.Printf("    %-18s  %4d  %10v  %8v  %6.2fx\n",
			"web (ODMG→HTML)", n, seq, par, float64(seq)/float64(par))
	}
	fmt.Println()
}

func rule1Source() string {
	p, _ := yat.BuiltinLibrary().Program("sgml2odmg")
	r, _ := p.Rule("Sup")
	return r.String()
}

func rule3Source() string {
	return `
rule CarJoin {
  head Pcar(Cid) = class -> car < -> name -> T, -> desc -> D,
                                   -> suppliers -> set -*> &Psup(Sid) >
  from Pbr = brochure < -> number -> Num, -> title -> T, -> model -> Year, -> desc -> D,
                        -> spplrs -*> supplier < -> name -> SN, -> address -> Add > >
  from Rsuppliers = suppliers -*> row < -> sid -> Sid, -> name -> SN, -> city -> C,
                                         -> address -> Add2, -> tel -> Tel >
  from Rcars = cars -*> row < -> cid -> Cid, -> broch_num -> Num >
  where sameaddress(Add, C, Add2)
}
`
}
