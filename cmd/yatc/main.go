// Yatc is the YAT conversion runner (the stand-alone executable of
// §5: wrappers + interpreter linked into one program, usable like
// LATEX2HTML or as a CGI backend).
//
// Usage:
//
//	yatc -program <file.yatl | name> [flags]
//
//	-program   a .yatl file, or the name of a built-in library
//	           program (sgml2odmg, sgml2odmgTyped, sgml2odmgPrime,
//	           odmg2html)
//	-compose   a second program to fuse with -program (§4.3): the
//	           run uses Compose(program, compose) and never
//	           materializes the intermediate model
//	-input     input store in YAT tree syntax (default: stdin)
//	-sgml      directory of .sgml documents to import instead
//	-dtd       DTD file used to validate -sgml documents
//	-html      directory to export HtmlPage outputs as .html files
//	-out       file for the output store (default: stdout)
//	-serve     address (e.g. :8080) to serve the HtmlPage outputs
//	           over HTTP — the paper's CGI usage of the generated
//	           executable
//	-check     type check: print the inferred signature and exit
//	-force     run even when static analysis reports errors
//	-stats     print run statistics to stderr
//	-explain   print a per-rule/per-phase EXPLAIN profile of the run
//	           to stderr (match counts, dropped bindings by reason,
//	           external-function calls, Skolems, wall times)
//
// Before executing, yatc runs the full static-analysis suite
// (internal/analysis) over every loaded program: warnings and errors
// are printed to stderr, and errors abort the run unless -force is
// given — compile-time rejection with positioned diagnostics instead
// of a failure halfway through a conversion.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"yat"
	"yat/internal/analysis"
	"yat/internal/library"
	"yat/internal/sgml"
	"yat/internal/tree"
	"yat/internal/typing"
)

func main() {
	var (
		programFlag = flag.String("program", "", "conversion program (.yatl file or built-in name)")
		composeFlag = flag.String("compose", "", "second program to fuse with -program (§4.3)")
		inputFlag   = flag.String("input", "", "input store file (YAT tree syntax); default stdin")
		sgmlFlag    = flag.String("sgml", "", "directory of .sgml documents to import")
		dtdFlag     = flag.String("dtd", "", "DTD file to validate SGML documents against")
		htmlFlag    = flag.String("html", "", "directory to export HtmlPage outputs into")
		serveFlag   = flag.String("serve", "", "address to serve HtmlPage outputs over HTTP (e.g. :8080)")
		outFlag     = flag.String("out", "", "output store file; default stdout")
		checkFlag   = flag.Bool("check", false, "print the inferred signature and exit")
		forceFlag   = flag.Bool("force", false, "run even when static analysis reports errors")
		statsFlag   = flag.Bool("stats", false, "print run statistics to stderr")
		explainFlag = flag.Bool("explain", false, "print a per-rule EXPLAIN profile to stderr")
	)
	flag.Parse()
	if *programFlag == "" {
		fmt.Fprintln(os.Stderr, "yatc: -program is required")
		flag.Usage()
		os.Exit(2)
	}

	prog, err := loadProgram(*programFlag)
	fail(err)
	analyzeOrFail(*programFlag, prog, *forceFlag)
	if *composeFlag != "" {
		second, err := loadProgram(*composeFlag)
		fail(err)
		analyzeOrFail(*composeFlag, second, *forceFlag)
		prog, err = yat.ComposePrograms(prog, second, nil)
		fail(err)
		fmt.Fprintf(os.Stderr, "yatc: composed %s (%d fused rules)\n", prog.Name, len(prog.Rules))
	}

	if *checkFlag {
		sig, err := typing.Infer(prog, nil)
		fail(err)
		fmt.Print(sig.String())
		return
	}

	inputs, err := loadInputs(*inputFlag, *sgmlFlag, *dtdFlag)
	fail(err)

	var opts *yat.RunOptions
	var profile *yat.TraceProfile
	if *explainFlag {
		profile = yat.NewTraceProfile()
		opts = &yat.RunOptions{Trace: profile}
	}
	result, err := yat.Run(prog, inputs, opts)
	fail(err)
	for _, w := range result.Warnings {
		fmt.Fprintln(os.Stderr, "yatc: warning:", w)
	}
	if *statsFlag {
		fmt.Fprintf(os.Stderr, "yatc: %d inputs, %d bindings, %d outputs, %d rounds\n",
			result.Stats.Activations, result.Stats.Bindings,
			result.Stats.Outputs, result.Stats.Rounds)
	}
	if *explainFlag {
		fail(profile.Render(os.Stderr, true))
	}

	if *serveFlag != "" {
		pages, err := yat.ExportHTML(result.Outputs, nil)
		fail(err)
		fmt.Fprintf(os.Stderr, "yatc: serving %d pages on %s (index at /)\n", len(pages), *serveFlag)
		fail(http.ListenAndServe(*serveFlag, pageHandler(pages)))
		return
	}

	if *htmlFlag != "" {
		pages, err := yat.ExportHTML(result.Outputs, nil)
		fail(err)
		fail(os.MkdirAll(*htmlFlag, 0o755))
		for url, content := range pages {
			fail(os.WriteFile(filepath.Join(*htmlFlag, url), []byte(content), 0o644))
		}
		fmt.Fprintf(os.Stderr, "yatc: wrote %d pages to %s\n", len(pages), *htmlFlag)
		return
	}

	dump := yat.FormatStore(result.Outputs)
	if *outFlag == "" {
		fmt.Print(dump)
		return
	}
	fail(os.WriteFile(*outFlag, []byte(dump), 0o644))
}

// analyzeOrFail runs the static-analysis suite over a program before
// execution, printing warnings and errors to stderr. Error-severity
// findings abort the run unless -force was given.
func analyzeOrFail(name string, prog *yat.Program, force bool) {
	diags, err := analysis.Run(prog, analysis.DefaultAnalyzers(), nil)
	fail(err)
	errors := 0
	for _, d := range diags {
		if d.Severity < analysis.SeverityWarning {
			continue
		}
		if d.Severity >= analysis.SeverityError {
			errors++
		}
		fmt.Fprintf(os.Stderr, "yatc: %s:%s\n", name, d)
	}
	if errors > 0 && !force {
		fmt.Fprintf(os.Stderr, "yatc: %s: rejected by static analysis (%d error(s)); use -force to run anyway\n", name, errors)
		os.Exit(1)
	}
	if errors > 0 {
		fmt.Fprintf(os.Stderr, "yatc: %s: running despite %d analysis error(s) (-force)\n", name, errors)
	}
}

func loadProgram(spec string) (*yat.Program, error) {
	if strings.HasSuffix(spec, ".yatl") {
		return library.LoadProgram(spec)
	}
	if p, ok := library.Builtin().Program(spec); ok {
		return p, nil
	}
	return nil, fmt.Errorf("yatc: unknown program %q (not a .yatl file or built-in)", spec)
}

func loadInputs(inputFile, sgmlDir, dtdFile string) (*yat.Store, error) {
	if sgmlDir != "" {
		entries, err := os.ReadDir(sgmlDir)
		if err != nil {
			return nil, err
		}
		docs := map[string]string{}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".sgml") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(sgmlDir, e.Name()))
			if err != nil {
				return nil, err
			}
			docs[strings.TrimSuffix(e.Name(), ".sgml")] = string(data)
		}
		opts := &yat.SGMLOptions{InferTypes: true}
		if dtdFile != "" {
			data, err := os.ReadFile(dtdFile)
			if err != nil {
				return nil, err
			}
			dtd, err := sgml.ParseDTD(string(data))
			if err != nil {
				return nil, err
			}
			opts.Validate = true
			opts.DTD = dtd
		}
		return yat.ImportSGML(docs, opts)
	}
	var data []byte
	var err error
	if inputFile == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(inputFile)
	}
	if err != nil {
		return nil, err
	}
	return tree.ParseStore(string(data))
}

// pageHandler serves the exported pages at their URLs, with an index
// of links at the root — the in-process equivalent of the paper's CGI
// deployment.
func pageHandler(pages map[string]string) http.Handler {
	mux := http.NewServeMux()
	urls := make([]string, 0, len(pages))
	for url, content := range pages {
		urls = append(urls, url)
		content := content
		mux.HandleFunc("/"+url, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			fmt.Fprint(w, content)
		})
	}
	sort.Strings(urls)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, "<!DOCTYPE html>\n<html><head><title>YAT pages</title></head><body><h1>Converted pages</h1><ul>")
		for _, u := range urls {
			fmt.Fprintf(w, `<li><a href="/%s">%s</a></li>`, u, u)
		}
		fmt.Fprint(w, "</ul></body></html>\n")
	})
	return mux
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "yatc:", err)
		os.Exit(1)
	}
}
