package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"yat"
	"yat/internal/sgml"
	"yat/internal/workload"
)

func TestLoadProgramBuiltin(t *testing.T) {
	for _, name := range []string{"sgml2odmg", "odmg2html", "sgml2odmgTyped", "sgml2odmgPrime"} {
		p, err := loadProgram(name)
		if err != nil {
			t.Errorf("builtin %s: %v", name, err)
			continue
		}
		if len(p.Rules) == 0 {
			t.Errorf("builtin %s has no rules", name)
		}
	}
	if _, err := loadProgram("nope"); err == nil {
		t.Error("unknown builtin accepted")
	}
}

func TestLoadProgramFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.yatl")
	if err := os.WriteFile(path, []byte(yat.Rules1And2), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := loadProgram(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "sgml2odmg" {
		t.Errorf("program name = %q", p.Name)
	}
}

func TestLoadInputsStoreFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "in.yat")
	content := `b1: brochure < number < 1 >, title < "Golf" >, model < 1995 >, desc < "d" >,
	             spplrs < supplier < name < "VW" >, address < "Rue A, 75001 Paris" > > > >`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := loadInputs(path, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Errorf("store = %d entries", store.Len())
	}
}

func TestLoadInputsSGMLDir(t *testing.T) {
	dir := t.TempDir()
	docs := workload.BrochureDocs(3, 2, 4, 8)
	for name, content := range docs {
		if err := os.WriteFile(filepath.Join(dir, name+".sgml"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	dtdPath := filepath.Join(dir, "brochure.dtd")
	if err := os.WriteFile(dtdPath, []byte(sgml.BrochureDTDSource), 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := loadInputs("", dir, dtdPath)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 3 {
		t.Errorf("store = %d entries", store.Len())
	}
	// Validation failures are reported.
	if err := os.WriteFile(filepath.Join(dir, "bad.sgml"), []byte("<brochure></brochure>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadInputs("", dir, dtdPath); err == nil {
		t.Error("invalid document accepted under -dtd")
	}
}

func TestEndToEndConversion(t *testing.T) {
	// The full yatc pipeline without the flag plumbing: SGML dir in,
	// HTML dir out.
	dir := t.TempDir()
	for name, content := range workload.BrochureDocs(2, 2, 3, 4) {
		if err := os.WriteFile(filepath.Join(dir, name+".sgml"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	inputs, err := loadInputs("", dir, "")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := loadProgram("sgml2odmgTyped")
	if err != nil {
		t.Fatal(err)
	}
	web, err := loadProgram("odmg2html")
	if err != nil {
		t.Fatal(err)
	}
	composed, err := yat.ComposePrograms(prog, web, nil)
	if err != nil {
		t.Fatal(err)
	}
	result, err := yat.Run(composed, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	pages, err := yat.ExportHTML(result.Outputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "html")
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for url, content := range pages {
		if err := os.WriteFile(filepath.Join(outDir, url), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	entries, _ := os.ReadDir(outDir)
	if len(entries) != len(pages) || len(pages) == 0 {
		t.Errorf("wrote %d files for %d pages", len(entries), len(pages))
	}
	data, _ := os.ReadFile(filepath.Join(outDir, entries[0].Name()))
	if !strings.Contains(string(data), "<!DOCTYPE html>") {
		t.Error("exported page is not HTML")
	}
}

func TestPageHandler(t *testing.T) {
	pages := map[string]string{
		"a.html": "<!DOCTYPE html>\n<html>A</html>",
		"b.html": "<!DOCTYPE html>\n<html>B</html>",
	}
	h := pageHandler(pages)
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/")
	if code != 200 || !strings.Contains(body, `href="/a.html"`) || !strings.Contains(body, `href="/b.html"`) {
		t.Errorf("index: %d %q", code, body)
	}
	code, body = get("/a.html")
	if code != 200 || body != pages["a.html"] {
		t.Errorf("page a: %d %q", code, body)
	}
	code, _ = get("/missing.html")
	if code != 404 {
		t.Errorf("missing page: %d", code)
	}
}
