// Yatcheck is the stand-alone front end of the static-analysis
// framework (internal/analysis): it parses YATL programs and runs
// every analyzer — range restriction, unused variables, rule names,
// Skolem arities, undefined references, predicate sanity, collection
// primitives, exception reachability, §3.4 safety and §3.5 typing —
// reporting positioned diagnostics.
//
// Usage:
//
//	yatcheck [flags] [file.yatl ...]
//
//	-builtin    also check every built-in library program
//	-json       emit diagnostics as JSON instead of text
//	-severity   exit non-zero when a diagnostic at or above this
//	            severity is found: info, warning or error (default error)
//	-list       list the registered analyzers and exit
//	-facts      emit the optimizer facts (symbol table, dispatch
//	            roots, dead rules, strata) as JSON and exit
//
// Diagnostics print as `file:line:col: severity: [category] message`,
// in a pinned total order — file, then line, then column, then
// analyzer name — so output is byte-stable across runs and input
// orderings. The exit status is 0 when the programs are clean under
// the threshold, 1 when findings reach it, and 2 on usage or I/O
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"yat/internal/analysis"
	"yat/internal/library"
	"yat/internal/yatl"
)

// fileDiagnostic is the JSON shape of one finding: a diagnostic plus
// the program (file or builtin name) it was found in.
type fileDiagnostic struct {
	File string `json:"file"`
	analysis.Diagnostic
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("yatcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		builtinFlag  = fs.Bool("builtin", false, "also check every built-in library program")
		jsonFlag     = fs.Bool("json", false, "emit diagnostics as JSON")
		severityFlag = fs.String("severity", "error", "fail when a diagnostic at or above this severity exists (info|warning|error)")
		listFlag     = fs.Bool("list", false, "list the registered analyzers and exit")
		factsFlag    = fs.Bool("facts", false, "emit the optimizer facts as JSON and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listFlag {
		for _, a := range analysis.DefaultAnalyzers() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	threshold, err := analysis.ParseSeverity(*severityFlag)
	if err != nil {
		fmt.Fprintln(stderr, "yatcheck:", err)
		return 2
	}
	if fs.NArg() == 0 && !*builtinFlag {
		fmt.Fprintln(stderr, "yatcheck: no input files (and -builtin not set)")
		fs.Usage()
		return 2
	}

	type target struct {
		name string
		prog *yatl.Program
		err  error
	}
	var targets []target
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "yatcheck:", err)
			return 2
		}
		prog, err := yatl.Parse(string(data))
		targets = append(targets, target{name: path, prog: prog, err: err})
	}
	if *builtinFlag {
		lib := library.Builtin()
		for _, name := range lib.Programs() {
			prog, _ := lib.Program(name)
			targets = append(targets, target{name: "builtin:" + name, prog: prog})
		}
	}

	if *factsFlag {
		// Facts mode replaces the diagnostic run: emit the optimizer's
		// view of each program (symbol table size, dispatch roots, dead
		// and unreachable rules, strata) as one JSON array.
		type fileFacts struct {
			File string `json:"file"`
			*analysis.FactsReport
		}
		var reps []fileFacts
		for _, t := range targets {
			if t.err != nil {
				fmt.Fprintf(stderr, "yatcheck: %s: %v\n", t.name, t.err)
				return 2
			}
			reps = append(reps, fileFacts{File: t.name, FactsReport: analysis.ReportFacts(t.prog)})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reps); err != nil {
			fmt.Fprintln(stderr, "yatcheck:", err)
			return 2
		}
		return 0
	}

	var all []fileDiagnostic
	for _, t := range targets {
		if t.err != nil {
			// Surface syntax errors as error-severity diagnostics so
			// broken files fail the gate with a position, like any
			// other finding.
			d := analysis.Diagnostic{Severity: analysis.SeverityError, Category: "syntax", Message: t.err.Error()}
			if pe, ok := t.err.(*yatl.ParseError); ok {
				d.Pos = pe.Pos
				d.Message = pe.Msg
			}
			all = append(all, fileDiagnostic{File: t.name, Diagnostic: d})
			continue
		}
		diags, err := analysis.Run(t.prog, analysis.DefaultAnalyzers(), nil)
		if err != nil {
			fmt.Fprintln(stderr, "yatcheck:", err)
			return 2
		}
		for _, d := range diags {
			all = append(all, fileDiagnostic{File: t.name, Diagnostic: d})
		}
	}

	// Pin a total order over the combined output: file, then line, then
	// column, then analyzer name. analysis.Run orders findings within
	// one program, but the combined stream must not depend on argument
	// order tie-breaking or per-analyzer emission order, so both the
	// JSON and text renderings sort here. Severity and message are
	// final tie-breakers to keep the order total.
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Category != b.Category {
			return a.Category < b.Category
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		return a.Message < b.Message
	})

	if *jsonFlag {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "yatcheck:", err)
			return 2
		}
	} else {
		for _, d := range all {
			fmt.Fprintf(stdout, "%s:%s\n", d.File, d.Diagnostic)
			for _, rel := range d.Related {
				fmt.Fprintf(stdout, "%s:%s: note: %s\n", d.File, rel.Pos, rel.Message)
			}
		}
	}

	failing := 0
	for _, d := range all {
		if d.Severity >= threshold {
			failing++
		}
	}
	if failing > 0 {
		fmt.Fprintf(stderr, "yatcheck: %d finding(s) at or above %s in %d program(s)\n", failing, threshold, len(targets))
		return 1
	}
	return 0
}
