package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCheck(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func writeProgram(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cleanSource = `
program clean

rule R {
  head P(SN) = class -> name -> SN
  from B = doc -> supplier -> SN
}
`

const brokenSource = `
program broken

rule R {
  head P(X) = class -> name -> SN
  from B = doc -> supplier -> SN
}
`

func TestCleanProgramExitsZero(t *testing.T) {
	path := writeProgram(t, "clean.yatl", cleanSource)
	code, stdout, stderr := runCheck(t, path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if strings.Contains(stdout, "error:") {
		t.Errorf("unexpected errors in output: %s", stdout)
	}
}

func TestBrokenProgramExitsOne(t *testing.T) {
	path := writeProgram(t, "broken.yatl", brokenSource)
	code, stdout, _ := runCheck(t, path)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output: %s", code, stdout)
	}
	want := path + ":5:8: error: [range-restriction]"
	if !strings.Contains(stdout, want) {
		t.Errorf("output missing %q:\n%s", want, stdout)
	}
}

func TestSeverityThreshold(t *testing.T) {
	path := writeProgram(t, "broken.yatl", brokenSource)
	if code, _, _ := runCheck(t, "-severity", "info", path); code != 1 {
		t.Errorf("info threshold on broken program: exit %d, want 1", code)
	}
	if code, _, stderr := runCheck(t, "-severity", "bogus", path); code != 2 {
		t.Errorf("bogus severity: exit %d, want 2 (stderr: %s)", code, stderr)
	}
}

// warningOnlySource is clean apart from unused-var findings: the
// unused body variable B is info, the unused let-binding U a warning.
// No analyzer reports an error for it.
const warningOnlySource = `
program warnonly

rule R {
  head P(SN) = class -> name -> SN
  from B = doc -> supplier -> A
  let SN = city(A)
  let U = zip(A)
}
`

// TestSeverityThresholdEdges pins the gate at exactly the boundary: a
// program whose worst finding is a warning passes -severity error but
// fails -severity warning and -severity info. The diagnostics print
// either way — the threshold decides the exit code, not the output.
func TestSeverityThresholdEdges(t *testing.T) {
	path := writeProgram(t, "warn.yatl", warningOnlySource)
	for _, tc := range []struct {
		severity string
		want     int
	}{
		{"error", 0},
		{"warning", 1},
		{"info", 1},
	} {
		code, stdout, stderr := runCheck(t, "-severity", tc.severity, path)
		if code != tc.want {
			t.Errorf("-severity %s: exit %d, want %d (stderr: %s)", tc.severity, code, tc.want, stderr)
		}
		if !strings.Contains(stdout, "warning: [unused-var]") {
			t.Errorf("-severity %s suppressed the warning diagnostic:\n%s", tc.severity, stdout)
		}
		if tc.want == 0 && strings.Contains(stderr, "finding(s)") {
			t.Errorf("-severity %s reported failure on a passing run: %s", tc.severity, stderr)
		}
	}
	// The default threshold is error, so the bare invocation passes too.
	if code, _, stderr := runCheck(t, path); code != 0 {
		t.Errorf("default threshold: exit %d, want 0 (stderr: %s)", code, stderr)
	}
}

// TestSeverityJSONStable pins the machine-readable path at the edge:
// the JSON body is byte-identical across repeat runs and across
// thresholds — only the exit code moves with -severity.
func TestSeverityJSONStable(t *testing.T) {
	path := writeProgram(t, "warn.yatl", warningOnlySource)
	code, first, _ := runCheck(t, "-json", "-severity", "error", path)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	var diags []struct {
		Severity string `json:"severity"`
		Category string `json:"category"`
	}
	if err := json.Unmarshal([]byte(first), &diags); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, first)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics in JSON output")
	}
	for _, d := range diags {
		if d.Severity == "error" {
			t.Errorf("warning-only program produced an error diagnostic: %+v", d)
		}
	}
	if code, again, _ := runCheck(t, "-json", "-severity", "error", path); code != 0 || again != first {
		t.Error("JSON output differs between identical runs")
	}
	if code, gated, _ := runCheck(t, "-json", "-severity", "warning", path); code != 1 || gated != first {
		t.Errorf("JSON body must not change with the threshold (exit %d)", code)
	}
}

func TestSyntaxErrorHasPosition(t *testing.T) {
	path := writeProgram(t, "bad.yatl", "program p\n\nrule R {\n  head P(X = class\n}\n")
	code, stdout, _ := runCheck(t, path)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output: %s", code, stdout)
	}
	if !strings.Contains(stdout, "[syntax]") {
		t.Errorf("syntax error not categorised: %s", stdout)
	}
	if !strings.Contains(stdout, path+":4:") {
		t.Errorf("syntax diagnostic missing line position: %s", stdout)
	}
}

func TestJSONOutput(t *testing.T) {
	path := writeProgram(t, "broken.yatl", brokenSource)
	code, stdout, _ := runCheck(t, "-json", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var diags []struct {
		File     string `json:"file"`
		Severity string `json:"severity"`
		Category string `json:"category"`
		Message  string `json:"message"`
		Pos      struct {
			Line int `json:"line"`
			Col  int `json:"col"`
		} `json:"pos"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout)
	}
	found := false
	for _, d := range diags {
		if d.Category == "range-restriction" && d.Severity == "error" && d.Pos.Line == 5 && d.Pos.Col == 8 {
			found = true
			if d.File != path {
				t.Errorf("file = %q, want %q", d.File, path)
			}
		}
	}
	if !found {
		t.Errorf("JSON output missing the range-restriction error:\n%s", stdout)
	}
}

func TestBuiltinProgramsPassGate(t *testing.T) {
	code, _, stderr := runCheck(t, "-severity", "warning", "-builtin")
	if code != 0 {
		t.Fatalf("builtin programs fail the warning gate: exit %d\n%s", code, stderr)
	}
}

func TestNoInputIsUsageError(t *testing.T) {
	if code, _, _ := runCheck(t); code != 2 {
		t.Errorf("no input: exit %d, want 2", code)
	}
}

func TestListAnalyzers(t *testing.T) {
	code, stdout, _ := runCheck(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, name := range []string{"range-restriction", "safety", "typing", "coverage"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, stdout)
		}
	}
}

// TestPinnedOutputOrder: diagnostics print in the pinned total order —
// file, line, column, analyzer name — regardless of the order the
// files are named on the command line, and the bytes are identical
// across runs.
func TestPinnedOutputOrder(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.yatl")
	b := filepath.Join(dir, "b.yatl")
	if err := os.WriteFile(a, []byte(warningOnlySource), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(brokenSource), 0o644); err != nil {
		t.Fatal(err)
	}

	_, forward, _ := runCheck(t, "-json", a, b)
	_, reversed, _ := runCheck(t, "-json", b, a)
	if forward != reversed {
		t.Errorf("-json output depends on argument order:\n%s\nvs\n%s", forward, reversed)
	}
	if _, again, _ := runCheck(t, "-json", a, b); again != forward {
		t.Error("-json output differs between identical runs")
	}

	var diags []struct {
		File     string `json:"file"`
		Category string `json:"category"`
		Pos      struct {
			Line int `json:"line"`
			Col  int `json:"col"`
		} `json:"pos"`
	}
	if err := json.Unmarshal([]byte(forward), &diags); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, forward)
	}
	if len(diags) < 3 {
		t.Fatalf("want at least 3 diagnostics across both files, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		p, q := diags[i-1], diags[i]
		ordered := p.File < q.File ||
			(p.File == q.File && (p.Pos.Line < q.Pos.Line ||
				(p.Pos.Line == q.Pos.Line && (p.Pos.Col < q.Pos.Col ||
					(p.Pos.Col == q.Pos.Col && p.Category <= q.Category)))))
		if !ordered {
			t.Errorf("diagnostics %d and %d out of pinned order: %+v then %+v", i-1, i, p, q)
		}
	}

	// Text mode obeys the same order.
	_, tf, _ := runCheck(t, a, b)
	_, tr, _ := runCheck(t, b, a)
	if tf != tr {
		t.Errorf("text output depends on argument order:\n%s\nvs\n%s", tf, tr)
	}
	if ia, ib := strings.Index(tf, a), strings.Index(tf, b); ia < 0 || ib < 0 || ia > ib {
		t.Errorf("text output not grouped by file (a at %d, b at %d):\n%s", ia, ib, tf)
	}
}

// TestFactsOutput: -facts emits the optimizer facts as JSON and skips
// the diagnostic gate entirely.
func TestFactsOutput(t *testing.T) {
	path := writeProgram(t, "clean.yatl", cleanSource)
	code, stdout, stderr := runCheck(t, "-facts", path)
	if code != 0 {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, stderr)
	}
	var reps []struct {
		File          string     `json:"file"`
		Program       string     `json:"program"`
		Symbols       int        `json:"symbols"`
		SymbolNames   []string   `json:"symbol_names"`
		DispatchRoots int        `json:"dispatch_roots"`
		Strata        [][]string `json:"strata"`
	}
	if err := json.Unmarshal([]byte(stdout), &reps); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout)
	}
	if len(reps) != 1 {
		t.Fatalf("want 1 report, got %d", len(reps))
	}
	r := reps[0]
	if r.File != path || r.Program != "clean" {
		t.Errorf("report identity = %q / %q", r.File, r.Program)
	}
	if r.Symbols == 0 || len(r.SymbolNames) != r.Symbols {
		t.Errorf("symbols = %d, names = %v", r.Symbols, r.SymbolNames)
	}
	if r.DispatchRoots == 0 || len(r.Strata) == 0 {
		t.Errorf("dispatch_roots = %d, strata = %v", r.DispatchRoots, r.Strata)
	}

	// Byte-stable across runs, and works against the builtin library.
	if _, again, _ := runCheck(t, "-facts", path); again != stdout {
		t.Error("-facts output differs between identical runs")
	}
	code, builtins, stderr := runCheck(t, "-facts", "-builtin")
	if code != 0 {
		t.Fatalf("-facts -builtin: exit %d (stderr: %s)", code, stderr)
	}
	if !strings.Contains(builtins, "builtin:") {
		t.Errorf("-facts -builtin output names no builtin programs:\n%s", builtins)
	}

	// A syntax error in facts mode is a hard failure, not a report.
	bad := writeProgram(t, "bad.yatl", "program p\nrule R {")
	if code, _, _ := runCheck(t, "-facts", bad); code != 2 {
		t.Errorf("-facts on unparseable file: exit %d, want 2", code)
	}
}

func TestMissingFileExitsTwo(t *testing.T) {
	if code, _, _ := runCheck(t, filepath.Join(t.TempDir(), "nope.yatl")); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}
