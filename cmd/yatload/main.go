// Yatload drives a running yatserve with sustained concurrent asks
// and reports throughput and latency percentiles. It is the CI gate's
// measurement half: the serve-bench job runs it for a short window
// and compares the JSON report against the checked-in
// BENCH_serve.json trajectory.
//
// Usage:
//
//	yatload -url http://host:port [flags]
//
//	-url       base URL of the yatserve instance (required)
//	-pattern   ask pattern (default matches the selective:K workload's
//	           view shape)
//	-functors  comma-separated Skolem functors restricting the ask;
//	           rotating:K rotates each request through Pview1..PviewK —
//	           the selective-ask workload where demand-driven slicing
//	           pays
//	-workers   concurrent request loops (default 8)
//	-warmup    window discarded before measurement starts (default 1s)
//	-duration  measured window (default 5s)
//	-qps       target request rate cap, spread across workers
//	           (0 = as fast as the server answers)
//	-allow-empty  tolerate empty answer sets (a federated server
//	           degraded to partial results still answers 200 with
//	           whatever its healthy shards produced)
//	-out       write the JSON report to a file instead of stdout
//
// The report is the wire.LoadReport schema: requests, errors, QPS,
// p50/p95/p99/mean/max latency in milliseconds. A measured window
// that completed no requests at all (e.g. the warmup swallowed the
// whole run, or a -qps cap slower than the window) still emits a
// valid report — zero QPS and zero percentiles, never NaN or Inf.
//
// Exit status: 0 on a measured window with no failures, 1 when any
// request failed, 2 on usage errors, 3 when the window completed
// zero requests (the report is vacuous — scripts gating on exit 0
// must not mistake an empty window for a passing run).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"yat/internal/serve/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const defaultPattern = `view < -> name -> N, -> city -> C, -> zip -> Z >`

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("yatload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		urlFlag      = fs.String("url", "", "base URL of the yatserve instance")
		patternFlag  = fs.String("pattern", defaultPattern, "ask pattern")
		funcFlag     = fs.String("functors", "", "comma-separated functors, or rotating:K")
		workersFlag  = fs.Int("workers", 8, "concurrent request loops")
		warmupFlag   = fs.Duration("warmup", time.Second, "window discarded before measurement")
		durationFlag = fs.Duration("duration", 5*time.Second, "measured window")
		qpsFlag      = fs.Float64("qps", 0, "target request rate cap (0 = unbounded)")
		emptyFlag    = fs.Bool("allow-empty", false, "tolerate empty answer sets (degraded federations)")
		outFlag      = fs.String("out", "", "write the JSON report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *urlFlag == "" {
		fmt.Fprintln(stderr, "yatload: -url is required")
		fs.Usage()
		return 2
	}
	if *workersFlag <= 0 || *durationFlag <= 0 {
		fmt.Fprintln(stderr, "yatload: -workers and -duration must be positive")
		return 2
	}

	functors, rotate, err := parseFunctors(*funcFlag)
	if err != nil {
		fmt.Fprintln(stderr, "yatload:", err)
		return 2
	}

	report, err := drive(driveConfig{
		url:        strings.TrimRight(*urlFlag, "/"),
		pattern:    *patternFlag,
		functors:   functors,
		rotate:     rotate,
		workers:    *workersFlag,
		warmup:     *warmupFlag,
		duration:   *durationFlag,
		qps:        *qpsFlag,
		allowEmpty: *emptyFlag,
	})
	if err != nil {
		fmt.Fprintln(stderr, "yatload:", err)
		return 1
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "yatload:", err)
		return 1
	}
	if *outFlag != "" {
		if err := os.WriteFile(*outFlag, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "yatload:", err)
			return 1
		}
		fmt.Fprintf(stderr, "yatload: report written to %s\n", *outFlag)
	} else {
		fmt.Fprintf(stdout, "%s\n", data)
	}
	fmt.Fprintf(stderr, "yatload: %d requests, %d errors, %.0f qps, p50=%.2fms p95=%.2fms p99=%.2fms\n",
		report.Requests, report.Errors, report.QPS,
		report.Latency.P50Ms, report.Latency.P95Ms, report.Latency.P99Ms)
	if report.Errors > 0 {
		return 1
	}
	if report.Requests == 0 {
		fmt.Fprintln(stderr, "yatload: measured window completed zero requests (report is vacuous)")
		return 3
	}
	return 0
}

// parseFunctors reads the -functors spec: a comma-separated list, or
// rotating:K meaning each request asks one of Pview1..PviewK in turn.
func parseFunctors(spec string) (functors []string, rotate bool, err error) {
	if k, ok := strings.CutPrefix(spec, "rotating:"); ok {
		n, err := strconv.Atoi(k)
		if err != nil || n <= 0 {
			return nil, false, fmt.Errorf("bad spec %q: want rotating:K with K > 0", spec)
		}
		for i := 1; i <= n; i++ {
			functors = append(functors, fmt.Sprintf("Pview%d", i))
		}
		return functors, true, nil
	}
	for _, f := range strings.Split(spec, ",") {
		if f = strings.TrimSpace(f); f != "" {
			functors = append(functors, f)
		}
	}
	return functors, false, nil
}

type driveConfig struct {
	url        string
	pattern    string
	functors   []string
	rotate     bool
	workers    int
	warmup     time.Duration
	duration   time.Duration
	qps        float64
	allowEmpty bool
}

// drive runs the load: workers loop POST /ask until the deadline,
// discarding results until the warmup elapses. Latencies and errors
// from the measured window are folded into the report.
func drive(cfg driveConfig) (*wire.LoadReport, error) {
	// One pre-marshaled body per distinct request shape.
	bodies := make([][]byte, 1)
	if cfg.rotate {
		bodies = make([][]byte, len(cfg.functors))
		for i, f := range cfg.functors {
			bodies[i] = mustBody(cfg.pattern, []string{f})
		}
	} else {
		bodies[0] = mustBody(cfg.pattern, cfg.functors)
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.workers * 2,
		MaxIdleConnsPerHost: cfg.workers * 2,
	}}

	// Smoke one request before unleashing the workers so a dead server
	// is one clear error, not workers*duration of them.
	if _, err := ask(client, cfg.url, bodies[0], cfg.allowEmpty); err != nil {
		return nil, fmt.Errorf("preflight request: %w", err)
	}

	var perWorkerGap time.Duration
	if cfg.qps > 0 {
		perWorkerGap = time.Duration(float64(cfg.workers) / cfg.qps * float64(time.Second))
	}

	type workerResult struct {
		lat  []time.Duration
		errs int64
	}
	results := make([]workerResult, cfg.workers)
	measureFrom := time.Now().Add(cfg.warmup)
	deadline := measureFrom.Add(cfg.duration)

	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			for i := w; ; i++ {
				start := time.Now()
				if start.After(deadline) {
					return
				}
				_, err := ask(client, cfg.url, bodies[i%len(bodies)], cfg.allowEmpty)
				if start.After(measureFrom) {
					if err != nil {
						res.errs++
					} else {
						res.lat = append(res.lat, time.Since(start))
					}
				}
				if perWorkerGap > 0 {
					if rest := perWorkerGap - time.Since(start); rest > 0 {
						// Never sleep past the deadline: a -qps cap slower than
						// the window must end the run on time (with an empty
						// report), not stall it for the rest of the gap.
						if until := time.Until(deadline); rest > until {
							rest = until + time.Millisecond
						}
						time.Sleep(rest)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var lat []time.Duration
	var errs int64
	for _, r := range results {
		lat = append(lat, r.lat...)
		errs += r.errs
	}
	report := &wire.LoadReport{
		URL:             cfg.url,
		Pattern:         cfg.pattern,
		Functors:        cfg.functors,
		Workers:         cfg.workers,
		WarmupSeconds:   cfg.warmup.Seconds(),
		DurationSeconds: cfg.duration.Seconds(),
		Requests:        int64(len(lat)) + errs,
		Errors:          errs,
		QPS:             float64(len(lat)) / cfg.duration.Seconds(),
		Latency:         wire.Summarize(lat),
	}
	return report, nil
}

func mustBody(pattern string, functors []string) []byte {
	body, err := json.Marshal(wire.AskRequest{Pattern: pattern, Functors: functors})
	if err != nil {
		panic(err)
	}
	return body
}

// ask performs one POST /ask, draining and closing the body so the
// connection returns to the pool. Any non-200 status is an error.
func ask(client *http.Client, url string, body []byte, allowEmpty bool) (int, error) {
	resp, err := client.Post(url+"/ask", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return resp.StatusCode, fmt.Errorf("status %d: %s", resp.StatusCode, msg)
	}
	var out wire.AskResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, err
	}
	if out.Count == 0 && !allowEmpty {
		return resp.StatusCode, fmt.Errorf("empty answer set")
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
