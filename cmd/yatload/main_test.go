package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"yat/internal/serve"
	"yat/internal/serve/wire"
	"yat/internal/workload"
	"yat/internal/yatl"
)

func TestParseFunctors(t *testing.T) {
	fs, rotate, err := parseFunctors("rotating:3")
	if err != nil || !rotate || len(fs) != 3 || fs[2] != "Pview3" {
		t.Fatalf("rotating:3 -> %v rotate=%v err=%v", fs, rotate, err)
	}
	fs, rotate, err = parseFunctors(" Pa , Pb ")
	if err != nil || rotate || len(fs) != 2 || fs[0] != "Pa" || fs[1] != "Pb" {
		t.Fatalf("list -> %v rotate=%v err=%v", fs, rotate, err)
	}
	if fs, _, err := parseFunctors(""); err != nil || fs != nil {
		t.Fatalf("empty -> %v err=%v", fs, err)
	}
	for _, bad := range []string{"rotating:0", "rotating:x"} {
		if _, _, err := parseFunctors(bad); err == nil {
			t.Errorf("parseFunctors(%q) accepted a bad spec", bad)
		}
	}
}

// drive against an in-process server: a short window must complete
// with zero errors and a coherent report.
func TestDriveAgainstServer(t *testing.T) {
	s, err := serve.New(serve.Config{
		Prog:   yatl.MustParse(workload.SelectiveProgram(4)),
		Inputs: workload.BrochureStore(6, 2, 5, 11),
		Pool:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	report, err := drive(driveConfig{
		url:      ts.URL,
		pattern:  defaultPattern,
		functors: []string{"Pview1", "Pview2", "Pview3", "Pview4"},
		rotate:   true,
		workers:  4,
		warmup:   50 * time.Millisecond,
		duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("%d request errors", report.Errors)
	}
	if report.Requests == 0 || report.QPS <= 0 {
		t.Fatalf("empty window: %+v", report)
	}
	if report.Latency.P99Ms < report.Latency.P50Ms || report.Latency.MaxMs < report.Latency.P99Ms {
		t.Fatalf("incoherent latency summary: %+v", report.Latency)
	}
}

// A measured window that completes zero requests still produces a
// valid report — all-zero QPS and percentiles, serializable JSON, no
// NaN or Inf — and run exits 3 so CI gates cannot mistake the vacuous
// window for a passing run. A microscopic -qps cap forces the window
// empty deterministically: the preflight and the first (warmup)
// request succeed, then every worker sleeps past the deadline.
func TestZeroRequestWindow(t *testing.T) {
	s, err := serve.New(serve.Config{
		Prog:   yatl.MustParse(workload.SelectiveProgram(1)),
		Inputs: workload.BrochureStore(2, 1, 2, 7),
		Pool:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	report, err := drive(driveConfig{
		url:        ts.URL,
		pattern:    defaultPattern,
		functors:   []string{"Pview1"},
		workers:    2,
		warmup:     50 * time.Millisecond,
		duration:   100 * time.Millisecond,
		qps:        0.001, // one request per ~33 minutes: none lands in the window
		allowEmpty: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests != 0 || report.Errors != 0 {
		t.Fatalf("window not empty: %+v", report)
	}
	if report.QPS != 0 || report.Latency != (wire.LatencySummary{}) {
		t.Fatalf("zero window not all-zero: qps=%v latency=%+v", report.QPS, report.Latency)
	}
	if data, err := json.Marshal(report); err != nil {
		// NaN or Inf anywhere in the report would fail here.
		t.Fatalf("zero-window report does not serialize: %v", err)
	} else if strings.Contains(string(data), "null") {
		t.Fatalf("zero-window report carries nulls: %s", data)
	}

	var stderr bytes.Buffer
	code := run([]string{
		"-url", ts.URL, "-functors", "Pview1", "-workers", "2",
		"-warmup", "50ms", "-duration", "100ms", "-qps", "0.001", "-allow-empty",
	}, io.Discard, &stderr)
	if code != 3 {
		t.Fatalf("exit code %d, want 3\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "zero requests") {
		t.Fatalf("stderr does not explain the empty window: %s", stderr.String())
	}
}

// The preflight catches a dead server as one clear error instead of a
// window full of them.
func TestDrivePreflight(t *testing.T) {
	_, err := drive(driveConfig{
		url:      "http://127.0.0.1:1", // nothing listens here
		pattern:  defaultPattern,
		workers:  2,
		duration: 100 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("dead server not caught by preflight")
	}
}
