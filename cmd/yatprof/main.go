// Yatprof runs a YATL conversion under the tracing layer and prints
// an EXPLAIN profile of the run: which rules fired, how many bindings
// each phase saw and dropped (with reasons), which external functions
// were called and how often, how many Skolem identities were minted,
// and where the wall time went. It is the observability companion to
// yatc — same program and input conventions, but the converted store
// is discarded and the profile is the output.
//
// Usage:
//
//	yatprof -program <file.yatl | name> [flags]
//
//	-program      a .yatl file, or the name of a built-in library
//	              program (sgml2odmg, sgml2odmgTyped, sgml2odmgPrime,
//	              odmg2html)
//	-input        input store in YAT tree syntax (default: stdin)
//	-json         emit the profile as JSON instead of the text table
//	-timing       include wall-clock times (off by default so output
//	              is deterministic and diffable)
//	-parallelism  worker count for the run (0 = sequential)
//	-optimize     run under precomputed program facts (head-symbol
//	              dispatch, pruned slices); the profile gains an
//	              `analysis:` line naming the facts in force. Counts
//	              and outputs are identical either way — mediator
//	              queries (-ask) always run optimized, like the
//	              serving layer
//	-ask          profile a mediator query (YATL pattern) instead of a
//	              full conversion
//	-functors     comma-separated Skolem functors restricting -ask
//	-demand       answer -ask demand-driven: materialize only the rule
//	              slice the functors need (the profile then shows the
//	              slice and per-rule cache decisions)
//	-fault        with -ask: serve the input store through the
//	              fault-tolerant source layer with N scripted failures
//	              before it heals; the query degrades through retries
//	              and the profile gains the per-source fetch/retry
//	              lines (the schedule runs on a fake clock — no real
//	              backoff sleeps)
//	-stats        with -ask: print the mediator's statistics (the
//	              shared mediator.Stats rendering, also served by
//	              yatserve's GET /stats) instead of the EXPLAIN
//	              profile; -json and -timing apply
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"yat"
	"yat/internal/library"
	"yat/internal/tree"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parses args, executes the program
// under a profile sink, and writes the rendered profile to stdout.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("yatprof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		programFlag = fs.String("program", "", "conversion program (.yatl file or built-in name)")
		inputFlag   = fs.String("input", "", "input store file (YAT tree syntax); default stdin")
		jsonFlag    = fs.Bool("json", false, "emit the profile as JSON")
		timingFlag  = fs.Bool("timing", false, "include wall-clock times in the profile")
		parFlag     = fs.Int("parallelism", 0, "worker count for the run (0 = sequential)")
		optFlag     = fs.Bool("optimize", false, "run under precomputed program facts (EXPLAIN gains the analysis line)")
		askFlag     = fs.String("ask", "", "profile a mediator query (YATL pattern) instead of a run")
		funcFlag    = fs.String("functors", "", "comma-separated Skolem functors restricting -ask")
		demandFlag  = fs.Bool("demand", false, "answer -ask demand-driven (slice + per-rule cache)")
		faultFlag   = fs.Int("fault", 0, "with -ask: inject N scripted source failures before the input store serves")
		statsFlag   = fs.Bool("stats", false, "with -ask: print mediator stats instead of the EXPLAIN profile")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *programFlag == "" {
		fmt.Fprintln(stderr, "yatprof: -program is required")
		fs.Usage()
		return 2
	}

	prog, err := loadProgram(*programFlag)
	if err != nil {
		fmt.Fprintln(stderr, "yatprof:", err)
		return 1
	}
	inputs, err := loadInputs(*inputFlag)
	if err != nil {
		fmt.Fprintln(stderr, "yatprof:", err)
		return 1
	}

	profile := yat.NewTraceProfile()
	var warnings []string
	if *faultFlag > 0 && *askFlag == "" {
		fmt.Fprintln(stderr, "yatprof: -fault requires -ask (it exercises the mediator's source layer)")
		return 2
	}
	if *statsFlag && *askFlag == "" {
		fmt.Fprintln(stderr, "yatprof: -stats requires -ask (stats describe a mediator)")
		return 2
	}
	var med *yat.Mediator
	if *askFlag != "" {
		opts := []yat.Option{
			yat.WithTrace(profile),
			yat.WithParallelism(*parFlag),
			yat.WithDemandDriven(*demandFlag),
		}
		if *faultFlag > 0 {
			// Serve the store through the fault layer: N scripted
			// failures, then healthy, retried on a fake clock so the
			// exponential backoff costs no wall time.
			clock := yat.NewFakeSourceClock()
			steps := make([]yat.FaultStep, *faultFlag)
			for i := range steps {
				steps[i] = yat.FaultStep{Fail: fmt.Errorf("injected fault %d", i+1)}
			}
			fault := yat.NewFaultSource("input", inputs, steps...).WithClock(clock)
			src := yat.SourceWithRetry(fault, yat.RetryOptions{
				MaxAttempts: *faultFlag + 1,
				Clock:       clock,
			})
			opts = append(opts, yat.WithSources(src))
			inputs = nil
		}
		med = yat.NewMediator(prog, inputs, opts...)
		var functors []string
		for _, f := range strings.Split(*funcFlag, ",") {
			if f = strings.TrimSpace(f); f != "" {
				functors = append(functors, f)
			}
		}
		var answers []yat.MediatorAnswer
		answers, err = med.Ask(*askFlag, functors...)
		if err == nil {
			fmt.Fprintf(stdout, "answers: %d\n", len(answers))
		}
	} else {
		opts := []yat.Option{
			yat.WithTrace(profile),
			yat.WithParallelism(*parFlag),
		}
		if *optFlag {
			opts = append(opts, yat.WithFacts(yat.AnalyzeProgram(prog)))
		}
		var result *yat.Result
		result, err = yat.Run(prog, inputs, opts...)
		warnings = warningsOf(result)
	}
	// A failed run still has a profile worth printing (it shows how
	// far the conversion got); report the error after the table.
	for _, w := range warnings {
		fmt.Fprintln(stderr, "yatprof: warning:", w)
	}
	if *statsFlag {
		stats := med.Stats()
		if *jsonFlag {
			data, jerr := stats.JSON(*timingFlag)
			if jerr != nil {
				fmt.Fprintln(stderr, "yatprof:", jerr)
				return 1
			}
			fmt.Fprintf(stdout, "%s\n", data)
		} else if rerr := stats.Render(stdout, *timingFlag); rerr != nil {
			fmt.Fprintln(stderr, "yatprof:", rerr)
			return 1
		}
	} else if *jsonFlag {
		data, jerr := profile.JSON(*timingFlag)
		if jerr != nil {
			fmt.Fprintln(stderr, "yatprof:", jerr)
			return 1
		}
		fmt.Fprintf(stdout, "%s\n", data)
	} else if rerr := profile.Render(stdout, *timingFlag); rerr != nil {
		fmt.Fprintln(stderr, "yatprof:", rerr)
		return 1
	}
	if err != nil {
		fmt.Fprintln(stderr, "yatprof:", err)
		return 1
	}
	return 0
}

func warningsOf(result *yat.Result) []string {
	if result == nil {
		return nil
	}
	return result.Warnings
}

func loadProgram(spec string) (*yat.Program, error) {
	if strings.HasSuffix(spec, ".yatl") {
		return library.LoadProgram(spec)
	}
	if p, ok := library.Builtin().Program(spec); ok {
		return p, nil
	}
	return nil, fmt.Errorf("unknown program %q (not a .yatl file or built-in)", spec)
}

func loadInputs(inputFile string) (*yat.Store, error) {
	var data []byte
	var err error
	if inputFile == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(inputFile)
	}
	if err != nil {
		return nil, err
	}
	return tree.ParseStore(string(data))
}
