package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"yat/internal/tree"
	"yat/internal/workload"
)

// brochureFile writes a synthetic brochure store to disk and returns
// its path.
func brochureFile(t *testing.T) string {
	t.Helper()
	store := workload.BrochureStore(8, 2, 5, 42)
	path := filepath.Join(t.TempDir(), "brochures.yat")
	if err := os.WriteFile(path, []byte(tree.FormatStore(store)), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runProf(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestTextProfile(t *testing.T) {
	input := brochureFile(t)
	code, out, errOut := runProf(t, "-program", "sgml2odmg", "-input", input)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"EXPLAIN sgml2odmg", "rule Car", "rule Sup", "fired=", "skolems=", "match", "calls      city="} {
		if !strings.Contains(out, want) {
			t.Errorf("profile missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "wall=") {
		t.Error("timing shown without -timing")
	}
}

func TestTimingFlag(t *testing.T) {
	input := brochureFile(t)
	code, out, errOut := runProf(t, "-program", "sgml2odmg", "-input", input, "-timing")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "wall=") || !strings.Contains(out, "total:") {
		t.Errorf("-timing output missing wall times:\n%s", out)
	}
}

// TestDeterministicAcrossRunsAndParallelism pins the tool's headline
// property: without -timing the profile is byte-identical run to run
// and at any parallelism.
func TestDeterministicAcrossRunsAndParallelism(t *testing.T) {
	input := brochureFile(t)
	_, want, _ := runProf(t, "-program", "sgml2odmg", "-input", input)
	for _, par := range []string{"1", "4", "8"} {
		code, out, errOut := runProf(t, "-program", "sgml2odmg", "-input", input, "-parallelism", par)
		if code != 0 {
			t.Fatalf("parallelism=%s: exit %d, stderr: %s", par, code, errOut)
		}
		if out != want {
			t.Errorf("parallelism=%s profile diverges:\n got: %s\nwant: %s", par, out, want)
		}
	}
}

func TestJSONProfile(t *testing.T) {
	input := brochureFile(t)
	code, out, errOut := runProf(t, "-program", "sgml2odmg", "-input", input, "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	var doc struct {
		Program string `json:"program"`
		Rounds  int    `json:"rounds"`
		Rules   []struct {
			Rule  string `json:"rule"`
			Fired int    `json:"fired"`
		} `json:"rules"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if doc.Rounds == 0 || len(doc.Rules) == 0 {
		t.Errorf("empty profile: %+v", doc)
	}
	// Stable across repeat runs (timing omitted).
	_, again, _ := runProf(t, "-program", "sgml2odmg", "-input", input, "-json")
	if again != out {
		t.Error("JSON profile differs between identical runs")
	}
}

func TestBadUsage(t *testing.T) {
	if code, _, _ := runProf(t); code != 2 {
		t.Errorf("missing -program: exit %d, want 2", code)
	}
	if code, _, errOut := runProf(t, "-program", "no-such-program", "-input", os.DevNull); code != 1 {
		t.Errorf("unknown program: exit %d, want 1 (stderr %s)", code, errOut)
	}
}

// -fault serves the store through the source layer with a scripted
// failure schedule: the answers match the healthy run and the profile
// gains the source fetch/retry lines.
func TestFaultFlag(t *testing.T) {
	input := brochureFile(t)
	_, healthy, _ := runProf(t, "-program", "sgml2odmg", "-input", input,
		"-ask", "X", "-functors", "Psup")
	code, out, errOut := runProf(t, "-program", "sgml2odmg", "-input", input,
		"-ask", "X", "-functors", "Psup", "-fault", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	wantAnswers := ""
	for _, line := range strings.Split(healthy, "\n") {
		if strings.HasPrefix(line, "answers:") {
			wantAnswers = line
		}
	}
	if wantAnswers == "" || !strings.Contains(out, wantAnswers) {
		t.Errorf("faulted answers differ from healthy (%q):\n%s", wantAnswers, out)
	}
	// Both injected faults were absorbed by retries, so the mediator's
	// fetch itself succeeded: failures=0 but retries=2.
	for _, want := range []string{"source input  fetches=1 failures=0 retries=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile missing %q:\n%s", want, out)
		}
	}
}

// -stats swaps the EXPLAIN profile for the mediator's statistics,
// rendered by the shared mediator.StatsView renderer (the same one
// yatserve's GET /stats serves).
func TestStatsFlag(t *testing.T) {
	input := brochureFile(t)
	args := []string{"-program", "sgml2odmg", "-input", input,
		"-ask", "X", "-functors", "Psup", "-demand", "-stats"}
	code, out, errOut := runProf(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"mediator stats (generation 1, demand mode)", "asks: 1", "cached-rules:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "EXPLAIN") {
		t.Error("-stats still printed the EXPLAIN profile")
	}

	code, jsonOut, errOut := runProf(t, append(args, "-json")...)
	if code != 0 {
		t.Fatalf("-json exit %d, stderr: %s", code, errOut)
	}
	// The document is the StatsView schema, deterministic without
	// -timing.
	var doc struct {
		Generation  int64 `json:"generation"`
		Demand      bool  `json:"demand"`
		Asks        int64 `json:"asks"`
		CachedRules int   `json:"cached_rules"`
	}
	body := jsonOut[strings.Index(jsonOut, "{"):]
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, jsonOut)
	}
	if doc.Generation != 1 || !doc.Demand || doc.Asks != 1 || doc.CachedRules == 0 {
		t.Errorf("unexpected stats document: %+v", doc)
	}
	if _, again, _ := runProf(t, append(args, "-json")...); again != jsonOut {
		t.Error("stats JSON differs between identical runs")
	}
}

func TestStatsRequiresAsk(t *testing.T) {
	input := brochureFile(t)
	code, _, errOut := runProf(t, "-program", "sgml2odmg", "-input", input, "-stats")
	if code != 2 || !strings.Contains(errOut, "-ask") {
		t.Fatalf("exit %d, stderr: %s; want usage error mentioning -ask", code, errOut)
	}
}

func TestFaultRequiresAsk(t *testing.T) {
	input := brochureFile(t)
	code, _, errOut := runProf(t, "-program", "sgml2odmg", "-input", input, "-fault", "1")
	if code != 2 || !strings.Contains(errOut, "-ask") {
		t.Fatalf("exit %d, stderr: %s; want usage error mentioning -ask", code, errOut)
	}
}

// TestOptimizeFlag: -optimize adds the analysis line to the profile
// and changes nothing else — per-rule counts are identical because the
// dispatch index only skips rules that could never have matched.
func TestOptimizeFlag(t *testing.T) {
	input := brochureFile(t)
	code, plain, errOut := runProf(t, "-program", "sgml2odmg", "-input", input)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if strings.Contains(plain, "analysis:") {
		t.Errorf("unoptimized profile carries an analysis line:\n%s", plain)
	}
	code, opt, errOut := runProf(t, "-program", "sgml2odmg", "-input", input, "-optimize")
	if code != 0 {
		t.Fatalf("-optimize: exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(opt, "analysis: syms=") {
		t.Fatalf("-optimize profile missing the analysis line:\n%s", opt)
	}
	var stripped []string
	for _, line := range strings.Split(opt, "\n") {
		if strings.HasPrefix(line, "analysis:") {
			continue
		}
		stripped = append(stripped, line)
	}
	if got := strings.Join(stripped, "\n"); got != plain {
		t.Errorf("-optimize changed the profile beyond the analysis line:\n got:\n%s\nwant:\n%s", got, plain)
	}
}
