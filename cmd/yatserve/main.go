// Yatserve runs the mediator as a long-running network service: a
// pool of demand-driven mediators behind an HTTP/JSON API.
//
//	POST /ask                        pattern query over the virtual target
//	GET  /functors                   Skolem functors of the target
//	GET  /stats                      pool-wide mediator stats (?timing=0 for
//	                                 the deterministic document)
//	GET  /explain                    an ask under a request-scoped EXPLAIN
//	                                 profile (also POST /ask?explain=1)
//	GET  /healthz                    liveness + per-source health
//	POST /admin/reload               hot-swap a recompiled program (body =
//	                                 YATL source)
//	POST /admin/refresh-source/{name}  re-fetch one source
//
// SIGINT/SIGTERM trigger a graceful drain: in-flight asks get up to
// -drain to finish, then the process exits 0 on a clean drain.
//
// Usage:
//
//	yatserve [flags]
//
//	-addr         listen address (default :8080)
//	-program      a .yatl file, the name of a built-in library program
//	              (sgml2odmg, sgml2odmgTyped, sgml2odmgPrime, odmg2html),
//	              or selective:K — the synthetic K-view selective-ask
//	              program the load harness targets. A comma-separated
//	              list is a cross-mediator pipeline, fused into one
//	              program with §4 composition before serving — the
//	              intermediate models never exist
//	-input        input store: a file in YAT tree syntax, or
//	              brochures:N,S,P[,seed] — a synthetic store of N
//	              brochures with S suppliers each from a pool of P
//	-split        serve the input through N static sources instead of a
//	              pre-materialized store (exercises the source layer and
//	              per-source health; 0 = direct store)
//	-pool         mediator lanes (default 4)
//	-parallelism  engine worker count per lane (0 = sequential)
//	-demand       demand-driven lanes (default true; -demand=false
//	              materializes the full target per lane)
//	-shards       shard the program across N in-process child mediators
//	              behind a federation router (0 = plain pool)
//	-child        base URL of a remote yatserve child; repeatable. The
//	              server becomes a parent federation over the children,
//	              discovering each child's functors at startup;
//	              -program is then optional
//	-shard        i/n — serve only shard i (0-based) of the program's
//	              n-way plan: the closed sub-program for that shard's
//	              functor groups. This is how federation children are
//	              launched
//	-drain        graceful-drain deadline on shutdown (default 10s)
//	-snapshot-dir directory for the durable warm-start snapshot. On
//	              boot the server restores its lanes from
//	              <dir>/yatserve.snapshot.json when the snapshot's
//	              program+options hashes match (any mismatch boots
//	              cold); POST /admin/snapshot writes one on demand
//	-snapshot-on-drain  also write a snapshot during graceful shutdown
//	              (after in-flight asks drain; needs -snapshot-dir)
//	-quiet        suppress operational logs
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"yat/internal/engine"
	"yat/internal/federate"
	"yat/internal/library"
	"yat/internal/mediator"
	"yat/internal/serve"
	"yat/internal/source"
	"yat/internal/tree"
	"yat/internal/workload"
	"yat/internal/yatl"
)

// stringList collects a repeatable flag (-child URL -child URL ...).
type stringList []string

func (l *stringList) String() string     { return strings.Join(*l, ",") }
func (l *stringList) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("yatserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addrFlag   = fs.String("addr", ":8080", "listen address")
		progFlag   = fs.String("program", "", "conversion program (.yatl file, built-in name, or selective:K)")
		inputFlag  = fs.String("input", "", "input store (file, or brochures:N,S,P[,seed])")
		splitFlag  = fs.Int("split", 0, "serve the input via N static sources (0 = direct store)")
		poolFlag   = fs.Int("pool", 4, "mediator lanes")
		parFlag    = fs.Int("parallelism", 0, "engine worker count per lane (0 = sequential)")
		demandFlag = fs.Bool("demand", true, "demand-driven lanes")
		shardsFlag = fs.Int("shards", 0, "shard across N in-process federation children (0 = plain pool)")
		shardFlag  = fs.String("shard", "", "i/n — serve only shard i of the program's n-way plan")
		drainFlag  = fs.Duration("drain", 10*time.Second, "graceful-drain deadline on shutdown")
		snapFlag   = fs.String("snapshot-dir", "", "directory for the durable warm-start snapshot (empty = disabled)")
		snapDrain  = fs.Bool("snapshot-on-drain", false, "write a snapshot during graceful shutdown (needs -snapshot-dir)")
		quietFlag  = fs.Bool("quiet", false, "suppress operational logs")
	)
	var childFlag stringList
	fs.Var(&childFlag, "child", "base URL of a remote yatserve child (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *progFlag == "" && len(childFlag) == 0 {
		fmt.Fprintln(stderr, "yatserve: -program is required (unless -child children are given)")
		fs.Usage()
		return 2
	}

	progs, err := loadPrograms(*progFlag)
	if err != nil {
		fmt.Fprintln(stderr, "yatserve:", err)
		return 1
	}
	inputs, err := loadInputs(*inputFlag)
	if err != nil {
		fmt.Fprintln(stderr, "yatserve:", err)
		return 1
	}

	if *snapDrain && *snapFlag == "" {
		fmt.Fprintln(stderr, "yatserve: -snapshot-on-drain needs -snapshot-dir")
		return 2
	}
	cfg := serve.Config{
		Demand:          demandFlag,
		Pool:            *poolFlag,
		DrainTimeout:    *drainFlag,
		SnapshotDir:     *snapFlag,
		SnapshotOnDrain: *snapDrain,
	}
	if len(progs) > 0 {
		cfg.Prog = progs[0]
	}
	if *parFlag > 0 {
		cfg.Options = []engine.Option{engine.WithParallelism(*parFlag)}
	}
	logf := func(string, ...any) {}
	if !*quietFlag {
		logger := log.New(stderr, "", log.LstdFlags)
		cfg.Logf = logger.Printf
		logf = logger.Printf
	}
	var sources []source.Source
	if *splitFlag > 0 {
		if inputs == nil {
			fmt.Fprintln(stderr, "yatserve: -split needs an -input store to split")
			return 2
		}
		for i, part := range workload.SplitStore(inputs, *splitFlag) {
			sources = append(sources, source.Static(fmt.Sprintf("src%d", i+1), part))
		}
	}

	// A multi-program pipeline is fused up front, so every serving mode
	// below — plain pool, one shard, a federation — works off the
	// one-step program. Fusing here (not in federate.New) also covers
	// -shard children, which serve a slice of the fused program.
	if len(progs) > 1 {
		fused, err := federate.FusePipeline(progs, nil)
		if err != nil {
			fmt.Fprintln(stderr, "yatserve:", err)
			return 1
		}
		logf("yatserve: fused %d-program pipeline into %q (%d rules)",
			len(progs), fused.Name, len(fused.Rules))
		progs = []*yatl.Program{fused}
		cfg.Prog = fused
	}

	if *shardFlag != "" {
		if cfg.Prog == nil {
			fmt.Fprintln(stderr, "yatserve: -shard needs a -program to slice")
			return 2
		}
		sub, owned, err := shardProgram(cfg.Prog, *shardFlag)
		if err != nil {
			fmt.Fprintln(stderr, "yatserve:", err)
			return 1
		}
		logf("yatserve: serving shard %s of %q: functors %s",
			*shardFlag, cfg.Prog.Name, strings.Join(owned, ","))
		cfg.Prog = sub
	}

	switch {
	case len(childFlag) > 0:
		// Parent federation over remote children: one router lane, the
		// children discovered live.
		fcfg := federate.Config{Programs: progs}
		for _, base := range childFlag {
			fcfg.Children = append(fcfg.Children, federate.Child{
				Asker: federate.NewClient(base, nil),
			})
		}
		fed, err := federate.New(fcfg)
		if err != nil {
			fmt.Fprintln(stderr, "yatserve:", err)
			return 1
		}
		logf("yatserve: federation over %d remote children: %s",
			len(childFlag), strings.Join(fed.Children(), ","))
		cfg.Askers = []mediator.Asker{fed}
	case *shardsFlag > 0:
		fopts := append([]engine.Option{}, cfg.Options...)
		fopts = append(fopts, mediator.WithDemandDriven(*demandFlag))
		if len(sources) > 0 {
			fopts = append(fopts, mediator.WithSources(sources...))
			sources = nil
		}
		fed, err := federate.New(federate.Config{
			Programs: progs,
			Shards:   *shardsFlag,
			Inputs:   inputs,
			Options:  fopts,
		})
		if err != nil {
			fmt.Fprintln(stderr, "yatserve:", err)
			return 1
		}
		logf("yatserve: sharded %q across %d in-process children",
			cfg.Prog.Name, len(fed.Children()))
		cfg.Askers = []mediator.Asker{fed}
	}

	if len(sources) > 0 {
		cfg.Sources = sources
	} else {
		cfg.Inputs = inputs
	}

	s, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "yatserve:", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := s.ListenAndServe(ctx, *addrFlag); err != nil {
		fmt.Fprintln(stderr, "yatserve:", err)
		return 1
	}
	return 0
}

// loadPrograms resolves a -program spec: one program, or a
// comma-separated pipeline of them (fused by the caller).
func loadPrograms(spec string) ([]*yatl.Program, error) {
	if spec == "" {
		return nil, nil
	}
	var progs []*yatl.Program
	for _, part := range strings.Split(spec, ",") {
		// selective:K contains no comma; a bare comma-separated list is
		// unambiguous.
		p, err := loadProgram(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		progs = append(progs, p)
	}
	return progs, nil
}

// shardProgram parses an i/n spec and returns shard i's closed
// sub-program plus its owned functor groups.
func shardProgram(prog *yatl.Program, spec string) (*yatl.Program, []string, error) {
	idx, total, ok := strings.Cut(spec, "/")
	if !ok {
		return nil, nil, fmt.Errorf("bad -shard %q: want i/n", spec)
	}
	i, err1 := strconv.Atoi(idx)
	n, err2 := strconv.Atoi(total)
	if err1 != nil || err2 != nil || n < 1 || i < 0 || i >= n {
		return nil, nil, fmt.Errorf("bad -shard %q: want i/n with 0 <= i < n", spec)
	}
	plans := federate.PlanShards(prog, n)
	if i >= len(plans) {
		// n was clamped to the functor-group count; an out-of-range
		// child has nothing to serve.
		return nil, nil, fmt.Errorf("-shard %s: plan has only %d shards (functor groups)", spec, len(plans))
	}
	return plans[i].Prog, plans[i].Functors, nil
}

// loadProgram resolves one program spec: a .yatl file, a built-in
// library name, or selective:K.
func loadProgram(spec string) (*yatl.Program, error) {
	if k, ok := strings.CutPrefix(spec, "selective:"); ok {
		n, err := strconv.Atoi(k)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad spec %q: want selective:K with K > 0", spec)
		}
		return yatl.Parse(workload.SelectiveProgram(n))
	}
	if strings.HasSuffix(spec, ".yatl") {
		return library.LoadProgram(spec)
	}
	if p, ok := library.Builtin().Program(spec); ok {
		return p, nil
	}
	return nil, fmt.Errorf("unknown program %q (not a .yatl file, built-in, or selective:K)", spec)
}

// loadInputs resolves an -input spec: empty (no inputs — the program
// must be fed by sources or need none), a brochures:N,S,P[,seed]
// synthetic store, or a file in YAT tree syntax.
func loadInputs(spec string) (*tree.Store, error) {
	if spec == "" {
		return nil, nil
	}
	if args, ok := strings.CutPrefix(spec, "brochures:"); ok {
		parts := strings.Split(args, ",")
		if len(parts) != 3 && len(parts) != 4 {
			return nil, fmt.Errorf("bad spec %q: want brochures:N,S,P[,seed]", spec)
		}
		nums := make([]int, len(parts))
		for i, p := range parts {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad spec %q: %q is not a non-negative integer", spec, p)
			}
			nums[i] = n
		}
		seed := uint64(42)
		if len(nums) == 4 {
			seed = uint64(nums[3])
		}
		return workload.BrochureStore(nums[0], nums[1], nums[2], seed), nil
	}
	data, err := os.ReadFile(spec)
	if err != nil {
		return nil, err
	}
	return tree.ParseStore(string(data))
}
