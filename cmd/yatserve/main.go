// Yatserve runs the mediator as a long-running network service: a
// pool of demand-driven mediators behind an HTTP/JSON API.
//
//	POST /ask                        pattern query over the virtual target
//	GET  /functors                   Skolem functors of the target
//	GET  /stats                      pool-wide mediator stats (?timing=0 for
//	                                 the deterministic document)
//	GET  /explain                    an ask under a request-scoped EXPLAIN
//	                                 profile (also POST /ask?explain=1)
//	GET  /healthz                    liveness + per-source health
//	POST /admin/reload               hot-swap a recompiled program (body =
//	                                 YATL source)
//	POST /admin/refresh-source/{name}  re-fetch one source
//
// SIGINT/SIGTERM trigger a graceful drain: in-flight asks get up to
// -drain to finish, then the process exits 0 on a clean drain.
//
// Usage:
//
//	yatserve [flags]
//
//	-addr         listen address (default :8080)
//	-program      a .yatl file, the name of a built-in library program
//	              (sgml2odmg, sgml2odmgTyped, sgml2odmgPrime, odmg2html),
//	              or selective:K — the synthetic K-view selective-ask
//	              program the load harness targets
//	-input        input store: a file in YAT tree syntax, or
//	              brochures:N,S,P[,seed] — a synthetic store of N
//	              brochures with S suppliers each from a pool of P
//	-split        serve the input through N static sources instead of a
//	              pre-materialized store (exercises the source layer and
//	              per-source health; 0 = direct store)
//	-pool         mediator lanes (default 4)
//	-parallelism  engine worker count per lane (0 = sequential)
//	-demand       demand-driven lanes (default true; -demand=false
//	              materializes the full target per lane)
//	-drain        graceful-drain deadline on shutdown (default 10s)
//	-quiet        suppress operational logs
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"yat/internal/engine"
	"yat/internal/library"
	"yat/internal/serve"
	"yat/internal/source"
	"yat/internal/tree"
	"yat/internal/workload"
	"yat/internal/yatl"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("yatserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addrFlag   = fs.String("addr", ":8080", "listen address")
		progFlag   = fs.String("program", "", "conversion program (.yatl file, built-in name, or selective:K)")
		inputFlag  = fs.String("input", "", "input store (file, or brochures:N,S,P[,seed])")
		splitFlag  = fs.Int("split", 0, "serve the input via N static sources (0 = direct store)")
		poolFlag   = fs.Int("pool", 4, "mediator lanes")
		parFlag    = fs.Int("parallelism", 0, "engine worker count per lane (0 = sequential)")
		demandFlag = fs.Bool("demand", true, "demand-driven lanes")
		drainFlag  = fs.Duration("drain", 10*time.Second, "graceful-drain deadline on shutdown")
		quietFlag  = fs.Bool("quiet", false, "suppress operational logs")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *progFlag == "" {
		fmt.Fprintln(stderr, "yatserve: -program is required")
		fs.Usage()
		return 2
	}

	prog, err := loadProgram(*progFlag)
	if err != nil {
		fmt.Fprintln(stderr, "yatserve:", err)
		return 1
	}
	inputs, err := loadInputs(*inputFlag)
	if err != nil {
		fmt.Fprintln(stderr, "yatserve:", err)
		return 1
	}

	cfg := serve.Config{
		Prog:         prog,
		Demand:       demandFlag,
		Pool:         *poolFlag,
		DrainTimeout: *drainFlag,
	}
	if *parFlag > 0 {
		cfg.Options = []engine.Option{engine.WithParallelism(*parFlag)}
	}
	if !*quietFlag {
		logger := log.New(stderr, "", log.LstdFlags)
		cfg.Logf = logger.Printf
	}
	if *splitFlag > 0 {
		if inputs == nil {
			fmt.Fprintln(stderr, "yatserve: -split needs an -input store to split")
			return 2
		}
		for i, part := range workload.SplitStore(inputs, *splitFlag) {
			cfg.Sources = append(cfg.Sources, source.Static(fmt.Sprintf("src%d", i+1), part))
		}
	} else {
		cfg.Inputs = inputs
	}

	s, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "yatserve:", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := s.ListenAndServe(ctx, *addrFlag); err != nil {
		fmt.Fprintln(stderr, "yatserve:", err)
		return 1
	}
	return 0
}

// loadProgram resolves a -program spec: a .yatl file, a built-in
// library name, or selective:K.
func loadProgram(spec string) (*yatl.Program, error) {
	if k, ok := strings.CutPrefix(spec, "selective:"); ok {
		n, err := strconv.Atoi(k)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad spec %q: want selective:K with K > 0", spec)
		}
		return yatl.Parse(workload.SelectiveProgram(n))
	}
	if strings.HasSuffix(spec, ".yatl") {
		return library.LoadProgram(spec)
	}
	if p, ok := library.Builtin().Program(spec); ok {
		return p, nil
	}
	return nil, fmt.Errorf("unknown program %q (not a .yatl file, built-in, or selective:K)", spec)
}

// loadInputs resolves an -input spec: empty (no inputs — the program
// must be fed by sources or need none), a brochures:N,S,P[,seed]
// synthetic store, or a file in YAT tree syntax.
func loadInputs(spec string) (*tree.Store, error) {
	if spec == "" {
		return nil, nil
	}
	if args, ok := strings.CutPrefix(spec, "brochures:"); ok {
		parts := strings.Split(args, ",")
		if len(parts) != 3 && len(parts) != 4 {
			return nil, fmt.Errorf("bad spec %q: want brochures:N,S,P[,seed]", spec)
		}
		nums := make([]int, len(parts))
		for i, p := range parts {
			n, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad spec %q: %q is not a non-negative integer", spec, p)
			}
			nums[i] = n
		}
		seed := uint64(42)
		if len(nums) == 4 {
			seed = uint64(nums[3])
		}
		return workload.BrochureStore(nums[0], nums[1], nums[2], seed), nil
	}
	data, err := os.ReadFile(spec)
	if err != nil {
		return nil, err
	}
	return tree.ParseStore(string(data))
}
