package main

import (
	"strings"
	"testing"
)

func TestLoadProgramSpecs(t *testing.T) {
	prog, err := loadProgram("selective:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 3 {
		t.Fatalf("selective:3 has %d rules", len(prog.Rules))
	}
	if _, err := loadProgram("sgml2odmg"); err != nil {
		t.Fatalf("builtin: %v", err)
	}
	for _, bad := range []string{"selective:0", "selective:x", "no-such-program"} {
		if _, err := loadProgram(bad); err == nil {
			t.Errorf("loadProgram(%q) accepted a bad spec", bad)
		}
	}
}

func TestLoadInputSpecs(t *testing.T) {
	store, err := loadInputs("brochures:5,2,7")
	if err != nil {
		t.Fatal(err)
	}
	if store == nil || len(store.Names()) == 0 {
		t.Fatal("empty brochures store")
	}
	// The optional fourth field seeds the generator: distinct seeds,
	// distinct stores; same seed, same store.
	a, _ := loadInputs("brochures:5,2,7,1")
	b, _ := loadInputs("brochures:5,2,7,1")
	if len(a.Names()) != len(b.Names()) {
		t.Fatal("same seed produced different stores")
	}
	if s, err := loadInputs(""); err != nil || s != nil {
		t.Fatalf("empty spec: %v %v", s, err)
	}
	for _, bad := range []string{"brochures:5,2", "brochures:a,b,c", "no/such/file.yat"} {
		if _, err := loadInputs(bad); err == nil {
			t.Errorf("loadInputs(%q) accepted a bad spec", bad)
		}
	}
}

func TestRunBadUsage(t *testing.T) {
	var stderr strings.Builder
	if code := run(nil, &stderr); code != 2 {
		t.Errorf("missing -program: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-program", "selective:2", "-split", "2"}, &stderr); code != 2 {
		t.Errorf("-split without -input: exit %d, want 2 (stderr %s)", code, stderr.String())
	}
}
