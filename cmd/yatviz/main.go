// Yatviz inspects YAT artifacts: it pretty-prints programs, shows
// their rule hierarchies, conflicts and inferred signatures, and
// renders stores as Graphviz DOT — the textual stand-in for the
// original prototype's graphical editors (Figures 7 and 8).
//
// Usage:
//
//	yatviz -program <file.yatl | name>   print rules, hierarchy, signature
//	yatviz -store <file> [-dot]          print or DOT-render a store
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"yat/internal/engine"
	"yat/internal/library"
	"yat/internal/pattern"
	"yat/internal/tree"
	"yat/internal/typing"
	"yat/internal/yatl"
)

func main() {
	var (
		programFlag = flag.String("program", "", "program to inspect (.yatl file or built-in name)")
		storeFlag   = flag.String("store", "", "store file to inspect")
		dotFlag     = flag.Bool("dot", false, "render the store as Graphviz DOT")
	)
	flag.Parse()

	switch {
	case *programFlag != "":
		fail(inspectProgram(os.Stdout, *programFlag))
	case *storeFlag != "":
		fail(inspectStore(os.Stdout, *storeFlag, *dotFlag))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func inspectProgram(w io.Writer, spec string) error {
	var prog *yatl.Program
	var err error
	if strings.HasSuffix(spec, ".yatl") {
		prog, err = library.LoadProgram(spec)
	} else if p, ok := library.Builtin().Program(spec); ok {
		prog = p
	} else {
		err = fmt.Errorf("unknown program %q", spec)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "program %s: %d rules\n\n", prog.Name, len(prog.Rules))
	fmt.Fprint(w, prog.String())

	if err := engine.CheckSafety(prog); err != nil {
		fmt.Fprintf(w, "\nsafety: REJECTED — %v\n", err)
	} else {
		fmt.Fprintf(w, "\nsafety: ok (no dereferenced-Skolem cycle, or safe-recursive)\n")
	}

	model := pattern.NewModel()
	for _, m := range prog.Models {
		model = model.Merge(m.Model)
	}
	h := engine.BuildHierarchy(prog, model)
	fmt.Fprintln(w, "\nrule hierarchy (most specific first):")
	for _, f := range h.FunctorOrder {
		var names []string
		for _, r := range h.Groups[f] {
			names = append(names, r.Name)
		}
		fmt.Fprintf(w, "  %s: %s\n", f, strings.Join(names, " > "))
	}
	if len(h.Conflicts) > 0 {
		fmt.Fprintln(w, "conflicts (specific shadows general):")
		for _, c := range h.Conflicts {
			fmt.Fprintf(w, "  %s shadows %s\n", c[0], c[1])
		}
	}

	sig, err := typing.Infer(prog, nil)
	if err != nil {
		fmt.Fprintf(w, "\nsignature: inference failed: %v\n", err)
		return nil
	}
	fmt.Fprintf(w, "\nsignature M_IN ↦ M_OUT:\n%s", sig.String())
	return nil
}

func inspectStore(w io.Writer, path string, dot bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	store, err := tree.ParseStore(string(data))
	if err != nil {
		return err
	}
	if dot {
		fmt.Fprint(w, tree.Dot(store.Entries(), path))
		return nil
	}
	for _, e := range store.Entries() {
		fmt.Fprintf(w, "%s:\n%s", e.Name, e.Tree.Indent())
	}
	return nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "yatviz:", err)
		os.Exit(1)
	}
}
