package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestInspectBuiltinProgram(t *testing.T) {
	var b strings.Builder
	if err := inspectProgram(&b, "odmg2html"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{
		"program odmg2html: 6 rules",
		"safety: ok",
		"rule hierarchy",
		"Web6 shadows Web2",
		"signature M_IN",
		"HtmlPage",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q", frag)
		}
	}
}

func TestInspectUnknownProgram(t *testing.T) {
	var b strings.Builder
	if err := inspectProgram(&b, "nope"); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestInspectStore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.yat")
	if err := os.WriteFile(path, []byte(`b1: brochure < title < "Golf" > >`), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := inspectStore(&b, path, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "brochure") {
		t.Errorf("store dump wrong: %s", b.String())
	}
	b.Reset()
	if err := inspectStore(&b, path, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "digraph yat") {
		t.Errorf("dot dump wrong: %s", b.String())
	}
	if err := inspectStore(&b, filepath.Join(dir, "missing"), false); err == nil {
		t.Error("missing store accepted")
	}
}
