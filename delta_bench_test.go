package yat

// The incremental-refresh performance gate. A refresh that touches a
// small fraction of one source's entries must beat wholesale
// re-materialization by a wide margin — that is the whole point of the
// delta path. The gate is env-gated like the soak (YAT_DELTA_BENCH=1),
// runs the partitioned workload (k independent rule families, so a
// delta in one family leaves k-1 cached groups untouched), and asserts
// the checked-in ratio floor. YAT_DELTA_BENCH_OUT writes the JSON
// report CI archives and compares against BENCH_delta.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"yat/internal/engine"
	"yat/internal/mediator"
	"yat/internal/source"
	"yat/internal/tree"
	"yat/internal/workload"
	"yat/internal/yatl"
)

const (
	deltaBenchFamilies = 16
	deltaBenchPerFam   = 100
	deltaBenchGrow     = 5 // < 10% of one family, far under 10% of the source
	deltaBenchRounds   = 7
	deltaBenchFloor    = 3.0 // delta refresh must be at least this much faster
)

type deltaBenchReport struct {
	Families      int     `json:"families"`
	EntriesPerFam int     `json:"entries_per_family"`
	GrownEntries  int     `json:"grown_entries"`
	Rounds        int     `json:"rounds"`
	DeltaMedianMS float64 `json:"delta_median_ms"`
	FullMedianMS  float64 `json:"full_median_ms"`
	Speedup       float64 `json:"speedup"`
	FloorX        float64 `json:"floor_x"`
}

func grownPartitionedStore(base *tree.Store, round int) *tree.Store {
	s := base.Clone()
	for j := 0; j < deltaBenchGrow; j++ {
		n, t := workload.PartitionedEntry(1, fmt.Sprintf("g%02d_%02d", round, j),
			int64(deltaBenchPerFam+round*deltaBenchGrow+j))
		s.Put(n, t)
	}
	return s
}

func median(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// TestDeltaBenchGate measures, per round, the wall time of absorbing a
// refresh that grows family 1 by deltaBenchGrow entries and re-asking
// every family — once through RefreshSource (the delta path) and once
// through Invalidate (full re-materialization) — and asserts the
// median speedup stays above the floor.
func TestDeltaBenchGate(t *testing.T) {
	if os.Getenv("YAT_DELTA_BENCH") == "" {
		t.Skip("set YAT_DELTA_BENCH=1 to run the delta-refresh performance gate")
	}
	prog := yatl.MustParse(workload.PartitionedProgram(deltaBenchFamilies))
	base := workload.PartitionedStore(deltaBenchFamilies, deltaBenchPerFam)
	ctx := context.Background()

	askAll := func(t *testing.T, m *mediator.Mediator) {
		t.Helper()
		for fam := 1; fam <= deltaBenchFamilies; fam++ {
			got, err := m.Ask(`X`, fmt.Sprintf("Ppart%d", fam))
			if err != nil {
				t.Fatalf("ask Ppart%d: %v", fam, err)
			}
			if len(got) < deltaBenchPerFam {
				t.Fatalf("Ppart%d = %d answers, want >= %d", fam, len(got), deltaBenchPerFam)
			}
		}
	}

	var deltaTimes, fullTimes []time.Duration
	for round := 0; round < deltaBenchRounds; round++ {
		grown := grownPartitionedStore(base, round)

		// Delta lane: warm untimed, then time SetStore + RefreshSource +
		// re-ask of every family.
		fault := source.NewFault("src", base)
		m := mediator.New(prog, nil, engine.WithParallelism(4),
			mediator.WithDemandDriven(true), mediator.WithSources(fault))
		askAll(t, m)
		start := time.Now()
		fault.SetStore(grown)
		if err := m.RefreshSource(ctx, "src"); err != nil {
			t.Fatalf("refresh: %v", err)
		}
		askAll(t, m)
		deltaTimes = append(deltaTimes, time.Since(start))
		if st := m.Stats(); st.DeltaRuns != 1 || st.DeltaFallbacks != 0 {
			t.Fatalf("delta lane did not patch: %+v", st)
		}

		// Full lane: identical warm state, wholesale invalidation.
		fault2 := source.NewFault("src", base)
		m2 := mediator.New(prog, nil, engine.WithParallelism(4),
			mediator.WithDemandDriven(true), mediator.WithSources(fault2))
		askAll(t, m2)
		start = time.Now()
		fault2.SetStore(grown)
		m2.Invalidate()
		askAll(t, m2)
		fullTimes = append(fullTimes, time.Since(start))
	}

	deltaMed, fullMed := median(deltaTimes), median(fullTimes)
	speedup := float64(fullMed) / float64(deltaMed)
	t.Logf("delta median %v, full median %v, speedup %.1fx (floor %.1fx)",
		deltaMed, fullMed, speedup, deltaBenchFloor)

	if out := os.Getenv("YAT_DELTA_BENCH_OUT"); out != "" {
		rep := deltaBenchReport{
			Families:      deltaBenchFamilies,
			EntriesPerFam: deltaBenchPerFam,
			GrownEntries:  deltaBenchGrow,
			Rounds:        deltaBenchRounds,
			DeltaMedianMS: float64(deltaMed) / float64(time.Millisecond),
			FullMedianMS:  float64(fullMed) / float64(time.Millisecond),
			Speedup:       speedup,
			FloorX:        deltaBenchFloor,
		}
		js, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(js, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	if speedup < deltaBenchFloor {
		t.Fatalf("delta refresh speedup %.2fx below the %.1fx floor (delta %v, full %v)",
			speedup, deltaBenchFloor, deltaMed, fullMed)
	}
}

// BenchmarkDeltaRefresh times one insert-absorbing refresh cycle on
// the partitioned workload (grow family 1, refresh, re-ask it).
func BenchmarkDeltaRefresh(b *testing.B) {
	prog := mustProg(b, workload.PartitionedProgram(deltaBenchFamilies))
	base := workload.PartitionedStore(deltaBenchFamilies, deltaBenchPerFam)
	grown := grownPartitionedStore(base, 0)
	fault := source.NewFault("src", base)
	m := mediator.New(prog, nil, engine.WithParallelism(4),
		mediator.WithDemandDriven(true), mediator.WithSources(fault))
	for fam := 1; fam <= deltaBenchFamilies; fam++ {
		if _, err := m.Ask(`X`, fmt.Sprintf("Ppart%d", fam)); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			fault.SetStore(grown)
		} else {
			fault.SetStore(base)
		}
		if err := m.RefreshSource(ctx, "src"); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Ask(`X`, "Ppart1"); err != nil {
			b.Fatal(err)
		}
	}
}
