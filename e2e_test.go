package yat

// End-to-end tests over the public facade: the Figure 1 scenario and
// the cross-cutting guarantees a downstream user relies on.

import (
	"strings"
	"testing"

	"yat/internal/odmg"
	"yat/internal/pattern"
	"yat/internal/workload"
)

func TestE2EFigure1Scenario(t *testing.T) {
	// Sources.
	pool := workload.Suppliers(4, 2024)
	brochures := workload.Brochures(3, 2, pool, 2024)
	docs := map[string]string{}
	for i, b := range brochures {
		docs[string(rune('a'+i))] = b.SGML()
	}
	db := workload.DealerDatabase(brochures, pool, 2024)

	sgmlStore, err := ImportSGML(docs, nil)
	if err != nil {
		t.Fatal(err)
	}
	relStore := ImportRelational(db)
	inputs := NewStore()
	for _, e := range sgmlStore.Entries() {
		inputs.Put(e.Name, e.Tree)
	}
	for _, e := range relStore.Entries() {
		inputs.Put(e.Name, e.Tree)
	}

	// Conversion (1): to ODMG, materialized and schema-checked.
	prog, err := ParseProgram(Rules1And2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	objDB, err := ImportODMG(res.Outputs, odmg.CarDealerSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(objDB.OfClass("car")) != 3 {
		t.Errorf("cars = %d, want 3", len(objDB.OfClass("car")))
	}

	// Conversion (2): to HTML.
	web, err := ParseProgram(WebRules)
	if err != nil {
		t.Fatal(err)
	}
	webRes, err := Run(web, ExportODMG(objDB), nil)
	if err != nil {
		t.Fatal(err)
	}
	pages, err := ExportHTML(webRes.Outputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 3+len(objDB.OfClass("supplier")) {
		t.Errorf("pages = %d", len(pages))
	}
	for _, p := range pages {
		if !strings.Contains(p, "<html>") {
			t.Error("malformed page")
		}
	}
}

func TestE2ETypedPipelineTypeChecks(t *testing.T) {
	prog, err := ParseProgram(Rules1And2Typed)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckOutput(prog, nil, ODMGModel()); err != nil {
		t.Errorf("typed program should check against ODMG: %v", err)
	}
	if err := CheckInput(prog, nil, BrochureModel()); err != nil {
		t.Errorf("typed program should accept brochure inputs: %v", err)
	}
	web, err := ParseProgram(WebRules)
	if err != nil {
		t.Fatal(err)
	}
	if err := Compatible(prog, web, nil); err != nil {
		t.Errorf("pipeline should be compatible: %v", err)
	}
}

func TestE2ELibraryRoundTrip(t *testing.T) {
	lib := BuiltinLibrary()
	dir := t.TempDir()
	if err := lib.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	// A fresh process would reload and re-run identically.
	prog, ok := lib.Program("sgml2odmg")
	if !ok {
		t.Fatal("builtin program missing")
	}
	inputs := workload.BrochureStore(2, 2, 3, 1)
	r1, err := Run(prog, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := ParseProgram(prog.String())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(reparsed, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if FormatStore(r1.Outputs) != FormatStore(r2.Outputs) {
		t.Error("print/parse round trip changed program behaviour")
	}
}

func TestE2EDTDDerivedModelTypesTheProgram(t *testing.T) {
	// The DTD-derived model and the program's inferred input model
	// agree: imported documents conform to both.
	docs := workload.BrochureDocs(3, 2, 3, 6)
	inputs, err := ImportSGML(docs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range inputs.Entries() {
		if !Conforms(e.Tree, inputs, BrochureModel(), "Pbr") {
			t.Errorf("import does not conform to Pbr: %s", e.Name)
		}
	}
}

func TestE2EInstantiationChain(t *testing.T) {
	// The full Figure 2 chain through the facade.
	if err := InstanceOf(CarSchemaModel(), ODMGModel()); err != nil {
		t.Error(err)
	}
	if err := InstanceOf(ODMGModel(), YatModel()); err != nil {
		t.Error(err)
	}
	if err := InstanceOf(pattern.GolfModel(), CarSchemaModel()); err != nil {
		t.Error(err)
	}
}

func TestE2EMediatorOverScenario(t *testing.T) {
	prog, err := ParseProgram(Rules1And2)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMediator(prog, workload.BrochureStore(4, 2, 3, 12), nil)
	answers, err := m.Ask(`class -> supplier < -> name -> N, -> city -> C, -> zip -> Z >`, "Psup")
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no supplier answers")
	}
	for _, a := range answers {
		if a.Binding["Z"].Kind().String() != "int" {
			t.Errorf("zip should be int, got %v", a.Binding["Z"])
		}
	}
}
