package yat_test

// Runnable godoc examples for the public API, each pinned to the
// paper's expected output.

import (
	"fmt"

	"yat"
	"yat/internal/pattern"
)

const exampleBrochure = `<brochure>
  <number>1</number>
  <title>Golf</title>
  <model>1995</model>
  <desc>Sympa</desc>
  <spplrs>
    <supplier><name>VW center</name><address>Bd Lenoir, 75005 Paris</address></supplier>
  </spplrs>
</brochure>`

// Converting an SGML brochure with the paper's Rules 1 and 2.
func ExampleRun() {
	prog, _ := yat.ParseProgram(yat.Rules1And2)
	inputs, _ := yat.ImportSGML(map[string]string{"b1": exampleBrochure}, nil)
	result, _ := yat.Run(prog, inputs, nil)
	fmt.Print(yat.FormatStore(result.Outputs))
	// Output:
	// Psup("VW center"): class < supplier < name < "VW center" >, city < "Paris" >, zip < 75005 > > >
	// Pcar(&b1): class < car < name < "Golf" >, desc < "Sympa" >, suppliers < set < &Psup("VW center") > > > >
}

// The Figure 2 instantiation chain: more specific models instantiate
// more general ones.
func ExampleInstanceOf() {
	fmt.Println(yat.InstanceOf(yat.CarSchemaModel(), yat.ODMGModel()))
	fmt.Println(yat.InstanceOf(yat.ODMGModel(), yat.YatModel()))
	// The relation is not symmetric:
	fmt.Println(yat.InstanceOf(yat.YatModel(), yat.ODMGModel()) != nil)
	// Output:
	// <nil>
	// <nil>
	// true
}

// Rule 5 transposes a matrix through index edges (Figure 4).
func ExampleRun_transpose() {
	prog, _ := yat.ParseProgram(yat.TransposeRule)
	store := yat.NewStore()
	m, _ := yat.ParseTree(`sales < jan < golf < 10 >, polo < 20 > >,
	                               feb < golf < 30 >, polo < 40 > > >`)
	store.Put(yat.PlainName("m"), m)
	result, _ := yat.Run(prog, store, nil)
	out, _ := result.Outputs.Get(yat.SkolemName("New", yat.Ref{Name: yat.PlainName("m")}))
	fmt.Println(out)
	// Output:
	// sales < golf < jan < 10 >, feb < 30 > >, polo < jan < 20 >, feb < 40 > > >
}

// Instantiating the generic Web program onto the Pcar pattern derives
// rule WebCar (§4.1).
func ExampleInstantiate() {
	web, _ := yat.ParseProgram(yat.WebRules)
	env := yat.CarSchemaModel().Merge(yat.ODMGModel())
	derived, _ := yat.Instantiate(web, pattern.PcarPattern(), &yat.InstantiateOptions{Model: env})
	rule, _ := derived.Rule("Web1_Pcar")
	fmt.Println(rule.Head.Functor, "keyed by", rule.Head.Args[0].Var)
	fmt.Println("body patterns:", len(rule.Body))
	// Output:
	// HtmlPage keyed by Pcar
	// body patterns: 2
}

// Composing SGML→ODMG with ODMG→HTML yields a one-step program whose
// rules never mention the intermediate objects (§4.3).
func ExampleComposePrograms() {
	first, _ := yat.ParseProgram(yat.Rules1And2Typed)
	second, _ := yat.ParseProgram(yat.WebRules)
	composed, err := yat.ComposePrograms(first, second, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, r := range composed.Rules {
		fmt.Println(r.Name)
	}
	// Output:
	// Sup_Web1
	// Sup_Web6
	// Car_Web1
	// Car_Web6
}

// A mediator answers pattern queries over the virtual target.
func ExampleNewMediator() {
	prog, _ := yat.ParseProgram(yat.Rules1And2)
	inputs, _ := yat.ImportSGML(map[string]string{"b1": exampleBrochure}, nil)
	m := yat.NewMediator(prog, inputs, nil)
	answers, _ := m.Ask(`class -> supplier < -> name -> N, -> city -> C, -> zip -> Z >`, "Psup")
	for _, a := range answers {
		fmt.Println(a.Binding["N"].Display(), a.Binding["C"].Display(), a.Binding["Z"].Display())
	}
	// Output:
	// "VW center" "Paris" 75005
}

// Signature inference recovers variable types from function
// signatures and predicates (§3.5).
func ExampleInfer() {
	prog, _ := yat.ParseProgram(yat.Rules1And2Typed)
	err := yat.CheckOutput(prog, nil, yat.ODMGModel())
	fmt.Println("ODMG-compliant output:", err == nil)
	// Output:
	// ODMG-compliant output: true
}
