// Cardealer reproduces the full translation scenario of Figure 1: a
// car dealer company stores dealers in a relational system and car
// descriptions in SGML brochures; everything is integrated into an
// ODMG object database and published as HTML pages.
//
//	SGML brochures ──┐
//	                 ├─(1: Rules 1+2, Rule 3)──► ODMG objects
//	relational DB ───┘                              │
//	                                   (2: Web1–Web6)──► HTML pages
//
// Run with: go run ./examples/cardealer
package main

import (
	"fmt"
	"log"
	"sort"

	"yat"
	"yat/internal/odmg"
	"yat/internal/workload"
)

func main() {
	// ── Sources ────────────────────────────────────────────────────
	// Synthetic but paper-shaped: brochures and a dealer database
	// over a shared supplier pool.
	pool := workload.Suppliers(4, 2024)
	brochures := workload.Brochures(3, 2, pool, 2024)
	docs := map[string]string{}
	for i, b := range brochures {
		docs[fmt.Sprintf("b%d", i+1)] = b.SGML()
	}
	dealerDB := workload.DealerDatabase(brochures, pool, 2024)

	sgmlStore, err := yat.ImportSGML(docs, nil)
	if err != nil {
		log.Fatal(err)
	}
	relStore := yat.ImportRelational(dealerDB)

	inputs := yat.NewStore()
	for _, e := range sgmlStore.Entries() {
		inputs.Put(e.Name, e.Tree)
	}
	for _, e := range relStore.Entries() {
		inputs.Put(e.Name, e.Tree)
	}
	fmt.Printf("sources: %d SGML brochures + relational %v\n",
		sgmlStore.Len(), dealerDB.Names())

	// ── Conversion (1): both sources → ODMG ───────────────────────
	// Rules 1 and 2 convert brochures; Rule 3 joins them with the
	// relational database (§3.2). Combining the programs yields the
	// single unified conversion of Figure 1.
	fromSGML, err := yat.ParseProgram(yat.Rules1And2)
	if err != nil {
		log.Fatal(err)
	}
	result, err := yat.Run(fromSGML, inputs, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Materialize into the object database and validate against the
	// ODMG schema.
	db, err := yat.ImportODMG(result.Outputs, odmg.CarDealerSchema())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized: %d car objects, %d supplier objects (schema checked)\n",
		len(db.OfClass("car")), len(db.OfClass("supplier")))

	// ── Conversion (2): ODMG → HTML ────────────────────────────────
	web, err := yat.ParseProgram(yat.WebRules)
	if err != nil {
		log.Fatal(err)
	}
	objects := yat.ExportODMG(db)
	webResult, err := yat.Run(web, objects, nil)
	if err != nil {
		log.Fatal(err)
	}
	pages, err := yat.ExportHTML(webResult.Outputs, nil)
	if err != nil {
		log.Fatal(err)
	}

	urls := make([]string, 0, len(pages))
	for u := range pages {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	fmt.Printf("published %d HTML pages:\n", len(urls))
	for _, u := range urls {
		fmt.Println("  ", u)
	}
	fmt.Println("\n— first page —")
	fmt.Println(pages[urls[0]])
}
