// Composition reproduces §4.3: the SGML → ODMG program is composed
// with the ODMG → HTML program into a single SGML → HTML conversion
// that never materializes the intermediate objects — the paper's Rule
// (2+WebCar'). The example prints the fused rules, runs both the
// composed program and the two-step pipeline, and shows they publish
// the same pages.
//
// Run with: go run ./examples/composition
package main

import (
	"fmt"
	"log"

	"yat"
	"yat/internal/workload"
)

func main() {
	first, err := yat.ParseProgram(yat.Rules1And2Typed)
	if err != nil {
		log.Fatal(err)
	}
	second, err := yat.ParseProgram(yat.WebRules)
	if err != nil {
		log.Fatal(err)
	}

	// The §4.3 compatibility check: M2 must be an instance of M2'.
	if err := yat.Compatible(first, second, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("signatures compatible: out(sgml2odmg) ⊑ in(odmg2html)")

	composed, err := yat.ComposePrograms(first, second, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncomposed program %q: %d fused rules\n\n", composed.Name, len(composed.Rules))
	if rule, ok := composed.Rule("Car_Web1"); ok {
		fmt.Println("— Rule (2+WebCar'): car pages straight from brochures —")
		fmt.Println(rule.String())
	}

	inputs := workload.BrochureStore(5, 2, 4, 99)

	// One step.
	direct, err := yat.Run(composed, inputs, nil)
	if err != nil {
		log.Fatal(err)
	}
	directPages, _ := yat.ExportHTML(direct.Outputs, nil)

	// Two steps, materializing the ODMG objects in between.
	mid, err := yat.Run(first, inputs, nil)
	if err != nil {
		log.Fatal(err)
	}
	intermediate := yat.NewStore()
	for _, e := range mid.Outputs.Entries() {
		intermediate.Put(e.Name, e.Tree)
	}
	seq, err := yat.Run(second, intermediate, nil)
	if err != nil {
		log.Fatal(err)
	}
	seqPages, _ := yat.ExportHTML(seq.Outputs, nil)

	fmt.Printf("composed:  %d pages, %d intermediate objects materialized\n",
		len(directPages), 0)
	fmt.Printf("pipeline:  %d pages, %d intermediate objects materialized\n",
		len(seqPages), intermediate.Len())
	if len(directPages) == len(seqPages) {
		fmt.Println("→ same pages, one conversion step instead of two")
	}
}
