// Matrix reproduces Figure 4: Rule 5 transposes any matrix using
// YATL's index edges, here the 3×2 table of monthly car sales.
//
// Run with: go run ./examples/matrix
package main

import (
	"fmt"
	"log"

	"yat"
)

func main() {
	// The Figure 4 sales matrix: months × models.
	input, err := yat.ParseTree(`sales < jan < golf < 10 >, polo < 20 > >,
	                                     feb < golf < 30 >, polo < 40 > >,
	                                     mar < golf < 50 >, polo < 60 > > >`)
	if err != nil {
		log.Fatal(err)
	}
	store := yat.NewStore()
	store.Put(yat.PlainName("sales"), input)

	prog, err := yat.ParseProgram(yat.TransposeRule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— Rule 5 —")
	fmt.Println(prog.Rules[0].String())

	result, err := yat.Run(prog, store, nil)
	if err != nil {
		log.Fatal(err)
	}
	// Rule 5's Skolem New(Id) is keyed by the input's identity — a
	// reference to the named input tree.
	out, ok := result.Outputs.Get(yat.SkolemName("New", yat.Ref{Name: yat.PlainName("sales")}))
	if !ok {
		log.Fatal("transpose output missing")
	}

	fmt.Println("input (months × models):")
	fmt.Print(input.Indent())
	fmt.Println("transposed (models × months):")
	fmt.Print(out.Indent())
}
