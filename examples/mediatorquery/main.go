// Mediatorquery demonstrates the mediator-side querying the paper
// motivates ("a complementary goal is to be able to query it without
// fully materializing it", §1): a Mediator wraps the composed
// SGML → HTML program and answers pattern queries over the virtual
// target, with the sources staying in their original formats and the
// intermediate ODMG model never existing.
//
// Run with: go run ./examples/mediatorquery
package main

import (
	"fmt"
	"log"

	"yat"
	"yat/internal/workload"
)

func main() {
	// Sources: SGML brochures only.
	inputs := workload.BrochureStore(6, 2, 4, 77)

	// The virtual target: HTML pages, via the composed program — no
	// intermediate object store.
	first, err := yat.ParseProgram(yat.Rules1And2Typed)
	if err != nil {
		log.Fatal(err)
	}
	second, err := yat.ParseProgram(yat.WebRules)
	if err != nil {
		log.Fatal(err)
	}
	composed, err := yat.ComposePrograms(first, second, nil)
	if err != nil {
		log.Fatal(err)
	}

	m := yat.NewMediator(composed, inputs, nil)

	// Query 1: every page title in the virtual target.
	answers, err := m.Ask(`html < -> head -> title -> T, -> body -*> B >`, "HtmlPage")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the virtual target holds %d pages:\n", len(pagesOf(answers)))
	for _, a := range pagesOf(answers) {
		fmt.Printf("  %-40s title=%s\n", a.Name, a.Binding["T"].Display())
	}

	// Query 2: the city shown on each supplier page.
	cities, err := m.Ask(`html < -> head -> title -> supplier,
	                             -> body < -> H, -> ul < -> L1,
	                                          -> li < -> "city: ", -> C >,
	                                          -> L3 > > >`, "HtmlPage")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncities on supplier pages: %d\n", len(cities))
	for _, a := range cities {
		fmt.Printf("  %-30s city=%s\n", a.Name, a.Binding["C"].Display())
	}

	s := m.Stats()
	fmt.Printf("\nmaterialized once: %d outputs for %d source inputs (run stats: %+v; %d asks, %d cache hits)\n",
		s.Run.Outputs, inputs.Len(), s.Run, s.Asks, s.CacheHits)
}

// pagesOf deduplicates answers per page (one binding per body item
// otherwise).
func pagesOf(answers []yat.MediatorAnswer) []yat.MediatorAnswer {
	seen := map[string]bool{}
	var out []yat.MediatorAnswer
	for _, a := range answers {
		if seen[a.Name.Key()] {
			continue
		}
		seen[a.Name.Key()] = true
		out = append(out, a)
	}
	return out
}
