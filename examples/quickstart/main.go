// Quickstart: convert two SGML brochures into ODMG-style objects with
// the paper's Rules 1 and 2, then print the resulting object store.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"yat"
)

const b1 = `<brochure>
  <number>1</number>
  <title>Golf</title>
  <model>1995</model>
  <desc>Sympa</desc>
  <spplrs>
    <supplier><name>VW center</name><address>Bd Lenoir, 75005 Paris</address></supplier>
  </spplrs>
</brochure>`

const b2 = `<brochure>
  <number>2</number>
  <title>Golf</title>
  <model>1997</model>
  <desc>Sympa</desc>
  <spplrs>
    <supplier><name>VW2</name><address>Bd Leblanc, 75015 Paris</address></supplier>
    <supplier><name>VW center</name><address>Bd Lenoir, 75005 Paris</address></supplier>
  </spplrs>
</brochure>`

func main() {
	// 1. Import the source documents through the SGML wrapper.
	inputs, err := yat.ImportSGML(map[string]string{"b1": b1, "b2": b2}, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Load the conversion program (Rules 1 and 2 of the paper).
	prog, err := yat.ParseProgram(yat.Rules1And2)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run it.
	result, err := yat.Run(prog, inputs, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the outputs: one supplier object per distinct name
	// (the Skolem function Psup(SN) deduplicates "VW center"), one
	// car object per brochure.
	fmt.Println("— converted objects —")
	fmt.Print(yat.FormatStore(result.Outputs))
	fmt.Printf("\n%d inputs, %d bindings, %d outputs\n",
		result.Stats.Activations, result.Stats.Bindings, result.Stats.Outputs)
}
