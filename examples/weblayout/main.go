// Weblayout reproduces §4.1: the generic ODMG → HTML program (rules
// Web1–Web6) is instantiated onto the Pcar pattern, deriving rule
// WebCar automatically; the derived rule is then customized into
// newWebCar (suppliers hidden), exactly as a programmer would adapt a
// library program instead of starting from scratch.
//
// Run with: go run ./examples/weblayout
package main

import (
	"fmt"
	"log"

	"yat"
	"yat/internal/pattern"
)

func main() {
	web, err := yat.ParseProgram(yat.WebRules)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generic program: %d rules (Web1–Web6)\n\n", len(web.Rules))

	// ── Instantiation: derive WebCar ───────────────────────────────
	env := yat.CarSchemaModel().Merge(yat.ODMGModel())
	derived, err := yat.Instantiate(web, pattern.PcarPattern(), &yat.InstantiateOptions{Model: env})
	if err != nil {
		log.Fatal(err)
	}
	webCar, ok := derived.Rule("Web1_Pcar")
	if !ok {
		log.Fatal("WebCar derivation missing")
	}
	fmt.Println("— derived rule WebCar (automatic) —")
	fmt.Println(webCar.String())

	// ── Customization: newWebCar hides the suppliers ───────────────
	custom := derived.Clone()
	rule, _ := custom.Rule("Web1_Pcar")
	rule.Name = "newWebCar"
	body := rule.Head.Tree.Edges[1].To // html -> body
	ul := body.Edges[1].To             // body -> ul
	ul.Edges = ul.Edges[:2]            // drop the suppliers item
	rule.Body = rule.Body[:1]          // drop the supplier join pattern
	fmt.Println("— customized rule newWebCar —")
	fmt.Println(rule.String())

	// ── Combination: specific rules first ──────────────────────────
	// Combined with the general program, WebCar handles car objects
	// while Web1 keeps handling everything else (§4.2).
	combined := yat.Combine("webCustom", custom, web)

	inputs, err := yat.ParseStore(`
	  c1: class < car < name < "Golf" >, desc < "A classic compact car" >,
	                     suppliers < set < &s1 > > > >
	  s1: class < supplier < name < "VW center" >, city < "Paris" >, zip < "75005" > > >
	`)
	if err != nil {
		log.Fatal(err)
	}
	result, err := yat.Run(combined, inputs, nil)
	if err != nil {
		log.Fatal(err)
	}
	pages, err := yat.ExportHTML(result.Outputs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— pages with the customized layout —")
	for url, page := range pages {
		fmt.Printf("%s:\n%s\n", url, page)
	}
}
