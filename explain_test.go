package yat

// Golden EXPLAIN profiles for the library's builtin conversions. The
// trace layer promises that every *count* in a profile is a function
// of the program and inputs alone — never of scheduling — so the
// timing-free rendering must be byte-identical at every Parallelism.
// These goldens pin the per-rule/per-phase numbers themselves: a
// change here means the engine does different work, not just
// different bookkeeping.

import (
	"testing"

	"yat/internal/workload"
)

const sgml2odmgGolden = `EXPLAIN sgml2odmg
rounds: 2 [6 4]

rule Car  fired=6 kept=9 skolems=6 outputs=6
  match      events=10     items=12
  predicates events=9      items=9
  skolem     events=6      items=6
  construct  events=6      items=6

rule Sup  fired=6 kept=7 skolems=4 outputs=4
  match      events=10     items=12
  functions  events=18     items=18
  predicates events=9      items=7
  skolem     events=4      items=4
  construct  events=4      items=4
  calls      city=9 zip=9
  drops      predicate-false=2
`

const odmg2htmlGolden = `EXPLAIN odmg2html
rounds: 2 [9 24]

rule Web1  fired=9 kept=27 skolems=9 outputs=9
  match      events=33     items=27
  functions  events=27     items=27
  predicates events=27     items=27
  skolem     events=9      items=9
  construct  events=9      items=9
  calls      attr_label=27

rule Web2  fired=20 kept=20 skolems=20 outputs=20
  match      events=20     items=20
  functions  events=20     items=20
  predicates events=20     items=20
  skolem     events=20     items=20
  construct  events=20     items=20
  calls      data_to_string=20

rule Web3  fired=0 kept=0 skolems=0 outputs=0
  match      events=33     items=0

rule Web4  fired=4 kept=6 skolems=4 outputs=4
  match      events=33     items=6
  predicates events=6      items=6
  skolem     events=4      items=4
  construct  events=4      items=4

rule Web5  fired=0 kept=0 skolems=0 outputs=0
  match      events=33     items=0

rule Web6  fired=9 kept=27 skolems=9 outputs=9
  match      events=33     items=27
  predicates events=27     items=27
  skolem     events=9      items=9
  construct  events=9      items=9
`

func TestExplainGolden(t *testing.T) {
	lib := BuiltinLibrary()
	cases := []struct {
		program string
		inputs  *Store
		want    string
	}{
		{"sgml2odmg", workload.BrochureStore(6, 2, 4, 7), sgml2odmgGolden},
		{"odmg2html", workload.ODMGStore(5, 4, 2, 3), odmg2htmlGolden},
	}
	for _, tc := range cases {
		t.Run(tc.program, func(t *testing.T) {
			prog, ok := lib.Program(tc.program)
			if !ok {
				t.Fatalf("builtin %s missing", tc.program)
			}
			for _, par := range []int{1, 8} {
				profile := NewTraceProfile()
				if _, err := Run(prog, tc.inputs, &RunOptions{Trace: profile, Parallelism: par}); err != nil {
					t.Fatalf("parallelism=%d: %v", par, err)
				}
				if got := profile.Text(false); got != tc.want {
					t.Errorf("parallelism=%d profile diverges:\n got:\n%s\nwant:\n%s", par, got, tc.want)
				}
			}
		})
	}
}

// TestExplainTimingMonotone sanity-checks the timing path: with
// timing enabled the run total must cover the per-phase wall times.
func TestExplainTimingMonotone(t *testing.T) {
	prog, _ := BuiltinLibrary().Program("sgml2odmg")
	profile := NewTraceProfile()
	if _, err := Run(prog, workload.BrochureStore(10, 3, 6, 1), &RunOptions{Trace: profile}); err != nil {
		t.Fatal(err)
	}
	total := profile.Wall()
	if total <= 0 {
		t.Fatal("run total wall time missing")
	}
	for _, r := range profile.Rules() {
		for ph, pp := range r.Phases {
			if pp.Wall < 0 {
				t.Errorf("rule %s phase %d: negative wall %v", r.Rule, ph, pp.Wall)
			}
			if pp.Wall > total {
				t.Errorf("rule %s phase %d: wall %v exceeds run total %v", r.Rule, ph, pp.Wall, total)
			}
		}
	}
}
