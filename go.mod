module yat

go 1.22
