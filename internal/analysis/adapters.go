package analysis

import (
	"strings"

	"yat/internal/engine"
	"yat/internal/typing"
)

// Safety re-exposes the §3.4 safe-recursion check
// (engine.SafetyViolations) as an analysis pass: one positioned error
// per rule whose Skolem functor lies on a dereference cycle without
// being safe-recursive.
var Safety = &Analyzer{
	Name: "safety",
	Doc:  "dereference cycles between Skolem functors must be safe-recursive (§3.4)",
	Run: func(pass *Pass) error {
		for _, v := range engine.SafetyViolations(pass.Prog) {
			pass.Reportf(v.Rule.Head.Pos, SeverityError,
				"rule %s: functor %s lies on a dereference cycle (%s) and is not safe-recursive: %s",
				v.Rule.Name, v.Functor, strings.Join(v.Cycle, " -> "), v.Reason)
		}
		return nil
	},
}

// Typing re-exposes the §3.5 domain inference (typing.CheckRules) as
// an analysis pass: incompatible variable domains, unknown external
// functions and arity mismatches become positioned errors.
var Typing = &Analyzer{
	Name: "typing",
	Doc:  "variable domains, external function signatures and predicates must agree (§3.5)",
	Run: func(pass *Pass) error {
		for _, issue := range typing.CheckRules(pass.Prog, pass.Registry) {
			msg := strings.TrimPrefix(issue.Err.Error(), "typing: ")
			pass.Reportf(issue.Rule.Pos, SeverityError, "%s", msg)
		}
		return nil
	},
}

// Coverage re-exposes typing.Coverage as an analysis pass: for every
// model the program declares, report the patterns no rule body
// matches — data the program would silently ignore (the situation the
// §3.5 exception rule only detects at run time).
var Coverage = &Analyzer{
	Name: "coverage",
	Doc:  "declared input patterns should be matched by some rule body (§3.5)",
	Run: func(pass *Pass) error {
		for _, decl := range pass.Prog.Models {
			for _, name := range typing.Coverage(pass.Prog, decl.Model) {
				if strings.HasPrefix(name, "(") {
					continue // inference failure: the typing pass reports it with a position
				}
				pass.Reportf(decl.Pos, SeverityInfo,
					"pattern %s of model %s is not matched by any rule body; such inputs are silently ignored", name, decl.Name)
			}
		}
		return nil
	},
}
