// Package analysis is the unified static-analysis framework for YATL
// programs: a go/analysis-style pass driver over a parsed program,
// producing positioned diagnostics.
//
// The paper relies on static guarantees — the §3.4 safe-recursion
// check over the Skolem dependency graph and the §3.5 optional type
// system — but a mediator shipping conversion programs to production
// needs more than two isolated checks returning flat error strings:
// it needs one driver that runs every check and reports each finding
// at the source position of the offending rule, pattern or predicate.
// Each check is an Analyzer; a Pass gives it the program plus a
// Report sink; the driver collects, deduplicates and sorts the
// diagnostics. The existing engine.CheckSafety and typing inference
// are re-exposed as passes (see adapters.go) so `yatcheck` and `yatc
// -force` run everything through a single entry point.
package analysis

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"yat/internal/engine"
	"yat/internal/pattern"
	"yat/internal/yatl"
)

// Pos is a source position, shared with the yatl front end.
type Pos = pattern.Pos

// Severity grades a diagnostic. Errors make yatcheck (and yatc
// without -force) reject the program; warnings and infos are
// advisory.
type Severity int

// The severities, ordered from least to most severe.
const (
	SeverityInfo Severity = iota
	SeverityWarning
	SeverityError
)

// String renders the severity in lower case.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// MarshalText implements encoding.TextMarshaler for -json output.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// ParseSeverity reads a severity name ("info", "warning", "error").
func ParseSeverity(name string) (Severity, error) {
	switch strings.ToLower(name) {
	case "info":
		return SeverityInfo, nil
	case "warning", "warn":
		return SeverityWarning, nil
	case "error":
		return SeverityError, nil
	}
	return 0, fmt.Errorf("analysis: unknown severity %q (want info, warning or error)", name)
}

// Related is a secondary location attached to a diagnostic (the first
// declaration a duplicate clashes with, the head a reference
// disagrees with, ...).
type Related struct {
	Pos     Pos    `json:"pos"`
	Message string `json:"message"`
}

// Diagnostic is one finding: a position in the program source, a
// severity, the category (the reporting analyzer's name), the message
// and optional related positions.
type Diagnostic struct {
	Pos      Pos       `json:"pos"`
	Severity Severity  `json:"severity"`
	Category string    `json:"category"`
	Message  string    `json:"message"`
	Related  []Related `json:"related,omitempty"`
}

// String renders the diagnostic as "line:col: severity: [category] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: [%s] %s", d.Pos, d.Severity, d.Category, d.Message)
}

// Analyzer is one static check over a parsed YATL program.
type Analyzer struct {
	// Name identifies the analyzer; it becomes the Category of every
	// diagnostic it reports.
	Name string
	// Doc is a one-line description shown by `yatcheck -list`.
	Doc string
	// Run performs the check, reporting findings through the pass. A
	// non-nil error aborts the whole driver run (reserved for internal
	// failures, not findings).
	Run func(*Pass) error
}

// Pass carries one analyzer's view of the program under analysis.
type Pass struct {
	Analyzer *Analyzer
	// Prog is the program under analysis. Analyzers must not mutate it.
	Prog *yatl.Program
	// Registry supplies external function signatures (never nil).
	Registry *engine.Registry

	diags *[]Diagnostic
	facts map[reflect.Type]Fact
}

// Report records a diagnostic; an empty Category defaults to the
// analyzer name.
func (p *Pass) Report(d Diagnostic) {
	if d.Category == "" {
		d.Category = p.Analyzer.Name
	}
	*p.diags = append(*p.diags, d)
}

// Reportf records a diagnostic at pos with the analyzer's category.
func (p *Pass) Reportf(pos Pos, sev Severity, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Severity: sev, Message: fmt.Sprintf(format, args...)})
}

// Options configures a driver run.
type Options struct {
	// Registry supplies external function signatures; nil uses
	// engine.NewRegistry().
	Registry *engine.Registry
}

// Run executes the analyzers over the program and returns their
// diagnostics sorted by position (then severity, category, message),
// with exact duplicates removed.
func Run(prog *yatl.Program, analyzers []*Analyzer, opts *Options) ([]Diagnostic, error) {
	reg := (*engine.Registry)(nil)
	if opts != nil {
		reg = opts.Registry
	}
	if reg == nil {
		reg = engine.NewRegistry()
	}
	var diags []Diagnostic
	facts := map[reflect.Type]Fact{}
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Prog: prog, Registry: reg, diags: &diags, facts: facts}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos != b.Pos {
			return a.Pos.Before(b.Pos)
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Category != b.Category {
			return a.Category < b.Category
		}
		return a.Message < b.Message
	})
	return dedup(diags), nil
}

func dedup(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 {
			p := diags[i-1]
			if p.Pos == d.Pos && p.Severity == d.Severity && p.Category == d.Category && p.Message == d.Message {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// Max returns the highest severity among the diagnostics, and whether
// there was at least one diagnostic.
func Max(diags []Diagnostic) (Severity, bool) {
	if len(diags) == 0 {
		return 0, false
	}
	max := diags[0].Severity
	for _, d := range diags[1:] {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max, true
}

// AtLeast counts the diagnostics at or above the given severity.
func AtLeast(diags []Diagnostic, min Severity) int {
	n := 0
	for _, d := range diags {
		if d.Severity >= min {
			n++
		}
	}
	return n
}

// DefaultAnalyzers returns every analyzer of the framework: the eight
// syntactic checks, the safety, typing and coverage adapters, and the
// fact-producing optimizer passes (symtab, dispatch and strata export
// facts; deadrule consumes them and reports the statically-dead
// rules). Producers precede consumers; Run executes in order.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		RangeRestriction,
		UnusedVars,
		RuleNames,
		SkolemArity,
		UndefinedRef,
		PredSanity,
		Collections,
		ExceptionRules,
		Safety,
		Typing,
		Coverage,
		Interning,
		Dispatch,
		Strata,
		DeadRule,
	}
}

// ByName returns the analyzer with the given name from DefaultAnalyzers.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range DefaultAnalyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}
