package analysis

import (
	"os"
	"path/filepath"
	"testing"

	"yat/internal/library"
	"yat/internal/yatl"
)

// want is one diagnostic the fixture corpus must produce, pinned to an
// exact source position.
type want struct {
	category string
	line     int
	col      int
	severity Severity
}

// fixtureWants maps every deliberately broken program under testdata/
// to the diagnostics its defects must trigger. Each analyzer has at
// least one dedicated fixture.
var fixtureWants = map[string][]want{
	"range_restriction.yatl": {
		{"range-restriction", 4, 8, SeverityError},  // Skolem argument X unbound
		{"range-restriction", 4, 32, SeverityError}, // head variable Y unbound
	},
	"unused_let.yatl": {
		{"unused-var", 6, 7, SeverityWarning}, // let U = city(T) never used
	},
	"dup_rule.yatl": {
		{"rule-names", 8, 6, SeverityError},  // second rule R shadows the first
		{"rule-names", 13, 7, SeverityError}, // order constraint names undefined rule
	},
	"skolem_arity.yatl": {
		{"skolem-arity", 9, 46, SeverityError}, // &P(SN, B) but P is defined with 1 arg
	},
	"undef_ref.yatl": {
		{"undefined-ref", 4, 32, SeverityError}, // ^Nope(B) dereferences nothing
	},
	"pred_sanity.yatl": {
		{"pred-sanity", 6, 9, SeverityError},   // ordering compare on a structural var
		{"pred-sanity", 7, 9, SeverityWarning}, // 1 == 2 compares two constants
		{"deadrule", 7, 9, SeverityWarning},    // ... so the rule can never fire
	},
	"collection_order.yatl": {
		{"collection", 4, 20, SeverityError}, // criterion Z not below the ordered edge
	},
	"collection_index.yatl": {
		{"collection", 4, 46, SeverityError}, // index edge under a grouping edge
	},
	"exception_unreach.yatl": {
		{"exception", 8, 6, SeverityWarning}, // covering rule makes Fallback dead
	},
	"safety_cycle.yatl": {
		{"safety", 4, 8, SeverityError}, // Psup/Pcar deref cycle, not safe-recursive
	},
	"typing_clash.yatl": {
		{"typing", 3, 6, SeverityError}, // T is string and compared to an int
	},
	"coverage_gap.yatl": {
		{"coverage", 3, 7, SeverityInfo}, // model pattern Memo matched by no rule
	},
	"unreachable_cycle.yatl": {
		{"deadrule", 13, 6, SeverityWarning}, // CycA only demanded by CycB
		{"deadrule", 18, 6, SeverityWarning}, // CycB only demanded by CycA
	},
	"label_functor.yatl": {
		{"pred-sanity", 11, 9, SeverityWarning}, // 1 == 2 compares two constants
		{"deadrule", 11, 9, SeverityWarning},    // ... so ViewB can never fire
	},
	"skolem_label_collision.yatl": {
		{"pred-sanity", 11, 9, SeverityWarning}, // 2 < 1 compares two constants
		{"deadrule", 11, 9, SeverityWarning},    // ... so Dead can never fire
	},
}

func parseFile(t *testing.T, path string) *yatl.Program {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	prog, err := yatl.Parse(string(src))
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return prog
}

// TestFixtureCorpus runs the full analyzer suite over each broken
// fixture and asserts the expected diagnostics at their exact
// positions. Unexpected findings at or above the worst expected
// severity fail the test, so fixtures stay focused on one defect.
func TestFixtureCorpus(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".yatl" {
			continue
		}
		seen[e.Name()] = true
	}
	for name := range fixtureWants {
		if !seen[name] {
			t.Errorf("fixture %s listed in fixtureWants but missing from testdata/", name)
		}
	}
	for name := range seen {
		if _, ok := fixtureWants[name]; !ok {
			t.Errorf("testdata/%s has no expected diagnostics: add it to fixtureWants", name)
		}
	}

	for name, wants := range fixtureWants {
		t.Run(name, func(t *testing.T) {
			prog := parseFile(t, filepath.Join("testdata", name))
			diags, err := Run(prog, DefaultAnalyzers(), nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range wants {
				if !hasDiag(diags, w) {
					t.Errorf("missing diagnostic [%s] %d:%d %s\ngot:\n%s",
						w.category, w.line, w.col, w.severity, render(diags))
				}
			}
			// No stray findings in the expected severity band: every
			// diagnostic at or above the least severe expectation must
			// itself be expected.
			floor := wants[0].severity
			for _, w := range wants[1:] {
				if w.severity < floor {
					floor = w.severity
				}
			}
			for _, d := range diags {
				if d.Severity < floor {
					continue
				}
				if !expected(wants, d) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
		})
	}
}

func hasDiag(diags []Diagnostic, w want) bool {
	for _, d := range diags {
		if d.Category == w.category && d.Pos.Line == w.line && d.Pos.Col == w.col && d.Severity == w.severity {
			return true
		}
	}
	return false
}

func expected(wants []want, d Diagnostic) bool {
	for _, w := range wants {
		if d.Category == w.category && d.Pos.Line == w.line && d.Pos.Col == w.col && d.Severity == w.severity {
			return true
		}
	}
	return false
}

func render(diags []Diagnostic) string {
	s := ""
	for _, d := range diags {
		s += "  " + d.String() + "\n"
	}
	if s == "" {
		s = "  (no diagnostics)\n"
	}
	return s
}

// TestBuiltinProgramsClean guards the other half of the acceptance
// bar: the paper's own programs must pass the analyzer suite with
// nothing at warning level or above.
func TestBuiltinProgramsClean(t *testing.T) {
	lib := library.Builtin()
	for _, name := range lib.Programs() {
		prog, _ := lib.Program(name)
		diags, err := Run(prog, DefaultAnalyzers(), nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, d := range diags {
			if d.Severity >= SeverityWarning {
				t.Errorf("builtin program %s: unexpected %s", name, d)
			}
		}
	}
}

// TestFixtureSourcesClean runs the suite over the remaining yatl
// package fixtures that are expected to be well-formed.
func TestFixtureSourcesClean(t *testing.T) {
	for _, src := range []struct{ name, text string }{
		{"Rule1", yatl.Rule1Source},
		{"SGMLToODMG", yatl.SGMLToODMGSource},
		{"AnnotatedSGMLToODMG", yatl.AnnotatedSGMLToODMGSource},
		{"Web", yatl.WebProgramSource},
	} {
		prog, err := yatl.Parse(src.text)
		if err != nil {
			t.Fatalf("parse %s: %v", src.name, err)
		}
		diags, err := Run(prog, DefaultAnalyzers(), nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			if d.Severity >= SeverityWarning {
				t.Errorf("%s: unexpected %s", src.name, d)
			}
		}
	}
}

// TestCyclicProgramTripsSafety pins the safety adapter to the yatl
// package's canonical unsafe program.
func TestCyclicProgramTripsSafety(t *testing.T) {
	prog, err := yatl.Parse(yatl.CyclicProgramSource)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(prog, DefaultAnalyzers(), nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if d.Category == "safety" && d.Severity == SeverityError {
			found = true
			if !d.Pos.IsValid() {
				t.Errorf("safety diagnostic has no position: %s", d)
			}
		}
	}
	if !found {
		t.Errorf("CyclicProgramSource produced no safety error:\n%s", render(diags))
	}
}

// TestSeverityOrderAndParse covers the severity helpers the CLI
// depends on.
func TestSeverityOrderAndParse(t *testing.T) {
	if !(SeverityInfo < SeverityWarning && SeverityWarning < SeverityError) {
		t.Fatal("severity ordering broken")
	}
	for _, tc := range []struct {
		in   string
		want Severity
		ok   bool
	}{
		{"info", SeverityInfo, true},
		{"warning", SeverityWarning, true},
		{"error", SeverityError, true},
		{"bogus", 0, false},
	} {
		got, err := ParseSeverity(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseSeverity(%q) = %v, %v", tc.in, got, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseSeverity(%q) succeeded, want error", tc.in)
		}
	}
}

// TestRunDeterministic: Run must sort and dedup, so two invocations
// over the same program agree exactly.
func TestRunDeterministic(t *testing.T) {
	prog := parseFile(t, filepath.Join("testdata", "range_restriction.yatl"))
	a, err := Run(prog, DefaultAnalyzers(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(prog, DefaultAnalyzers(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d diagnostics", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("diagnostic %d differs: %s vs %s", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].String() == a[i-1].String() {
			t.Errorf("duplicate diagnostic survived dedup: %s", a[i])
		}
	}
}
