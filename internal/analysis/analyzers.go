package analysis

import (
	"fmt"

	"yat/internal/pattern"
	"yat/internal/yatl"
)

// varUse is one occurrence of a variable with its source position.
type varUse struct {
	Name string
	Pos  Pos
}

// treeVarUses collects every variable occurrence in a pattern tree:
// label variables and Skolem argument variables at the node position,
// ordering criteria and index variables at the edge position.
func treeVarUses(t *pattern.PTree) []varUse {
	var out []varUse
	var walk func(pt *pattern.PTree)
	walk = func(pt *pattern.PTree) {
		if pt == nil {
			return
		}
		switch l := pt.Label.(type) {
		case pattern.Var:
			out = append(out, varUse{l.Name, pt.Pos})
		case pattern.PatRef:
			for _, a := range l.Args {
				if a.IsVar {
					out = append(out, varUse{a.Var, pt.Pos})
				}
			}
		}
		for _, e := range pt.Edges {
			pos := e.Pos
			if !pos.IsValid() {
				pos = pt.Pos
			}
			if e.Index != "" {
				out = append(out, varUse{e.Index, pos})
			}
			for _, v := range e.OrderBy {
				out = append(out, varUse{v, pos})
			}
			walk(e.To)
		}
	}
	walk(t)
	return out
}

// operandVars lists the variable operands with the given fallback
// position.
func operandVars(ops []yatl.Operand, pos Pos) []varUse {
	var out []varUse
	for _, o := range ops {
		if o.IsVar {
			out = append(out, varUse{o.Var, pos})
		}
	}
	return out
}

// predVars lists the variables a predicate reads.
func predVars(p yatl.Pred) []varUse {
	if p.IsCall() {
		return operandVars(p.Args, p.Pos)
	}
	var out []varUse
	if p.Left.IsVar {
		out = append(out, varUse{p.Left.Var, p.Pos})
	}
	if p.Right.IsVar {
		out = append(out, varUse{p.Right.Var, p.Pos})
	}
	return out
}

// bodyBound returns the set of variables bound by the rule's body
// patterns: the pattern variables themselves plus every variable
// occurring in the body trees (label, Skolem argument, index and
// ordering variables all receive bindings during matching).
func bodyBound(r *yatl.Rule) map[string]bool {
	bound := map[string]bool{}
	for _, bp := range r.Body {
		bound[bp.Var] = true
		for _, v := range bp.Tree.Vars() {
			bound[v] = true
		}
	}
	return bound
}

// RangeRestriction rejects rules whose head, predicates or external
// calls use variables that no body pattern binds — the classic
// range-restriction (safety) condition of datalog-style languages:
// an unbound head variable would make the rule mint unbounded output.
var RangeRestriction = &Analyzer{
	Name: "range-restriction",
	Doc:  "head, predicate and let variables must be bound by a body pattern",
	Run: func(pass *Pass) error {
		for _, r := range pass.Prog.Rules {
			bound := bodyBound(r)
			// Lets bind sequentially: each may use body variables and
			// the results of earlier lets.
			for _, l := range r.Lets {
				for _, u := range operandVars(l.Args, l.Pos) {
					if !bound[u.Name] {
						pass.Reportf(u.Pos, SeverityError,
							"rule %s: let argument %s is not bound by any body pattern or earlier let", r.Name, u.Name)
					}
				}
				bound[l.Var] = true
			}
			for _, p := range r.Preds {
				for _, u := range predVars(p) {
					if !bound[u.Name] {
						pass.Reportf(u.Pos, SeverityError,
							"rule %s: predicate uses variable %s, which is not bound by any body pattern or let", r.Name, u.Name)
					}
				}
			}
			if r.Exception {
				continue
			}
			for _, a := range r.Head.Args {
				if a.IsVar && !bound[a.Var] {
					pass.Reportf(r.Head.Pos, SeverityError,
						"rule %s: Skolem argument %s is not bound by any body pattern or let", r.Name, a.Var)
				}
			}
			seen := map[string]bool{}
			for _, u := range treeVarUses(r.Head.Tree) {
				if !bound[u.Name] && !seen[u.Name] {
					seen[u.Name] = true
					pass.Reportf(u.Pos, SeverityError,
						"rule %s: head variable %s is not bound by any body pattern or let", r.Name, u.Name)
				}
			}
		}
		return nil
	},
}

// UnusedVars flags variables that are bound but never read: let
// results nothing consumes (a wasted external call — warning) and
// body variables that occur exactly once (informational; matching a
// subtree into a throwaway variable is common YATL idiom, but worth
// surfacing).
var UnusedVars = &Analyzer{
	Name: "unused-var",
	Doc:  "bound variables should be used somewhere in the rule",
	Run: func(pass *Pass) error {
		for _, r := range pass.Prog.Rules {
			used := map[string]bool{}
			for _, a := range r.Head.Args {
				if a.IsVar {
					used[a.Var] = true
				}
			}
			if r.Head.Tree != nil {
				for _, u := range treeVarUses(r.Head.Tree) {
					used[u.Name] = true
				}
			}
			for _, p := range r.Preds {
				for _, u := range predVars(p) {
					used[u.Name] = true
				}
			}
			for _, l := range r.Lets {
				for _, u := range operandVars(l.Args, l.Pos) {
					used[u.Name] = true
				}
			}
			// Occurrence counts across all body trees: a variable
			// appearing twice in the body is a join constraint and
			// counts as used even if the head ignores it.
			count := map[string]int{}
			first := map[string]Pos{}
			for _, bp := range r.Body {
				count[bp.Var]++
				if _, ok := first[bp.Var]; !ok {
					first[bp.Var] = bp.Pos
				}
				for _, u := range treeVarUses(bp.Tree) {
					count[u.Name]++
					if _, ok := first[u.Name]; !ok {
						first[u.Name] = u.Pos
					}
				}
			}
			reported := map[string]bool{}
			for _, bp := range r.Body {
				if !used[bp.Var] && count[bp.Var] == 1 && !reported[bp.Var] {
					reported[bp.Var] = true
					pass.Reportf(bp.Pos, SeverityInfo,
						"rule %s: body pattern variable %s is never used", r.Name, bp.Var)
				}
				for _, u := range treeVarUses(bp.Tree) {
					if !used[u.Name] && count[u.Name] == 1 && !reported[u.Name] {
						reported[u.Name] = true
						pass.Reportf(u.Pos, SeverityInfo,
							"rule %s: variable %s is bound but never used", r.Name, u.Name)
					}
				}
			}
			for i, l := range r.Lets {
				if used[l.Var] {
					continue
				}
				laterUse := false
				for _, later := range r.Lets[i+1:] {
					for _, u := range operandVars(later.Args, later.Pos) {
						if u.Name == l.Var {
							laterUse = true
						}
					}
				}
				if !laterUse {
					pass.Reportf(l.Pos, SeverityWarning,
						"rule %s: let-bound variable %s is never used (the external call %s is wasted)", r.Name, l.Var, l.Func)
				}
			}
		}
		return nil
	},
}

// RuleNames rejects duplicate rule and model names and order
// constraints over undefined rules.
var RuleNames = &Analyzer{
	Name: "rule-names",
	Doc:  "rule and model names must be unique; order constraints must name real rules",
	Run: func(pass *Pass) error {
		prog := pass.Prog
		firstRule := map[string]*yatl.Rule{}
		for _, r := range prog.Rules {
			if prev, ok := firstRule[r.Name]; ok {
				pass.Report(Diagnostic{
					Pos:      r.Pos,
					Severity: SeverityError,
					Message:  fmt.Sprintf("duplicate rule name %s shadows an earlier rule", r.Name),
					Related:  []Related{{Pos: prev.Pos, Message: "first declaration"}},
				})
				continue
			}
			firstRule[r.Name] = r
		}
		firstModel := map[string]*yatl.ModelDecl{}
		for _, m := range prog.Models {
			if prev, ok := firstModel[m.Name]; ok {
				pass.Report(Diagnostic{
					Pos:      m.Pos,
					Severity: SeverityError,
					Message:  fmt.Sprintf("duplicate model name %s shadows an earlier model", m.Name),
					Related:  []Related{{Pos: prev.Pos, Message: "first declaration"}},
				})
				continue
			}
			firstModel[m.Name] = m
		}
		for _, o := range prog.Orders {
			if o.Before == o.After {
				pass.Reportf(o.Pos, SeverityError, "order constraint %s before %s is circular", o.Before, o.After)
				continue
			}
			for _, name := range []string{o.Before, o.After} {
				if _, ok := firstRule[name]; !ok {
					pass.Reportf(o.Pos, SeverityError, "order constraint names undefined rule %s", name)
				}
			}
		}
		return nil
	},
}

// functorDefs maps each Skolem functor defined by the program to its
// first defining head.
func functorDefs(prog *yatl.Program) map[string]*yatl.Rule {
	defs := map[string]*yatl.Rule{}
	for _, r := range prog.Rules {
		if r.Exception {
			continue
		}
		if _, ok := defs[r.Head.Functor]; !ok {
			defs[r.Head.Functor] = r
		}
	}
	return defs
}

// SkolemArity checks that every use of a Skolem functor — further
// head definitions, dereferences ^F(...) and references &F(...) —
// agrees with the arity of its first defining head. Mismatched
// arities mint identities that can never join.
var SkolemArity = &Analyzer{
	Name: "skolem-arity",
	Doc:  "every use of a Skolem functor must match its defining arity",
	Run: func(pass *Pass) error {
		prog := pass.Prog
		defs := functorDefs(prog)
		for _, r := range prog.Rules {
			if r.Exception {
				continue
			}
			def := defs[r.Head.Functor]
			if def != r && len(r.Head.Args) != len(def.Head.Args) {
				pass.Report(Diagnostic{
					Pos:      r.Head.Pos,
					Severity: SeverityError,
					Message: fmt.Sprintf("rule %s defines functor %s with %d arguments, but rule %s defines it with %d",
						r.Name, r.Head.Functor, len(r.Head.Args), def.Name, len(def.Head.Args)),
					Related: []Related{{Pos: def.Head.Pos, Message: "first definition"}},
				})
			}
			r.Head.Tree.Walk(func(pt *pattern.PTree) bool {
				ref, ok := pt.Label.(pattern.PatRef)
				if !ok {
					return true
				}
				def, defined := defs[ref.Name]
				if !defined {
					return true // UndefinedRef reports these
				}
				if len(ref.Args) != len(def.Head.Args) {
					pass.Report(Diagnostic{
						Pos:      pt.Pos,
						Severity: SeverityError,
						Message: fmt.Sprintf("rule %s invokes functor %s with %d arguments, but it is defined with %d",
							r.Name, ref.Name, len(ref.Args), len(def.Head.Args)),
						Related: []Related{{Pos: def.Head.Pos, Message: "definition"}},
					})
				}
				return true
			})
		}
		return nil
	},
}

// declaredPatterns returns the set of pattern names defined by the
// program's model declarations.
func declaredPatterns(prog *yatl.Program) map[string]bool {
	out := map[string]bool{}
	for _, m := range prog.Models {
		for _, name := range m.Model.Names() {
			out[name] = true
		}
	}
	return out
}

// UndefinedRef rejects dereferences and references of names that are
// neither Skolem functors of the program nor patterns of a declared
// model — a dereference of an undefined functor fails at construction
// time. Inside body patterns the check degrades to a warning when the
// program declares no models (the resolution context may be supplied
// externally, e.g. by Instantiate).
var UndefinedRef = &Analyzer{
	Name: "undefined-ref",
	Doc:  "pattern references must resolve to a functor or a declared pattern",
	Run: func(pass *Pass) error {
		prog := pass.Prog
		defs := functorDefs(prog)
		pats := declaredPatterns(prog)
		known := func(name string) bool {
			_, isFunctor := defs[name]
			return isFunctor || pats[name]
		}
		refKind := func(ref pattern.PatRef) string {
			if ref.Ref {
				return "reference to"
			}
			return "dereference of"
		}
		bodySev := SeverityError
		if len(prog.Models) == 0 {
			bodySev = SeverityWarning
		}
		for _, r := range prog.Rules {
			if r.Head.Tree != nil {
				r.Head.Tree.Walk(func(pt *pattern.PTree) bool {
					if ref, ok := pt.Label.(pattern.PatRef); ok && !known(ref.Name) {
						pass.Reportf(pt.Pos, SeverityError,
							"rule %s: %s undefined functor or pattern %s", r.Name, refKind(ref), ref.Name)
					}
					return true
				})
			}
			for _, bp := range r.Body {
				if bp.Domain != "" && !known(bp.Domain) {
					pass.Reportf(bp.Pos, bodySev,
						"rule %s: body pattern domain %s is not defined by any declared model", r.Name, bp.Domain)
				}
				bp.Tree.Walk(func(pt *pattern.PTree) bool {
					switch l := pt.Label.(type) {
					case pattern.PatRef:
						if !known(l.Name) {
							pass.Reportf(pt.Pos, bodySev,
								"rule %s: %s undefined pattern %s in body", r.Name, refKind(l), l.Name)
						}
					case pattern.Var:
						if l.Domain.IsPattern() && !known(l.Domain.Pattern) {
							pass.Reportf(pt.Pos, bodySev,
								"rule %s: variable %s has undefined pattern domain %s", r.Name, l.Name, l.Domain.Pattern)
						}
					}
					return true
				})
			}
		}
		// Model declarations must be internally resolvable (the
		// positioned counterpart of Model.Validate).
		for _, m := range prog.Models {
			for _, p := range m.Model.Patterns() {
				for _, t := range p.Union {
					t.Walk(func(pt *pattern.PTree) bool {
						switch l := pt.Label.(type) {
						case pattern.PatRef:
							if !pats[l.Name] {
								pass.Reportf(pt.Pos, SeverityError,
									"model %s: pattern %s references undefined pattern %s", m.Name, p.Name, l.Name)
							}
						case pattern.Var:
							if l.Domain.IsPattern() && !pats[l.Domain.Pattern] {
								pass.Reportf(pt.Pos, SeverityError,
									"model %s: pattern %s: variable %s has undefined pattern domain %s", m.Name, p.Name, l.Name, l.Domain.Pattern)
							}
						}
						return true
					})
				}
			}
		}
		return nil
	},
}

// structuralVars returns the variables of a rule that bind whole
// subtrees rather than scalar leaves: body pattern identities,
// variables labeling body nodes that have outgoing edges, and
// variables with a pattern domain.
func structuralVars(r *yatl.Rule) map[string]bool {
	out := map[string]bool{}
	for _, bp := range r.Body {
		out[bp.Var] = true
		bp.Tree.Walk(func(pt *pattern.PTree) bool {
			if v, ok := pt.Label.(pattern.Var); ok {
				if len(pt.Edges) > 0 || v.Domain.IsPattern() {
					out[v.Name] = true
				}
			}
			return true
		})
	}
	return out
}

// PredSanity flags predicates that can never do useful work:
// comparisons between two constants, and comparisons that apply a
// scalar test to a variable bound to a whole subtree (a grouped /
// structured binding has no order relative to a number or string).
var PredSanity = &Analyzer{
	Name: "pred-sanity",
	Doc:  "predicate operands must be comparable: no constant-only or subtree-vs-scalar comparisons",
	Run: func(pass *Pass) error {
		for _, r := range pass.Prog.Rules {
			structural := structuralVars(r)
			for _, p := range r.Preds {
				if p.IsCall() {
					continue
				}
				if !p.Left.IsVar && !p.Right.IsVar {
					pass.Reportf(p.Pos, SeverityWarning,
						"rule %s: predicate %s compares two constants and is always true or always false", r.Name, p.String())
					continue
				}
				ordering := p.Op == yatl.OpLt || p.Op == yatl.OpLe || p.Op == yatl.OpGt || p.Op == yatl.OpGe
				sides := [2]yatl.Operand{p.Left, p.Right}
				for i, side := range sides {
					if !side.IsVar || !structural[side.Var] {
						continue
					}
					other := sides[1-i]
					switch {
					case ordering:
						pass.Reportf(p.Pos, SeverityError,
							"rule %s: ordering comparison on %s, which binds a whole subtree, not a scalar", r.Name, side.Var)
					case !other.IsVar:
						pass.Reportf(p.Pos, SeverityError,
							"rule %s: %s binds a whole subtree and cannot equal the scalar constant %s", r.Name, side.Var, other.Const.Display())
					}
				}
			}
		}
		return nil
	},
}

// Collections checks the collection-construction primitives of §3.3:
// ordering criteria must occur below their ordered edge (otherwise
// every group element sorts on the same unbound value), index edges
// must not sit under duplicate-eliminating grouping (positions are
// not stable after dedup), and grouping indicators are meaningless in
// body patterns.
var Collections = &Analyzer{
	Name: "collection",
	Doc:  "ordered/grouped/index edges must be well-formed",
	Run: func(pass *Pass) error {
		for _, r := range pass.Prog.Rules {
			if r.Head.Tree != nil {
				checkHeadCollections(pass, r, r.Head.Tree, false)
			}
			for _, bp := range r.Body {
				bp.Tree.Walk(func(pt *pattern.PTree) bool {
					for _, e := range pt.Edges {
						if e.Occ == pattern.OccGroup || e.Occ == pattern.OccOrdered {
							pos := e.Pos
							if !pos.IsValid() {
								pos = pt.Pos
							}
							pass.Reportf(pos, SeverityWarning,
								"rule %s: grouping indicator %s in a body pattern has no effect; use -*>", r.Name, e.Occ)
						}
					}
					return true
				})
			}
		}
		return nil
	},
}

func checkHeadCollections(pass *Pass, r *yatl.Rule, t *pattern.PTree, underGroup bool) {
	for _, e := range t.Edges {
		pos := e.Pos
		if !pos.IsValid() {
			pos = t.Pos
		}
		below := underGroup
		switch e.Occ {
		case pattern.OccOrdered:
			belowVars := map[string]bool{}
			for _, v := range e.To.Vars() {
				belowVars[v] = true
			}
			seen := map[string]bool{}
			for _, crit := range e.OrderBy {
				if seen[crit] {
					pass.Reportf(pos, SeverityWarning,
						"rule %s: duplicate ordering criterion %s", r.Name, crit)
				}
				seen[crit] = true
				if !belowVars[crit] {
					pass.Reportf(pos, SeverityError,
						"rule %s: ordering criterion %s does not occur below the ordered edge, so every element sorts on the same value", r.Name, crit)
				}
			}
			below = true
		case pattern.OccGroup:
			below = true
		case pattern.OccIndex:
			if underGroup {
				pass.Reportf(pos, SeverityError,
					"rule %s: index edge -#%s> under a grouping edge: element positions are not stable after duplicate elimination", r.Name, e.Index)
			}
		}
		checkHeadCollections(pass, r, e.To, below)
	}
}

// ExceptionRules checks the §3.5 exception mechanism: an exception
// rule fires only for inputs no other rule converted, so it is
// unreachable when an unconditional rule already matches everything
// it matches; and order constraints have no effect on exceptions.
var ExceptionRules = &Analyzer{
	Name: "exception",
	Doc:  "exception rules must be reachable and outside order constraints",
	Run: func(pass *Pass) error {
		prog := pass.Prog
		model := pattern.NewModel()
		for _, m := range prog.Models {
			model = model.Merge(m.Model)
		}
		exceptions := map[string]*yatl.Rule{}
		var first *yatl.Rule
		for _, r := range prog.Rules {
			if !r.Exception {
				continue
			}
			exceptions[r.Name] = r
			if first == nil {
				first = r
			} else {
				pass.Report(Diagnostic{
					Pos:      r.Pos,
					Severity: SeverityWarning,
					Message:  fmt.Sprintf("rule %s: multiple exception rules; each fires for every unconverted input", r.Name),
					Related:  []Related{{Pos: first.Pos, Message: "first exception rule"}},
				})
			}
		}
		if len(exceptions) == 0 {
			return nil
		}
		for _, o := range prog.Orders {
			for _, name := range []string{o.Before, o.After} {
				if _, ok := exceptions[name]; ok {
					pass.Reportf(o.Pos, SeverityWarning,
						"order constraint on exception rule %s has no effect: exceptions always run last", name)
				}
			}
		}
		for _, e := range exceptions {
			if len(e.Body) != 1 {
				continue
			}
			for _, r := range prog.Rules {
				if r.Exception || len(r.Body) != 1 || len(r.Preds) > 0 || len(r.Lets) > 0 {
					continue
				}
				if pattern.TreeInstanceOfLoose(model, e.Body[0].Tree, model, r.Body[0].Tree) {
					pass.Report(Diagnostic{
						Pos:      e.Pos,
						Severity: SeverityWarning,
						Message: fmt.Sprintf("exception rule %s can never fire: rule %s unconditionally converts every input it matches",
							e.Name, r.Name),
						Related: []Related{{Pos: r.Pos, Message: "covering rule"}},
					})
					break
				}
			}
		}
		return nil
	},
}
