// The Facts system: typed values computed by one analyzer and
// consumed by later ones in the same Run, mirroring go/analysis
// facts. A fact producer calls Pass.ExportFact once; a consumer calls
// Pass.ImportFact with a pointer to a zero fact of the wanted type
// and receives a copy. Facts are keyed by concrete type, are scoped
// to one driver Run (one program), and never outlive it — reanalysis
// after a reload starts from an empty fact table.
//
// The optimizer passes live here too. One engine.AnalyzeProgram call
// feeds all of them: Interning exports the symbol table, Dispatch the
// head-symbol index, Strata the evaluation order, and DeadRule — the
// only one that speaks — reports the statically-dead rules. The first
// pass to need the engine facts computes and exports them, so the
// expensive analysis runs exactly once per driver Run no matter how
// many passes consume it.
package analysis

import (
	"encoding/json"
	"fmt"
	"reflect"

	"yat/internal/engine"
	"yat/internal/yatl"
)

// Fact is a typed value flowing between analyzers in one driver Run.
// Implementations are pointer types; AFact is a marker method.
type Fact interface{ AFact() }

// ExportFact publishes a fact for later analyzers in the same Run.
// One fact per concrete type: a second export of the same type
// replaces the first.
func (p *Pass) ExportFact(f Fact) {
	if p.facts == nil {
		p.facts = map[reflect.Type]Fact{}
	}
	p.facts[reflect.TypeOf(f)] = f
}

// ImportFact copies the fact of ptr's type into *ptr and reports
// whether one was exported. ptr must be a non-nil pointer to a fact
// value, exactly as exported (a *SymbolsFact imports a *SymbolsFact).
func (p *Pass) ImportFact(ptr Fact) bool {
	f, ok := p.facts[reflect.TypeOf(ptr)]
	if !ok {
		return false
	}
	v := reflect.ValueOf(ptr).Elem()
	v.Set(reflect.ValueOf(f).Elem())
	return true
}

// ProgramFactsFact carries the engine's full optimizer facts — the
// shared substrate the individual optimizer passes project from.
type ProgramFactsFact struct{ Facts *engine.ProgramFacts }

// AFact marks ProgramFactsFact as a Fact.
func (*ProgramFactsFact) AFact() {}

// SymbolsFact carries the program's interned symbol table.
type SymbolsFact struct {
	// Count is the number of distinct symbols.
	Count int
	// Names lists the symbols in sorted order.
	Names []string
}

// AFact marks SymbolsFact as a Fact.
func (*SymbolsFact) AFact() {}

// DispatchFact summarizes the head-symbol dispatch index.
type DispatchFact struct {
	// Roots is the number of distinct root symbols indexed; zero when
	// dispatch is disabled (duplicate rule names).
	Roots int
	// Enabled reports whether the index was built at all.
	Enabled bool
}

// AFact marks DispatchFact as a Fact.
func (*DispatchFact) AFact() {}

// StrataFact carries the dependency stratification: each stratum is
// one strongly-connected component of the functor demand graph,
// dependencies before dependents.
type StrataFact struct{ Strata [][]string }

// AFact marks StrataFact as a Fact.
func (*StrataFact) AFact() {}

// programFacts returns the engine facts for the pass's program,
// computing and exporting them on first need so every later pass
// reuses the same analysis.
func programFacts(pass *Pass) *engine.ProgramFacts {
	var pf ProgramFactsFact
	if pass.ImportFact(&pf) {
		return pf.Facts
	}
	f := engine.AnalyzeProgram(pass.Prog)
	pass.ExportFact(&ProgramFactsFact{Facts: f})
	return f
}

// Interning is the symbol-interning pass: it computes the engine
// facts (once per Run) and exports the dense symbol table. It reports
// nothing — interning cannot fail, only inform.
var Interning = &Analyzer{
	Name: "symtab",
	Doc:  "intern every label, functor and Skolem name into a dense symbol table (fact producer)",
	Run: func(pass *Pass) error {
		f := programFacts(pass)
		pass.ExportFact(&SymbolsFact{Count: f.Syms.Len(), Names: f.Syms.Names()})
		return nil
	},
}

// Dispatch is the head-symbol dispatch pass: it exports the index
// summary the engine's match phase uses to skip rules. Silent.
var Dispatch = &Analyzer{
	Name: "dispatch",
	Doc:  "build the head-symbol dispatch index over interned symbols (fact producer)",
	Run: func(pass *Pass) error {
		f := programFacts(pass)
		fact := &DispatchFact{Enabled: f.Dispatch != nil}
		if f.Dispatch != nil {
			fact.Roots = f.Dispatch.Roots()
		}
		pass.ExportFact(fact)
		return nil
	},
}

// Strata is the stratification pass: it exports the functor
// evaluation order (dependencies first). Silent — cycles are legal;
// the safety analyzer owns the illegal ones.
var Strata = &Analyzer{
	Name: "strata",
	Doc:  "stratify the functor groups by demand dependency (fact producer)",
	Run: func(pass *Pass) error {
		f := programFacts(pass)
		pass.ExportFact(&StrataFact{Strata: f.Strata})
		return nil
	},
}

// DeadRule reports the statically-dead rules: rules whose constant
// predicates can never hold, positioned on the offending predicate,
// and rules unreachable from every root functor, positioned on the
// rule name. Both are warnings — a dead rule is legal, just inert.
var DeadRule = &Analyzer{
	Name: "deadrule",
	Doc:  "report rules that can never fire and rules unreachable from any root functor",
	Run: func(pass *Pass) error {
		f := programFacts(pass)
		byName := map[string]*yatl.Rule{}
		for _, r := range pass.Prog.Rules {
			byName[r.Name] = r
		}
		for _, name := range f.NeverFire {
			r := byName[name]
			if r == nil {
				continue
			}
			pos := r.Pos
			if i := engine.DeadPredIndex(r); i >= 0 {
				pos = r.Preds[i].Pos
			}
			pass.Reportf(pos, SeverityWarning,
				"rule %s can never fire: this predicate is always false", name)
		}
		for _, name := range f.Unreachable {
			r := byName[name]
			if r == nil {
				continue
			}
			pass.Reportf(r.Pos, SeverityWarning,
				"rule %s is unreachable: no root functor demands its outputs", name)
		}
		return nil
	},
}

// FactsReport is the JSON document behind `yatcheck -facts`: every
// fact the optimizer passes compute, in a stable, renderable shape.
type FactsReport struct {
	Program       string     `json:"program"`
	Symbols       int        `json:"symbols"`
	SymbolNames   []string   `json:"symbol_names"`
	DispatchRoots int        `json:"dispatch_roots"`
	NeverFire     []string   `json:"never_fire,omitempty"`
	Unreachable   []string   `json:"unreachable,omitempty"`
	Strata        [][]string `json:"strata"`
}

// ReportFacts computes the optimizer facts for a program and shapes
// them for reporting. Deterministic: two calls over the same source
// render byte-identical JSON.
func ReportFacts(prog *yatl.Program) *FactsReport {
	f := engine.AnalyzeProgram(prog)
	rep := &FactsReport{
		Program:     prog.Name,
		Symbols:     f.Syms.Len(),
		SymbolNames: f.Syms.Names(),
		NeverFire:   f.NeverFire,
		Unreachable: f.Unreachable,
		Strata:      f.Strata,
	}
	if f.Dispatch != nil {
		rep.DispatchRoots = f.Dispatch.Roots()
	}
	return rep
}

// JSON renders the report as indented JSON.
func (r *FactsReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders the report as the one-line summary EXPLAIN uses.
func (r *FactsReport) String() string {
	return fmt.Sprintf("syms=%d dispatch-roots=%d dead-rules=%d unreachable=%d strata=%d",
		r.Symbols, r.DispatchRoots, len(r.NeverFire), len(r.Unreachable), len(r.Strata))
}
