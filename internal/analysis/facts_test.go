package analysis

import (
	"bytes"
	"path/filepath"
	"testing"

	"yat/internal/yatl"
)

// TestFactFlow pins the facts plumbing: a producer's export is
// visible to every later pass in the same Run, and a fresh Run starts
// from an empty table.
func TestFactFlow(t *testing.T) {
	prog, err := yatl.Parse("program p" + yatl.Rule1Source)
	if err != nil {
		t.Fatal(err)
	}
	var syms SymbolsFact
	var disp DispatchFact
	var strata StrataFact
	probe := &Analyzer{
		Name: "probe",
		Doc:  "test-only fact consumer",
		Run: func(pass *Pass) error {
			if !pass.ImportFact(&syms) {
				t.Error("SymbolsFact not exported")
			}
			if !pass.ImportFact(&disp) {
				t.Error("DispatchFact not exported")
			}
			if !pass.ImportFact(&strata) {
				t.Error("StrataFact not exported")
			}
			return nil
		},
	}
	if _, err := Run(prog, append(DefaultAnalyzers(), probe), nil); err != nil {
		t.Fatal(err)
	}
	if syms.Count == 0 || len(syms.Names) != syms.Count {
		t.Errorf("symbols fact = %+v", syms)
	}
	if !disp.Enabled || disp.Roots == 0 {
		t.Errorf("dispatch fact = %+v", disp)
	}
	if len(strata.Strata) == 0 {
		t.Errorf("strata fact = %+v", strata)
	}

	// A consumer running before any producer sees nothing.
	empty := &Analyzer{
		Name: "empty-probe",
		Doc:  "test-only early consumer",
		Run: func(pass *Pass) error {
			var f SymbolsFact
			if pass.ImportFact(&f) {
				t.Error("fact visible before any producer ran")
			}
			return nil
		},
	}
	if _, err := Run(prog, []*Analyzer{empty}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDeadRuleSharesOneAnalysis: the four optimizer passes must share
// one engine.AnalyzeProgram result via the ProgramFactsFact, not
// recompute it per pass.
func TestDeadRuleSharesOneAnalysis(t *testing.T) {
	prog := parseFile(t, filepath.Join("testdata", "unreachable_cycle.yatl"))
	var pf1, pf2 ProgramFactsFact
	grab := func(dst *ProgramFactsFact) *Analyzer {
		return &Analyzer{
			Name: "grab",
			Doc:  "test-only fact grabber",
			Run: func(pass *Pass) error {
				pass.ImportFact(dst)
				return nil
			},
		}
	}
	// Two grabbers at different points in the pipeline see the same
	// underlying facts pointer.
	as := []*Analyzer{Interning, grab(&pf1), Dispatch, Strata, DeadRule, grab(&pf2)}
	if _, err := Run(prog, as, nil); err != nil {
		t.Fatal(err)
	}
	if pf1.Facts == nil || pf1.Facts != pf2.Facts {
		t.Error("optimizer passes did not share one AnalyzeProgram result")
	}
}

func TestReportFactsDeterministic(t *testing.T) {
	prog := parseFile(t, filepath.Join("testdata", "unreachable_cycle.yatl"))
	a, err := ReportFacts(prog).JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReportFacts(prog).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("facts JSON unstable:\n%s\nvs\n%s", a, b)
	}
	rep := ReportFacts(prog)
	if len(rep.Unreachable) != 2 || rep.Unreachable[0] != "CycA" {
		t.Errorf("unreachable = %v", rep.Unreachable)
	}
	if rep.Symbols == 0 || rep.DispatchRoots == 0 || len(rep.Strata) == 0 {
		t.Errorf("report = %+v", rep)
	}
	if rep.String() == "" {
		t.Error("empty summary")
	}
}
