package compose

import (
	"fmt"
	"sort"
	"strings"

	"yat/internal/engine"
	"yat/internal/pattern"
	"yat/internal/typing"
	"yat/internal/yatl"
)

// ComposeOptions configures program composition. It predates the
// functional-option form and is still accepted directly: a
// *ComposeOptions is itself a ComposeOption that overwrites the whole
// configuration, so legacy call sites keep working inside the
// variadic Compose.
type ComposeOptions struct {
	Options
	// SkipTypeCheck bypasses the §4.3 compatibility check (the output
	// model of the first program must instantiate the input model of
	// the second).
	SkipTypeCheck bool
}

// ComposeOption is one functional configuration item for Compose,
// mirroring the engine's Run/NewMediator option style.
type ComposeOption interface {
	applyCompose(*ComposeOptions)
}

// applyCompose makes the legacy struct usable as an option: it
// replaces the accumulated configuration wholesale (matching its old
// all-at-once semantics). A nil *ComposeOptions is a no-op, so
// historical Compose(a, b, nil) call sites still compile and behave.
func (o *ComposeOptions) applyCompose(dst *ComposeOptions) {
	if o != nil {
		*dst = *o
	}
}

type composeOptionFunc func(*ComposeOptions)

func (f composeOptionFunc) applyCompose(o *ComposeOptions) { f(o) }

// WithSkipTypeCheck bypasses (or re-enables) the §4.3 compatibility
// check between the two programs.
func WithSkipTypeCheck(skip bool) ComposeOption {
	return composeOptionFunc(func(o *ComposeOptions) { o.SkipTypeCheck = skip })
}

// WithRegistry supplies the function registry used to evaluate
// external calls on constant arguments at composition time.
func WithRegistry(r *engine.Registry) ComposeOption {
	return composeOptionFunc(func(o *ComposeOptions) { o.Registry = r })
}

// WithModel supplies extra pattern definitions merged with the
// programs' declared models.
func WithModel(m *pattern.Model) ComposeOption {
	return composeOptionFunc(func(o *ComposeOptions) { o.Model = m })
}

// NewComposeOptions folds a variadic option list into the legacy
// struct; nil options are skipped.
func NewComposeOptions(opts ...ComposeOption) *ComposeOptions {
	o := &ComposeOptions{}
	for _, opt := range opts {
		if opt != nil {
			opt.applyCompose(o)
		}
	}
	return o
}

// Compose fuses two conversion programs prg1 : M1 ↦ M2 and
// prg2 : M2' ↦ M3 into a single program M1 ↦ M3 (§4.3). After the
// compatibility check, every rule of prg2 is partially evaluated
// against the head patterns of prg1's rules; the fused rules convert
// the sources directly, never materializing the intermediate model.
// References to intermediate identities splice their Skolem
// arguments (HtmlPage(Pcar(Pbr)) becomes HtmlPage(Pbr)), so the
// composed outputs are keyed directly by source values.
func Compose(prg1, prg2 *yatl.Program, options ...ComposeOption) (*yatl.Program, error) {
	opts := NewComposeOptions(options...)
	if !opts.SkipTypeCheck {
		if err := typing.Compatible(prg1, prg2, opts.Registry); err != nil {
			return nil, err
		}
	}

	// Producers are annotated with their inferred variable domains so
	// the second program's pattern-domain checks (P2 : Ptype) see the
	// real types of the intermediate values.
	producers := map[string][]*yatl.Rule{}
	var annotated []*yatl.Rule
	for _, r := range prg1.Rules {
		if r.Exception || r.Head.Tree == nil {
			continue
		}
		ar, err := typing.AnnotateRule(r, opts.Registry)
		if err != nil {
			return nil, fmt.Errorf("compose: annotating %s: %w", r.Name, err)
		}
		producers[ar.Head.Functor] = append(producers[ar.Head.Functor], ar)
		annotated = append(annotated, ar)
	}

	// The evaluator resolves the intermediate model through prg1's
	// inferred output signature (e.g. the Psup references inside the
	// Pcar values).
	evalOpts := opts.Options
	if sig1, err := typing.Infer(prg1, opts.Registry); err == nil {
		if evalOpts.Model == nil {
			evalOpts.Model = sig1.Out
		} else {
			evalOpts.Model = evalOpts.Model.Merge(sig1.Out)
		}
	}

	// The evaluator runs prg2's rules; prg1's functors resolve
	// through producers.
	prg2ForEval := prg2.Clone()
	for _, m := range prg1.Models {
		found := false
		for _, m2 := range prg2ForEval.Models {
			if m2.Name == m.Name {
				found = true
			}
		}
		if !found {
			prg2ForEval.Models = append(prg2ForEval.Models, &yatl.ModelDecl{Name: m.Name, Model: m.Model.Clone()})
		}
	}
	ev, err := newEvaluator(prg2ForEval, producers, &evalOpts)
	if err != nil {
		return nil, err
	}

	out := &yatl.Program{Name: prg1.Name + "_" + prg2.Name}
	out.Models = prg2ForEval.Models

	var failures []string
	for _, r1 := range annotated {
		rules, err := ev.composeAgainst(r1)
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", r1.Name, err))
			continue
		}
		out.Rules = append(out.Rules, rules...)
	}
	if len(out.Rules) == 0 {
		if len(failures) > 0 {
			return nil, fmt.Errorf("compose: no composed rules derived:\n  %s", strings.Join(failures, "\n  "))
		}
		return nil, fmt.Errorf("compose: no rule of %s applies to the outputs of %s", prg2.Name, prg1.Name)
	}
	if len(failures) > 0 {
		return out, fmt.Errorf("compose: some rules could not be composed:\n  %s", strings.Join(failures, "\n  "))
	}
	return out, nil
}

// composeAgainst derives the composed rules for one producer rule of
// the first program: prg2's functor groups are applied symbolically
// to the producer's head tree; the resulting rules inherit the
// producer's body, predicates and lets.
func (ev *evaluator) composeAgainst(r1 *yatl.Rule) ([]*yatl.Rule, error) {
	if headHasDeref(r1) {
		return nil, fmt.Errorf("producer head dereferences a Skolem; composition requires reference-only heads")
	}
	scope := map[string]bool{}
	for _, v := range r1.Vars() {
		scope[v] = true
	}

	var derived []*yatl.Rule
	blocked := map[string]bool{}
	for _, functor := range ev.functorOrder {
		for _, rule := range ev.groups[functor] {
			if blocked[rule.Name] || rule.Exception {
				continue
			}
			if len(rule.Body) != 1 {
				return nil, fmt.Errorf("rule %s has %d body patterns; composition supports single-pattern rules", rule.Name, len(rule.Body))
			}
			// Rename prg2's variables away from the producer's scope.
			d := newDerivation()
			for v := range scope {
				d.used[v] = true
			}
			ren := map[string]string{}
			for _, v := range rule.Vars() {
				ren[v] = ev.fresh(v, d.used)
			}
			r2 := rule.RenameVars(ren)

			group := ev.match.match(r2.Body[0].Tree, r1.Head.Tree)
			if len(group) == 0 {
				continue
			}
			for _, name := range ev.blocks[rule.Name] {
				blocked[name] = true
			}
			// The body variable of the prg2 rule binds the identity
			// of the intermediate object: the Skolem reference
			// F1(args), whose arguments splice into composed keys.
			oidFrag := newOIDFragment(r1)
			for i := range group {
				nb := group[i].clone()
				nb[r2.Body[0].Var] = symVal{frag: oidFrag}
				group[i] = nb
			}
			head, args, err := ev.applyRuleDepth(r2, group, d, 0)
			if err != nil {
				return nil, fmt.Errorf("composing %s with %s: %w", r1.Name, rule.Name, err)
			}
			if head == nil {
				continue
			}
			composed := &yatl.Rule{
				Name:  r1.Name + "_" + rule.Name,
				Head:  yatl.Head{Functor: r2.Head.Functor, Args: args, Tree: head},
				Body:  cloneBodies(r1.Body),
				Preds: append(clonePreds(r1.Preds), append(substPreds(r2.Preds, group, d), d.preds...)...),
				Lets:  append(cloneLets(r1.Lets), d.lets...),
			}
			// Residual body patterns produced during static inlining
			// refer to intermediate values and are dropped: the
			// composed program never materializes them. Out-of-scope
			// variables betray an inlining that leaked intermediate
			// state.
			if err := checkScope(composed); err != nil {
				return nil, fmt.Errorf("composing %s with %s: %w", r1.Name, rule.Name, err)
			}
			derived = append(derived, composed)
		}
	}
	return derived, nil
}

// newOIDFragment wraps a producer rule's head identity F(args) as a
// reference fragment.
func newOIDFragment(r1 *yatl.Rule) *pattern.PTree {
	args := append([]pattern.Arg(nil), r1.Head.Args...)
	return pattern.NewPatRef(r1.Head.Functor, true, args...)
}

func headHasDeref(r *yatl.Rule) bool {
	for _, ref := range r.Head.Tree.PatternRefs() {
		if !ref.Ref {
			return true
		}
	}
	return false
}

// checkScope verifies that every variable used by the composed rule
// is bound by its body patterns or let clauses.
func checkScope(r *yatl.Rule) error {
	bound := map[string]bool{}
	for _, bp := range r.Body {
		bound[bp.Var] = true
		for _, v := range bp.Tree.Vars() {
			bound[v] = true
		}
	}
	for _, l := range r.Lets {
		bound[l.Var] = true
	}
	var free []string
	seen := map[string]bool{}
	for _, v := range r.Vars() {
		if !bound[v] && !seen[v] {
			seen[v] = true
			free = append(free, v)
		}
	}
	if len(free) > 0 {
		sort.Strings(free)
		return fmt.Errorf("composed rule %s has unbound variables %s (intermediate state leaked)",
			r.Name, strings.Join(free, ", "))
	}
	return nil
}

func cloneBodies(in []yatl.BodyPattern) []yatl.BodyPattern {
	out := make([]yatl.BodyPattern, len(in))
	for i, bp := range in {
		out[i] = yatl.BodyPattern{Var: bp.Var, Domain: bp.Domain, Tree: bp.Tree.Clone()}
	}
	return out
}

func clonePreds(in []yatl.Pred) []yatl.Pred {
	out := make([]yatl.Pred, len(in))
	copy(out, in)
	for i := range out {
		out[i].Args = append([]yatl.Operand(nil), in[i].Args...)
	}
	return out
}

func cloneLets(in []yatl.Let) []yatl.Let {
	out := make([]yatl.Let, len(in))
	for i, l := range in {
		out[i] = yatl.Let{Var: l.Var, Func: l.Func, Args: append([]yatl.Operand(nil), l.Args...)}
	}
	return out
}
