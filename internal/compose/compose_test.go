package compose

import (
	"strings"
	"testing"

	"yat/internal/engine"
	"yat/internal/pattern"
	"yat/internal/tree"
	"yat/internal/yatl"
)

// carSchemaEnv merges the Car Schema patterns with the ODMG model —
// the environment in which the WebCar derivation takes place.
func carSchemaEnv() *pattern.Model {
	return pattern.CarSchemaModel().Merge(pattern.ODMGModel())
}

func webProgram(t *testing.T) *yatl.Program {
	t.Helper()
	return yatl.MustParse(yatl.WebProgramSource)
}

// webGolfStore is the Figure 2 ground data (string zips, matching the
// Car Schema's S3 : string).
func webGolfStore() *tree.Store {
	s := tree.NewStore()
	s.Put(tree.PlainName("c1"), tree.MustParse(
		`class < car < name < "Golf" >,
		                desc < "A classic compact car" >,
		                suppliers < set < &s1, &s2 > > > >`))
	s.Put(tree.PlainName("s1"), tree.MustParse(
		`class < supplier < name < "VW center" >, city < "Paris" >, zip < "75005" > > >`))
	s.Put(tree.PlainName("s2"), tree.MustParse(
		`class < supplier < name < "VW2" >, city < "Versailles" >, zip < "78000" > > >`))
	return s
}

// --- Experiment E9: deriving rule WebCar (§4.1) --------------------------

func TestInstantiateWebCar(t *testing.T) {
	derived, err := Instantiate(webProgram(t), pattern.PcarPattern(), &Options{Model: carSchemaEnv()})
	if err != nil {
		t.Fatal(err)
	}
	rule, ok := derived.Rule("Web1_Pcar")
	if !ok {
		var names []string
		for _, r := range derived.Rules {
			names = append(names, r.Name)
		}
		t.Fatalf("Web1_Pcar missing; derived rules: %v", names)
	}
	src := rule.String()
	// The paper's WebCar shape: static attribute labels, title and h1
	// on the class name, the supplier list kept as an iterating edge
	// with an anchor, and the data_to_string calls residualized.
	for _, frag := range []string{
		`"name: "`, `"desc: "`, `"suppliers: "`,
		"title -> car", "h1 -> car",
		"-*> li -> a <", "&HtmlPage(Psup)", "cont -> supplier",
		"data_to_string(S1)", "data_to_string(S2)",
	} {
		if !strings.Contains(src, frag) {
			t.Errorf("WebCar missing %q:\n%s", frag, src)
		}
	}
	// The head Skolem is parameterized by the input pattern name.
	if rule.Head.Functor != "HtmlPage" || len(rule.Head.Args) != 1 ||
		rule.Head.Args[0].Var != "Pcar" {
		t.Errorf("head = %s(%v)", rule.Head.Functor, rule.Head.Args)
	}
	// The residual body: the Pcar pattern (with the &Psup leaf
	// rewritten into the join variable) plus the referenced supplier
	// pattern — the paper's "incomplete Psup pattern".
	if len(rule.Body) != 2 {
		t.Fatalf("body patterns = %d, want 2:\n%s", len(rule.Body), src)
	}
	if rule.Body[0].Var != "Pcar" || rule.Body[1].Var != "Psup" {
		t.Errorf("body vars = %s, %s", rule.Body[0].Var, rule.Body[1].Var)
	}
	if !strings.Contains(rule.Body[1].Tree.String(), "supplier") {
		t.Errorf("residual body should describe supplier objects: %s", rule.Body[1].Tree)
	}
	// The derived program must still be parseable after printing.
	if _, err := yatl.Parse(derived.String()); err != nil {
		t.Errorf("derived program does not reparse: %v\n%s", err, derived.String())
	}
}

func TestInstantiatedProgramEquivalence(t *testing.T) {
	// "The resulting new program is equivalent to the previous one,
	// but more specific": instantiating on both Pcar and Psup and
	// combining must reproduce the general program's pages exactly.
	web := webProgram(t)
	env := carSchemaEnv()
	dCar, err := Instantiate(web, pattern.PcarPattern(), &Options{Model: env})
	if err != nil {
		t.Fatal(err)
	}
	dSup, err := Instantiate(web, pattern.PsupPattern(), &Options{Model: env})
	if err != nil {
		t.Fatal(err)
	}
	combined := Combine("webSpecific", dCar, dSup)

	general, err := engine.Run(web, webGolfStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	specific, err := engine.Run(combined, webGolfStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range []string{"c1", "s1", "s2"} {
		oid := tree.SkolemName("HtmlPage", tree.Ref{Name: tree.PlainName(obj)})
		g, ok1 := general.Outputs.Get(oid)
		s, ok2 := specific.Outputs.Get(oid)
		if !ok1 || !ok2 {
			t.Fatalf("page %s missing (general %v, specific %v)\nspecific outputs:\n%s",
				oid, ok1, ok2, tree.FormatStore(specific.Outputs))
		}
		if !g.Equal(s) {
			t.Errorf("page %s differs:\n general: %s\nspecific: %s", oid, g, s)
		}
	}
}

func TestCustomizeNewWebCar(t *testing.T) {
	// §4.1: after instantiation the programmer customizes the derived
	// rule — here removing the suppliers item, as in rule newWebCar.
	derived, err := Instantiate(webProgram(t), pattern.PcarPattern(), &Options{Model: carSchemaEnv()})
	if err != nil {
		t.Fatal(err)
	}
	rule, _ := derived.Rule("Web1_Pcar")
	// Drop the third list item (suppliers) and the residual supplier
	// body pattern.
	body := rule.Head.Tree.Edges[1].To // html -> body
	ul := body.Edges[1].To             // body -> ul
	if len(ul.Edges) != 3 {
		t.Fatalf("ul should have 3 items, got %d: %s", len(ul.Edges), rule.Head.Tree)
	}
	ul.Edges = ul.Edges[:2]
	rule.Body = rule.Body[:1]

	res, err := engine.Run(derived, webGolfStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	oid := tree.SkolemName("HtmlPage", tree.Ref{Name: tree.PlainName("c1")})
	page, ok := res.Outputs.Get(oid)
	if !ok {
		t.Fatalf("customized page missing:\n%s", tree.FormatStore(res.Outputs))
	}
	s := page.String()
	if strings.Contains(s, "suppliers") {
		t.Errorf("customized page should not show suppliers: %s", s)
	}
	for _, frag := range []string{`"name: "`, `"Golf"`, `"desc: "`} {
		if !strings.Contains(s, frag) {
			t.Errorf("customized page missing %q: %s", frag, s)
		}
	}
}

func TestInstantiateRequiresMatchingRule(t *testing.T) {
	weird := pattern.NewPattern("Weird", pattern.NewSym("nothing", pattern.One(pattern.NewSym("matches"))))
	// Web2's catch-all Data matches anything, so instantiation
	// succeeds even here — but on a program without a catch-all it
	// must fail.
	noCatchAll := yatl.MustParse(`
program p
rule Only {
  head F(X) = out -> V
  from X = specific -> V
}
`)
	if _, err := Instantiate(noCatchAll, weird, nil); err == nil {
		t.Error("instantiation with no matching rule should fail")
	}
}

func TestCombine(t *testing.T) {
	a := yatl.MustParse("program a\n" + yatl.Rule1Source)
	b := yatl.MustParse("program b\n" + yatl.Rule2Source + yatl.Rule1Source)
	c := Combine("ab", a, b)
	if len(c.Rules) != 3 {
		t.Fatalf("combined rules = %d, want 3", len(c.Rules))
	}
	names := map[string]bool{}
	for _, r := range c.Rules {
		if names[r.Name] {
			t.Errorf("duplicate rule name %s", r.Name)
		}
		names[r.Name] = true
	}
	// The combined program still runs (Skolems are global, both Sup
	// copies define identical outputs).
	store := tree.NewStore()
	store.Put(tree.PlainName("b1"), tree.MustParse(
		`brochure < number < 1 >, title < "Golf" >, model < 1995 >, desc < "d" >,
		            spplrs < supplier < name < "VW" >, address < "Rue A, 75001 Paris" > > > >`))
	if _, err := engine.Run(c, store, nil); err != nil {
		t.Fatalf("combined program failed: %v", err)
	}
}

// --- Experiment E11: composition (§4.3) -----------------------------------

func brochureStore() *tree.Store {
	s := tree.NewStore()
	s.Put(tree.PlainName("b1"), tree.MustParse(
		`brochure < number < 1 >, title < "Golf" >, model < 1995 >, desc < "Sympa" >,
		            spplrs < supplier < name < "VW center" >, address < "Bd Lenoir, 75005 Paris" > > > >`))
	s.Put(tree.PlainName("b2"), tree.MustParse(
		`brochure < number < 2 >, title < "Golf" >, model < 1997 >, desc < "Sympa" >,
		            spplrs < supplier < name < "VW2" >, address < "Bd Leblanc, 75015 Paris" > >,
		                     supplier < name < "VW center" >, address < "Bd Lenoir, 75005 Paris" > > > >`))
	return s
}

func TestComposeSGMLToHTML(t *testing.T) {
	first := yatl.MustParse(yatl.AnnotatedSGMLToODMGSource)
	second := webProgram(t)
	composed, err := Compose(first, second, nil)
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	// The paper's Rule (2+WebCar'): car pages generated directly from
	// brochures, suppliers as anchors keyed by supplier name.
	rule, ok := composed.Rule("Car_Web1")
	if !ok {
		var names []string
		for _, r := range composed.Rules {
			names = append(names, r.Name)
		}
		t.Fatalf("Car_Web1 missing; rules: %v", names)
	}
	src := rule.String()
	for _, frag := range []string{
		"title -> car", `"suppliers: "`, "&HtmlPage(SN)", "cont -> supplier",
		"from Pbr = brochure",
	} {
		if !strings.Contains(src, frag) {
			t.Errorf("composed rule missing %q:\n%s", frag, src)
		}
	}
	// No intermediate (class car / class supplier) body patterns.
	for _, bp := range rule.Body {
		if strings.HasPrefix(bp.Tree.String(), "class") {
			t.Errorf("composed rule matches intermediate objects: %s", bp.Tree)
		}
	}
	// Supplier pages keyed by supplier name (Sup_Web1).
	if _, ok := composed.Rule("Sup_Web1"); !ok {
		t.Error("Sup_Web1 missing: supplier pages would not be generated")
	}
	// The composed program reparses.
	if _, err := yatl.Parse(composed.String()); err != nil {
		t.Errorf("composed program does not reparse: %v\n%s", err, composed.String())
	}
}

// canonicalPages renders the HtmlPage outputs of a run with reference
// names normalized, so composed (HtmlPage(SN)) and sequential
// (HtmlPage(&Psup(SN))) runs compare structurally.
func canonicalPages(t *testing.T, outputs *tree.Store) []string {
	t.Helper()
	var pages []string
	for _, e := range outputs.SortedEntries() {
		if e.Name.Functor != "HtmlPage" {
			continue
		}
		c := e.Tree.Clone()
		c.Walk(func(n *tree.Node) bool {
			if _, ok := n.RefName(); ok {
				n.Label = tree.Symbol("REF")
			}
			return true
		})
		pages = append(pages, c.String())
	}
	return pages
}

func TestComposedEquivalentToSequential(t *testing.T) {
	first := yatl.MustParse(yatl.AnnotatedSGMLToODMGSource)
	second := webProgram(t)
	composed, err := Compose(first, second, nil)
	if err != nil {
		t.Fatal(err)
	}

	inputs := brochureStore()

	// Sequential: materialize the ODMG objects, then convert them.
	mid, err := engine.Run(first, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	midStore := tree.NewStore()
	for _, e := range mid.Outputs.Entries() {
		midStore.Put(e.Name, e.Tree)
	}
	seq, err := engine.Run(second, midStore, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Composed: one step, no intermediate store.
	direct, err := engine.Run(composed, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}

	seqPages := canonicalPages(t, seq.Outputs)
	dirPages := canonicalPages(t, direct.Outputs)
	if len(seqPages) != len(dirPages) {
		t.Fatalf("page counts differ: sequential %d, composed %d\nsequential:\n%s\ncomposed:\n%s",
			len(seqPages), len(dirPages),
			strings.Join(seqPages, "\n"), strings.Join(dirPages, "\n"))
	}
	seen := map[string]int{}
	for _, p := range seqPages {
		seen[p]++
	}
	for _, p := range dirPages {
		if seen[p] == 0 {
			t.Errorf("composed page has no sequential counterpart:\n%s", p)
			continue
		}
		seen[p]--
	}
}

func TestComposeIncompatiblePrograms(t *testing.T) {
	// HTML output does not feed the SGML-consuming program.
	first := webProgram(t)
	second := yatl.MustParse(yatl.AnnotatedSGMLToODMGSource)
	if _, err := Compose(first, second, nil); err == nil {
		t.Error("incompatible composition should fail the type check")
	}
}

func TestComposeSkipTypeCheck(t *testing.T) {
	// With the check skipped the composition is attempted anyway and
	// fails to derive rules (nothing matches).
	first := webProgram(t)
	second := yatl.MustParse(yatl.AnnotatedSGMLToODMGSource)
	if _, err := Compose(first, second, &ComposeOptions{SkipTypeCheck: true}); err == nil {
		t.Error("no composed rules should be derivable")
	}
}

func TestCombinedCustomizedProgramShadowsGeneral(t *testing.T) {
	// The §4.2 scenario end to end: the derived (and customized)
	// WebCar rule combined with the general program must shadow Web1
	// for car objects — same Skolem functor, subtype bodies — while
	// Web1 keeps handling suppliers. Without the &Psup-typed join
	// variable this would be ambiguous and non-deterministic.
	web := webProgram(t)
	derived, err := Instantiate(web, pattern.PcarPattern(), &Options{Model: carSchemaEnv()})
	if err != nil {
		t.Fatal(err)
	}
	rule, _ := derived.Rule("Web1_Pcar")
	// Customize: hide the suppliers item (rule newWebCar).
	body := rule.Head.Tree.Edges[1].To
	ul := body.Edges[1].To
	ul.Edges = ul.Edges[:2]
	rule.Body = rule.Body[:1]

	combined := Combine("custom", derived, web)
	res, err := engine.Run(combined, webGolfStore(), nil)
	if err != nil {
		t.Fatalf("combined run failed (hierarchy did not shadow Web1?): %v", err)
	}
	carPage, ok := res.Outputs.Get(tree.SkolemName("HtmlPage", tree.Ref{Name: tree.PlainName("c1")}))
	if !ok {
		t.Fatal("car page missing")
	}
	if strings.Contains(carPage.String(), "suppliers") {
		t.Errorf("customized layout not used for the car page: %s", carPage)
	}
	supPage, ok := res.Outputs.Get(tree.SkolemName("HtmlPage", tree.Ref{Name: tree.PlainName("s1")}))
	if !ok {
		t.Fatal("supplier page missing (general rule should still apply)")
	}
	if !strings.Contains(supPage.String(), `"VW center"`) {
		t.Errorf("supplier page wrong: %s", supPage)
	}
}

func TestDerivedJoinVariableIsReferenceTyped(t *testing.T) {
	derived, err := Instantiate(webProgram(t), pattern.PcarPattern(), &Options{Model: carSchemaEnv()})
	if err != nil {
		t.Fatal(err)
	}
	rule, _ := derived.Rule("Web1_Pcar")
	if !strings.Contains(rule.Body[0].Tree.String(), "Psup : &Psup") {
		t.Errorf("join variable should carry the &Psup reference domain:\n%s", rule.Body[0].Tree)
	}
	// The derived program is self-contained: it embeds the schema it
	// was instantiated against.
	foundSchema := false
	for _, m := range derived.Models {
		if m.Model.Has("Psup") {
			foundSchema = true
		}
	}
	if !foundSchema {
		t.Error("derived program does not embed the instantiation schema")
	}
}
