package compose

import (
	"fmt"

	"yat/internal/pattern"
	"yat/internal/yatl"
)

// maxInlineDepth bounds the recursive static expansion of
// dereferenced Skolems; recursive programs instantiated on recursive
// patterns would otherwise diverge.
const maxInlineDepth = 64

// construct rebuilds a head pattern tree with the group's fragments
// substituted — the symbolic counterpart of the engine's output
// construction.
func (ev *evaluator) construct(head *pattern.PTree, group []symBinding, d *derivation) (*pattern.PTree, error) {
	return ev.constructDepth(head, group, d, 0)
}

func (ev *evaluator) constructDepth(head *pattern.PTree, group []symBinding, d *derivation, depth int) (*pattern.PTree, error) {
	if depth > maxInlineDepth {
		return nil, fmt.Errorf("static expansion exceeds depth %d (recursive pattern?)", maxInlineDepth)
	}
	switch label := head.Label.(type) {
	case pattern.Const:
		node := pattern.NewConst(label.Value)
		if err := ev.constructEdges(node, head.Edges, group, d, depth); err != nil {
			return nil, err
		}
		return node, nil

	case pattern.Var:
		val, err := consistentFrag(group, label.Name)
		if err != nil {
			return nil, err
		}
		if len(head.Edges) == 0 {
			return val.frag.Clone(), nil
		}
		// Internal head variable: the fragment must be a label.
		frag := val.frag
		if len(frag.Edges) > 0 {
			return nil, fmt.Errorf("variable %s labels an inner node but holds subtree %s", label.Name, frag)
		}
		node := &pattern.PTree{Label: frag.Label}
		if err := ev.constructEdges(node, head.Edges, group, d, depth); err != nil {
			return nil, err
		}
		return node, nil

	case pattern.PatRef:
		if len(head.Edges) > 0 {
			return nil, fmt.Errorf("pattern reference %s cannot have children in a head", label.Display())
		}
		if label.Ref {
			args, err := ev.substHeadArgs(label.Args, group, d)
			if err != nil {
				return nil, err
			}
			return pattern.NewPatRef(label.Name, true, args...), nil
		}
		return ev.resolveDeref(label, group, d, depth)
	}
	return nil, fmt.Errorf("unknown head label")
}

// consistentFrag returns the fragment a variable is bound to,
// requiring all alternatives of the group to agree (the static
// counterpart of the run-time non-determinism alert).
func consistentFrag(group []symBinding, name string) (symVal, error) {
	val, ok := group[0][name]
	if !ok {
		return symVal{}, fmt.Errorf("head variable %s is unbound", name)
	}
	for _, b := range group[1:] {
		other, ok := b[name]
		if !ok || other.frag.String() != val.frag.String() {
			return symVal{}, fmt.Errorf("head variable %s takes distinct fragments across alternatives", name)
		}
	}
	return val, nil
}

// substHeadArgs substitutes Skolem arguments inside a head tree,
// splicing arguments of reference fragments and rewriting argless
// data references into join variables on the derived body.
func (ev *evaluator) substHeadArgs(args []pattern.Arg, group []symBinding, d *derivation) ([]pattern.Arg, error) {
	var out []pattern.Arg
	for _, a := range args {
		if !a.IsVar {
			out = append(out, a)
			continue
		}
		val, err := consistentFrag(group, a.Var)
		if err != nil {
			return nil, err
		}
		if ref, isOID := val.oid(); isOID {
			if len(ref.Args) > 0 {
				// Splice the reference's own Skolem arguments:
				// HtmlPage(Pclass) with Pclass = &Psup(SN) becomes
				// HtmlPage(SN).
				out = append(out, ref.Args...)
				continue
			}
			// An argless reference (&Psup on ground-style patterns):
			// rewrite the body leaf into a join variable.
			v := ev.refVar(val.frag, ref.Name, d)
			out = append(out, pattern.VarArg(v))
			continue
		}
		switch l := val.frag.Label.(type) {
		case pattern.Var:
			if len(val.frag.Edges) == 0 {
				out = append(out, pattern.VarArg(l.Name))
				continue
			}
		case pattern.Const:
			if len(val.frag.Edges) == 0 {
				out = append(out, pattern.ConstArg(l.Value))
				continue
			}
		}
		return nil, fmt.Errorf("Skolem argument %s bound to non-atomic fragment %s", a.Var, val.frag)
	}
	return out, nil
}

// refVar rewrites a reference leaf of the derived body into a
// variable (named after the referenced pattern when free), so the
// reference value can flow into head Skolem arguments and join with
// residual body patterns. The same leaf always maps to the same
// variable.
func (ev *evaluator) refVar(frag *pattern.PTree, refName string, d *derivation) string {
	if v, ok := frag.Label.(pattern.Var); ok {
		return v.Name // already rewritten
	}
	name := ev.fresh(refName, d.used)
	// Type the join variable as "a reference to refName" when the
	// pattern is known; this is what keeps the derived rule provably
	// more specific than the generic one (§4.2 conflicts).
	dom := pattern.AnyDomain
	if _, known := ev.env.Get(refName); known {
		dom = pattern.RefDomain(refName)
	}
	frag.Label = pattern.Var{Name: name, Domain: dom}
	return name
}

// resolveDeref statically expands a dereferenced Skolem invocation
// ^F(args): the functor group of F is applied symbolically to the
// argument fragment (most specific rule first) and the resulting head
// is inlined — the paper's WebCar derivation. What cannot be
// resolved statically remains a dynamic deref in the derived rule.
func (ev *evaluator) resolveDeref(ref pattern.PatRef, group []symBinding, d *derivation, depth int) (*pattern.PTree, error) {
	if len(ref.Args) != 1 || !ref.Args[0].IsVar {
		// Constant or multi-argument derefs stay dynamic.
		return pattern.NewPatRef(ref.Name, false, ref.Args...), nil
	}
	val, err := consistentFrag(group, ref.Args[0].Var)
	if err != nil {
		return nil, err
	}
	frag := val.frag

	if target, isOID := frag.Label.(pattern.PatRef); isOID && len(frag.Edges) == 0 {
		// The argument is a reference &Q(...): the conversion applies
		// to the referenced value.
		if producers, ok := ev.producers[target.Name]; ok && len(producers) > 0 {
			// Composition: Q is a Skolem functor of the first program;
			// its value pattern is that rule's head tree. No residual
			// body is needed — the composed program never materializes
			// the intermediate object.
			prodHead := producers[0].Head.Tree.Clone()
			renameFresh(prodHead, ev, d)
			inline, err := ev.inlineFunctor(ref.Name, prodHead, symVal{frag: frag}, d, depth)
			if err != nil {
				return nil, err
			}
			if inline != nil {
				return inline, nil
			}
			return nil, fmt.Errorf("no rule of functor %s applies to the %s value pattern", ref.Name, target.Name)
		}
		if qPat, known := ev.env.Get(target.Name); known && len(qPat.Union) > 0 {
			// Instantiation: the referenced pattern is known from the
			// model. The target pattern joins the derived body as a
			// residual input (the paper's "incomplete Psup pattern"),
			// connected through the rewritten reference variable.
			joinVar := ev.refVar(frag, target.Name, d)
			qTree := qPat.Union[0].Clone()
			renameFresh(qTree, ev, d)
			d.addBody(residualBody(joinVar, qTree))
			inline, err := ev.inlineFunctor(ref.Name, qTree, symVal{frag: pattern.NewVar(joinVar, pattern.AnyDomain)}, d, depth)
			if err != nil {
				return nil, err
			}
			if inline != nil {
				return inline, nil
			}
			return pattern.NewPatRef(ref.Name, false, pattern.VarArg(joinVar)), nil
		}
		// Unknown reference target: keep the deref dynamic over the
		// rewritten join variable.
		joinVar := ev.refVar(frag, target.Name, d)
		return pattern.NewPatRef(ref.Name, false, pattern.VarArg(joinVar)), nil
	}

	// Plain fragment (variable, constant or subtree): apply F's group
	// to it directly.
	inline, err := ev.inlineFunctor(ref.Name, frag, symVal{frag: frag}, d, depth)
	if err != nil {
		return nil, err
	}
	if inline != nil {
		return inline, nil
	}
	// No rule applies statically: keep a dynamic deref when the
	// argument is expressible.
	switch l := frag.Label.(type) {
	case pattern.Var:
		if len(frag.Edges) == 0 {
			return pattern.NewPatRef(ref.Name, false, pattern.VarArg(l.Name)), nil
		}
	case pattern.Const:
		if len(frag.Edges) == 0 {
			return pattern.NewPatRef(ref.Name, false, pattern.ConstArg(l.Value)), nil
		}
	}
	return nil, fmt.Errorf("no rule of functor %s matches fragment %s", ref.Name, frag)
}

// inlineFunctor symbolically applies the most specific matching rule
// of a functor group to a fragment and returns its constructed head
// (nil when no rule matches). Rule variables are renamed fresh per
// application, as the paper requires for WebCar's T1/D1.
func (ev *evaluator) inlineFunctor(functor string, target *pattern.PTree, identity symVal, d *derivation, depth int) (*pattern.PTree, error) {
	blocked := map[string]bool{}
	for _, rule := range ev.groups[functor] {
		if blocked[rule.Name] || len(rule.Body) != 1 || rule.Exception {
			continue
		}
		ren := map[string]string{}
		for _, v := range rule.Vars() {
			ren[v] = ev.fresh(v, d.used)
		}
		r := rule.RenameVars(ren)
		group := ev.match.match(r.Body[0].Tree, target)
		if len(group) == 0 {
			continue
		}
		for _, name := range ev.blocks[rule.Name] {
			blocked[name] = true
		}
		for i := range group {
			nb := group[i].clone()
			nb[r.Body[0].Var] = identity
			group[i] = nb
		}
		head, err := ev.inlineRule(r, group, d, depth+1)
		if err != nil {
			return nil, fmt.Errorf("inlining %s: %w", rule.Name, err)
		}
		if head == nil {
			continue
		}
		return head, nil
	}
	return nil, nil
}

// applyRuleDepth partially evaluates one rule application: lets and
// constant predicates run per alternative, then the head tree is
// rebuilt with fragments substituted. A nil head with nil error means
// every alternative was statically filtered out.
func (ev *evaluator) applyRuleDepth(rule *yatl.Rule, group []symBinding, d *derivation, depth int) (*pattern.PTree, []pattern.Arg, error) {
	kept := group[:0:0]
	for _, b := range group {
		nb, ok, err := ev.evalLetsAndPreds(rule, b, d)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			kept = append(kept, nb)
		}
	}
	if len(kept) == 0 {
		return nil, nil, nil
	}
	args, err := ev.substHeadArgs(rule.Head.Args, kept[:1], d)
	if err != nil {
		return nil, nil, err
	}
	head, err := ev.constructDepth(rule.Head.Tree, kept, d, depth)
	if err != nil {
		return nil, nil, err
	}
	return head, args, nil
}

// inlineRule is applyRuleDepth for inlined applications: the inlined
// value replaces a deref site, so the inner rule's own Skolem
// identity is irrelevant and its arguments are not substituted.
func (ev *evaluator) inlineRule(rule *yatl.Rule, group []symBinding, d *derivation, depth int) (*pattern.PTree, error) {
	kept := group[:0:0]
	for _, b := range group {
		nb, ok, err := ev.evalLetsAndPreds(rule, b, d)
		if err != nil {
			return nil, err
		}
		if ok {
			kept = append(kept, nb)
		}
	}
	if len(kept) == 0 {
		return nil, nil
	}
	return ev.constructDepth(rule.Head.Tree, kept, d, depth)
}

// constructEdges rebuilds the children of a head node. Alternatives
// bound under star-like input edges keep the iterating edge; the
// others expand statically into One edges (WebCar's three explicit
// li items vs its kept `ul -*> li` over the suppliers).
func (ev *evaluator) constructEdges(node *pattern.PTree, edges []pattern.Edge, group []symBinding, d *derivation, depth int) error {
	for _, e := range edges {
		if e.Occ == pattern.OccOne {
			child, err := ev.constructDepth(e.To, group, d, depth)
			if err != nil {
				return err
			}
			node.Edges = append(node.Edges, pattern.One(child))
			continue
		}
		vars := e.To.Vars()
		seen := map[string]bool{}
		for _, b := range group {
			child, err := ev.constructDepth(e.To, []symBinding{b}, d, depth)
			if err != nil {
				return err
			}
			star := bindingIsStar(b, vars)
			occ := pattern.OccOne
			outEdge := pattern.One(child)
			if star {
				occ = e.Occ
				outEdge = pattern.Edge{Occ: e.Occ, OrderBy: append([]string(nil), e.OrderBy...), Index: e.Index, To: child}
			}
			key := fmt.Sprintf("%d|%s", occ, child.String())
			if seen[key] {
				continue
			}
			seen[key] = true
			node.Edges = append(node.Edges, outEdge)
		}
	}
	return nil
}

// bindingIsStar reports whether any of the edge's variables was bound
// under a star-like input edge in this alternative.
func bindingIsStar(b symBinding, vars []string) bool {
	for _, v := range vars {
		if val, ok := b[v]; ok && val.star {
			return true
		}
	}
	return false
}

// renameFresh renames every variable of a pattern tree to a fresh
// name, keeping the derivation's used-set consistent.
func renameFresh(t *pattern.PTree, ev *evaluator, d *derivation) {
	ren := map[string]string{}
	for _, v := range t.Vars() {
		ren[v] = ev.fresh(v, d.used)
	}
	renamePTree(t, ren)
}

func renamePTree(t *pattern.PTree, ren map[string]string) {
	lookup := func(v string) string {
		if n, ok := ren[v]; ok {
			return n
		}
		return v
	}
	switch l := t.Label.(type) {
	case pattern.Var:
		t.Label = pattern.Var{Name: lookup(l.Name), Domain: l.Domain}
	case pattern.PatRef:
		args := append([]pattern.Arg(nil), l.Args...)
		for i, a := range args {
			if a.IsVar {
				args[i].Var = lookup(a.Var)
			}
		}
		t.Label = pattern.PatRef{Name: l.Name, Args: args, Ref: l.Ref}
	}
	for i := range t.Edges {
		e := &t.Edges[i]
		if e.Index != "" {
			e.Index = lookup(e.Index)
		}
		for j, v := range e.OrderBy {
			e.OrderBy[j] = lookup(v)
		}
		renamePTree(e.To, ren)
	}
}

func residualBody(varName string, t *pattern.PTree) yatl.BodyPattern {
	return yatl.BodyPattern{Var: varName, Tree: t}
}
