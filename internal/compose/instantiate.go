package compose

import (
	"fmt"
	"strconv"

	"yat/internal/engine"
	"yat/internal/pattern"
	"yat/internal/tree"
	"yat/internal/yatl"
)

// Options configures the symbolic evaluator.
type Options struct {
	// Registry evaluates external functions on constant arguments at
	// instantiation time (WebCar's "name: " labels). Defaults to
	// engine.NewRegistry().
	Registry *engine.Registry
	// Model supplies extra pattern definitions (e.g. the schema the
	// input pattern comes from), merged with the program's declared
	// models.
	Model *pattern.Model
}

// Instantiate specializes a general program onto a specific pattern
// (§4.1): the rules whose bodies the pattern instantiates are
// partially evaluated against it, dereferenced Skolem invocations are
// expanded recursively (with fresh variable renaming), and whatever
// cannot be resolved statically — external functions on variables,
// referenced patterns — remains in the derived rule's body. The
// result reproduces the WebCar derivation.
func Instantiate(prog *yatl.Program, input *pattern.Pattern, opts *Options) (*yatl.Program, error) {
	ev, err := newEvaluator(prog, nil, opts)
	if err != nil {
		return nil, err
	}
	out := &yatl.Program{Name: prog.Name + "_" + input.Name}
	for _, m := range prog.Models {
		out.Models = append(out.Models, &yatl.ModelDecl{Name: m.Name, Model: m.Model.Clone()})
	}
	// Embed the extra environment (the schema the pattern comes from)
	// so the derived program is self-contained: its reference-typed
	// join variables and rule-hierarchy comparisons resolve at run
	// time without the caller re-supplying the model.
	if opts != nil && opts.Model != nil {
		out.Models = append(out.Models, &yatl.ModelDecl{Name: "Schema" + input.Name, Model: opts.Model.Clone()})
	}
	for bi, branch := range input.Union {
		suffix := ""
		if len(input.Union) > 1 {
			suffix = "_" + strconv.Itoa(bi+1)
		}
		rules, err := ev.deriveForInput(input.Name, branch, suffix)
		if err != nil {
			return nil, err
		}
		out.Rules = append(out.Rules, rules...)
	}
	if len(out.Rules) == 0 {
		return nil, fmt.Errorf("compose: no rule of %s matches pattern %s", prog.Name, input.Name)
	}
	return out, nil
}

// Combine merges several programs into one (§4.2). Rules keep their
// declarativity: the interpreter's hierarchy dispatches conflicting
// rules most-specific-first at run time. Duplicate rule names are
// suffixed.
func Combine(name string, progs ...*yatl.Program) *yatl.Program {
	out := &yatl.Program{Name: name}
	seenRule := map[string]int{}
	seenModel := map[string]bool{}
	for _, p := range progs {
		for _, m := range p.Models {
			if seenModel[m.Name] {
				continue
			}
			seenModel[m.Name] = true
			out.Models = append(out.Models, &yatl.ModelDecl{Name: m.Name, Model: m.Model.Clone()})
		}
		for _, r := range p.Rules {
			c := r.Clone()
			if n := seenRule[c.Name]; n > 0 {
				seenRule[c.Name] = n + 1
				c.Name = c.Name + "_" + strconv.Itoa(n+1)
			} else {
				seenRule[c.Name] = 1
			}
			out.Rules = append(out.Rules, c)
		}
		out.Orders = append(out.Orders, p.Orders...)
	}
	return out
}

// evaluator carries the state of one symbolic evaluation.
type evaluator struct {
	prog  *yatl.Program
	env   *pattern.Model
	reg   *engine.Registry
	match *symMatcher
	// groups orders the rules per Skolem functor, most specific
	// first, reusing the §4.2 hierarchy.
	groups       map[string][]*yatl.Rule
	functorOrder []string
	blocks       map[string][]string
	// producers maps a functor of the *first* program to its rules
	// during composition; references to producer identities resolve
	// through the producer's head tree and splice their Skolem
	// arguments.
	producers map[string][]*yatl.Rule

	freshCounter int
}

func newEvaluator(prog *yatl.Program, producers map[string][]*yatl.Rule, opts *Options) (*evaluator, error) {
	if opts == nil {
		opts = &Options{}
	}
	reg := opts.Registry
	if reg == nil {
		reg = engine.NewRegistry()
	}
	env := pattern.NewModel()
	for _, m := range prog.Models {
		env = env.Merge(m.Model)
	}
	if opts.Model != nil {
		env = env.Merge(opts.Model)
	}
	ev := &evaluator{
		prog:      prog,
		env:       env,
		reg:       reg,
		match:     &symMatcher{model: env},
		groups:    map[string][]*yatl.Rule{},
		blocks:    map[string][]string{},
		producers: producers,
	}
	h := engine.BuildHierarchy(prog, env)
	ev.groups = h.Groups
	ev.functorOrder = h.FunctorOrder
	ev.blocks = h.Blocks
	return ev, nil
}

// fresh returns a variable name not used in the current derivation.
func (ev *evaluator) fresh(base string, used map[string]bool) string {
	name := base
	for i := 1; used[name]; i++ {
		name = base + strconv.Itoa(i)
	}
	used[name] = true
	return name
}

// derivation accumulates the residual parts of one derived rule.
type derivation struct {
	used     map[string]bool
	lets     []yatl.Let
	preds    []yatl.Pred
	bodies   []yatl.BodyPattern
	bodySeen map[string]bool
}

func newDerivation() *derivation {
	return &derivation{used: map[string]bool{}, bodySeen: map[string]bool{}}
}

func (d *derivation) addBody(bp yatl.BodyPattern) {
	key := bp.Var + "=" + bp.Tree.String()
	if d.bodySeen[key] {
		return
	}
	d.bodySeen[key] = true
	d.bodies = append(d.bodies, bp)
}

// deriveForInput derives the specialized rules for one input pattern
// branch: per functor group, the most specific matching rules are
// partially evaluated against the branch.
func (ev *evaluator) deriveForInput(inputName string, branch *pattern.PTree, suffix string) ([]*yatl.Rule, error) {
	// The derived body is a clone of the branch; symbolic matching
	// runs against the clone so that bound fragments are nodes of the
	// derived body and can be rewritten in place (reference leaves
	// become join variables).
	body := branch.Clone()
	var derived []*yatl.Rule
	blocked := map[string]bool{}
	for _, functor := range ev.functorOrder {
		for _, rule := range ev.groups[functor] {
			if blocked[rule.Name] || len(rule.Body) != 1 {
				continue
			}
			group := ev.match.match(rule.Body[0].Tree, body)
			if len(group) == 0 {
				continue
			}
			for _, name := range ev.blocks[rule.Name] {
				blocked[name] = true
			}
			d := newDerivation()
			for _, v := range body.Vars() {
				d.used[v] = true
			}
			d.used[inputName] = true
			// The rule's body variable binds the input's name.
			idFrag := pattern.NewVar(inputName, pattern.AnyDomain)
			for i := range group {
				nb := group[i].clone()
				nb[rule.Body[0].Var] = symVal{frag: idFrag}
				group[i] = nb
			}
			head, args, err := ev.applyRuleDepth(rule, group, d, 0)
			if err != nil {
				return nil, fmt.Errorf("compose: instantiating rule %s on %s: %w", rule.Name, inputName, err)
			}
			if head == nil {
				continue // all alternatives statically filtered out
			}
			// Each derived rule owns a snapshot of the (possibly
			// rewritten) body so later derivations — and user
			// customization — cannot mutate it through aliasing.
			newRule := &yatl.Rule{
				Name:  rule.Name + "_" + inputName + suffix,
				Head:  yatl.Head{Functor: rule.Head.Functor, Args: args, Tree: head},
				Body:  append([]yatl.BodyPattern{{Var: inputName, Tree: body.Clone()}}, d.bodies...),
				Lets:  d.lets,
				Preds: append(substPreds(rule.Preds, group, d), d.preds...),
			}
			derived = append(derived, newRule)
		}
	}
	return derived, nil
}

// substPreds residualizes the outer rule's predicates. Predicates
// whose operands all resolve to constants are evaluated statically in
// applyRule; here the variable-dependent ones are rewritten onto the
// input pattern's variables. The substitution uses the first
// alternative: rule variables referenced by predicates are bound
// outside star edges in every program we derive (a predicate over a
// star-bound variable would need per-alternative residuals, which
// YATL's flat predicate lists cannot express).
func substPreds(preds []yatl.Pred, group []symBinding, d *derivation) []yatl.Pred {
	if len(preds) == 0 || len(group) == 0 {
		return nil
	}
	b := group[0]
	var out []yatl.Pred
	for _, p := range preds {
		if p.IsCall() {
			if _, allConst := constArgs(p.Args, b); allConst {
				continue // decided statically in evalLetsAndPreds
			}
			args, ok := substOperands(p.Args, b)
			if ok {
				out = append(out, yatl.Pred{Call: p.Call, Args: args})
			}
			continue
		}
		_, lConst := constOperand(p.Left, b)
		_, rConst := constOperand(p.Right, b)
		if lConst && rConst {
			continue // decided statically in evalLetsAndPreds
		}
		left, lok := substOperand(p.Left, b)
		right, rok := substOperand(p.Right, b)
		if lok && rok {
			out = append(out, yatl.Pred{Left: left, Op: p.Op, Right: right})
		}
	}
	return out
}

func substOperands(ops []yatl.Operand, b symBinding) ([]yatl.Operand, bool) {
	out := make([]yatl.Operand, len(ops))
	for i, o := range ops {
		so, ok := substOperand(o, b)
		if !ok {
			return nil, false
		}
		out[i] = so
	}
	return out, true
}

// substOperand maps a rule operand through the binding: constants
// stay, bound variables become the fragment's variable or constant.
func substOperand(o yatl.Operand, b symBinding) (yatl.Operand, bool) {
	if !o.IsVar {
		return o, true
	}
	v, ok := b[o.Var]
	if !ok {
		return yatl.Operand{}, false
	}
	switch l := v.frag.Label.(type) {
	case pattern.Var:
		if len(v.frag.Edges) == 0 {
			return yatl.VarOperand(l.Name), true
		}
	case pattern.Const:
		if len(v.frag.Edges) == 0 {
			return yatl.ConstOperand(l.Value), true
		}
	}
	return yatl.Operand{}, false
}

// evalLetsAndPreds processes one alternative's lets and constant
// predicates.
func (ev *evaluator) evalLetsAndPreds(rule *yatl.Rule, b symBinding, d *derivation) (symBinding, bool, error) {
	b = b.clone()
	for _, l := range rule.Lets {
		consts, allConst := constArgs(l.Args, b)
		if allConst {
			val, typed, err := ev.reg.Call(l.Func, consts)
			if err != nil || !typed {
				// The alternative cannot pass the §3.1 type filter.
				return nil, false, nil
			}
			b[l.Var] = symVal{frag: pattern.NewConst(val)}
			continue
		}
		// Residual let with a fresh result variable.
		args, ok := substOperands(l.Args, b)
		if !ok {
			return nil, false, nil
		}
		freshVar := ev.fresh(l.Var, d.used)
		d.lets = append(d.lets, yatl.Let{Var: freshVar, Func: l.Func, Args: args})
		b[l.Var] = symVal{frag: pattern.NewVar(freshVar, pattern.AnyDomain)}
	}
	for _, p := range rule.Preds {
		if p.IsCall() {
			consts, allConst := constArgs(p.Args, b)
			if !allConst {
				continue // residualized by substPreds
			}
			res, typed, err := ev.reg.CallBool(p.Call, consts)
			if err != nil || !typed || !res {
				return nil, false, nil
			}
			continue
		}
		lv, lok := constOperand(p.Left, b)
		rv, rok := constOperand(p.Right, b)
		if !lok || !rok {
			continue // residualized by substPreds
		}
		if !evalComparison(p.Op, lv, rv) {
			return nil, false, nil
		}
	}
	return b, true, nil
}

func constArgs(ops []yatl.Operand, b symBinding) ([]tree.Value, bool) {
	out := make([]tree.Value, len(ops))
	for i, o := range ops {
		v, ok := constOperand(o, b)
		if !ok {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

func constOperand(o yatl.Operand, b symBinding) (tree.Value, bool) {
	if !o.IsVar {
		return o.Const, true
	}
	v, ok := b[o.Var]
	if !ok {
		return nil, false
	}
	if c, isConst := v.frag.Label.(pattern.Const); isConst && len(v.frag.Edges) == 0 {
		return c.Value, true
	}
	return nil, false
}

func evalComparison(op yatl.CmpOp, a, b tree.Value) bool {
	cmp := tree.Compare(a, b)
	switch op {
	case yatl.OpEq:
		return tree.EqualValues(a, b)
	case yatl.OpNe:
		return !tree.EqualValues(a, b)
	case yatl.OpLt:
		return cmp < 0
	case yatl.OpLe:
		return cmp <= 0
	case yatl.OpGt:
		return cmp > 0
	case yatl.OpGe:
		return cmp >= 0
	}
	return false
}
