package compose

import (
	"strings"
	"testing"

	"yat/internal/engine"
	"yat/internal/pattern"
	"yat/internal/tree"
	"yat/internal/yatl"
)

func TestInstantiateWebSup(t *testing.T) {
	// Instantiating on Psup derives the supplier page rule: three
	// static list items, all atoms residualized through
	// data_to_string.
	derived, err := Instantiate(webProgram(t), pattern.PsupPattern(), &Options{Model: carSchemaEnv()})
	if err != nil {
		t.Fatal(err)
	}
	rule, ok := derived.Rule("Web1_Psup")
	if !ok {
		t.Fatal("Web1_Psup missing")
	}
	src := rule.String()
	for _, frag := range []string{
		"title -> supplier", `"name: "`, `"city: "`, `"zip: "`,
		"data_to_string(S1)", "data_to_string(S2)", "data_to_string(S3)",
	} {
		if !strings.Contains(src, frag) {
			t.Errorf("Web1_Psup missing %q:\n%s", frag, src)
		}
	}
	// A single body pattern: suppliers reference nothing.
	if len(rule.Body) != 1 {
		t.Errorf("body patterns = %d, want 1", len(rule.Body))
	}
}

func TestInstantiatePredicatesResidualized(t *testing.T) {
	// A general rule with a variable predicate: the derived rule
	// keeps it over the pattern's variables.
	src := `
program p
rule R {
  head F(X) = out < -> V, -> W >
  from X = in < -> a -> V, -> b -> W >
  where V > 10
  where W == "keep"
}
`
	prog := yatl.MustParse(src)
	input := pattern.NewPattern("Pin", yatl.MustParsePattern(
		`in < -> a -> N : int, -> b -> S : string >`))
	derived, err := Instantiate(prog, input, nil)
	if err != nil {
		t.Fatal(err)
	}
	rule := derived.Rules[0]
	out := rule.String()
	if !strings.Contains(out, "N > 10") || !strings.Contains(out, `S == "keep"`) {
		t.Errorf("predicates not residualized:\n%s", out)
	}
}

func TestInstantiateConstantPredicateFiltersStatically(t *testing.T) {
	// A predicate decidable at instantiation time eliminates the rule
	// application entirely.
	src := `
program p
rule R {
  head F(X) = out -> V
  from X = in < -> year -> Y, -> v -> V >
  where Y > 1975
}
`
	prog := yatl.MustParse(src)
	oldPattern := pattern.NewPattern("Pold", yatl.MustParsePattern(
		`in < -> year -> 1960, -> v -> V >`))
	if _, err := Instantiate(prog, oldPattern, nil); err == nil {
		t.Error("statically false predicate should leave no derivable rules")
	}
	newPattern := pattern.NewPattern("Pnew", yatl.MustParsePattern(
		`in < -> year -> 1990, -> v -> V >`))
	derived, err := Instantiate(prog, newPattern, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The satisfied predicate disappears from the derived rule.
	if strings.Contains(derived.Rules[0].String(), "1975") {
		t.Errorf("statically true predicate should be dropped:\n%s", derived.Rules[0])
	}
}

func TestInstantiateTypeFilterStatically(t *testing.T) {
	// An external function over a constant of the wrong kind drops
	// the alternative through the §3.1 type filter at derivation
	// time.
	src := `
program p
rule R {
  head F(X) = out -> C
  from X = in -> A
  let C = city(A)
}
`
	prog := yatl.MustParse(src)
	intPattern := pattern.NewPattern("Pint", yatl.MustParsePattern(`in -> 42`))
	if _, err := Instantiate(prog, intPattern, nil); err == nil {
		t.Error("type-filtered alternative should leave nothing to derive")
	}
	strPattern := pattern.NewPattern("Pstr", yatl.MustParsePattern(`in -> "Bd Lenoir, 75005 Paris"`))
	derived, err := Instantiate(prog, strPattern, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fully static: the city is computed at instantiation time.
	if !strings.Contains(derived.Rules[0].String(), `"Paris"`) {
		t.Errorf("constant function call should evaluate statically:\n%s", derived.Rules[0])
	}
}

func TestInstantiateUnknownRefStaysDynamic(t *testing.T) {
	// A reference to a pattern the model does not know: the deref
	// stays dynamic over a join variable.
	src := `
program p
rule R {
  head F(X) = out -> ^G(V)
  from X = in -> V
}
rule G1 {
  head G(X) = converted -> N
  from X = thing -> N
}
`
	prog := yatl.MustParse(src)
	input := pattern.NewPattern("Pin", yatl.MustParsePattern(`in -> &Mystery`))
	derived, err := Instantiate(prog, input, nil)
	if err != nil {
		t.Fatal(err)
	}
	rule, ok := derived.Rule("R_Pin")
	if !ok {
		t.Fatal("R_Pin missing")
	}
	src2 := rule.String()
	if !strings.Contains(src2, "^G(Mystery)") {
		t.Errorf("unknown ref target should keep a dynamic deref:\n%s", src2)
	}
	// The body's &Mystery leaf was rewritten into the join variable.
	if !strings.Contains(rule.Body[0].Tree.String(), "in -> Mystery") {
		t.Errorf("body leaf not rewritten:\n%s", rule.Body[0].Tree)
	}
}

func TestInstantiateUnionPattern(t *testing.T) {
	src := `
program p
rule R {
  head F(X) = out -> V
  from X = in -> V
}
`
	prog := yatl.MustParse(src)
	union := pattern.NewPattern("PU",
		yatl.MustParsePattern(`in -> "a"`),
		yatl.MustParsePattern(`in -> "b"`))
	derived, err := Instantiate(prog, union, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(derived.Rules) != 2 {
		t.Fatalf("rules = %d, want one per union branch", len(derived.Rules))
	}
	names := []string{derived.Rules[0].Name, derived.Rules[1].Name}
	if names[0] == names[1] {
		t.Errorf("branch rules share a name: %v", names)
	}
}

func TestInstantiateSkipsMultiBodyRules(t *testing.T) {
	// Multi-pattern rules are not specialized (the join target is not
	// determined by one input pattern); single-pattern rules of the
	// same program still derive.
	src := `
program p
rule Multi {
  head F(K) = out -> K
  from X = a -> K
  from Y = b -> K
}
rule Single {
  head G(X) = got -> V
  from X = a -> V
}
`
	prog := yatl.MustParse(src)
	input := pattern.NewPattern("Pa", yatl.MustParsePattern(`a -> V : int`))
	derived, err := Instantiate(prog, input, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := derived.Rule("Single_Pa"); !ok {
		t.Error("single-body rule not derived")
	}
	if _, ok := derived.Rule("Multi_Pa"); ok {
		t.Error("multi-body rule should not be derived")
	}
}

func TestComposedRulePreservesProducerPredicates(t *testing.T) {
	// Rule Sup carries `Year > 1975`; the composed supplier-page rule
	// must keep it (pages only for post-1975 suppliers).
	first := yatl.MustParse(yatl.AnnotatedSGMLToODMGSource)
	second := webProgram(t)
	composed, err := Compose(first, second, nil)
	if err != nil {
		t.Fatal(err)
	}
	rule, ok := composed.Rule("Sup_Web1")
	if !ok {
		t.Fatal("Sup_Web1 missing")
	}
	found := false
	for _, p := range rule.Preds {
		if p.String() == "Year > 1975" {
			found = true
		}
	}
	if !found {
		t.Errorf("producer predicate lost:\n%s", rule.String())
	}
	// And at runtime: an old brochure yields no supplier page.
	store := tree.NewStore()
	store.Put(tree.PlainName("old"), tree.MustParse(
		`brochure < number < 1 >, title < "Beetle" >, model < 1960 >, desc < "old" >,
		            spplrs < supplier < name < "S" >, address < "Rue A, 75001 Paris" > > > >`))
	res, err := engine.Run(composed, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Outputs.Entries() {
		if e.Name.Functor != "HtmlPage" {
			continue
		}
		// Supplier pages carry title < supplier >; the car page (with
		// its anchors) is legitimately produced — Rule Car has no
		// predicate.
		if strings.Contains(e.Tree.String(), "title < supplier >") {
			t.Errorf("pre-1975 supplier got a page: %s", e.Tree)
		}
	}
}

func TestComposeRejectsDerefProducerHeads(t *testing.T) {
	first := yatl.MustParse(`
program p
rule R {
  head F(N) = out -> ^G(N)
  from X = in -> N
}
rule G1 {
  head G(N) = g -> N
  from X = in -> N
}
`)
	second := yatl.MustParse(`
program q
rule W {
  head H(X) = h -> V
  from X = out -> V
}
`)
	_, err := Compose(first, second, &ComposeOptions{SkipTypeCheck: true})
	if err == nil || !strings.Contains(err.Error(), "dereferences") {
		t.Errorf("deref producer head should be reported: %v", err)
	}
}

func TestCombinePreservesOrders(t *testing.T) {
	a := yatl.MustParse("program a\norder X before Y\n" + yatl.Rule1Source)
	b := yatl.MustParse("program b\n" + yatl.Rule2Source)
	c := Combine("ab", a, b)
	if len(c.Orders) != 1 || c.Orders[0].Before != "X" {
		t.Errorf("orders = %v", c.Orders)
	}
	if len(c.Models) != 0 {
		t.Errorf("models = %d", len(c.Models))
	}
	// Models merge without duplication.
	w := yatl.MustParse(yatl.WebProgramSource)
	c2 := Combine("ww", w, w.Clone())
	if len(c2.Models) != 1 {
		t.Errorf("duplicate model declarations: %d", len(c2.Models))
	}
}

func TestDerivedProgramsReparse(t *testing.T) {
	// Every derivation path produces programs that survive the
	// print/parse round trip.
	derived, err := Instantiate(webProgram(t), pattern.PsupPattern(), &Options{Model: carSchemaEnv()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := yatl.Parse(derived.String()); err != nil {
		t.Errorf("instantiated program does not reparse: %v", err)
	}
	composed, err := Compose(yatl.MustParse(yatl.AnnotatedSGMLToODMGSource), webProgram(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := yatl.Parse(composed.String()); err != nil {
		t.Errorf("composed program does not reparse: %v", err)
	}
}

func TestInstantiateOnCyclicSchema(t *testing.T) {
	// A cyclic schema (suppliers sell cars, cars have suppliers):
	// instantiation terminates and derives rules for both patterns.
	str := `class -> supplier < -> name -> S1 : string, -> city -> S2 : string,
	                             -> zip -> S3 : string,
	                             -> sells -> set -*> &PcarX >`
	carStr := `class -> car < -> name -> T1 : string, -> desc -> T2 : string,
	                           -> suppliers -> set -*> &PsupX >`
	psup := pattern.NewPattern("PsupX", yatl.MustParsePattern(str))
	pcar := pattern.NewPattern("PcarX", yatl.MustParsePattern(carStr))
	env := pattern.NewModel(psup, pcar).Merge(pattern.ODMGModel())

	derived, err := Instantiate(webProgram(t), psup, &Options{Model: env})
	if err != nil {
		t.Fatal(err)
	}
	rule, ok := derived.Rule("Web1_PsupX")
	if !ok {
		t.Fatal("Web1_PsupX missing")
	}
	src := rule.String()
	// The sells set becomes an iterating anchor list over car pages.
	for _, frag := range []string{`"sells: "`, "&HtmlPage(PcarX)", "cont -> car"} {
		if !strings.Contains(src, frag) {
			t.Errorf("cyclic-schema derivation missing %q:\n%s", frag, src)
		}
	}
	// Both directions derive without diverging.
	if _, err := Instantiate(webProgram(t), pcar, &Options{Model: env}); err != nil {
		t.Fatal(err)
	}
}

func TestDerivedRulesDoNotAliasBodies(t *testing.T) {
	derived, err := Instantiate(webProgram(t), pattern.PcarPattern(), &Options{Model: carSchemaEnv()})
	if err != nil {
		t.Fatal(err)
	}
	if len(derived.Rules) < 2 {
		t.Skip("need at least two derived rules")
	}
	a, b := derived.Rules[0], derived.Rules[1]
	if a.Body[0].Tree == b.Body[0].Tree {
		t.Fatal("derived rules share a body tree pointer")
	}
	before := b.Body[0].Tree.String()
	a.Body[0].Tree.Label = pattern.Var{Name: "Mutated"}
	if b.Body[0].Tree.String() != before {
		t.Error("mutating one derived rule changed another")
	}
}
