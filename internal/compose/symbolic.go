// Package compose implements the program-level operations of §4:
// instantiation of a general program onto a specific pattern
// (customization, §4.1), combination of programs into one rule
// hierarchy (§4.2) and composition of two programs into a one-step
// conversion that skips the intermediate model (§4.3).
//
// All three are built on a symbolic evaluator: rule bodies are
// matched against *patterns* instead of ground data, binding rule
// variables to pattern fragments, and rule heads are rebuilt with
// those fragments substituted. Dereferenced Skolem invocations are
// resolved statically by recursively instantiating the target functor
// group, mirroring the WebCar derivation step by step.
package compose

import (
	"yat/internal/pattern"
)

// symVal is the value a rule variable takes during symbolic
// evaluation: a fragment of the input pattern. The fragment may be a
// constant leaf, a variable of the input pattern, a whole subtree, or
// a Skolem reference leaf (&F(args)), which additionally records the
// reference's functor and arguments for static resolution.
type symVal struct {
	frag *pattern.PTree
	// star marks fragments bound under a star-like edge of the input
	// pattern: the instantiated head keeps an iterating edge for them
	// instead of expanding statically.
	star bool
}

// oid returns the Skolem reference carried by the fragment, if any.
func (v symVal) oid() (pattern.PatRef, bool) {
	if v.frag == nil {
		return pattern.PatRef{}, false
	}
	ref, ok := v.frag.Label.(pattern.PatRef)
	if !ok || len(v.frag.Edges) > 0 {
		return pattern.PatRef{}, false
	}
	return ref, ok
}

// symBinding maps rule variables to pattern fragments.
type symBinding map[string]symVal

func (b symBinding) clone() symBinding {
	c := make(symBinding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// merge combines two bindings; shared variables must bind fragments
// with the same rendering.
func (b symBinding) merge(o symBinding) (symBinding, bool) {
	out := b.clone()
	for k, v := range o {
		if prev, ok := out[k]; ok {
			if prev.frag.String() != v.frag.String() {
				return nil, false
			}
			continue
		}
		out[k] = v
	}
	return out, true
}

func symProduct(as, bs []symBinding) []symBinding {
	if len(as) == 0 || len(bs) == 0 {
		return nil
	}
	var out []symBinding
	for _, a := range as {
		for _, b := range bs {
			if m, ok := a.merge(b); ok {
				out = append(out, m)
			}
		}
	}
	return out
}

// symMatcher matches rule body trees against pattern trees. model
// resolves pattern-domain variables and pattern references of the
// input side (may be nil: unknown patterns are accepted, §3.5).
type symMatcher struct {
	model *pattern.Model
}

// match returns the symbolic bindings under which the input pattern
// tree instantiates the body tree.
func (m *symMatcher) match(body, input *pattern.PTree) []symBinding {
	switch label := body.Label.(type) {
	case pattern.Const:
		li, ok := input.Label.(pattern.Const)
		if !ok || !li.Value.Equal(label.Value) {
			return nil
		}
		return m.matchEdges(body.Edges, input.Edges)

	case pattern.Var:
		if len(body.Edges) == 0 {
			// Leaf variable: binds the whole input fragment.
			if !m.domainAdmits(label.Domain, input) {
				return nil
			}
			return []symBinding{{label.Name: symVal{frag: input}}}
		}
		// Internal variable: binds the input node's label.
		if label.Domain.IsPattern() {
			return nil
		}
		labelFrag, ok := m.labelFragment(input, label.Domain)
		if !ok {
			return nil
		}
		bs := m.matchEdges(body.Edges, input.Edges)
		var out []symBinding
		for _, b := range bs {
			if prev, bound := b[label.Name]; bound {
				if prev.frag.String() != labelFrag.String() {
					continue
				}
				out = append(out, b)
				continue
			}
			nb := b.clone()
			nb[label.Name] = symVal{frag: labelFrag}
			out = append(out, nb)
		}
		return out

	case pattern.PatRef:
		ri, ok := input.Label.(pattern.PatRef)
		if !ok || len(input.Edges) > 0 {
			return nil
		}
		if label.Ref != ri.Ref {
			return nil
		}
		// Without arguments any reference to a compatible pattern is
		// accepted; with arguments the functor must agree and the
		// argument variables bind.
		if len(label.Args) == 0 {
			return []symBinding{{}}
		}
		if ri.Name != label.Name || len(ri.Args) != len(label.Args) {
			return nil
		}
		b := symBinding{}
		for i, a := range label.Args {
			if !a.IsVar {
				if ri.Args[i].IsVar || !ri.Args[i].Const.Equal(a.Const) {
					return nil
				}
				continue
			}
			frag := argFragment(ri.Args[i])
			if prev, bound := b[a.Var]; bound {
				if prev.frag.String() != frag.String() {
					return nil
				}
				continue
			}
			b[a.Var] = symVal{frag: frag}
		}
		return []symBinding{b}
	}
	return nil
}

// argFragment wraps a Skolem argument as a pattern fragment.
func argFragment(a pattern.Arg) *pattern.PTree {
	if a.IsVar {
		return pattern.NewVar(a.Var, pattern.AnyDomain)
	}
	return pattern.NewConst(a.Const)
}

// labelFragment extracts the label of an input node as a fragment for
// an internal body variable, checking the domain.
func (m *symMatcher) labelFragment(input *pattern.PTree, dom pattern.Domain) (*pattern.PTree, bool) {
	switch li := input.Label.(type) {
	case pattern.Const:
		if !dom.IsAny() && !dom.Contains(li.Value) {
			return nil, false
		}
		return pattern.NewConst(li.Value), true
	case pattern.Var:
		if !li.Domain.SubsetOf(dom) {
			return nil, false
		}
		return pattern.NewVar(li.Name, li.Domain), true
	}
	return nil, false
}

// domainAdmits checks a leaf body variable's domain against an input
// fragment.
func (m *symMatcher) domainAdmits(d pattern.Domain, input *pattern.PTree) bool {
	if d.IsAny() {
		return true
	}
	if d.IsRefPattern() {
		// &P: the fragment must denote a reference — a &Q leaf or a
		// variable already typed as a reference.
		if len(input.Edges) > 0 {
			return false
		}
		switch li := input.Label.(type) {
		case pattern.PatRef:
			if !li.Ref {
				return false
			}
			if m.model == nil {
				return true
			}
			if _, known := m.model.Get(li.Name); !known {
				return true
			}
			return pattern.PatternInstanceOf(m.model, li.Name, m.model, d.Pattern)
		case pattern.Var:
			return li.Domain.IsRefPattern() &&
				(li.Domain.Pattern == d.Pattern ||
					m.model == nil ||
					pattern.PatternInstanceOf(m.model, li.Domain.Pattern, m.model, d.Pattern))
		}
		return false
	}
	if d.IsPattern() {
		if m.model == nil {
			return true
		}
		dom, defined := m.model.Get(d.Pattern)
		if !defined {
			return true
		}
		// References are admitted when the referenced pattern (if
		// known) instantiates the domain; unknown references are
		// admitted optimistically, exactly like the paper's
		// incomplete Psup pattern.
		if ref, ok := input.Label.(pattern.PatRef); ok && len(input.Edges) == 0 {
			target, known := m.model.Get(ref.Name)
			if !known {
				return true
			}
			_ = target
			return pattern.PatternInstanceOf(m.model, ref.Name, m.model, d.Pattern) ||
				refAdmittedViaBranch(m.model, ref, dom)
		}
		return pattern.TreeInstanceOf(m.model, input, m.model, &pattern.PTree{
			Label: pattern.PatRef{Name: d.Pattern},
		}) || anyBranchInstance(m.model, input, dom)
	}
	// Kind/symbol domains admit constant leaves in the domain and
	// variables with subset domains.
	if len(input.Edges) > 0 {
		return false
	}
	switch li := input.Label.(type) {
	case pattern.Const:
		return d.Contains(li.Value)
	case pattern.Var:
		return li.Domain.SubsetOf(d)
	}
	return false
}

func anyBranchInstance(model *pattern.Model, input *pattern.PTree, dom *pattern.Pattern) bool {
	for _, branch := range dom.Union {
		if pattern.TreeInstanceOf(model, input, model, branch) {
			return true
		}
	}
	return false
}

// refAdmittedViaBranch accepts &Q against a pattern domain that has a
// &P branch with Q an instance of P (the Ptype/&Pclass case).
func refAdmittedViaBranch(model *pattern.Model, ref pattern.PatRef, dom *pattern.Pattern) bool {
	for _, branch := range dom.Union {
		br, ok := branch.Label.(pattern.PatRef)
		if !ok || !br.Ref || len(branch.Edges) > 0 {
			continue
		}
		if pattern.PatternInstanceOf(model, ref.Name, model, br.Name) {
			return true
		}
	}
	return false
}

// matchEdges matches input edges against body edges. A body One edge
// consumes exactly one input One edge. A body star-like edge consumes
// a run of input edges: input One edges contribute statically
// expandable alternatives, input star-like edges contribute one
// alternative marked star (the instantiated rule keeps the
// iteration).
func (m *symMatcher) matchEdges(body, input []pattern.Edge) []symBinding {
	if len(body) == 0 {
		if len(input) == 0 {
			return []symBinding{{}}
		}
		return nil
	}
	e := body[0]
	if e.Occ == pattern.OccOne {
		if len(input) == 0 || input[0].Occ != pattern.OccOne {
			return nil
		}
		head := m.match(e.To, input[0].To)
		if len(head) == 0 {
			return nil
		}
		rest := m.matchEdges(body[1:], input[1:])
		return symProduct(head, rest)
	}

	// Star-like body edge.
	hasVars := len(e.To.Vars()) > 0 || e.Occ == pattern.OccIndex
	var out []symBinding
	var runAlts []symBinding
	for k := 0; ; k++ {
		rest := m.matchEdges(body[1:], input[k:])
		if len(rest) > 0 {
			switch {
			case !hasVars:
				out = append(out, rest...)
			case k > 0:
				out = append(out, symProduct(runAlts, rest)...)
			}
		}
		if k == len(input) {
			break
		}
		bs := m.match(e.To, input[k].To)
		if len(bs) == 0 {
			break
		}
		star := input[k].Occ != pattern.OccOne
		for _, b := range bs {
			nb := b.clone()
			if star {
				for v, val := range nb {
					val.star = true
					nb[v] = val
				}
			}
			runAlts = append(runAlts, nb)
		}
	}
	return out
}
