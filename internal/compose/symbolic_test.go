package compose

import (
	"testing"

	"yat/internal/pattern"
	"yat/internal/tree"
	"yat/internal/yatl"
)

func pt(t *testing.T, src string) *pattern.PTree {
	t.Helper()
	p, err := yatl.ParsePattern(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSymMatchConstAndVars(t *testing.T) {
	m := &symMatcher{}
	// Constant match with variable binding against a pattern input.
	bs := m.match(pt(t, `class -> C -*> A -> V`), pt(t, `class -> car < -> name -> T : string, -> desc -> D >`))
	if len(bs) != 2 {
		t.Fatalf("bindings = %d, want 2 alternatives", len(bs))
	}
	if bs[0]["C"].frag.String() != "car" {
		t.Errorf("C = %s", bs[0]["C"].frag)
	}
	if bs[0]["V"].frag.String() != "T : string" {
		t.Errorf("V = %s", bs[0]["V"].frag)
	}
	// Root mismatch fails.
	if got := m.match(pt(t, `other -> X`), pt(t, `class -> car`)); got != nil {
		t.Errorf("mismatched root matched: %v", got)
	}
}

func TestSymMatchStarKeepsStarFlag(t *testing.T) {
	m := &symMatcher{}
	// Body star over an input star edge: the binding is star-marked.
	bs := m.match(pt(t, `set -*> V`), pt(t, `set -*> &Psup(SN)`))
	if len(bs) != 1 || !bs[0]["V"].star {
		t.Fatalf("star flag lost: %+v", bs)
	}
	// Body star over input One edges: statically expandable, no flag.
	bs = m.match(pt(t, `set -*> V`), pt(t, `set < -> a, -> b >`))
	if len(bs) != 2 || bs[0]["V"].star || bs[1]["V"].star {
		t.Fatalf("one-edge alternatives mis-flagged: %+v", bs)
	}
	// Body One edge cannot consume an input star edge.
	if got := m.match(pt(t, `set -> V`), pt(t, `set -*> X`)); got != nil {
		t.Errorf("One consumed a star edge: %v", got)
	}
}

func TestSymMatchSkolemRefArgs(t *testing.T) {
	m := &symMatcher{}
	// Argument variables bind against the reference's arguments.
	bs := m.match(pt(t, `set -*> &Psup(V)`), pt(t, `set -{}> &Psup(SN)`))
	if len(bs) != 1 {
		t.Fatalf("bindings = %d", len(bs))
	}
	if bs[0]["V"].frag.String() != "SN" {
		t.Errorf("V = %s", bs[0]["V"].frag)
	}
	// Constant arguments must agree.
	if got := m.match(pt(t, `set -*> &Psup("a")`), pt(t, `set -*> &Psup("b")`)); got != nil {
		t.Error("mismatched constant args matched")
	}
	if got := m.match(pt(t, `set -*> &Psup("a")`), pt(t, `set -*> &Psup("a")`)); len(got) != 1 {
		t.Error("equal constant args should match")
	}
	// Deref/ref polarity must agree.
	if got := m.match(pt(t, `set -*> &Psup(V)`), pt(t, `set -*> ^Psup(SN)`)); got != nil {
		t.Error("ref matched deref")
	}
	// Functor mismatch with args fails; without args any ref matches.
	if got := m.match(pt(t, `set -*> &Pcar(V)`), pt(t, `set -*> &Psup(SN)`)); got != nil {
		t.Error("wrong functor matched")
	}
	if got := m.match(pt(t, `set -*> &Pcar`), pt(t, `set -*> &Psup(SN)`)); len(got) != 1 {
		t.Error("argless ref pattern should accept any reference")
	}
}

func TestSymMatchDomains(t *testing.T) {
	m := &symMatcher{model: pattern.ODMGModel()}
	// Kind-domain body var admits narrower input vars and matching
	// constants only.
	if got := m.match(pt(t, `a -> V : string`), pt(t, `a -> W : string`)); len(got) != 1 {
		t.Error("same-domain var rejected")
	}
	if got := m.match(pt(t, `a -> V : string`), pt(t, `a -> W`)); got != nil {
		t.Error("wider-domain var accepted")
	}
	if got := m.match(pt(t, `a -> V : string`), pt(t, `a -> "text"`)); len(got) != 1 {
		t.Error("string constant rejected")
	}
	if got := m.match(pt(t, `a -> V : string`), pt(t, `a -> 5`)); got != nil {
		t.Error("int constant accepted by string domain")
	}
	// Pattern-domain var admits subtrees that instantiate the pattern.
	if got := m.match(pt(t, `a -> V : Ptype`), pt(t, `a -> set -*> X : string|int|float|bool`)); len(got) != 1 {
		t.Error("set subtree rejected by Ptype domain")
	}
	if got := m.match(pt(t, `a -> V : Ptype`), pt(t, `a -> weird -> deep -> thing`)); got != nil {
		t.Error("non-Ptype subtree accepted")
	}
	// Internal body var with symbol domain.
	if got := m.match(pt(t, `V : (set|bag) -*> X`), pt(t, `set -*> Y : string`)); len(got) != 1 {
		t.Error("(set|bag) rejected set")
	}
	if got := m.match(pt(t, `V : (set|bag) -*> X`), pt(t, `list -*> Y`)); got != nil {
		t.Error("(set|bag) accepted list")
	}
}

func TestSymMatchRepeatedVarConsistency(t *testing.T) {
	m := &symMatcher{}
	if got := m.match(pt(t, `p < -> a -> X, -> b -> X >`), pt(t, `p < -> a -> V, -> b -> V >`)); len(got) != 1 {
		t.Error("consistent repeated var rejected")
	}
	if got := m.match(pt(t, `p < -> a -> X, -> b -> X >`), pt(t, `p < -> a -> V, -> b -> W >`)); got != nil {
		t.Error("inconsistent repeated var accepted")
	}
}

func TestEvalComparisonOperators(t *testing.T) {
	cases := []struct {
		op   yatl.CmpOp
		a, b tree.Value
		want bool
	}{
		{yatl.OpEq, tree.Int(1), tree.Int(1), true},
		{yatl.OpEq, tree.Int(1), tree.Float(1), true},
		{yatl.OpNe, tree.Int(1), tree.Int(2), true},
		{yatl.OpLt, tree.Int(1), tree.Int(2), true},
		{yatl.OpLe, tree.Int(2), tree.Int(2), true},
		{yatl.OpGt, tree.Int(3), tree.Int(2), true},
		{yatl.OpGe, tree.Int(2), tree.Int(3), false},
		{yatl.OpLt, tree.String("a"), tree.String("b"), true},
	}
	for _, c := range cases {
		if got := evalComparison(c.op, c.a, c.b); got != c.want {
			t.Errorf("evalComparison(%v, %v, %v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestSymBindingMerge(t *testing.T) {
	a := symBinding{"X": symVal{frag: pt(t, `1`)}}
	b := symBinding{"X": symVal{frag: pt(t, `1`)}, "Y": symVal{frag: pt(t, `2`)}}
	m, ok := a.merge(b)
	if !ok || len(m) != 2 {
		t.Errorf("merge = %v %v", m, ok)
	}
	c := symBinding{"X": symVal{frag: pt(t, `9`)}}
	if _, ok := a.merge(c); ok {
		t.Error("conflicting merge accepted")
	}
}

func TestInstantiateDeepDerefChain(t *testing.T) {
	// Static inlining follows deref chains across functors.
	src := `
program p
rule A {
  head F(X) = fa -> ^G(V)
  from X = top -> V
}
rule B {
  head G(X) = gb -> ^H(X)
  from X = mid -> W
}
rule C {
  head H(X) = hc -> W
  from X = mid -> W
}
`
	prog := yatl.MustParse(src)
	input := pattern.NewPattern("Pin", pt(t, `top -> mid -> "payload"`))
	derived, err := Instantiate(prog, input, nil)
	if err != nil {
		t.Fatal(err)
	}
	rule, ok := derived.Rule("A_Pin")
	if !ok {
		t.Fatal("A_Pin missing")
	}
	want := `fa -> gb -> hc -> "payload"`
	if rule.Head.Tree.String() != want {
		t.Errorf("deep inline:\n got: %s\nwant: %s", rule.Head.Tree, want)
	}
}

func TestInstantiateRecursionDepthGuard(t *testing.T) {
	// A recursive program instantiated on a recursive pattern must
	// hit the depth guard instead of diverging.
	src := `
program p
` + yatl.ODMGModelSource + `
rule R {
  head F(X) = w -*> ^F(P2)
  from X = X2 : (set|bag) -*> P2 : Ptype
}
rule Base {
  head F(X) = done
  from X = D : string|int|float|bool
}
`
	prog := yatl.MustParse(src)
	// Ptype is recursive: set -*> ^Ptype.
	odmg := pattern.ODMGModel()
	ptype, _ := odmg.Get("Ptype")
	_, err := Instantiate(prog, ptype, &Options{Model: odmg})
	// Either a depth error or a clean failure is acceptable; an
	// infinite loop is not (the test itself is the guard).
	if err == nil {
		t.Log("instantiation terminated without error (acceptable)")
	}
}
