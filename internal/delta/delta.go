// Package delta computes the difference between two fetches of a
// source: which named trees appeared, which disappeared, and which
// changed in place. It is the first stage of the mediator's
// incremental view maintenance — RefreshSource diffs the previous
// merged input store against the refreshed one and pushes only the
// difference through the affected rule slices, instead of dropping
// every dependent cache entry and re-materializing from scratch.
//
// The diff is entry-grained: the unit the engine seeds activations
// from is a named store entry, so that is the unit the delta
// evaluation mode consumes. For changed entries the package
// additionally estimates the size of the changed subtrees (DiffNodes),
// which feeds the EXPLAIN `delta:` lines but carries no semantic
// weight.
package delta

import (
	"yat/internal/tree"
)

// Change is one entry present in both stores with different trees.
type Change struct {
	Name tree.Name
	Old  *tree.Node
	New  *tree.Node
}

// Delta is the difference from an old store to a new one. Inserted
// and Changed preserve the new store's entry order and Deleted the old
// store's — the delta evaluation mode seeds activations from Inserted
// in order, and the byte-identity argument needs that order to agree
// with a from-scratch run over the new store.
type Delta struct {
	// Inserted lists the entries of new whose names old lacks.
	Inserted []tree.StoreEntry
	// Deleted lists the entries of old whose names new lacks.
	Deleted []tree.StoreEntry
	// Changed lists the names present in both with unequal trees.
	Changed []Change
}

// Diff computes the delta from old to new. A nil store is treated as
// empty. Entries are compared by name key and deep tree equality.
func Diff(old, new *tree.Store) *Delta {
	d := &Delta{}
	oldKeys := map[string]bool{}
	if old != nil {
		for _, e := range old.Entries() {
			oldKeys[e.Name.Key()] = true
		}
	}
	if new != nil {
		for _, e := range new.Entries() {
			if !oldKeys[e.Name.Key()] {
				d.Inserted = append(d.Inserted, e)
				continue
			}
			prev, _ := old.Get(e.Name)
			if !prev.Equal(e.Tree) {
				d.Changed = append(d.Changed, Change{Name: e.Name, Old: prev, New: e.Tree})
			}
		}
	}
	if old != nil {
		for _, e := range old.Entries() {
			if new == nil || !new.Has(e.Name) {
				d.Deleted = append(d.Deleted, e)
			}
		}
	}
	return d
}

// Empty reports whether the two stores were identical.
func (d *Delta) Empty() bool {
	return len(d.Inserted) == 0 && len(d.Deleted) == 0 && len(d.Changed) == 0
}

// InsertOnly reports whether the delta consists purely of new entries
// — the monotone case the mediator's tier-1 patch path requires.
func (d *Delta) InsertOnly() bool {
	return len(d.Deleted) == 0 && len(d.Changed) == 0
}

// Nodes returns the total node counts of the inserted and deleted
// subtrees, counting a changed entry's divergent subtrees on both
// sides (DiffNodes). Display data for EXPLAIN.
func (d *Delta) Nodes() (inserted, deleted int) {
	for _, e := range d.Inserted {
		inserted += e.Tree.Size()
	}
	for _, e := range d.Deleted {
		deleted += e.Tree.Size()
	}
	for _, c := range d.Changed {
		ins, del := DiffNodes(c.Old, c.New)
		inserted += ins
		deleted += del
	}
	return inserted, deleted
}

// DiffNodes estimates how many nodes were inserted and deleted between
// two versions of one tree. Equal subtrees cancel; under a shared
// label, children are matched by subtree key first (so reordering and
// duplication cancel too) and the positional remainder is paired off
// and recursed into. The estimate is conservative in the unmatched
// case: a subtree with no counterpart counts whole.
func DiffNodes(old, new *tree.Node) (inserted, deleted int) {
	switch {
	case old == nil && new == nil:
		return 0, 0
	case old == nil:
		return new.Size(), 0
	case new == nil:
		return 0, old.Size()
	}
	if !old.Label.Equal(new.Label) {
		return new.Size(), old.Size()
	}
	// Cancel children that match exactly, regardless of position.
	unmatchedOld := indexByKey(old.Children)
	var leftoverNew []*tree.Node
	for _, c := range new.Children {
		k := c.Key()
		if n := unmatchedOld[k]; n > 0 {
			unmatchedOld[k] = n - 1
			continue
		}
		leftoverNew = append(leftoverNew, c)
	}
	var leftoverOld []*tree.Node
	for _, c := range old.Children {
		k := c.Key()
		if unmatchedOld[k] > 0 {
			unmatchedOld[k]--
			leftoverOld = append(leftoverOld, c)
		}
	}
	// Pair the remainders in order and recurse; surplus counts whole.
	i := 0
	for ; i < len(leftoverOld) && i < len(leftoverNew); i++ {
		ins, del := DiffNodes(leftoverOld[i], leftoverNew[i])
		inserted += ins
		deleted += del
	}
	for ; i < len(leftoverNew); i++ {
		inserted += leftoverNew[i].Size()
	}
	for j := len(leftoverNew); j < len(leftoverOld); j++ {
		deleted += leftoverOld[j].Size()
	}
	return inserted, deleted
}

func indexByKey(nodes []*tree.Node) map[string]int {
	m := make(map[string]int, len(nodes))
	for _, n := range nodes {
		m[n.Key()]++
	}
	return m
}
