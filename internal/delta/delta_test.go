package delta

import (
	"testing"

	"yat/internal/tree"
)

func entry(id string, children ...*tree.Node) (tree.Name, *tree.Node) {
	return tree.PlainName(id), tree.Sym("item", children...)
}

func storeOf(ids ...string) *tree.Store {
	s := tree.NewStore()
	for _, id := range ids {
		n, t := entry(id, tree.Sym("name", tree.Str(id)))
		s.Put(n, t)
	}
	return s
}

func TestDiffClassifiesEntries(t *testing.T) {
	old := storeOf("a", "b", "c")
	new := storeOf("b", "c", "d")
	// Rewrite c in place.
	n, rewritten := entry("c", tree.Sym("name", tree.Str("c2")))
	new.Put(n, rewritten)

	d := Diff(old, new)
	if len(d.Inserted) != 1 || d.Inserted[0].Name.Key() != tree.PlainName("d").Key() {
		t.Errorf("Inserted = %+v, want [d]", d.Inserted)
	}
	if len(d.Deleted) != 1 || d.Deleted[0].Name.Key() != tree.PlainName("a").Key() {
		t.Errorf("Deleted = %+v, want [a]", d.Deleted)
	}
	if len(d.Changed) != 1 || d.Changed[0].Name.Key() != tree.PlainName("c").Key() {
		t.Errorf("Changed = %+v, want [c]", d.Changed)
	}
	if d.Empty() || d.InsertOnly() {
		t.Errorf("Empty=%v InsertOnly=%v, want false/false", d.Empty(), d.InsertOnly())
	}
}

func TestDiffEmptyAndInsertOnly(t *testing.T) {
	s := storeOf("a", "b")
	if d := Diff(s, s.Clone()); !d.Empty() || !d.InsertOnly() {
		t.Errorf("identical stores: Empty=%v InsertOnly=%v", d.Empty(), d.InsertOnly())
	}
	d := Diff(storeOf("a"), storeOf("a", "b"))
	if d.Empty() || !d.InsertOnly() || len(d.Inserted) != 1 {
		t.Errorf("pure insert: %+v", d)
	}
	// Nil stores are empty stores.
	if d := Diff(nil, storeOf("a")); len(d.Inserted) != 1 {
		t.Errorf("nil old: %+v", d)
	}
	if d := Diff(storeOf("a"), nil); len(d.Deleted) != 1 {
		t.Errorf("nil new: %+v", d)
	}
	if d := Diff(nil, nil); !d.Empty() {
		t.Errorf("nil/nil: %+v", d)
	}
}

// Inserted and Changed follow the new store's entry order, Deleted the
// old store's — the order the delta evaluation mode seeds from.
func TestDiffPreservesStoreOrder(t *testing.T) {
	old := storeOf("x", "y")
	new := storeOf("m", "x", "y", "k")
	d := Diff(old, new)
	if len(d.Inserted) != 2 ||
		d.Inserted[0].Name.Key() != tree.PlainName("m").Key() ||
		d.Inserted[1].Name.Key() != tree.PlainName("k").Key() {
		t.Errorf("Inserted order = %+v, want [m k] (new-store order)", d.Inserted)
	}
	d = Diff(new, old)
	if len(d.Deleted) != 2 ||
		d.Deleted[0].Name.Key() != tree.PlainName("m").Key() ||
		d.Deleted[1].Name.Key() != tree.PlainName("k").Key() {
		t.Errorf("Deleted order = %+v, want [m k] (old-store order)", d.Deleted)
	}
}

func TestDiffNodes(t *testing.T) {
	leafA := tree.Sym("name", tree.Str("a"))
	leafB := tree.Sym("name", tree.Str("b"))
	leafC := tree.Sym("city", tree.Str("c"))

	// Different root labels: both sides count whole.
	_, oldT := entry("x", leafA)
	other := tree.Sym("row", leafA.Clone())
	ins, del := DiffNodes(oldT, other)
	if ins != other.Size() || del != oldT.Size() {
		t.Errorf("label mismatch: ins=%d del=%d, want %d/%d", ins, del, other.Size(), oldT.Size())
	}

	// Same label, one child replaced: only the divergent subtrees count.
	_, t1 := entry("x", leafA, leafC)
	_, t2 := entry("x", leafB, leafC)
	ins, del = DiffNodes(t1, t2)
	if ins >= t2.Size() || del >= t1.Size() || ins == 0 || del == 0 {
		t.Errorf("partial change: ins=%d del=%d, want partial counts", ins, del)
	}

	// Reordered children cancel completely.
	_, r1 := entry("x", leafA, leafC)
	_, r2 := entry("x", leafC.Clone(), leafA.Clone())
	if ins, del = DiffNodes(r1, r2); ins != 0 || del != 0 {
		t.Errorf("reorder: ins=%d del=%d, want 0/0", ins, del)
	}

	// Nil sides count whole.
	if ins, del = DiffNodes(nil, leafA); ins != leafA.Size() || del != 0 {
		t.Errorf("nil old: %d/%d", ins, del)
	}
	if ins, del = DiffNodes(leafA, nil); ins != 0 || del != leafA.Size() {
		t.Errorf("nil new: %d/%d", ins, del)
	}
}

func TestNodes(t *testing.T) {
	d := Diff(storeOf("a"), storeOf("b"))
	ins, del := d.Nodes()
	if ins == 0 || del == 0 {
		t.Errorf("Nodes() = %d/%d, want both positive (one insert, one delete)", ins, del)
	}
	if d := Diff(storeOf("a"), storeOf("a")); func() bool { i, dd := d.Nodes(); return i != 0 || dd != 0 }() {
		t.Error("identical stores must report zero changed nodes")
	}
}
