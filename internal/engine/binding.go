package engine

import (
	"sort"
	"strings"

	"yat/internal/tree"
)

// Binding maps variable names to the values they were bound to during
// pattern matching. Values are atoms and symbols for data variables,
// tree.Ref for pattern variables bound to named inputs, and
// tree.TreeVal for pattern variables bound to anonymous subtrees.
type Binding map[string]tree.Value

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Merge combines two bindings; shared variables must agree ("the SN
// variable is used in both body patterns to indicate that the
// supplier name ... should be the same", §3.2). The boolean reports
// whether the merge is consistent.
func (b Binding) Merge(other Binding) (Binding, bool) {
	out := b.Clone()
	for k, v := range other {
		if prev, ok := out[k]; ok {
			if !prev.Equal(v) {
				return nil, false
			}
			continue
		}
		out[k] = v
	}
	return out, true
}

// Project returns the canonical key of the binding restricted to the
// given variables. Unbound variables contribute a distinguished
// missing marker.
func (b Binding) Project(vars []string) string {
	var sb strings.Builder
	for _, v := range vars {
		val, ok := b[v]
		if !ok {
			sb.WriteString("·∅;")
			continue
		}
		sb.WriteString(val.Kind().String())
		sb.WriteByte(':')
		sb.WriteString(displayKey(val))
		sb.WriteByte(';')
	}
	return sb.String()
}

// displayKey returns an injective string for the value (trees use the
// canonical Key encoding rather than the display form).
func displayKey(v tree.Value) string {
	if tv, ok := v.(tree.TreeVal); ok {
		return tv.Root.Key()
	}
	return v.Display()
}

// Key returns a canonical key over all variables of the binding.
func (b Binding) Key() string {
	vars := make([]string, 0, len(b))
	for v := range b {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var sb strings.Builder
	for _, v := range vars {
		sb.WriteString(v)
		sb.WriteByte('=')
		sb.WriteString(displayKey(b[v]))
		sb.WriteByte(';')
	}
	return sb.String()
}

// String renders the binding deterministically, for diagnostics.
func (b Binding) String() string {
	vars := make([]string, 0, len(b))
	for v := range b {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = v + "=" + b[v].Display()
	}
	return "[" + strings.Join(parts, "; ") + "]"
}

// product merges every pair from as × bs, keeping consistent merges.
func product(as, bs []Binding) []Binding {
	if len(as) == 0 || len(bs) == 0 {
		return nil
	}
	out := make([]Binding, 0, len(as))
	for _, a := range as {
		for _, b := range bs {
			if m, ok := a.Merge(b); ok {
				out = append(out, m)
			}
		}
	}
	return out
}

// sharedVars returns the variables that occur in bindings of both
// sides (computed from representative elements — all bindings of one
// match list bind the same variables).
func sharedVars(as, bs []Binding) []string {
	if len(as) == 0 || len(bs) == 0 {
		return nil
	}
	var out []string
	for v := range as[0] {
		if _, ok := bs[0][v]; ok {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// HashJoinForBench and ProductForBench expose the two join strategies
// to the ablation benchmarks (BenchmarkJoinStrategies).
func HashJoinForBench(as, bs []Binding) []Binding { return hashJoin(as, bs) }

// ProductForBench is the naive nested-loop join.
func ProductForBench(as, bs []Binding) []Binding { return product(as, bs) }

// hashJoin merges two binding lists on their shared variables. With
// no shared variables it degrades to the Cartesian product. This is
// the join used for multi-pattern rule bodies (Rule 3's heterogeneous
// join, experiment E5).
func hashJoin(as, bs []Binding) []Binding {
	shared := sharedVars(as, bs)
	if len(shared) == 0 {
		return product(as, bs)
	}
	index := make(map[string][]Binding, len(bs))
	for _, b := range bs {
		k := b.Project(shared)
		index[k] = append(index[k], b)
	}
	var out []Binding
	for _, a := range as {
		for _, b := range index[a.Project(shared)] {
			if m, ok := a.Merge(b); ok {
				out = append(out, m)
			}
		}
	}
	return out
}
