package engine

import (
	"fmt"
	"sort"

	"yat/internal/pattern"
	"yat/internal/tree"
)

// derefVal is the internal label of a placeholder node standing for a
// dereferenced Skolem (^P(args) in a head). The final dereferencing
// pass (§3.1: "dereferenciation is handled at the end of rules
// processing") replaces these with the named value.
type derefVal struct {
	Name tree.Name
}

func (derefVal) Kind() tree.Kind { return tree.KindRef }

func (d derefVal) Display() string { return "^" + d.Name.String() }

func (d derefVal) Equal(v tree.Value) bool {
	o, ok := v.(derefVal)
	return ok && o.Name.Equal(d.Name)
}

// NonDetError reports the non-determinism the paper warns about at
// run time: the same Skolem identity was associated with two distinct
// values (§3.1: "we accept potentially non-deterministic programs and
// alert the user at run time when the same pattern name is associated
// to two distinct values").
type NonDetError struct {
	Rule string
	OID  tree.Name
	Why  string
}

func (e *NonDetError) Error() string {
	return fmt.Sprintf("engine: non-deterministic program: rule %s, output %s: %s", e.Rule, e.OID, e.Why)
}

// skolemHook receives every Skolem identity minted while a head tree
// is constructed, so the engine can register demands (deref targets
// must exist) and activate subtree arguments for recursive programs.
type skolemHook func(oid tree.Name, deref bool)

// constructor builds output trees from a head pattern and a group of
// bindings that share the head's Skolem identity.
type constructor struct {
	rule string
	oid  tree.Name
	hook skolemHook
}

// construct builds the output tree for one Skolem group. The group
// must be non-empty.
func (c *constructor) construct(pt *pattern.PTree, group []Binding) (*tree.Node, error) {
	switch label := pt.Label.(type) {
	case pattern.Const:
		n := tree.New(label.Value)
		return c.addEdges(n, pt.Edges, group)

	case pattern.Var:
		val, err := c.consistentValue(group, label.Name)
		if err != nil {
			return nil, err
		}
		switch v := val.(type) {
		case tree.TreeVal:
			if len(pt.Edges) > 0 {
				return nil, &NonDetError{Rule: c.rule, OID: c.oid,
					Why: fmt.Sprintf("variable %s holds a subtree but labels an inner node", label.Name)}
			}
			return v.Root.Clone(), nil
		default:
			n := tree.New(val)
			return c.addEdges(n, pt.Edges, group)
		}

	case pattern.PatRef:
		oid, err := c.evalSkolem(label, group)
		if err != nil {
			return nil, err
		}
		if len(pt.Edges) > 0 {
			return nil, fmt.Errorf("engine: rule %s: pattern reference %s cannot have children in a head", c.rule, label.Display())
		}
		c.hook(oid, !label.Ref)
		if label.Ref {
			return tree.RefLeaf(oid), nil
		}
		return tree.New(derefVal{Name: oid}), nil
	}
	return nil, fmt.Errorf("engine: rule %s: unknown head label", c.rule)
}

// consistentValue returns the value of a variable, checking that the
// whole group agrees (a disagreement outside a grouping edge is the
// run-time non-determinism alert).
func (c *constructor) consistentValue(group []Binding, name string) (tree.Value, error) {
	val, ok := group[0][name]
	if !ok {
		return nil, fmt.Errorf("engine: rule %s: head variable %s is unbound", c.rule, name)
	}
	for _, b := range group[1:] {
		other, ok := b[name]
		if !ok || !other.Equal(val) {
			return nil, &NonDetError{Rule: c.rule, OID: c.oid,
				Why: fmt.Sprintf("variable %s takes distinct values %s and %s", name, val.Display(), other.Display())}
		}
	}
	return val, nil
}

// evalSkolem computes the Skolem identity of a pattern reference for
// the group (arguments must be consistent across the group).
func (c *constructor) evalSkolem(ref pattern.PatRef, group []Binding) (tree.Name, error) {
	args := make([]tree.Value, len(ref.Args))
	for i, a := range ref.Args {
		if !a.IsVar {
			args[i] = a.Const
			continue
		}
		v, err := c.consistentValue(group, a.Var)
		if err != nil {
			return tree.Name{}, err
		}
		args[i] = v
	}
	if len(args) == 0 {
		return tree.PlainName(ref.Name), nil
	}
	return tree.SkolemName(ref.Name, args...), nil
}

// addEdges constructs the children of a node according to the
// occurrence indicators (§3.1, §3.3):
//
//   - One: a single child; the whole group must agree on its value.
//   - Star: implicit grouping, duplicates kept, input order — one
//     child per binding.
//   - Group ({}): grouping with duplicate elimination, one child per
//     distinct projection of the variables under the edge.
//   - Ordered ([]crit): grouping + ordering — one child per distinct
//     projection, sorted by the criteria values.
//   - Index (#I): one child per distinct index value, sorted
//     numerically — array construction (Rule 5).
func (c *constructor) addEdges(n *tree.Node, edges []pattern.Edge, group []Binding) (*tree.Node, error) {
	for _, e := range edges {
		switch e.Occ {
		case pattern.OccOne:
			child, err := c.construct(e.To, group)
			if err != nil {
				return nil, err
			}
			n.Add(child)

		case pattern.OccStar:
			for _, b := range group {
				child, err := c.construct(e.To, []Binding{b})
				if err != nil {
					return nil, err
				}
				n.Add(child)
			}

		case pattern.OccGroup:
			subgroups := partition(group, shallowVars(e.To))
			for _, sg := range subgroups {
				child, err := c.construct(e.To, sg.bindings)
				if err != nil {
					return nil, err
				}
				n.Add(child)
			}

		case pattern.OccOrdered:
			vars := append(append([]string(nil), e.OrderBy...), shallowVars(e.To)...)
			subgroups := partition(group, vars)
			sort.SliceStable(subgroups, func(i, j int) bool {
				return lessByCriteria(subgroups[i].bindings[0], subgroups[j].bindings[0], e.OrderBy)
			})
			for _, sg := range subgroups {
				child, err := c.construct(e.To, sg.bindings)
				if err != nil {
					return nil, err
				}
				n.Add(child)
			}

		case pattern.OccIndex:
			if e.Index == "" {
				return nil, fmt.Errorf("engine: rule %s: index edge without variable", c.rule)
			}
			subgroups := partition(group, []string{e.Index})
			sort.SliceStable(subgroups, func(i, j int) bool {
				return lessByCriteria(subgroups[i].bindings[0], subgroups[j].bindings[0], []string{e.Index})
			})
			for _, sg := range subgroups {
				child, err := c.construct(e.To, sg.bindings)
				if err != nil {
					return nil, err
				}
				n.Add(child)
			}
		}
	}
	return n, nil
}

// shallowVars collects the variables that determine a grouping edge's
// child: variables occurring in the subtree outside any nested
// collection edge. Variables appearing only below a nested grouping
// edge belong to the inner grouping (`cats -{}> cat < -> C, -{}> item
// -> N >` groups the outer level by C alone, nesting the items).
func shallowVars(t *pattern.PTree) []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	var walk func(pt *pattern.PTree)
	walk = func(pt *pattern.PTree) {
		switch l := pt.Label.(type) {
		case pattern.Var:
			add(l.Name)
		case pattern.PatRef:
			for _, a := range l.Args {
				if a.IsVar {
					add(a.Var)
				}
			}
		}
		for _, e := range pt.Edges {
			if e.Occ != pattern.OccOne {
				continue // nested collection: its vars group inside
			}
			walk(e.To)
		}
	}
	walk(t)
	return out
}

type subgroup struct {
	key      string
	bindings []Binding
}

// partition splits the group by the projection onto vars, preserving
// first-occurrence order.
func partition(group []Binding, vars []string) []subgroup {
	index := map[string]int{}
	var out []subgroup
	for _, b := range group {
		k := b.Project(vars)
		if i, ok := index[k]; ok {
			out[i].bindings = append(out[i].bindings, b)
			continue
		}
		index[k] = len(out)
		out = append(out, subgroup{key: k, bindings: []Binding{b}})
	}
	return out
}

// lessByCriteria orders two bindings by the values of the criteria
// variables (missing values sort first).
func lessByCriteria(a, b Binding, crit []string) bool {
	for _, v := range crit {
		av, aok := a[v]
		bv, bok := b[v]
		switch {
		case !aok && !bok:
			continue
		case !aok:
			return true
		case !bok:
			return false
		}
		if cmp := tree.Compare(av, bv); cmp != 0 {
			return cmp < 0
		}
	}
	return false
}
