package engine

import (
	"strings"
	"testing"

	"yat/internal/tree"
	"yat/internal/yatl"
)

// runRule applies a single-rule program to a store.
func runRule(t *testing.T, ruleSrc string, inputs *tree.Store) *Result {
	t.Helper()
	prog, err := yatl.Parse("program p\n" + ruleSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func storeOf(t *testing.T, src string) *tree.Store {
	t.Helper()
	s, err := tree.ParseStore(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConstructNestedGrouping(t *testing.T) {
	// Group items by category, then by color inside each category.
	src := `
rule Nest {
  head Out(X) = cats -{}> cat < -> C, -{}> item -> N >
  from X = items -*> item < -> cat -> C, -> color -> N >
}
`
	inputs := storeOf(t, `
	  i: items < item < cat < a >, color < red > >,
	             item < cat < a >, color < blue > >,
	             item < cat < b >, color < red > >,
	             item < cat < a >, color < red > > >
	`)
	res := runRule(t, src, inputs)
	out, ok := res.Outputs.Get(tree.SkolemName("Out", tree.Ref{Name: tree.PlainName("i")}))
	if !ok {
		t.Fatalf("output missing:\n%s", tree.FormatStore(res.Outputs))
	}
	want := tree.MustParse(`cats < cat < a, item < red >, item < blue > >,
	                               cat < b, item < red > > >`)
	if !out.Equal(want) {
		t.Errorf("nested grouping:\n got: %s\nwant: %s", out, want)
	}
}

func TestConstructOrderedByTwoCriteria(t *testing.T) {
	src := `
rule Sort {
  head Out(X) = sorted -[A,B]> pair < -> A, -> B >
  from X = in -*> p < -> a -> A, -> b -> B >
}
`
	inputs := storeOf(t, `
	  i: in < p < a < 2 >, b < "y" > >,
	          p < a < 1 >, b < "z" > >,
	          p < a < 2 >, b < "x" > >,
	          p < a < 1 >, b < "z" > > >
	`)
	res := runRule(t, src, inputs)
	out, _ := res.Outputs.Get(tree.SkolemName("Out", tree.Ref{Name: tree.PlainName("i")}))
	want := tree.MustParse(`sorted < pair < 1, "z" >, pair < 2, "x" >, pair < 2, "y" > >`)
	if !out.Equal(want) {
		t.Errorf("two-criteria ordering:\n got: %s\nwant: %s", out, want)
	}
}

func TestConstructIndexRoundTripsOrder(t *testing.T) {
	// An index edge in the head reassembles children in index order
	// even when bindings arrive shuffled by an intermediate grouping.
	src := `
rule Keep {
  head Out(X) = v -#I> E
  from X = v -#I> E
}
`
	inputs := storeOf(t, `i: v < "c", "a", "b" >`)
	res := runRule(t, src, inputs)
	out, _ := res.Outputs.Get(tree.SkolemName("Out", tree.Ref{Name: tree.PlainName("i")}))
	want := tree.MustParse(`v < "c", "a", "b" >`)
	if !out.Equal(want) {
		t.Errorf("index order:\n got: %s\nwant: %s", out, want)
	}
}

func TestConstructHeadConstantsOnly(t *testing.T) {
	// A head with no variables emits one constant object per Skolem
	// key.
	src := `
rule Konst {
  head Out(X) = marker -> "fixed"
  from X = anything -> V
}
`
	inputs := storeOf(t, `a: anything < 1 >
	                      b: anything < 2 >`)
	res := runRule(t, src, inputs)
	if res.Outputs.Len() != 2 {
		t.Fatalf("outputs = %d", res.Outputs.Len())
	}
	for _, e := range res.Outputs.Entries() {
		if !e.Tree.Equal(tree.MustParse(`marker < "fixed" >`)) {
			t.Errorf("constant head wrong: %s", e.Tree)
		}
	}
}

func TestConstructVarSplicesSubtree(t *testing.T) {
	// A leaf head variable bound to a subtree splices the whole
	// subtree into the output.
	src := `
rule Splice {
  head Out(X) = wrapped -> V
  from X = in -> V
}
`
	inputs := storeOf(t, `i: in < deep < nest < 1 > > >`)
	res := runRule(t, src, inputs)
	out, _ := res.Outputs.Get(tree.SkolemName("Out", tree.Ref{Name: tree.PlainName("i")}))
	want := tree.MustParse(`wrapped < deep < nest < 1 > > >`)
	if !out.Equal(want) {
		t.Errorf("splice:\n got: %s\nwant: %s", out, want)
	}
}

func TestConstructGlobalAggregation(t *testing.T) {
	// A head Skolem with no arguments aggregates across ALL inputs
	// (Skolems are global to the program).
	src := `
rule All {
  head Out = all -[N]> N
  from X = item -> N
}
`
	inputs := storeOf(t, `a: item < 3 >
	                      b: item < 1 >
	                      c: item < 2 >
	                      d: item < 1 >`)
	res := runRule(t, src, inputs)
	out, ok := res.Outputs.Get(tree.PlainName("Out"))
	if !ok {
		t.Fatalf("global output missing:\n%s", tree.FormatStore(res.Outputs))
	}
	want := tree.MustParse(`all < 1, 2, 3 >`)
	if !out.Equal(want) {
		t.Errorf("global aggregation:\n got: %s\nwant: %s", out, want)
	}
}

func TestDerefInliningChain(t *testing.T) {
	// A chain of dereferenced Skolems: Out includes Mid includes Leaf.
	src := `
rule A {
  head Leaf(N) = leafval -> N
  from X = item -> N
}
rule B {
  head Mid(N) = midval -> ^Leaf(N)
  from X = item -> N
}
rule C {
  head Out(N) = outval -> ^Mid(N)
  from X = item -> N
}
`
	inputs := storeOf(t, `a: item < 7 >`)
	res := runRule(t, src, inputs)
	out, _ := res.Outputs.Get(tree.SkolemName("Out", tree.Int(7)))
	want := tree.MustParse(`outval < midval < leafval < 7 > > >`)
	if !out.Equal(want) {
		t.Errorf("deref chain:\n got: %s\nwant: %s", out, want)
	}
	// The intermediate values are also fully expanded in place.
	mid, _ := res.Outputs.Get(tree.SkolemName("Mid", tree.Int(7)))
	if !mid.Equal(tree.MustParse(`midval < leafval < 7 > >`)) {
		t.Errorf("mid not expanded: %s", mid)
	}
}

func TestDerefMissingValueFails(t *testing.T) {
	src := `
rule Broken {
  head Out(N) = v -> ^Ghost(N)
  from X = item -> N
}
`
	prog := yatl.MustParse("program p\n" + src)
	inputs := storeOf(t, `a: item < 1 >`)
	_, err := Run(prog, inputs, nil)
	if err == nil || !strings.Contains(err.Error(), "no associated value") {
		t.Errorf("missing deref target should fail, got %v", err)
	}
}

func TestRefToMissingValueWarns(t *testing.T) {
	src := `
rule Dangling {
  head Out(N) = v -> &Ghost(N)
  from X = item -> N
}
`
	prog := yatl.MustParse("program p\n" + src)
	inputs := storeOf(t, `a: item < 1 >`)
	res, err := Run(prog, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) == 0 || !strings.Contains(res.Warnings[0], "dangling") {
		t.Errorf("expected dangling warning, got %v", res.Warnings)
	}
}

func TestMultiBodyThreeWayJoin(t *testing.T) {
	src := `
rule Three {
  head Out(K) = joined < -> A, -> B, -> C >
  from X = t1 -*> r < -> k -> K, -> v -> A >
  from Y = t2 -*> r < -> k -> K, -> v -> B >
  from Z = t3 -*> r < -> k -> K, -> v -> C >
}
`
	inputs := storeOf(t, `
	  x: t1 < r < k < 1 >, v < "a1" > >, r < k < 2 >, v < "a2" > > >
	  y: t2 < r < k < 1 >, v < "b1" > >, r < k < 3 >, v < "b3" > > >
	  z: t3 < r < k < 1 >, v < "c1" > >, r < k < 2 >, v < "c2" > > >
	`)
	res := runRule(t, src, inputs)
	// Only key 1 appears in all three tables.
	if res.Outputs.Len() != 1 {
		t.Fatalf("outputs = %d:\n%s", res.Outputs.Len(), tree.FormatStore(res.Outputs))
	}
	out, _ := res.Outputs.Get(tree.SkolemName("Out", tree.Int(1)))
	if !out.Equal(tree.MustParse(`joined < "a1", "b1", "c1" >`)) {
		t.Errorf("three-way join: %s", out)
	}
}

func TestMaxRoundsGuard(t *testing.T) {
	// A program that keeps discovering new subtree activations; the
	// guard must stop it. (Safe-recursive, so statically accepted —
	// the guard is about resource bounding, not correctness.)
	src := `
rule Base {
  head F(X) = w
  from X = n
}
rule R {
  head F(X) = w -*> ^F(Y)
  from X = n -*> Y
}
`
	prog := yatl.MustParse("program p\n" + src)
	deep := tree.Sym("n")
	cur := deep
	for i := 0; i < 30; i++ {
		next := tree.Sym("n")
		cur.Add(next)
		cur = next
	}
	inputs := tree.NewStore()
	inputs.Put(tree.PlainName("d"), deep)
	// Plenty of rounds: converges fine.
	if _, err := Run(prog, inputs, &Options{MaxRounds: 100}); err != nil {
		t.Errorf("deep recursion should converge: %v", err)
	}
	// Starved of rounds: the guard fires.
	if _, err := Run(prog, inputs, &Options{MaxRounds: 3}); err == nil ||
		!strings.Contains(err.Error(), "did not converge") {
		t.Errorf("round guard should fire, got %v", err)
	}
}

func TestUnboundHeadVariableWarns(t *testing.T) {
	// A head variable that no body pattern binds: the binding is
	// dropped with a warning (not a crash).
	src := `
rule Oops {
  head Out(N) = v -> Missing
  from X = item -> N
}
`
	prog := yatl.MustParse("program p\n" + src)
	inputs := storeOf(t, `a: item < 1 >`)
	_, err := Run(prog, inputs, nil)
	if err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Errorf("unbound head variable should error, got: %v", err)
	}
}

func TestSkolemConstArgs(t *testing.T) {
	src := `
rule K {
  head Out("fixed", N) = v -> N
  from X = item -> N
}
`
	inputs := storeOf(t, `a: item < 5 >`)
	res := runRule(t, src, inputs)
	oid := tree.SkolemName("Out", tree.String("fixed"), tree.Int(5))
	if _, ok := res.Outputs.Get(oid); !ok {
		t.Errorf("constant Skolem arg lost:\n%s", tree.FormatStore(res.Outputs))
	}
}

func TestWarningOnRaisedLet(t *testing.T) {
	src := `
rule R {
  head Out(N) = v -> M
  from X = item -> N
  let M = raise(N)
}
`
	prog := yatl.MustParse("program p\n" + src)
	inputs := storeOf(t, `a: item < 1 >`)
	if _, err := Run(prog, inputs, nil); err == nil ||
		!strings.Contains(err.Error(), "exception raised") {
		t.Errorf("raise in let should abort the run, got %v", err)
	}
}

func TestPredicateCrossKindNumericEquality(t *testing.T) {
	// Int 1 == Float 1.0 in predicates (regression: Compare
	// tie-breaks equal numerics by kind for sort determinism, which
	// must not leak into equality).
	src := `
rule Eq {
  head Out(X) = matched -> V
  from X = in < -> a -> V, -> b -> W >
  where V == W
}
`
	inputs := storeOf(t, `
	  same: in < a < 1 >, b < 1.0 > >
	  diff: in < a < 1 >, b < 2.0 > >
	`)
	res := runRule(t, src, inputs)
	if res.Outputs.Len() != 1 {
		t.Fatalf("outputs = %d, want 1:\n%s", res.Outputs.Len(), tree.FormatStore(res.Outputs))
	}
	if _, ok := res.Outputs.Get(tree.SkolemName("Out", tree.Ref{Name: tree.PlainName("same")})); !ok {
		t.Error("Int 1 should equal Float 1.0 in a predicate")
	}
}
