package engine

import (
	"strings"
	"testing"

	"yat/internal/pattern"
	"yat/internal/tree"
	"yat/internal/yatl"
)

func TestBindingString(t *testing.T) {
	b := Binding{"Z": tree.Int(1), "A": tree.String("x")}
	if got := b.String(); got != `[A="x"; Z=1]` {
		t.Errorf("Binding.String = %q", got)
	}
}

func TestDerefValLabel(t *testing.T) {
	d := derefVal{Name: tree.SkolemName("F", tree.Int(1))}
	if d.Kind() != tree.KindRef {
		t.Error("derefVal kind")
	}
	if d.Display() != "^F(1)" {
		t.Errorf("derefVal display = %q", d.Display())
	}
	if !d.Equal(derefVal{Name: tree.SkolemName("F", tree.Int(1))}) {
		t.Error("derefVal equality")
	}
	if d.Equal(tree.Symbol("F")) {
		t.Error("derefVal equals symbol")
	}
}

func TestErrUnconvertedMessage(t *testing.T) {
	err := &ErrUnconverted{IDs: []tree.Value{tree.Ref{Name: tree.PlainName("x")}, tree.String("y")}}
	msg := err.Error()
	if !strings.Contains(msg, "&x") || !strings.Contains(msg, `"y"`) {
		t.Errorf("message = %q", msg)
	}
}

func TestBuildHierarchyExported(t *testing.T) {
	prog := yatl.MustParse(yatl.WebProgramSource)
	model, _ := prog.Model("ODMG")
	h := BuildHierarchy(prog, model)
	if len(h.FunctorOrder) != 2 {
		t.Errorf("functors = %v", h.FunctorOrder)
	}
	if len(h.Conflicts) != 4 {
		t.Errorf("conflicts = %v", h.Conflicts)
	}
	if len(h.Exceptions) != 0 {
		t.Errorf("exceptions = %d", len(h.Exceptions))
	}
	withExc := yatl.MustParse(yatl.SGMLToODMGSource + yatl.ExceptionRuleSource)
	if h2 := BuildHierarchy(withExc, nil); len(h2.Exceptions) != 1 {
		t.Errorf("exception rule not surfaced")
	}
}

func TestJoinBenchHooks(t *testing.T) {
	as := []Binding{{"K": tree.Int(1)}}
	bs := []Binding{{"K": tree.Int(1), "V": tree.Int(2)}}
	if got := HashJoinForBench(as, bs); len(got) != 1 {
		t.Errorf("hash join = %v", got)
	}
	if got := ProductForBench(as, bs); len(got) != 1 {
		t.Errorf("product = %v", got)
	}
}

func TestMatchBodyPatternDomainCheck(t *testing.T) {
	// A body pattern with a : Domain annotation filters inputs that
	// do not conform to the named pattern.
	src := `
program p
model M {
  Pbr = brochure < -> number -> Num, -> title -> T >
}
rule R {
  head Out(X) = got -> T
  from X : Pbr = brochure < -> number -> Num, -> title -> T >
}
`
	prog := yatl.MustParse(src)
	inputs := storeOf(t, `
	  good: brochure < number < 1 >, title < "Golf" > >
	  bad:  brochure < number < 1 >, title < "Golf" >, extra < 1 > >
	`)
	res, err := Run(prog, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs.Len() != 1 {
		t.Fatalf("outputs = %d, want 1 (domain check should reject `bad`):\n%s",
			res.Outputs.Len(), tree.FormatStore(res.Outputs))
	}
}

func TestConformsRefDuringMatch(t *testing.T) {
	// &P in a body checks the referenced tree against the model
	// pattern when one is declared.
	store := pattern.GolfStore()
	m := &Matcher{Store: store, Model: pattern.CarSchemaModel()}
	c1, _ := store.Get(tree.PlainName("c1"))
	if !m.Matches(pat(t, `class -> car < -> name -> N, -> desc -> D,
		-> suppliers -> set -*> &Psup >`), c1) {
		t.Error("conforming refs rejected")
	}
	// Break a referenced supplier: zip becomes a deep tree.
	broken := store.Clone()
	s1, _ := broken.Get(tree.PlainName("s1"))
	s1.Children[0].Children[2].Children[0] = tree.Sym("weird", tree.Sym("deep"))
	mb := &Matcher{Store: broken, Model: pattern.CarSchemaModel()}
	bc1, _ := broken.Get(tree.PlainName("c1"))
	if mb.Matches(pat(t, `class -> car < -> name -> N, -> desc -> D,
		-> suppliers -> set -*> &Psup >`), bc1) {
		t.Error("non-conforming reference target accepted")
	}
	// A dangling reference fails the check too.
	broken2 := store.Clone()
	broken2.Delete(tree.PlainName("s2"))
	mb2 := &Matcher{Store: broken2, Model: pattern.CarSchemaModel()}
	bc2, _ := broken2.Get(tree.PlainName("c1"))
	if mb2.Matches(pat(t, `class -> car < -> name -> N, -> desc -> D,
		-> suppliers -> set -*> &Psup >`), bc2) {
		t.Error("dangling reference accepted under typed matching")
	}
}

func TestEvalPredCallForms(t *testing.T) {
	// Boolean predicate call with an unbound variable drops the
	// binding; with a failing function it warns and drops.
	src := `
program p
rule R {
  head Out(X) = ok
  from X = in < -> a -> A, -> c -> C >
  where sameaddress(A, C, A)
}
`
	prog := yatl.MustParse(src)
	inputs := storeOf(t, `
	  hit:  in < a < "Bd Lenoir, 75005 Paris" >, c < "Paris" > >
	  miss: in < a < "Bd Lenoir, 75005 Paris" >, c < "Lyon" > >
	  typo: in < a < 42 >, c < "Paris" > >
	`)
	res, err := Run(prog, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs.Len() != 1 {
		t.Fatalf("outputs = %d, want 1:\n%s", res.Outputs.Len(), tree.FormatStore(res.Outputs))
	}
	if _, ok := res.Outputs.Get(tree.SkolemName("Out", tree.Ref{Name: tree.PlainName("hit")})); !ok {
		t.Error("matching address should pass the call predicate")
	}
}

func TestComparisonOperatorsAtRuntime(t *testing.T) {
	src := `
program p
rule R {
  head Out(X) = kept -> V
  from X = in -> V
  where V >= 10
  where V <= 20
  where V != 15
  where V < 100
  where V == V
}
`
	prog := yatl.MustParse(src)
	inputs := storeOf(t, `
	  a: in < 12 >
	  b: in < 15 >
	  c: in < 25 >
	  d: in < 5 >
	`)
	res, err := Run(prog, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs.Len() != 1 {
		t.Fatalf("outputs = %d, want 1 (only 12 passes all filters)", res.Outputs.Len())
	}
}

func TestThreeLevelHierarchyChain(t *testing.T) {
	// specific ⊑ mid ⊑ general: the most specific match blocks both
	// ancestors.
	src := `
program p
rule General {
  head F(X) = general
  from X = Data
}
rule Mid {
  head F(X) = mid
  from X = node -*> Y
}
rule Specific {
  head F(X) = specific
  from X = node < -> special -> V >
}
`
	prog := yatl.MustParse(src)
	inputs := storeOf(t, `
	  s: node < special < 1 > >
	  m: node < other < 1 > >
	  g: leaf
	`)
	res, err := Run(prog, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"s": "specific", "m": "mid", "g": "general"}
	for input, label := range want {
		out, ok := res.Outputs.Get(tree.SkolemName("F", tree.Ref{Name: tree.PlainName(input)}))
		if !ok {
			t.Fatalf("F(&%s) missing:\n%s", input, tree.FormatStore(res.Outputs))
		}
		if !out.Label.Equal(tree.Symbol(label)) {
			t.Errorf("F(&%s) = %s, want %s", input, out, label)
		}
	}
}

func TestLessByCriteriaMissingValues(t *testing.T) {
	a := Binding{"K": tree.Int(1)}
	b := Binding{}
	if !lessByCriteria(b, a, []string{"K"}) {
		t.Error("missing value should sort first")
	}
	if lessByCriteria(a, b, []string{"K"}) {
		t.Error("present value should sort after missing")
	}
	if lessByCriteria(a, a, []string{"K"}) {
		t.Error("equal bindings are not less")
	}
	if lessByCriteria(b, b, []string{"K"}) {
		t.Error("both missing are not less")
	}
}

func TestCallBoolNonBooleanResult(t *testing.T) {
	r := NewRegistry()
	if _, _, err := r.CallBool("city", []tree.Value{tree.String("Rue A, 75001 Paris")}); err == nil {
		t.Error("non-boolean predicate result should error")
	}
}

func TestRuntimeOutputChecker(t *testing.T) {
	// With CheckOutputs set, outputs are validated against the
	// declared model at run time (§5.1's on-demand type checker).
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	inputs := storeOf(t, `
	  b1: brochure < number < 1 >, title < "Golf" >, model < 1995 >, desc < "d" >,
	                 spplrs < supplier < name < "VW" >, address < "Rue A, 75001 Paris" > > > >
	`)
	// Against the ODMG model every output conforms: no warnings.
	res, err := Run(prog, inputs, &Options{CheckOutputs: pattern.ODMGModel()})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Warnings {
		if strings.Contains(w, "conforms to no pattern") {
			t.Errorf("unexpected conformance warning: %s", w)
		}
	}
	// Against the Car Schema, the int zip makes Psup outputs
	// non-conforming (the paper's S3 : string): warnings appear.
	res, err = Run(prog, inputs, &Options{CheckOutputs: pattern.CarSchemaModel()})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "conforms to no pattern") && strings.Contains(w, "Psup") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected conformance warning for int zip, got %v", res.Warnings)
	}
}
