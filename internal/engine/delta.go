// Delta-evaluation support: the engine half of incremental view
// maintenance. A source refresh diffs the old and new input stores
// (internal/delta); the mediator then needs two things from the
// engine: a cheap, sound over-approximation of which rules an entry
// can feed (AffectedRules, reusing the PR-7 dispatch index), and a way
// to run a slice whose activation fixpoint is seeded from the delta
// entries alone (WithDeltaSeeds).
//
// Soundness of the insert-only patch the mediator builds on top:
// with a delta-seeded run over the slice of the affected groups,
// every binding chain the run derives descends from a delta entry —
// the fixpoint has no other roots. If additionally (a) the delta is
// insert-only, (b) no slice rule joins multiple body patterns, (c) no
// construct head dereferences a Skolem (^P), and (d) no rule is an
// exception rule, then the run's outputs relate to the full re-run's
// as a pure append: a full run's activation order processes the old
// entries first and the appended delta entries after, old-rooted
// bindings reproduce exactly the cached outputs (the engine is
// deterministic), and delta-rooted bindings group under Skolem OIDs
// that either collide with a cached OID (detected and rejected by the
// mediator — fallback) or are new, in the delta run's own order.
// Deletions and in-place changes are never patched: removing an entry
// can unblock a less-specific rule (§4.2 blocking) — non-monotone.
package engine

import (
	"yat/internal/tree"
	"yat/internal/yatl"
)

// WithDeltaSeeds switches a run to delta-evaluation mode: activations
// are seeded from these entries instead of the full input store. The
// caller owns the soundness argument (see the package comment above);
// the engine just runs the smaller fixpoint.
func WithDeltaSeeds(seeds *tree.Store) Option {
	return optionFunc(func(o *Options) { o.DeltaSeeds = seeds })
}

// AffectedRules returns the names of the non-exception rules at least
// one of the given entries can feed: a sound over-approximation (a
// rule whose bindings could change is always included; a rule that
// merely pattern-matches an entry it would later drop may be too).
// Candidates come from the dispatch index when valid facts are
// supplied — one bitset probe per entry instead of a program scan —
// and are confirmed by a storeless body-pattern match, which is
// exactly the conformance-free upper bound of the engine's own match
// phase.
func AffectedRules(prog *yatl.Program, facts *ProgramFacts, entries []tree.StoreEntry) map[string]bool {
	affected := map[string]bool{}
	if len(entries) == 0 {
		return affected
	}
	if facts != nil && !facts.For(prog) {
		facts = nil
	}
	m := &Matcher{}
	for _, e := range entries {
		var admissible *RuleSet
		if facts != nil && facts.Dispatch != nil {
			admissible = facts.Dispatch.Lookup(e.Tree)
		}
		for _, r := range prog.Rules {
			if r.Exception || affected[r.Name] {
				continue
			}
			if admissible != nil {
				if idx, ok := facts.RuleIndex[r.Name]; ok && !admissible.Has(idx) {
					continue
				}
			}
			for _, bp := range r.Body {
				if len(m.MatchTree(bp.Tree, e.Tree)) > 0 {
					affected[r.Name] = true
					break
				}
			}
		}
	}
	return affected
}
