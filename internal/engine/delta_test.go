package engine

import (
	"context"
	"testing"

	"yat/internal/tree"
	"yat/internal/yatl"
)

const deltaTwoRuleProgram = `
program twosrc

rule Alpha {
  head Pa(N) = item < -> name -> N >
  from A = alpha < -> name -> N >
}

rule Beta {
  head Pb(N) = item < -> name -> N >
  from B = beta < -> name -> N >
}
`

func deltaEntry(id, functor, name string) tree.StoreEntry {
	return tree.StoreEntry{
		Name: tree.PlainName(id),
		Tree: tree.Sym(functor, tree.Sym("name", tree.Str(name))),
	}
}

// AffectedRules routes each entry through the dispatch index and
// confirms with a real match: alpha trees feed Alpha only, beta trees
// Beta only, and an unmatched tree feeds nothing.
func TestAffectedRules(t *testing.T) {
	prog := yatl.MustParse(deltaTwoRuleProgram)
	facts := AnalyzeProgram(prog)
	cases := []struct {
		name    string
		entries []tree.StoreEntry
		want    []string
	}{
		{"alpha", []tree.StoreEntry{deltaEntry("a1", "alpha", "ant")}, []string{"Alpha"}},
		{"beta", []tree.StoreEntry{deltaEntry("b1", "beta", "bee")}, []string{"Beta"}},
		{"both", []tree.StoreEntry{deltaEntry("a1", "alpha", "ant"), deltaEntry("b1", "beta", "bee")}, []string{"Alpha", "Beta"}},
		{"unmatched", []tree.StoreEntry{deltaEntry("g1", "gamma", "gnu")}, nil},
		{"none", nil, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := AffectedRules(prog, facts, c.entries)
			if len(got) != len(c.want) {
				t.Fatalf("affected = %v, want %v", got, c.want)
			}
			for _, r := range c.want {
				if !got[r] {
					t.Errorf("affected = %v, missing %s", got, r)
				}
			}
		})
	}
}

// Exception rules match everything by design; AffectedRules must skip
// them rather than reporting every delta as affecting them.
func TestAffectedRulesSkipsExceptions(t *testing.T) {
	prog := yatl.MustParse(deltaTwoRuleProgram + yatl.ExceptionRuleSource)
	facts := AnalyzeProgram(prog)
	got := AffectedRules(prog, facts, []tree.StoreEntry{deltaEntry("a1", "alpha", "ant")})
	if got["Exception"] {
		t.Errorf("affected = %v, exception rules must be excluded", got)
	}
	if !got["Alpha"] || len(got) != 1 {
		t.Errorf("affected = %v, want exactly {Alpha}", got)
	}
}

// Delta-evaluation mode seeds the fixpoint from the delta entries only:
// the run derives exactly the delta-rooted outputs while the matcher
// still sees the full input store.
func TestRunSliceWithDeltaSeeds(t *testing.T) {
	prog := yatl.MustParse(deltaTwoRuleProgram)
	inputs := tree.NewStore()
	for _, e := range []tree.StoreEntry{
		deltaEntry("a1", "alpha", "ant"),
		deltaEntry("a2", "alpha", "asp"),
		deltaEntry("b1", "beta", "bee"),
	} {
		inputs.Put(e.Name, e.Tree)
	}
	sl := ComputeSlice(prog, "Pa")

	full, err := RunSlice(context.Background(), prog, inputs, sl)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(full.RuleOutputs["Alpha"]); n != 2 {
		t.Fatalf("full slice run: %d Alpha outputs, want 2", n)
	}

	seeds := tree.NewStore()
	e := deltaEntry("a2", "alpha", "asp")
	seeds.Put(e.Name, e.Tree)
	res, err := RunSlice(context.Background(), prog, inputs, sl, WithDeltaSeeds(seeds))
	if err != nil {
		t.Fatal(err)
	}
	got := res.RuleOutputs["Alpha"]
	if len(got) != 1 {
		t.Fatalf("delta run: %d Alpha outputs, want only the seeded entry's", len(got))
	}
	// The delta output is byte-identical to the corresponding full one.
	found := false
	for _, fe := range full.RuleOutputs["Alpha"] {
		if fe.Name.Key() == got[0].Name.Key() && fe.Tree.Equal(got[0].Tree) {
			found = true
		}
	}
	if !found {
		t.Errorf("delta output %s not among the full run's outputs", got[0].Name)
	}

	// An empty seed store derives nothing.
	res, err = RunSlice(context.Background(), prog, inputs, sl, WithDeltaSeeds(tree.NewStore()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RuleOutputs["Alpha"]) != 0 {
		t.Errorf("empty seeds produced %d outputs, want 0", len(res.RuleOutputs["Alpha"]))
	}
}
