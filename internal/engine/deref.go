package engine

import (
	"fmt"

	"yat/internal/tree"
)

// expandDerefs performs the end-of-run dereferencing pass (§3.1:
// "dereferenciation is handled at the end of rules processing"):
// every placeholder node left by a ^P(args) head leaf is replaced by
// the value bound to that Skolem identity. A Skolem that was
// dereferenced but never defined is an error ("it requires that the
// value associated to s1 exists"), as is a dynamic cycle — the
// static safety check rules out the latter for accepted programs, but
// the guard is kept as defence in depth.
func expandDerefs(outputs *tree.Store) error {
	e := &derefExpander{outputs: outputs, state: map[string]uint8{}}
	for _, entry := range outputs.Entries() {
		expanded, err := e.expandOID(entry.Name)
		if err != nil {
			return err
		}
		outputs.Put(entry.Name, expanded)
	}
	return nil
}

const (
	derefInProgress uint8 = 1
	derefDone       uint8 = 2
)

type derefExpander struct {
	outputs *tree.Store
	state   map[string]uint8
}

func (e *derefExpander) expandOID(name tree.Name) (*tree.Node, error) {
	key := name.Key()
	switch e.state[key] {
	case derefInProgress:
		return nil, fmt.Errorf("engine: cyclic dereferencing through %s at run time", name)
	case derefDone:
		n, _ := e.outputs.Get(name)
		return n, nil
	}
	n, ok := e.outputs.Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: dereferenced Skolem %s has no associated value", name)
	}
	e.state[key] = derefInProgress
	expanded, err := e.expandNode(n)
	if err != nil {
		return nil, err
	}
	e.outputs.Put(name, expanded)
	e.state[key] = derefDone
	return expanded, nil
}

func (e *derefExpander) expandNode(n *tree.Node) (*tree.Node, error) {
	if d, ok := n.Label.(derefVal); ok {
		target, err := e.expandOID(d.Name)
		if err != nil {
			return nil, err
		}
		// Clone: the value may be inlined at several places.
		return target.Clone(), nil
	}
	for i, c := range n.Children {
		expanded, err := e.expandNode(c)
		if err != nil {
			return nil, err
		}
		n.Children[i] = expanded
	}
	return n, nil
}

// danglingRefs returns the Skolem-minted references in outputs that
// resolve neither in outputs nor in inputs. Plain (non-Skolem) names
// are assumed to refer to source data and are checked against the
// input store only.
func danglingRefs(outputs, inputs *tree.Store) []tree.Name {
	seen := map[string]bool{}
	var out []tree.Name
	for _, entry := range outputs.Entries() {
		entry.Tree.Walk(func(n *tree.Node) bool {
			name, ok := n.RefName()
			if !ok {
				return true
			}
			if outputs.Has(name) || (inputs != nil && inputs.Has(name)) {
				return true
			}
			if key := name.Key(); !seen[key] {
				seen[key] = true
				out = append(out, name)
			}
			return true
		})
	}
	return out
}
