package engine

import (
	"errors"
	"testing"

	"yat/internal/tree"
	"yat/internal/yatl"
)

// TestUnconvertedDeterministicAcrossParallelism pins the §3.5
// exception report: the same inputs must yield the same
// ErrUnconverted message — and the same Result.Unconverted order — at
// every Parallelism setting. The stray inputs are chosen so that
// insertion order, lexical order and kind order all disagree.
func TestUnconvertedDeterministicAcrossParallelism(t *testing.T) {
	prog := yatl.MustParse(yatl.SGMLToODMGSource + yatl.ExceptionRuleSource)
	store := fig3Store()
	for _, name := range []string{"stray10", "stray2", "astray", "stray1"} {
		store.Put(tree.PlainName(name), tree.Sym("memo", tree.Str(name)))
	}

	var wantMsg string
	var wantIDs []string
	for _, par := range []int{1, 4, 8} {
		res, err := Run(prog, store, &Options{Parallelism: par})
		var unc *ErrUnconverted
		if !errors.As(err, &unc) {
			t.Fatalf("parallelism=%d: expected ErrUnconverted, got %v", par, err)
		}
		if res == nil {
			t.Fatalf("parallelism=%d: partial result missing", par)
		}
		ids := make([]string, len(res.Unconverted))
		for i, id := range res.Unconverted {
			ids[i] = id.Display()
		}
		if wantMsg == "" {
			wantMsg = unc.Error()
			wantIDs = ids
			continue
		}
		if unc.Error() != wantMsg {
			t.Errorf("parallelism=%d: message %q differs from width-1 message %q", par, unc.Error(), wantMsg)
		}
		if len(ids) != len(wantIDs) {
			t.Fatalf("parallelism=%d: %d unconverted, want %d", par, len(ids), len(wantIDs))
		}
		for i := range ids {
			if ids[i] != wantIDs[i] {
				t.Errorf("parallelism=%d: Unconverted[%d] = %s, want %s", par, i, ids[i], wantIDs[i])
			}
		}
	}
}

// TestUnconvertedTotalOrder feeds inputs whose display keys would tie
// under the old comparator only on identical values: the kind-first
// total order must hold regardless of activation order.
func TestUnconvertedTotalOrder(t *testing.T) {
	prog := yatl.MustParse(`
program narrow
rule R {
  head Pout(X) = out -> V
  from X = wanted -> V
}
` + yatl.ExceptionRuleSource)
	store := tree.NewStore()
	// None of these match rule R; all are reported unconverted.
	store.Put(tree.PlainName("zz"), tree.Sym("memo", tree.Str("a")))
	store.Put(tree.PlainName("aa"), tree.Sym("memo", tree.Str("b")))
	store.Put(tree.PlainName("mm"), tree.Sym("memo", tree.Str("c")))
	res, err := Run(prog, store, nil)
	var unc *ErrUnconverted
	if !errors.As(err, &unc) {
		t.Fatalf("expected ErrUnconverted, got %v", err)
	}
	want := []string{"&aa", "&mm", "&zz"}
	if len(res.Unconverted) != len(want) {
		t.Fatalf("unconverted = %v", res.Unconverted)
	}
	for i, id := range res.Unconverted {
		if id.Display() != want[i] {
			t.Errorf("Unconverted[%d] = %s, want %s", i, id.Display(), want[i])
		}
	}
}
