package engine

import (
	"errors"
	"strings"
	"testing"

	"yat/internal/tree"
	"yat/internal/yatl"
)

func runProgram(t *testing.T, src string, inputs *tree.Store, opts *Options) *Result {
	t.Helper()
	prog, err := yatl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(prog, inputs, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func wantTree(t *testing.T, store *tree.Store, name tree.Name, want string) {
	t.Helper()
	got, ok := store.Get(name)
	if !ok {
		var names []string
		for _, e := range store.Entries() {
			names = append(names, e.Name.String())
		}
		t.Fatalf("output %s missing; have: %s", name, strings.Join(names, ", "))
	}
	expected := tree.MustParse(want)
	if !got.Equal(expected) {
		t.Errorf("output %s:\n got: %s\nwant: %s", name, got, expected)
	}
}

// --- Experiment E3: Figure 3, Rule 1 -----------------------------------

func TestFigure3Rule1(t *testing.T) {
	res := runProgram(t, "program p\n"+yatl.Rule1Source, fig3Store(), nil)
	// Exactly two supplier objects: "VW center" appears in both
	// brochures but the Skolem identity deduplicates it.
	if res.Outputs.Len() != 2 {
		t.Fatalf("outputs = %d, want 2:\n%s", res.Outputs.Len(), tree.FormatStore(res.Outputs))
	}
	wantTree(t, res.Outputs, psupOID("VW center"),
		`class < supplier < name < "VW center" >, city < "Paris" >, zip < 75005 > > >`)
	wantTree(t, res.Outputs, psupOID("VW2"),
		`class < supplier < name < "VW2" >, city < "Paris" >, zip < 75015 > > >`)
	if len(res.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", res.Warnings)
	}
}

func TestRule1YearFilter(t *testing.T) {
	store := tree.NewStore()
	store.Put(tree.PlainName("old"), brochure(9, "Beetle", 1968, "Classic",
		[2]string{"Oldtimer GmbH", "Hauptstr 1, 10115 Berlin"}))
	res := runProgram(t, "program p\n"+yatl.Rule1Source, store, nil)
	if res.Outputs.Len() != 0 {
		t.Errorf("pre-1975 brochures should produce no suppliers:\n%s", tree.FormatStore(res.Outputs))
	}
	// The brochure still matched (phase 1), so it is not reported
	// unconverted — predicates filter bindings, not inputs.
	if len(res.Unconverted) != 0 {
		t.Errorf("unconverted = %v", res.Unconverted)
	}
}

func TestRule1TypeFilterDropsMalformedAddress(t *testing.T) {
	store := tree.NewStore()
	store.Put(tree.PlainName("b"), brochure(1, "Golf", 1995, "d",
		[2]string{"OK corp", "Bd Lenoir, 75005 Paris"},
		[2]string{"Broken corp", "no comma here"}))
	prog := yatl.MustParse("program p\n" + yatl.Rule1Source)
	res, err := Run(prog, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Outputs.Get(psupOID("OK corp")); !ok {
		t.Error("well-formed supplier missing")
	}
	if _, ok := res.Outputs.Get(psupOID("Broken corp")); ok {
		t.Error("supplier with unparseable address should be dropped")
	}
	if len(res.Warnings) == 0 {
		t.Error("expected a warning about the dropped binding")
	}
}

// --- Rules 1+2: the §3.1 program ----------------------------------------

func TestRules1And2Program(t *testing.T) {
	res := runProgram(t, yatl.SGMLToODMGSource, fig3Store(), nil)
	if res.Outputs.Len() != 4 {
		t.Fatalf("outputs = %d, want 4 (2 suppliers + 2 cars):\n%s",
			res.Outputs.Len(), tree.FormatStore(res.Outputs))
	}
	wantTree(t, res.Outputs, pcarOID("b1"),
		`class < car < name < "Golf" >, desc < "Sympa" >,
		         suppliers < set < &Psup("VW center") > > > >`)
	wantTree(t, res.Outputs, pcarOID("b2"),
		`class < car < name < "Golf" >, desc < "Sympa" >,
		         suppliers < set < &Psup("VW2"), &Psup("VW center") > > > >`)
}

func TestRules1And2RuleOrderIrrelevant(t *testing.T) {
	// Skolem functions are global to the program, so Rule 1 and Rule
	// 2 can be applied in any order (§3.1).
	reversed := "program p\n" + yatl.Rule2Source + yatl.Rule1Source
	a := runProgram(t, yatl.SGMLToODMGSource, fig3Store(), nil)
	b := runProgram(t, reversed, fig3Store(), nil)
	for _, e := range a.Outputs.Entries() {
		other, ok := b.Outputs.Get(e.Name)
		if !ok || !other.Equal(e.Tree) {
			t.Errorf("output %s differs under rule reordering", e.Name)
		}
	}
	if a.Outputs.Len() != b.Outputs.Len() {
		t.Errorf("output counts differ: %d vs %d", a.Outputs.Len(), b.Outputs.Len())
	}
}

func TestRule2DanglingSupplierRefWarns(t *testing.T) {
	// A pre-1975 brochure: Rule 2 creates the car but Rule 1 filters
	// out its supplier, leaving a dangling reference.
	store := tree.NewStore()
	store.Put(tree.PlainName("old"), brochure(9, "Beetle", 1968, "Classic",
		[2]string{"Oldtimer GmbH", "Hauptstr 1, 10115 Berlin"}))
	res := runProgram(t, yatl.SGMLToODMGSource, store, nil)
	if _, ok := res.Outputs.Get(pcarOID("old")); !ok {
		t.Fatal("car object missing")
	}
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "dangling reference") && strings.Contains(w, "Oldtimer") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected dangling-reference warning, got %v", res.Warnings)
	}
}

// --- Experiment E4: Rule 1' + Rule 2, mutual references ------------------

func TestRule1Prime2CyclicReferences(t *testing.T) {
	res := runProgram(t, yatl.SGMLToODMGPrimeSource, fig3Store(), nil)
	wantTree(t, res.Outputs, psupOID("VW center"),
		`class < supplier < name < "VW center" >, city < "Paris" >, zip < 75005 >,
		         sells < set < &Pcar(&b1), &Pcar(&b2) > > > >`)
	wantTree(t, res.Outputs, psupOID("VW2"),
		`class < supplier < name < "VW2" >, city < "Paris" >, zip < 75015 >,
		         sells < set < &Pcar(&b2) > > > >`)
	// Cars still reference suppliers: a cyclic object graph, legal
	// because both directions use & references.
	wantTree(t, res.Outputs, pcarOID("b1"),
		`class < car < name < "Golf" >, desc < "Sympa" >,
		         suppliers < set < &Psup("VW center") > > > >`)
}

func TestCyclicProgramRejected(t *testing.T) {
	prog := yatl.MustParse(yatl.CyclicProgramSource)
	_, err := Run(prog, fig3Store(), nil)
	if err == nil {
		t.Fatal("cyclic program (both & removed) should be rejected")
	}
	if !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("error should mention the cycle: %v", err)
	}
	// The same program runs with the safety check disabled but is
	// caught by the dynamic guard during dereferencing.
	_, err = Run(prog, fig3Store(), &Options{DisableSafety: true})
	if err == nil {
		t.Fatal("dynamic cycle should still fail")
	}
	if !strings.Contains(err.Error(), "cyclic dereferencing") {
		t.Errorf("dynamic guard error: %v", err)
	}
}

// --- Experiment E5: Rule 3, heterogeneous join --------------------------

func TestRule3HeterogeneousJoin(t *testing.T) {
	inputs := mergeStores(fig3Store(), relationalStore())
	res := runProgram(t, "program p\n"+yatl.Rule3Source, inputs, nil)
	// Car 10 ↔ brochure b1 (number 1): supplier "VW center" matches
	// relational sid 1 via name + sameaddress. Car 20 ↔ brochure b2:
	// both suppliers match.
	wantTree(t, res.Outputs, tree.SkolemName("Pcar", tree.Int(10)),
		`class < car < name < "Golf" >, desc < "Sympa" >,
		         suppliers < set < &Psup(1) > > > >`)
	wantTree(t, res.Outputs, tree.SkolemName("Pcar", tree.Int(20)),
		`class < car < name < "Golf" >, desc < "Sympa" >,
		         suppliers < set < &Psup(2), &Psup(1) > > > >`)
}

func TestRule3AddressMismatchFiltersJoin(t *testing.T) {
	inputs := fig3Store()
	rel := tree.NewStore()
	rel.Put(tree.PlainName("Rsuppliers"), tree.Sym("suppliers",
		tree.Sym("row",
			tree.Sym("sid", tree.IntLeaf(1)),
			tree.Sym("name", tree.Str("VW center")),
			tree.Sym("city", tree.Str("Lyon")), // wrong city
			tree.Sym("address", tree.Str("Bd Lenoir")),
			tree.Sym("tel", tree.Str("t")))))
	rel.Put(tree.PlainName("Rcars"), tree.Sym("cars",
		tree.Sym("row",
			tree.Sym("cid", tree.IntLeaf(10)),
			tree.Sym("broch_num", tree.IntLeaf(1)))))
	res := runProgram(t, "program p\n"+yatl.Rule3Source, mergeStores(inputs, rel), nil)
	if res.Outputs.Len() != 0 {
		t.Errorf("sameaddress should reject the Lyon row:\n%s", tree.FormatStore(res.Outputs))
	}
}

// --- Experiment E6: Rule 4, ordered grouping ------------------------------

func TestRule4OrderedList(t *testing.T) {
	store := tree.NewStore()
	// Duplicated supplier and reverse-alphabetical order in the
	// input; the []SN primitive must deduplicate and sort.
	store.Put(tree.PlainName("b"), brochure(1, "Golf", 1995, "d",
		[2]string{"Zeta Motors", "Rue A, 75001 Paris"},
		[2]string{"Alpha Cars", "Rue B, 75002 Paris"},
		[2]string{"Zeta Motors", "Rue A, 75001 Paris"},
		[2]string{"Mid Auto", "Rue C, 75003 Paris"}))
	res := runProgram(t, "program p\n"+yatl.Rule4Source+yatl.Rule1Source, store, nil)
	wantTree(t, res.Outputs, tree.SkolemName("PsupList", tree.Ref{Name: tree.PlainName("b")}),
		`list < &Psup("Alpha Cars"), &Psup("Mid Auto"), &Psup("Zeta Motors") >`)
}

func TestGroupEdgeKeepsDistinctOnly(t *testing.T) {
	// Rule 2's -{}> removes duplicate supplier references.
	store := tree.NewStore()
	store.Put(tree.PlainName("b"), brochure(1, "Golf", 1995, "d",
		[2]string{"Dup", "Rue A, 75001 Paris"},
		[2]string{"Dup", "Rue A, 75001 Paris"}))
	res := runProgram(t, yatl.SGMLToODMGSource, store, nil)
	wantTree(t, res.Outputs, pcarOID("b"),
		`class < car < name < "Golf" >, desc < "d" >,
		         suppliers < set < &Psup("Dup") > > > >`)
}

func TestStarEdgeKeepsDuplicates(t *testing.T) {
	// Two distinct bindings (different addresses) project to the same
	// supplier reference: a star head edge keeps both occurrences
	// (the "implicit grouping without duplicate elimination" of
	// §4.1), where -{}> would keep one.
	src := `
program p
rule CarStar {
  head Pcar(Pbr) = class -> car -> suppliers -> set -*> &Psup(SN)
  from Pbr = ` + yatl.BrochureBody + `
}
`
	store := tree.NewStore()
	store.Put(tree.PlainName("b"), brochure(1, "Golf", 1995, "d",
		[2]string{"Dup", "Rue A, 75001 Paris"},
		[2]string{"Dup", "Rue B, 75002 Paris"}))
	res := runProgram(t, src, store, nil)
	wantTree(t, res.Outputs, pcarOID("b"),
		`class < car < suppliers < set < &Psup("Dup"), &Psup("Dup") > > > >`)
}

func TestIdenticalBindingsFormASet(t *testing.T) {
	// "Each pattern ... is matched against the body of the rule thus
	// forming the following SET of variable bindings": two literally
	// identical suppliers yield one binding, hence one reference even
	// under a star edge.
	src := `
program p
rule CarStar {
  head Pcar(Pbr) = class -> car -> suppliers -> set -*> &Psup(SN)
  from Pbr = ` + yatl.BrochureBody + `
}
`
	store := tree.NewStore()
	store.Put(tree.PlainName("b"), brochure(1, "Golf", 1995, "d",
		[2]string{"Dup", "Rue A, 75001 Paris"},
		[2]string{"Dup", "Rue A, 75001 Paris"}))
	res := runProgram(t, src, store, nil)
	wantTree(t, res.Outputs, pcarOID("b"),
		`class < car < suppliers < set < &Psup("Dup") > > > >`)
}

// --- Experiment E7: Figure 4 / Rule 5, matrix transpose ------------------

func TestFigure4Transpose(t *testing.T) {
	store := tree.NewStore()
	// The 3×2 matrix of Figure 4: monthly sales per model.
	store.Put(tree.PlainName("m"), tree.MustParse(
		`sales < jan < golf < 10 >, polo < 20 > >,
		         feb < golf < 30 >, polo < 40 > >,
		         mar < golf < 50 >, polo < 60 > > >`))
	res := runProgram(t, "program p\n"+yatl.Rule5Source, store, nil)
	wantTree(t, res.Outputs, tree.SkolemName("New", tree.Ref{Name: tree.PlainName("m")}),
		`sales < golf < jan < 10 >, feb < 30 >, mar < 50 > >,
		         polo < jan < 20 >, feb < 40 >, mar < 60 > > >`)
}

func TestTransposeIsInvolution(t *testing.T) {
	store := tree.NewStore()
	m := tree.MustParse(`mat < r1 < a < 1 >, b < 2 >, c < 3 > >, r2 < a < 4 >, b < 5 >, c < 6 > > >`)
	store.Put(tree.PlainName("m"), m)
	res1 := runProgram(t, "program p\n"+yatl.Rule5Source, store, nil)
	t1, _ := res1.Outputs.Get(tree.SkolemName("New", tree.Ref{Name: tree.PlainName("m")}))

	store2 := tree.NewStore()
	store2.Put(tree.PlainName("t"), t1)
	res2 := runProgram(t, "program p\n"+yatl.Rule5Source, store2, nil)
	t2, _ := res2.Outputs.Get(tree.SkolemName("New", tree.Ref{Name: tree.PlainName("t")}))
	if !t2.Equal(m) {
		t.Errorf("transpose twice should be identity:\n in: %s\nout: %s", m, t2)
	}
}

func TestTransposeRaggedMatrixStillTransposesCells(t *testing.T) {
	store := tree.NewStore()
	store.Put(tree.PlainName("m"), tree.MustParse(
		`mat < r1 < a < 1 > >, r2 < a < 3 >, b < 4 > > >`))
	res := runProgram(t, "program p\n"+yatl.Rule5Source, store, nil)
	wantTree(t, res.Outputs, tree.SkolemName("New", tree.Ref{Name: tree.PlainName("m")}),
		`mat < a < r1 < 1 >, r2 < 3 > >, b < r2 < 4 > > >`)
}

// --- Non-determinism (§3.1) ----------------------------------------------

func TestNonDeterminismDetected(t *testing.T) {
	// Two suppliers share the name but not the address: Psup(SN) gets
	// two distinct city values.
	store := tree.NewStore()
	store.Put(tree.PlainName("b1"), brochure(1, "Golf", 1995, "d",
		[2]string{"VW center", "Bd Lenoir, 75005 Paris"}))
	store.Put(tree.PlainName("b2"), brochure(2, "Polo", 1996, "d",
		[2]string{"VW center", "Rue Royale, 69001 Lyon"}))
	prog := yatl.MustParse("program p\n" + yatl.Rule1Source)
	_, err := Run(prog, store, nil)
	var nd *NonDetError
	if !errors.As(err, &nd) {
		t.Fatalf("expected NonDetError, got %v", err)
	}
	// With NonDetWarn the run completes and reports a warning.
	res, err := Run(prog, store, &Options{NonDetWarn: true})
	if err != nil {
		t.Fatalf("NonDetWarn run failed: %v", err)
	}
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "non-deterministic") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected non-determinism warning, got %v", res.Warnings)
	}
}

// --- Exception rule (§3.5) ------------------------------------------------

func TestExceptionRuleFires(t *testing.T) {
	store := fig3Store()
	store.Put(tree.PlainName("stray"), tree.Sym("memo", tree.Str("not a brochure")))
	prog := yatl.MustParse(yatl.SGMLToODMGSource + yatl.ExceptionRuleSource)
	res, err := Run(prog, store, nil)
	var unc *ErrUnconverted
	if !errors.As(err, &unc) {
		t.Fatalf("expected ErrUnconverted, got %v", err)
	}
	if len(unc.IDs) != 1 || unc.IDs[0].Display() != "&stray" {
		t.Errorf("unconverted = %v", unc.IDs)
	}
	// The partial result is still available.
	if res == nil || res.Outputs.Len() != 4 {
		t.Error("partial outputs should be reported alongside the exception")
	}
}

func TestExceptionRuleSilentWhenAllConverted(t *testing.T) {
	prog := yatl.MustParse(yatl.SGMLToODMGSource + yatl.ExceptionRuleSource)
	if _, err := Run(prog, fig3Store(), nil); err != nil {
		t.Fatalf("no exception expected: %v", err)
	}
}

func TestUnconvertedReportedWithoutExceptionRule(t *testing.T) {
	store := fig3Store()
	store.Put(tree.PlainName("stray"), tree.Sym("memo"))
	res := runProgram(t, yatl.SGMLToODMGSource, store, nil)
	if len(res.Unconverted) != 1 {
		t.Errorf("Unconverted = %v", res.Unconverted)
	}
}

// --- Experiment E8: the Web program --------------------------------------

func golfWebRun(t *testing.T) *Result {
	t.Helper()
	return runProgram(t, yatl.WebProgramSource, webGolfStore(), nil)
}

func TestWebProgramPages(t *testing.T) {
	res := golfWebRun(t)
	c1 := tree.Ref{Name: tree.PlainName("c1")}
	s1 := tree.Ref{Name: tree.PlainName("s1")}
	wantTree(t, res.Outputs, tree.SkolemName("HtmlPage", c1),
		`html < head < title < car > >,
		        body < h1 < car >,
		               ul < li < "name: ", "Golf" >,
		                    li < "desc: ", "A classic compact car" >,
		                    li < "suppliers: ",
		                         ul < li < a < href < &HtmlPage(&s1) >, cont < supplier > > >,
		                              li < a < href < &HtmlPage(&s2) >, cont < supplier > > > > > > > >`)
	wantTree(t, res.Outputs, tree.SkolemName("HtmlPage", s1),
		`html < head < title < supplier > >,
		        body < h1 < supplier >,
		               ul < li < "name: ", "VW center" >,
		                    li < "city: ", "Paris" >,
		                    li < "zip: ", "75005" > > > >`)
}

func TestWebProgramHierarchyDispatch(t *testing.T) {
	res := golfWebRun(t)
	// The class object s1 is converted by Web6 (anchor), not by the
	// generic Web2 (string): specific rules first (§4.2).
	s1 := tree.Ref{Name: tree.PlainName("s1")}
	wantTree(t, res.Outputs, tree.SkolemName("HtmlElement", s1),
		`a < href < &HtmlPage(&s1) >, cont < supplier > >`)
	// An atom is converted by Web2.
	wantTree(t, res.Outputs, tree.SkolemName("HtmlElement", tree.String("Golf")), `"Golf"`)
}

func TestWebProgramSafeRecursionAccepted(t *testing.T) {
	prog := yatl.MustParse(yatl.WebProgramSource)
	if err := CheckSafety(prog); err != nil {
		t.Errorf("the Web program is safe-recursive and must be accepted: %v", err)
	}
}

// webGolfStore returns the Figure 2 Golf data used by the Web tests.
func webGolfStore() *tree.Store {
	s := tree.NewStore()
	s.Put(tree.PlainName("c1"), tree.MustParse(
		`class < car < name < "Golf" >,
		                desc < "A classic compact car" >,
		                suppliers < set < &s1, &s2 > > > >`))
	s.Put(tree.PlainName("s1"), tree.MustParse(
		`class < supplier < name < "VW center" >, city < "Paris" >, zip < "75005" > > >`))
	s.Put(tree.PlainName("s2"), tree.MustParse(
		`class < supplier < name < "VW2" >, city < "Versailles" >, zip < "78000" > > >`))
	return s
}

func TestWebProgramListUsesOl(t *testing.T) {
	// A list-typed attribute goes through Web5 (ordered list → ol).
	store := tree.NewStore()
	store.Put(tree.PlainName("o"), tree.MustParse(
		`class < thing < items < list < "a", "b" > > > >`))
	res := runProgram(t, yatl.WebProgramSource, store, nil)
	found := false
	for _, e := range res.Outputs.Entries() {
		if e.Name.Functor == "HtmlElement" && strings.HasPrefix(e.Tree.Label.Display(), "ol") {
			found = true
			if len(e.Tree.Children) != 2 {
				t.Errorf("ol should have 2 items: %s", e.Tree)
			}
		}
	}
	if !found {
		t.Errorf("no ol output; outputs:\n%s", tree.FormatStore(res.Outputs))
	}
}

// --- Stats and determinism ------------------------------------------------

func TestRunStats(t *testing.T) {
	res := runProgram(t, yatl.SGMLToODMGSource, fig3Store(), nil)
	if res.Stats.Outputs != 4 {
		t.Errorf("Stats.Outputs = %d", res.Stats.Outputs)
	}
	if res.Stats.Activations < 2 {
		t.Errorf("Stats.Activations = %d", res.Stats.Activations)
	}
	if res.Stats.Bindings == 0 || res.Stats.Rounds == 0 {
		t.Errorf("Stats = %+v", res.Stats)
	}
}

func TestRunDeterministicAcrossRepeats(t *testing.T) {
	var first string
	for i := 0; i < 5; i++ {
		res := runProgram(t, yatl.WebProgramSource, webGolfStore(), nil)
		dump := tree.FormatStore(res.Outputs)
		if i == 0 {
			first = dump
			continue
		}
		if dump != first {
			t.Fatalf("run %d produced different output", i)
		}
	}
}
