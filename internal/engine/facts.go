// Program facts: the optimizer stage between static analysis and the
// engine. AnalyzeProgram computes, once per parsed program, the facts
// the hot paths consume at run time:
//
//   - a dense symbol table (pattern.SymTab) interning every label,
//     functor and Skolem name the program mentions;
//   - a head-symbol dispatch index replacing the linear scan of every
//     rule against every activation in the match phase;
//   - the set of statically dead rules (rules that can never fire, and
//     rules unreachable from any root functor), with the never-firing
//     ones pruned from demand slices when provably safe;
//   - a dependency stratification of the functor groups (evaluation
//     order; advisory — the fixpoint result is order-independent).
//
// Every optimization here is conservative: a dispatch set may admit a
// rule that cannot match, never the reverse; a rule is pruned only
// when dropping it is invisible to the §4.2 blocking semantics. The
// engine's output with facts enabled is byte-identical to the output
// without them, at every parallelism — pinned by optimize_test.go.
package engine

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"yat/internal/pattern"
	"yat/internal/tree"
	"yat/internal/yatl"
)

// RuleSet is a bitset over the rule indices of one program (the
// position of each rule in Program.Rules).
type RuleSet struct {
	bits []uint64
}

func newRuleSet(n int) *RuleSet {
	return &RuleSet{bits: make([]uint64, (n+63)/64)}
}

// Has reports whether rule index i is in the set.
func (s *RuleSet) Has(i int) bool {
	w := i >> 6
	return w < len(s.bits) && s.bits[w]&(1<<(uint(i)&63)) != 0
}

// Len returns the number of rules in the set.
func (s *RuleSet) Len() int {
	n := 0
	for _, w := range s.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

func (s *RuleSet) add(i int) { s.bits[i>>6] |= 1 << (uint(i) & 63) }

func (s *RuleSet) clone() *RuleSet {
	return &RuleSet{bits: append([]uint64(nil), s.bits...)}
}

func (s *RuleSet) union(o *RuleSet) {
	for i, w := range o.bits {
		s.bits[i] |= w
	}
}

// symDispatch is the dispatch entry for one root symbol: the rules
// admissible for any node with that root label, refined — when some
// pattern constrains its first child — by the symbol of the node's
// first child.
type symDispatch struct {
	// base admits the wildcard rules plus every rule rooted at the
	// symbol without a first-child refinement.
	base *RuleSet
	// byChild maps a first-child symbol to base plus the rules refined
	// on exactly that child. Nil when no pattern refines.
	byChild map[pattern.Sym]*RuleSet
}

// DispatchIndex is a discrimination trie keyed on interned head
// symbols: given an activation's root node it returns the set of
// rules whose body patterns could possibly match it. The sets are
// pre-merged at build time, so Lookup is a map probe or two and
// allocates nothing.
type DispatchIndex struct {
	syms     *pattern.SymTab
	numRules int
	// wildcard admits the rules no static class excludes: variable
	// roots, ^P conformance roots, non-symbol constant roots.
	wildcard *RuleSet
	// refs admits the rules that can match a reference leaf: the
	// wildcard set plus the &P-rooted rules.
	refs *RuleSet
	// roots indexes the rules rooted at a constant symbol.
	roots map[pattern.Sym]*symDispatch
}

// Roots returns the number of distinct root symbols indexed.
func (d *DispatchIndex) Roots() int { return len(d.roots) }

// Lookup returns the set of rules admissible for an activation rooted
// at n. The set is conservative: every rule that could match n is in
// it. Safe for concurrent use; performs no allocation.
func (d *DispatchIndex) Lookup(n *tree.Node) *RuleSet {
	if n == nil {
		return d.wildcard
	}
	if n.IsRef() {
		return d.refs
	}
	sym, ok := n.Label.(tree.Symbol)
	if !ok {
		return d.wildcard
	}
	s := d.syms.Lookup(string(sym))
	if s < 0 {
		return d.wildcard
	}
	sd := d.roots[s]
	if sd == nil {
		return d.wildcard
	}
	if sd.byChild != nil && len(n.Children) > 0 {
		if c, ok := n.Children[0].Label.(tree.Symbol); ok {
			if cs := d.syms.Lookup(string(c)); cs >= 0 {
				if rs := sd.byChild[cs]; rs != nil {
					return rs
				}
			}
		}
	}
	return sd.base
}

// Body-pattern dispatch classes.
const (
	classWildcard = iota // could match anything: always admissible
	classRefOnly         // &P root: only matches reference leaves
	classRooted          // constant symbol root: only matches that label
)

// classifyBody assigns one body pattern its dispatch class. The class
// must over-approximate matchability: when in doubt, wildcard.
func classifyBody(bp yatl.BodyPattern) (cls int, root, child string) {
	t := bp.Tree
	if t == nil {
		return classWildcard, "", ""
	}
	switch l := t.Label.(type) {
	case pattern.Const:
		sym, ok := l.Value.(tree.Symbol)
		if !ok {
			// Non-symbol constant roots are rare; they only match
			// identically-labelled nodes, but Lookup keys on symbols,
			// so they ride in the wildcard set.
			return classWildcard, "", ""
		}
		root = string(sym)
		// First-child refinement: a leading one-edge to a constant
		// symbol child consumes the node's first child positionally
		// (matchEdgesAt), so nodes whose first child differs can be
		// excluded statically.
		if len(t.Edges) > 0 && t.Edges[0].Occ == pattern.OccOne && t.Edges[0].To != nil {
			if cl, ok := t.Edges[0].To.Label.(pattern.Const); ok {
				if cs, ok := cl.Value.(tree.Symbol); ok {
					child = string(cs)
				}
			}
		}
		return classRooted, root, child
	case pattern.PatRef:
		if l.Ref {
			return classRefOnly, "", ""
		}
		return classWildcard, "", "" // ^P: conformance, not structure
	default: // pattern.Var, leaf or internal
		return classWildcard, "", ""
	}
}

// buildDispatch assembles the dispatch index. A rule is admissible for
// a node when any of its body patterns' classes admits it.
func buildDispatch(prog *yatl.Program, syms *pattern.SymTab, ruleIndex map[string]int) *DispatchIndex {
	n := len(prog.Rules)
	d := &DispatchIndex{
		syms:     syms,
		numRules: n,
		wildcard: newRuleSet(n),
		roots:    map[pattern.Sym]*symDispatch{},
	}
	refOnly := newRuleSet(n)
	type rootAcc struct {
		base    *RuleSet
		byChild map[pattern.Sym]*RuleSet
	}
	acc := map[pattern.Sym]*rootAcc{}
	for _, r := range prog.Rules {
		if r.Exception {
			continue
		}
		i := ruleIndex[r.Name]
		for _, bp := range r.Body {
			cls, root, child := classifyBody(bp)
			switch cls {
			case classWildcard:
				d.wildcard.add(i)
			case classRefOnly:
				refOnly.add(i)
			case classRooted:
				rs := syms.Intern(root)
				ra := acc[rs]
				if ra == nil {
					ra = &rootAcc{base: newRuleSet(n), byChild: map[pattern.Sym]*RuleSet{}}
					acc[rs] = ra
				}
				if child == "" {
					ra.base.add(i)
					continue
				}
				cs := syms.Intern(child)
				set := ra.byChild[cs]
				if set == nil {
					set = newRuleSet(n)
					ra.byChild[cs] = set
				}
				set.add(i)
			}
		}
	}
	d.refs = d.wildcard.clone()
	d.refs.union(refOnly)
	for rs, ra := range acc {
		sd := &symDispatch{base: d.wildcard.clone()}
		sd.base.union(ra.base)
		if len(ra.byChild) > 0 {
			sd.byChild = make(map[pattern.Sym]*RuleSet, len(ra.byChild))
			for cs, set := range ra.byChild {
				merged := sd.base.clone()
				merged.union(set)
				sd.byChild[cs] = merged
			}
		}
		d.roots[rs] = sd
	}
	return d
}

// ProgramFacts holds every fact AnalyzeProgram computes over one
// program. A ProgramFacts value is immutable after construction
// (except the internal slice memo, which is lock-guarded) and safe
// for concurrent use. Facts are only valid for the exact *Program
// they were computed from — the engine checks the pointer and falls
// back to the unoptimized path on mismatch rather than trusting stale
// facts.
type ProgramFacts struct {
	prog *yatl.Program

	// Syms interns every label, functor and Skolem name of the
	// program into dense integer codes.
	Syms *pattern.SymTab
	// RuleIndex maps rule names to their position in Program.Rules
	// (the index space of every RuleSet).
	RuleIndex map[string]int
	// Dispatch is the head-symbol dispatch index; nil when dispatch
	// is disabled (duplicate rule names make indices ambiguous).
	Dispatch *DispatchIndex
	// NeverFire lists the rules whose predicates are statically
	// false, sorted by name.
	NeverFire []string
	// Unreachable lists the rules unreachable from any root functor
	// (a functor no other group references), sorted by name. Empty
	// when the program has no root functors to anchor the analysis.
	Unreachable []string
	// Strata is the functor evaluation order: each stratum lists the
	// functors (sorted) of one strongly-connected component of the
	// demand graph, dependencies before dependents.
	Strata [][]string

	neverFire map[string]bool
	prunable  map[string]bool

	mu     sync.Mutex
	slices map[string]*Slice
}

// maxSliceMemo bounds the per-program slice cache; combinations past
// the cap are computed but not retained.
const maxSliceMemo = 1024

// For reports whether the facts were computed from exactly this
// program value.
func (f *ProgramFacts) For(prog *yatl.Program) bool {
	return f != nil && f.prog == prog
}

// Summary renders the facts for trace output and EXPLAIN, stable
// across runs.
func (f *ProgramFacts) Summary() string {
	roots := 0
	if f.Dispatch != nil {
		roots = f.Dispatch.Roots()
	}
	return fmt.Sprintf("syms=%d dispatch-roots=%d dead-rules=%d unreachable=%d strata=%d",
		f.Syms.Len(), roots, len(f.NeverFire), len(f.Unreachable), len(f.Strata))
}

// NeverFires reports whether the named rule can never fire.
func (f *ProgramFacts) NeverFires(rule string) bool { return f.neverFire[rule] }

// Prunable reports whether the named rule is dropped from demand
// slices: it never fires, and removing it cannot change any other
// rule's behaviour under the §4.2 blocking semantics.
func (f *ProgramFacts) Prunable(rule string) bool { return f.prunable[rule] }

// IsUnreachable reports whether the named rule was found unreachable
// from every root functor.
func (f *ProgramFacts) IsUnreachable(rule string) bool {
	for _, name := range f.Unreachable {
		if name == rule {
			return true
		}
	}
	return false
}

// AnalyzeProgram computes the program's facts. It is pure analysis:
// the program is not modified, and the result depends only on the
// program text.
func AnalyzeProgram(prog *yatl.Program) *ProgramFacts {
	f := &ProgramFacts{
		prog:      prog,
		Syms:      pattern.NewSymTab(),
		RuleIndex: map[string]int{},
		neverFire: map[string]bool{},
		prunable:  map[string]bool{},
		slices:    map[string]*Slice{},
	}

	// Pass 1: interning and rule indexing.
	dup := false
	for i, r := range prog.Rules {
		if _, seen := f.RuleIndex[r.Name]; seen {
			dup = true
		}
		f.RuleIndex[r.Name] = i
		f.Syms.Intern(r.Head.Functor)
		if r.Head.Tree != nil {
			f.Syms.InternTree(r.Head.Tree)
		}
		for _, bp := range r.Body {
			f.Syms.InternTree(bp.Tree)
		}
	}

	// Duplicate rule names make every by-name fact ambiguous; the
	// engine already misbehaves on such programs (yatcheck flags
	// them), so analysis keeps only the symbol table.
	if dup {
		return f
	}

	// Pass 2: dispatch index.
	f.Dispatch = buildDispatch(prog, f.Syms, f.RuleIndex)

	// Pass 3: dead rules (never-fire + unreachable) and prunability.
	groups := map[string][]*yatl.Rule{}
	var functorOrder []string
	for _, r := range prog.Rules {
		if r.Exception {
			continue
		}
		if _, ok := groups[r.Head.Functor]; !ok {
			functorOrder = append(functorOrder, r.Head.Functor)
		}
		groups[r.Head.Functor] = append(groups[r.Head.Functor], r)
	}
	orderBefore := map[string]bool{}
	for _, o := range prog.Orders {
		orderBefore[o.Before] = true
	}
	for _, r := range prog.Rules {
		if r.Exception || !ruleNeverFires(r) {
			continue
		}
		f.NeverFire = append(f.NeverFire, r.Name)
		f.neverFire[r.Name] = true
		// Pruning is safe only when the rule provably blocks nothing:
		// a never-firing rule still *matches*, and a match shadows the
		// less specific rules of its group. No user ordering may name
		// it first, and implicit blocking requires an identical
		// argument shape (hierarchy.go strict), which is the only
		// model-independent part of the blocking relation — so the
		// rule must be alone in its group or shaped unlike everyone.
		safe := !orderBefore[r.Name]
		if safe {
			grp := groups[r.Head.Functor]
			shape := argShape(r)
			for _, o := range grp {
				if o != r && argShape(o) == shape {
					safe = false
					break
				}
			}
		}
		if safe {
			f.prunable[r.Name] = true
		}
	}
	sort.Strings(f.NeverFire)
	f.Unreachable = unreachableRules(prog, groups, functorOrder)

	// Pass 4: dependency stratification.
	f.Strata = stratify(groups, functorOrder)
	return f
}

// ruleNeverFires reports whether the rule's own predicates make it
// statically impossible to fire. The proof obligations mirror
// evalBinding exactly: a rule with lets may warn or raise during
// phase 2, so it is never "dead"; predicates are checked in order,
// and a call predicate aborts the scan (calls can warn or raise); a
// comparison between two constants is decided with the run-time
// semantics (tree.EqualValues / tree.Compare); a comparison involving
// a variable is skipped — it can silently drop a binding but never
// warn, so scanning past it is sound.
func ruleNeverFires(r *yatl.Rule) bool { return DeadPredIndex(r) >= 0 }

// DeadPredIndex returns the index of the first predicate proving the
// rule can never fire (a constant comparison that is false), or -1
// when no such proof exists. Exported for the deadrule analyzer,
// which positions its diagnostic on the offending predicate.
func DeadPredIndex(r *yatl.Rule) int {
	if len(r.Lets) > 0 {
		return -1
	}
	for i, p := range r.Preds {
		if p.IsCall() {
			return -1
		}
		if p.Left.IsVar || p.Right.IsVar || p.Left.Const == nil || p.Right.Const == nil {
			continue
		}
		if !constPredTrue(p) {
			return i
		}
	}
	return -1
}

// constPredTrue evaluates a constant comparison with evalPred's
// semantics. Unknown operators evaluate true (the engine errors on
// them at run time; that is not deadness).
func constPredTrue(p yatl.Pred) bool {
	l, r := p.Left.Const, p.Right.Const
	switch p.Op {
	case yatl.OpEq:
		return tree.EqualValues(l, r)
	case yatl.OpNe:
		return !tree.EqualValues(l, r)
	}
	cmp := tree.Compare(l, r)
	switch p.Op {
	case yatl.OpLt:
		return cmp < 0
	case yatl.OpLe:
		return cmp <= 0
	case yatl.OpGt:
		return cmp > 0
	case yatl.OpGe:
		return cmp >= 0
	}
	return true
}

// headRefs lists the functor names a rule's head tree references
// (both &F references and ^F dereferences), restricted to functors
// the program defines.
func headRefs(r *yatl.Rule, groups map[string][]*yatl.Rule) []string {
	if r.Head.Tree == nil {
		return nil
	}
	var out []string
	for _, ref := range r.Head.Tree.PatternRefs() {
		if _, defined := groups[ref.Name]; defined {
			out = append(out, ref.Name)
		}
	}
	return out
}

// unreachableRules finds the rules no root functor can reach. Roots
// are the functors referenced by no *other* group's heads — the
// program's exported views. The reachable set closes over every head
// reference from the roots, then over the engine's own support
// closure (ComputeSlice), so a rule that feeds a reachable rule's
// activations is reachable too. Programs without roots (every group
// referenced by another — mutual recursion throughout) skip the
// analysis: there is no anchor to argue deadness from.
func unreachableRules(prog *yatl.Program, groups map[string][]*yatl.Rule, functorOrder []string) []string {
	if len(functorOrder) == 0 {
		return nil
	}
	referenced := map[string]bool{}
	for _, rules := range groups {
		for _, r := range rules {
			for _, g := range headRefs(r, groups) {
				if g != r.Head.Functor {
					referenced[g] = true
				}
			}
		}
	}
	var roots []string
	for _, fn := range functorOrder {
		if !referenced[fn] {
			roots = append(roots, fn)
		}
	}
	if len(roots) == 0 || len(roots) == len(functorOrder) {
		return nil
	}
	reach := map[string]bool{}
	work := append([]string(nil), roots...)
	for _, fn := range roots {
		reach[fn] = true
	}
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		for _, r := range groups[fn] {
			for _, g := range headRefs(r, groups) {
				if !reach[g] {
					reach[g] = true
					work = append(work, g)
				}
			}
		}
	}
	var closure []string
	for _, fn := range functorOrder {
		if reach[fn] {
			closure = append(closure, fn)
		}
	}
	sl := ComputeSlice(prog, closure...)
	var out []string
	for _, r := range prog.Rules {
		if !r.Exception && !sl.Includes(r.Name) {
			out = append(out, r.Name)
		}
	}
	sort.Strings(out)
	return out
}

// stratify orders the functor groups by dependency: Tarjan's SCC over
// the demand graph (an edge f→g when some rule of f's group
// references g in its head), emitted dependencies-first. The fixpoint
// result is order-independent; the strata are advisory (EXPLAIN,
// yatcheck -facts) and a cheap cycle report.
func stratify(groups map[string][]*yatl.Rule, functorOrder []string) [][]string {
	adj := map[string][]string{}
	for _, fn := range functorOrder {
		seen := map[string]bool{}
		for _, r := range groups[fn] {
			for _, g := range headRefs(r, groups) {
				if g != fn && !seen[g] {
					seen[g] = true
					adj[fn] = append(adj[fn], g)
				}
			}
		}
		sort.Strings(adj[fn])
	}

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var strata [][]string
	next := 0
	var strongConnect func(v string)
	strongConnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, visited := index[w]; !visited {
				strongConnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			strata = append(strata, scc)
		}
	}
	for _, fn := range functorOrder {
		if _, visited := index[fn]; !visited {
			strongConnect(fn)
		}
	}
	return strata
}

// SliceFor returns the (possibly pruned) slice for the given functors,
// memoized per functor combination. The single-functor probe — the
// demand-driven mediator's cache-hit path — allocates nothing after
// the first call.
func (f *ProgramFacts) SliceFor(functors ...string) *Slice {
	var key string
	switch len(functors) {
	case 0:
		key = ""
	case 1:
		key = functors[0]
	default:
		key = strings.Join(sortedUnique(functors), "\x00")
	}
	f.mu.Lock()
	if sl, ok := f.slices[key]; ok {
		f.mu.Unlock()
		return sl
	}
	f.mu.Unlock()
	sl := f.prune(ComputeSlice(f.prog, functors...))
	f.mu.Lock()
	if len(f.slices) < maxSliceMemo {
		f.slices[key] = sl
	}
	f.mu.Unlock()
	return sl
}

// prune drops the provably-prunable never-firing rules from a slice.
// The engine's run over the pruned slice is byte-identical to a run
// over the original: a pruned rule fires nothing, constructs nothing,
// mints no activations, emits no warnings (ruleNeverFires aborts on
// anything that could), and — by the prunability guard — blocks no
// other rule.
func (f *ProgramFacts) prune(sl *Slice) *Slice {
	if len(f.prunable) == 0 {
		return sl
	}
	drop := 0
	for name := range f.prunable {
		if sl.include[name] {
			drop++
		}
	}
	if drop == 0 {
		return sl
	}
	ps := &Slice{
		Functors:  sl.Functors,
		Closure:   sl.Closure,
		construct: make(map[string]bool, len(sl.construct)),
		include:   make(map[string]bool, len(sl.include)),
	}
	for _, r := range sl.Construct {
		if f.prunable[r.Name] {
			continue
		}
		ps.Construct = append(ps.Construct, r)
		ps.construct[r.Name] = true
		ps.include[r.Name] = true
	}
	for _, r := range sl.Support {
		if f.prunable[r.Name] {
			continue
		}
		ps.Support = append(ps.Support, r)
		ps.include[r.Name] = true
	}
	return ps
}
