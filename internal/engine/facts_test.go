package engine

import (
	"context"
	"strings"
	"testing"

	"yat/internal/tree"
	"yat/internal/yatl"
)

// dispatchSource has one alpha-rooted rule, one beta-rooted rule and
// one variable-rooted (wildcard) rule — the three dispatch classes a
// plain program exercises.
const dispatchSource = `
program dispatch
rule A {
  head Pa(X) = outa -> v -> X
  from P = alpha < -> k -> X >
}
rule B {
  head Pb(X) = outb -> v -> X
  from P = beta < -> k -> X >
}
rule W {
  head Pw(Id) = outw -> v -> V
  from Id = M -> V
}
`

func analyze(t *testing.T, src string) *ProgramFacts {
	t.Helper()
	prog, err := yatl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return AnalyzeProgram(prog)
}

func TestAnalyzeProgramBasics(t *testing.T) {
	f := analyze(t, dispatchSource)
	for _, want := range []string{"Pa", "Pb", "Pw", "alpha", "beta", "k", "v", "outa"} {
		if f.Syms.Lookup(want) < 0 {
			t.Errorf("%q not interned", want)
		}
	}
	// Variable names are not symbols.
	if f.Syms.Lookup("X") >= 0 || f.Syms.Lookup("Id") >= 0 {
		t.Error("variable names leaked into the symbol table")
	}
	if f.RuleIndex["A"] != 0 || f.RuleIndex["B"] != 1 || f.RuleIndex["W"] != 2 {
		t.Errorf("rule index = %v", f.RuleIndex)
	}
	if f.Dispatch == nil {
		t.Fatal("no dispatch index")
	}
	if len(f.NeverFire) != 0 || len(f.Unreachable) != 0 {
		t.Errorf("clean program reported dead rules: never=%v unreachable=%v", f.NeverFire, f.Unreachable)
	}
	if !strings.Contains(f.Summary(), "dead-rules=0") {
		t.Errorf("summary = %q", f.Summary())
	}
}

func TestDispatchLookup(t *testing.T) {
	f := analyze(t, dispatchSource)
	d := f.Dispatch
	idx := func(name string) int { return f.RuleIndex[name] }

	alpha := tree.Sym("alpha", tree.Sym("k", tree.IntLeaf(1)))
	beta := tree.Sym("beta", tree.Sym("k", tree.IntLeaf(1)))
	gamma := tree.Sym("gamma")

	cases := []struct {
		name string
		node *tree.Node
		want map[string]bool // rule -> admissible
	}{
		{"alpha root", alpha, map[string]bool{"A": true, "B": false, "W": true}},
		{"beta root", beta, map[string]bool{"A": false, "B": true, "W": true}},
		{"unknown symbol", gamma, map[string]bool{"A": false, "B": false, "W": true}},
		{"nil node", nil, map[string]bool{"A": false, "B": false, "W": true}},
		{"non-symbol label", tree.Str("data"), map[string]bool{"A": false, "B": false, "W": true}},
		{"reference leaf", tree.RefLeaf(tree.PlainName("x")), map[string]bool{"A": false, "B": false, "W": true}},
	}
	for _, tc := range cases {
		rs := d.Lookup(tc.node)
		if rs == nil {
			t.Fatalf("%s: nil rule set", tc.name)
		}
		for rule, want := range tc.want {
			if got := rs.Has(idx(rule)); got != want {
				t.Errorf("%s: admits(%s) = %v, want %v", tc.name, rule, got, want)
			}
		}
	}
}

// TestDispatchSoundness cross-checks the index against the matcher:
// every rule that actually produces bindings on an input must be in
// the input's admissible set.
func TestDispatchSoundness(t *testing.T) {
	srcs := []string{
		"program p" + yatl.Rule1Source + yatl.Rule2Source,
		yatl.SGMLToODMGSource,
		yatl.WebProgramSource,
	}
	inputs := []*tree.Node{
		tree.Sym("brochure", tree.Sym("number", tree.IntLeaf(1))),
		tree.Sym("class", tree.Sym("car", tree.Sym("name", tree.Str("Golf")))),
		tree.Str("leaf"),
		tree.RefLeaf(tree.PlainName("obj")),
		tree.Sym("unrelated"),
	}
	m := &Matcher{}
	for _, src := range srcs {
		prog, err := yatl.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		f := AnalyzeProgram(prog)
		if f.Dispatch == nil {
			t.Fatal("no dispatch index")
		}
		for _, in := range inputs {
			rs := f.Dispatch.Lookup(in)
			for i, r := range prog.Rules {
				if r.Exception || rs.Has(i) {
					continue
				}
				// Excluded rule: no body pattern may match.
				for _, bp := range r.Body {
					if m.Matches(bp.Tree, in) {
						t.Errorf("%s: rule %s excluded for %s but matches", prog.Name, r.Name, in)
					}
				}
			}
		}
	}
}

const childRefineSource = `
program refine
rule R1 {
  head P1(X) = o -> one -> X
  from P = rec < -> a -> X >
}
rule R2 {
  head P2(X) = o -> two -> X
  from P = rec < -> b -> X >
}
`

func TestDispatchFirstChildRefinement(t *testing.T) {
	f := analyze(t, childRefineSource)
	d := f.Dispatch
	recA := tree.Sym("rec", tree.Sym("a", tree.IntLeaf(1)))
	recB := tree.Sym("rec", tree.Sym("b", tree.IntLeaf(1)))
	recC := tree.Sym("rec", tree.Sym("c", tree.IntLeaf(1)))

	if rs := d.Lookup(recA); !rs.Has(0) || rs.Has(1) {
		t.Errorf("rec<a>: admits R1=%v R2=%v, want true/false", rs.Has(0), rs.Has(1))
	}
	if rs := d.Lookup(recB); rs.Has(0) || !rs.Has(1) {
		t.Errorf("rec<b>: admits R1=%v R2=%v, want false/true", rs.Has(0), rs.Has(1))
	}
	// Unrefined child symbol: neither refined rule can match.
	if rs := d.Lookup(recC); rs.Has(0) || rs.Has(1) || rs.Len() != 0 {
		t.Errorf("rec<c>: admissible set %d rules, want empty", rs.Len())
	}
}

const deadRuleSource = `
program dead
rule Dead {
  head Pdead(X) = o -> v -> X
  from P = alpha < -> k -> X >
  where 1 == 2
}
rule VarPred {
  head Pvar(X) = o -> v -> X
  from P = alpha < -> k -> X >
  where X > 10
}
rule LetGuard {
  head Plet(X) = o -> v -> C
  from P = alpha < -> k -> X >
  let C = city(X)
  where 1 == 2
}
rule CallGuard {
  head Pcall(X) = o -> v -> X
  from P = alpha < -> k -> X >
  where known(X)
  where 1 == 2
}
rule TrueConst {
  head Ptrue(X) = o -> v -> X
  from P = alpha < -> k -> X >
  where 1 == 1
}
rule AfterVar {
  head Pafter(X) = o -> v -> X
  from P = alpha < -> k -> X >
  where X > 10
  where 2 < 1
}
`

func TestNeverFire(t *testing.T) {
	f := analyze(t, deadRuleSource)
	want := []string{"AfterVar", "Dead"}
	if strings.Join(f.NeverFire, ",") != strings.Join(want, ",") {
		t.Errorf("NeverFire = %v, want %v", f.NeverFire, want)
	}
	// A rule with lets may warn during evaluation; a call predicate may
	// warn or raise. Neither is statically dead.
	for _, alive := range []string{"VarPred", "LetGuard", "CallGuard", "TrueConst"} {
		if f.NeverFires(alive) {
			t.Errorf("rule %s wrongly marked never-firing", alive)
		}
	}
	// Every dead rule here is alone in its group: all prunable.
	for _, dead := range want {
		if !f.Prunable(dead) {
			t.Errorf("singleton dead rule %s not prunable", dead)
		}
	}
}

const blockedDeadSource = `
program blocked
rule Dead {
  head Ps(X) = o -> one -> X
  from P = alpha < -> k -> X >
  where 1 == 2
}
rule Live {
  head Ps(X) = o -> two -> X
  from P = alpha < -> k -> X >
}
rule DeadShape {
  head Pt(P) = o -> one -> X
  from P = alpha < -> k -> X >
  where 1 == 2
}
rule LiveShape {
  head Pt(X) = o -> two -> X
  from P = alpha < -> k -> X >
}
`

func TestPrunabilityGuard(t *testing.T) {
	f := analyze(t, blockedDeadSource)
	if !f.NeverFires("Dead") || !f.NeverFires("DeadShape") {
		t.Fatalf("NeverFire = %v", f.NeverFire)
	}
	// Dead shares functor Ps and argument shape with Live: a match by
	// Dead could block Live under §4.2, so it must stay in slices.
	if f.Prunable("Dead") {
		t.Error("Dead shares its group's arg shape; must not be prunable")
	}
	// DeadShape mints Pt from the body identity, LiveShape from a data
	// variable — disjoint key spaces, safe to prune.
	if !f.Prunable("DeadShape") {
		t.Error("DeadShape has a unique arg shape; should be prunable")
	}
}

func TestOrderedDeadRuleNotPrunable(t *testing.T) {
	f := analyze(t, `
program ordered
order Dead before Other
rule Dead {
  head Pdead(X) = o -> v -> X
  from P = alpha < -> k -> X >
  where 1 == 2
}
rule Other {
  head Pother(X) = o -> v -> X
  from P = alpha < -> k -> X >
}
`)
	if !f.NeverFires("Dead") {
		t.Fatalf("NeverFire = %v", f.NeverFire)
	}
	if f.Prunable("Dead") {
		t.Error("user-ordered dead rule must not be prunable")
	}
}

// unreachableSource: Pmain is the only root; CycA and CycB reference
// each other, so neither is a root and nothing reaches them. The
// minted variables are annotated (X : string) so the support closure
// can prove their atomic mints feed no alpha-rooted body.
const unreachableSource = `
program unreach
rule Main {
  head Pmain(P) = o -> item -{}> &Pused(X)
  from P = alpha < -> k -> X : string >
}
rule Used {
  head Pused(X) = o -> v -> X
  from P = alpha < -> k -> X : string >
}
rule CycA {
  head Pca(X) = o -> v -{}> &Pcb(X)
  from P = alpha < -> k -> X : string >
}
rule CycB {
  head Pcb(X) = o -> v -{}> &Pca(X)
  from P = alpha < -> k -> X : string >
}
`

func TestUnreachableCycle(t *testing.T) {
	f := analyze(t, unreachableSource)
	// Pca and Pcb reference each other, so neither is a root; nothing
	// from the only root (Pmain) reaches them.
	if got := strings.Join(f.Unreachable, ","); got != "CycA,CycB" {
		t.Errorf("Unreachable = %v, want [CycA CycB]", f.Unreachable)
	}
	if !f.IsUnreachable("CycA") || f.IsUnreachable("Main") {
		t.Error("IsUnreachable inconsistent with Unreachable list")
	}
	// Unreachable rules are advisory: never pruned from slices.
	if f.Prunable("CycA") {
		t.Error("unreachable rule must not be prunable")
	}
}

func TestUnreachableSkipsRootlessPrograms(t *testing.T) {
	// Every group references the other: no roots, no verdict.
	f := analyze(t, `
program rootless
rule CycA {
  head Pca(X) = o -> v -{}> &Pcb(X)
  from P = alpha < -> k -> X >
}
rule CycB {
  head Pcb(X) = o -> v -{}> &Pca(X)
  from P = alpha < -> k -> X >
}
`)
	if len(f.Unreachable) != 0 {
		t.Errorf("rootless program reported unreachable rules: %v", f.Unreachable)
	}
}

func TestStrata(t *testing.T) {
	f := analyze(t, `
program strata
rule M {
  head Pm(P) = o -> x -{}> &Pa(X)
  from P = alpha < -> k -> X >
}
rule A {
  head Pa(X) = o -> x -{}> &Pb(X)
  from P = alpha < -> k -> X >
}
rule B {
  head Pb(X) = o -> v -> X
  from P = alpha < -> k -> X >
}
`)
	if len(f.Strata) != 3 {
		t.Fatalf("strata = %v, want 3 singleton strata", f.Strata)
	}
	got := []string{f.Strata[0][0], f.Strata[1][0], f.Strata[2][0]}
	if got[0] != "Pb" || got[1] != "Pa" || got[2] != "Pm" {
		t.Errorf("strata order = %v, want dependencies first [Pb Pa Pm]", got)
	}

	cyc := analyze(t, unreachableSource)
	found := false
	for _, s := range cyc.Strata {
		if strings.Join(s, ",") == "Pca,Pcb" {
			found = true
		}
	}
	if !found {
		t.Errorf("cycle not grouped into one stratum: %v", cyc.Strata)
	}
}

func TestDuplicateRuleNamesDisableDispatch(t *testing.T) {
	prog, err := yatl.Parse(`
program dup
rule Same {
  head Pa(X) = o -> v -> X
  from P = alpha < -> k -> X >
}
rule Same {
  head Pb(X) = o -> v -> X
  from P = beta < -> k -> X >
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := AnalyzeProgram(prog)
	if f.Dispatch != nil {
		t.Error("duplicate rule names must disable the dispatch index")
	}
	if f.Syms.Lookup("alpha") < 0 {
		t.Error("symbol table should survive duplicate names")
	}
}

func TestSliceForMemoAndPrune(t *testing.T) {
	prog, err := yatl.Parse(deadRuleSource)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := AnalyzeProgram(prog)
	full := f.SliceFor()
	if full.Includes("Dead") || full.Includes("AfterVar") {
		t.Errorf("pruned full slice still includes dead rules: %s", full)
	}
	for _, alive := range []string{"VarPred", "LetGuard", "CallGuard", "TrueConst"} {
		if !full.Includes(alive) {
			t.Errorf("pruned slice lost live rule %s", alive)
		}
	}
	if again := f.SliceFor(); again != full {
		t.Error("no-functor slice not memoized")
	}
	one := f.SliceFor("Pvar")
	if one != f.SliceFor("Pvar") {
		t.Error("single-functor slice not memoized")
	}
	if !one.Constructs("VarPred") || one.Rules() != 1 {
		t.Errorf("Pvar slice = %s, want VarPred alone", one)
	}
	// A guarded dead rule survives pruning.
	g := analyze(t, blockedDeadSource)
	if sl := g.SliceFor("Ps"); !sl.Includes("Dead") {
		t.Error("non-prunable dead rule was dropped from its slice")
	}

	// Pruning must not change run results: same store, pruned full
	// slice versus unpruned full run.
	store := tree.NewStore()
	store.Put(tree.PlainName("in"), tree.Sym("alpha", tree.Sym("k", tree.IntLeaf(42))))
	reg := NewRegistry()
	reg.Register(Func{Name: "known", Params: []ParamType{Any}, Result: ParamType{Kinds: []tree.Kind{tree.KindBool}},
		Fn: func(args []tree.Value) (tree.Value, error) { return tree.Bool(true), nil }})
	plain, err := Run(prog, store, WithRegistry(reg))
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	pruned, err := RunSlice(context.Background(), prog, store, full, WithRegistry(reg))
	if err != nil {
		t.Fatalf("pruned run: %v", err)
	}
	if got, want := tree.FormatStore(pruned.Outputs), tree.FormatStore(plain.Outputs); got != want {
		t.Errorf("pruned slice changed outputs:\n got: %s\nwant: %s", got, want)
	}
}

// TestRunWithFacts pins the engine integration: an optimized run is
// byte-identical to a plain run, stale facts are ignored rather than
// trusted, and WithOptimize(false) disables supplied facts.
func TestRunWithFacts(t *testing.T) {
	src := "program p" + yatl.Rule1Source + yatl.Rule2Source
	prog := yatl.MustParse(src)
	store := fig3Store()
	plain, err := Run(prog, store, nil)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	want := tree.FormatStore(plain.Outputs)

	facts := AnalyzeProgram(prog)
	for _, par := range []int{1, 4} {
		opt, err := Run(prog, store, WithFacts(facts), WithParallelism(par))
		if err != nil {
			t.Fatalf("optimized run (par %d): %v", par, err)
		}
		if got := tree.FormatStore(opt.Outputs); got != want {
			t.Errorf("optimized outputs differ at parallelism %d:\n got: %s\nwant: %s", par, got, want)
		}
		if opt.Stats.Activations != plain.Stats.Activations || opt.Stats.Outputs != plain.Stats.Outputs {
			t.Errorf("optimized stats differ at parallelism %d: %+v vs %+v", par, opt.Stats, plain.Stats)
		}
	}

	// Stale facts: computed from a different program value.
	other := yatl.MustParse(src)
	stale, err := Run(prog, store, WithFacts(AnalyzeProgram(other)))
	if err != nil {
		t.Fatalf("stale-facts run: %v", err)
	}
	if got := tree.FormatStore(stale.Outputs); got != want {
		t.Errorf("stale facts changed outputs:\n got: %s\nwant: %s", got, want)
	}

	// The escape hatch wins over supplied facts.
	off, err := Run(prog, store, WithFacts(facts), WithOptimize(false))
	if err != nil {
		t.Fatalf("disabled run: %v", err)
	}
	if got := tree.FormatStore(off.Outputs); got != want {
		t.Errorf("WithOptimize(false) changed outputs:\n got: %s\nwant: %s", got, want)
	}

	// One-shot optimization without precomputed facts.
	auto, err := Run(prog, store, WithOptimize(true))
	if err != nil {
		t.Fatalf("auto-optimized run: %v", err)
	}
	if got := tree.FormatStore(auto.Outputs); got != want {
		t.Errorf("WithOptimize(true) changed outputs:\n got: %s\nwant: %s", got, want)
	}
}
