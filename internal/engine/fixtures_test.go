package engine

import (
	"yat/internal/tree"
)

// brochure builds one SGML brochure tree following the paper's DTD.
// Suppliers are (name, address) pairs.
func brochure(num int64, title string, year int64, desc string, sups ...[2]string) *tree.Node {
	spplrs := tree.Sym("spplrs")
	for _, s := range sups {
		spplrs.Add(tree.Sym("supplier",
			tree.Sym("name", tree.Str(s[0])),
			tree.Sym("address", tree.Str(s[1]))))
	}
	return tree.Sym("brochure",
		tree.Sym("number", tree.IntLeaf(num)),
		tree.Sym("title", tree.Str(title)),
		tree.Sym("model", tree.IntLeaf(year)),
		tree.Sym("desc", tree.Str(desc)),
		spplrs,
	)
}

// fig3Store reproduces the input of Figure 3: two brochures for the
// Golf, sharing the "VW center" supplier.
func fig3Store() *tree.Store {
	s := tree.NewStore()
	s.Put(tree.PlainName("b1"), brochure(1, "Golf", 1995, "Sympa",
		[2]string{"VW center", "Bd Lenoir, 75005 Paris"}))
	s.Put(tree.PlainName("b2"), brochure(2, "Golf", 1997, "Sympa",
		[2]string{"VW2", "Bd Leblanc, 75015 Paris"},
		[2]string{"VW center", "Bd Lenoir, 75005 Paris"}))
	return s
}

// relationalStore builds the §3.2 relational database as trees, the
// form the relational wrapper produces.
func relationalStore() *tree.Store {
	s := tree.NewStore()
	s.Put(tree.PlainName("Rsuppliers"), tree.Sym("suppliers",
		tree.Sym("row",
			tree.Sym("sid", tree.IntLeaf(1)),
			tree.Sym("name", tree.Str("VW center")),
			tree.Sym("city", tree.Str("Paris")),
			tree.Sym("address", tree.Str("Bd Lenoir")),
			tree.Sym("tel", tree.Str("0144001122"))),
		tree.Sym("row",
			tree.Sym("sid", tree.IntLeaf(2)),
			tree.Sym("name", tree.Str("VW2")),
			tree.Sym("city", tree.Str("Paris")),
			tree.Sym("address", tree.Str("Bd Leblanc")),
			tree.Sym("tel", tree.Str("0144003344"))),
	))
	s.Put(tree.PlainName("Rcars"), tree.Sym("cars",
		tree.Sym("row",
			tree.Sym("cid", tree.IntLeaf(10)),
			tree.Sym("broch_num", tree.IntLeaf(1))),
		tree.Sym("row",
			tree.Sym("cid", tree.IntLeaf(20)),
			tree.Sym("broch_num", tree.IntLeaf(2))),
	))
	return s
}

// mergeStores combines entries from several stores into one.
func mergeStores(stores ...*tree.Store) *tree.Store {
	out := tree.NewStore()
	for _, s := range stores {
		for _, e := range s.Entries() {
			out.Put(e.Name, e.Tree)
		}
	}
	return out
}

func psupOID(name string) tree.Name {
	return tree.SkolemName("Psup", tree.String(name))
}

func pcarOID(brochureName string) tree.Name {
	return tree.SkolemName("Pcar", tree.Ref{Name: tree.PlainName(brochureName)})
}
