// Package engine implements the YATL interpreter: the five-phase rule
// semantics of §3.1 (pattern matching, external functions, predicate
// filtering, Skolem evaluation, output construction), rule hierarchies
// (§4.2), the static safety check for cyclic programs (§3.4) and the
// final dereferencing pass.
package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"yat/internal/tree"
)

// ParamType constrains one parameter of an external function. The
// zero value accepts any value.
type ParamType struct {
	Kinds []tree.Kind // empty: any
}

// Any accepts any value.
var Any = ParamType{}

// Atom accepts string, int, float and bool values.
var Atom = ParamType{Kinds: []tree.Kind{tree.KindString, tree.KindInt, tree.KindFloat, tree.KindBool}}

// Text accepts only string values.
var Text = ParamType{Kinds: []tree.Kind{tree.KindString}}

// Num accepts int and float values.
var Num = ParamType{Kinds: []tree.Kind{tree.KindInt, tree.KindFloat}}

// Sym accepts only symbol values.
var Sym = ParamType{Kinds: []tree.Kind{tree.KindSymbol}}

// Accepts reports whether v satisfies the parameter type.
func (p ParamType) Accepts(v tree.Value) bool {
	if len(p.Kinds) == 0 {
		return true
	}
	for _, k := range p.Kinds {
		if v.Kind() == k {
			return true
		}
	}
	return false
}

// IntType accepts only integer values.
var IntType = ParamType{Kinds: []tree.Kind{tree.KindInt}}

// BoolType accepts only boolean values.
var BoolType = ParamType{Kinds: []tree.Kind{tree.KindBool}}

// Func is a typed external function. The engine applies the type
// filter described in §3.1 ("external functions are typed ... a type
// filter is applied on the set of variable bindings before they are
// evaluated"): a binding whose arguments do not satisfy Params is
// silently dropped rather than raising an error. Result declares the
// type of the returned value; signature inference (§3.5) uses it to
// restrict the domains of let-bound variables.
type Func struct {
	Name   string
	Params []ParamType
	Result ParamType
	Fn     func(args []tree.Value) (tree.Value, error)
}

// Registry holds the external functions and boolean predicates
// available to a program run (§5's "external functions/predicates
// processing" module).
type Registry struct {
	funcs map[string]Func
}

// NewRegistry returns a registry preloaded with the built-in
// functions used by the paper's examples (city, zip, sameaddress,
// data_to_string, attr_label) plus generic string/arithmetic helpers.
func NewRegistry() *Registry {
	r := &Registry{funcs: make(map[string]Func)}
	for _, f := range builtins() {
		r.Register(f)
	}
	return r
}

// Register adds or replaces a function.
func (r *Registry) Register(f Func) { r.funcs[f.Name] = f }

// Lookup returns the function with the given name.
func (r *Registry) Lookup(name string) (Func, bool) {
	f, ok := r.funcs[name]
	return f, ok
}

// Fingerprint is a canonical description of the registry's surface:
// every function's name and type signature, sorted by name. Two
// registries with equal fingerprints expose the same callable names
// with the same type filters — the property the mediator's cache
// hashes rely on to detect that a Register between reloads may have
// changed what identical rule text computes. Function bodies cannot
// be fingerprinted, so replacing a function's implementation while
// keeping its signature is invisible here; Register a distinct name
// (or bump a version suffix) when that matters. A nil registry
// fingerprints as the default builtin set, matching how a run
// normalizes a nil Options.Registry.
func (r *Registry) Fingerprint() string {
	if r == nil {
		return defaultFingerprint()
	}
	names := make([]string, 0, len(r.funcs))
	for n := range r.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := r.funcs[n]
		b.WriteString(n)
		b.WriteByte('(')
		for i, p := range f.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(paramTypeKey(p))
		}
		b.WriteByte(')')
		b.WriteString(paramTypeKey(f.Result))
		b.WriteByte(';')
	}
	return b.String()
}

// paramTypeKey renders one parameter type canonically ("*" = any).
func paramTypeKey(p ParamType) string {
	if len(p.Kinds) == 0 {
		return "*"
	}
	parts := make([]string, len(p.Kinds))
	for i, k := range p.Kinds {
		parts[i] = k.String()
	}
	return strings.Join(parts, "|")
}

var (
	defaultFP     string
	defaultFPOnce sync.Once
)

// defaultFingerprint memoizes NewRegistry().Fingerprint(): the default
// builtin set is immutable, so computing it once is enough.
func defaultFingerprint() string {
	defaultFPOnce.Do(func() { defaultFP = NewRegistry().Fingerprint() })
	return defaultFP
}

// TypeCheck reports whether the arguments pass the function's type
// filter.
func (f Func) TypeCheck(args []tree.Value) bool {
	if len(args) != len(f.Params) {
		return false
	}
	for i, a := range args {
		if !f.Params[i].Accepts(a) {
			return false
		}
	}
	return true
}

// Call invokes the function after type filtering. The boolean result
// reports whether the type filter passed; err reports evaluation
// failure.
func (r *Registry) Call(name string, args []tree.Value) (val tree.Value, typed bool, err error) {
	f, ok := r.Lookup(name)
	if !ok {
		return nil, false, fmt.Errorf("engine: unknown external function %q", name)
	}
	if !f.TypeCheck(args) {
		return nil, false, nil
	}
	v, err := f.Fn(args)
	if err != nil {
		return nil, true, fmt.Errorf("engine: %s: %w", name, err)
	}
	return v, true, nil
}

// CallBool invokes a boolean predicate function.
func (r *Registry) CallBool(name string, args []tree.Value) (result, typed bool, err error) {
	v, typed, err := r.Call(name, args)
	if err != nil || !typed {
		return false, typed, err
	}
	b, ok := v.(tree.Bool)
	if !ok {
		return false, true, fmt.Errorf("engine: predicate %s returned non-boolean %s", name, v.Display())
	}
	return bool(b), true, nil
}

// ErrRaised is returned by the built-in raise function; the engine
// converts it into a run-time exception (§3.5's exception rule).
type ErrRaised struct {
	Msg string
}

func (e ErrRaised) Error() string { return "exception raised: " + e.Msg }

func builtins() []Func {
	return []Func{
		{
			// city("12 Bd Lenoir, 75005 Paris") = "Paris". The city is
			// the text after the zip code in the last comma-separated
			// segment.
			Name: "city", Params: []ParamType{Text}, Result: Text,
			Fn: func(args []tree.Value) (tree.Value, error) {
				_, city, err := splitAddress(string(args[0].(tree.String)))
				if err != nil {
					return nil, err
				}
				return tree.String(city), nil
			},
		},
		{
			// zip("12 Bd Lenoir, 75005 Paris") = 75005.
			Name: "zip", Params: []ParamType{Text}, Result: IntType,
			Fn: func(args []tree.Value) (tree.Value, error) {
				zip, _, err := splitAddress(string(args[0].(tree.String)))
				if err != nil {
					return nil, err
				}
				return tree.Int(zip), nil
			},
		},
		{
			// sameaddress(Add, City, Add2) reconciles the SGML address
			// with the relational (city, address) pair: true when the
			// normalized street+city agree.
			Name: "sameaddress", Params: []ParamType{Text, Text, Text}, Result: BoolType,
			Fn: func(args []tree.Value) (tree.Value, error) {
				full := string(args[0].(tree.String))
				city := string(args[1].(tree.String))
				street := string(args[2].(tree.String))
				return tree.Bool(addressMatches(full, city, street)), nil
			},
		},
		{
			// data_to_string renders any atomic datum as a string
			// (rule Web2).
			Name: "data_to_string", Params: []ParamType{Any}, Result: Text,
			Fn: func(args []tree.Value) (tree.Value, error) {
				return tree.String(tree.AtomString(args[0])), nil
			},
		},
		{
			// attr_label(name) = "name: " — the attribute caption used
			// by the Web rules.
			Name: "attr_label", Params: []ParamType{Sym}, Result: Text,
			Fn: func(args []tree.Value) (tree.Value, error) {
				return tree.String(string(args[0].(tree.Symbol)) + ": "), nil
			},
		},
		{
			Name: "concat", Params: []ParamType{Text, Text}, Result: Text,
			Fn: func(args []tree.Value) (tree.Value, error) {
				return tree.String(string(args[0].(tree.String)) + string(args[1].(tree.String))), nil
			},
		},
		{
			Name: "lower", Params: []ParamType{Text}, Result: Text,
			Fn: func(args []tree.Value) (tree.Value, error) {
				return tree.String(strings.ToLower(string(args[0].(tree.String)))), nil
			},
		},
		{
			Name: "upper", Params: []ParamType{Text}, Result: Text,
			Fn: func(args []tree.Value) (tree.Value, error) {
				return tree.String(strings.ToUpper(string(args[0].(tree.String)))), nil
			},
		},
		{
			Name: "length", Params: []ParamType{Text}, Result: IntType,
			Fn: func(args []tree.Value) (tree.Value, error) {
				return tree.Int(int64(len(args[0].(tree.String)))), nil
			},
		},
		{
			Name: "add", Params: []ParamType{Num, Num}, Result: Num,
			Fn: arith(func(a, b float64) float64 { return a + b }),
		},
		{
			Name: "sub", Params: []ParamType{Num, Num}, Result: Num,
			Fn: arith(func(a, b float64) float64 { return a - b }),
		},
		{
			Name: "mul", Params: []ParamType{Num, Num}, Result: Num,
			Fn: arith(func(a, b float64) float64 { return a * b }),
		},
		{
			Name: "to_string", Params: []ParamType{Any}, Result: Text,
			Fn: func(args []tree.Value) (tree.Value, error) {
				return tree.String(tree.AtomString(args[0])), nil
			},
		},
		{
			Name: "to_int", Params: []ParamType{Atom}, Result: IntType,
			Fn: func(args []tree.Value) (tree.Value, error) {
				switch v := args[0].(type) {
				case tree.Int:
					return v, nil
				case tree.Float:
					return tree.Int(int64(v)), nil
				case tree.Bool:
					if v {
						return tree.Int(1), nil
					}
					return tree.Int(0), nil
				case tree.String:
					var n int64
					var neg bool
					s := strings.TrimSpace(string(v))
					if strings.HasPrefix(s, "-") {
						neg = true
						s = s[1:]
					}
					if s == "" {
						return nil, fmt.Errorf("to_int: empty string")
					}
					for _, c := range s {
						if c < '0' || c > '9' {
							return nil, fmt.Errorf("to_int: %q is not a number", string(v))
						}
						n = n*10 + int64(c-'0')
					}
					if neg {
						n = -n
					}
					return tree.Int(n), nil
				}
				return nil, fmt.Errorf("to_int: unsupported kind")
			},
		},
		{
			// raise aborts the conversion with a run-time exception —
			// the action of the §3.5 exception rule.
			Name: "raise", Params: []ParamType{Any}, Result: Any,
			Fn: func(args []tree.Value) (tree.Value, error) {
				return nil, ErrRaised{Msg: args[0].Display()}
			},
		},
	}
}

func arith(op func(a, b float64) float64) func([]tree.Value) (tree.Value, error) {
	return func(args []tree.Value) (tree.Value, error) {
		a, aInt := asNum(args[0])
		b, bInt := asNum(args[1])
		res := op(a, b)
		if aInt && bInt {
			return tree.Int(int64(res)), nil
		}
		return tree.Float(res), nil
	}
}

func asNum(v tree.Value) (float64, bool) {
	switch n := v.(type) {
	case tree.Int:
		return float64(n), true
	case tree.Float:
		return float64(n), false
	}
	return 0, false
}

// splitAddress parses "street, ZIP City" into its zip and city parts.
func splitAddress(addr string) (zip int64, city string, err error) {
	i := strings.LastIndex(addr, ",")
	if i < 0 {
		return 0, "", fmt.Errorf("address %q has no comma-separated locality", addr)
	}
	locality := strings.TrimSpace(addr[i+1:])
	j := strings.IndexByte(locality, ' ')
	if j < 0 {
		return 0, "", fmt.Errorf("address %q has no zip/city pair", addr)
	}
	for _, c := range locality[:j] {
		if c < '0' || c > '9' {
			return 0, "", fmt.Errorf("address %q has malformed zip %q", addr, locality[:j])
		}
		zip = zip*10 + int64(c-'0')
	}
	return zip, strings.TrimSpace(locality[j+1:]), nil
}

// addressMatches reconciles the SGML full address against the
// relational (city, street) pair.
func addressMatches(full, city, street string) bool {
	nf := normalizeAddr(full)
	return strings.Contains(nf, normalizeAddr(street)) && strings.Contains(nf, normalizeAddr(city))
}

func normalizeAddr(s string) string {
	var b strings.Builder
	for _, c := range strings.ToLower(s) {
		if c == ' ' || c == ',' || c == '.' {
			continue
		}
		b.WriteRune(c)
	}
	return b.String()
}
