package engine

import (
	"sort"

	"yat/internal/pattern"
	"yat/internal/yatl"
)

// hierarchy organizes the rules of a program as the interpreter does
// in §4.2: rules are grouped by Skolem functor; within a group, rules
// whose input models are in a subtype (instantiation) relation
// conflict, and the more specific one is applied first — when it
// matches an input, the less specific ones are not applied to that
// input. Explicit `order A before B` statements add user-enforced
// edges.
type hierarchy struct {
	// groups lists the non-exception rules per functor, most specific
	// first (ties broken by declaration order).
	groups map[string][]*yatl.Rule
	// functorOrder preserves first-occurrence order of functors.
	functorOrder []string
	// blocks maps a rule name to the names of the less specific rules
	// it shadows when it matches.
	blocks map[string][]string
	// exceptions are the exception rules of the program.
	exceptions []*yatl.Rule
}

// buildHierarchy computes the rule hierarchy. model provides the
// pattern definitions used to resolve pattern-domain variables during
// specificity comparison (may be nil).
func buildHierarchy(prog *yatl.Program, model *pattern.Model) *hierarchy {
	h := &hierarchy{groups: map[string][]*yatl.Rule{}, blocks: map[string][]string{}}
	declIndex := map[string]int{}
	for i, r := range prog.Rules {
		declIndex[r.Name] = i
		if r.Exception {
			h.exceptions = append(h.exceptions, r)
			continue
		}
		f := r.Head.Functor
		if _, ok := h.groups[f]; !ok {
			h.functorOrder = append(h.functorOrder, f)
		}
		h.groups[f] = append(h.groups[f], r)
	}

	// Explicit user orderings (apply regardless of functor grouping).
	userBefore := map[[2]string]bool{}
	for _, o := range prog.Orders {
		userBefore[[2]string{o.Before, o.After}] = true
	}

	for _, f := range h.functorOrder {
		rules := h.groups[f]
		// strict(a, b): rule a is strictly more specific than b. Two
		// rules conflict only when they code for the same set of
		// output patterns: same Skolem functor (the grouping) and the
		// same argument shape — an identity-keyed rule (argument =
		// body pattern variable, like Web1–Web6) never shadows a
		// data-keyed one (argument = data variable, like the composed
		// HtmlPage(SN)).
		strict := func(a, b *yatl.Rule) bool {
			if userBefore[[2]string{a.Name, b.Name}] {
				return true
			}
			if userBefore[[2]string{b.Name, a.Name}] {
				return false
			}
			if argShape(a) != argShape(b) {
				return false
			}
			ab := bodyInstanceOf(a, b, model)
			ba := bodyInstanceOf(b, a, model)
			return ab && !ba
		}
		for _, a := range rules {
			for _, b := range rules {
				if a != b && strict(a, b) {
					h.blocks[a.Name] = append(h.blocks[a.Name], b.Name)
				}
			}
		}
		// Order the group: a before b when a is strictly more
		// specific; ties by declaration order. Topological by
		// counting dominators is enough because strictness is a
		// strict partial order.
		sort.SliceStable(rules, func(i, j int) bool {
			a, b := rules[i], rules[j]
			if strict(a, b) {
				return true
			}
			if strict(b, a) {
				return false
			}
			return declIndex[a.Name] < declIndex[b.Name]
		})
		h.groups[f] = rules
	}
	return h
}

// argShape classifies a rule's Skolem key structure: per argument,
// whether it is the input's identity (the body pattern variable), a
// data variable, or a constant. Rules with different shapes mint
// disjoint key spaces and do not conflict.
func argShape(r *yatl.Rule) string {
	identity := map[string]bool{}
	for _, bp := range r.Body {
		identity[bp.Var] = true
	}
	shape := make([]byte, len(r.Head.Args))
	for i, a := range r.Head.Args {
		switch {
		case !a.IsVar:
			shape[i] = 'c'
		case identity[a.Var]:
			shape[i] = 'i'
		default:
			shape[i] = 'd'
		}
	}
	return string(shape)
}

// bodyInstanceOf reports whether rule a's input model is an instance
// of rule b's (a is at least as specific as b). Only rules with the
// same body-pattern count are comparable; each body tree of a must
// instantiate the corresponding tree of b under the loose rule-body
// relation.
func bodyInstanceOf(a, b *yatl.Rule, model *pattern.Model) bool {
	if len(a.Body) != len(b.Body) {
		return false
	}
	for i := range a.Body {
		if !pattern.TreeInstanceOfLoose(model, a.Body[i].Tree, model, b.Body[i].Tree) {
			return false
		}
	}
	return true
}

// Hierarchy is the exported view of a program's rule hierarchy, used
// by the compose package (symbolic evaluation follows the same
// most-specific-first dispatch) and by the yatviz tool.
type Hierarchy struct {
	// Groups lists the non-exception rules per Skolem functor, most
	// specific first.
	Groups map[string][]*yatl.Rule
	// FunctorOrder preserves first-occurrence order of functors.
	FunctorOrder []string
	// Blocks maps a rule name to the less specific rules it shadows.
	Blocks map[string][]string
	// Exceptions are the program's exception rules.
	Exceptions []*yatl.Rule
	// Conflicts lists the (specific, general) rule pairs in conflict.
	Conflicts [][2]string
}

// BuildHierarchy computes the §4.2 rule hierarchy of a program. The
// model resolves pattern-domain variables during the specificity
// comparison and may be nil.
func BuildHierarchy(prog *yatl.Program, model *pattern.Model) *Hierarchy {
	h := buildHierarchy(prog, model)
	return &Hierarchy{
		Groups:       h.groups,
		FunctorOrder: h.functorOrder,
		Blocks:       h.blocks,
		Exceptions:   h.exceptions,
		Conflicts:    conflictPairs(h),
	}
}

// conflictPairs returns the pairs (specific, general) of rules in
// conflict per the paper's definition: same Skolem functor and a
// subtype relation between input models. It is exposed for testing
// and for the yatviz tool.
func conflictPairs(h *hierarchy) [][2]string {
	var out [][2]string
	for _, f := range h.functorOrder {
		for _, r := range h.groups[f] {
			for _, blocked := range h.blocks[r.Name] {
				out = append(out, [2]string{r.Name, blocked})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
