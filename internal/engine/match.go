package engine

import (
	"sync"

	"yat/internal/pattern"
	"yat/internal/tree"
)

// Matcher matches body pattern trees against ground data, producing
// the sets of variable bindings of rule phase 1 (§3.1). A star edge
// iterates: each child it covers yields one alternative binding, so a
// brochure with two suppliers produces two bindings for Rule 1
// (Figure 3).
type Matcher struct {
	// Store resolves references when checking pattern-domain
	// conformance of subtrees. Optional.
	Store *tree.Store
	// Model resolves pattern-domain variables (e.g. P2 : Ptype).
	// When nil, or when the named pattern is undefined, the domain
	// check is skipped — typing in YAT "is in no way constraining"
	// (§3.5).
	Model *pattern.Model

	once    sync.Once
	checker *pattern.ConformanceChecker // lazy, caches conformance results
}

// conformance returns the cached conformance checker (the store is
// fixed for the duration of a run, so the conversion happens once).
// The engine's worker pool matches concurrently through one Matcher,
// so both the lazy construction and the checker itself are
// goroutine-safe.
func (m *Matcher) conformance() *pattern.ConformanceChecker {
	m.once.Do(func() {
		m.checker = pattern.NewConformanceChecker(m.Store, m.Model)
	})
	return m.checker
}

// MatchTree returns all variable bindings under which tree n matches
// pattern pt. An empty result means no match.
func (m *Matcher) MatchTree(pt *pattern.PTree, n *tree.Node) []Binding {
	return m.matchNode(pt, n)
}

// Matches reports whether the pattern matches at all.
func (m *Matcher) Matches(pt *pattern.PTree, n *tree.Node) bool {
	return len(m.matchNode(pt, n)) > 0
}

func (m *Matcher) matchNode(pt *pattern.PTree, n *tree.Node) []Binding {
	switch label := pt.Label.(type) {
	case pattern.Const:
		if !n.Label.Equal(label.Value) {
			return nil
		}
		return m.matchEdges(pt.Edges, n.Children)

	case pattern.Var:
		if len(pt.Edges) == 0 {
			// Leaf variable: binds the whole subtree — the label for
			// plain leaves, the reference for reference leaves, the
			// wrapped subtree otherwise.
			val := subtreeValue(n)
			if !m.domainAdmits(label.Domain, n, val) {
				return nil
			}
			return []Binding{{label.Name: val}}
		}
		// Internal variable: binds the node label only.
		if label.Domain.IsPattern() {
			return nil // pattern variables are leaves
		}
		if n.IsRef() {
			return nil // a reference leaf has no label to bind
		}
		if !label.Domain.IsAny() && !label.Domain.Contains(n.Label) {
			return nil
		}
		bs := m.matchEdges(pt.Edges, n.Children)
		return bindAll(bs, label.Name, n.Label)

	case pattern.PatRef:
		if label.Ref {
			// &P(args): the input must be a reference leaf. If the
			// model defines P, the referenced tree must conform.
			name, ok := n.RefName()
			if !ok {
				return nil
			}
			if !m.conformsRef(name, label.Name) {
				return nil
			}
			return matchSkolemArgs(label, name)
		}
		// ^P: the subtree must be an instance of P (when checkable).
		if m.Model != nil {
			if _, defined := m.Model.Get(label.Name); defined {
				if !m.conformance().Conforms(n, label.Name) {
					return nil
				}
			}
		}
		return []Binding{{}}
	}
	return nil
}

// subtreeValue is the value a leaf variable binds when matched
// against node n.
func subtreeValue(n *tree.Node) tree.Value {
	if name, ok := n.RefName(); ok {
		return tree.Ref{Name: name}
	}
	if n.IsLeaf() {
		return n.Label
	}
	return tree.TreeVal{Root: n}
}

// domainAdmits checks a leaf variable's domain against the subtree.
func (m *Matcher) domainAdmits(d pattern.Domain, n *tree.Node, val tree.Value) bool {
	if d.IsAny() {
		return true
	}
	if d.IsRefPattern() {
		// &P: the value must be a reference; its target must conform
		// when the pattern and store are known.
		name, isRef := n.RefName()
		if !isRef {
			return false
		}
		if m.Model == nil || m.Store == nil {
			return true
		}
		if _, defined := m.Model.Get(d.Pattern); !defined {
			return true
		}
		target, ok := m.Store.Get(name)
		if !ok {
			return false
		}
		return m.conformance().Conforms(target, d.Pattern)
	}
	if d.IsPattern() {
		if m.Model == nil {
			return true
		}
		if _, defined := m.Model.Get(d.Pattern); !defined {
			return true
		}
		// A pattern domain may be satisfied through a reference (e.g.
		// P2 : Ptype matching &s1 because Ptype has the &Pclass
		// branch); the checker resolves it via the store model.
		return m.conformance().Conforms(n, d.Pattern)
	}
	// Kind/symbol domains admit only leaf constants.
	if !n.IsLeaf() || n.IsRef() {
		return false
	}
	return d.Contains(val)
}

// conformsRef checks that the tree referenced by name conforms to
// pattern patName (skipped when unknown or untyped).
func (m *Matcher) conformsRef(name tree.Name, patName string) bool {
	if m.Model == nil {
		return true
	}
	if _, defined := m.Model.Get(patName); !defined {
		return true
	}
	if m.Store == nil {
		return true
	}
	target, ok := m.Store.Get(name)
	if !ok {
		return false
	}
	return m.conformance().Conforms(target, patName)
}

// matchSkolemArgs binds the argument variables of a &P(args) pattern
// against the Skolem name of the matched reference. Without
// arguments, any reference is accepted. With arguments, the reference
// must have been minted by the same functor with matching arity.
func matchSkolemArgs(ref pattern.PatRef, name tree.Name) []Binding {
	if len(ref.Args) == 0 {
		return []Binding{{}}
	}
	if name.Functor != ref.Name || len(name.Args) != len(ref.Args) {
		return nil
	}
	b := Binding{}
	for i, a := range ref.Args {
		v := name.Args[i]
		if a.IsVar {
			if prev, ok := b[a.Var]; ok {
				if !prev.Equal(v) {
					return nil
				}
				continue
			}
			b[a.Var] = v
			continue
		}
		if !a.Const.Equal(v) {
			return nil
		}
	}
	return []Binding{b}
}

func bindAll(bs []Binding, name string, val tree.Value) []Binding {
	out := bs[:0]
	for _, b := range bs {
		if prev, ok := b[name]; ok {
			if !prev.Equal(val) {
				continue
			}
			out = append(out, b)
			continue
		}
		nb := b.Clone()
		nb[name] = val
		out = append(out, nb)
	}
	return out
}

// matchEdges matches the children sequence against the edge sequence.
// One edges consume exactly one child; star-like edges consume a
// contiguous run and iterate over it (each covered child contributes
// alternative bindings). Index edges additionally bind the child's
// 1-based position. Alternatives from different edges combine by
// consistent merge.
func (m *Matcher) matchEdges(edges []pattern.Edge, kids []*tree.Node) []Binding {
	return m.matchEdgesAt(edges, kids, 0)
}

func (m *Matcher) matchEdgesAt(edges []pattern.Edge, kids []*tree.Node, offset int) []Binding {
	if len(edges) == 0 {
		if len(kids) == 0 {
			return []Binding{{}}
		}
		return nil
	}
	e := edges[0]
	if e.Occ == pattern.OccOne {
		if len(kids) == 0 {
			return nil
		}
		head := m.matchNode(e.To, kids[0])
		if len(head) == 0 {
			return nil
		}
		rest := m.matchEdgesAt(edges[1:], kids[1:], offset+1)
		return product(head, rest)
	}

	// Star-like edge: try run lengths 0..len(kids). Per-child match
	// lists are computed incrementally so each child is matched once.
	// When the star subtree binds variables, an empty run contributes
	// no valuation (a brochure without suppliers yields no binding
	// for SN, hence no output — classical total-valuation semantics);
	// a variable-free star is a pure structural constraint.
	hasVars := len(e.To.Vars()) > 0 || e.Occ == pattern.OccIndex
	var out []Binding
	childBindings := make([][]Binding, 0, len(kids))
	for k := 0; ; k++ {
		rest := m.matchEdgesAt(edges[1:], kids[k:], offset+k)
		if len(rest) > 0 {
			switch {
			case !hasVars:
				out = append(out, rest...)
			case k > 0:
				run := m.runBindings(e, childBindings, offset)
				out = append(out, product(run, rest)...)
			}
		}
		if k == len(kids) {
			break
		}
		bs := m.matchNode(e.To, kids[k])
		if len(bs) == 0 {
			break // the run cannot be extended past a non-matching child
		}
		childBindings = append(childBindings, bs)
	}
	return out
}

// runBindings assembles the alternatives contributed by a star-like
// edge covering the children whose match lists are given. Index edges
// extend each alternative with the child position.
func (m *Matcher) runBindings(e pattern.Edge, perChild [][]Binding, offset int) []Binding {
	var out []Binding
	for i, bs := range perChild {
		for _, b := range bs {
			nb := b
			if e.Occ == pattern.OccIndex && e.Index != "" {
				nb = b.Clone()
				nb[e.Index] = tree.Int(int64(offset + i + 1))
			}
			out = append(out, nb)
		}
	}
	return out
}
