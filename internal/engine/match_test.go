package engine

import (
	"testing"

	"yat/internal/pattern"
	"yat/internal/tree"
	"yat/internal/yatl"
)

func pat(t *testing.T, src string) *pattern.PTree {
	t.Helper()
	pt, err := yatl.ParsePattern(src)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestMatchConstAndVar(t *testing.T) {
	m := &Matcher{}
	n := tree.MustParse(`a < b < 1 >, c < "x" > >`)
	bs := m.MatchTree(pat(t, `a < -> b -> X, -> c -> Y >`), n)
	if len(bs) != 1 {
		t.Fatalf("bindings = %d, want 1", len(bs))
	}
	if !bs[0]["X"].Equal(tree.Int(1)) || !bs[0]["Y"].Equal(tree.String("x")) {
		t.Errorf("binding = %v", bs[0])
	}
	if m.Matches(pat(t, `a -> wrong`), n) {
		t.Error("wrong structure should not match")
	}
}

func TestMatchStarIterates(t *testing.T) {
	m := &Matcher{}
	n := tree.MustParse(`l < i < 1 >, i < 2 >, i < 3 > >`)
	bs := m.MatchTree(pat(t, `l -*> i -> X`), n)
	if len(bs) != 3 {
		t.Fatalf("bindings = %d, want 3", len(bs))
	}
	for i, want := range []int64{1, 2, 3} {
		if !bs[i]["X"].Equal(tree.Int(want)) {
			t.Errorf("binding %d = %v", i, bs[i])
		}
	}
}

func TestMatchStarRequiresAllChildrenMatch(t *testing.T) {
	m := &Matcher{}
	n := tree.MustParse(`l < i < 1 >, other < 2 > >`)
	if m.Matches(pat(t, `l -*> i -> X`), n) {
		t.Error("a non-matching child inside the star run should fail the pattern")
	}
}

func TestMatchStarEmptyWithVars(t *testing.T) {
	m := &Matcher{}
	n := tree.MustParse(`l`)
	// Star over a variable subtree with no children: no valuation of
	// X exists, so no bindings.
	if bs := m.MatchTree(pat(t, `l -*> i -> X`), n); len(bs) != 0 {
		t.Errorf("empty star with vars should give no bindings, got %v", bs)
	}
	// Without variables the star is a pure structural constraint.
	if !m.Matches(pat(t, `l -*> i`), n) {
		t.Error("variable-free empty star should match")
	}
}

func TestMatchMixedOneAndStar(t *testing.T) {
	m := &Matcher{}
	n := tree.MustParse(`r < head < 0 >, i < 1 >, i < 2 >, tail < 9 > >`)
	bs := m.MatchTree(pat(t, `r < -> head -> H, -*> i -> X, -> tail -> T >`), n)
	if len(bs) != 2 {
		t.Fatalf("bindings = %d, want 2: %v", len(bs), bs)
	}
	for _, b := range bs {
		if !b["H"].Equal(tree.Int(0)) || !b["T"].Equal(tree.Int(9)) {
			t.Errorf("binding = %v", b)
		}
	}
}

func TestMatchIndexBindsPositions(t *testing.T) {
	m := &Matcher{}
	n := tree.MustParse(`v < a, b, c >`)
	bs := m.MatchTree(pat(t, `v -#I> X`), n)
	if len(bs) != 3 {
		t.Fatalf("bindings = %d", len(bs))
	}
	for i, b := range bs {
		if !b["I"].Equal(tree.Int(int64(i + 1))) {
			t.Errorf("binding %d index = %v", i, b["I"])
		}
	}
}

func TestMatchNestedIndexes(t *testing.T) {
	m := &Matcher{}
	n := tree.MustParse(`m < r < x < 1 >, x < 2 > >, r < x < 3 >, x < 4 > > >`)
	bs := m.MatchTree(pat(t, `m -#I> R -#J> x -> A`), n)
	if len(bs) != 4 {
		t.Fatalf("bindings = %d, want 4", len(bs))
	}
	// Positions are 1-based per parent.
	found := map[string]bool{}
	for _, b := range bs {
		found[b["I"].Display()+","+b["J"].Display()+"="+b["A"].Display()] = true
	}
	for _, want := range []string{"1,1=1", "1,2=2", "2,1=3", "2,2=4"} {
		if !found[want] {
			t.Errorf("missing combination %s in %v", want, found)
		}
	}
}

func TestMatchRepeatedVariableMustAgree(t *testing.T) {
	m := &Matcher{}
	same := tree.MustParse(`p < a < 1 >, b < 1 > >`)
	diff := tree.MustParse(`p < a < 1 >, b < 2 > >`)
	pt := pat(t, `p < -> a -> X, -> b -> X >`)
	if !m.Matches(pt, same) {
		t.Error("equal values should match repeated variable")
	}
	if m.Matches(pt, diff) {
		t.Error("distinct values should not match repeated variable")
	}
}

func TestMatchLeafVarBindsSubtree(t *testing.T) {
	m := &Matcher{}
	n := tree.MustParse(`a < b < c < 1 > > >`)
	bs := m.MatchTree(pat(t, `a -> X`), n)
	if len(bs) != 1 {
		t.Fatal("no match")
	}
	tv, ok := bs[0]["X"].(tree.TreeVal)
	if !ok || !tv.Root.Equal(tree.MustParse(`b < c < 1 > >`)) {
		t.Errorf("X = %v, want subtree", bs[0]["X"])
	}
}

func TestMatchLeafVarBindsRef(t *testing.T) {
	m := &Matcher{}
	n := tree.MustParse(`a -> &s1`)
	bs := m.MatchTree(pat(t, `a -> X`), n)
	if len(bs) != 1 {
		t.Fatal("no match")
	}
	if _, ok := bs[0]["X"].(tree.Ref); !ok {
		t.Errorf("X = %v, want Ref", bs[0]["X"])
	}
}

func TestMatchDomains(t *testing.T) {
	m := &Matcher{}
	str := tree.MustParse(`a < "x" >`)
	num := tree.MustParse(`a < 5 >`)
	pt := pat(t, `a -> X : string`)
	if !m.Matches(pt, str) || m.Matches(pt, num) {
		t.Error("string domain filter wrong")
	}
	symPat := pat(t, `X : (set|bag) -*> Y`)
	if !m.Matches(symPat, tree.MustParse(`set < 1, 2 >`)) {
		t.Error("(set|bag) should match set node")
	}
	if m.Matches(symPat, tree.MustParse(`list < 1, 2 >`)) {
		t.Error("(set|bag) should not match list node")
	}
}

func TestMatchPatternDomainWithModel(t *testing.T) {
	store := pattern.GolfStore()
	m := &Matcher{Store: store, Model: pattern.ODMGModel()}
	c1, _ := store.Get(tree.PlainName("c1"))
	// Attributes of a class object all have Ptype-conformant values.
	bs := m.MatchTree(pat(t, `class -> Class_name -*> Att -> P2 : Ptype`), c1)
	if len(bs) != 3 {
		t.Fatalf("bindings = %d, want 3 (name, desc, suppliers)", len(bs))
	}
	// A non-conforming attribute value fails the whole pattern: the
	// star run must cover every child of the class node (strict
	// ordered-sequence semantics — "no conversion will be performed
	// on it, but no error will occur", §3.5).
	broken := c1.Clone()
	broken.Children[0].Children[0].Children[0] = tree.Sym("weird", tree.Sym("deep", tree.Sym("leaf")))
	bs = m.MatchTree(pat(t, `class -> Class_name -*> Att -> P2 : Ptype`), broken)
	if len(bs) != 0 {
		t.Fatalf("bindings = %d, want 0 for a non-ODMG object", len(bs))
	}
}

func TestMatchRefPattern(t *testing.T) {
	m := &Matcher{}
	refLeaf := tree.MustParse(`set < &s1, &s2 >`)
	bs := m.MatchTree(pat(t, `set -*> &Psup`), refLeaf)
	if len(bs) != 1 {
		// No variables under the star: single structural binding.
		t.Fatalf("bindings = %d, want 1", len(bs))
	}
	if m.Matches(pat(t, `set -*> &Psup`), tree.MustParse(`set < plain >`)) {
		t.Error("non-reference child should not match &P")
	}
}

func TestMatchSkolemArgsBinding(t *testing.T) {
	m := &Matcher{}
	n := tree.New(tree.Symbol("set"),
		tree.RefLeaf(tree.SkolemName("Psup", tree.String("VW"))),
		tree.RefLeaf(tree.SkolemName("Psup", tree.String("Audi"))))
	bs := m.MatchTree(pat(t, `set -*> &Psup(SN)`), n)
	if len(bs) != 2 {
		t.Fatalf("bindings = %d, want 2", len(bs))
	}
	if !bs[0]["SN"].Equal(tree.String("VW")) || !bs[1]["SN"].Equal(tree.String("Audi")) {
		t.Errorf("bindings = %v", bs)
	}
	// A reference minted by another functor does not match when args
	// are requested.
	other := tree.New(tree.Symbol("set"), tree.RefLeaf(tree.SkolemName("Pcar", tree.String("VW"))))
	if m.Matches(pat(t, `set -*> &Psup(SN)`), other) {
		t.Error("wrong functor should not match &Psup(SN)")
	}
}

func TestMatchMultipleStarsBacktrack(t *testing.T) {
	m := &Matcher{}
	n := tree.MustParse(`s < a < 1 >, a < 2 >, b < 3 >, b < 4 > >`)
	bs := m.MatchTree(pat(t, `s < -*> a -> X, -*> b -> Y >`), n)
	// 2 a-alternatives × 2 b-alternatives.
	if len(bs) != 4 {
		t.Fatalf("bindings = %d, want 4: %v", len(bs), bs)
	}
}

func TestHierarchyConflicts(t *testing.T) {
	prog := yatl.MustParse(yatl.WebProgramSource)
	model, _ := prog.Model("ODMG")
	h := buildHierarchy(prog, model)
	pairs := conflictPairs(h)
	want := map[[2]string]bool{
		{"Web3", "Web2"}: true,
		{"Web4", "Web2"}: true,
		{"Web5", "Web2"}: true,
		{"Web6", "Web2"}: true,
	}
	if len(pairs) != len(want) {
		t.Fatalf("conflicts = %v, want %v", pairs, want)
	}
	for _, p := range pairs {
		if !want[p] {
			t.Errorf("unexpected conflict %v", p)
		}
	}
	// Group order: every specific rule precedes Web2.
	group := h.groups["HtmlElement"]
	pos := map[string]int{}
	for i, r := range group {
		pos[r.Name] = i
	}
	for _, specific := range []string{"Web3", "Web4", "Web5", "Web6"} {
		if pos[specific] >= pos["Web2"] {
			t.Errorf("%s should precede Web2 in the hierarchy", specific)
		}
	}
}

func TestHierarchyUserOrder(t *testing.T) {
	src := `
program p
order B before A
rule A {
  head F(X) = out -> V
  from X = in -> V
}
rule B {
  head F(X) = out2 -> V
  from X = in -> V
}
`
	prog := yatl.MustParse(src)
	h := buildHierarchy(prog, nil)
	group := h.groups["F"]
	if group[0].Name != "B" {
		t.Errorf("user order should put B first, got %s", group[0].Name)
	}
	if len(h.blocks["B"]) != 1 || h.blocks["B"][0] != "A" {
		t.Errorf("B should block A: %v", h.blocks)
	}
}

func TestSafetyAcceptsAcyclic(t *testing.T) {
	for _, src := range []string{yatl.SGMLToODMGSource, yatl.SGMLToODMGPrimeSource} {
		if err := CheckSafety(yatl.MustParse(src)); err != nil {
			t.Errorf("acyclic program rejected: %v", err)
		}
	}
}

func TestSafetyRejectsCyclic(t *testing.T) {
	if err := CheckSafety(yatl.MustParse(yatl.CyclicProgramSource)); err == nil {
		t.Error("cyclic program accepted")
	}
}

func TestSafetySelfLoopRequiresSafeRecursion(t *testing.T) {
	// Recursion on the whole input (not a proper subtree) is unsafe.
	unsafe := `
program p
rule R {
  head F(X) = wrap -> ^F(X)
  from X = node -*> Y
}
`
	if err := CheckSafety(yatl.MustParse(unsafe)); err == nil {
		t.Error("self-recursion on the whole input should be rejected")
	}
	// Recursion on a proper subtree with the body variable as sole
	// Skolem parameter is safe.
	safe := `
program p
rule R {
  head F(X) = wrap -*> ^F(Y)
  from X = node -*> Y
}
`
	if err := CheckSafety(yatl.MustParse(safe)); err != nil {
		t.Errorf("safe-recursive program rejected: %v", err)
	}
	// A data variable as the Skolem parameter breaks the condition.
	badParam := `
program p
rule R {
  head F(V) = wrap -*> ^F(Y)
  from X = node < -> V, -*> i -> Y >
}
`
	if err := CheckSafety(yatl.MustParse(badParam)); err == nil {
		t.Error("non-body-variable Skolem parameter should be rejected")
	}
}

func TestSafetyIndirectCycle(t *testing.T) {
	src := `
program p
rule A {
  head F(SN) = fa -> ^G(SN)
  from X = a -> SN
}
rule B {
  head G(SN) = fb -> ^F(SN)
  from X = b -> SN
}
`
	if err := CheckSafety(yatl.MustParse(src)); err == nil {
		t.Error("two-step deref cycle should be rejected")
	}
	// Replacing one deref by a reference breaks the cycle.
	okSrc := `
program p
rule A {
  head F(SN) = fa -> &G(SN)
  from X = a -> SN
}
rule B {
  head G(SN) = fb -> ^F(SN)
  from X = b -> SN
}
`
	if err := CheckSafety(yatl.MustParse(okSrc)); err != nil {
		t.Errorf("reference should break the cycle: %v", err)
	}
}

func TestBindingMergeAndJoin(t *testing.T) {
	a := Binding{"X": tree.Int(1), "Y": tree.String("a")}
	b := Binding{"Y": tree.String("a"), "Z": tree.Int(2)}
	m, ok := a.Merge(b)
	if !ok || len(m) != 3 {
		t.Errorf("merge = %v, %v", m, ok)
	}
	c := Binding{"Y": tree.String("other")}
	if _, ok := a.Merge(c); ok {
		t.Error("conflicting merge should fail")
	}

	as := []Binding{{"K": tree.Int(1), "V": tree.String("a")}, {"K": tree.Int(2), "V": tree.String("b")}}
	bs := []Binding{{"K": tree.Int(2), "W": tree.String("w")}, {"K": tree.Int(3), "W": tree.String("x")}}
	j := hashJoin(as, bs)
	if len(j) != 1 || !j[0]["V"].Equal(tree.String("b")) {
		t.Errorf("join = %v", j)
	}
	// No shared vars → Cartesian product.
	cs := []Binding{{"Q": tree.Int(9)}}
	if got := hashJoin(as, cs); len(got) != 2 {
		t.Errorf("cartesian join = %v", got)
	}
}

func TestRegistryBuiltins(t *testing.T) {
	r := NewRegistry()
	v, typed, err := r.Call("city", []tree.Value{tree.String("12 Bd Lenoir, 75005 Paris")})
	if err != nil || !typed || !v.Equal(tree.String("Paris")) {
		t.Errorf("city = %v, %v, %v", v, typed, err)
	}
	v, _, _ = r.Call("zip", []tree.Value{tree.String("12 Bd Lenoir, 75005 Paris")})
	if !v.Equal(tree.Int(75005)) {
		t.Errorf("zip = %v", v)
	}
	// Type filter: an int is not a Text argument.
	_, typed, err = r.Call("city", []tree.Value{tree.Int(5)})
	if err != nil || typed {
		t.Errorf("type filter should reject without error: %v %v", typed, err)
	}
	ok, typed, err := r.CallBool("sameaddress", []tree.Value{
		tree.String("12 Bd Lenoir, 75005 Paris"), tree.String("Paris"), tree.String("Bd Lenoir")})
	if err != nil || !typed || !ok {
		t.Errorf("sameaddress = %v %v %v", ok, typed, err)
	}
	ok, _, _ = r.CallBool("sameaddress", []tree.Value{
		tree.String("12 Bd Lenoir, 75005 Paris"), tree.String("Lyon"), tree.String("Bd Lenoir")})
	if ok {
		t.Error("different city should not match")
	}
	if _, _, err := r.Call("nosuch", nil); err == nil {
		t.Error("unknown function should error")
	}
	v, _, err = r.Call("attr_label", []tree.Value{tree.Symbol("name")})
	if err != nil || !v.Equal(tree.String("name: ")) {
		t.Errorf("attr_label = %v %v", v, err)
	}
}

func TestRegistryArithAndStrings(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		fn   string
		args []tree.Value
		want tree.Value
	}{
		{"add", []tree.Value{tree.Int(2), tree.Int(3)}, tree.Int(5)},
		{"add", []tree.Value{tree.Int(2), tree.Float(0.5)}, tree.Float(2.5)},
		{"sub", []tree.Value{tree.Int(7), tree.Int(3)}, tree.Int(4)},
		{"mul", []tree.Value{tree.Int(4), tree.Int(3)}, tree.Int(12)},
		{"concat", []tree.Value{tree.String("a"), tree.String("b")}, tree.String("ab")},
		{"lower", []tree.Value{tree.String("AbC")}, tree.String("abc")},
		{"upper", []tree.Value{tree.String("AbC")}, tree.String("ABC")},
		{"length", []tree.Value{tree.String("abcd")}, tree.Int(4)},
		{"to_int", []tree.Value{tree.String("42")}, tree.Int(42)},
		{"to_int", []tree.Value{tree.String("-7")}, tree.Int(-7)},
		{"to_int", []tree.Value{tree.Float(3.9)}, tree.Int(3)},
		{"to_int", []tree.Value{tree.Bool(true)}, tree.Int(1)},
		{"to_string", []tree.Value{tree.Int(9)}, tree.String("9")},
		{"data_to_string", []tree.Value{tree.String("x")}, tree.String("x")},
	}
	for _, c := range cases {
		v, typed, err := r.Call(c.fn, c.args)
		if err != nil || !typed || !v.Equal(c.want) {
			t.Errorf("%s(%v) = %v (%v, %v), want %v", c.fn, c.args, v, typed, err, c.want)
		}
	}
	if _, _, err := r.Call("to_int", []tree.Value{tree.String("abc")}); err == nil {
		t.Error("to_int on non-number should error")
	}
	if _, _, err := r.Call("raise", []tree.Value{tree.String("boom")}); err == nil {
		t.Error("raise should error")
	}
}
