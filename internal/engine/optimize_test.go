package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"yat/internal/trace"
	"yat/internal/tree"
	"yat/internal/workload"
	"yat/internal/yatl"
)

// deadMixSource exercises every pruning path at once: a never-firing
// rule in a singleton group (prunable), a never-firing rule pinned by
// an order constraint (not prunable), a live rule, and an unreachable
// two-rule demand cycle. The optimizer must skip and prune without
// changing a single output byte.
const deadMixSource = `
program deadmix

rule Live {
  head Plive(X) = o -> v -> X
  from P = alpha < -> k -> X : string >
}

rule DeadAlone {
  head Pdead(X) = o -> v -> X
  from P = alpha < -> k -> X : string >
  where 1 == 2
}

rule DeadOrdered {
  head Pord(X) = o -> v -> X
  from P = alpha < -> k -> X : string >
  where 2 < 1
}

rule OtherOrdered {
  head Poth(X) = o -> w -> X
  from P = alpha < -> k -> X : string >
}

rule CycA {
  head Pca(X) = out -> v -{}> &Pcb(X)
  from P = alpha < -> k -> X : string >
}

rule CycB {
  head Pcb(X) = out -> v -{}> &Pca(X)
  from P = alpha < -> k -> X : string >
}

order DeadOrdered before OtherOrdered
`

// warnHeavySource drops inputs through a failing external function, so
// every run produces a dense warning stream whose order must survive
// optimization.
const warnHeavySource = `
program warny
rule W {
  head Pz(X) = z -> Z
  from X = addr -> A
  let Z = zip(A)
}
`

func warnHeavyStore() *tree.Store {
	s := tree.NewStore()
	for i := 1; i <= 12; i++ {
		addr := fmt.Sprintf("street %d, 7500%d Paris", i, i%10)
		if i%3 == 0 {
			addr = fmt.Sprintf("malformed %d", i) // no comma: zip() errors
		}
		s.Put(tree.PlainName(fmt.Sprintf("a%d", i)), tree.Sym("addr", tree.Str(addr)))
	}
	return s
}

func alphaStore(n int) *tree.Store {
	s := tree.NewStore()
	for i := 0; i < n; i++ {
		s.Put(tree.PlainName(fmt.Sprintf("in%d", i)),
			tree.Sym("alpha", tree.Sym("k", tree.Str(fmt.Sprintf("v%d", i)))))
	}
	return s
}

// optimizeCases is the golden-equivalence corpus: every engine
// workload the test suite exercises elsewhere, plus the dead-rule mix
// and the warning-heavy program.
func optimizeCases() []struct {
	name   string
	src    string
	inputs *tree.Store
} {
	return []struct {
		name   string
		src    string
		inputs *tree.Store
	}{
		{"sgml2odmg", yatl.SGMLToODMGSource, mergeStores(fig3Store(), relationalStore())},
		{"sgml2odmgBig", yatl.SGMLToODMGSource, workload.BrochureStore(8, 2, 5, 42)},
		{"sgml2odmgPrime", yatl.SGMLToODMGPrimeSource, workload.BrochureStore(6, 2, 4, 3)},
		{"annotated", yatl.AnnotatedSGMLToODMGSource, workload.BrochureStore(5, 2, 4, 7)},
		{"web", yatl.WebProgramSource, workload.ODMGStore(4, 3, 2, 3)},
		{"selective", workload.SelectiveProgram(12), workload.BrochureStore(6, 2, 5, 11)},
		{"deadmix", deadMixSource, alphaStore(9)},
		{"warnheavy", warnHeavySource, warnHeavyStore()},
	}
}

// TestOptimizedEquivalence is the acceptance gate for the optimizer:
// for every workload and every parallelism setting, a run under
// precomputed facts — dispatch indexing, dead-rule pruning and memoized
// slices active — produces a result byte-identical to the unoptimized
// run: outputs, warnings, unconverted list and stats.
func TestOptimizedEquivalence(t *testing.T) {
	for _, c := range optimizeCases() {
		t.Run(c.name, func(t *testing.T) {
			prog := yatl.MustParse(c.src)
			facts := AnalyzeProgram(prog)
			for _, par := range []int{1, 4, 8} {
				plain, err := Run(prog, c.inputs, WithParallelism(par))
				if err != nil {
					t.Fatalf("unoptimized @%d: %v", par, err)
				}
				want := resultFingerprint(plain)
				opt, err := Run(prog, c.inputs, WithParallelism(par), WithFacts(facts))
				if err != nil {
					t.Fatalf("optimized @%d: %v", par, err)
				}
				if got := resultFingerprint(opt); got != want {
					t.Errorf("facts run diverges @%d:\n got:\n%s\nwant:\n%s", par, got, want)
				}
				// The one-shot WithOptimize(true) path must agree too.
				oneShot, err := Run(prog, c.inputs, WithParallelism(par), WithOptimize(true))
				if err != nil {
					t.Fatalf("one-shot @%d: %v", par, err)
				}
				if got := resultFingerprint(oneShot); got != want {
					t.Errorf("WithOptimize run diverges @%d:\n got:\n%s\nwant:\n%s", par, got, want)
				}
			}
		})
	}
}

// TestOptimizedRunAnnouncesAnalysis: an optimized run emits the
// KindAnalysis event so EXPLAIN shows which facts were in force; an
// unoptimized run stays silent.
func TestOptimizedRunAnnouncesAnalysis(t *testing.T) {
	prog := yatl.MustParse(deadMixSource)
	facts := AnalyzeProgram(prog)

	p := trace.NewProfile()
	if _, err := Run(prog, alphaStore(4), WithFacts(facts), WithTrace(p)); err != nil {
		t.Fatal(err)
	}
	if got, want := p.Analysis(), facts.Summary(); got != want {
		t.Errorf("profile analysis = %q, want %q", got, want)
	}
	if text := p.Text(false); !strings.Contains(text, "analysis: syms=") {
		t.Errorf("EXPLAIN rendering missing the analysis line:\n%s", text)
	}

	bare := trace.NewProfile()
	if _, err := Run(prog, alphaStore(4), WithTrace(bare)); err != nil {
		t.Fatal(err)
	}
	if bare.Analysis() != "" {
		t.Errorf("unoptimized run announced analysis: %q", bare.Analysis())
	}
}

// TestOptimizedSliceEquivalence runs each workload through the pruned
// memoized full slice — the path the mediator takes — and demands the
// same bytes as a plain Run.
func TestOptimizedSliceEquivalence(t *testing.T) {
	for _, c := range optimizeCases() {
		t.Run(c.name, func(t *testing.T) {
			prog := yatl.MustParse(c.src)
			facts := AnalyzeProgram(prog)
			plain, err := Run(prog, c.inputs, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := tree.FormatStore(plain.Outputs)
			res, err := RunSlice(context.Background(), prog, c.inputs, facts.SliceFor(), WithFacts(facts))
			if err != nil {
				t.Fatal(err)
			}
			if got := tree.FormatStore(res.Outputs); got != want {
				t.Errorf("pruned full slice diverges:\n got:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}
