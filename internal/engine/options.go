package engine

import (
	"context"

	"yat/internal/pattern"
	"yat/internal/trace"
)

// Option configures a run through the functional-options pattern:
//
//	engine.Run(prog, inputs, engine.WithParallelism(8), engine.WithTrace(p))
//
// A literal *Options also satisfies Option (it replaces the whole
// configuration), so call sites written against the older
// `Run(prog, inputs, opts *Options)` signature — including
// `Run(prog, inputs, nil)` — keep compiling and behaving identically.
type Option interface {
	// Apply writes the option into the configuration being built.
	Apply(*Options)
}

// optionFunc adapts a closure to the Option interface.
type optionFunc func(*Options)

// Apply implements Option.
func (f optionFunc) Apply(o *Options) { f(o) }

// Apply makes a legacy *Options value usable wherever an Option is
// expected: it replaces the configuration wholesale. A nil receiver
// (the old `Run(prog, inputs, nil)` idiom) applies the defaults.
//
// Deprecated: build configurations from With* options instead.
func (o *Options) Apply(dst *Options) {
	if o == nil {
		return
	}
	*dst = *o
}

// mediatorOnly is implemented by options that configure a layer above
// the engine (the mediator's WithDemandDriven and WithSources). Their
// Apply writes nothing, so a plain engine run receiving one would
// silently ignore it; NewOptions records the name instead, and the run
// surfaces it in Result.Warnings so the misconfiguration is visible.
type mediatorOnly interface {
	MediatorOnly() string
}

// NewOptions folds a list of options into a fresh configuration.
// Nil options are skipped, later options win.
func NewOptions(opts ...Option) *Options {
	o := &Options{}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if mo, ok := opt.(mediatorOnly); ok {
			o.ignored = append(o.ignored, mo.MediatorOnly())
		}
		opt.Apply(o)
	}
	return o
}

// WithRegistry supplies the external function/predicate registry.
func WithRegistry(reg *Registry) Option {
	return optionFunc(func(o *Options) { o.Registry = reg })
}

// WithModel merges an extra model environment into the run's
// pattern-domain checks.
func WithModel(m *pattern.Model) Option {
	return optionFunc(func(o *Options) { o.Model = m })
}

// WithParallelism sets the worker count for matching, evaluation and
// construction. 0 and 1 run sequentially; negative uses one worker
// per CPU. Results are byte-identical at every setting.
func WithParallelism(n int) Option {
	return optionFunc(func(o *Options) { o.Parallelism = n })
}

// WithTrace attaches a trace sink to the run. Nil disables tracing at
// zero cost.
func WithTrace(s trace.Sink) Option {
	return optionFunc(func(o *Options) { o.Trace = s })
}

// WithContext sets the run's cancellation context.
//
// Prefer RunContext, which takes the context as a first-class
// parameter; this option exists so context can travel with an option
// list.
func WithContext(ctx context.Context) Option {
	return optionFunc(func(o *Options) { o.Context = ctx })
}

// WithMaxRounds bounds the activation fixpoint (0 = default 10000).
func WithMaxRounds(n int) Option {
	return optionFunc(func(o *Options) { o.MaxRounds = n })
}

// WithNonDetWarn downgrades run-time non-determinism from an error to
// a warning.
func WithNonDetWarn(on bool) Option {
	return optionFunc(func(o *Options) { o.NonDetWarn = on })
}

// WithCheckOutputs turns on the run-time output type checker against
// the given model.
func WithCheckOutputs(m *pattern.Model) Option {
	return optionFunc(func(o *Options) { o.CheckOutputs = m })
}

// WithDisableSafety skips the §3.4 static cycle check.
func WithDisableSafety(disable bool) Option {
	return optionFunc(func(o *Options) { o.DisableSafety = disable })
}

// WithFacts supplies precomputed program facts (AnalyzeProgram) to
// the run: the dispatch index then replaces the linear rule scan of
// the match phase. Facts are validated against the program being run
// — stale facts from another program are ignored, not trusted. The
// optimized run's outputs, warnings and statistics are byte-identical
// to the unoptimized run's at every Parallelism setting.
func WithFacts(f *ProgramFacts) Option {
	return optionFunc(func(o *Options) { o.Facts = f })
}

// WithOptimize toggles the fact-driven optimizer for a run that has
// no precomputed facts: true computes facts at run start (one-shot
// convenience; callers running a program repeatedly should compute
// AnalyzeProgram once and pass WithFacts), false disables every
// fact-driven optimization even when facts were supplied — the
// debugging escape hatch.
func WithOptimize(on bool) Option {
	return optionFunc(func(o *Options) {
		o.Optimize = on
		o.NoOptimize = !on
	})
}
