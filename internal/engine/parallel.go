package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// effectiveWorkers resolves an Options.Parallelism setting to a worker
// count: 0 and 1 mean sequential, a negative value means one worker
// per available CPU.
func effectiveWorkers(parallelism int) int {
	if parallelism < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if parallelism == 0 {
		return 1
	}
	return parallelism
}

// cancelErr wraps a context error as an engine error.
func cancelErr(err error) error {
	return fmt.Errorf("engine: run cancelled: %w", err)
}

// forEachIndexed runs fn(0) … fn(n-1), fanning the calls out over at
// most `workers` goroutines. Each index runs exactly once; callers
// store results by index and merge them in order afterwards, which is
// how the engine keeps parallel runs byte-identical to sequential
// ones. Work is handed out in contiguous chunks through an atomic
// cursor so small tasks amortize the scheduling cost.
//
// The context is checked between chunks (and between items on the
// sequential path); when it is cancelled the remaining work is skipped
// and the context's error is returned. Indices already started may
// still complete.
func forEachIndexed(ctx context.Context, workers, n int, fn func(int)) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				end := int(next.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
