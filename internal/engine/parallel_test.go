package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"yat/internal/tree"
	"yat/internal/yatl"
)

func TestEffectiveWorkers(t *testing.T) {
	if got := effectiveWorkers(0); got != 1 {
		t.Errorf("effectiveWorkers(0) = %d, want 1", got)
	}
	if got := effectiveWorkers(1); got != 1 {
		t.Errorf("effectiveWorkers(1) = %d, want 1", got)
	}
	if got := effectiveWorkers(4); got != 4 {
		t.Errorf("effectiveWorkers(4) = %d, want 4", got)
	}
	if got := effectiveWorkers(-1); got < 1 {
		t.Errorf("effectiveWorkers(-1) = %d, want >= 1", got)
	}
}

func TestForEachIndexedCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			counts := make([]atomic.Int32, n)
			err := forEachIndexed(context.Background(), workers, n, func(i int) {
				counts[i].Add(1)
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForEachIndexedCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := atomic.Int32{}
		err := forEachIndexed(ctx, workers, 100, func(i int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got != 0 {
			t.Errorf("workers=%d: %d tasks ran on a cancelled context", workers, got)
		}
	}
}

// resultFingerprint renders everything observable about a run so
// parallel and sequential executions can be compared byte for byte.
func resultFingerprint(res *Result) string {
	var sb strings.Builder
	sb.WriteString(tree.FormatStore(res.Outputs))
	sb.WriteString("\n--warnings--\n")
	for _, w := range res.Warnings {
		sb.WriteString(w)
		sb.WriteByte('\n')
	}
	sb.WriteString("--unconverted--\n")
	for _, id := range res.Unconverted {
		sb.WriteString(id.Display())
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "--stats--\n%+v\n", res.Stats)
	return sb.String()
}

// TestParallelRunByteIdentical runs the paper's SGML→ODMG program on
// the Figure 3 store at several parallelism levels and requires the
// full result — outputs, warnings, unconverted list and stats — to be
// identical to the sequential run.
func TestParallelRunByteIdentical(t *testing.T) {
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	inputs := mergeStores(fig3Store(), relationalStore())
	seq, err := Run(prog, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := resultFingerprint(seq)
	for _, par := range []int{-1, 2, 4, 8} {
		res, err := Run(prog, inputs, &Options{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism=%d: %v", par, err)
		}
		if got := resultFingerprint(res); got != want {
			t.Errorf("parallelism=%d diverges from sequential:\n got:\n%s\nwant:\n%s", par, got, want)
		}
	}
}

// TestParallelWarningsDeterministic uses a program whose external
// function fails on some inputs (producing drop warnings) and checks
// the warning order is reproduced under parallelism.
func TestParallelWarningsDeterministic(t *testing.T) {
	prog := yatl.MustParse(`
program warny
rule W {
  head Pz(X) = z -> Z
  from X = addr -> A
  let Z = zip(A)
}
`)
	inputs := tree.NewStore()
	for i := 1; i <= 12; i++ {
		addr := fmt.Sprintf("street %d, 7500%d Paris", i, i%10)
		if i%3 == 0 {
			addr = fmt.Sprintf("malformed %d", i) // no comma: zip() errors
		}
		inputs.Put(tree.PlainName(fmt.Sprintf("a%d", i)), tree.Sym("addr", tree.Str(addr)))
	}
	seq, err := Run(prog, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Warnings) == 0 {
		t.Fatal("fixture produced no warnings; the test is vacuous")
	}
	par, err := Run(prog, inputs, &Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resultFingerprint(par), resultFingerprint(seq); got != want {
		t.Errorf("warning order diverges:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	inputs := mergeStores(fig3Store(), relationalStore())
	for _, par := range []int{0, 4} {
		_, err := Run(prog, inputs, &Options{Context: ctx, Parallelism: par})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parallelism=%d: err = %v, want context.Canceled", par, err)
		}
		if err == nil || !strings.Contains(err.Error(), "cancelled") {
			t.Errorf("parallelism=%d: error %q does not mention cancellation", par, err)
		}
	}
}

// TestRunCancelledMidRun registers an external function that cancels
// the context from inside the evaluation phase; the engine must stop
// at the next checkpoint and report the cancellation.
func TestRunCancelledMidRun(t *testing.T) {
	for _, par := range []int{0, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		reg := NewRegistry()
		reg.Register(Func{
			Name: "pull_plug", Params: []ParamType{Text}, Result: Text,
			Fn: func(args []tree.Value) (tree.Value, error) {
				cancel()
				return args[0], nil
			},
		})
		prog := yatl.MustParse(`
program doomed
rule D {
  head Pout(X) = out -> V
  from X = in -> D
  let V = pull_plug(D)
}
`)
		inputs := tree.NewStore()
		for i := 1; i <= 6; i++ {
			inputs.Put(tree.PlainName(fmt.Sprintf("i%d", i)), tree.Sym("in", tree.Str("x")))
		}
		_, err := Run(prog, inputs, &Options{Context: ctx, Registry: reg, Parallelism: par})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parallelism=%d: err = %v, want context.Canceled", par, err)
		}
	}
}

// TestRunDeadline checks the timeout form the mediator uses: a context
// with an already-expired deadline aborts the run.
func TestRunDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	_, err := Run(prog, fig3Store(), &Options{Context: ctx, Parallelism: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}
