package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"yat/internal/pattern"
	"yat/internal/trace"
	"yat/internal/tree"
	"yat/internal/yatl"
)

// Options configures a program run.
type Options struct {
	// Registry supplies external functions and predicates; defaults
	// to NewRegistry().
	Registry *Registry
	// Model is an extra model environment for pattern-domain checks,
	// merged with the models declared by the program.
	Model *pattern.Model
	// DisableSafety skips the static cycle check of §3.4.
	DisableSafety bool
	// NonDetWarn downgrades the run-time non-determinism alert from
	// an error to a warning (the paper only mandates an alert).
	NonDetWarn bool
	// MaxRounds bounds the activation fixpoint as defence against
	// non-terminating programs; 0 means the default (10000).
	MaxRounds int
	// CheckOutputs turns on the run-time type checker of Figure 6:
	// after dereferencing, every output must conform to some pattern
	// of this model; non-conforming outputs are reported as warnings
	// ("if required by the user, a type checker", §5.1).
	CheckOutputs *pattern.Model
	// Parallelism sets the number of worker goroutines used for the
	// matching (phase 1), evaluation (phases 2–3) and construction
	// (phases 4–5) work of a run. 0 and 1 run sequentially; a
	// negative value uses one worker per available CPU. Results are
	// byte-identical at every setting: workers only compute, and the
	// engine merges their results in the order the sequential
	// interpreter would have produced them.
	Parallelism int
	// Context cancels a run cooperatively: the engine checks it
	// between rounds and between work batches and, once cancelled,
	// stops and returns an error wrapping ctx.Err(). Nil means the
	// run cannot be cancelled.
	//
	// Deprecated: pass the context first-class through RunContext (or
	// WithContext); it overrides this field.
	Context context.Context
	// Facts are precomputed program facts (AnalyzeProgram): the
	// dispatch index and dead-rule sets the run consumes. Facts
	// computed from a different program value are ignored.
	Facts *ProgramFacts
	// DeltaSeeds, when non-nil, switches the run to delta-evaluation
	// mode: the activation fixpoint is seeded from these entries only,
	// while reference resolution and dereferencing still see the full
	// input store. The run then derives exactly the consequences of
	// the seed entries — the semi-naive delta of an insert-only source
	// refresh. See WithDeltaSeeds for the soundness preconditions the
	// caller must establish.
	DeltaSeeds *tree.Store
	// Optimize computes facts at run start when none were supplied.
	Optimize bool
	// NoOptimize disables every fact-driven optimization, even when
	// facts were supplied — the debugging escape hatch (see
	// WithOptimize).
	NoOptimize bool
	// ignored lists the names of mediator-only options handed to this
	// run (collected by NewOptions); the run reports them as warnings.
	ignored []string
	// Trace receives typed events for every phase of the run (see
	// internal/trace): matching attempts, external calls with
	// durations, dropped bindings with reasons, Skolem definitions,
	// construction, and round boundaries. Nil disables tracing at
	// zero cost — the engine then takes no timestamps and allocates
	// nothing on behalf of the sink. With Parallelism > 1 events are
	// emitted from worker goroutines, so the sink must be safe for
	// concurrent use (trace.Profile is).
	Trace trace.Sink
}

// Stats reports work done by a run.
type Stats struct {
	Activations int // ground inputs processed (source + derived)
	Bindings    int // variable bindings accumulated across rules
	Outputs     int // Skolem identities defined
	Rounds      int // activation fixpoint rounds
}

// Result is the outcome of a successful run.
type Result struct {
	// Outputs holds one tree per Skolem identity defined by the
	// program, fully dereferenced.
	Outputs *tree.Store
	// Warnings collects non-fatal diagnostics: dangling references,
	// dropped bindings, and (with NonDetWarn) non-determinism alerts.
	Warnings []string
	// Unconverted lists the identities of source inputs that no rule
	// matched — the condition the §3.5 exception rule reports.
	Unconverted []tree.Value
	Stats       Stats

	// Slice-run extras (set by RunSlice, nil on full runs): per-rule
	// committed identities and per-rule directly-matched sources.
	ruleOIDs map[string][]tree.Name
	ruleSrc  map[string][]tree.Name
}

// ErrUnconverted is returned when the program contains an exception
// rule (§3.5) and some source input was not involved in the
// conversion.
type ErrUnconverted struct {
	IDs []tree.Value
}

func (e *ErrUnconverted) Error() string {
	parts := make([]string, len(e.IDs))
	for i, id := range e.IDs {
		parts[i] = id.Display()
	}
	return "engine: exception rule fired: input data not converted: " + strings.Join(parts, ", ")
}

// FixpointError reports that the activation fixpoint exceeded its
// round bound (Options.MaxRounds) without converging.
type FixpointError struct {
	Rounds int
}

func (e *FixpointError) Error() string {
	return fmt.Sprintf("engine: activation fixpoint did not converge within %d rounds", e.Rounds)
}

// Run executes a YATL program over the input store and returns the
// converted outputs. The run follows the five phases of §3.1, with
// Skolem functions global to the program so rule order is irrelevant,
// hierarchy dispatch per §4.2, and end-of-run dereferencing.
//
// Configuration is variadic: pass With* options, a legacy *Options
// value, or nothing for the defaults.
func Run(prog *yatl.Program, inputs *tree.Store, opts ...Option) (*Result, error) {
	return execute(prog, inputs, NewOptions(opts...), nil)
}

// RunContext is Run with a first-class cancellation context. It
// overrides any context carried in the options.
func RunContext(ctx context.Context, prog *yatl.Program, inputs *tree.Store, opts ...Option) (*Result, error) {
	o := NewOptions(opts...)
	if ctx != nil {
		o.Context = ctx
	}
	return execute(prog, inputs, o, nil)
}

// execute is the shared run core. With a nil slice it is a full run;
// with a slice it restricts matching and evaluation to the slice's
// rules, constructs only the construct set, and skips the full-run
// diagnostics that assume every rule ran (dangling-reference warnings
// and the §3.5 exception check — slices never contain exception
// rules).
func execute(prog *yatl.Program, inputs *tree.Store, opts *Options, sl *Slice) (*Result, error) {
	reg := opts.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	if !opts.DisableSafety {
		if err := CheckSafety(prog); err != nil {
			return nil, err
		}
	}
	model := pattern.NewModel()
	for _, m := range prog.Models {
		model = model.Merge(m.Model)
	}
	if opts.Model != nil {
		model = model.Merge(opts.Model)
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 10000
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	// Resolve program facts before any program substitution: facts are
	// validated against the program value the caller ran, and a slice's
	// sub-program shares its rules (by name), so full-program facts
	// drive sub-program dispatch soundly.
	facts := opts.Facts
	if opts.NoOptimize || !facts.For(prog) {
		facts = nil
	}
	if facts == nil && opts.Optimize && !opts.NoOptimize {
		facts = AnalyzeProgram(prog)
	}
	// A slice run interprets the restricted sub-program: the slice's
	// rules in declaration order, whole functor groups at a time, so
	// the §4.2 blocking and ordering semantics within each group are
	// exactly those of the full program.
	if sl != nil {
		prog = sl.SubProgram(prog)
	}

	r := &run{
		prog:      prog,
		sl:        sl,
		reg:       reg,
		opts:      opts,
		ctx:       ctx,
		workers:   effectiveWorkers(opts.Parallelism),
		sink:      opts.Trace,
		inputs:    inputs,
		outputs:   tree.NewStore(),
		matcher:   &Matcher{Store: inputs, Model: model},
		hier:      buildHierarchy(prog, model),
		seenIDs:   map[string]bool{},
		ruleState: map[string]*ruleState{},
	}
	// Align the dispatch index's rule-index space with the hierarchy's
	// group order, so the match phase tests admissibility with one
	// bitset probe per rule instead of a map lookup.
	if facts != nil {
		r.facts = facts
		if facts.Dispatch != nil {
			gi := make([][]int32, len(r.hier.functorOrder))
			aligned := true
			for fi, functor := range r.hier.functorOrder {
				rules := r.hier.groups[functor]
				idxs := make([]int32, len(rules))
				for ri, rule := range rules {
					idx, found := facts.RuleIndex[rule.Name]
					if !found {
						aligned = false
						break
					}
					idxs[ri] = int32(idx)
				}
				if !aligned {
					break
				}
				gi[fi] = idxs
			}
			if aligned {
				r.groupIdx = gi
			}
		}
	}
	// Mediator-only options do nothing on a plain engine run; warn so
	// the misconfiguration is visible instead of silently absorbed.
	for _, name := range opts.ignored {
		r.warn(fmt.Sprintf("option %s configures a mediator, not an engine run; it was ignored (use mediator.New)", name))
	}
	var runStart time.Time
	if r.sink != nil {
		runStart = time.Now()
		r.sink.Emit(trace.Event{Kind: trace.KindRunStart, Phase: trace.PhaseRun, Detail: prog.Name})
		if r.facts != nil {
			r.sink.Emit(trace.Event{Kind: trace.KindAnalysis, Phase: trace.PhaseRun, Detail: r.facts.Summary()})
		}
	}
	for _, rule := range prog.Rules {
		if rule.Exception {
			continue
		}
		r.ruleState[rule.Name] = newRuleState(rule)
	}

	// Seed with the source inputs — or, in delta-evaluation mode, with
	// the delta entries alone (the matcher, reference resolution and
	// deref expansion still consult the full store).
	seeds := inputs
	if opts.DeltaSeeds != nil {
		seeds = opts.DeltaSeeds
	}
	for _, e := range seeds.Entries() {
		r.activate(tree.Ref{Name: e.Name}, e.Tree, true)
	}

	// Activation fixpoint: match new inputs, evaluate new bindings,
	// discover the Skolem arguments they mint, activate them.
	// Matching never activates, so all inputs pending at the top of a
	// round can be matched independently — that is the parallel
	// fan-out — and their results merged in activation order.
	rounds := 0
	for r.processed < len(r.active) {
		rounds++
		if rounds > maxRounds {
			return nil, &FixpointError{Rounds: maxRounds}
		}
		pending := r.active[r.processed:]
		r.processed = len(r.active)
		r.round = rounds
		if r.sink != nil {
			r.sink.Emit(trace.Event{Kind: trace.KindRound, Phase: trace.PhaseRun, Round: rounds, Count: len(pending)})
		}
		results := make([]*matchResult, len(pending))
		if err := forEachIndexed(r.ctx, r.workers, len(pending), func(i int) {
			results[i] = r.collectMatches(pending[i])
		}); err != nil {
			return nil, cancelErr(err)
		}
		for _, mr := range results {
			r.applyMatches(mr)
		}
		// Multi-pattern rules join across all activations; recompute
		// when their caches grew, then evaluate any new bindings.
		for _, rule := range prog.Rules {
			if rule.Exception || len(rule.Body) < 2 {
				continue
			}
			r.joinMultiBody(rule)
		}
		if err := r.evaluateNewBindings(); err != nil {
			return nil, err
		}
	}

	// Construction phase: group the evaluated bindings of each rule
	// by head Skolem identity and build the output trees.
	for _, rule := range prog.Rules {
		if rule.Exception {
			continue
		}
		// Support rules of a slice exist only to feed activations;
		// their outputs are not demanded and are not built.
		if sl != nil && !sl.Constructs(rule.Name) {
			continue
		}
		if err := r.constructRule(rule); err != nil {
			return nil, err
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, cancelErr(err)
	}
	if err := expandDerefs(r.outputs); err != nil {
		return nil, err
	}
	// A slice store is partial by design — references into functors
	// outside the closure are expected, not dangling.
	if sl == nil {
		for _, name := range danglingRefs(r.outputs, inputs) {
			r.warn(fmt.Sprintf("dangling reference &%s in output", name))
		}
	}
	if opts.CheckOutputs != nil {
		r.checkOutputs(opts.CheckOutputs)
	}

	res := &Result{
		Outputs:     r.outputs,
		Warnings:    r.warnings,
		Unconverted: r.unconverted(),
		Stats: Stats{
			Activations: len(r.active),
			Bindings:    r.totalBindings(),
			Outputs:     r.outputs.Len(),
			Rounds:      rounds,
		},
		ruleOIDs: r.ruleOIDs,
		ruleSrc:  r.ruleSrc,
	}
	if r.sink != nil {
		r.sink.Emit(trace.Event{Kind: trace.KindRunEnd, Phase: trace.PhaseRun, Duration: time.Since(runStart)})
	}
	if len(r.hier.exceptions) > 0 && len(res.Unconverted) > 0 {
		return res, &ErrUnconverted{IDs: res.Unconverted}
	}
	return res, nil
}

// activation is one ground input the rules are applied to: a source
// tree from the input store, or a subtree/atom demanded by a Skolem
// argument (the recursion of the Web rules).
type activation struct {
	id     tree.Value
	node   *tree.Node
	source bool
	// matched records that some non-exception rule matched this
	// input (used by the exception check).
	matched bool
}

// ruleState accumulates the matching and evaluation state of one rule
// across the run.
type ruleState struct {
	rule *yatl.Rule
	// perPattern caches, for each body pattern, the bindings obtained
	// from every activation so far (multi-pattern rules only).
	perPattern [][]Binding
	grew       bool
	// raw are the matched bindings not yet put through lets and
	// predicates; keyed for deduplication.
	raw     []Binding
	rawSeen map[string]bool
	rawNext int
	// evaluated are the bindings that survived phases 2 and 3.
	evaluated []Binding
	evalNext  int
	// skolemRefs are the pattern references occurring in the head
	// tree (computed once).
	skolemRefs []pattern.PatRef
}

func newRuleState(rule *yatl.Rule) *ruleState {
	s := &ruleState{
		rule:       rule,
		perPattern: make([][]Binding, len(rule.Body)),
		rawSeen:    map[string]bool{},
	}
	if rule.Head.Tree != nil {
		s.skolemRefs = rule.Head.Tree.PatternRefs()
	}
	return s
}

type run struct {
	prog    *yatl.Program
	reg     *Registry
	opts    *Options
	ctx     context.Context
	workers int
	// sink receives trace events; nil disables tracing entirely (the
	// engine then takes no timestamps and allocates nothing for it).
	sink trace.Sink
	// round is the current fixpoint round, set single-threaded before
	// each parallel fan-out so worker emissions can carry it.
	round   int
	inputs  *tree.Store
	outputs *tree.Store
	matcher *Matcher
	hier    *hierarchy

	// facts are the validated program facts of this run (nil without
	// optimization); groupIdx aligns each hierarchy group with the
	// facts' rule-index space, and is nil whenever dispatch is off.
	facts    *ProgramFacts
	groupIdx [][]int32

	active    []*activation
	processed int
	seenIDs   map[string]bool

	ruleState map[string]*ruleState
	warnings  []string

	// Slice bookkeeping (nil sl on full runs; the hot path is
	// untouched then). ruleOIDs records, per construct rule, the
	// Skolem identities it committed, in store insertion order;
	// ruleSrc records, per rule, the source inputs that directly
	// matched it — the seed of fine-grained source invalidation.
	sl       *Slice
	ruleOIDs map[string][]tree.Name
	ruleSrc  map[string][]tree.Name
	srcSeen  map[string]map[string]bool
}

func (r *run) warn(msg string) { r.warnings = append(r.warnings, msg) }

func (r *run) totalBindings() int {
	total := 0
	for _, s := range r.ruleState {
		total += len(s.raw)
	}
	return total
}

// activate registers an input for rule application, once per
// identity.
func (r *run) activate(id tree.Value, node *tree.Node, source bool) {
	key := id.Kind().String() + ":" + displayKey(id)
	if r.seenIDs[key] {
		return
	}
	r.seenIDs[key] = true
	r.active = append(r.active, &activation{id: id, node: node, source: source})
}

// recordSource notes that a source input directly matched a rule
// (slice runs only; the mediator's InvalidateSource closes over these
// sets to find the cached rules a changed source can reach).
func (r *run) recordSource(rule string, id tree.Value) {
	ref, ok := id.(tree.Ref)
	if !ok {
		return
	}
	if r.srcSeen == nil {
		r.srcSeen = map[string]map[string]bool{}
		r.ruleSrc = map[string][]tree.Name{}
	}
	seen := r.srcSeen[rule]
	if seen == nil {
		seen = map[string]bool{}
		r.srcSeen[rule] = seen
	}
	key := ref.Name.Key()
	if seen[key] {
		return
	}
	seen[key] = true
	r.ruleSrc[rule] = append(r.ruleSrc[rule], ref.Name)
}

// activateValue turns a Skolem-argument value into an activation: a
// reference resolves through the input store, a wrapped subtree
// activates directly, an atom becomes a leaf input (derived, so the
// exception check ignores it).
func (r *run) activateValue(v tree.Value) {
	switch val := v.(type) {
	case tree.Ref:
		if n, ok := r.inputs.Get(val.Name); ok {
			r.activate(val, n, false)
		}
	case tree.TreeVal:
		r.activate(val, val.Root, false)
	default:
		r.activate(val, tree.New(val), false)
	}
}

// ruleMatches is the outcome of matching one activation against one
// rule: bindings for a single-body rule, or per-body-pattern binding
// lists for a multi-pattern rule (multi non-nil distinguishes them).
type ruleMatches struct {
	rule   *yatl.Rule
	single []Binding
	multi  [][]Binding
}

// matchResult is everything phase 1 decides about one activation.
// Workers compute it from read-only state (the hierarchy, the rule
// bodies, the input store); the blocking of less specific rules is
// per-input, so it too is decided locally. applyMatches then merges
// results into the shared rule state in activation order, which keeps
// a parallel run's binding order — and therefore every downstream
// phase — identical to the sequential interpreter's.
type matchResult struct {
	a       *activation
	matched bool
	perRule []ruleMatches
}

// collectMatches applies phase 1 to one input: per functor group,
// rules are tried most-specific-first and a match blocks the less
// specific conflicting rules for this input (§4.2). It touches no
// shared mutable state and is safe to call from multiple goroutines.
func (r *run) collectMatches(a *activation) *matchResult {
	mr := &matchResult{a: a}
	// One dispatch probe per activation: the admissible set
	// over-approximates the rules whose body patterns could match this
	// node, so skipping the rest reproduces the scan's zero-binding
	// outcome without running the matcher.
	var admissible *RuleSet
	if r.groupIdx != nil {
		admissible = r.facts.Dispatch.Lookup(a.node)
	}
	for fi, functor := range r.hier.functorOrder {
		// blocked stays nil until a match actually blocks something —
		// reads of a nil map are legal and the common case allocates
		// nothing.
		var blocked map[string]bool
		var idxs []int32
		if admissible != nil {
			idxs = r.groupIdx[fi]
		}
		for ri, rule := range r.hier.groups[functor] {
			if blocked[rule.Name] {
				continue
			}
			if admissible != nil && !admissible.Has(int(idxs[ri])) {
				// Statically inadmissible: the scan would have found
				// zero bindings. Emit the same zero-count event it
				// would have, so optimized traces stay comparable.
				if r.sink != nil {
					r.sink.Emit(trace.Event{Kind: trace.KindMatch, Phase: trace.PhaseMatch,
						Rule: rule.Name, Round: r.round, Count: 0})
				}
				continue
			}
			var matchStart time.Time
			if r.sink != nil {
				matchStart = time.Now()
			}
			if len(rule.Body) == 1 {
				bs := r.matchBodyPattern(rule.Body[0], a)
				if r.sink != nil {
					r.sink.Emit(trace.Event{Kind: trace.KindMatch, Phase: trace.PhaseMatch,
						Rule: rule.Name, Round: r.round, Count: len(bs), Duration: time.Since(matchStart)})
				}
				if len(bs) == 0 {
					continue
				}
				mr.matched = true
				if names := r.hier.blocks[rule.Name]; len(names) > 0 {
					if blocked == nil {
						blocked = make(map[string]bool, len(names))
					}
					for _, name := range names {
						blocked[name] = true
					}
				}
				mr.perRule = append(mr.perRule, ruleMatches{rule: rule, single: bs})
				continue
			}
			// Multi-pattern rule: cache the matches of every body
			// pattern; the join happens per round.
			var multi [][]Binding
			total := 0
			for i := range rule.Body {
				bs := r.matchBodyPattern(rule.Body[i], a)
				if len(bs) == 0 {
					continue
				}
				total += len(bs)
				mr.matched = true
				if multi == nil {
					multi = make([][]Binding, len(rule.Body))
				}
				multi[i] = bs
			}
			if r.sink != nil {
				r.sink.Emit(trace.Event{Kind: trace.KindMatch, Phase: trace.PhaseMatch,
					Rule: rule.Name, Round: r.round, Count: total, Duration: time.Since(matchStart)})
			}
			if multi != nil {
				mr.perRule = append(mr.perRule, ruleMatches{rule: rule, multi: multi})
			}
		}
	}
	return mr
}

// applyMatches merges one activation's matches into the shared rule
// state. Called in activation order, single-threaded.
func (r *run) applyMatches(mr *matchResult) {
	if mr.matched {
		mr.a.matched = true
	}
	for _, rm := range mr.perRule {
		if r.sl != nil && mr.a.source {
			r.recordSource(rm.rule.Name, mr.a.id)
		}
		s := r.ruleState[rm.rule.Name]
		if rm.multi == nil {
			r.addRaw(s, rm.single)
			continue
		}
		for i, bs := range rm.multi {
			if len(bs) == 0 {
				continue
			}
			s.perPattern[i] = append(s.perPattern[i], bs...)
			s.grew = true
		}
	}
}

// matchBodyPattern matches one body pattern against an activation and
// binds the body's pattern variable to the input identity.
func (r *run) matchBodyPattern(bp yatl.BodyPattern, a *activation) []Binding {
	if bp.Domain != "" && r.matcher.Model != nil {
		if _, defined := r.matcher.Model.Get(bp.Domain); defined {
			if !r.matcher.conformance().Conforms(a.node, bp.Domain) {
				return nil
			}
		}
	}
	bs := r.matcher.MatchTree(bp.Tree, a.node)
	if len(bs) == 0 {
		return nil
	}
	return bindAll(bs, bp.Var, a.id)
}

func (r *run) addRaw(s *ruleState, bs []Binding) {
	for _, b := range bs {
		k := b.Key()
		if s.rawSeen[k] {
			continue
		}
		s.rawSeen[k] = true
		s.raw = append(s.raw, b)
	}
}

// joinMultiBody recomputes the cross-pattern join of a multi-pattern
// rule when any per-pattern cache grew (Rule 3's heterogeneous join).
func (r *run) joinMultiBody(rule *yatl.Rule) {
	s := r.ruleState[rule.Name]
	if !s.grew {
		return
	}
	s.grew = false
	joined := s.perPattern[0]
	for i := 1; i < len(s.perPattern); i++ {
		joined = hashJoin(joined, s.perPattern[i])
		if len(joined) == 0 {
			return
		}
	}
	r.addRaw(s, joined)
}

// evaluateNewBindings runs phases 2 (external functions with type
// filtering) and 3 (predicates) over the raw bindings accumulated
// since the last call, then discovers and activates the Skolem
// arguments minted by the survivors. Bindings are independent of one
// another, so the evaluation fans out over the worker pool; the merge
// walks the results in (rule, binding) order, which reproduces the
// sequential interpreter's evaluated lists, warning order, and — via
// the discovery loop below — activation order exactly. Discovery is
// kept out of the parallel section because activateValue appends to
// the shared activation list; within one call it cannot influence
// evaluation (new activations are only matched next round), so
// running it after the whole batch preserves sequential semantics.
func (r *run) evaluateNewBindings() error {
	type evalTask struct {
		rule *yatl.Rule
		s    *ruleState
		b    Binding
	}
	var tasks []evalTask
	for _, rule := range r.prog.Rules {
		if rule.Exception {
			continue
		}
		s := r.ruleState[rule.Name]
		for ; s.rawNext < len(s.raw); s.rawNext++ {
			tasks = append(tasks, evalTask{rule: rule, s: s, b: s.raw[s.rawNext]})
		}
	}
	type evalResult struct {
		b     Binding
		ok    bool
		warns []string
		err   error
	}
	results := make([]evalResult, len(tasks))
	if err := forEachIndexed(r.ctx, r.workers, len(tasks), func(i int) {
		t := tasks[i]
		var res evalResult
		res.b, res.ok, res.warns, res.err = r.evalBinding(t.rule, t.b)
		results[i] = res
	}); err != nil {
		return cancelErr(err)
	}
	for i := range results {
		res := &results[i]
		r.warnings = append(r.warnings, res.warns...)
		if res.err != nil {
			return res.err
		}
		if res.ok {
			tasks[i].s.evaluated = append(tasks[i].s.evaluated, res.b)
		}
	}
	// Discover activations minted by the new evaluated bindings.
	for _, rule := range r.prog.Rules {
		if rule.Exception {
			continue
		}
		s := r.ruleState[rule.Name]
		for ; s.evalNext < len(s.evaluated); s.evalNext++ {
			b := s.evaluated[s.evalNext]
			for _, ref := range s.skolemRefs {
				for _, arg := range ref.Args {
					if !arg.IsVar {
						continue
					}
					if v, bound := b[arg.Var]; bound {
						r.activateValue(v)
					}
				}
			}
		}
	}
	return nil
}

// evalBinding applies the rule's lets and predicates to one binding.
// It is called from worker goroutines and must not touch shared run
// state: diagnostics come back as warns for the caller to append in
// deterministic order (trace emission is exempt — sinks are
// concurrency-safe by contract and aggregate order-independently).
func (r *run) evalBinding(rule *yatl.Rule, b Binding) (_ Binding, ok bool, warns []string, err error) {
	if len(rule.Lets) > 0 {
		b = b.Clone()
	}
	for _, l := range rule.Lets {
		args, ok := resolveOperands(b, l.Args)
		if !ok {
			r.traceDrop(rule.Name, trace.PhaseFunctions, trace.DropUnresolvedOperand)
			return nil, false, nil, nil
		}
		var callStart time.Time
		if r.sink != nil {
			callStart = time.Now()
		}
		val, typed, err := r.reg.Call(l.Func, args)
		if r.sink != nil {
			passed := 0
			if typed && err == nil {
				passed = 1
			}
			r.sink.Emit(trace.Event{Kind: trace.KindCall, Phase: trace.PhaseFunctions,
				Rule: rule.Name, Round: r.round, Count: passed, Detail: l.Func, Duration: time.Since(callStart)})
		}
		if err != nil {
			var raised ErrRaised
			if errors.As(err, &raised) {
				return nil, false, nil, err
			}
			r.traceDrop(rule.Name, trace.PhaseFunctions, trace.DropFunctionError)
			warns = append(warns, fmt.Sprintf("rule %s: %v (binding dropped)", rule.Name, err))
			return nil, false, warns, nil
		}
		if !typed {
			r.traceDrop(rule.Name, trace.PhaseFunctions, trace.DropTypeFilter)
			return nil, false, nil, nil // the §3.1 type filter
		}
		b[l.Var] = val
	}
	for _, p := range rule.Preds {
		ok, pwarns, err := r.evalPred(rule, p, b)
		warns = append(warns, pwarns...)
		if err != nil {
			return nil, false, warns, err
		}
		if !ok {
			reason := trace.DropPredicateFalse
			if len(pwarns) > 0 {
				reason = trace.DropPredicateError
			}
			r.traceDrop(rule.Name, trace.PhasePredicates, reason)
			return nil, false, warns, nil
		}
	}
	if r.sink != nil {
		r.sink.Emit(trace.Event{Kind: trace.KindBindingKept, Phase: trace.PhasePredicates,
			Rule: rule.Name, Round: r.round, Count: 1})
	}
	return b, true, warns, nil
}

// traceDrop emits a binding-dropped event; free when tracing is off.
func (r *run) traceDrop(rule string, phase trace.Phase, reason string) {
	if r.sink == nil {
		return
	}
	r.sink.Emit(trace.Event{Kind: trace.KindBindingDropped, Phase: phase,
		Rule: rule, Round: r.round, Detail: reason})
}

func (r *run) evalPred(rule *yatl.Rule, p yatl.Pred, b Binding) (ok bool, warns []string, err error) {
	if p.IsCall() {
		args, ok := resolveOperands(b, p.Args)
		if !ok {
			return false, nil, nil
		}
		var callStart time.Time
		if r.sink != nil {
			callStart = time.Now()
		}
		res, typed, err := r.reg.CallBool(p.Call, args)
		if r.sink != nil {
			passed := 0
			if typed && err == nil {
				passed = 1
			}
			r.sink.Emit(trace.Event{Kind: trace.KindCall, Phase: trace.PhasePredicates,
				Rule: rule.Name, Round: r.round, Count: passed, Detail: p.Call, Duration: time.Since(callStart)})
		}
		if err != nil {
			var raised ErrRaised
			if errors.As(err, &raised) {
				return false, nil, err
			}
			warns = append(warns, fmt.Sprintf("rule %s: %v (binding dropped)", rule.Name, err))
			return false, warns, nil
		}
		return res && typed, nil, nil
	}
	left, lok := resolveOperand(b, p.Left)
	if !lok {
		return false, nil, nil
	}
	right, rok := resolveOperand(b, p.Right)
	if !rok {
		return false, nil, nil
	}
	cmp := tree.Compare(left, right)
	switch p.Op {
	case yatl.OpEq:
		return tree.EqualValues(left, right), nil, nil
	case yatl.OpNe:
		return !tree.EqualValues(left, right), nil, nil
	case yatl.OpLt:
		return cmp < 0, nil, nil
	case yatl.OpLe:
		return cmp <= 0, nil, nil
	case yatl.OpGt:
		return cmp > 0, nil, nil
	case yatl.OpGe:
		return cmp >= 0, nil, nil
	}
	return false, nil, fmt.Errorf("engine: rule %s: unknown comparison", rule.Name)
}

func resolveOperands(b Binding, ops []yatl.Operand) ([]tree.Value, bool) {
	out := make([]tree.Value, len(ops))
	for i, o := range ops {
		v, ok := resolveOperand(b, o)
		if !ok {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

func resolveOperand(b Binding, o yatl.Operand) (tree.Value, bool) {
	if !o.IsVar {
		return o.Const, true
	}
	v, ok := b[o.Var]
	return v, ok
}

// constructRule is phase 4+5 for one rule: evaluate the head Skolem
// per binding, group, and construct the output trees. Groups are
// disjoint, so the tree building fans out over the worker pool; the
// outputs are then committed in group order so the store's insertion
// order — and the first-error/non-determinism reporting — matches the
// sequential interpreter.
func (r *run) constructRule(rule *yatl.Rule) error {
	s := r.ruleState[rule.Name]
	if len(s.evaluated) == 0 {
		return nil
	}
	type oidGroup struct {
		oid      tree.Name
		bindings []Binding
	}
	index := map[string]int{}
	var groups []oidGroup
	headRef := pattern.PatRef{Name: rule.Head.Functor, Args: rule.Head.Args}
	for _, b := range s.evaluated {
		c := &constructor{rule: rule.Name}
		var skolemStart time.Time
		if r.sink != nil {
			skolemStart = time.Now()
		}
		oid, err := c.evalSkolem(headRef, []Binding{b})
		if err != nil {
			if r.sink != nil {
				r.sink.Emit(trace.Event{Kind: trace.KindBindingDropped, Phase: trace.PhaseSkolem,
					Rule: rule.Name, Detail: trace.DropSkolemError, Duration: time.Since(skolemStart)})
			}
			r.warn(fmt.Sprintf("rule %s: %v (binding dropped)", rule.Name, err))
			continue
		}
		key := oid.Key()
		if i, ok := index[key]; ok {
			groups[i].bindings = append(groups[i].bindings, b)
			continue
		}
		if r.sink != nil {
			r.sink.Emit(trace.Event{Kind: trace.KindSkolemDefined, Phase: trace.PhaseSkolem,
				Rule: rule.Name, Count: 1, Detail: oid.String(), Duration: time.Since(skolemStart)})
		}
		index[key] = len(groups)
		groups = append(groups, oidGroup{oid: oid, bindings: []Binding{b}})
	}
	outs := make([]*tree.Node, len(groups))
	errs := make([]error, len(groups))
	if err := forEachIndexed(r.ctx, r.workers, len(groups), func(i int) {
		c := &constructor{
			rule: rule.Name,
			oid:  groups[i].oid,
			hook: func(oid tree.Name, deref bool) {},
		}
		var buildStart time.Time
		if r.sink != nil {
			buildStart = time.Now()
		}
		outs[i], errs[i] = c.construct(rule.Head.Tree, groups[i].bindings)
		if r.sink != nil {
			built := 0
			if errs[i] == nil {
				built = 1
			}
			r.sink.Emit(trace.Event{Kind: trace.KindConstruct, Phase: trace.PhaseConstruct,
				Rule: rule.Name, Count: built, Duration: time.Since(buildStart)})
		}
	}); err != nil {
		return cancelErr(err)
	}
	for i, g := range groups {
		if err := errs[i]; err != nil {
			var nd *NonDetError
			if errors.As(err, &nd) && r.opts.NonDetWarn {
				r.traceDrop(rule.Name, trace.PhaseConstruct, trace.DropNonDeterminism)
				r.warn(nd.Error())
				continue
			}
			return err
		}
		out := outs[i]
		if r.sl != nil {
			if r.ruleOIDs == nil {
				r.ruleOIDs = map[string][]tree.Name{}
			}
			r.ruleOIDs[rule.Name] = append(r.ruleOIDs[rule.Name], g.oid)
		}
		if prev, ok := r.outputs.Get(g.oid); ok {
			if !prev.Equal(out) {
				ndErr := &NonDetError{Rule: rule.Name, OID: g.oid,
					Why: "two distinct values for the same Skolem identity"}
				if r.opts.NonDetWarn {
					r.traceDrop(rule.Name, trace.PhaseConstruct, trace.DropNonDeterminism)
					r.warn(ndErr.Error())
					continue
				}
				return ndErr
			}
			continue
		}
		r.outputs.Put(g.oid, out)
	}
	return nil
}

// checkOutputs is the optional run-time type checker: every output
// tree must conform to some pattern of the declared output model.
func (r *run) checkOutputs(model *pattern.Model) {
	checker := pattern.NewConformanceChecker(r.outputs, model)
	for _, e := range r.outputs.Entries() {
		ok := false
		for _, name := range model.Names() {
			if checker.Conforms(e.Tree, name) {
				ok = true
				break
			}
		}
		if !ok {
			r.warn(fmt.Sprintf("output %s conforms to no pattern of the declared output model", e.Name))
		}
	}
}

// unconverted lists source inputs no rule matched, in a total
// deterministic order (kind, then canonical key): the §3.5 exception
// message must read identically at every Parallelism setting, and a
// comparator with ties under an unstable sort would not guarantee
// that.
func (r *run) unconverted() []tree.Value {
	var out []tree.Value
	for _, a := range r.active {
		if a.source && !a.matched {
			out = append(out, a.id)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		ki, kj := out[i].Kind(), out[j].Kind()
		if ki != kj {
			return ki.String() < kj.String()
		}
		return displayKey(out[i]) < displayKey(out[j])
	})
	return out
}
