package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"yat/internal/pattern"
	"yat/internal/tree"
	"yat/internal/yatl"
)

// Options configures a program run.
type Options struct {
	// Registry supplies external functions and predicates; defaults
	// to NewRegistry().
	Registry *Registry
	// Model is an extra model environment for pattern-domain checks,
	// merged with the models declared by the program.
	Model *pattern.Model
	// DisableSafety skips the static cycle check of §3.4.
	DisableSafety bool
	// NonDetWarn downgrades the run-time non-determinism alert from
	// an error to a warning (the paper only mandates an alert).
	NonDetWarn bool
	// MaxRounds bounds the activation fixpoint as defence against
	// non-terminating programs; 0 means the default (10000).
	MaxRounds int
	// CheckOutputs turns on the run-time type checker of Figure 6:
	// after dereferencing, every output must conform to some pattern
	// of this model; non-conforming outputs are reported as warnings
	// ("if required by the user, a type checker", §5.1).
	CheckOutputs *pattern.Model
}

// Stats reports work done by a run.
type Stats struct {
	Activations int // ground inputs processed (source + derived)
	Bindings    int // variable bindings accumulated across rules
	Outputs     int // Skolem identities defined
	Rounds      int // activation fixpoint rounds
}

// Result is the outcome of a successful run.
type Result struct {
	// Outputs holds one tree per Skolem identity defined by the
	// program, fully dereferenced.
	Outputs *tree.Store
	// Warnings collects non-fatal diagnostics: dangling references,
	// dropped bindings, and (with NonDetWarn) non-determinism alerts.
	Warnings []string
	// Unconverted lists the identities of source inputs that no rule
	// matched — the condition the §3.5 exception rule reports.
	Unconverted []tree.Value
	Stats       Stats
}

// ErrUnconverted is returned when the program contains an exception
// rule (§3.5) and some source input was not involved in the
// conversion.
type ErrUnconverted struct {
	IDs []tree.Value
}

func (e *ErrUnconverted) Error() string {
	parts := make([]string, len(e.IDs))
	for i, id := range e.IDs {
		parts[i] = id.Display()
	}
	return "engine: exception rule fired: input data not converted: " + strings.Join(parts, ", ")
}

// Run executes a YATL program over the input store and returns the
// converted outputs. The run follows the five phases of §3.1, with
// Skolem functions global to the program so rule order is irrelevant,
// hierarchy dispatch per §4.2, and end-of-run dereferencing.
func Run(prog *yatl.Program, inputs *tree.Store, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	reg := opts.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	if !opts.DisableSafety {
		if err := CheckSafety(prog); err != nil {
			return nil, err
		}
	}
	model := pattern.NewModel()
	for _, m := range prog.Models {
		model = model.Merge(m.Model)
	}
	if opts.Model != nil {
		model = model.Merge(opts.Model)
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 10000
	}

	r := &run{
		prog:      prog,
		reg:       reg,
		opts:      opts,
		inputs:    inputs,
		outputs:   tree.NewStore(),
		matcher:   &Matcher{Store: inputs, Model: model},
		hier:      buildHierarchy(prog, model),
		seenIDs:   map[string]bool{},
		ruleState: map[string]*ruleState{},
	}
	for _, rule := range prog.Rules {
		if rule.Exception {
			continue
		}
		r.ruleState[rule.Name] = newRuleState(rule)
	}

	// Seed with the source inputs.
	for _, e := range inputs.Entries() {
		r.activate(tree.Ref{Name: e.Name}, e.Tree, true)
	}

	// Activation fixpoint: match new inputs, evaluate new bindings,
	// discover the Skolem arguments they mint, activate them.
	rounds := 0
	for r.processed < len(r.active) {
		rounds++
		if rounds > maxRounds {
			return nil, fmt.Errorf("engine: activation fixpoint did not converge within %d rounds", maxRounds)
		}
		for r.processed < len(r.active) {
			a := r.active[r.processed]
			r.processed++
			r.matchActivation(a)
		}
		// Multi-pattern rules join across all activations; recompute
		// when their caches grew, then evaluate any new bindings.
		for _, rule := range prog.Rules {
			if rule.Exception || len(rule.Body) < 2 {
				continue
			}
			r.joinMultiBody(rule)
		}
		if err := r.evaluateNewBindings(); err != nil {
			return nil, err
		}
	}

	// Construction phase: group the evaluated bindings of each rule
	// by head Skolem identity and build the output trees.
	for _, rule := range prog.Rules {
		if rule.Exception {
			continue
		}
		if err := r.constructRule(rule); err != nil {
			return nil, err
		}
	}

	if err := expandDerefs(r.outputs); err != nil {
		return nil, err
	}
	for _, name := range danglingRefs(r.outputs, inputs) {
		r.warn(fmt.Sprintf("dangling reference &%s in output", name))
	}
	if opts.CheckOutputs != nil {
		r.checkOutputs(opts.CheckOutputs)
	}

	res := &Result{
		Outputs:     r.outputs,
		Warnings:    r.warnings,
		Unconverted: r.unconverted(),
		Stats: Stats{
			Activations: len(r.active),
			Bindings:    r.totalBindings(),
			Outputs:     r.outputs.Len(),
			Rounds:      rounds,
		},
	}
	if len(r.hier.exceptions) > 0 && len(res.Unconverted) > 0 {
		return res, &ErrUnconverted{IDs: res.Unconverted}
	}
	return res, nil
}

// activation is one ground input the rules are applied to: a source
// tree from the input store, or a subtree/atom demanded by a Skolem
// argument (the recursion of the Web rules).
type activation struct {
	id     tree.Value
	node   *tree.Node
	source bool
	// matched records that some non-exception rule matched this
	// input (used by the exception check).
	matched bool
}

// ruleState accumulates the matching and evaluation state of one rule
// across the run.
type ruleState struct {
	rule *yatl.Rule
	// perPattern caches, for each body pattern, the bindings obtained
	// from every activation so far (multi-pattern rules only).
	perPattern [][]Binding
	grew       bool
	// raw are the matched bindings not yet put through lets and
	// predicates; keyed for deduplication.
	raw     []Binding
	rawSeen map[string]bool
	rawNext int
	// evaluated are the bindings that survived phases 2 and 3.
	evaluated []Binding
	evalNext  int
	// skolemRefs are the pattern references occurring in the head
	// tree (computed once).
	skolemRefs []pattern.PatRef
}

func newRuleState(rule *yatl.Rule) *ruleState {
	s := &ruleState{
		rule:       rule,
		perPattern: make([][]Binding, len(rule.Body)),
		rawSeen:    map[string]bool{},
	}
	if rule.Head.Tree != nil {
		s.skolemRefs = rule.Head.Tree.PatternRefs()
	}
	return s
}

type run struct {
	prog    *yatl.Program
	reg     *Registry
	opts    *Options
	inputs  *tree.Store
	outputs *tree.Store
	matcher *Matcher
	hier    *hierarchy

	active    []*activation
	processed int
	seenIDs   map[string]bool

	ruleState map[string]*ruleState
	warnings  []string
}

func (r *run) warn(msg string) { r.warnings = append(r.warnings, msg) }

func (r *run) totalBindings() int {
	total := 0
	for _, s := range r.ruleState {
		total += len(s.raw)
	}
	return total
}

// activate registers an input for rule application, once per
// identity.
func (r *run) activate(id tree.Value, node *tree.Node, source bool) {
	key := id.Kind().String() + ":" + displayKey(id)
	if r.seenIDs[key] {
		return
	}
	r.seenIDs[key] = true
	r.active = append(r.active, &activation{id: id, node: node, source: source})
}

// activateValue turns a Skolem-argument value into an activation: a
// reference resolves through the input store, a wrapped subtree
// activates directly, an atom becomes a leaf input (derived, so the
// exception check ignores it).
func (r *run) activateValue(v tree.Value) {
	switch val := v.(type) {
	case tree.Ref:
		if n, ok := r.inputs.Get(val.Name); ok {
			r.activate(val, n, false)
		}
	case tree.TreeVal:
		r.activate(val, val.Root, false)
	default:
		r.activate(val, tree.New(val), false)
	}
}

// matchActivation applies phase 1 to one input: per functor group,
// rules are tried most-specific-first and a match blocks the less
// specific conflicting rules for this input (§4.2).
func (r *run) matchActivation(a *activation) {
	for _, functor := range r.hier.functorOrder {
		blocked := map[string]bool{}
		for _, rule := range r.hier.groups[functor] {
			if blocked[rule.Name] {
				continue
			}
			s := r.ruleState[rule.Name]
			if len(rule.Body) == 1 {
				bs := r.matchBodyPattern(rule.Body[0], a)
				if len(bs) == 0 {
					continue
				}
				a.matched = true
				for _, name := range r.hier.blocks[rule.Name] {
					blocked[name] = true
				}
				r.addRaw(s, bs)
				continue
			}
			// Multi-pattern rule: cache the matches of every body
			// pattern; the join happens per round.
			for i := range rule.Body {
				bs := r.matchBodyPattern(rule.Body[i], a)
				if len(bs) == 0 {
					continue
				}
				a.matched = true
				s.perPattern[i] = append(s.perPattern[i], bs...)
				s.grew = true
			}
		}
	}
}

// matchBodyPattern matches one body pattern against an activation and
// binds the body's pattern variable to the input identity.
func (r *run) matchBodyPattern(bp yatl.BodyPattern, a *activation) []Binding {
	if bp.Domain != "" && r.matcher.Model != nil {
		if _, defined := r.matcher.Model.Get(bp.Domain); defined {
			if !r.matcher.conformance().Conforms(a.node, bp.Domain) {
				return nil
			}
		}
	}
	bs := r.matcher.MatchTree(bp.Tree, a.node)
	if len(bs) == 0 {
		return nil
	}
	return bindAll(bs, bp.Var, a.id)
}

func (r *run) addRaw(s *ruleState, bs []Binding) {
	for _, b := range bs {
		k := b.Key()
		if s.rawSeen[k] {
			continue
		}
		s.rawSeen[k] = true
		s.raw = append(s.raw, b)
	}
}

// joinMultiBody recomputes the cross-pattern join of a multi-pattern
// rule when any per-pattern cache grew (Rule 3's heterogeneous join).
func (r *run) joinMultiBody(rule *yatl.Rule) {
	s := r.ruleState[rule.Name]
	if !s.grew {
		return
	}
	s.grew = false
	joined := s.perPattern[0]
	for i := 1; i < len(s.perPattern); i++ {
		joined = hashJoin(joined, s.perPattern[i])
		if len(joined) == 0 {
			return
		}
	}
	r.addRaw(s, joined)
}

// evaluateNewBindings runs phases 2 (external functions with type
// filtering) and 3 (predicates) over the raw bindings accumulated
// since the last call, then discovers and activates the Skolem
// arguments minted by the survivors.
func (r *run) evaluateNewBindings() error {
	for _, rule := range r.prog.Rules {
		if rule.Exception {
			continue
		}
		s := r.ruleState[rule.Name]
		for ; s.rawNext < len(s.raw); s.rawNext++ {
			b, ok, err := r.evalBinding(rule, s.raw[s.rawNext])
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			s.evaluated = append(s.evaluated, b)
		}
		// Discover activations minted by the new evaluated bindings.
		for ; s.evalNext < len(s.evaluated); s.evalNext++ {
			b := s.evaluated[s.evalNext]
			for _, ref := range s.skolemRefs {
				for _, arg := range ref.Args {
					if !arg.IsVar {
						continue
					}
					if v, bound := b[arg.Var]; bound {
						r.activateValue(v)
					}
				}
			}
		}
	}
	return nil
}

// evalBinding applies the rule's lets and predicates to one binding.
func (r *run) evalBinding(rule *yatl.Rule, b Binding) (Binding, bool, error) {
	if len(rule.Lets) > 0 {
		b = b.Clone()
	}
	for _, l := range rule.Lets {
		args, ok := resolveOperands(b, l.Args)
		if !ok {
			return nil, false, nil
		}
		val, typed, err := r.reg.Call(l.Func, args)
		if err != nil {
			var raised ErrRaised
			if errors.As(err, &raised) {
				return nil, false, err
			}
			r.warn(fmt.Sprintf("rule %s: %v (binding dropped)", rule.Name, err))
			return nil, false, nil
		}
		if !typed {
			return nil, false, nil // the §3.1 type filter
		}
		b[l.Var] = val
	}
	for _, p := range rule.Preds {
		ok, err := r.evalPred(rule, p, b)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
	}
	return b, true, nil
}

func (r *run) evalPred(rule *yatl.Rule, p yatl.Pred, b Binding) (bool, error) {
	if p.IsCall() {
		args, ok := resolveOperands(b, p.Args)
		if !ok {
			return false, nil
		}
		res, typed, err := r.reg.CallBool(p.Call, args)
		if err != nil {
			var raised ErrRaised
			if errors.As(err, &raised) {
				return false, err
			}
			r.warn(fmt.Sprintf("rule %s: %v (binding dropped)", rule.Name, err))
			return false, nil
		}
		return res && typed, nil
	}
	left, ok := resolveOperand(b, p.Left)
	if !ok {
		return false, nil
	}
	right, ok := resolveOperand(b, p.Right)
	if !ok {
		return false, nil
	}
	cmp := tree.Compare(left, right)
	switch p.Op {
	case yatl.OpEq:
		return tree.EqualValues(left, right), nil
	case yatl.OpNe:
		return !tree.EqualValues(left, right), nil
	case yatl.OpLt:
		return cmp < 0, nil
	case yatl.OpLe:
		return cmp <= 0, nil
	case yatl.OpGt:
		return cmp > 0, nil
	case yatl.OpGe:
		return cmp >= 0, nil
	}
	return false, fmt.Errorf("engine: rule %s: unknown comparison", rule.Name)
}

func resolveOperands(b Binding, ops []yatl.Operand) ([]tree.Value, bool) {
	out := make([]tree.Value, len(ops))
	for i, o := range ops {
		v, ok := resolveOperand(b, o)
		if !ok {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

func resolveOperand(b Binding, o yatl.Operand) (tree.Value, bool) {
	if !o.IsVar {
		return o.Const, true
	}
	v, ok := b[o.Var]
	return v, ok
}

// constructRule is phase 4+5 for one rule: evaluate the head Skolem
// per binding, group, and construct the output trees.
func (r *run) constructRule(rule *yatl.Rule) error {
	s := r.ruleState[rule.Name]
	if len(s.evaluated) == 0 {
		return nil
	}
	type oidGroup struct {
		oid      tree.Name
		bindings []Binding
	}
	index := map[string]int{}
	var groups []oidGroup
	headRef := pattern.PatRef{Name: rule.Head.Functor, Args: rule.Head.Args}
	for _, b := range s.evaluated {
		c := &constructor{rule: rule.Name}
		oid, err := c.evalSkolem(headRef, []Binding{b})
		if err != nil {
			r.warn(fmt.Sprintf("rule %s: %v (binding dropped)", rule.Name, err))
			continue
		}
		key := oid.Key()
		if i, ok := index[key]; ok {
			groups[i].bindings = append(groups[i].bindings, b)
			continue
		}
		index[key] = len(groups)
		groups = append(groups, oidGroup{oid: oid, bindings: []Binding{b}})
	}
	for _, g := range groups {
		c := &constructor{
			rule: rule.Name,
			oid:  g.oid,
			hook: func(oid tree.Name, deref bool) {},
		}
		out, err := c.construct(rule.Head.Tree, g.bindings)
		if err != nil {
			var nd *NonDetError
			if errors.As(err, &nd) && r.opts.NonDetWarn {
				r.warn(nd.Error())
				continue
			}
			return err
		}
		if prev, ok := r.outputs.Get(g.oid); ok {
			if !prev.Equal(out) {
				ndErr := &NonDetError{Rule: rule.Name, OID: g.oid,
					Why: "two distinct values for the same Skolem identity"}
				if r.opts.NonDetWarn {
					r.warn(ndErr.Error())
					continue
				}
				return ndErr
			}
			continue
		}
		r.outputs.Put(g.oid, out)
	}
	return nil
}

// checkOutputs is the optional run-time type checker: every output
// tree must conform to some pattern of the declared output model.
func (r *run) checkOutputs(model *pattern.Model) {
	checker := pattern.NewConformanceChecker(r.outputs, model)
	for _, e := range r.outputs.Entries() {
		ok := false
		for _, name := range model.Names() {
			if checker.Conforms(e.Tree, name) {
				ok = true
				break
			}
		}
		if !ok {
			r.warn(fmt.Sprintf("output %s conforms to no pattern of the declared output model", e.Name))
		}
	}
}

// unconverted lists source inputs no rule matched.
func (r *run) unconverted() []tree.Value {
	var out []tree.Value
	for _, a := range r.active {
		if a.source && !a.matched {
			out = append(out, a.id)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return displayKey(out[i]) < displayKey(out[j])
	})
	return out
}
