package engine

import (
	"math/rand"
	"testing"

	"yat/internal/tree"
	"yat/internal/workload"
	"yat/internal/yatl"
)

// Property (§3.1): "Rule 1 and Rule 2 can be applied in any order" —
// more generally, Skolem globality makes rule order irrelevant. Run
// each fixture program under several random rule permutations and
// demand identical outputs.
func TestPropertyRuleOrderIrrelevant(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	cases := []struct {
		name   string
		src    string
		inputs *tree.Store
	}{
		{"sgml2odmg", yatl.SGMLToODMGSource, workload.BrochureStore(6, 2, 4, 3)},
		{"sgml2odmgPrime", yatl.SGMLToODMGPrimeSource, workload.BrochureStore(6, 2, 4, 3)},
		{"web", yatl.WebProgramSource, workload.ODMGStore(4, 3, 2, 3)},
	}
	for _, c := range cases {
		base := yatl.MustParse(c.src)
		ref, err := Run(base, c.inputs, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		want := tree.FormatStore(sorted(ref.Outputs))
		for trial := 0; trial < 5; trial++ {
			perm := base.Clone()
			r.Shuffle(len(perm.Rules), func(i, j int) {
				perm.Rules[i], perm.Rules[j] = perm.Rules[j], perm.Rules[i]
			})
			res, err := Run(perm, c.inputs, nil)
			if err != nil {
				t.Fatalf("%s trial %d: %v", c.name, trial, err)
			}
			if got := tree.FormatStore(sorted(res.Outputs)); got != want {
				t.Fatalf("%s trial %d: outputs changed under rule permutation", c.name, trial)
			}
		}
	}
}

func sorted(s *tree.Store) *tree.Store {
	out := tree.NewStore()
	for _, e := range s.SortedEntries() {
		out.Put(e.Name, e.Tree)
	}
	return out
}

// Property: input store entry order does not affect the converted
// values (only their discovery order).
func TestPropertyInputOrderIrrelevant(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	base := workload.BrochureStore(8, 2, 5, 9)
	ref, err := Run(prog, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := tree.FormatStore(sorted(ref.Outputs))
	entries := base.Entries()
	for trial := 0; trial < 5; trial++ {
		shuffled := tree.NewStore()
		order := r.Perm(len(entries))
		for _, i := range order {
			shuffled.Put(entries[i].Name, entries[i].Tree)
		}
		res, err := Run(prog, shuffled, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := tree.FormatStore(sorted(res.Outputs)); got != want {
			t.Fatalf("trial %d: outputs changed under input permutation", trial)
		}
	}
}

// Property: running a program twice over the same inputs gives
// identical results, and running it over its own outputs never panics
// (conversions are safe on arbitrary data — "no error will occur",
// §3.5).
func TestPropertyIdempotentAndTotal(t *testing.T) {
	progs := []string{yatl.SGMLToODMGSource, yatl.WebProgramSource}
	inputs := workload.BrochureStore(5, 2, 4, 31)
	for _, src := range progs {
		prog := yatl.MustParse(src)
		r1, err := Run(prog, inputs, nil)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(prog, inputs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tree.FormatStore(r1.Outputs) != tree.FormatStore(r2.Outputs) {
			t.Fatal("second run differs")
		}
		// Feed the outputs back in: no panic, no error (matching may
		// or may not find anything).
		again := tree.NewStore()
		for _, e := range r1.Outputs.Entries() {
			again.Put(e.Name, e.Tree)
		}
		if _, err := Run(prog, again, nil); err != nil {
			t.Fatalf("running over own outputs failed: %v", err)
		}
	}
}

// Property: converted supplier objects agree with the source data —
// every Psup output's name equals its Skolem key and its city/zip
// derive from some source address.
func TestPropertyOutputsTraceableToSources(t *testing.T) {
	pool := workload.Suppliers(6, 77)
	store := tree.NewStore()
	for i, b := range workload.Brochures(10, 3, pool, 77) {
		store.Put(tree.PlainName(string(rune('a'+i))), b.Tree())
	}
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	res, err := Run(prog, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]workload.Supplier{}
	for _, s := range pool {
		byName[s.Name] = s
	}
	for _, e := range res.Outputs.Entries() {
		if e.Name.Functor != "Psup" {
			continue
		}
		key := e.Name.Args[0].(tree.String)
		src, known := byName[string(key)]
		if !known {
			t.Fatalf("supplier %s not in the source pool", key)
		}
		sup := e.Tree.Children[0]
		if !sup.Children[0].Children[0].Label.Equal(key) {
			t.Errorf("name attribute does not match Skolem key: %s", e.Tree)
		}
		if !sup.Children[1].Children[0].Label.Equal(tree.String(src.City)) {
			t.Errorf("city mismatch for %s: %s", key, e.Tree)
		}
		if !sup.Children[2].Children[0].Label.Equal(tree.Int(src.Zip)) {
			t.Errorf("zip mismatch for %s: %s", key, e.Tree)
		}
	}
}

// Property: the matcher is stable — matching the same pattern against
// the same tree repeatedly yields the same bindings, in the same
// order.
func TestPropertyMatcherDeterministic(t *testing.T) {
	rule := yatl.MustParseRule("rule R {\n  head F(X) = o\n  from X = " + yatl.BrochureBody + "\n}")
	m := &Matcher{}
	store := workload.BrochureStore(1, 5, 5, 13)
	input, _ := store.Get(tree.PlainName("b1"))
	first := m.MatchTree(rule.Body[0].Tree, input)
	for i := 0; i < 20; i++ {
		again := m.MatchTree(rule.Body[0].Tree, input)
		if len(again) != len(first) {
			t.Fatal("binding count changed")
		}
		for j := range again {
			if again[j].Key() != first[j].Key() {
				t.Fatalf("binding %d changed between runs", j)
			}
		}
	}
}
