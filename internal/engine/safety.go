package engine

import (
	"fmt"
	"sort"
	"strings"

	"yat/internal/pattern"
	"yat/internal/yatl"
)

// CheckSafety implements the static analysis of §3.4: it builds the
// dependency graph of dereferenced Skolem functors and rejects the
// program when the graph is cyclic, unless every rule defining a
// functor on a cycle is *safe-recursive*:
//
//   - the rule's head functor has a single argument which is the
//     rule's (single) body pattern variable, and
//   - every dereferenced recursive invocation passes a variable bound
//     to a proper subtree of the input.
//
// This is decidable syntactically and guarantees the absence of
// cycles at run time (the recursion strictly descends the finite
// input tree).
func CheckSafety(prog *yatl.Program) error {
	violations := SafetyViolations(prog)
	if len(violations) == 0 {
		return nil
	}
	return &SafetyError{Violations: violations}
}

// SafetyError is the typed form of a CheckSafety failure: the program
// dereferences a Skolem cycle and at least one rule on the cycle is
// not safe-recursive. It is errors.As-able through every API that
// runs the check (engine.Run, the yat facade, the mediator).
type SafetyError struct {
	Violations []SafetyViolation
}

func (e *SafetyError) Error() string {
	var errs []string
	for _, v := range e.Violations {
		errs = append(errs, fmt.Sprintf("rule %s (functor %s): %s", v.Rule.Name, v.Functor, v.Reason))
	}
	return fmt.Sprintf("engine: potentially cyclic program (dereferenced Skolem cycle through %s) and not safe-recursive:\n  %s",
		strings.Join(e.Violations[0].Cycle, " -> "), strings.Join(errs, "\n  "))
}

// SafetyViolation is one rule failing the §3.4 safe-recursion check:
// its functor lies on a dereference cycle and the rule is not
// syntactically safe-recursive.
type SafetyViolation struct {
	Rule    *yatl.Rule
	Functor string
	Reason  string
	// Cycle lists (sorted) every functor participating in a
	// dereference cycle of the program.
	Cycle []string
}

// SafetyViolations is the structured form of CheckSafety: it returns
// one violation per offending rule, in declaration order, so callers
// (the analysis driver) can attach positions and related information
// instead of a flat error string. An empty slice means the program is
// safe.
func SafetyViolations(prog *yatl.Program) []SafetyViolation {
	deps := derefDependencies(prog)
	cyclic := functorsOnCycles(deps)
	if len(cyclic) == 0 {
		return nil
	}
	names := make([]string, 0, len(cyclic))
	for f := range cyclic {
		names = append(names, f)
	}
	sort.Strings(names)
	var out []SafetyViolation
	for _, r := range prog.Rules {
		if r.Exception || !cyclic[r.Head.Functor] {
			continue
		}
		if why := safeRecursive(r, cyclic); why != "" {
			out = append(out, SafetyViolation{Rule: r, Functor: r.Head.Functor, Reason: why, Cycle: names})
		}
	}
	return out
}

// derefDependencies returns, per head functor, the set of functors it
// dereferences in its head trees. References (&) do not create
// dependencies: they never force inclusion of one value in another.
func derefDependencies(prog *yatl.Program) map[string]map[string]bool {
	deps := map[string]map[string]bool{}
	for _, r := range prog.Rules {
		if r.Exception || r.Head.Tree == nil {
			continue
		}
		from := r.Head.Functor
		if deps[from] == nil {
			deps[from] = map[string]bool{}
		}
		for _, ref := range r.Head.Tree.PatternRefs() {
			if !ref.Ref {
				deps[from][ref.Name] = true
			}
		}
	}
	return deps
}

// functorsOnCycles returns the functors that participate in a cycle
// of the dependency graph (Tarjan-free: iterative color DFS keeping
// the stack, then marking every node of each back-edge loop —
// conservative: any node in a non-trivial strongly connected
// component, or with a self loop).
func functorsOnCycles(deps map[string]map[string]bool) map[string]bool {
	// Tarjan's strongly connected components.
	nodes := make([]string, 0, len(deps))
	for n := range deps {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	result := map[string]bool{}

	var strongConnect func(v string)
	strongConnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var succs []string
		for w := range deps[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, seen := index[w]; !seen {
				if _, defined := deps[w]; defined {
					strongConnect(w)
					if low[w] < low[v] {
						low[v] = low[w]
					}
				}
				continue
			}
			if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				for _, w := range comp {
					result[w] = true
				}
			} else if deps[comp[0]][comp[0]] {
				result[comp[0]] = true // self loop
			}
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongConnect(n)
		}
	}
	return result
}

// safeRecursive checks the syntactic safe-recursion condition for one
// rule whose functor lies on a cycle. It returns an empty string when
// safe, or the reason otherwise.
func safeRecursive(r *yatl.Rule, cyclic map[string]bool) string {
	if len(r.Body) != 1 {
		return "safe recursion requires a single body pattern"
	}
	if len(r.Head.Args) != 1 || !r.Head.Args[0].IsVar || r.Head.Args[0].Var != r.Body[0].Var {
		return "the Skolem functor's sole parameter must be the body pattern variable"
	}
	// Collect the variables bound strictly below the body root (these
	// are bound to proper subtrees of the input).
	proper := map[string]bool{}
	collectProperVars(r.Body[0].Tree, 0, proper)
	for _, ref := range r.Head.Tree.PatternRefs() {
		if ref.Ref || !cyclic[ref.Name] {
			continue
		}
		if len(ref.Args) != 1 || !ref.Args[0].IsVar {
			return fmt.Sprintf("recursive invocation %s must take a single variable argument", ref.Display())
		}
		v := ref.Args[0].Var
		if !proper[v] {
			return fmt.Sprintf("recursive invocation %s is not applied to a proper subtree of the input", ref.Display())
		}
	}
	return ""
}

// collectProperVars records label variables that occur at depth ≥ 1
// in the body tree (they bind proper subtrees or their labels).
func collectProperVars(t *pattern.PTree, depth int, out map[string]bool) {
	if t == nil {
		return
	}
	if v, ok := t.Label.(pattern.Var); ok && depth > 0 {
		out[v.Name] = true
	}
	for _, e := range t.Edges {
		collectProperVars(e.To, depth+1, out)
	}
}
