package engine

import (
	"strings"
	"testing"

	"yat/internal/yatl"
)

// TestSafetyThreeFunctorCycle covers mutual recursion across three
// Skolem functors: F derefs G, G derefs H, H derefs F. None of the
// rules is safe-recursive (the functors take data variables, not the
// body pattern variable), so all three must be reported, each naming
// the full cycle.
func TestSafetyThreeFunctorCycle(t *testing.T) {
	src := `
program p
rule A {
  head F(SN) = fa -> ^G(SN)
  from X = a -> SN
}
rule B {
  head G(SN) = fb -> ^H(SN)
  from X = b -> SN
}
rule C {
  head H(SN) = fc -> ^F(SN)
  from X = c -> SN
}
`
	prog := yatl.MustParse(src)
	violations := SafetyViolations(prog)
	if len(violations) != 3 {
		t.Fatalf("got %d violations, want 3: %+v", len(violations), violations)
	}
	wantCycle := []string{"F", "G", "H"}
	for i, v := range violations {
		if len(v.Cycle) != 3 {
			t.Fatalf("violation %d cycle = %v, want %v", i, v.Cycle, wantCycle)
		}
		for j, f := range wantCycle {
			if v.Cycle[j] != f {
				t.Errorf("violation %d cycle = %v, want %v", i, v.Cycle, wantCycle)
			}
		}
	}
	// Declaration order: A, B, C.
	for i, name := range []string{"A", "B", "C"} {
		if violations[i].Rule.Name != name {
			t.Errorf("violation %d is rule %s, want %s", i, violations[i].Rule.Name, name)
		}
	}
	if err := CheckSafety(prog); err == nil {
		t.Error("three-functor deref cycle accepted")
	} else if !strings.Contains(err.Error(), "F -> G -> H") {
		t.Errorf("error does not name the cycle: %v", err)
	}
}

// TestSafetyThreeFunctorCycleSafe is the same ring, rewritten to be
// safe-recursive: each functor's sole parameter is the body pattern
// variable and every recursive invocation descends into a proper
// subtree. The cycle is then permitted.
func TestSafetyThreeFunctorCycleSafe(t *testing.T) {
	src := `
program p
rule A {
  head F(X) = fa -*> ^G(Y)
  from X = a -*> Y
}
rule B {
  head G(X) = fb -*> ^H(Y)
  from X = b -*> Y
}
rule C {
  head H(X) = fc -*> ^F(Y)
  from X = c -*> Y
}
`
	if err := CheckSafety(yatl.MustParse(src)); err != nil {
		t.Errorf("safe-recursive three-functor ring rejected: %v", err)
	}
}

// TestSafetyExceptionRulesOnCycle: exception rules have no head, so
// they neither contribute dereference edges nor can they be reported
// as violations — even when the rest of the program is a cyclic mess.
func TestSafetyExceptionRulesOnCycle(t *testing.T) {
	src := `
program p
rule A {
  head F(SN) = fa -> ^G(SN)
  from X = a -> SN
}
rule B {
  head G(SN) = fb -> ^F(SN)
  from X = b -> SN
}
rule Exc {
  exception
  from Pany = Data
}
`
	prog := yatl.MustParse(src)
	violations := SafetyViolations(prog)
	if len(violations) != 2 {
		t.Fatalf("got %d violations, want 2: %+v", len(violations), violations)
	}
	for _, v := range violations {
		if v.Rule.Exception {
			t.Errorf("exception rule %s reported as a safety violation", v.Rule.Name)
		}
	}
	// The safe variant of the same ring stays accepted with the
	// exception rule present.
	safe := `
program p
rule A {
  head F(X) = fa -*> ^G(Y)
  from X = a -*> Y
}
rule B {
  head G(X) = fb -*> ^F(Y)
  from X = b -*> Y
}
rule Exc {
  exception
  from Pany = Data
}
`
	if err := CheckSafety(yatl.MustParse(safe)); err != nil {
		t.Errorf("exception rule must not break a safe cycle: %v", err)
	}
}

// TestSafetyTwoLevelDescent: a recursive rule whose invocation
// descends two levels into the input (node -*> mid -*> Z) is still a
// proper subtree and therefore safe; passing the root variable
// itself is not.
func TestSafetyTwoLevelDescent(t *testing.T) {
	safe := `
program p
rule R {
  head F(X) = wrap -*> inner -*> ^F(Z)
  from X = node -*> mid -*> Z
}
`
	if err := CheckSafety(yatl.MustParse(safe)); err != nil {
		t.Errorf("two-level descent rejected: %v", err)
	}
	unsafe := `
program p
rule R {
  head F(X) = wrap -*> inner -*> ^F(X)
  from X = node -*> mid -*> Z
}
`
	if err := CheckSafety(yatl.MustParse(unsafe)); err == nil {
		t.Error("recursion on the root variable accepted despite two-level body")
	}
}

// TestSafetyViolationsEmptyForAcyclic pins the structured API: an
// acyclic program yields a nil slice, and CheckSafety stays quiet.
func TestSafetyViolationsEmptyForAcyclic(t *testing.T) {
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	if v := SafetyViolations(prog); v != nil {
		t.Errorf("acyclic program has violations: %+v", v)
	}
}
