// Demand-driven evaluation: compute the dependency-closed *slice* of
// rules needed to materialize a set of Skolem functors, and run only
// that slice. This is the engine half of the mediator's query
// pushdown (§5 positions YAT as the conversion backbone of a
// mediator; a mediator exists precisely to avoid materializing the
// whole target per query).
//
// A slice has two parts:
//
//   - The construct set: every rule of every requested functor's
//     group, closed under head-tree dereferences (^F forces F's value
//     to exist at deref-expansion time). Groups are taken whole, so
//     the §4.2 most-specific-first blocking inside each group behaves
//     exactly as in a full run.
//
//   - The support set: rules that are not demanded but whose head
//     Skolem arguments may mint activations some slice rule matches
//     (the Web rules' recursion descends this way). Support rules run
//     phases 1–3 — enough to discover the activations they mint — but
//     construct nothing.
//
// Soundness of the restriction: every rule that can mint an
// activation matching a slice rule is itself in the slice (the
// support closure), so a slice rule sees exactly the activations it
// would see in a full run, in the same rounds and the same relative
// order. Its bindings, and therefore its constructed outputs, are
// byte-identical to the full run's. Rules outside the slice only mint
// activations no slice rule matches; omitting them loses nothing.
//
// The mint analysis classifies each head-reference variable argument:
//
//	identity (the body pattern variable)      → never a new activation
//	reference-domain leaf (&P)                → resolves through the
//	                                            input store, never new
//	label of an internal node, index variable,
//	kind/symbol-domain leaf                   → an atomic leaf input
//	anything else (let results, pattern-domain
//	or unrestricted leaves, body Skolem args)  → an arbitrary subtree
//
// Atomic mints only feed rules whose body could match a single leaf
// node; arbitrary mints conservatively feed every rule.
package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"yat/internal/pattern"
	"yat/internal/trace"
	"yat/internal/tree"
	"yat/internal/yatl"
)

// Slice is a dependency-closed set of rules sufficient to materialize
// a set of Skolem functors with full-run fidelity.
type Slice struct {
	// Functors are the requested functors, sorted and deduplicated
	// (empty requests every functor of the program).
	Functors []string
	// Closure are the functors whose groups the slice constructs,
	// sorted: the requested ones plus every functor reachable through
	// head-tree dereferences.
	Closure []string
	// Construct are the rules run in full (matching, evaluation and
	// construction), in declaration order.
	Construct []*yatl.Rule
	// Support are the rules run for activation discovery only, in
	// declaration order.
	Support []*yatl.Rule
	// Full reports that the slice is the whole program: every
	// non-exception rule is in the construct set.
	Full bool

	construct map[string]bool
	include   map[string]bool
}

// Rules returns the total number of rules in the slice.
func (s *Slice) Rules() int { return len(s.Construct) + len(s.Support) }

// Includes reports whether the named rule is in the slice.
func (s *Slice) Includes(rule string) bool { return s.include[rule] }

// Constructs reports whether the named rule's outputs are built.
func (s *Slice) Constructs(rule string) bool { return s.construct[rule] }

// String renders the slice for diagnostics and trace events.
func (s *Slice) String() string {
	funcs := "*"
	if len(s.Functors) > 0 {
		funcs = strings.Join(s.Functors, ",")
	}
	return fmt.Sprintf("functors=%s construct=%d support=%d", funcs, len(s.Construct), len(s.Support))
}

// SubProgram restricts a program to the slice's rules, preserving
// declaration order, models and order statements. Exception rules are
// never part of a slice: the §3.5 "everything converted" check is
// only meaningful for full runs. The slice-soundness argument (the
// construct rules' outputs are byte-identical to a full run's) makes
// the restriction a closed program in its own right — the federation
// planner runs one per shard as that child's whole world.
func (s *Slice) SubProgram(prog *yatl.Program) *yatl.Program {
	rules := make([]*yatl.Rule, 0, s.Rules())
	for _, r := range prog.Rules {
		if !r.Exception && s.include[r.Name] {
			rules = append(rules, r)
		}
	}
	return &yatl.Program{Name: prog.Name, Rules: rules, Models: prog.Models, Orders: prog.Orders}
}

// ComputeSlice computes the rule slice needed to materialize the
// given functors (none = all). Unknown functors contribute no rules.
// The analysis is purely syntactic and conservative: a slice may
// include more rules than strictly necessary, never fewer.
func ComputeSlice(prog *yatl.Program, functors ...string) *Slice {
	groups := map[string][]*yatl.Rule{}
	var order []string
	for _, r := range prog.Rules {
		if r.Exception {
			continue
		}
		f := r.Head.Functor
		if _, ok := groups[f]; !ok {
			order = append(order, f)
		}
		groups[f] = append(groups[f], r)
	}

	sl := &Slice{construct: map[string]bool{}, include: map[string]bool{}}
	sl.Functors = sortedUnique(functors)

	// Construct set: requested groups closed under head dereferences.
	needed := map[string]bool{}
	var work []string
	demand := func(f string) {
		if _, defined := groups[f]; defined && !needed[f] {
			needed[f] = true
			work = append(work, f)
		}
	}
	if len(functors) == 0 {
		for _, f := range order {
			demand(f)
		}
	} else {
		for _, f := range sl.Functors {
			demand(f)
		}
	}
	for len(work) > 0 {
		f := work[0]
		work = work[1:]
		for _, r := range groups[f] {
			if r.Head.Tree == nil {
				continue
			}
			for _, ref := range r.Head.Tree.PatternRefs() {
				if !ref.Ref {
					demand(ref.Name)
				}
			}
		}
	}

	// Support set: close over feeder groups until no group outside
	// the slice can mint an activation a slice rule matches. An empty
	// construct set needs no feeding at all.
	mints := map[string]mintSummary{}
	for _, rules := range groups {
		for _, r := range rules {
			mints[r.Name] = summarizeMints(r)
		}
	}
	supported := map[string]bool{}
	included := func(f string) bool { return needed[f] || supported[f] }
	for changed := len(needed) > 0; changed; {
		changed = false
		leafOK := false
		for _, f := range order {
			if !included(f) {
				continue
			}
			for _, r := range groups[f] {
				if ruleCanMatchLeaf(r) {
					leafOK = true
				}
			}
		}
		for _, f := range order {
			if included(f) {
				continue
			}
			for _, r := range groups[f] {
				m := mints[r.Name]
				if m.any || (m.atom && leafOK) {
					supported[f] = true
					changed = true
					break
				}
			}
		}
	}

	for _, f := range order {
		switch {
		case needed[f]:
			sl.Closure = append(sl.Closure, f)
			for _, r := range groups[f] {
				sl.construct[r.Name] = true
				sl.include[r.Name] = true
			}
		case supported[f]:
			for _, r := range groups[f] {
				sl.include[r.Name] = true
			}
		}
	}
	sort.Strings(sl.Closure)
	for _, r := range prog.Rules {
		if r.Exception || !sl.include[r.Name] {
			continue
		}
		if sl.construct[r.Name] {
			sl.Construct = append(sl.Construct, r)
		} else {
			sl.Support = append(sl.Support, r)
		}
	}
	total := 0
	for _, rules := range groups {
		total += len(rules)
	}
	sl.Full = len(sl.Construct) == total
	return sl
}

// mintSummary classifies what new activations a rule's head Skolem
// arguments can mint.
type mintSummary struct {
	atom bool // some argument mints atomic leaf inputs
	any  bool // some argument mints arbitrary subtrees
}

// Classification of one head-reference variable argument.
const (
	mintNone = iota // identity or reference: never a new activation
	mintAtom        // always an atomic leaf value
	mintAny         // possibly an arbitrary subtree
)

func summarizeMints(r *yatl.Rule) mintSummary {
	var m mintSummary
	if r.Head.Tree == nil {
		return m
	}
	seen := map[string]bool{}
	for _, ref := range r.Head.Tree.PatternRefs() {
		for _, arg := range ref.Args {
			if !arg.IsVar || seen[arg.Var] {
				continue
			}
			seen[arg.Var] = true
			switch classifyArg(r, arg.Var) {
			case mintAtom:
				m.atom = true
			case mintAny:
				m.any = true
			}
		}
	}
	return m
}

// classifyArg determines the most general shape the variable can be
// bound to across the rule's bindings. Identity dominates: binding
// the body pattern variable re-activates the already-active input.
// Multiple binding sites take the most general class — under optional
// (star) branches a binding may bind the variable at only one site.
func classifyArg(r *yatl.Rule, v string) int {
	for _, bp := range r.Body {
		if bp.Var == v {
			return mintNone
		}
	}
	for _, l := range r.Lets {
		if l.Var == v {
			return mintAny
		}
	}
	cls := mintNone
	for _, bp := range r.Body {
		if c := classifySites(bp.Tree, v); c > cls {
			cls = c
		}
	}
	return cls
}

// classifySites scans one body pattern tree for binding sites of v
// and returns the most general class among them.
func classifySites(t *pattern.PTree, v string) int {
	if t == nil {
		return mintNone
	}
	cls := mintNone
	up := func(c int) {
		if c > cls {
			cls = c
		}
	}
	switch l := t.Label.(type) {
	case pattern.Var:
		if l.Name == v {
			switch {
			case len(t.Edges) > 0:
				// Internal variable: binds the node label, an atom.
				up(mintAtom)
			case l.Domain.IsRefPattern():
				// &P leaf: binds a reference; references resolve
				// through the input store and never mint.
			case len(l.Domain.Kinds) > 0 || len(l.Domain.Symbols) > 0:
				// Kind/symbol domains admit only leaf constants.
				up(mintAtom)
			default:
				up(mintAny)
			}
		}
	case pattern.PatRef:
		// Matching &P(...,v,...) binds v to an arbitrary minted value.
		for _, a := range l.Args {
			if a.IsVar && a.Var == v {
				up(mintAny)
			}
		}
	}
	for _, e := range t.Edges {
		if e.Index == v {
			up(mintAtom) // index variables bind integers
		}
		up(classifySites(e.To, v))
	}
	return cls
}

// ruleCanMatchLeaf reports whether some body pattern of the rule
// could match a single leaf node (the shape of an atomic minted
// activation). Conservative: an edge that requires a child (-> or
// -#I>) rules a pattern out; anything else is assumed matchable.
func ruleCanMatchLeaf(r *yatl.Rule) bool {
	for _, bp := range r.Body {
		if bp.Tree == nil {
			continue
		}
		required := false
		for _, e := range bp.Tree.Edges {
			if e.Occ == pattern.OccOne || e.Occ == pattern.OccIndex {
				required = true
				break
			}
		}
		if !required {
			return true
		}
	}
	return false
}

// SliceResult is the outcome of a partial (slice-restricted) run.
type SliceResult struct {
	// Outputs holds the constructed trees of the construct rules,
	// fully dereferenced within the slice. References to functors
	// outside the closure stay symbolic, exactly as in a full run's
	// store.
	Outputs *tree.Store
	// RuleOutputs lists, per construct rule, its committed entries in
	// store insertion order. Rules of one group that mint the same
	// identity each list the shared entry.
	RuleOutputs map[string][]tree.StoreEntry
	// RuleSources lists, per slice rule, the source inputs that
	// directly matched it — the raw material of fine-grained source
	// invalidation.
	RuleSources map[string][]tree.Name
	// Warnings collects the run's non-fatal diagnostics (dangling
	// references excepted: a slice store is partial by design).
	Warnings []string
	Stats    Stats
}

// RunSlice executes only the given slice of the program over the
// input store. The outputs of the construct rules are byte-identical
// to the same rules' outputs in a full run at every Parallelism
// setting. A nil slice runs the full-program slice. The §3.4 safety
// check applies to the whole program, so a slice run fails exactly
// when the full run would fail the check.
func RunSlice(ctx context.Context, prog *yatl.Program, inputs *tree.Store, sl *Slice, opts ...Option) (*SliceResult, error) {
	if sl == nil {
		sl = ComputeSlice(prog)
	}
	o := NewOptions(opts...)
	if ctx != nil {
		o.Context = ctx
	}
	if o.Trace != nil {
		start := time.Now()
		defer func() {
			o.Trace.Emit(trace.Event{Kind: trace.KindSliceComputed, Phase: trace.PhaseSlice,
				Count: sl.Rules(), Detail: sl.String(), Duration: time.Since(start)})
		}()
	}
	res, err := execute(prog, inputs, o, sl)
	if err != nil {
		return nil, err
	}
	out := &SliceResult{
		Outputs:     res.Outputs,
		RuleOutputs: map[string][]tree.StoreEntry{},
		RuleSources: res.ruleSrc,
		Warnings:    res.Warnings,
		Stats:       res.Stats,
	}
	// Re-resolve the committed identities after dereferencing so the
	// per-rule entries alias the final trees.
	for rule, oids := range res.ruleOIDs {
		entries := make([]tree.StoreEntry, 0, len(oids))
		for _, oid := range oids {
			if n, ok := res.Outputs.Get(oid); ok {
				entries = append(entries, tree.StoreEntry{Name: oid, Tree: n})
			}
		}
		out.RuleOutputs[rule] = entries
	}
	return out, nil
}

func sortedUnique(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	out := append([]string(nil), in...)
	sort.Strings(out)
	n := 0
	for i, s := range out {
		if i == 0 || s != out[i-1] {
			out[n] = s
			n++
		}
	}
	return out[:n]
}
