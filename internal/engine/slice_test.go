package engine

import (
	"strings"
	"testing"

	"yat/internal/trace"
	"yat/internal/tree"
	"yat/internal/workload"
	"yat/internal/yatl"
)

func ruleNames(rules []*yatl.Rule) string {
	names := make([]string, len(rules))
	for i, r := range rules {
		names[i] = r.Name
	}
	return strings.Join(names, ",")
}

// Typed Rule 2's recursive-looking &Psup(SN) argument is annotated
// SN : string — an atomic mint — and Rule 1's body cannot match a
// leaf, so a Psup query needs Rule 1 alone.
func TestComputeSliceTypedProgram(t *testing.T) {
	prog := yatl.MustParse(yatl.AnnotatedSGMLToODMGSource)
	sup := ComputeSlice(prog, "Psup")
	if got := ruleNames(sup.Construct); got != "Sup" {
		t.Errorf("Psup construct = %s, want Sup", got)
	}
	if len(sup.Support) != 0 {
		t.Errorf("Psup support = %s, want none", ruleNames(sup.Support))
	}
	if sup.Full {
		t.Error("one-rule slice reported Full")
	}
	car := ComputeSlice(prog, "Pcar")
	if got := ruleNames(car.Construct); got != "Car" {
		t.Errorf("Pcar construct = %s, want Car", got)
	}
	if len(car.Support) != 0 {
		t.Errorf("Pcar support = %s, want none", ruleNames(car.Support))
	}
}

// Untyped Rule 2 mints &Psup(SN) from an unannotated leaf — the
// analysis cannot bound the minted shape, so Rule 2 conservatively
// joins a Psup slice as a support rule (activation discovery only).
func TestComputeSliceUntypedSupport(t *testing.T) {
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	sup := ComputeSlice(prog, "Psup")
	if got := ruleNames(sup.Construct); got != "Sup" {
		t.Errorf("Psup construct = %s, want Sup", got)
	}
	if got := ruleNames(sup.Support); got != "Car" {
		t.Errorf("Psup support = %s, want Car", got)
	}
	if !sup.Constructs("Sup") || sup.Constructs("Car") || !sup.Includes("Car") {
		t.Error("construct/include predicates inconsistent")
	}
}

// The Web program's pages dereference ^HtmlElement, and every element
// rule mints arbitrary subtrees, so both directions pull in (almost)
// everything — recursion defeats slicing, by design.
func TestComputeSliceWebProgram(t *testing.T) {
	prog := yatl.MustParse(yatl.WebProgramSource)
	page := ComputeSlice(prog, "HtmlPage")
	if !page.Full || len(page.Support) != 0 {
		t.Errorf("HtmlPage slice = %s, want full", page)
	}
	elem := ComputeSlice(prog, "HtmlElement")
	if elem.Rules() != len(prog.Rules) {
		t.Errorf("HtmlElement slice has %d rules, want %d", elem.Rules(), len(prog.Rules))
	}
	if got := ruleNames(elem.Support); got != "Web1" {
		t.Errorf("HtmlElement support = %s, want Web1", got)
	}
	if elem.Full {
		t.Error("HtmlElement slice constructs 5 of 6 rules, must not be Full")
	}
}

func TestComputeSliceEdgeCases(t *testing.T) {
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	if sl := ComputeSlice(prog); !sl.Full || sl.Rules() != 2 {
		t.Errorf("no-functor slice = %s, want full", sl)
	}
	if sl := ComputeSlice(prog, "Nope"); sl.Rules() != 0 {
		t.Errorf("unknown functor slice = %s, want empty", sl)
	}
	sel := yatl.MustParse(workload.SelectiveProgram(8))
	if sl := ComputeSlice(sel, "Pview3"); ruleNames(sl.Construct) != "View3" || len(sl.Support) != 0 {
		t.Errorf("selective slice = %s, want View3 alone", sl)
	}
}

// filterFunctors keeps a store's entries for the given functors, in
// sorted order so two stores with different insertion orders render
// identically.
func filterFunctors(s *tree.Store, functors map[string]bool) *tree.Store {
	out := tree.NewStore()
	for _, e := range s.SortedEntries() {
		if functors[e.Name.Functor] {
			out.Put(e.Name, e.Tree)
		}
	}
	return out
}

// The correctness bar of demand-driven evaluation: for every builtin
// program and every functor, the slice run's outputs for the slice's
// closure are byte-identical to the full run's, at parallelism 1, 4
// and 8.
func TestRunSliceMatchesFullRun(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		inputs *tree.Store
	}{
		{"sgml2odmg", yatl.SGMLToODMGSource, workload.BrochureStore(8, 2, 5, 42)},
		{"sgml2odmgTyped", yatl.AnnotatedSGMLToODMGSource, workload.BrochureStore(8, 2, 5, 42)},
		{"sgml2odmgPrime", yatl.SGMLToODMGPrimeSource, workload.BrochureStore(8, 2, 5, 42)},
		{"odmg2html", yatl.WebProgramSource, workload.ODMGStore(5, 3, 2, 7)},
		{"selective", workload.SelectiveProgram(6), workload.BrochureStore(6, 2, 5, 11)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog := yatl.MustParse(c.src)
			full, err := Run(prog, c.inputs, nil)
			if err != nil {
				t.Fatal(err)
			}
			functors := map[string]bool{}
			for _, r := range prog.Rules {
				if !r.Exception {
					functors[r.Head.Functor] = true
				}
			}
			for f := range functors {
				sl := ComputeSlice(prog, f)
				closure := map[string]bool{}
				for _, g := range sl.Closure {
					closure[g] = true
				}
				want := tree.FormatStore(filterFunctors(full.Outputs, closure))
				for _, par := range []int{1, 4, 8} {
					res, err := RunSlice(nil, prog, c.inputs, sl, WithParallelism(par))
					if err != nil {
						t.Fatalf("%s @%d: %v", f, par, err)
					}
					got := tree.FormatStore(filterFunctors(res.Outputs, closure))
					if got != want {
						t.Errorf("%s @%d: slice outputs differ from full run\n got:\n%s\nwant:\n%s", f, par, got, want)
					}
					// The slice constructs nothing outside its closure.
					for _, e := range res.Outputs.Entries() {
						if !closure[e.Name.Functor] {
							t.Errorf("%s @%d: stray output %s outside closure", f, par, e.Name)
						}
					}
				}
			}
		})
	}
}

// RunSlice's per-rule bookkeeping: every committed entry is attributed
// to a construct rule, and every construct rule that matched records
// its direct sources.
func TestRunSlicePerRuleOutputsAndSources(t *testing.T) {
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	inputs := workload.BrochureStore(4, 2, 3, 5)
	sl := ComputeSlice(prog, "Psup")
	res, err := RunSlice(nil, prog, inputs, sl, nil)
	if err != nil {
		t.Fatal(err)
	}
	entries := res.RuleOutputs["Sup"]
	if len(entries) == 0 {
		t.Fatal("no entries attributed to Sup")
	}
	seen := map[string]bool{}
	for _, e := range entries {
		seen[e.Name.Key()] = true
		if got, ok := res.Outputs.Get(e.Name); !ok || got != e.Tree {
			t.Errorf("entry %s does not alias the store tree", e.Name)
		}
	}
	for _, e := range res.Outputs.Entries() {
		if !seen[e.Name.Key()] {
			t.Errorf("store entry %s not attributed to any rule", e.Name)
		}
	}
	// Both the construct rule and the support rule matched the source
	// brochures directly.
	for _, rule := range []string{"Sup", "Car"} {
		srcs := res.RuleSources[rule]
		if len(srcs) != inputs.Len() {
			t.Errorf("%s matched %d sources, want %d", rule, len(srcs), inputs.Len())
		}
	}
}

// A slice run reports its slice through the trace layer.
func TestRunSliceTraceEvent(t *testing.T) {
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	inputs := workload.BrochureStore(2, 2, 3, 5)
	p := trace.NewProfile()
	if _, err := RunSlice(nil, prog, inputs, ComputeSlice(prog, "Psup"), WithTrace(p)); err != nil {
		t.Fatal(err)
	}
	if p.Slices() != 1 {
		t.Errorf("profile recorded %d slices, want 1", p.Slices())
	}
	var rendered strings.Builder
	if err := p.Render(&rendered, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rendered.String(), "slices: 1 rules=2") {
		t.Errorf("render missing slice line:\n%s", rendered.String())
	}
}
