package federate

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"

	"yat/internal/engine"
	"yat/internal/mediator"
	"yat/internal/serve/wire"
	"yat/internal/tree"
)

// Client is a remote federation child: a mediator.Asker over a
// yatserve instance, speaking the exact wire types the server serves
// (internal/serve/wire). Asks always request producer-computed merge
// keys (?keys=1), so a parent federation merges this child's answers
// in the child's own canonical order even when a display form is
// exotic. A Client carries no per-request state and is safe for
// concurrent use.
type Client struct {
	base string
	name string
	http *http.Client
	// ownsHTTP records whether NewClient built the http.Client itself.
	// Close tears down connection pools only for owned clients — a
	// caller-supplied ClientOptions.HTTPClient may be shared with the
	// rest of the process and is never the federation's to drain.
	ownsHTTP bool
	closed   atomic.Bool
	gen      atomic.Int64
}

var _ mediator.Asker = (*Client)(nil)

// ClientOptions tunes NewClient.
type ClientOptions struct {
	// Name overrides the display name (default: the base URL's host).
	Name string
	// HTTPClient overrides the transport; nil means a dedicated
	// http.Client with no global timeout — deadlines come from the
	// federation guard's per-call context.
	HTTPClient *http.Client
}

// NewClient builds a shard client over a yatserve base URL
// (e.g. "http://10.0.0.7:8080").
func NewClient(base string, opts *ClientOptions) *Client {
	c := &Client{base: strings.TrimRight(base, "/")}
	if opts != nil {
		c.name = opts.Name
		c.http = opts.HTTPClient
	}
	if c.name == "" {
		if u, err := url.Parse(c.base); err == nil && u.Host != "" {
			c.name = u.Host
		} else {
			c.name = c.base
		}
	}
	if c.http == nil {
		c.http = &http.Client{}
		c.ownsHTTP = true
	}
	return c
}

// Name is the client's display name for stats and errors.
func (c *Client) Name() string { return c.name }

// Close marks the client closed — subsequent asks fail with a typed
// *ClosedError instead of racing a torn-down transport — and releases
// idle connections, but only when the client owns its http.Client; a
// transport supplied through ClientOptions belongs to the caller and
// keeps its connection pool. Close is idempotent.
func (c *Client) Close() {
	if c.closed.Swap(true) {
		return
	}
	if c.ownsHTTP {
		c.http.CloseIdleConnections()
	}
}

// Ask implements Asker.
func (c *Client) Ask(patternSrc string, functors ...string) ([]mediator.Answer, error) {
	return c.AskContext(context.Background(), patternSrc, functors...)
}

// AskContext POSTs /ask?keys=1 and reconstructs typed answers from
// their wire form: names and binding values re-parse from their
// display rendering (tree.ParseName/ParseValue are its inverses), and
// the producer's merge key rides along as Answer.WireKey.
func (c *Client) AskContext(ctx context.Context, patternSrc string, functors ...string) ([]mediator.Answer, error) {
	body, err := json.Marshal(wire.AskRequest{Pattern: patternSrc, Functors: functors})
	if err != nil {
		return nil, err
	}
	var out wire.AskResponse
	if err := c.do(ctx, http.MethodPost, "/ask?keys=1", body, &out); err != nil {
		return nil, err
	}
	c.gen.Store(out.Generation)
	answers := make([]mediator.Answer, 0, len(out.Answers))
	for _, wa := range out.Answers {
		name, err := tree.ParseName(wa.Name)
		if err != nil {
			return nil, fmt.Errorf("shard %s: unparseable answer name %q: %w", c.name, wa.Name, err)
		}
		var binding engine.Binding
		if len(wa.Binding) > 0 {
			binding = make(engine.Binding, len(wa.Binding))
			for v, disp := range wa.Binding {
				val, err := tree.ParseValue(disp)
				if err != nil {
					return nil, fmt.Errorf("shard %s: unparseable binding %s=%q: %w", c.name, v, disp, err)
				}
				binding[v] = val
			}
		}
		answers = append(answers, mediator.Answer{Name: name, Binding: binding, WireKey: wa.Key})
	}
	return answers, nil
}

// Functors implements Asker via GET /functors.
func (c *Client) Functors() ([]string, error) {
	var out wire.FunctorsResponse
	if err := c.do(context.Background(), http.MethodGet, "/functors", nil, &out); err != nil {
		return nil, err
	}
	c.gen.Store(out.Generation)
	return out.Functors, nil
}

// Stats implements Asker: GET /stats?timing=0 decoded through the
// shared StatsView renderer's inverse, so a federation aggregates a
// remote child with the same fold it uses for a local one. A failed
// fetch yields a snapshot whose Err carries the transport error.
func (c *Client) Stats() mediator.Stats {
	var out wire.StatsResponse
	if err := c.do(context.Background(), http.MethodGet, "/stats?timing=0", nil, &out); err != nil {
		return mediator.Stats{Err: err, Generation: c.Generation()}
	}
	s := out.Mediator.Stats()
	c.gen.Store(s.Generation)
	return s
}

// Generation is the last generation observed on any response (1
// before the first).
func (c *Client) Generation() int64 {
	if g := c.gen.Load(); g > 0 {
		return g
	}
	return 1
}

// do runs one round trip. Non-2xx responses decode the wire error
// envelope into a typed *RemoteError.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	if c.closed.Load() {
		return &ClosedError{Shard: c.name}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("shard %s: %w", c.name, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("shard %s: reading response: %w", c.name, err)
	}
	if resp.StatusCode/100 != 2 {
		var envelope wire.ErrorResponse
		if json.Unmarshal(data, &envelope) == nil && envelope.Error.Code != "" {
			return &RemoteError{Status: resp.StatusCode, Code: envelope.Error.Code, Message: envelope.Error.Message}
		}
		return &RemoteError{Status: resp.StatusCode, Code: "http_error",
			Message: strings.TrimSpace(string(data))}
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("shard %s: decoding response: %w", c.name, err)
		}
	}
	return nil
}
