// Remote federation tests live in an external test package: they
// stand up real yatserve instances (internal/serve imports federate,
// so the in-package tests cannot).
package federate_test

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"yat/internal/federate"
	"yat/internal/mediator"
	"yat/internal/serve"
	"yat/internal/source"
	"yat/internal/tree"
	"yat/internal/workload"
	"yat/internal/yatl"
)

func renderAnswers(answers []mediator.Answer) []string {
	out := make([]string, len(answers))
	for i, a := range answers {
		var b strings.Builder
		b.WriteString(a.Name.String())
		vars := make([]string, 0, len(a.Binding))
		for v := range a.Binding {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for _, v := range vars {
			b.WriteString(" " + v + "=" + a.Binding[v].Display())
		}
		out[i] = b.String()
	}
	return out
}

func mustAsk(t *testing.T, a mediator.Asker, pattern string, functors ...string) []string {
	t.Helper()
	answers, err := a.Ask(pattern, functors...)
	if err != nil {
		t.Fatalf("Ask(%q, %v): %v", pattern, functors, err)
	}
	return renderAnswers(answers)
}

// childServer runs one shard's yatserve over httptest and returns a
// dialed client.
func childServer(t *testing.T, prog *yatl.Program, inputs *tree.Store) (*httptest.Server, *federate.Client) {
	t.Helper()
	s, err := serve.New(serve.Config{Prog: prog, Inputs: inputs, Pool: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := federate.NewClient(ts.URL, nil)
	t.Cleanup(c.Close)
	return ts, c
}

// TestRemoteFederationEquivalence is the golden property across the
// wire: a parent federation over remote yatserve children answers
// byte-identically to a single-process mediator — names, bindings and
// order survive the round trip through the ?keys=1 merge keys.
func TestRemoteFederationEquivalence(t *testing.T) {
	prog := yatl.MustParse(workload.SelectiveProgram(4))
	inputs := workload.BrochureStore(5, 2, 4, 21)
	single := mediator.New(prog, inputs, mediator.WithDemandDriven(true))

	plans := federate.PlanShards(prog, 2)
	var children []federate.Child
	for _, p := range plans {
		_, c := childServer(t, p.Prog, inputs)
		children = append(children, federate.Child{Asker: c, Functors: p.Functors})
	}
	fed, err := federate.New(federate.Config{Children: children})
	if err != nil {
		t.Fatal(err)
	}

	functors, err := single.Functors()
	if err != nil {
		t.Fatal(err)
	}
	if got := mustAsk(t, fed, "X"); !reflect.DeepEqual(got, mustAsk(t, single, "X")) {
		t.Errorf("remote bare ask diverged:\n got %v\nwant %v", got, mustAsk(t, single, "X"))
	}
	for _, f := range functors {
		want := mustAsk(t, single, "X", f)
		if got := mustAsk(t, fed, "X", f); !reflect.DeepEqual(got, want) {
			t.Errorf("remote ask(%s) diverged:\n got %v\nwant %v", f, got, want)
		}
	}

	// Remote discovery: a federation built without explicit functor
	// lists asks each child for its own.
	discovered, err := federate.New(federate.Config{Children: []federate.Child{
		{Asker: children[0].Asker}, {Asker: children[1].Asker},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := mustAsk(t, discovered, "X"); !reflect.DeepEqual(got, mustAsk(t, single, "X")) {
		t.Errorf("discovered federation diverged from the single mediator")
	}
}

func TestClientFunctorsAndStats(t *testing.T) {
	prog := yatl.MustParse(workload.SelectiveProgram(2))
	inputs := workload.BrochureStore(2, 1, 2, 4)
	_, c := childServer(t, prog, inputs)

	fs, err := c.Functors()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"Pview1", "Pview2"}; !reflect.DeepEqual(fs, want) {
		t.Errorf("Functors() = %v, want %v", fs, want)
	}
	if _, err := c.Ask("X", "Pview1"); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Err != nil {
		t.Fatalf("remote stats errored: %v", st.Err)
	}
	if st.Generation != 1 {
		t.Errorf("remote generation = %d, want 1", st.Generation)
	}
	if st.Asks == 0 {
		t.Errorf("remote stats show no asks: %+v", st)
	}
}

func TestClientRemoteErrorCode(t *testing.T) {
	prog := yatl.MustParse(workload.SelectiveProgram(1))
	_, c := childServer(t, prog, workload.BrochureStore(1, 1, 1, 1))
	_, err := c.Ask("< unclosed")
	var remote *federate.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want *RemoteError", err)
	}
	if remote.Code != "parse_error" || remote.Status != 400 {
		t.Errorf("RemoteError = %+v, want parse_error/400", remote)
	}
}

// TestKilledChildDegrades closes one child's listener mid-flight: the
// parent's next ask degrades to the surviving shard's answers, and
// the shard status shows the outage.
func TestKilledChildDegrades(t *testing.T) {
	prog := yatl.MustParse(workload.SelectiveProgram(4))
	inputs := workload.BrochureStore(4, 2, 4, 17)
	plans := federate.PlanShards(prog, 2)
	ts0, c0 := childServer(t, plans[0].Prog, inputs)
	_, c1 := childServer(t, plans[1].Prog, inputs)
	fed, err := federate.New(federate.Config{
		Children: []federate.Child{
			{Name: "dying", Asker: c0, Functors: plans[0].Functors},
			{Name: "alive", Asker: c1, Functors: plans[1].Functors},
		},
		Guard: &federate.GuardOptions{
			Timeout: time.Second,
			Retry:   &source.RetryOptions{MaxAttempts: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	healthyWant := mustAsk(t, fed, "X")
	ts0.Close() // the kill

	answers, err := fed.Ask("X")
	if err != nil {
		t.Fatalf("degraded ask must not error, got %v", err)
	}
	got := renderAnswers(answers)
	if len(got) == 0 || len(got) >= len(healthyWant) {
		t.Errorf("degraded ask returned %d answers, want a non-empty strict subset of %d",
			len(got), len(healthyWant))
	}
	var alive, dying mediator.ShardStatus
	for _, sh := range fed.Stats().Shards {
		switch sh.Name {
		case "alive":
			alive = sh
		case "dying":
			dying = sh
		}
	}
	if !alive.Healthy || dying.Healthy {
		t.Errorf("shard health after kill: alive=%+v dying=%+v", alive, dying)
	}
	if !alive.Remote || !dying.Remote {
		t.Error("remote children not flagged Remote in shard status")
	}
}

// TestNoGoroutineLeak pins that a full remote-federation lifecycle —
// serve children, scatter asks, shut down — leaves no goroutines
// behind.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		prog := yatl.MustParse(workload.SelectiveProgram(2))
		inputs := workload.BrochureStore(2, 1, 2, 2)
		plans := federate.PlanShards(prog, 2)
		ts0, c0 := childServer(t, plans[0].Prog, inputs)
		ts1, c1 := childServer(t, plans[1].Prog, inputs)
		fed, err := federate.New(federate.Config{Children: []federate.Child{
			{Asker: c0, Functors: plans[0].Functors},
			{Asker: c1, Functors: plans[1].Functors},
		}})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := fed.Ask("X"); err != nil {
				t.Fatal(err)
			}
		}
		c0.Close()
		c1.Close()
		ts0.Close()
		ts1.Close()
	}()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after shutdown", before, runtime.NumGoroutine())
}

// recordingTransport counts CloseIdleConnections calls — the
// observable half of Close's ownership contract.
type recordingTransport struct {
	http.Transport
	closes atomic.Int64
}

func (rt *recordingTransport) CloseIdleConnections() {
	rt.closes.Add(1)
	rt.Transport.CloseIdleConnections()
}

// Close must never tear down a caller-supplied http.Client's
// connection pool: the federation does not own it.
func TestCloseLeavesCallerClientAlone(t *testing.T) {
	prog := yatl.MustParse(workload.SelectiveProgram(1))
	ts, _ := childServer(t, prog, workload.BrochureStore(1, 1, 1, 1))

	rt := &recordingTransport{}
	c := federate.NewClient(ts.URL, &federate.ClientOptions{
		HTTPClient: &http.Client{Transport: rt},
	})
	if _, err := c.Ask("X", "Pview1"); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent
	if n := rt.closes.Load(); n != 0 {
		t.Fatalf("Close drained a caller-supplied client's pool %d times", n)
	}
}

// Asks after Close fail deterministically with the typed error
// instead of racing a torn-down transport.
func TestAskAfterCloseIsTypedError(t *testing.T) {
	prog := yatl.MustParse(workload.SelectiveProgram(1))
	ts, _ := childServer(t, prog, workload.BrochureStore(1, 1, 1, 1))
	c := federate.NewClient(ts.URL, nil)
	if _, err := c.Ask("X", "Pview1"); err != nil {
		t.Fatal(err)
	}
	c.Close()
	_, err := c.Ask("X", "Pview1")
	var closed *federate.ClosedError
	if !errors.As(err, &closed) {
		t.Fatalf("post-Close Ask: %v, want *ClosedError", err)
	}
	if _, err := c.Functors(); !errors.As(err, &closed) {
		t.Fatalf("post-Close Functors: %v, want *ClosedError", err)
	}
	if st := c.Stats(); !errors.As(st.Err, &closed) {
		t.Fatalf("post-Close Stats.Err: %v, want *ClosedError", st.Err)
	}
}
