package federate

import (
	"fmt"
	"sort"
	"strings"
)

// UnroutableError reports an Ask restricted to a functor no shard of
// the federation owns: the routing table, built from the shard plan
// (or the children's discovered functor sets), has no entry for it.
// It mirrors mediator.NotFoundError — "nothing to do, and the name
// looks wrong" — and is errors.As-able through the yat facade alias.
type UnroutableError struct {
	// Functor is the unroutable functor group.
	Functor string
	// Shards is the number of children consulted.
	Shards int
}

func (e *UnroutableError) Error() string {
	return fmt.Sprintf("federate: functor %q routes to no shard (%d shards)", e.Functor, e.Shards)
}

// FanoutError reports a scatter in which every contacted shard failed
// after its guard chain gave up — there is no partial result left to
// degrade to. Per-shard errors are keyed by shard name, mirroring
// mediator.FetchError's all-sources-failed shape.
type FanoutError struct {
	Errs map[string]error
}

func (e *FanoutError) Error() string {
	names := make([]string, 0, len(e.Errs))
	for n := range e.Errs {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s: %v", n, e.Errs[n])
	}
	return "federate: all shards failed: " + strings.Join(parts, "; ")
}

// ClosedError reports an ask issued to a shard client after its Close:
// the caller has declared the child retired, so the federation fails
// the call deterministically instead of racing a torn-down transport.
type ClosedError struct {
	// Shard is the client's display name.
	Shard string
}

func (e *ClosedError) Error() string {
	return fmt.Sprintf("federate: shard client %s is closed", e.Shard)
}

// RemoteError is a non-2xx response from a remote shard, carrying the
// wire error code so the parent can reason about the child's failure
// mode without string matching.
type RemoteError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable wire error code ("timeout", "parse_error", ...).
	Code string
	// Message is the child's error message.
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote shard: %s (%s, http %d)", e.Message, e.Code, e.Status)
}
