// Package federate layers mediators over mediators — the
// Mask-Mediator-Wrapper pattern. A Federation is itself an Asker: it
// shards a virtual target across N child mediators by functor group
// (PlanShards derives each child's closed sub-program with
// engine.ComputeSlice), serves Asks by scatter-gather, and merges the
// shard streams into exactly the order a single-process mediator
// would produce. Children may be in-process mediators or remote
// yatserve instances reached through the HTTP shard Client; every
// child call runs under the source layer's retry/breaker/timeout
// decorators, so a dead child degrades the Ask to partial results
// instead of failing it. Pipelines of programs handed to the planner
// are fused with §4.3 composition before sharding — the intermediate
// model never crosses the wire because it never exists.
package federate

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"yat/internal/compose"
	"yat/internal/engine"
	"yat/internal/mediator"
	"yat/internal/source"
	"yat/internal/trace"
	"yat/internal/tree"
	"yat/internal/yatl"
)

// Child is one explicitly configured federation member.
type Child struct {
	// Name identifies the child in stats, traces and errors. Empty
	// defaults to "shard<i>" (or the client's base URL).
	Name string
	// Asker answers the child's share of the target: an in-process
	// *mediator.Mediator, a remote *Client, or any other Asker.
	Asker mediator.Asker
	// Functors are the functor groups routed to this child. Empty
	// means discover them by calling Asker.Functors() at build time.
	Functors []string
}

// Config assembles a Federation.
type Config struct {
	// Programs is the conversion pipeline. One entry is served as-is;
	// several are fused left-to-right with §4.3 composition before
	// sharding. Required unless Children are given.
	Programs []*yatl.Program
	// Shards is the number of in-process children to shard Programs
	// across (clamped to the functor-group count; default 1). Ignored
	// when Children are given.
	Shards int
	// Children are explicit federation members (remote clients, pre-
	// built mediators). When set, Programs is optional and used only
	// for Program() introspection.
	Children []Child
	// Inputs feeds in-process children (may be nil when Options
	// carries WithSources).
	Inputs *tree.Store
	// Options are engine options applied to in-process children
	// (parallelism, sources, registry). A trace sink configured here
	// also receives the federation's own scatter/fusion events.
	Options []engine.Option
	// Compose tunes the pipeline fusion.
	Compose []compose.ComposeOption
	// Guard tunes the retry/breaker/timeout decorators around child
	// calls; nil means the documented defaults.
	Guard *GuardOptions
}

// fedChild is one child plus its routing and fault-tolerance state.
type fedChild struct {
	name   string
	asker  mediator.Asker
	owned  []string // owned functors, program declaration order
	remote bool
	chain  source.Source // guard chain; breaker state persists here

	asks     atomic.Int64
	failures atomic.Int64
	healthy  atomic.Bool
	lastErr  atomic.Value // string
}

// Federation shards a virtual target across child Askers and serves
// scatter-gather Asks over them. It implements mediator.Asker, so it
// drops into every seat a *Mediator fits: the serve pool, the tools,
// another federation.
type Federation struct {
	prog     *yatl.Program // fused program; nil for opaque children
	children []*fedChild
	route    map[string]int // functor -> children index
	sink     trace.Sink
}

var _ mediator.Asker = (*Federation)(nil)

// New builds a Federation. With explicit Children it routes across
// them (discovering functor sets where not given); otherwise it fuses
// Programs, plans shards, and spawns demand-driven in-process child
// mediators over each shard's closed sub-program.
func New(cfg Config) (*Federation, error) {
	sink := engine.NewOptions(cfg.Options...).Trace
	f := &Federation{route: map[string]int{}, sink: sink}

	if len(cfg.Programs) > 0 {
		fused, err := FusePipeline(cfg.Programs, sink, cfg.Compose...)
		if err != nil {
			return nil, err
		}
		f.prog = fused
	}

	guard := defaultGuard(cfg.Guard)
	if len(cfg.Children) > 0 {
		for i, c := range cfg.Children {
			name := c.Name
			if name == "" {
				if cl, ok := c.Asker.(*Client); ok {
					name = cl.Name()
				} else {
					name = "shard" + itoa(i)
				}
			}
			owned := c.Functors
			if len(owned) == 0 {
				fs, err := c.Asker.Functors()
				if err != nil {
					return nil, &FanoutError{Errs: map[string]error{name: err}}
				}
				owned = fs
			}
			_, remote := c.Asker.(*Client)
			f.addChild(name, c.Asker, owned, remote, guard)
		}
		return f, nil
	}

	if f.prog == nil {
		return nil, errors.New("federate: Config.Programs or Config.Children is required")
	}
	plans := PlanShards(f.prog, cfg.Shards)
	for _, p := range plans {
		// Demand-driven by default (a shard should materialize only
		// what is asked of it); an explicit WithDemandDriven in
		// cfg.Options wins because later options do.
		opts := append([]engine.Option{mediator.WithDemandDriven(true)}, cfg.Options...)
		med := mediator.New(p.Prog, cfg.Inputs, opts...)
		f.addChild("shard"+itoa(p.Index), med, p.Functors, false, guard)
	}
	return f, nil
}

// addChild registers one child and claims its functors in the routing
// table. On overlap the first claimant wins: slice soundness makes
// either owner's answers for the group byte-identical, and a
// deterministic owner keeps the scatter plan stable.
func (f *Federation) addChild(name string, asker mediator.Asker, owned []string, remote bool, guard GuardOptions) {
	c := &fedChild{name: name, asker: asker, owned: nil, remote: remote,
		chain: buildGuard(name, guard)}
	c.healthy.Store(true)
	c.lastErr.Store("")
	idx := len(f.children)
	for _, fu := range owned {
		if _, taken := f.route[fu]; taken {
			continue
		}
		f.route[fu] = idx
		c.owned = append(c.owned, fu)
	}
	f.children = append(f.children, c)
}

// Program returns the (fused) program the federation was planned
// from, nil when it routes over opaque children.
func (f *Federation) Program() *yatl.Program { return f.prog }

// Children returns the child names in declaration order.
func (f *Federation) Children() []string {
	out := make([]string, len(f.children))
	for i, c := range f.children {
		out[i] = c.name
	}
	return out
}

// Ask implements Asker.
func (f *Federation) Ask(patternSrc string, functors ...string) ([]mediator.Answer, error) {
	return f.AskContext(nil, patternSrc, functors...)
}

// AskContext scatters the ask to the owning shards and gathers a
// deterministic merge. Routing: explicit functors go to their owners
// (an unknown functor is an UnroutableError); a bare ask fans out to
// every child, each restricted to its owned groups, so no group is
// answered twice. A failed shard — timeout, open breaker, dead
// process — degrades the result to the healthy shards' answers;
// only when every contacted shard fails does the Ask error (a
// FanoutError). The merged order is byte-identical to a single
// mediator over the unsharded program: answers sort by the same
// canonical MergeKey doAsk orders by, and no key collides across
// shards because each functor group is answered by exactly one.
func (f *Federation) AskContext(ctx context.Context, patternSrc string, functors ...string) ([]mediator.Answer, error) {
	type target struct {
		c  *fedChild
		fs []string
	}
	var targets []target
	if len(functors) == 0 {
		for _, c := range f.children {
			if len(c.owned) > 0 {
				targets = append(targets, target{c: c, fs: c.owned})
			}
		}
	} else {
		byChild := map[int][]string{}
		seen := map[string]bool{}
		var order []int
		for _, fu := range functors {
			idx, ok := f.route[fu]
			if !ok {
				return nil, &UnroutableError{Functor: fu, Shards: len(f.children)}
			}
			if seen[fu] {
				continue
			}
			seen[fu] = true
			if _, started := byChild[idx]; !started {
				order = append(order, idx)
			}
			byChild[idx] = append(byChild[idx], fu)
		}
		// Contact children in declaration order regardless of the
		// functor order in the request, matching the bare-ask plan.
		sort.Ints(order)
		for _, idx := range order {
			targets = append(targets, target{c: f.children[idx], fs: byChild[idx]})
		}
	}

	results := make([][]mediator.Answer, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t target) {
			defer wg.Done()
			start := time.Now()
			var answers []mediator.Answer
			err := callGuarded(ctx, t.c.chain, func(ctx context.Context) error {
				out, err := t.c.asker.AskContext(ctx, patternSrc, t.fs...)
				if err == nil {
					answers = out
				}
				return err
			})
			t.c.asks.Add(1)
			if err != nil {
				t.c.failures.Add(1)
				t.c.healthy.Store(false)
				t.c.lastErr.Store(err.Error())
				errs[i] = err
				f.emit(trace.Event{Kind: trace.KindShardDegraded, Phase: trace.PhaseFederate,
					Detail: t.c.name + ": " + err.Error()})
				return
			}
			t.c.healthy.Store(true)
			t.c.lastErr.Store("")
			results[i] = answers
			f.emit(trace.Event{Kind: trace.KindShardAsk, Phase: trace.PhaseFederate,
				Detail: t.c.name, Count: len(answers), Duration: time.Since(start)})
		}(i, t)
	}
	wg.Wait()

	failed := map[string]error{}
	var merged []mediator.Answer
	for i, t := range targets {
		if errs[i] != nil {
			failed[t.c.name] = errs[i]
			continue
		}
		merged = append(merged, results[i]...)
	}
	if len(targets) > 0 && len(failed) == len(targets) {
		return nil, &FanoutError{Errs: failed}
	}
	if len(merged) > 1 && len(targets) > 1 {
		// Precompute keys once: MergeKey allocates, and the comparator
		// runs O(n log n) times.
		keys := make([]string, len(merged))
		for i := range merged {
			keys[i] = merged[i].MergeKey()
		}
		idx := make([]int, len(merged))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
		out := make([]mediator.Answer, len(merged))
		for i, j := range idx {
			out[i] = merged[j]
		}
		merged = out
	}
	return merged, nil
}

// Functors gathers the union of the children's functor sets, sorted.
// Like Ask, a failing child degrades the answer to the healthy
// shards' functors; only total failure errors.
func (f *Federation) Functors() ([]string, error) {
	failed := map[string]error{}
	seen := map[string]bool{}
	contacted := 0
	for _, c := range f.children {
		contacted++
		var fs []string
		err := callGuarded(nil, c.chain, func(ctx context.Context) error {
			out, err := c.asker.Functors()
			if err == nil {
				fs = out
			}
			return err
		})
		c.asks.Add(1)
		if err != nil {
			c.failures.Add(1)
			c.healthy.Store(false)
			c.lastErr.Store(err.Error())
			failed[c.name] = err
			continue
		}
		c.healthy.Store(true)
		c.lastErr.Store("")
		for _, fu := range fs {
			seen[fu] = true
		}
	}
	if contacted > 0 && len(failed) == contacted {
		return nil, &FanoutError{Errs: failed}
	}
	out := make([]string, 0, len(seen))
	for fu := range seen {
		out = append(out, fu)
	}
	sort.Strings(out)
	return out, nil
}

// Stats folds the children's snapshots through mediator.Aggregate and
// attaches per-shard health. Remote children answer from their own
// GET /stats; a child whose stats call fails contributes only its
// shard-status row.
func (f *Federation) Stats() mediator.Stats {
	var views []mediator.Stats
	shards := make([]mediator.ShardStatus, len(f.children))
	for i, c := range f.children {
		views = append(views, c.asker.Stats())
		st := mediator.ShardStatus{
			Name:     c.name,
			Remote:   c.remote,
			Functors: len(c.owned),
			Asks:     c.asks.Load(),
			Failures: c.failures.Load(),
			Healthy:  c.healthy.Load(),
		}
		if s, ok := c.lastErr.Load().(string); ok {
			st.LastErr = s
		}
		st.Breaker = source.StatsOf(c.chain).BreakerState
		shards[i] = st
	}
	agg := mediator.Aggregate(views...)
	agg.Shards = shards
	return agg
}

// Generation is the slowest child's generation — the number every
// child reaches once a reload settles. Children that cannot report
// one count as generation 1 (they never reload).
func (f *Federation) Generation() int64 {
	gen := int64(0)
	for _, c := range f.children {
		var g int64 = 1
		if gn, ok := c.asker.(interface{ Generation() int64 }); ok {
			g = gn.Generation()
		}
		if gen == 0 || g < gen {
			gen = g
		}
	}
	if gen == 0 {
		gen = 1
	}
	return gen
}

func (f *Federation) emit(e trace.Event) {
	if f.sink != nil {
		f.sink.Emit(e)
	}
}

// itoa is strconv.Itoa for the tiny shard indexes used here, avoiding
// the import for two call sites.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
