package federate

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"yat/internal/engine"
	"yat/internal/mediator"
	"yat/internal/source"
	"yat/internal/trace"
	"yat/internal/tree"
	"yat/internal/workload"
	"yat/internal/yatl"
)

// renderAnswers flattens an answer sequence into comparable strings:
// the Skolem name plus the bindings in sorted-variable order.
func renderAnswers(answers []mediator.Answer) []string {
	out := make([]string, len(answers))
	for i, a := range answers {
		var b strings.Builder
		b.WriteString(a.Name.String())
		vars := make([]string, 0, len(a.Binding))
		for v := range a.Binding {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for _, v := range vars {
			b.WriteString(" " + v + "=" + a.Binding[v].Display())
		}
		out[i] = b.String()
	}
	return out
}

func mustAsk(t *testing.T, a mediator.Asker, pattern string, functors ...string) []string {
	t.Helper()
	answers, err := a.Ask(pattern, functors...)
	if err != nil {
		t.Fatalf("Ask(%q, %v): %v", pattern, functors, err)
	}
	return renderAnswers(answers)
}

// TestFederatedEquivalence is the golden property: a federation's
// merged answers are byte-identical to a single-process mediator over
// the unsharded program, at every shard count and parallelism, for
// bare asks, single-functor asks, and multi-functor asks that cross
// shards.
func TestFederatedEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		inputs *tree.Store
	}{
		// Six independent view groups: the selective-ask workload.
		{"selective", workload.SelectiveProgram(6), workload.BrochureStore(6, 2, 5, 7)},
		// Rules 1+2: the Psup slice pulls Car in as a support rule, so
		// shard sub-programs genuinely overlap (slice soundness at work).
		{"deref", yatl.SGMLToODMGSource, workload.BrochureStore(8, 2, 5, 42)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := yatl.MustParse(tc.src)
			for _, par := range []int{1, 4, 8} {
				single := mediator.New(prog, tc.inputs,
					mediator.WithDemandDriven(true), engine.WithParallelism(par))
				functors, err := single.Functors()
				if err != nil {
					t.Fatal(err)
				}
				wantBare := mustAsk(t, single, "X")
				wantAll := mustAsk(t, single, "X", functors...)
				wantOne := make(map[string][]string, len(functors))
				for _, f := range functors {
					wantOne[f] = mustAsk(t, single, "X", f)
				}
				for _, shards := range []int{1, 2, 4} {
					fed, err := New(Config{
						Programs: []*yatl.Program{prog},
						Shards:   shards,
						Inputs:   tc.inputs,
						Options:  []engine.Option{engine.WithParallelism(par)},
					})
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("shards=%d par=%d", shards, par)
					if got := mustAsk(t, fed, "X"); !reflect.DeepEqual(got, wantBare) {
						t.Errorf("%s bare ask diverged:\n got %v\nwant %v", label, got, wantBare)
					}
					if got := mustAsk(t, fed, "X", functors...); !reflect.DeepEqual(got, wantAll) {
						t.Errorf("%s all-functor ask diverged:\n got %v\nwant %v", label, got, wantAll)
					}
					for _, f := range functors {
						if got := mustAsk(t, fed, "X", f); !reflect.DeepEqual(got, wantOne[f]) {
							t.Errorf("%s ask(%s) diverged:\n got %v\nwant %v", label, f, got, wantOne[f])
						}
					}
				}
			}
		})
	}
}

func TestPlanShards(t *testing.T) {
	prog := yatl.MustParse(workload.SelectiveProgram(5))
	plans := PlanShards(prog, 3)
	if len(plans) != 3 {
		t.Fatalf("got %d plans, want 3", len(plans))
	}
	var owned []string
	for _, p := range plans {
		owned = append(owned, p.Functors...)
		if len(p.Functors) == 0 {
			t.Errorf("shard %d owns no functors", p.Index)
		}
		if p.Prog == nil || len(p.Prog.Rules) == 0 {
			t.Errorf("shard %d has an empty sub-program", p.Index)
		}
	}
	sort.Strings(owned)
	want := []string{"Pview1", "Pview2", "Pview3", "Pview4", "Pview5"}
	if !reflect.DeepEqual(owned, want) {
		t.Errorf("owned functors = %v, want %v (disjoint and complete)", owned, want)
	}
	// n clamps to the group count: no empty shards, ever.
	if got := len(PlanShards(prog, 99)); got != 5 {
		t.Errorf("PlanShards(_, 99) produced %d shards, want 5", got)
	}
	if got := len(PlanShards(prog, 0)); got != 1 {
		t.Errorf("PlanShards(_, 0) produced %d shards, want 1", got)
	}
}

func TestUnroutableFunctor(t *testing.T) {
	fed, err := New(Config{
		Programs: []*yatl.Program{yatl.MustParse(workload.SelectiveProgram(2))},
		Shards:   2,
		Inputs:   workload.BrochureStore(2, 1, 2, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = fed.Ask("X", "Pnope")
	var unroutable *UnroutableError
	if !errors.As(err, &unroutable) {
		t.Fatalf("err = %v, want *UnroutableError", err)
	}
	if unroutable.Functor != "Pnope" || unroutable.Shards != 2 {
		t.Errorf("UnroutableError = %+v, want Functor=Pnope Shards=2", unroutable)
	}
}

// slowAsker delays every AskContext, cooperating with cancellation —
// how a stuck child looks to the guard chain's per-call timeout.
type slowAsker struct {
	mediator.Asker
	delay time.Duration
}

func (s slowAsker) AskContext(ctx context.Context, p string, fs ...string) ([]mediator.Answer, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.Asker.AskContext(ctx, p, fs...)
}

func TestChildTimeoutDegrades(t *testing.T) {
	prog := yatl.MustParse(workload.SelectiveProgram(4))
	inputs := workload.BrochureStore(3, 1, 3, 5)
	plans := PlanShards(prog, 2)
	healthy := mediator.New(plans[0].Prog, inputs, mediator.WithDemandDriven(true))
	slow := slowAsker{
		Asker: mediator.New(plans[1].Prog, inputs, mediator.WithDemandDriven(true)),
		delay: time.Second,
	}
	profile := trace.NewProfile()
	fed, err := New(Config{
		Children: []Child{
			{Name: "fast", Asker: healthy, Functors: plans[0].Functors},
			{Name: "stuck", Asker: slow, Functors: plans[1].Functors},
		},
		Options: []engine.Option{engine.WithTrace(profile)},
		Guard: &GuardOptions{
			Timeout: 30 * time.Millisecond,
			Retry:   &source.RetryOptions{MaxAttempts: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	answers, err := fed.Ask("X")
	if err != nil {
		t.Fatalf("degraded ask must not error, got %v", err)
	}
	want := mustAsk(t, healthy, "X", plans[0].Functors...)
	if got := renderAnswers(answers); !reflect.DeepEqual(got, want) {
		t.Errorf("partial answers = %v, want the healthy shard's %v", got, want)
	}
	st := fed.Stats()
	byName := map[string]mediator.ShardStatus{}
	for _, sh := range st.Shards {
		byName[sh.Name] = sh
	}
	if byName["fast"].Healthy != true || byName["stuck"].Healthy != false {
		t.Errorf("shard health = %+v, want fast healthy, stuck unhealthy", st.Shards)
	}
	if byName["stuck"].LastErr == "" {
		t.Error("stuck shard reports no LastErr")
	}
	degraded := 0
	for _, sp := range profile.Shards() {
		degraded += sp.Degraded
	}
	if degraded != 1 {
		t.Errorf("profile shows %d degraded shard asks, want 1", degraded)
	}
}

// failingAsker always errors — a dead child.
type failingAsker struct {
	calls atomic.Int64
	fs    []string
}

func (f *failingAsker) Ask(p string, fns ...string) ([]mediator.Answer, error) {
	return f.AskContext(context.Background(), p, fns...)
}

func (f *failingAsker) AskContext(context.Context, string, ...string) ([]mediator.Answer, error) {
	f.calls.Add(1)
	return nil, errors.New("child is down")
}

func (f *failingAsker) Functors() ([]string, error) { return f.fs, nil }
func (f *failingAsker) Stats() mediator.Stats       { return mediator.Stats{Generation: 1} }

func TestBreakerOpensOnDeadChild(t *testing.T) {
	prog := yatl.MustParse(workload.SelectiveProgram(2))
	inputs := workload.BrochureStore(2, 1, 2, 3)
	plans := PlanShards(prog, 2)
	healthy := mediator.New(plans[0].Prog, inputs, mediator.WithDemandDriven(true))
	dead := &failingAsker{fs: plans[1].Functors}
	clock := source.NewFakeClock()
	fed, err := New(Config{
		Children: []Child{
			{Name: "ok", Asker: healthy, Functors: plans[0].Functors},
			{Name: "dead", Asker: dead, Functors: plans[1].Functors},
		},
		Guard: &GuardOptions{
			Retry:   &source.RetryOptions{MaxAttempts: 1},
			Breaker: &source.BreakerOptions{Threshold: 2},
			Clock:   clock,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := fed.Ask("X"); err != nil {
			t.Fatalf("ask %d: degraded ask must not error, got %v", i, err)
		}
	}
	// Threshold 2: the third ask was rejected by the open breaker
	// without touching the dead child.
	if got := dead.calls.Load(); got != 2 {
		t.Errorf("dead child saw %d calls, want 2 (breaker open on the third)", got)
	}
	st := fed.Stats()
	for _, sh := range st.Shards {
		if sh.Name == "dead" {
			if sh.Breaker != "open" {
				t.Errorf("dead shard breaker = %q, want open", sh.Breaker)
			}
			if sh.Failures != 3 {
				t.Errorf("dead shard failures = %d, want 3", sh.Failures)
			}
		}
	}

	// When every contacted shard fails, the Ask errors with the full
	// per-shard picture.
	_, err = fed.Ask("X", plans[1].Functors[0])
	var fanout *FanoutError
	if !errors.As(err, &fanout) {
		t.Fatalf("all-shards-failed ask = %v, want *FanoutError", err)
	}
	if _, ok := fanout.Errs["dead"]; !ok {
		t.Errorf("FanoutError.Errs = %v, missing the dead shard", fanout.Errs)
	}
}

// TestFusedPipelineNoIntermediate: a two-program pipeline hands the
// planner prg1 : SGML↦ODMG and prg2 : ODMG↦HTML; the federation
// serves the §4.3 fusion, so the ODMG model never exists — no shard
// owns its functors, and the trace proves the fusion happened.
func TestFusedPipelineNoIntermediate(t *testing.T) {
	profile := trace.NewProfile()
	fed, err := New(Config{
		Programs: []*yatl.Program{
			yatl.MustParse(yatl.AnnotatedSGMLToODMGSource),
			yatl.MustParse(yatl.WebProgramSource),
		},
		Shards:  2,
		Inputs:  workload.BrochureStore(4, 2, 4, 9),
		Options: []engine.Option{engine.WithTrace(profile)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fusions := profile.Fusions(); len(fusions) != 1 {
		t.Fatalf("profile records %d fusions, want 1: %v", len(fusions), fusions)
	}
	functors, err := fed.Functors()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range functors {
		if f == "Pcar" || f == "Psup" {
			t.Errorf("intermediate functor %s is served — the ODMG model materialized", f)
		}
	}
	answers, err := fed.Ask("X")
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("fused pipeline produced no answers")
	}
	// The answers came straight from shards of the fused program; the
	// single-process fusion agrees.
	single := mediator.New(fed.Program(), workload.BrochureStore(4, 2, 4, 9),
		mediator.WithDemandDriven(true))
	if want := mustAsk(t, single, "X"); !reflect.DeepEqual(renderAnswers(answers), want) {
		t.Errorf("fused federation diverged from fused single mediator")
	}
}

// flakyAsker fails every third call — the race-hammer child.
type flakyAsker struct {
	inner mediator.Asker
	n     atomic.Int64
}

func (f *flakyAsker) Ask(p string, fs ...string) ([]mediator.Answer, error) {
	return f.AskContext(context.Background(), p, fs...)
}

func (f *flakyAsker) AskContext(ctx context.Context, p string, fs ...string) ([]mediator.Answer, error) {
	if f.n.Add(1)%3 == 0 {
		return nil, errors.New("flaky: injected failure")
	}
	return f.inner.AskContext(ctx, p, fs...)
}

func (f *flakyAsker) Functors() ([]string, error) { return f.inner.Functors() }
func (f *flakyAsker) Stats() mediator.Stats       { return f.inner.Stats() }

// TestAskChildFailureRace hammers concurrent Asks against a
// federation whose child fails intermittently; run under -race it
// pins the scatter-gather's and the health counters' thread safety.
func TestAskChildFailureRace(t *testing.T) {
	prog := yatl.MustParse(workload.SelectiveProgram(4))
	inputs := workload.BrochureStore(4, 2, 4, 13)
	plans := PlanShards(prog, 2)
	steady := mediator.New(plans[0].Prog, inputs, mediator.WithDemandDriven(true))
	flaky := &flakyAsker{inner: mediator.New(plans[1].Prog, inputs, mediator.WithDemandDriven(true))}
	fed, err := New(Config{
		Children: []Child{
			{Name: "steady", Asker: steady, Functors: plans[0].Functors},
			{Name: "flaky", Asker: flaky, Functors: plans[1].Functors},
		},
		Guard: &GuardOptions{
			Retry:   &source.RetryOptions{MaxAttempts: 1},
			Breaker: &source.BreakerOptions{Threshold: 1 << 30},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := mustAsk(t, steady, "X", plans[0].Functors...)
	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				answers, err := fed.Ask("X")
				if err != nil {
					errs <- fmt.Errorf("ask errored despite a healthy shard: %w", err)
					return
				}
				// Degraded asks still carry the steady shard's prefix.
				got := renderAnswers(answers)
				if len(got) < len(want) {
					errs <- fmt.Errorf("answers lost the steady shard: %d < %d", len(got), len(want))
					return
				}
			}
		}()
	}
	// Stats readers race the askers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = fed.Stats()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestFunctorsUnion(t *testing.T) {
	fed, err := New(Config{
		Programs: []*yatl.Program{yatl.MustParse(workload.SelectiveProgram(3))},
		Shards:   3,
		Inputs:   workload.BrochureStore(2, 1, 2, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fed.Functors()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Pview1", "Pview2", "Pview3"}
	if !reflect.DeepEqual(fs, want) {
		t.Errorf("Functors() = %v, want %v", fs, want)
	}
}
