package federate

import (
	"context"
	"errors"
	"time"

	"yat/internal/source"
	"yat/internal/tree"
)

// GuardOptions tunes the fault-tolerance decorators wrapped around
// every child call. The zero value (and a nil *GuardOptions) means a
// 5s per-call timeout, one retry after 25ms, and a circuit breaker
// with the source layer's defaults (open after 5 consecutive
// failures, 30s cooldown).
type GuardOptions struct {
	// Timeout bounds each child call (retry attempts individually).
	// 0 means 5s; negative disables the deadline.
	Timeout time.Duration
	// Retry tunes the retry decorator. Nil means {MaxAttempts: 2,
	// BaseDelay: 25ms, MaxDelay: 250ms}; set MaxAttempts to 1 to
	// disable retrying.
	Retry *source.RetryOptions
	// Breaker tunes the circuit breaker. Nil means the source layer's
	// defaults.
	Breaker *source.BreakerOptions
	// Clock injects time into the retry backoff and breaker cooldown
	// for tests; nil means the wall clock. An explicit Clock inside
	// Retry or Breaker wins.
	Clock source.Clock
}

// defaultGuard resolves nil and zero fields to the documented
// defaults.
func defaultGuard(g *GuardOptions) GuardOptions {
	var out GuardOptions
	if g != nil {
		out = *g
	}
	if out.Timeout == 0 {
		out.Timeout = 5 * time.Second
	}
	if out.Retry == nil {
		out.Retry = &source.RetryOptions{
			MaxAttempts: 2,
			BaseDelay:   25 * time.Millisecond,
			MaxDelay:    250 * time.Millisecond,
		}
	}
	if out.Breaker == nil {
		out.Breaker = &source.BreakerOptions{}
	}
	if out.Clock != nil {
		if out.Retry.Clock == nil {
			r := *out.Retry
			r.Clock = out.Clock
			out.Retry = &r
		}
		if out.Breaker.Clock == nil {
			b := *out.Breaker
			b.Clock = out.Clock
			out.Breaker = &b
		}
	}
	return out
}

// The guard chain reuses the source layer's decorators verbatim, so a
// child Asker gets exactly the retry/breaker/timeout semantics (and
// counters) a fault-tolerant source does. The decorators wrap
// source.Source.Fetch, so the per-call work rides into the chain
// through the context: callBox carries the closure, and the adapter
// at the bottom of the chain invokes it. The chain is built once per
// child — breaker state and retry counters persist across calls —
// while each call supplies its own box.
type callBox struct {
	fn func(context.Context) error
}

type boxKey struct{}

// askAdapter is the innermost Source of a child's guard chain.
type askAdapter struct {
	name string
}

func (a askAdapter) Name() string { return a.name }

// guardStore is the inert store every successful guarded call
// returns; the decorators never read or mutate it.
var guardStore = tree.NewStore()

func (a askAdapter) Fetch(ctx context.Context) (*tree.Store, error) {
	box, _ := ctx.Value(boxKey{}).(*callBox)
	if box == nil {
		return nil, errors.New("federate: guard chain invoked without a call")
	}
	if err := box.fn(ctx); err != nil {
		return nil, err
	}
	return guardStore, nil
}

// buildGuard assembles one child's decorator chain: breaker outside
// retry (it counts final, post-retry outcomes), retry outside the
// per-attempt timeout.
func buildGuard(name string, g GuardOptions) source.Source {
	var chain source.Source = askAdapter{name: name}
	if g.Timeout > 0 {
		chain = source.WithTimeout(chain, g.Timeout)
	}
	chain = source.WithRetry(chain, *g.Retry)
	chain = source.WithBreaker(chain, *g.Breaker)
	return chain
}

// call runs fn under the child's guard chain: bounded by the timeout,
// retried on failure, rejected outright while the breaker is open.
func callGuarded(ctx context.Context, chain source.Source, fn func(context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	_, err := chain.Fetch(context.WithValue(ctx, boxKey{}, &callBox{fn: fn}))
	return err
}
