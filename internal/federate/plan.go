package federate

import (
	"fmt"

	"yat/internal/compose"
	"yat/internal/engine"
	"yat/internal/trace"
	"yat/internal/yatl"
)

// ShardPlan is one child's share of a sharded program: the functor
// groups it owns and the closed sub-program that materializes them.
type ShardPlan struct {
	// Index and Total place the shard in the plan (0-based).
	Index, Total int
	// Functors are the owned functor groups, in program declaration
	// order. The parent routes asks for these functors here.
	Functors []string
	// Prog is the shard's closed sub-program: the slice of the parent
	// program whose construct set covers the owned functors (closed
	// under head dereferences) plus the support rules that feed them.
	// Run demand-driven with the owned functors requested, its outputs
	// for those groups are byte-identical to the full program's — the
	// slice-soundness property ComputeSlice pins.
	Prog *yatl.Program
}

// PlanShards splits a program across n children by functor group:
// groups are assigned round-robin in declaration order, and each
// shard's program is the ComputeSlice-derived closed sub-program for
// its groups. Shard-by-functor-group (rather than hashing Skolem
// identities) keeps whole groups — and the §4.2 ordering semantics
// within them — on one child, so a shard's answers for its groups
// need no cross-shard reconciliation. n is clamped to [1, #groups]:
// no shard is ever empty.
func PlanShards(prog *yatl.Program, n int) []ShardPlan {
	var groups []string
	seen := map[string]bool{}
	for _, r := range prog.Rules {
		if r.Exception {
			continue
		}
		if f := r.Head.Functor; !seen[f] {
			seen[f] = true
			groups = append(groups, f)
		}
	}
	if n < 1 {
		n = 1
	}
	if len(groups) > 0 && n > len(groups) {
		n = len(groups)
	}
	if n <= 1 {
		return []ShardPlan{{Index: 0, Total: 1, Functors: groups, Prog: prog}}
	}
	owned := make([][]string, n)
	for i, f := range groups {
		owned[i%n] = append(owned[i%n], f)
	}
	plans := make([]ShardPlan, n)
	for i := range plans {
		sl := engine.ComputeSlice(prog, owned[i]...)
		plans[i] = ShardPlan{Index: i, Total: n, Functors: owned[i], Prog: sl.SubProgram(prog)}
	}
	return plans
}

// FusePipeline folds a cross-mediator pipeline prg1 : M1↦M2, prg2 :
// M2↦M3, ... into a single one-step program with §4.3 composition,
// left to right. The fused program converts the sources directly —
// the intermediate models are never materialized, on the wire or off
// it. Each fusion is announced as a KindComposeFused event on the
// sink (nil is fine), which is how tests and EXPLAIN prove the
// intermediate model never existed.
func FusePipeline(progs []*yatl.Program, sink trace.Sink, opts ...compose.ComposeOption) (*yatl.Program, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("federate: empty pipeline")
	}
	fused := progs[0]
	for _, next := range progs[1:] {
		out, err := compose.Compose(fused, next, opts...)
		if err != nil {
			return nil, fmt.Errorf("federate: fusing %s into %s: %w", next.Name, fused.Name, err)
		}
		if sink != nil {
			sink.Emit(trace.Event{
				Kind:   trace.KindComposeFused,
				Phase:  trace.PhaseFederate,
				Detail: fmt.Sprintf("%s ∘ %s -> %s", fused.Name, next.Name, out.Name),
				Count:  len(out.Rules),
			})
		}
		fused = out
	}
	return fused, nil
}
