package library

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"yat/internal/yatl"
)

// TestExamplePrograms keeps examples/programs/ (the corpus the CI
// yatcheck gate runs over) in sync with the builtin sources: same set
// of programs, same text modulo leading/trailing blank lines.
func TestExamplePrograms(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "programs")
	sources := map[string]string{
		"sgml2odmg":      yatl.SGMLToODMGSource,
		"sgml2odmgTyped": yatl.AnnotatedSGMLToODMGSource,
		"sgml2odmgPrime": yatl.SGMLToODMGPrimeSource,
		"odmg2html":      yatl.WebProgramSource,
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	onDisk := map[string]bool{}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".yatl" {
			continue
		}
		onDisk[strings.TrimSuffix(e.Name(), ".yatl")] = true
	}
	for name := range sources {
		if !onDisk[name] {
			t.Errorf("examples/programs/%s.yatl missing", name)
		}
	}
	for name := range onDisk {
		if _, ok := sources[name]; !ok {
			t.Errorf("examples/programs/%s.yatl has no builtin source", name)
		}
	}
	for name, src := range sources {
		data, err := os.ReadFile(filepath.Join(dir, name+".yatl"))
		if err != nil {
			t.Errorf("read %s: %v", name, err)
			continue
		}
		want := strings.TrimSpace(src)
		got := strings.TrimSpace(string(data))
		if got != want {
			t.Errorf("examples/programs/%s.yatl is out of sync with its builtin source", name)
		}
		prog, err := yatl.Parse(string(data))
		if err != nil {
			t.Errorf("parse %s: %v", name, err)
			continue
		}
		if prog.Name != name {
			t.Errorf("program %s declares name %s", name, prog.Name)
		}
	}
}
