// Package library implements the program and format library of the
// YAT system (Figure 6): saving and importing conversion programs and
// models in the YATL text format, from memory or from a directory on
// disk. The paper's workflow — "the application programmer first
// imports two generic conversion programs" — starts here.
package library

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"yat/internal/pattern"
	"yat/internal/yatl"
)

// Library stores named programs and models.
type Library struct {
	programs map[string]*yatl.Program
	models   map[string]*pattern.Model
}

// New returns an empty library.
func New() *Library {
	return &Library{
		programs: map[string]*yatl.Program{},
		models:   map[string]*pattern.Model{},
	}
}

// Builtin returns a library preloaded with the paper's programs and
// models: sgml2odmg (Rules 1+2), sgml2odmgTyped (annotated),
// sgml2odmgPrime (Rule 1'+2), odmg2html (Web1–Web6), and the Yat,
// ODMG, CarSchema and Brochure models.
func Builtin() *Library {
	l := New()
	for _, src := range []string{
		yatl.SGMLToODMGSource,
		yatl.AnnotatedSGMLToODMGSource,
		yatl.SGMLToODMGPrimeSource,
		yatl.WebProgramSource,
	} {
		p := yatl.MustParse(src)
		l.PutProgram(p)
	}
	l.PutModel("Yat", pattern.YatModel())
	l.PutModel("ODMG", pattern.ODMGModel())
	l.PutModel("CarSchema", pattern.CarSchemaModel())
	l.PutModel("Brochure", pattern.BrochureModel())
	l.PutModel("HTML", pattern.HTMLModel())
	return l
}

// PutProgram stores a program under its own name.
func (l *Library) PutProgram(p *yatl.Program) { l.programs[p.Name] = p }

// Program returns a stored program (cloned, so callers may customize
// it freely).
func (l *Library) Program(name string) (*yatl.Program, bool) {
	p, ok := l.programs[name]
	if !ok {
		return nil, false
	}
	return p.Clone(), true
}

// PutModel stores a model.
func (l *Library) PutModel(name string, m *pattern.Model) { l.models[name] = m }

// Model returns a stored model (cloned).
func (l *Library) Model(name string) (*pattern.Model, bool) {
	m, ok := l.models[name]
	if !ok {
		return nil, false
	}
	return m.Clone(), true
}

// Programs lists stored program names, sorted.
func (l *Library) Programs() []string {
	out := make([]string, 0, len(l.programs))
	for n := range l.programs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Models lists stored model names, sorted.
func (l *Library) Models() []string {
	out := make([]string, 0, len(l.models))
	for n := range l.models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SaveProgram writes a program to a .yatl file.
func SaveProgram(p *yatl.Program, path string) error {
	return os.WriteFile(path, []byte(p.String()), 0o644)
}

// LoadProgram reads a .yatl file.
func LoadProgram(path string) (*yatl.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := yatl.Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("library: %s: %w", path, err)
	}
	return p, nil
}

// SaveModel writes a model to a .yatm file as a model block.
func SaveModel(name string, m *pattern.Model, path string) error {
	var b strings.Builder
	b.WriteString("model ")
	b.WriteString(name)
	b.WriteString(" {\n")
	for _, p := range m.Patterns() {
		b.WriteString("  ")
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// LoadModel reads a .yatm file.
func LoadModel(path string) (string, *pattern.Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	name, m, err := yatl.ParseModel(string(data))
	if err != nil {
		return "", nil, fmt.Errorf("library: %s: %w", path, err)
	}
	return name, m, nil
}

// LoadDir loads every .yatl program and .yatm model under dir into a
// new library.
func LoadDir(dir string) (*Library, error) {
	l := New()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		switch filepath.Ext(e.Name()) {
		case ".yatl":
			p, err := LoadProgram(path)
			if err != nil {
				return nil, err
			}
			l.PutProgram(p)
		case ".yatm":
			name, m, err := LoadModel(path)
			if err != nil {
				return nil, err
			}
			l.PutModel(name, m)
		}
	}
	return l, nil
}

// SaveDir writes the whole library into a directory.
func (l *Library) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, n := range l.Programs() {
		p := l.programs[n]
		if err := SaveProgram(p, filepath.Join(dir, n+".yatl")); err != nil {
			return err
		}
	}
	for _, n := range l.Models() {
		if err := SaveModel(n, l.models[n], filepath.Join(dir, n+".yatm")); err != nil {
			return err
		}
	}
	return nil
}
