package library

import (
	"os"
	"path/filepath"
	"testing"

	"yat/internal/engine"
	"yat/internal/pattern"
	"yat/internal/workload"
)

func TestBuiltinLibrary(t *testing.T) {
	l := Builtin()
	wantPrograms := []string{"odmg2html", "sgml2odmg", "sgml2odmgPrime", "sgml2odmgTyped"}
	got := l.Programs()
	if len(got) != len(wantPrograms) {
		t.Fatalf("Programs = %v", got)
	}
	for i, w := range wantPrograms {
		if got[i] != w {
			t.Errorf("Programs[%d] = %q, want %q", i, got[i], w)
		}
	}
	if len(l.Models()) != 5 {
		t.Errorf("Models = %v", l.Models())
	}
	// Programs come out cloned: customizing one copy leaves the
	// library intact.
	p1, _ := l.Program("sgml2odmg")
	p1.Rules[0].Name = "mutated"
	p2, _ := l.Program("sgml2odmg")
	if p2.Rules[0].Name == "mutated" {
		t.Error("library program not isolated from customization")
	}
	if _, ok := l.Program("ghost"); ok {
		t.Error("Program(ghost) found")
	}
	m, ok := l.Model("ODMG")
	if !ok {
		t.Fatal("Model(ODMG) missing")
	}
	if err := pattern.InstanceOf(m, pattern.YatModel()); err != nil {
		t.Errorf("library ODMG model broken: %v", err)
	}
}

func TestLibraryProgramsRun(t *testing.T) {
	l := Builtin()
	prog, _ := l.Program("sgml2odmg")
	store := workload.BrochureStore(3, 2, 4, 5)
	res, err := engine.Run(prog, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs.Len() == 0 {
		t.Error("library program produced nothing")
	}
}

func TestSaveLoadDir(t *testing.T) {
	dir := t.TempDir()
	l := Builtin()
	if err := l.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Programs()) != len(l.Programs()) {
		t.Errorf("programs after round trip: %v", back.Programs())
	}
	if len(back.Models()) != len(l.Models()) {
		t.Errorf("models after round trip: %v", back.Models())
	}
	// A reloaded program is still runnable.
	prog, ok := back.Program("odmg2html")
	if !ok {
		t.Fatal("odmg2html lost")
	}
	store := workload.ODMGStore(1, 1, 1, 3)
	if _, err := engine.Run(prog, store, nil); err != nil {
		t.Fatalf("reloaded program failed: %v", err)
	}
	// A reloaded model equals the original up to instantiation both
	// ways.
	m1, _ := l.Model("CarSchema")
	m2, _ := back.Model("CarSchema")
	if err := pattern.InstanceOf(m1, m2); err != nil {
		t.Errorf("reloaded model differs: %v", err)
	}
	if err := pattern.InstanceOf(m2, m1); err != nil {
		t.Errorf("reloaded model differs: %v", err)
	}
}

func TestLoadProgramErrors(t *testing.T) {
	if _, err := LoadProgram(filepath.Join(t.TempDir(), "missing.yatl")); err == nil {
		t.Error("missing file should fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.yatl")
	if err := os.WriteFile(bad, []byte("rule { broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProgram(bad); err == nil {
		t.Error("unparseable program should fail")
	}
	if _, err := LoadDir(dir); err == nil {
		t.Error("LoadDir over broken file should fail")
	}
	if _, err := LoadDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("LoadDir of missing directory should fail")
	}
}
