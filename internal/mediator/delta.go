// Incremental view maintenance: the delta-propagation half of
// Mediator.RefreshSource.
//
// A refresh used to drop every cached functor group that had matched
// one of the source's entries and let the next Ask re-materialize
// from scratch. Here the refreshed fetch is instead diffed against
// the previous merged input store (internal/delta) and absorbed in
// three tiers, cheapest proven-sound tier first:
//
//  1. Insert patch. For an insert-only delta, the union slice of the
//     affected cached groups is re-run in delta-evaluation mode
//     (engine.WithDeltaSeeds): the activation fixpoint is seeded from
//     the inserted entries alone, so the run derives exactly the
//     delta's consequences. Its outputs are appended to the per-rule
//     cache. Soundness (see internal/engine/delta.go for the full
//     argument): every binding chain of the delta run descends from
//     an inserted entry; with single-pattern rules, no construct-head
//     Skolem derefs and no exception rules in the slice, the full
//     re-run's output is exactly the cached output plus these
//     delta-rooted outputs — unless a delta-rooted binding lands in a
//     cached identity's group, which the OID collision check detects,
//     rejecting the patch. Ask answers are sorted before they are
//     returned (and the ask memo is versioned), so appending at the
//     cache's tail cannot leak an ordering difference.
//
//  2. Slice re-run. When the delta deletes or rewrites entries
//     (removing an input can unblock a less-specific rule — §4.2
//     blocking makes deletion non-monotone), joins, derefs,
//     exception rules or a collision make the patch unprovable, the
//     union slice of the affected groups is re-run normally over the
//     new inputs and swapped into the cache in place. Unaffected
//     groups stay warm; this is still far cheaper than the old
//     wholesale drop when the source feeds few of the cached groups.
//
//  3. Wholesale invalidation. A source that had been failing while
//     rules were cached has no dependency record (absent data matched
//     nothing), and a fetch that fails or degrades during the refresh
//     has no complete picture to diff — both fall back to
//     Invalidate(), exactly the old behaviour.
//
// Affected groups are found without running anything: the deleted and
// changed entries' keys are looked up in the per-rule source records
// of past slice runs, the inserted and rewritten entries are pushed
// through the PR-7 dispatch index (engine.AffectedRules), and a
// cached group is affected iff its slice — construct and support
// rules alike — contains an affected rule. A rule the delta cannot
// reach directly or through minted activations is, by slice closure,
// provably byte-identical after the refresh.
package mediator

import (
	"context"
	"fmt"

	"yat/internal/delta"
	"yat/internal/engine"
	"yat/internal/trace"
	"yat/internal/tree"
	"yat/internal/yatl"
)

// Fallback reasons carried by KindDeltaFallback trace events.
const (
	// ReasonDeletions: the delta deletes or rewrites entries; removal
	// is non-monotone under §4.2 blocking, so patching is unsound.
	ReasonDeletions = "deletions"
	// ReasonExceptionRules: the program has exception rules, which
	// fire on the complement of the matched inputs — any delta can
	// change their output.
	ReasonExceptionRules = "exception-rules"
	// ReasonMultiPatternJoin: a slice rule joins several body
	// patterns; a delta-seeded run would miss joins between new and
	// old bindings.
	ReasonMultiPatternJoin = "multi-pattern-join"
	// ReasonSkolemDeref: a construct head dereferences a Skolem (^P);
	// the patch could bake a partial value of a cached identity into
	// other outputs.
	ReasonSkolemDeref = "skolem-deref"
	// ReasonOutputCollision: the delta run minted an identity the
	// cache already holds — the new bindings belong in an existing
	// group, which only a re-run can rebuild.
	ReasonOutputCollision = "output-collision"
	// ReasonDeltaRunError: the delta-seeded run itself failed; the
	// plain re-run decides.
	ReasonDeltaRunError = "delta-run-error"
	// ReasonSliceRunError: the fallback re-run failed too; the
	// affected groups are dropped and the error is returned.
	ReasonSliceRunError = "slice-run-error"
	// ReasonDegradedSource: the refreshed source had been failing
	// while rules were cached; no dependency record exists.
	ReasonDegradedSource = "degraded-source"
	// ReasonFetchFailed: the refresh fetch failed or left some source
	// degraded; there is no complete new picture to diff.
	ReasonFetchFailed = "fetch-failed"
	// ReasonNoBaseline: no previous merge is recorded to diff against.
	ReasonNoBaseline = "no-baseline"
)

// deltaOutcome summarizes one refresh for counters and trace events.
type deltaOutcome struct {
	// wholesale: the whole demand generation must be invalidated
	// (tier 3). fallback: the refresh was absorbed by a slice re-run
	// (tier 2). Neither set: absorbed incrementally (tier 1, possibly
	// trivially — empty delta or no cached dependents).
	wholesale bool
	fallback  bool
	reason    string
	ins, del  int
	chg       int
	patched   int
}

func (o deltaOutcome) detail(name string) string {
	if o.reason != "" {
		return fmt.Sprintf("source=%s reason=%s inserted=%d deleted=%d changed=%d patched-rules=%d",
			name, o.reason, o.ins, o.del, o.chg, o.patched)
	}
	return fmt.Sprintf("source=%s inserted=%d deleted=%d changed=%d patched-rules=%d",
		name, o.ins, o.del, o.chg, o.patched)
}

// refreshDelta is the demand-mode tail of RefreshSource: diff, patch
// or re-run under the generation lock, then count and trace the
// outcome. Wholesale invalidation happens here, after the generation
// lock is released — Invalidate takes m.mu, and the established lock
// order (Reload) is m.mu before g.mu.
func (m *Mediator) refreshDelta(ctx context.Context, name string) error {
	st := m.state()
	out, err := m.applyDelta(ctx, st, name)
	switch {
	case out.wholesale:
		m.deltaFallbacks.Add(1)
		m.emitDelta(trace.KindDeltaFallback, out, name)
		m.Invalidate()
	case out.fallback:
		m.deltaFallbacks.Add(1)
		m.patchedRules.Add(int64(out.patched))
		m.emitDelta(trace.KindDeltaFallback, out, name)
	default:
		m.deltaRuns.Add(1)
		m.patchedRules.Add(int64(out.patched))
		m.emitDelta(trace.KindDeltaApplied, out, name)
	}
	return err
}

func (m *Mediator) emitDelta(kind trace.Kind, out deltaOutcome, name string) {
	if m.opts.Trace == nil {
		return
	}
	m.opts.Trace.Emit(trace.Event{Kind: kind, Phase: trace.PhaseSlice,
		Detail: out.detail(name), Count: out.patched})
}

// applyDelta performs the diff and the patch/re-run under the
// generation lock, serializing with ensureDemand so a concurrent Ask
// observes the cache before or after the refresh, never mid-patch.
func (m *Mediator) applyDelta(ctx context.Context, st *progState, name string) (deltaOutcome, error) {
	g := st.dgen
	g.mu.Lock()
	defer g.mu.Unlock()

	if g.degraded[name] {
		return deltaOutcome{wholesale: true, reason: ReasonDegradedSource}, nil
	}
	if len(g.cached) == 0 {
		// Cold cache: nothing to patch; the next Ask fetches fresh.
		return deltaOutcome{}, nil
	}
	m.srcMu.Lock()
	prev := m.lastMerged
	m.srcMu.Unlock()
	if prev == nil {
		return deltaOutcome{wholesale: true, reason: ReasonNoBaseline}, nil
	}
	inputs, err := m.fetchInputs(ctx)
	if err != nil {
		return deltaOutcome{wholesale: true, reason: ReasonFetchFailed}, nil
	}
	degradedNow := false
	m.srcMu.Lock()
	for _, ferr := range m.srcErrs {
		if ferr != nil {
			degradedNow = true
			break
		}
	}
	m.srcMu.Unlock()
	if degradedNow {
		return deltaOutcome{wholesale: true, reason: ReasonFetchFailed}, nil
	}

	d := delta.Diff(prev, inputs)
	out := deltaOutcome{ins: len(d.Inserted), del: len(d.Deleted), chg: len(d.Changed)}
	if d.Empty() {
		return out, nil
	}
	groups := m.affectedGroups(st, g, d)
	if len(groups) == 0 {
		// The delta is real but no cached rule can observe it.
		return out, nil
	}
	sl := st.sliceFor(groups...)

	reason := tier1Blocker(st.prog, sl, d)
	if reason == "" {
		patched, ok, runErr := m.insertPatch(ctx, st, g, sl, d, inputs)
		if runErr == nil && ok {
			out.patched = patched
			return out, nil
		}
		if runErr != nil {
			reason = ReasonDeltaRunError
		} else {
			reason = ReasonOutputCollision
		}
	}

	// Tier 2: re-run the union slice of the affected groups over the
	// new inputs and swap it into the cache; unaffected groups stay.
	out.fallback = true
	out.reason = reason
	res, runErr := engine.RunSlice(ctx, st.prog, inputs, sl, m.opts, engine.WithFacts(st.facts))
	if runErr != nil {
		g.lastErr = runErr
		for _, f := range groups {
			g.dropFunctor(st.prog, f)
		}
		out.reason = ReasonSliceRunError
		return out, fmt.Errorf("mediator: delta refresh of %s: %w", name, runErr)
	}
	g.lastErr = nil
	out.patched = g.applyRerun(sl, res)
	g.runs++
	addStats(&g.stats, res.Stats)
	return out, nil
}

// affectedGroups returns the cached functor groups whose slices
// contain a rule the delta can feed: rules that recorded a direct
// match on a deleted or rewritten entry (ruleSources, from past slice
// runs) plus rules the inserted or rewritten trees can match
// (engine.AffectedRules over the dispatch index). Slice closure
// extends direct reachability to derived activations: a rule fed only
// through minted activations lives in the same slice as its minters.
func (m *Mediator) affectedGroups(st *progState, g *demandGen, d *delta.Delta) []string {
	newSide := make([]tree.StoreEntry, 0, len(d.Inserted)+len(d.Changed))
	newSide = append(newSide, d.Inserted...)
	for _, c := range d.Changed {
		newSide = append(newSide, tree.StoreEntry{Name: c.Name, Tree: c.New})
	}
	affected := engine.AffectedRules(st.prog, st.facts, newSide)
	oldKeys := make([]string, 0, len(d.Deleted)+len(d.Changed))
	for _, e := range d.Deleted {
		oldKeys = append(oldKeys, e.Name.Key())
	}
	for _, c := range d.Changed {
		oldKeys = append(oldKeys, c.Name.Key())
	}
	for _, key := range oldKeys {
		for rule, set := range g.ruleSources {
			if set[key] {
				affected[rule] = true
			}
		}
	}
	if len(affected) == 0 {
		return nil
	}
	var groups []string
	for _, f := range g.cachedFunctors(st.prog) {
		sl := st.sliceFor(f)
		for r := range affected {
			if sl.Includes(r) {
				groups = append(groups, f)
				break
			}
		}
	}
	return groups
}

// tier1Blocker reports why the insert patch would be unsound for this
// slice and delta — or "" when it is provably safe to try.
func tier1Blocker(prog *yatl.Program, sl *engine.Slice, d *delta.Delta) string {
	if !d.InsertOnly() {
		return ReasonDeletions
	}
	for _, r := range prog.Rules {
		if r.Exception {
			return ReasonExceptionRules
		}
	}
	for _, r := range sl.Construct {
		if reason := ruleBlocksPatch(r, true); reason != "" {
			return reason
		}
	}
	for _, r := range sl.Support {
		if reason := ruleBlocksPatch(r, false); reason != "" {
			return reason
		}
	}
	return ""
}

func ruleBlocksPatch(r *yatl.Rule, construct bool) string {
	if len(r.Body) > 1 {
		return ReasonMultiPatternJoin
	}
	if construct && r.Head.Tree != nil {
		for _, ref := range r.Head.Tree.PatternRefs() {
			if !ref.Ref {
				return ReasonSkolemDeref
			}
		}
	}
	return ""
}

// insertPatch runs the slice in delta-evaluation mode and appends its
// outputs to the cache. ok is false when an output identity collides
// with a cached one — the caller re-runs instead. Holds g.mu (via
// applyDelta).
func (m *Mediator) insertPatch(ctx context.Context, st *progState, g *demandGen,
	sl *engine.Slice, d *delta.Delta, inputs *tree.Store) (patched int, ok bool, err error) {
	seeds := tree.NewStore()
	for _, e := range d.Inserted {
		seeds.Put(e.Name, e.Tree)
	}
	res, err := engine.RunSlice(ctx, st.prog, inputs, sl, m.opts,
		engine.WithFacts(st.facts), engine.WithDeltaSeeds(seeds))
	if err != nil {
		return 0, false, err
	}
	for _, r := range sl.Construct {
		for _, e := range res.RuleOutputs[r.Name] {
			if g.store.Has(e.Name) {
				return 0, false, nil
			}
		}
	}
	for _, r := range sl.Construct {
		entries := res.RuleOutputs[r.Name]
		if len(entries) == 0 {
			continue
		}
		patched++
		g.ruleEntries[r.Name] = append(g.ruleEntries[r.Name], entries...)
		for _, e := range entries {
			g.put(e.Name, e.Tree)
		}
	}
	// The delta run adds dependencies, it does not recompute old ones:
	// merge its source records into the existing sets.
	for rule, srcs := range res.RuleSources {
		set := g.ruleSources[rule]
		if set == nil {
			set = map[string]bool{}
			g.ruleSources[rule] = set
		}
		for _, s := range srcs {
			set[s.Key()] = true
		}
	}
	g.runs++
	addStats(&g.stats, res.Stats)
	return patched, true, nil
}

// applyRerun swaps a full slice re-run's outputs into the cache in
// place: the construct rules' old entries are evicted, the new ones
// committed, and the touched functor buckets rebuilt wholesale (bucket
// snapshots held by in-flight asks keep their old view). Returns the
// number of rules whose entries actually changed. Must hold g.mu.
func (g *demandGen) applyRerun(sl *engine.Slice, res *engine.SliceResult) int {
	g.version++
	if len(g.askMemo) > 0 {
		clear(g.askMemo)
	}
	// Evict every old entry first: rules of one group may share minted
	// identities, and a shared stale entry must not outlive the swap.
	for _, r := range sl.Construct {
		for _, e := range g.ruleEntries[r.Name] {
			g.store.Delete(e.Name)
		}
	}
	patched := 0
	touched := map[string]bool{}
	for _, r := range sl.Construct {
		fresh := res.RuleOutputs[r.Name]
		if !entriesEqual(g.ruleEntries[r.Name], fresh) {
			patched++
		}
		g.cached[r.Name] = true
		g.ruleEntries[r.Name] = fresh
		for _, e := range fresh {
			g.store.Put(e.Name, e.Tree)
		}
		touched[r.Head.Functor] = true
	}
	for f := range touched {
		delete(g.byFunctor, f)
	}
	for _, e := range g.store.Entries() {
		if touched[e.Name.Functor] {
			g.byFunctor[e.Name.Functor] = append(g.byFunctor[e.Name.Functor], e)
		}
	}
	// The re-run recomputed these rules completely: replace their
	// source records instead of merging.
	replaceRuleSources(g, sl.Construct, res)
	replaceRuleSources(g, sl.Support, res)
	return patched
}

func replaceRuleSources(g *demandGen, rules []*yatl.Rule, res *engine.SliceResult) {
	for _, r := range rules {
		srcs := res.RuleSources[r.Name]
		set := make(map[string]bool, len(srcs))
		for _, s := range srcs {
			set[s.Key()] = true
		}
		g.ruleSources[r.Name] = set
	}
}

// entriesEqual reports byte-identity of two committed entry lists:
// same names, same trees, same order.
func entriesEqual(a, b []tree.StoreEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name.Key() != b[i].Name.Key() || !a[i].Tree.Equal(b[i].Tree) {
			return false
		}
	}
	return true
}

func addStats(dst *engine.Stats, s engine.Stats) {
	dst.Activations += s.Activations
	dst.Bindings += s.Bindings
	dst.Outputs += s.Outputs
	dst.Rounds += s.Rounds
}
