package mediator

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"yat/internal/engine"
	"yat/internal/source"
	"yat/internal/trace"
	"yat/internal/tree"
	"yat/internal/yatl"
)

// putAlpha commits one alpha entry under an explicit id, for deltas
// that need inserts, deletes and rewrites at chosen positions.
func putAlpha(s *tree.Store, id, name string) {
	s.Put(tree.PlainName(id), tree.Sym("alpha", tree.Sym("name", tree.Str(name))))
}

func deltaEvents(rec *trace.Recorder, kind trace.Kind) []trace.Event {
	var out []trace.Event
	for _, e := range rec.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// The tentpole's acceptance gate: after RefreshSource absorbs an
// insert-only, delete-only or mixed delta, every answer is
// byte-identical to a from-scratch mediator over the new stores — at
// parallelism 1, 4 and 8 — and the stats pin which path absorbed it
// (tier-1 patch for the monotone delta, slice re-run otherwise).
func TestDeltaRefreshEquivalence(t *testing.T) {
	prog := yatl.MustParse(twoSourceProgram)
	betas := betaStore("bee", "boa")
	mkOld := func() *tree.Store { return alphaStore("ant", "asp") } // a1, a2

	scenarios := []struct {
		name                        string
		newAlphas                   func() *tree.Store
		wantRuns, wantFalls, wantPR int64
	}{
		{"insert-only", func() *tree.Store {
			s := mkOld()
			putAlpha(s, "a3", "auk")
			return s
		}, 1, 0, 1},
		{"delete-only", func() *tree.Store {
			return alphaStore("ant") // a2 gone
		}, 0, 1, 1},
		{"mixed", func() *tree.Store {
			s := tree.NewStore()
			putAlpha(s, "a2", "newt") // rewritten
			putAlpha(s, "a3", "auk")  // inserted; a1 deleted
			return s
		}, 0, 1, 1},
		{"no-op", mkOld, 1, 0, 0},
	}
	for _, sc := range scenarios {
		for _, par := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/par=%d", sc.name, par), func(t *testing.T) {
				newAlphas := sc.newAlphas()
				fault := source.NewFault("src1", mkOld())
				m := New(prog, nil,
					engine.WithParallelism(par),
					WithDemandDriven(true),
					WithSources(fault, source.Static("src2", betas)))
				if got, err := m.Ask(`X`); err != nil || len(got) == 0 {
					t.Fatalf("warm ask = %d answers, %v", len(got), err)
				}
				fault.SetStore(newAlphas)
				if err := m.RefreshSource(context.Background(), "src1"); err != nil {
					t.Fatalf("refresh: %v", err)
				}
				want := answersFor(t, prog, newAlphas, betas, `X`)
				got, err := m.Ask(`X`)
				if err != nil {
					t.Fatalf("post-refresh ask: %v", err)
				}
				if answersKey(t, got) != want {
					t.Fatalf("patched answers differ from a fresh run\n got:\n%s\nwant:\n%s",
						answersKey(t, got), want)
				}
				// Per-functor asks go through the same cache.
				pa, err := m.Ask(`X`, "Pa")
				if err != nil || answersKey(t, pa) != answersFor(t, prog, newAlphas, nil, `X`) {
					t.Fatalf("Pa answers diverged: %v\n%s", err, answersKey(t, pa))
				}
				st := m.Stats()
				if st.DeltaRuns != sc.wantRuns || st.DeltaFallbacks != sc.wantFalls || st.PatchedRules != sc.wantPR {
					t.Errorf("delta stats = runs=%d fallbacks=%d patched=%d, want %d/%d/%d",
						st.DeltaRuns, st.DeltaFallbacks, st.PatchedRules,
						sc.wantRuns, sc.wantFalls, sc.wantPR)
				}
			})
		}
	}
}

// A refresh before anything is cached has nothing to patch and counts
// as incrementally absorbed, not as a fallback.
func TestDeltaRefreshColdCache(t *testing.T) {
	fault := source.NewFault("src1", alphaStore("ant"))
	m := New(yatl.MustParse(twoSourceProgram), nil, WithDemandDriven(true),
		WithSources(fault, source.Static("src2", betaStore("bee"))))
	if err := m.RefreshSource(context.Background(), "src1"); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.DeltaRuns != 1 || st.DeltaFallbacks != 0 || st.PatchedRules != 0 {
		t.Errorf("cold refresh stats = %d/%d/%d, want 1/0/0",
			st.DeltaRuns, st.DeltaFallbacks, st.PatchedRules)
	}
}

// joinProgram forces the multi-pattern-join fallback: the rule joins
// alpha and beta bodies on a shared variable.
const joinProgram = `
program join

rule J {
  head Pj(N) = pair < -> left -> N >
  from A = alpha < -> name -> N >
  from B = beta < -> name -> N >
}
`

// derefProgram forces the skolem-deref fallback: DA's head
// dereferences the Pb Skolem minted by DB.
const derefProgram = `
program deref

rule DA {
  head Pa(N) = item < -> name -> N, -> det -> ^Pb(N) >
  from X = alpha < -> name -> N >
}

rule DB {
  head Pb(N) = detail -> N
  from Y = alpha < -> name -> N >
}
`

// boomProgram plus boomRegistry force engine run failures on demand:
// maybe_boom raises (an engine-level error, not a dropped binding)
// while `failures` is positive and the argument is "auk" — the entry
// the tests insert.
const boomProgram = `
program boom

rule Boom {
  head Pe(X) = out -> V
  from X = alpha < -> name -> N >
  let V = maybe_boom(N)
}
`

func boomRegistry(failures *atomic.Int64) *engine.Registry {
	reg := engine.NewRegistry()
	reg.Register(engine.Func{
		Name: "maybe_boom", Params: []engine.ParamType{engine.Text}, Result: engine.Text,
		Fn: func(args []tree.Value) (tree.Value, error) {
			if args[0].Equal(tree.Value(tree.String("auk"))) && failures.Add(-1) >= 0 {
				return nil, engine.ErrRaised{Msg: "boom"}
			}
			return args[0], nil
		},
	})
	return reg
}

// Every reachable fallback reason is forced at least once and shows up
// in the trace; after each fallback the cache still answers
// byte-identically to a fresh mediator over the new world.
// (ReasonNoBaseline guards a state no public API sequence can reach —
// a warm cache without a recorded merge — and stays untested here.)
func TestDeltaFallbackReasons(t *testing.T) {
	ctx := context.Background()

	// run builds a demand mediator over fault+static sources, warms it
	// with Ask(`X`), applies mutate, refreshes src1 and returns the
	// recorder plus the refresh error.
	run := func(t *testing.T, progSrc string, opts []engine.Option, betas *tree.Store,
		mutate func(f *source.Fault)) (*Mediator, *source.Fault, *trace.Recorder, error) {
		t.Helper()
		rec := &trace.Recorder{}
		prog := yatl.MustParse(progSrc)
		fault := source.NewFault("src1", alphaStore("ant", "asp"))
		srcs := []source.Source{fault}
		if betas != nil {
			srcs = append(srcs, source.Static("src2", betas))
		}
		all := append([]engine.Option{engine.WithTrace(rec), WithDemandDriven(true), WithSources(srcs...)}, opts...)
		m := New(prog, nil, all...)
		if _, err := m.Ask(`X`); err != nil {
			t.Fatalf("warm ask: %v", err)
		}
		mutate(fault)
		err := m.RefreshSource(ctx, "src1")
		return m, fault, rec, err
	}

	wantFallback := func(t *testing.T, rec *trace.Recorder, reason string) {
		t.Helper()
		falls := deltaEvents(rec, trace.KindDeltaFallback)
		if len(falls) != 1 || !strings.Contains(falls[0].Detail, "reason="+reason) {
			t.Fatalf("fallback events = %+v, want one with reason=%s", falls, reason)
		}
	}

	equivalent := func(t *testing.T, m *Mediator, prog string, opts []engine.Option, alphas, betas *tree.Store) {
		t.Helper()
		merged := tree.NewStore()
		for _, e := range alphas.Entries() {
			merged.Put(e.Name, e.Tree)
		}
		if betas != nil {
			for _, e := range betas.Entries() {
				merged.Put(e.Name, e.Tree)
			}
		}
		fresh := New(yatl.MustParse(prog), merged, opts...)
		want, err := fresh.Ask(`X`)
		if err != nil {
			t.Fatalf("fresh ask: %v", err)
		}
		got, err := m.Ask(`X`)
		if err != nil {
			t.Fatalf("post-refresh ask: %v", err)
		}
		if answersKey(t, got) != answersKey(t, want) {
			t.Fatalf("answers diverged after fallback\n got:\n%s\nwant:\n%s",
				answersKey(t, got), answersKey(t, want))
		}
	}

	t.Run("deletions", func(t *testing.T) {
		betas := betaStore("bee")
		newAlphas := alphaStore("ant")
		m, _, rec, err := run(t, twoSourceProgram, nil, betas,
			func(f *source.Fault) { f.SetStore(newAlphas) })
		if err != nil {
			t.Fatal(err)
		}
		wantFallback(t, rec, ReasonDeletions)
		equivalent(t, m, twoSourceProgram, nil, newAlphas, betas)
	})

	t.Run("multi-pattern-join", func(t *testing.T) {
		betas := betaStore("ant", "auk")
		newAlphas := alphaStore("ant", "asp", "auk")
		m, _, rec, err := run(t, joinProgram, nil, betas,
			func(f *source.Fault) { f.SetStore(newAlphas) })
		if err != nil {
			t.Fatal(err)
		}
		wantFallback(t, rec, ReasonMultiPatternJoin)
		equivalent(t, m, joinProgram, nil, newAlphas, betas)
	})

	t.Run("skolem-deref", func(t *testing.T) {
		newAlphas := alphaStore("ant", "asp", "auk")
		m, _, rec, err := run(t, derefProgram, nil, nil,
			func(f *source.Fault) { f.SetStore(newAlphas) })
		if err != nil {
			t.Fatal(err)
		}
		wantFallback(t, rec, ReasonSkolemDeref)
		equivalent(t, m, derefProgram, nil, newAlphas, nil)
	})

	t.Run("exception-rules", func(t *testing.T) {
		prog := twoSourceProgram + yatl.ExceptionRuleSource
		betas := betaStore("bee")
		newAlphas := alphaStore("ant", "asp", "auk")
		m, _, rec, err := run(t, prog, nil, betas,
			func(f *source.Fault) { f.SetStore(newAlphas) })
		if err != nil {
			t.Fatal(err)
		}
		wantFallback(t, rec, ReasonExceptionRules)
		equivalent(t, m, prog, nil, newAlphas, betas)
	})

	t.Run("output-collision", func(t *testing.T) {
		// The inserted entry re-mints Pa(ant), which the cache already
		// holds: the patch must reject itself and re-run.
		betas := betaStore("bee")
		newAlphas := alphaStore("ant", "asp")
		putAlpha(newAlphas, "a9", "ant")
		m, _, rec, err := run(t, twoSourceProgram, nil, betas,
			func(f *source.Fault) { f.SetStore(newAlphas) })
		if err != nil {
			t.Fatal(err)
		}
		wantFallback(t, rec, ReasonOutputCollision)
		equivalent(t, m, twoSourceProgram, nil, newAlphas, betas)
	})

	t.Run("degraded-source", func(t *testing.T) {
		// Rules cached while src2 was down carry no dependency record
		// for it: the recovery refresh must invalidate wholesale.
		rec := &trace.Recorder{}
		prog := yatl.MustParse(twoSourceProgram)
		alphas := alphaStore("ant", "asp")
		betas := betaStore("bee", "boa")
		flaky := source.NewFault("src2", betas)
		flaky.SetErr(errors.New("down"))
		m := New(prog, nil, engine.WithTrace(rec), WithDemandDriven(true),
			WithSources(source.Static("src1", alphas), flaky))
		if got, err := m.Ask(`X`); err != nil || len(got) != 2 {
			t.Fatalf("degraded warm = %d answers, %v; want the 2 Pa answers", len(got), err)
		}
		flaky.SetErr(nil)
		if err := m.RefreshSource(ctx, "src2"); err != nil {
			t.Fatal(err)
		}
		wantFallback(t, rec, ReasonDegradedSource)
		got, err := m.Ask(`X`)
		if err != nil || answersKey(t, got) != answersFor(t, prog, alphas, betas, `X`) {
			t.Fatalf("recovered answers wrong: %v\n%s", err, answersKey(t, got))
		}
		if st := m.Stats(); st.DeltaFallbacks != 1 || st.DeltaRuns != 0 {
			t.Errorf("stats = %+v, want one fallback", st)
		}
	})

	t.Run("fetch-failed", func(t *testing.T) {
		// The refresh fetch leaves src1 degraded: no complete new
		// picture exists, so the whole generation goes.
		betas := betaStore("bee")
		m, _, rec, err := run(t, twoSourceProgram, nil, betas,
			func(f *source.Fault) { f.SetErr(errors.New("down")) })
		if err != nil {
			t.Fatal(err)
		}
		wantFallback(t, rec, ReasonFetchFailed)
		// The next ask sees the degraded world: beta only.
		got, err := m.Ask(`X`)
		if err != nil {
			t.Fatal(err)
		}
		want := answersFor(t, yatl.MustParse(twoSourceProgram), tree.NewStore(), betas, `X`)
		if answersKey(t, got) != want {
			t.Fatalf("degraded answers wrong:\n%s\nwant:\n%s", answersKey(t, got), want)
		}
	})

	t.Run("delta-run-error", func(t *testing.T) {
		// The delta-seeded run raises once; the plain re-run succeeds,
		// so the refresh lands as a fallback, not an error.
		var failures atomic.Int64
		failures.Store(1)
		opts := []engine.Option{engine.WithRegistry(boomRegistry(&failures)), engine.WithParallelism(1)}
		newAlphas := alphaStore("ant", "asp", "auk")
		m, _, rec, err := run(t, boomProgram, opts, nil,
			func(f *source.Fault) { f.SetStore(newAlphas) })
		if err != nil {
			t.Fatal(err)
		}
		wantFallback(t, rec, ReasonDeltaRunError)
		equivalent(t, m, boomProgram, opts, newAlphas, nil)
	})

	t.Run("slice-run-error", func(t *testing.T) {
		// Both the delta run and the re-run raise: the affected groups
		// are dropped and the error surfaces; once the function heals,
		// the next ask recomputes from scratch.
		var failures atomic.Int64
		failures.Store(1 << 30)
		opts := []engine.Option{engine.WithRegistry(boomRegistry(&failures)), engine.WithParallelism(1)}
		newAlphas := alphaStore("ant", "asp", "auk")
		m, _, rec, err := run(t, boomProgram, opts, nil,
			func(f *source.Fault) { f.SetStore(newAlphas) })
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("err = %v, want the raised engine error", err)
		}
		wantFallback(t, rec, ReasonSliceRunError)
		failures.Store(0)
		equivalent(t, m, boomProgram, opts, newAlphas, nil)
	})
}

// Satellite 1: a nil context is normalized before it can reach the
// source decorators, so a refresh through the conventional
// cache/timeout/retry chain works and still lands incrementally.
func TestRefreshSourceNilContextThroughDecorators(t *testing.T) {
	prog := yatl.MustParse(twoSourceProgram)
	clock := source.NewFakeClock()
	fault := source.NewFault("src1", alphaStore("ant", "asp")).WithClock(clock)
	chain := source.WithCache(
		source.WithTimeout(
			source.WithRetry(fault, source.RetryOptions{MaxAttempts: 2, Clock: clock, Jitter: -1}),
			time.Second),
		source.CacheOptions{TTL: time.Hour, Clock: clock})
	m := New(prog, nil, WithDemandDriven(true),
		WithSources(chain, source.Static("src2", betaStore("bee"))))
	if got, err := m.Ask(`X`, "Pa"); err != nil || len(got) != 2 {
		t.Fatalf("warm Pa = %d, %v", len(got), err)
	}
	grown := alphaStore("ant", "asp", "auk")
	fault.SetStore(grown)
	if err := m.RefreshSource(nil, "src1"); err != nil {
		t.Fatalf("nil-ctx refresh: %v", err)
	}
	got, err := m.Ask(`X`, "Pa")
	if err != nil || len(got) != 3 {
		t.Fatalf("post-refresh Pa = %d, %v; want 3", len(got), err)
	}
	if st := m.Stats(); st.DeltaRuns != 1 || st.DeltaFallbacks != 0 {
		t.Errorf("refresh through the chain should patch: %+v", st)
	}
	chain.Wait()
}

// Satellite 2: refreshing an unknown source and invalidating an
// undepended source entry return the same typed not-found shape.
func TestNotFoundErrorShapes(t *testing.T) {
	prog := yatl.MustParse(twoSourceProgram)
	m := New(prog, nil, WithDemandDriven(true),
		WithSources(source.Static("src1", alphaStore("ant")), source.Static("src2", betaStore("bee"))))
	if _, err := m.Ask(`X`); err != nil {
		t.Fatal(err)
	}

	var nf *NotFoundError
	err := m.RefreshSource(nil, "nope")
	if !errors.As(err, &nf) || nf.Kind != "source" || nf.Name != "nope" {
		t.Fatalf("RefreshSource(nope) = %v, want *NotFoundError{source, nope}", err)
	}
	refreshMsg := err.Error()

	nf = nil
	err = m.InvalidateSource(tree.PlainName("ghost"))
	if !errors.As(err, &nf) || nf.Kind != "source entry" || nf.Name != "ghost" {
		t.Fatalf("InvalidateSource(ghost) = %v, want *NotFoundError{source entry, ghost}", err)
	}
	// The two paths share one message shape.
	for _, msg := range []string{refreshMsg, err.Error()} {
		if !strings.Contains(msg, "mediator: no source") || !strings.Contains(msg, "named") {
			t.Errorf("error %q does not follow the shared not-found shape", msg)
		}
	}

	// A recorded dependency invalidates without error.
	if err := m.InvalidateSource(tree.PlainName("a1")); err != nil {
		t.Errorf("InvalidateSource(a1) = %v, want nil", err)
	}
	// Full mode degrades to Invalidate and never reports not-found.
	full := New(prog, nil, WithSources(source.Static("src1", alphaStore("ant"))))
	if err := full.InvalidateSource(tree.PlainName("ghost")); err != nil {
		t.Errorf("full-mode InvalidateSource = %v, want nil", err)
	}
}

// The delta events reach both renderers: EXPLAIN profiles get per-
// refresh `delta:` lines with the aggregate counts, and the StatsView
// (the document yatserve and yatprof share) reports the same counters.
func TestDeltaTraceAndStatsRender(t *testing.T) {
	prof := trace.NewProfile()
	prog := yatl.MustParse(twoSourceProgram)
	fault := source.NewFault("src1", alphaStore("ant", "asp"))
	m := New(prog, nil, engine.WithTrace(prof), WithDemandDriven(true),
		WithSources(fault, source.Static("src2", betaStore("bee"))))
	if _, err := m.Ask(`X`); err != nil {
		t.Fatal(err)
	}
	fault.SetStore(alphaStore("ant", "asp", "auk"))
	if err := m.RefreshSource(context.Background(), "src1"); err != nil {
		t.Fatal(err)
	}
	fault.SetStore(alphaStore("ant"))
	if err := m.RefreshSource(context.Background(), "src1"); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := prof.Render(&sb, false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"deltas: applied=1 fallbacks=1",
		"delta: source=src1",
		"inserted=1 deleted=0 changed=0 patched-rules=1",
		"reason=" + ReasonDeletions,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("profile missing %q:\n%s", want, sb.String())
		}
	}

	st := m.Stats()
	if st.DeltaRuns != 1 || st.DeltaFallbacks != 1 || st.PatchedRules != 2 {
		t.Fatalf("stats = runs=%d fallbacks=%d patched=%d, want 1/1/2",
			st.DeltaRuns, st.DeltaFallbacks, st.PatchedRules)
	}
	sb.Reset()
	if err := st.Render(&sb, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "deltas: runs=1 fallbacks=1 patched-rules=2") {
		t.Errorf("stats render missing the deltas line:\n%s", sb.String())
	}
	js, err := st.JSON(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"delta_runs": 1`, `"delta_fallbacks": 1`, `"patched_rules": 2`} {
		if !strings.Contains(string(js), want) {
			t.Errorf("stats JSON missing %q:\n%s", want, js)
		}
	}

	// Aggregate (the pool path behind yatserve /stats) sums them.
	agg := Aggregate(st, st)
	if agg.DeltaRuns != 2 || agg.DeltaFallbacks != 2 || agg.PatchedRules != 4 {
		t.Errorf("aggregate = %d/%d/%d, want 2/2/4", agg.DeltaRuns, agg.DeltaFallbacks, agg.PatchedRules)
	}
}

// Asks racing RefreshSource between two worlds — run under -race.
// Every answer set must be exactly one of the worlds, never a blend of
// a half-applied patch.
func TestAskRefreshSourceRace(t *testing.T) {
	prog := yatl.MustParse(twoSourceProgram)
	worldA := alphaStore("ant", "asp")
	worldB := alphaStore("ant", "asp", "auk") // A→B inserts, B→A deletes
	betas := betaStore("bee", "boa")
	wantA := answersFor(t, prog, worldA, betas, `X`)
	wantB := answersFor(t, prog, worldB, betas, `X`)

	fault := source.NewFault("src1", worldA)
	m := New(prog, nil,
		engine.WithParallelism(4),
		WithDemandDriven(true),
		WithSources(fault, source.Static("src2", betas)))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // the refresher
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				fault.SetStore(worldB)
			} else {
				fault.SetStore(worldA)
			}
			if err := m.RefreshSource(context.Background(), "src1"); err != nil {
				t.Errorf("refresh: %v", err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := m.Ask(`X`)
				if err != nil {
					t.Errorf("ask: %v", err)
					return
				}
				key := answersKey(t, got)
				if key != wantA && key != wantB {
					t.Errorf("blended answer set:\n%s", key)
					return
				}
				m.Stats()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	<-time.After(10 * time.Millisecond)
	close(stop)
	<-done
}
