package mediator

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"yat/internal/engine"
	"yat/internal/trace"
	"yat/internal/tree"
	"yat/internal/workload"
	"yat/internal/yatl"
)

func answersKey(t *testing.T, as []Answer) string {
	t.Helper()
	out := ""
	for _, a := range as {
		out += a.Name.Key() + "|" + a.Binding.Key() + "\n"
	}
	return out
}

// The golden equivalence gate: a demand-driven mediator answers every
// query byte-identically to a full-materialization mediator, for every
// builtin program, functor restriction and parallelism setting.
func TestDemandMatchesFullMediator(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		inputs   *tree.Store
		pattern  string
		functors []string
	}{
		{"sgml2odmg-sup", yatl.SGMLToODMGSource, workload.BrochureStore(8, 2, 5, 42), `X`, []string{"Psup"}},
		{"sgml2odmg-car", yatl.SGMLToODMGSource, workload.BrochureStore(8, 2, 5, 42), `class -> car -*> Y`, []string{"Pcar"}},
		{"sgml2odmg-all", yatl.SGMLToODMGSource, workload.BrochureStore(8, 2, 5, 42), `X`, nil},
		{"sgml2odmgTyped-sup", yatl.AnnotatedSGMLToODMGSource, workload.BrochureStore(8, 2, 5, 42), `class -> supplier < -> name -> N, -> city -> C, -> zip -> Z >`, []string{"Psup"}},
		{"sgml2odmgPrime-both", yatl.SGMLToODMGPrimeSource, workload.BrochureStore(8, 2, 5, 42), `X`, []string{"Pcar", "Psup"}},
		{"odmg2html-page", yatl.WebProgramSource, workload.ODMGStore(5, 3, 2, 7), `html < -> head -> H, -> body -*> B >`, []string{"HtmlPage"}},
		{"odmg2html-elem", yatl.WebProgramSource, workload.ODMGStore(5, 3, 2, 7), `X`, []string{"HtmlElement"}},
		{"selective-one", workload.SelectiveProgram(6), workload.BrochureStore(6, 2, 5, 11), `view < -> name -> N, -> city -> C, -> zip -> Z >`, []string{"Pview2"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog := yatl.MustParse(c.src)
			for _, par := range []int{1, 4, 8} {
				full := New(prog, c.inputs, engine.WithParallelism(par))
				want, err := full.Ask(c.pattern, c.functors...)
				if err != nil {
					t.Fatalf("full @%d: %v", par, err)
				}
				if len(want) == 0 {
					t.Fatalf("@%d: vacuous case, the pattern matches nothing", par)
				}
				demand := New(prog, c.inputs, engine.WithParallelism(par), WithDemandDriven(true))
				got, err := demand.Ask(c.pattern, c.functors...)
				if err != nil {
					t.Fatalf("demand @%d: %v", par, err)
				}
				if answersKey(t, got) != answersKey(t, want) {
					t.Fatalf("@%d: demand answers differ from full\n got:\n%s\nwant:\n%s",
						par, answersKey(t, got), answersKey(t, want))
				}
				// Warm repeat must be identical too.
				again, err := demand.Ask(c.pattern, c.functors...)
				if err != nil {
					t.Fatalf("warm @%d: %v", par, err)
				}
				if answersKey(t, again) != answersKey(t, want) {
					t.Fatalf("@%d: warm demand answers differ", par)
				}
			}
		})
	}
}

// Query pushdown, observed through the trace layer: a Psup ask on the
// typed program computes a one-rule slice, only that rule matches, and
// a repeat ask is a pure cache hit with no engine run.
func TestDemandEvaluatesOnlyTheSlice(t *testing.T) {
	prog := yatl.MustParse(yatl.AnnotatedSGMLToODMGSource)
	rec := &trace.Recorder{}
	m := New(prog, workload.BrochureStore(6, 2, 4, 3),
		engine.WithTrace(rec), WithDemandDriven(true))
	if _, err := m.Ask(`X`, "Psup"); err != nil {
		t.Fatal(err)
	}
	slices, misses, hits := 0, 0, 0
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.KindSliceComputed:
			slices++
		case trace.KindCacheMiss:
			misses++
		case trace.KindCacheHit:
			hits++
		case trace.KindMatch:
			if e.Rule != "Sup" {
				t.Errorf("rule %s matched outside the Psup slice", e.Rule)
			}
		}
	}
	if slices != 1 || misses != 1 || hits != 0 {
		t.Errorf("cold ask: slices=%d misses=%d hits=%d, want 1/1/0", slices, misses, hits)
	}
	before := len(rec.Events())
	if _, err := m.Ask(`X`, "Psup"); err != nil {
		t.Fatal(err)
	}
	var fresh []trace.Event
	for _, e := range rec.Events()[before:] {
		fresh = append(fresh, e)
	}
	if len(fresh) != 1 || fresh[0].Kind != trace.KindCacheHit || fresh[0].Rule != "Sup" {
		t.Errorf("warm ask emitted %v, want a single Sup cache hit", fresh)
	}
	if s := m.Stats(); !s.Demand || s.SliceRuns != 1 || s.CachedRules != 1 || s.Materialized {
		t.Errorf("stats after one sliced ask: %+v", s)
	}
}

// countedViews is a two-rule program whose rules read different source
// shapes and count their external calls, making engine re-runs
// observable per rule.
func countedViews(t *testing.T) (*yatl.Program, *tree.Store, *engine.Registry, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var ca, cb atomic.Int64
	reg := engine.NewRegistry()
	for _, c := range []struct {
		name    string
		counter *atomic.Int64
	}{{"count_a", &ca}, {"count_b", &cb}} {
		counter := c.counter
		reg.Register(engine.Func{
			Name: c.name, Params: []engine.ParamType{engine.Text}, Result: engine.Text,
			Fn: func(args []tree.Value) (tree.Value, error) {
				counter.Add(1)
				return args[0], nil
			},
		})
	}
	prog := yatl.MustParse(`
program twoviews
rule A {
  head Pa(X) = outa -> V
  from X = ina -> D
  let V = count_a(D)
}
rule B {
  head Pb(X) = outb -> V
  from X = inb -> D
  let V = count_b(D)
}
`)
	store := tree.NewStore()
	for i := 0; i < 3; i++ {
		store.Put(tree.PlainName(fmt.Sprintf("a%d", i+1)), tree.Sym("ina", tree.Str(fmt.Sprintf("va%d", i+1))))
		store.Put(tree.PlainName(fmt.Sprintf("b%d", i+1)), tree.Sym("inb", tree.Str(fmt.Sprintf("vb%d", i+1))))
	}
	return prog, store, reg, &ca, &cb
}

// Fine-grained invalidation: dropping one rule re-runs that rule's
// slice only; the other rule's cache stays warm. Source invalidation
// drops only the rules that matched the source.
func TestDemandFineGrainedInvalidation(t *testing.T) {
	prog, store, reg, ca, cb := countedViews(t)
	m := New(prog, store, engine.WithRegistry(reg), WithDemandDriven(true))
	ask := func() {
		t.Helper()
		if _, err := m.Ask(`X`, "Pa"); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Ask(`X`, "Pb"); err != nil {
			t.Fatal(err)
		}
	}
	ask()
	if ca.Load() != 3 || cb.Load() != 3 {
		t.Fatalf("cold asks ran a=%d b=%d, want 3/3", ca.Load(), cb.Load())
	}
	ask() // warm: no engine work
	if ca.Load() != 3 || cb.Load() != 3 {
		t.Fatalf("warm asks re-ran the engine: a=%d b=%d", ca.Load(), cb.Load())
	}
	m.InvalidateRule("A")
	ask()
	if ca.Load() != 6 || cb.Load() != 3 {
		t.Fatalf("InvalidateRule(A) should re-run A only: a=%d b=%d", ca.Load(), cb.Load())
	}
	m.InvalidateSource(tree.PlainName("b2"))
	ask()
	if ca.Load() != 6 || cb.Load() != 6 {
		t.Fatalf("InvalidateSource(b2) should re-run B only: a=%d b=%d", ca.Load(), cb.Load())
	}
	m.Invalidate()
	ask()
	if ca.Load() != 9 || cb.Load() != 9 {
		t.Fatalf("Invalidate should drop everything: a=%d b=%d", ca.Load(), cb.Load())
	}
	// SliceRuns (like Run) is per-generation: the full Invalidate
	// swapped in a fresh generation, whose two cold asks ran twice.
	if s := m.Stats(); !s.Materialized || s.CachedRules != 2 || s.SliceRuns != 2 ||
		s.CacheHits != 4 || s.CacheMisses != 6 {
		t.Errorf("final stats: %+v", s)
	}
}

// On a full-materialization mediator the fine-grained calls degrade to
// Invalidate (there is nothing smaller to drop).
func TestInvalidateRuleFullModeDegrades(t *testing.T) {
	prog, store, reg, ca, _ := countedViews(t)
	m := New(prog, store, engine.WithRegistry(reg))
	if _, err := m.Ask(`X`); err != nil {
		t.Fatal(err)
	}
	m.InvalidateRule("A")
	if s := m.Stats(); s.Materialized {
		t.Error("InvalidateRule on a full mediator must invalidate the generation")
	}
	if _, err := m.Ask(`X`); err != nil {
		t.Fatal(err)
	}
	if ca.Load() != 6 {
		t.Errorf("full-mode re-materialization ran A %d times, want 6", ca.Load())
	}
}

// Demand-driven Get materializes only the identity's functor; Functors
// completes the materialization.
func TestDemandGetAndFunctors(t *testing.T) {
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	m := New(prog, workload.BrochureStore(5, 2, 4, 42), WithDemandDriven(true))
	n, ok, err := m.Get(tree.SkolemName("Pcar", tree.Ref{Name: tree.PlainName("b1")}))
	if err != nil || !ok {
		t.Fatalf("Get: %v %v", ok, err)
	}
	if !n.Label.Equal(tree.Symbol("class")) {
		t.Errorf("object = %s", n)
	}
	if s := m.Stats(); s.CachedRules != 1 || s.Materialized {
		t.Errorf("Get should cache the Pcar rule only: %+v", s)
	}
	fs, err := m.Functors()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 || fs[0] != "Pcar" || fs[1] != "Psup" {
		t.Errorf("functors = %v", fs)
	}
	if s := m.Stats(); !s.Materialized || s.CachedRules != 2 {
		t.Errorf("Functors should complete materialization: %+v", s)
	}
	if _, ok, _ := m.Get(tree.PlainName("ghost")); ok {
		t.Error("Get(ghost) found")
	}
}

// A failing slice run surfaces its error, is not cached, and retries.
func TestDemandErrorNotCached(t *testing.T) {
	prog := yatl.MustParse(`
program failing
rule R {
  head Pout(X) = out -> V
  from X = in -> D
  let V = raise(D)
}
`)
	store := tree.NewStore()
	store.Put(tree.PlainName("i1"), tree.Sym("in", tree.Str("boom")))
	m := New(prog, store, WithDemandDriven(true))
	if _, err := m.Ask(`X`, "Pout"); err == nil {
		t.Fatal("conversion should have failed")
	}
	if s := m.Stats(); s.Err == nil || s.Materialized || s.CachedRules != 0 {
		t.Errorf("failure not reflected in stats: %+v", s)
	}
	if _, err := m.Ask(`X`, "Pout"); err == nil {
		t.Fatal("retry should fail again")
	}
	if s := m.Stats(); s.SliceRuns != 0 {
		t.Errorf("failed runs must not count as slice runs: %+v", s)
	}
}

// The -race gate for demand mode: overlapping asks racing rule, source
// and full invalidations at several widths. Answers must stay
// byte-identical throughout — invalidation changes caching, never
// results.
func TestDemandConcurrentAskInvalidate(t *testing.T) {
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	inputs := workload.BrochureStore(6, 2, 4, 17)
	for _, par := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			m := New(prog, inputs, engine.WithParallelism(par), WithDemandDriven(true))
			wantSup, err := m.Ask(`X`, "Psup")
			if err != nil {
				t.Fatal(err)
			}
			wantCar, err := m.Ask(`X`, "Pcar")
			if err != nil {
				t.Fatal(err)
			}
			wantSupKey, wantCarKey := answersKey(t, wantSup), answersKey(t, wantCar)
			var wg sync.WaitGroup
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < 25; i++ {
						functor, want := "Psup", wantSupKey
						if (c+i)%2 == 0 {
							functor, want = "Pcar", wantCarKey
						}
						got, err := m.Ask(`X`, functor)
						if err != nil {
							t.Errorf("Ask(%s): %v", functor, err)
							return
						}
						if answersKey(t, got) != want {
							t.Errorf("Ask(%s) answers changed under invalidation", functor)
							return
						}
					}
				}(c)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					switch i % 4 {
					case 0:
						m.InvalidateRule("Sup")
					case 1:
						m.InvalidateSource(tree.PlainName("b1"))
					case 2:
						m.Invalidate()
					case 3:
						m.InvalidateRule("Car")
					}
					m.Stats()
				}
			}()
			wg.Wait()
		})
	}
}
