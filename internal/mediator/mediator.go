// Package mediator implements the mediator-side querying the paper
// leaves as future work (§1: "a complementary goal is to be able to
// query it without fully materializing it"; §5: YAT "can serve as the
// basis for a mediator/wrapper system"). A Mediator wraps a
// conversion program and its sources and answers pattern queries over
// the *virtual* target representation.
//
// Materialization is lazy and memoized: the conversion runs once, on
// the first query, and its outputs are shared by all later queries.
// When the query only concerns some Skolem functors, Ask restricts
// matching to those outputs. Composition (§4.3) slots in naturally: a
// mediator over `Compose(prg1, prg2)` answers queries over M3 against
// M1 sources with no intermediate M2 store at all.
//
// With WithDemandDriven the mediator goes further and pushes the
// query into the engine: an Ask restricted to some functors computes
// the dependency-closed rule slice for those functors
// (engine.ComputeSlice), runs only that slice, and memoizes the
// materialized outputs per rule so overlapping slices reuse work.
// InvalidateRule and InvalidateSource then drop only the cached rules
// whose outputs could have depended on the change.
//
// A Mediator is safe for concurrent use: a production mediator serves
// many clients at once, so concurrent Ask/Get/Functors calls share a
// single materialization (guarded by sync.Once, or by the demand
// cache's lock) and then match against a consistent snapshot without
// further locking.
package mediator

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"yat/internal/engine"
	"yat/internal/pattern"
	"yat/internal/snapshot"
	"yat/internal/source"
	"yat/internal/trace"
	"yat/internal/tree"
	"yat/internal/yatl"
)

// WithDemandDriven switches the mediator to demand-driven evaluation:
// instead of materializing the whole target on the first query, each
// Ask runs only the rule slice its functors need and caches the
// results per rule. It is an engine.Option so it can travel in the
// same option list as engine configuration; passed to engine.Run
// directly it is a no-op.
func WithDemandDriven(on bool) engine.Option { return demandOption(on) }

type demandOption bool

// Apply implements engine.Option. The option configures the mediator,
// not the engine, so it writes nothing.
func (demandOption) Apply(*engine.Options) {}

// MediatorOnly marks the option as foreign to the engine, so a plain
// engine.Run that receives it can warn instead of silently ignoring
// it.
func (demandOption) MediatorOnly() string { return "WithDemandDriven" }

// WithSources replaces the mediator's pre-materialized input store
// with live sources: on (re)materialization the mediator fetches every
// source concurrently and merges the snapshots, in declaration order,
// into the engine's input store. A failed source degrades the answer
// instead of failing it — its data is simply absent, its error
// surfaces in Stats.Sources and as a source-fetch trace event — unless
// every source fails, which fails the query with a FetchError.
//
// Like WithDemandDriven it is an engine.Option only so it can travel
// in the same option list; passed to a plain engine.Run it is reported
// in Result.Warnings.
func WithSources(srcs ...source.Source) engine.Option { return sourcesOption(srcs) }

type sourcesOption []source.Source

// Apply implements engine.Option (the option configures the mediator).
func (sourcesOption) Apply(*engine.Options) {}

// MediatorOnly marks the option as foreign to the engine.
func (sourcesOption) MediatorOnly() string { return "WithSources" }

// FetchError reports that a materialization could not proceed because
// every configured source failed to fetch. Per-source errors are
// keyed by source name.
type FetchError struct {
	Errs map[string]error
}

func (e *FetchError) Error() string {
	names := make([]string, 0, len(e.Errs))
	for n := range e.Errs {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s: %v", n, e.Errs[n])
	}
	return "mediator: all sources failed: " + strings.Join(parts, "; ")
}

// NotFoundError reports a refresh or invalidation aimed at a name the
// mediator has no record of: RefreshSource with a name no configured
// source carries (Kind "source"), or InvalidateSource with a source
// entry no cached rule depends on (Kind "source entry"). Both paths
// return the same shape so callers can treat "nothing to do, and the
// name looks wrong" uniformly.
type NotFoundError struct {
	Kind string
	Name string
}

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("mediator: no %s named %q", e.Kind, e.Name)
}

// generation is one materialization lifetime: Invalidate swaps in a
// fresh generation, so a query racing an invalidation keeps a
// consistent view instead of observing a half-cleared cache.
type generation struct {
	once   sync.Once
	done   atomic.Bool
	result *engine.Result
	err    error
}

func (g *generation) materialize(ctx context.Context, m *Mediator, st *progState) (*engine.Result, error) {
	g.once.Do(func() {
		inputs, err := m.fetchInputs(ctx)
		if err != nil {
			g.err = err
			g.done.Store(true)
			return
		}
		// The facts option rides after m.opts (later options win), so a
		// legacy *Options value in m.opts cannot erase it.
		g.result, g.err = engine.RunContext(ctx, st.prog, inputs, m.opts, engine.WithFacts(st.facts))
		g.done.Store(true)
	})
	return g.result, g.err
}

// progState is one program lifetime: the program itself plus the
// materialization state built over it, stamped with a generation
// number. Invalidate and Reload swap in a fresh progState; every query
// snapshots exactly one and works against it throughout, so a query
// racing a reload observes the old program or the new one in its
// entirety — never a mixed answer.
type progState struct {
	prog *yatl.Program
	gen  *generation
	// dgen is the demand-driven cache, nil unless WithDemandDriven.
	dgen *demandGen
	// facts is the optimizer analysis of prog (engine.AnalyzeProgram),
	// computed once per program lifetime at construction/reload time.
	// Invalidate reuses it (same program value); Reload recomputes.
	facts *engine.ProgramFacts
	// progHash and optsHash identify the program text and the
	// result-affecting engine options (registry surface included) this
	// state computes under — the same canonical hashes the snapshot
	// store keys durable generations by. Reload recomputes both: the
	// options value is fixed per mediator, but the registry behind it
	// is mutable, and cached outputs must not survive a surface change
	// that identical rule text would now evaluate differently under.
	progHash, optsHash string
	num                int64
}

// sliceFor computes the (pruned, memoized) slice for the functors
// through the program facts; the single-functor probe — the demand
// cache-hit path — allocates nothing after its first call.
func (st *progState) sliceFor(functors ...string) *engine.Slice {
	if st.facts != nil {
		return st.facts.SliceFor(functors...)
	}
	return engine.ComputeSlice(st.prog, functors...)
}

// demandGen is one demand-driven cache lifetime: a per-rule memo of
// materialized outputs assembled from slice runs. Invalidate swaps in
// a fresh one, so a query racing an invalidation keeps a consistent
// view; InvalidateRule and InvalidateSource instead drop entries
// surgically under the generation lock.
type demandGen struct {
	mu sync.Mutex
	// store accumulates the entries of every cached rule. It is only
	// read and written under mu; queries match against snapshots.
	store *tree.Store
	// cached marks the construct rules whose outputs are materialized.
	cached map[string]bool
	// ruleEntries lists each cached rule's committed entries, the
	// exact set to evict when the rule is invalidated.
	ruleEntries map[string][]tree.StoreEntry
	// byFunctor indexes the store's entries by Skolem functor, so the
	// single-functor ask — the demand cache-hit path — snapshots its
	// entries without walking the whole store. Buckets are replaced,
	// never mutated in place, when an existing entry changes: a query
	// holding an old bucket keeps a consistent view.
	byFunctor map[string][]tree.StoreEntry
	// ruleSources records, per slice rule (construct and support), the
	// keys of source inputs that directly matched it — the dependency
	// data behind InvalidateSource.
	ruleSources map[string]map[string]bool
	// stats accumulates engine statistics across slice runs.
	// Overlapping slices re-run shared dependencies, so the totals
	// measure work performed, not distinct outputs.
	stats engine.Stats
	// runs counts engine slice executions.
	runs int64
	// lastErr is the error of the most recent slice run, nil after a
	// success. Unlike the full-mode generation, a failed slice run is
	// not memoized: the next query retries.
	lastErr error
	// degraded names the sources that were failing during some cached
	// slice run: rules cached then may silently miss that source's
	// data, so a recovery of the source invalidates the whole
	// generation (no finer dependency record exists — an absent source
	// matched nothing).
	degraded map[string]bool
	// version counts cache mutations (entry puts and evictions). The
	// ask memo below tags its writes with the version the answers were
	// derived from and refuses stale ones, so an ask racing a cache
	// fill can never memoize answers the fill just outdated.
	version uint64
	// askMemo caches the fully-assembled answers of completed
	// demand-mode asks, keyed by pattern identity and functor list:
	// the warm repeat of an identical ask skips matching entirely and
	// returns a copy of the memoized slice. Cleared on every cache
	// mutation; dies with the generation like every other memo here —
	// unless a snapshot persists it (the entry then carries its
	// pattern source text so the restore can re-key it).
	askMemo map[askKey]memoVal
	// restored marks a generation warm-started from a snapshot rather
	// than computed by this process (surfaced in Stats).
	restored bool
}

// memoVal is one ask memo entry: the answers plus the identity data a
// snapshot needs to re-key the entry in another process (the pattern
// source text — empty when the ask arrived pre-parsed and therefore
// cannot be persisted — and the functor restriction).
type memoVal struct {
	answers  []Answer
	src      string
	functors []string
}

// askKey identifies one memoizable ask: the parsed pattern (by
// pointer — Ask's pattern parse cache hands back a stable *PTree per
// source text) and the functor restriction.
type askKey struct {
	pt       *pattern.PTree
	functors string
}

// maxAskMemo bounds the ask memo; at the cap new asks simply stop
// memoizing until an invalidation clears the map.
const maxAskMemo = 512

func newDemandGen() *demandGen {
	return &demandGen{
		store:       tree.NewStore(),
		cached:      map[string]bool{},
		ruleEntries: map[string][]tree.StoreEntry{},
		byFunctor:   map[string][]tree.StoreEntry{},
		ruleSources: map[string]map[string]bool{},
		degraded:    map[string]bool{},
		askMemo:     map[askKey]memoVal{},
	}
}

// lookupAsk serves a memoized ask. The hit returns a fresh slice
// header over copied elements so a caller appending to its result
// cannot disturb the memo; the Name trees and Bindings inside are
// shared, as they are between any two asks over one cache.
func (g *demandGen) lookupAsk(key askKey) ([]Answer, bool) {
	g.mu.Lock()
	memo, ok := g.askMemo[key]
	g.mu.Unlock()
	if !ok {
		return nil, false
	}
	if len(memo.answers) == 0 {
		return nil, true
	}
	out := make([]Answer, len(memo.answers))
	copy(out, memo.answers)
	return out, true
}

// storeAsk memoizes a completed ask's answers, unless the cache
// mutated since the snapshot the answers were derived from. src is
// the pattern's source text when known ("" for pre-parsed asks, which
// then memoize but cannot be persisted).
func (g *demandGen) storeAsk(key askKey, src string, functors []string, out []Answer, version uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.version != version || len(g.askMemo) >= maxAskMemo {
		return
	}
	memo := make([]Answer, len(out))
	copy(memo, out)
	g.askMemo[key] = memoVal{answers: memo, src: src, functors: append([]string(nil), functors...)}
}

// Mediator answers queries over the virtual target of a conversion.
type Mediator struct {
	inputs *tree.Store
	opts   *engine.Options
	demand bool

	// sources is the fault-tolerant source layer (WithSources); when
	// non-empty, materializations fetch and merge these instead of
	// consuming inputs alone. srcMu guards the per-source bookkeeping
	// below: the entries each source contributed to the most recent
	// merge, its most recent fetch error (nil when healthy), and the
	// most recent successfully merged input store — the baseline
	// RefreshSource diffs a fresh fetch against for delta propagation.
	sources    []source.Source
	srcMu      sync.Mutex
	srcEntries map[string][]tree.Name
	srcErrs    map[string]error
	lastMerged *tree.Store

	mu sync.Mutex // guards cur and lastGood
	// cur is the current program state; queries snapshot it once.
	cur *progState
	// lastGood retains the stats of the most recent successful
	// materialization so they stay readable after Invalidate until
	// the next generation materializes.
	lastGood    engine.Stats
	hasLastGood bool

	// Query counters (atomics: Ask runs concurrently).
	asks      atomic.Int64
	cacheHits atomic.Int64
	cacheMiss atomic.Int64
	askNanos  atomic.Int64

	// Incremental-refresh counters (see Stats.DeltaRuns et al.).
	deltaRuns      atomic.Int64
	deltaFallbacks atomic.Int64
	patchedRules   atomic.Int64
}

// New returns a mediator over the program and sources. Nothing runs
// until the first query. Options configure the underlying engine runs
// (a legacy *engine.Options value also works: it satisfies
// engine.Option); WithDemandDriven selects the evaluation strategy.
func New(prog *yatl.Program, inputs *tree.Store, opts ...engine.Option) *Mediator {
	m := &Mediator{inputs: inputs, cur: &progState{
		prog: prog, gen: &generation{}, facts: engine.AnalyzeProgram(prog), num: 1}}
	var eng []engine.Option
	for _, o := range opts {
		switch o := o.(type) {
		case demandOption:
			m.demand = bool(o)
		case sourcesOption:
			m.sources = append(m.sources, o...)
		default:
			eng = append(eng, o)
		}
	}
	m.opts = engine.NewOptions(eng...)
	m.cur.progHash = snapshot.HashProgram(prog)
	m.cur.optsHash = snapshot.HashOptions(m.opts)
	if m.demand {
		m.cur.dgen = newDemandGen()
	}
	if len(m.sources) > 0 {
		m.srcEntries = map[string][]tree.Name{}
		m.srcErrs = map[string]error{}
	}
	return m
}

// state snapshots the current program state. Everything a query does
// afterwards — slicing, materializing, matching — works against this
// one snapshot, which is what makes Invalidate and Reload atomic from
// the query's point of view.
func (m *Mediator) state() *progState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur
}

// Program returns the program the mediator currently serves (the one
// installed by the constructor or the most recent Reload).
func (m *Mediator) Program() *yatl.Program { return m.state().prog }

// Generation returns the current program-state generation number. It
// starts at 1 and increments on every Invalidate and Reload; two asks
// reporting the same generation were answered by the same program and
// cache lifetime.
func (m *Mediator) Generation() int64 { return m.state().num }

// fetchInputs assembles the engine's input store. Without sources it
// is the constructor's store; with sources, every source is fetched
// concurrently and the snapshots are merged in declaration order
// (after the constructor's store, later sources winning name
// collisions), so the merged store — and therefore every downstream
// result — is deterministic regardless of fetch completion order. A
// failing source contributes nothing (degradation); only all sources
// failing is an error.
func (m *Mediator) fetchInputs(ctx context.Context) (*tree.Store, error) {
	if len(m.sources) == 0 {
		return m.inputs, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sink := m.opts.Trace
	if sink != nil {
		ctx = source.WithSink(ctx, sink)
	}
	type fetchResult struct {
		store *tree.Store
		err   error
		dur   time.Duration
	}
	results := make([]fetchResult, len(m.sources))
	var wg sync.WaitGroup
	for i, s := range m.sources {
		wg.Add(1)
		go func(i int, s source.Source) {
			defer wg.Done()
			var start time.Time
			if sink != nil {
				start = time.Now()
			}
			st, err := s.Fetch(ctx)
			res := fetchResult{store: st, err: err}
			if sink != nil {
				res.dur = time.Since(start)
			}
			results[i] = res
		}(i, s)
	}
	wg.Wait()

	merged := tree.NewStore()
	if m.inputs != nil {
		for _, e := range m.inputs.Entries() {
			merged.Put(e.Name, e.Tree)
		}
	}
	failed := map[string]error{}
	m.srcMu.Lock()
	for i, s := range m.sources {
		r := results[i]
		if sink != nil {
			ok := 1
			if r.err != nil {
				ok = 0
			}
			sink.Emit(trace.Event{Kind: trace.KindSourceFetch, Phase: trace.PhaseSource,
				Detail: s.Name(), Count: ok, Duration: r.dur})
		}
		if r.err != nil {
			failed[s.Name()] = r.err
			m.srcErrs[s.Name()] = r.err
			continue
		}
		m.srcErrs[s.Name()] = nil
		names := make([]tree.Name, 0, r.store.Len())
		for _, e := range r.store.Entries() {
			merged.Put(e.Name, e.Tree)
			names = append(names, e.Name)
		}
		m.srcEntries[s.Name()] = names
	}
	m.srcMu.Unlock()
	if len(failed) == len(m.sources) {
		return nil, &FetchError{Errs: failed}
	}
	m.srcMu.Lock()
	m.lastMerged = merged
	m.srcMu.Unlock()
	return merged, nil
}

// materialize runs the conversion once per generation; concurrent
// callers block on the same sync.Once and share the outcome. The
// boolean reports whether the generation was already materialized
// when the caller arrived (a cache hit for Stats accounting).
func (m *Mediator) materialize(ctx context.Context, st *progState) (*engine.Result, bool, error) {
	g := st.gen
	warm := g.done.Load()
	res, err := g.materialize(ctx, m, st)
	if err == nil && !warm {
		m.mu.Lock()
		// Only credit the generation still current: a stale run
		// finishing after an Invalidate must not overwrite the stats
		// of a newer materialization.
		if st == m.cur || !m.hasLastGood {
			m.lastGood = res.Stats
			m.hasLastGood = true
		}
		m.mu.Unlock()
	}
	return res, warm, err
}

// Asker is anything that can answer pattern queries over a virtual
// target: a local *Mediator, a remote shard client, or a federation
// router. It is the narrow waist of the query surface — the serve
// pool, the federation's scatter-gather and the tools all speak it,
// so the three implementations are interchangeable.
type Asker interface {
	// Ask matches a pattern (YATL concrete syntax) against the target.
	Ask(patternSrc string, functors ...string) ([]Answer, error)
	// AskContext is Ask under a cancellation context.
	AskContext(ctx context.Context, patternSrc string, functors ...string) ([]Answer, error)
	// Functors lists the Skolem functors the target mints, sorted.
	Functors() ([]string, error)
	// Stats snapshots the implementation's counters.
	Stats() Stats
}

var _ Asker = (*Mediator)(nil)

// Answer is one query result: the identity of the target object and
// the variable bindings of the match.
type Answer struct {
	Name    tree.Name
	Binding engine.Binding
	// WireKey, when non-empty, overrides MergeKey with the canonical
	// key computed where the answer was produced. Remote shard clients
	// set it from the wire so a federation's merge reproduces the
	// child's exact sort order even if a display form failed to
	// round-trip; locally produced answers leave it empty.
	WireKey string `json:"-"`
}

// MergeKey is the canonical (Name, Binding) sort key doAsk orders
// answers by, shared with the federation's cross-shard merge. The NUL
// separator cannot occur inside either component key (both render
// strings Go-quoted), so concatenation stays injective.
func (a *Answer) MergeKey() string {
	if a.WireKey != "" {
		return a.WireKey
	}
	return a.Name.Key() + "\x00" + a.Binding.Key()
}

// Ask matches a pattern (in YATL concrete syntax) against the virtual
// target and returns one answer per (object, binding). Optional
// functors restrict the search to objects minted by those Skolem
// functors; a demand-driven mediator then materializes only the rule
// slice those functors need.
func (m *Mediator) Ask(patternSrc string, functors ...string) ([]Answer, error) {
	return m.AskContext(nil, patternSrc, functors...)
}

// patCache memoizes parsed query patterns by source text, shared by
// every mediator in the process (a parse is pure syntax). Capped so a
// client generating unbounded distinct patterns cannot exhaust
// memory; patterns past the cap parse uncached.
var (
	patCache     sync.Map // string -> *pattern.PTree
	patCacheSize atomic.Int64
)

const maxPatCache = 4096

func parsePatternCached(src string) (*pattern.PTree, error) {
	if v, ok := patCache.Load(src); ok {
		return v.(*pattern.PTree), nil
	}
	pt, err := yatl.ParsePattern(src)
	if err != nil {
		return nil, err
	}
	if patCacheSize.Load() < maxPatCache {
		if _, loaded := patCache.LoadOrStore(src, pt); !loaded {
			patCacheSize.Add(1)
		}
	}
	return pt, nil
}

// AskContext is Ask with a cancellation context applied to any engine
// run the query triggers.
func (m *Mediator) AskContext(ctx context.Context, patternSrc string, functors ...string) ([]Answer, error) {
	start := time.Now()
	m.asks.Add(1)
	pt, err := parsePatternCached(patternSrc)
	if err != nil {
		// A parse failure is still an ask (Asks and AskTime cover it)
		// but it never consulted the cache, so it is neither a hit nor
		// a miss: Asks == CacheHits + CacheMisses + parse failures.
		m.askNanos.Add(time.Since(start).Nanoseconds())
		return nil, fmt.Errorf("mediator: %w", err)
	}
	return m.askPattern(ctx, start, patternSrc, pt, functors)
}

// AskPattern is Ask over a parsed pattern.
func (m *Mediator) AskPattern(pt *pattern.PTree, functors ...string) ([]Answer, error) {
	return m.AskPatternContext(nil, pt, functors...)
}

// AskPatternContext is AskPattern with a cancellation context applied
// to any engine run the query triggers. With no source text in hand,
// the ask memoizes under the pattern's identity but its memo entry
// cannot be persisted by a snapshot.
func (m *Mediator) AskPatternContext(ctx context.Context, pt *pattern.PTree, functors ...string) ([]Answer, error) {
	m.asks.Add(1)
	return m.askPattern(ctx, time.Now(), "", pt, functors)
}

// askPattern is the shared ask core; the caller has already counted
// the ask and taken the start timestamp. Counter discipline, pinned by
// TestAskCounterConsistency: every return path adds the elapsed time
// to AskTime, and exactly one of CacheHits/CacheMisses is incremented
// — a hit only when the answer came entirely from an already-successful
// materialization, a miss whenever engine work ran or was awaited,
// errors included.
func (m *Mediator) askPattern(ctx context.Context, start time.Time, src string, pt *pattern.PTree, functors []string) ([]Answer, error) {
	// No defer: the closure it would capture allocates on every ask,
	// and the demand cache-hit path budgets its allocations.
	out, err := m.doAsk(ctx, src, pt, functors)
	m.askNanos.Add(time.Since(start).Nanoseconds())
	return out, err
}

// storelessMatcher serves every demand-mode ask. The demand store may
// gain entries concurrently; with no model, conformance (the only
// store consumer) is skipped, so a storeless matcher is exactly the
// full-mode matcher — and with no per-ask state it is shared safely.
var storelessMatcher = &engine.Matcher{}

func (m *Mediator) doAsk(ctx context.Context, src string, pt *pattern.PTree, functors []string) ([]Answer, error) {
	st := m.state()
	var entries []tree.StoreEntry
	var matcher *engine.Matcher
	var memoGen *demandGen
	var memoKey askKey
	var memoVer uint64
	if m.demand {
		g := st.dgen
		if m.opts.Trace == nil {
			// The repeat of an identical ask skips matching entirely.
			// Traced asks bypass the memo in both directions: EXPLAIN
			// exists to show the slice and per-rule cache decisions,
			// which a memoized answer would hide.
			memoKey = askKey{pt: pt, functors: strings.Join(functors, "\x00")}
			if out, ok := g.lookupAsk(memoKey); ok {
				m.cacheHits.Add(1)
				return out, nil
			}
			memoGen = g
		}
		es, hit, ver, err := m.ensureDemand(ctx, st, functors)
		if err != nil {
			m.cacheMiss.Add(1)
			return nil, err
		}
		if hit {
			m.cacheHits.Add(1)
		} else {
			m.cacheMiss.Add(1)
		}
		entries = es
		matcher = storelessMatcher
		memoVer = ver
	} else {
		res, warm, err := m.materialize(ctx, st)
		if err != nil {
			// A memoized failure is still a miss on every ask: nothing
			// usable was served from cache.
			m.cacheMiss.Add(1)
			return nil, err
		}
		if warm {
			m.cacheHits.Add(1)
		} else {
			m.cacheMiss.Add(1)
		}
		want := map[string]bool{}
		for _, f := range functors {
			want[f] = true
		}
		for _, e := range res.Outputs.Entries() {
			if len(want) > 0 && !want[e.Name.Functor] {
				continue
			}
			entries = append(entries, e)
		}
		matcher = &engine.Matcher{Store: res.Outputs}
	}
	var out []Answer
	for _, e := range entries {
		for _, b := range matcher.MatchTree(pt, e.Tree) {
			out = append(out, Answer{Name: e.Name, Binding: b})
		}
	}
	if len(out) > 1 {
		sort.SliceStable(out, func(i, j int) bool {
			if k := out[i].Name.Key(); k != out[j].Name.Key() {
				return k < out[j].Name.Key()
			}
			return out[i].Binding.Key() < out[j].Binding.Key()
		})
	}
	if memoGen != nil {
		memoGen.storeAsk(memoKey, src, functors, out, memoVer)
	}
	return out, nil
}

// ensureDemand guarantees every construct rule of the slice for the
// given functors (none = the whole program) is cached, running the
// engine over the missing sub-slice when necessary. It returns a
// consistent snapshot of the cached entries restricted to the
// requested functors, whether the query was served entirely from
// cache, and the cache version the snapshot was taken at (for the
// ask memo's stale-write guard).
func (m *Mediator) ensureDemand(ctx context.Context, st *progState, functors []string) ([]tree.StoreEntry, bool, uint64, error) {
	g := st.dgen
	g.mu.Lock()
	defer g.mu.Unlock()

	ask := st.sliceFor(functors...)
	var missing []*yatl.Rule
	for _, r := range ask.Construct {
		if !g.cached[r.Name] {
			missing = append(missing, r)
		}
	}
	if m.opts.Trace != nil {
		for _, r := range ask.Construct {
			kind := trace.KindCacheHit
			if !g.cached[r.Name] {
				kind = trace.KindCacheMiss
			}
			m.opts.Trace.Emit(trace.Event{Kind: kind, Phase: trace.PhaseSlice, Rule: r.Name})
		}
	}
	if len(missing) > 0 {
		// Re-slice from the missing functors and run from scratch:
		// re-deriving a cached dependency repeats work but keeps the
		// activation fixpoint identical to a full run's, which is what
		// makes the cached entries byte-identical and composable.
		var fs []string
		seen := map[string]bool{}
		for _, r := range missing {
			if !seen[r.Head.Functor] {
				seen[r.Head.Functor] = true
				fs = append(fs, r.Head.Functor)
			}
		}
		inputs, err := m.fetchInputs(ctx)
		if err != nil {
			g.lastErr = err
			return nil, false, 0, err
		}
		sub := st.sliceFor(fs...)
		res, err := engine.RunSlice(ctx, st.prog, inputs, sub, m.opts, engine.WithFacts(st.facts))
		if err != nil {
			g.lastErr = err
			return nil, false, 0, err
		}
		g.lastErr = nil
		// Rules cached from a degraded fetch silently lack the failed
		// sources' data; remember which, so RefreshSource can drop the
		// generation when such a source comes back.
		m.srcMu.Lock()
		for name, ferr := range m.srcErrs {
			if ferr != nil {
				g.degraded[name] = true
			}
		}
		m.srcMu.Unlock()
		g.runs++
		g.stats.Activations += res.Stats.Activations
		g.stats.Bindings += res.Stats.Bindings
		g.stats.Outputs += res.Stats.Outputs
		g.stats.Rounds += res.Stats.Rounds
		for _, r := range sub.Construct {
			g.cached[r.Name] = true
			g.ruleEntries[r.Name] = res.RuleOutputs[r.Name]
			for _, e := range res.RuleOutputs[r.Name] {
				g.put(e.Name, e.Tree)
			}
		}
		for rule, srcs := range res.RuleSources {
			set := g.ruleSources[rule]
			if set == nil {
				set = map[string]bool{}
				g.ruleSources[rule] = set
			}
			for _, s := range srcs {
				set[s.Key()] = true
			}
		}
	}
	if len(functors) == 1 {
		// The bucket slice is handed out directly: later cache fills
		// replace buckets rather than mutating them, so the caller's
		// view stays consistent without a copy — the cache-hit path
		// allocates nothing here.
		return g.byFunctor[functors[0]], len(missing) == 0, g.version, nil
	}
	want := map[string]bool{}
	for _, f := range functors {
		want[f] = true
	}
	var out []tree.StoreEntry
	for _, e := range g.store.Entries() {
		if len(want) > 0 && !want[e.Name.Functor] {
			continue
		}
		out = append(out, e)
	}
	return out, len(missing) == 0, g.version, nil
}

// put commits one entry to the assembled store and its functor index.
// Must hold g.mu. A replacement rebuilds the functor's bucket instead
// of mutating it, because snapshot slices of the old bucket may still
// be matched against outside the lock.
func (g *demandGen) put(name tree.Name, t *tree.Node) {
	g.version++
	if len(g.askMemo) > 0 {
		clear(g.askMemo)
	}
	replaced := g.store.Put(name, t)
	f := name.Functor
	if !replaced {
		g.byFunctor[f] = append(g.byFunctor[f], tree.StoreEntry{Name: name, Tree: t})
		return
	}
	old := g.byFunctor[f]
	fresh := make([]tree.StoreEntry, len(old))
	key := name.Key()
	for i, e := range old {
		if e.Name.Key() == key {
			e.Tree = t
		}
		fresh[i] = e
	}
	g.byFunctor[f] = fresh
}

// Get resolves one virtual object by Skolem identity. A demand-driven
// mediator materializes only the identity's functor slice.
func (m *Mediator) Get(name tree.Name) (*tree.Node, bool, error) {
	return m.GetContext(nil, name)
}

// GetContext is Get with a cancellation context applied to any engine
// run the lookup triggers.
func (m *Mediator) GetContext(ctx context.Context, name tree.Name) (*tree.Node, bool, error) {
	st := m.state()
	if m.demand {
		entries, _, _, err := m.ensureDemand(ctx, st, []string{name.Functor})
		if err != nil {
			return nil, false, err
		}
		key := name.Key()
		for _, e := range entries {
			if e.Name.Key() == key {
				return e.Tree, true, nil
			}
		}
		return nil, false, nil
	}
	res, _, err := m.materialize(ctx, st)
	if err != nil {
		return nil, false, err
	}
	n, ok := res.Outputs.Get(name)
	return n, ok, nil
}

// Functors lists the Skolem functors present in the target, sorted.
// This needs the whole target, so a demand-driven mediator fully
// materializes here.
func (m *Mediator) Functors() ([]string, error) {
	st := m.state()
	var entries []tree.StoreEntry
	if m.demand {
		es, _, _, err := m.ensureDemand(nil, st, nil)
		if err != nil {
			return nil, err
		}
		entries = es
	} else {
		res, _, err := m.materialize(nil, st)
		if err != nil {
			return nil, err
		}
		entries = res.Outputs.Entries()
	}
	seen := map[string]bool{}
	var out []string
	for _, e := range entries {
		if !seen[e.Name.Functor] {
			seen[e.Name.Functor] = true
			out = append(out, e.Name.Functor)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Stats reports the mediator's materialization state and query
// counters. The zero value of every field is meaningful before the
// first query.
type Stats struct {
	// Run holds the statistics of the current materialization when
	// one succeeded, else those of the last good generation (kept
	// readable across Invalidate until the replacement materializes).
	Run engine.Stats
	// Materialized reports that the *current* generation has
	// materialized successfully. False both before the first query
	// and after Invalidate.
	Materialized bool
	// Err is the materialization error of the current generation, if
	// it ran and failed. Nil when the generation has not run yet —
	// Materialized false with a nil Err means "no query has run",
	// resolving the ambiguity a bare zero engine.Stats used to hide.
	Err error
	// Asks counts AskPattern calls; CacheHits of those found the
	// generation already materialized, CacheMisses triggered (or
	// waited on) a materialization.
	Asks, CacheHits, CacheMisses int64
	// AskTime is the cumulative wall time spent inside Ask calls;
	// divide by Asks for the mean per-query latency.
	AskTime time.Duration
	// Generation is the current program-state generation number (1 on
	// construction, +1 per Invalidate or Reload).
	Generation int64
	// Restored reports the current generation was warm-started from a
	// persisted snapshot rather than computed by this process; its
	// cached answers came from disk, validated by program and options
	// hash.
	Restored bool
	// Demand reports the mediator evaluates demand-driven. The fields
	// below are only meaningful when it is set.
	Demand bool
	// CachedRules is the number of construct rules currently cached.
	CachedRules int
	// SliceRuns counts engine slice executions performed; an Ask that
	// increments CacheHits performed none.
	SliceRuns int64
	// DeltaRuns counts RefreshSource calls absorbed incrementally: the
	// refreshed fetch was diffed against the previous one and the
	// per-rule cache was patched in place (or the delta was empty, or
	// touched no cached rule). DeltaFallbacks counts refreshes where
	// patching would have been unsound — deletions, multi-pattern
	// joins, Skolem derefs, exception rules, output collisions,
	// degraded sources — and the mediator re-ran the affected slice or
	// invalidated wholesale instead. PatchedRules counts the cached
	// rules whose entries were rewritten across both paths.
	DeltaRuns, DeltaFallbacks, PatchedRules int64
	// Sources reports per-source health for a mediator consuming
	// fault-tolerant sources (WithSources), in declaration order;
	// empty otherwise.
	Sources []SourceStatus
	// Shards reports per-child health for a federation router, in
	// child declaration order; empty for a plain mediator. Aggregate
	// concatenates them, so a pool of federations reports every lane's
	// children.
	Shards []ShardStatus
}

// ShardStatus is one federation child's health as the router sees it:
// the guard chain's counters (attempts, retries, breaker state) plus
// the outcome of the router's most recent call.
type ShardStatus struct {
	// Name identifies the child (configured name or client base URL).
	Name string
	// Remote reports the child is reached over HTTP rather than
	// in-process.
	Remote bool
	// Functors is the number of functor groups routed to the child.
	Functors int
	// Asks and Failures count the router's calls into the child and
	// how many of them errored after the guard chain gave up.
	Asks, Failures int64
	// Healthy reports the most recent call succeeded (true before the
	// first call: a child is innocent until it fails).
	Healthy bool
	// Breaker is the guard chain's breaker state ("closed", "open",
	// "half-open"; empty when no breaker is configured).
	Breaker string
	// LastErr is the most recent call error, "" when it succeeded.
	LastErr string
}

// SourceStatus is one source's health as the mediator sees it: the
// source chain's own counters (attempts, retries, breaker state,
// staleness) plus the outcome of the mediator's most recent fetch.
type SourceStatus struct {
	source.Stats
	// FetchErr is the error of the mediator's most recent fetch of
	// this source, "" when it succeeded (or never ran).
	FetchErr string
	// Entries is the number of store entries the source contributed to
	// the most recent successful merge.
	Entries int
}

// sourceStatuses snapshots every source's health, in declaration
// order.
func (m *Mediator) sourceStatuses() []SourceStatus {
	if len(m.sources) == 0 {
		return nil
	}
	out := make([]SourceStatus, len(m.sources))
	m.srcMu.Lock()
	defer m.srcMu.Unlock()
	for i, s := range m.sources {
		st := SourceStatus{Stats: source.StatsOf(s), Entries: len(m.srcEntries[s.Name()])}
		if err := m.srcErrs[s.Name()]; err != nil {
			st.FetchErr = err.Error()
		}
		out[i] = st
	}
	return out
}

// Stats exposes the mediator's statistics. It never triggers a
// materialization itself; the atomic done flag orders the read after
// the run's writes.
func (m *Mediator) Stats() Stats {
	if m.demand {
		return m.demandStats()
	}
	m.mu.Lock()
	st := m.cur
	g := st.gen
	s := Stats{Run: m.lastGood, Generation: st.num}
	m.mu.Unlock()
	if g.done.Load() {
		if g.err != nil {
			s.Err = g.err
		} else {
			s.Materialized = true
			if g.result != nil {
				s.Run = g.result.Stats
			}
		}
	}
	s.Asks = m.asks.Load()
	s.CacheHits = m.cacheHits.Load()
	s.CacheMisses = m.cacheMiss.Load()
	s.AskTime = time.Duration(m.askNanos.Load())
	s.DeltaRuns = m.deltaRuns.Load()
	s.DeltaFallbacks = m.deltaFallbacks.Load()
	s.PatchedRules = m.patchedRules.Load()
	s.Sources = m.sourceStatuses()
	return s
}

// demandStats assembles Stats for a demand-driven mediator: Run
// accumulates engine work across slice runs, Materialized means every
// construct rule of the program is cached.
func (m *Mediator) demandStats() Stats {
	st := m.state()
	g := st.dgen
	g.mu.Lock()
	s := Stats{
		Run:         g.stats,
		Demand:      true,
		Restored:    g.restored,
		CachedRules: len(g.cached),
		SliceRuns:   g.runs,
		Err:         g.lastErr,
		Generation:  st.num,
	}
	full := st.sliceFor()
	s.Materialized = len(full.Construct) > 0
	for _, r := range full.Construct {
		if !g.cached[r.Name] {
			s.Materialized = false
			break
		}
	}
	g.mu.Unlock()
	s.Asks = m.asks.Load()
	s.CacheHits = m.cacheHits.Load()
	s.CacheMisses = m.cacheMiss.Load()
	s.AskTime = time.Duration(m.askNanos.Load())
	s.DeltaRuns = m.deltaRuns.Load()
	s.DeltaFallbacks = m.deltaFallbacks.Load()
	s.PatchedRules = m.patchedRules.Load()
	s.Sources = m.sourceStatuses()
	return s
}

// Invalidate drops the materialized target, forcing the next query to
// reconvert (sources changed). Queries already running against the
// old generation finish against its consistent snapshot.
func (m *Mediator) Invalidate() {
	m.mu.Lock()
	next := &progState{prog: m.cur.prog, gen: &generation{}, facts: m.cur.facts,
		progHash: m.cur.progHash, optsHash: m.cur.optsHash, num: m.cur.num + 1}
	if m.demand {
		next.dgen = newDemandGen()
	}
	m.cur = next
	m.mu.Unlock()
}

// Reload swaps the mediator's program for a recompiled one behind the
// atomic program state: queries already running finish against the
// old program's consistent cache, queries arriving afterwards observe
// the new program — never a mix of the two. On a demand-driven
// mediator the per-rule cache survives where safe: a cached functor
// group stays warm exactly when its rule slice — construct and
// support rules alike — is present in the new program with identical
// rule names and identical rule text, so nothing that could have
// influenced its cached outputs changed. Every other group is evicted
// through the same machinery InvalidateRule uses. A non-demand
// mediator reconverts wholesale on the next query.
//
// Rule text alone is not the whole cache key: the options hash —
// which folds in the builtin registry's surface — is recomputed here
// and compared against the hash the cached entries were computed
// under. A Register call between reloads changes what identical rule
// text evaluates to, so a mismatch evicts everything instead of
// carrying over entries the new surface would not reproduce.
func (m *Mediator) Reload(prog *yatl.Program) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.cur
	next := &progState{prog: prog, gen: &generation{}, facts: engine.AnalyzeProgram(prog),
		progHash: snapshot.HashProgram(prog), optsHash: snapshot.HashOptions(m.opts), num: old.num + 1}
	if m.demand {
		if next.optsHash == old.optsHash {
			next.dgen = old.dgen.cloneFor(old.prog, prog)
		} else {
			next.dgen = newDemandGen()
		}
	}
	m.cur = next
}

// InvalidateRule drops from the demand cache every functor group
// whose materialization could have involved the named rule (the rule
// is in the group's slice, as construct or support). Cached groups
// the rule cannot reach stay warm. On a full-materialization mediator
// there is nothing finer-grained to drop, so it degrades to
// Invalidate.
func (m *Mediator) InvalidateRule(rule string) {
	if !m.demand {
		m.Invalidate()
		return
	}
	st := m.state()
	g := st.dgen
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, f := range g.cachedFunctors(st.prog) {
		if engine.ComputeSlice(st.prog, f).Includes(rule) {
			g.dropFunctor(st.prog, f)
		}
	}
}

// InvalidateSource drops from the demand cache every functor group
// whose materialization directly matched the given source input (as
// recorded during its slice runs). A name no cached rule recorded a
// dependency on returns a *NotFoundError (the same shape RefreshSource
// returns for an unknown source name) instead of silently doing
// nothing. On a full-materialization mediator it degrades to
// Invalidate.
func (m *Mediator) InvalidateSource(src tree.Name) error {
	if !m.demand {
		m.Invalidate()
		return nil
	}
	st := m.state()
	g := st.dgen
	g.mu.Lock()
	defer g.mu.Unlock()
	key := src.Key()
	known := false
	for _, set := range g.ruleSources {
		if set[key] {
			known = true
			break
		}
	}
	if !known {
		return &NotFoundError{Kind: "source entry", Name: src.String()}
	}
	for _, f := range g.cachedFunctors(st.prog) {
		sl := engine.ComputeSlice(st.prog, f)
		depends := false
		for _, r := range sl.Construct {
			if g.ruleSources[r.Name][key] {
				depends = true
				break
			}
		}
		if !depends {
			for _, r := range sl.Support {
				if g.ruleSources[r.Name][key] {
					depends = true
					break
				}
			}
		}
		if depends {
			g.dropFunctor(st.prog, f)
		}
	}
	return nil
}

// RefreshSource re-fetches the named source and absorbs whatever
// changed with as little re-computation as it can prove sound. When
// the source carries a stale-while-revalidate cache the refresh is
// forced through it (a failing refresh keeps the old snapshot and
// returns the error without invalidating anything — the served data
// did not change). A demand-driven mediator then diffs the refreshed
// merge against the previous one and propagates the delta through
// only the affected rule slices (see refreshDelta in delta.go),
// patching the per-rule cache in place where that is provably
// byte-identical to a re-run and falling back to a slice re-run — or,
// for a previously degraded source, wholesale invalidation — where it
// is not. A full-materialization mediator reconverts wholesale. A nil
// ctx is normalized before it can reach source decorators (whose
// timeout and breaker paths call ctx methods); an unknown name
// returns a *NotFoundError.
func (m *Mediator) RefreshSource(ctx context.Context, name string) error {
	var src source.Source
	for _, s := range m.sources {
		if s.Name() == name {
			src = s
			break
		}
	}
	if src == nil {
		return &NotFoundError{Kind: "source", Name: name}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if m.opts.Trace != nil {
		ctx = source.WithSink(ctx, m.opts.Trace)
	}
	if r, ok := src.(interface{ Refresh(context.Context) error }); ok {
		if err := r.Refresh(ctx); err != nil {
			return fmt.Errorf("mediator: refreshing source %s: %w", name, err)
		}
	}
	if !m.demand {
		m.Invalidate()
		return nil
	}
	return m.refreshDelta(ctx, name)
}

// cachedFunctors lists the head functors with cached rules, in
// declaration order. Slice runs cache whole groups, so "any rule
// cached" and "all rules cached" coincide per functor.
func (g *demandGen) cachedFunctors(prog *yatl.Program) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range prog.Rules {
		if r.Exception || seen[r.Head.Functor] || !g.cached[r.Name] {
			continue
		}
		seen[r.Head.Functor] = true
		out = append(out, r.Head.Functor)
	}
	return out
}

// dropFunctor evicts every cached rule of the functor's group,
// deleting its committed entries from the assembled store. Only names
// minted by the group's rules carry its functor, so the eviction
// cannot strand entries another cached group still answers from.
func (g *demandGen) dropFunctor(prog *yatl.Program, f string) {
	g.version++
	if len(g.askMemo) > 0 {
		clear(g.askMemo)
	}
	for _, r := range prog.Rules {
		if r.Exception || r.Head.Functor != f || !g.cached[r.Name] {
			continue
		}
		for _, e := range g.ruleEntries[r.Name] {
			g.store.Delete(e.Name)
		}
		delete(g.ruleEntries, r.Name)
		delete(g.cached, r.Name)
	}
	// Every entry of the bucket was minted by the functor's own group,
	// so the whole index bucket goes with it.
	delete(g.byFunctor, f)
}
