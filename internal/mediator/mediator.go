// Package mediator implements the mediator-side querying the paper
// leaves as future work (§1: "a complementary goal is to be able to
// query it without fully materializing it"; §5: YAT "can serve as the
// basis for a mediator/wrapper system"). A Mediator wraps a
// conversion program and its sources and answers pattern queries over
// the *virtual* target representation.
//
// Materialization is lazy and memoized: the conversion runs once, on
// the first query, and its outputs are shared by all later queries.
// When the query only concerns some Skolem functors, Ask restricts
// matching to those outputs. Composition (§4.3) slots in naturally: a
// mediator over `Compose(prg1, prg2)` answers queries over M3 against
// M1 sources with no intermediate M2 store at all.
//
// With WithDemandDriven the mediator goes further and pushes the
// query into the engine: an Ask restricted to some functors computes
// the dependency-closed rule slice for those functors
// (engine.ComputeSlice), runs only that slice, and memoizes the
// materialized outputs per rule so overlapping slices reuse work.
// InvalidateRule and InvalidateSource then drop only the cached rules
// whose outputs could have depended on the change.
//
// A Mediator is safe for concurrent use: a production mediator serves
// many clients at once, so concurrent Ask/Get/Functors calls share a
// single materialization (guarded by sync.Once, or by the demand
// cache's lock) and then match against a consistent snapshot without
// further locking.
package mediator

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"yat/internal/engine"
	"yat/internal/pattern"
	"yat/internal/trace"
	"yat/internal/tree"
	"yat/internal/yatl"
)

// WithDemandDriven switches the mediator to demand-driven evaluation:
// instead of materializing the whole target on the first query, each
// Ask runs only the rule slice its functors need and caches the
// results per rule. It is an engine.Option so it can travel in the
// same option list as engine configuration; passed to engine.Run
// directly it is a no-op.
func WithDemandDriven(on bool) engine.Option { return demandOption(on) }

type demandOption bool

// Apply implements engine.Option. The option configures the mediator,
// not the engine, so it writes nothing.
func (demandOption) Apply(*engine.Options) {}

// generation is one materialization lifetime: Invalidate swaps in a
// fresh generation, so a query racing an invalidation keeps a
// consistent view instead of observing a half-cleared cache.
type generation struct {
	once   sync.Once
	done   atomic.Bool
	result *engine.Result
	err    error
}

func (g *generation) materialize(ctx context.Context, prog *yatl.Program, inputs *tree.Store, opts *engine.Options) (*engine.Result, error) {
	g.once.Do(func() {
		g.result, g.err = engine.RunContext(ctx, prog, inputs, opts)
		g.done.Store(true)
	})
	return g.result, g.err
}

// demandGen is one demand-driven cache lifetime: a per-rule memo of
// materialized outputs assembled from slice runs. Invalidate swaps in
// a fresh one, so a query racing an invalidation keeps a consistent
// view; InvalidateRule and InvalidateSource instead drop entries
// surgically under the generation lock.
type demandGen struct {
	mu sync.Mutex
	// store accumulates the entries of every cached rule. It is only
	// read and written under mu; queries match against snapshots.
	store *tree.Store
	// cached marks the construct rules whose outputs are materialized.
	cached map[string]bool
	// ruleEntries lists each cached rule's committed entries, the
	// exact set to evict when the rule is invalidated.
	ruleEntries map[string][]tree.StoreEntry
	// ruleSources records, per slice rule (construct and support), the
	// keys of source inputs that directly matched it — the dependency
	// data behind InvalidateSource.
	ruleSources map[string]map[string]bool
	// stats accumulates engine statistics across slice runs.
	// Overlapping slices re-run shared dependencies, so the totals
	// measure work performed, not distinct outputs.
	stats engine.Stats
	// runs counts engine slice executions.
	runs int64
	// lastErr is the error of the most recent slice run, nil after a
	// success. Unlike the full-mode generation, a failed slice run is
	// not memoized: the next query retries.
	lastErr error
}

func newDemandGen() *demandGen {
	return &demandGen{
		store:       tree.NewStore(),
		cached:      map[string]bool{},
		ruleEntries: map[string][]tree.StoreEntry{},
		ruleSources: map[string]map[string]bool{},
	}
}

// Mediator answers queries over the virtual target of a conversion.
type Mediator struct {
	prog   *yatl.Program
	inputs *tree.Store
	opts   *engine.Options
	demand bool

	mu  sync.Mutex // guards gen, dgen and lastGood
	gen *generation
	// dgen is the demand-driven cache, nil unless WithDemandDriven.
	dgen *demandGen
	// lastGood retains the stats of the most recent successful
	// materialization so they stay readable after Invalidate until
	// the next generation materializes.
	lastGood    engine.Stats
	hasLastGood bool

	// Query counters (atomics: Ask runs concurrently).
	asks      atomic.Int64
	cacheHits atomic.Int64
	cacheMiss atomic.Int64
	askNanos  atomic.Int64
}

// New returns a mediator over the program and sources. Nothing runs
// until the first query. Options configure the underlying engine runs
// (a legacy *engine.Options value also works: it satisfies
// engine.Option); WithDemandDriven selects the evaluation strategy.
func New(prog *yatl.Program, inputs *tree.Store, opts ...engine.Option) *Mediator {
	m := &Mediator{prog: prog, inputs: inputs, gen: &generation{}}
	var eng []engine.Option
	for _, o := range opts {
		if d, ok := o.(demandOption); ok {
			m.demand = bool(d)
			continue
		}
		eng = append(eng, o)
	}
	m.opts = engine.NewOptions(eng...)
	if m.demand {
		m.dgen = newDemandGen()
	}
	return m
}

// materialize runs the conversion once per generation; concurrent
// callers block on the same sync.Once and share the outcome. The
// boolean reports whether the generation was already materialized
// when the caller arrived (a cache hit for Stats accounting).
func (m *Mediator) materialize(ctx context.Context) (*engine.Result, bool, error) {
	m.mu.Lock()
	g := m.gen
	m.mu.Unlock()
	warm := g.done.Load()
	res, err := g.materialize(ctx, m.prog, m.inputs, m.opts)
	if err == nil && !warm {
		m.mu.Lock()
		// Only credit the generation still current: a stale run
		// finishing after an Invalidate must not overwrite the stats
		// of a newer materialization.
		if g == m.gen || !m.hasLastGood {
			m.lastGood = res.Stats
			m.hasLastGood = true
		}
		m.mu.Unlock()
	}
	return res, warm, err
}

// Answer is one query result: the identity of the target object and
// the variable bindings of the match.
type Answer struct {
	Name    tree.Name
	Binding engine.Binding
}

// Ask matches a pattern (in YATL concrete syntax) against the virtual
// target and returns one answer per (object, binding). Optional
// functors restrict the search to objects minted by those Skolem
// functors; a demand-driven mediator then materializes only the rule
// slice those functors need.
func (m *Mediator) Ask(patternSrc string, functors ...string) ([]Answer, error) {
	return m.AskContext(nil, patternSrc, functors...)
}

// AskContext is Ask with a cancellation context applied to any engine
// run the query triggers.
func (m *Mediator) AskContext(ctx context.Context, patternSrc string, functors ...string) ([]Answer, error) {
	pt, err := yatl.ParsePattern(patternSrc)
	if err != nil {
		return nil, fmt.Errorf("mediator: %w", err)
	}
	return m.AskPatternContext(ctx, pt, functors...)
}

// AskPattern is Ask over a parsed pattern.
func (m *Mediator) AskPattern(pt *pattern.PTree, functors ...string) ([]Answer, error) {
	return m.AskPatternContext(nil, pt, functors...)
}

// AskPatternContext is AskPattern with a cancellation context applied
// to any engine run the query triggers.
func (m *Mediator) AskPatternContext(ctx context.Context, pt *pattern.PTree, functors ...string) ([]Answer, error) {
	start := time.Now()
	defer func() { m.askNanos.Add(time.Since(start).Nanoseconds()) }()
	m.asks.Add(1)
	var entries []tree.StoreEntry
	var matcher *engine.Matcher
	if m.demand {
		es, hit, err := m.ensureDemand(ctx, functors)
		if hit {
			m.cacheHits.Add(1)
		} else {
			m.cacheMiss.Add(1)
		}
		if err != nil {
			return nil, err
		}
		entries = es
		// The demand store may gain entries concurrently; with no
		// model, conformance (the only store consumer) is skipped, so
		// a storeless matcher is exactly the full-mode matcher.
		matcher = &engine.Matcher{}
	} else {
		res, warm, err := m.materialize(ctx)
		if warm {
			m.cacheHits.Add(1)
		} else {
			m.cacheMiss.Add(1)
		}
		if err != nil {
			return nil, err
		}
		want := map[string]bool{}
		for _, f := range functors {
			want[f] = true
		}
		for _, e := range res.Outputs.Entries() {
			if len(want) > 0 && !want[e.Name.Functor] {
				continue
			}
			entries = append(entries, e)
		}
		matcher = &engine.Matcher{Store: res.Outputs}
	}
	var out []Answer
	for _, e := range entries {
		for _, b := range matcher.MatchTree(pt, e.Tree) {
			out = append(out, Answer{Name: e.Name, Binding: b})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if k := out[i].Name.Key(); k != out[j].Name.Key() {
			return k < out[j].Name.Key()
		}
		return out[i].Binding.Key() < out[j].Binding.Key()
	})
	return out, nil
}

// ensureDemand guarantees every construct rule of the slice for the
// given functors (none = the whole program) is cached, running the
// engine over the missing sub-slice when necessary. It returns a
// consistent snapshot of the cached entries restricted to the
// requested functors, and whether the query was served entirely from
// cache.
func (m *Mediator) ensureDemand(ctx context.Context, functors []string) ([]tree.StoreEntry, bool, error) {
	m.mu.Lock()
	g := m.dgen
	m.mu.Unlock()
	g.mu.Lock()
	defer g.mu.Unlock()

	ask := engine.ComputeSlice(m.prog, functors...)
	var missing []*yatl.Rule
	for _, r := range ask.Construct {
		if !g.cached[r.Name] {
			missing = append(missing, r)
		}
	}
	if m.opts.Trace != nil {
		for _, r := range ask.Construct {
			kind := trace.KindCacheHit
			if !g.cached[r.Name] {
				kind = trace.KindCacheMiss
			}
			m.opts.Trace.Emit(trace.Event{Kind: kind, Phase: trace.PhaseSlice, Rule: r.Name})
		}
	}
	if len(missing) > 0 {
		// Re-slice from the missing functors and run from scratch:
		// re-deriving a cached dependency repeats work but keeps the
		// activation fixpoint identical to a full run's, which is what
		// makes the cached entries byte-identical and composable.
		var fs []string
		seen := map[string]bool{}
		for _, r := range missing {
			if !seen[r.Head.Functor] {
				seen[r.Head.Functor] = true
				fs = append(fs, r.Head.Functor)
			}
		}
		sub := engine.ComputeSlice(m.prog, fs...)
		res, err := engine.RunSlice(ctx, m.prog, m.inputs, sub, m.opts)
		if err != nil {
			g.lastErr = err
			return nil, false, err
		}
		g.lastErr = nil
		g.runs++
		g.stats.Activations += res.Stats.Activations
		g.stats.Bindings += res.Stats.Bindings
		g.stats.Outputs += res.Stats.Outputs
		g.stats.Rounds += res.Stats.Rounds
		for _, r := range sub.Construct {
			g.cached[r.Name] = true
			g.ruleEntries[r.Name] = res.RuleOutputs[r.Name]
			for _, e := range res.RuleOutputs[r.Name] {
				g.store.Put(e.Name, e.Tree)
			}
		}
		for rule, srcs := range res.RuleSources {
			set := g.ruleSources[rule]
			if set == nil {
				set = map[string]bool{}
				g.ruleSources[rule] = set
			}
			for _, s := range srcs {
				set[s.Key()] = true
			}
		}
	}
	want := map[string]bool{}
	for _, f := range functors {
		want[f] = true
	}
	var out []tree.StoreEntry
	for _, e := range g.store.Entries() {
		if len(want) > 0 && !want[e.Name.Functor] {
			continue
		}
		out = append(out, e)
	}
	return out, len(missing) == 0, nil
}

// Get resolves one virtual object by Skolem identity. A demand-driven
// mediator materializes only the identity's functor slice.
func (m *Mediator) Get(name tree.Name) (*tree.Node, bool, error) {
	return m.GetContext(nil, name)
}

// GetContext is Get with a cancellation context applied to any engine
// run the lookup triggers.
func (m *Mediator) GetContext(ctx context.Context, name tree.Name) (*tree.Node, bool, error) {
	if m.demand {
		entries, _, err := m.ensureDemand(ctx, []string{name.Functor})
		if err != nil {
			return nil, false, err
		}
		key := name.Key()
		for _, e := range entries {
			if e.Name.Key() == key {
				return e.Tree, true, nil
			}
		}
		return nil, false, nil
	}
	res, _, err := m.materialize(ctx)
	if err != nil {
		return nil, false, err
	}
	n, ok := res.Outputs.Get(name)
	return n, ok, nil
}

// Functors lists the Skolem functors present in the target, sorted.
// This needs the whole target, so a demand-driven mediator fully
// materializes here.
func (m *Mediator) Functors() ([]string, error) {
	var entries []tree.StoreEntry
	if m.demand {
		es, _, err := m.ensureDemand(nil, nil)
		if err != nil {
			return nil, err
		}
		entries = es
	} else {
		res, _, err := m.materialize(nil)
		if err != nil {
			return nil, err
		}
		entries = res.Outputs.Entries()
	}
	seen := map[string]bool{}
	var out []string
	for _, e := range entries {
		if !seen[e.Name.Functor] {
			seen[e.Name.Functor] = true
			out = append(out, e.Name.Functor)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Stats reports the mediator's materialization state and query
// counters. The zero value of every field is meaningful before the
// first query.
type Stats struct {
	// Run holds the statistics of the current materialization when
	// one succeeded, else those of the last good generation (kept
	// readable across Invalidate until the replacement materializes).
	Run engine.Stats
	// Materialized reports that the *current* generation has
	// materialized successfully. False both before the first query
	// and after Invalidate.
	Materialized bool
	// Err is the materialization error of the current generation, if
	// it ran and failed. Nil when the generation has not run yet —
	// Materialized false with a nil Err means "no query has run",
	// resolving the ambiguity a bare zero engine.Stats used to hide.
	Err error
	// Asks counts AskPattern calls; CacheHits of those found the
	// generation already materialized, CacheMisses triggered (or
	// waited on) a materialization.
	Asks, CacheHits, CacheMisses int64
	// AskTime is the cumulative wall time spent inside Ask calls;
	// divide by Asks for the mean per-query latency.
	AskTime time.Duration
	// Demand reports the mediator evaluates demand-driven. The fields
	// below are only meaningful when it is set.
	Demand bool
	// CachedRules is the number of construct rules currently cached.
	CachedRules int
	// SliceRuns counts engine slice executions performed; an Ask that
	// increments CacheHits performed none.
	SliceRuns int64
}

// Stats exposes the mediator's statistics. It never triggers a
// materialization itself; the atomic done flag orders the read after
// the run's writes.
func (m *Mediator) Stats() Stats {
	if m.demand {
		return m.demandStats()
	}
	m.mu.Lock()
	g := m.gen
	s := Stats{Run: m.lastGood}
	m.mu.Unlock()
	if g.done.Load() {
		if g.err != nil {
			s.Err = g.err
		} else {
			s.Materialized = true
			if g.result != nil {
				s.Run = g.result.Stats
			}
		}
	}
	s.Asks = m.asks.Load()
	s.CacheHits = m.cacheHits.Load()
	s.CacheMisses = m.cacheMiss.Load()
	s.AskTime = time.Duration(m.askNanos.Load())
	return s
}

// demandStats assembles Stats for a demand-driven mediator: Run
// accumulates engine work across slice runs, Materialized means every
// construct rule of the program is cached.
func (m *Mediator) demandStats() Stats {
	m.mu.Lock()
	g := m.dgen
	m.mu.Unlock()
	g.mu.Lock()
	s := Stats{
		Run:         g.stats,
		Demand:      true,
		CachedRules: len(g.cached),
		SliceRuns:   g.runs,
		Err:         g.lastErr,
	}
	full := engine.ComputeSlice(m.prog)
	s.Materialized = len(full.Construct) > 0
	for _, r := range full.Construct {
		if !g.cached[r.Name] {
			s.Materialized = false
			break
		}
	}
	g.mu.Unlock()
	s.Asks = m.asks.Load()
	s.CacheHits = m.cacheHits.Load()
	s.CacheMisses = m.cacheMiss.Load()
	s.AskTime = time.Duration(m.askNanos.Load())
	return s
}

// Invalidate drops the materialized target, forcing the next query to
// reconvert (sources changed). Queries already running against the
// old generation finish against its consistent snapshot.
func (m *Mediator) Invalidate() {
	m.mu.Lock()
	if m.demand {
		m.dgen = newDemandGen()
	} else {
		m.gen = &generation{}
	}
	m.mu.Unlock()
}

// InvalidateRule drops from the demand cache every functor group
// whose materialization could have involved the named rule (the rule
// is in the group's slice, as construct or support). Cached groups
// the rule cannot reach stay warm. On a full-materialization mediator
// there is nothing finer-grained to drop, so it degrades to
// Invalidate.
func (m *Mediator) InvalidateRule(rule string) {
	if !m.demand {
		m.Invalidate()
		return
	}
	m.mu.Lock()
	g := m.dgen
	m.mu.Unlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, f := range g.cachedFunctors(m.prog) {
		if engine.ComputeSlice(m.prog, f).Includes(rule) {
			g.dropFunctor(m.prog, f)
		}
	}
}

// InvalidateSource drops from the demand cache every functor group
// whose materialization directly matched the given source input (as
// recorded during its slice runs). On a full-materialization mediator
// it degrades to Invalidate.
func (m *Mediator) InvalidateSource(src tree.Name) {
	if !m.demand {
		m.Invalidate()
		return
	}
	m.mu.Lock()
	g := m.dgen
	m.mu.Unlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	key := src.Key()
	for _, f := range g.cachedFunctors(m.prog) {
		sl := engine.ComputeSlice(m.prog, f)
		depends := false
		for _, r := range sl.Construct {
			if g.ruleSources[r.Name][key] {
				depends = true
				break
			}
		}
		if !depends {
			for _, r := range sl.Support {
				if g.ruleSources[r.Name][key] {
					depends = true
					break
				}
			}
		}
		if depends {
			g.dropFunctor(m.prog, f)
		}
	}
}

// cachedFunctors lists the head functors with cached rules, in
// declaration order. Slice runs cache whole groups, so "any rule
// cached" and "all rules cached" coincide per functor.
func (g *demandGen) cachedFunctors(prog *yatl.Program) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range prog.Rules {
		if r.Exception || seen[r.Head.Functor] || !g.cached[r.Name] {
			continue
		}
		seen[r.Head.Functor] = true
		out = append(out, r.Head.Functor)
	}
	return out
}

// dropFunctor evicts every cached rule of the functor's group,
// deleting its committed entries from the assembled store. Only names
// minted by the group's rules carry its functor, so the eviction
// cannot strand entries another cached group still answers from.
func (g *demandGen) dropFunctor(prog *yatl.Program, f string) {
	for _, r := range prog.Rules {
		if r.Exception || r.Head.Functor != f || !g.cached[r.Name] {
			continue
		}
		for _, e := range g.ruleEntries[r.Name] {
			g.store.Delete(e.Name)
		}
		delete(g.ruleEntries, r.Name)
		delete(g.cached, r.Name)
	}
}
