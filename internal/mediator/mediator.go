// Package mediator implements the mediator-side querying the paper
// leaves as future work (§1: "a complementary goal is to be able to
// query it without fully materializing it"; §5: YAT "can serve as the
// basis for a mediator/wrapper system"). A Mediator wraps a
// conversion program and its sources and answers pattern queries over
// the *virtual* target representation.
//
// Materialization is lazy and memoized: the conversion runs once, on
// the first query, and its outputs are shared by all later queries.
// When the query only concerns some Skolem functors, Ask restricts
// matching to those outputs. Composition (§4.3) slots in naturally: a
// mediator over `Compose(prg1, prg2)` answers queries over M3 against
// M1 sources with no intermediate M2 store at all.
//
// A Mediator is safe for concurrent use: a production mediator serves
// many clients at once, so concurrent Ask/Get/Functors calls share a
// single materialization (guarded by sync.Once) and then match
// against the immutable result store without further locking.
package mediator

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"yat/internal/engine"
	"yat/internal/pattern"
	"yat/internal/tree"
	"yat/internal/yatl"
)

// generation is one materialization lifetime: Invalidate swaps in a
// fresh generation, so a query racing an invalidation keeps a
// consistent view instead of observing a half-cleared cache.
type generation struct {
	once   sync.Once
	done   atomic.Bool
	result *engine.Result
	err    error
}

func (g *generation) materialize(prog *yatl.Program, inputs *tree.Store, opts *engine.Options) (*engine.Result, error) {
	g.once.Do(func() {
		g.result, g.err = engine.Run(prog, inputs, opts)
		g.done.Store(true)
	})
	return g.result, g.err
}

// Mediator answers queries over the virtual target of a conversion.
type Mediator struct {
	prog   *yatl.Program
	inputs *tree.Store
	opts   *engine.Options

	mu  sync.Mutex // guards gen and lastGood
	gen *generation
	// lastGood retains the stats of the most recent successful
	// materialization so they stay readable after Invalidate until
	// the next generation materializes.
	lastGood    engine.Stats
	hasLastGood bool

	// Query counters (atomics: Ask runs concurrently).
	asks      atomic.Int64
	cacheHits atomic.Int64
	cacheMiss atomic.Int64
	askNanos  atomic.Int64
}

// New returns a mediator over the program and sources. Nothing runs
// until the first query.
func New(prog *yatl.Program, inputs *tree.Store, opts *engine.Options) *Mediator {
	return &Mediator{prog: prog, inputs: inputs, opts: opts, gen: &generation{}}
}

// materialize runs the conversion once per generation; concurrent
// callers block on the same sync.Once and share the outcome. The
// boolean reports whether the generation was already materialized
// when the caller arrived (a cache hit for Stats accounting).
func (m *Mediator) materialize() (*engine.Result, bool, error) {
	m.mu.Lock()
	g := m.gen
	m.mu.Unlock()
	warm := g.done.Load()
	res, err := g.materialize(m.prog, m.inputs, m.opts)
	if err == nil && !warm {
		m.mu.Lock()
		// Only credit the generation still current: a stale run
		// finishing after an Invalidate must not overwrite the stats
		// of a newer materialization.
		if g == m.gen || !m.hasLastGood {
			m.lastGood = res.Stats
			m.hasLastGood = true
		}
		m.mu.Unlock()
	}
	return res, warm, err
}

// Answer is one query result: the identity of the target object and
// the variable bindings of the match.
type Answer struct {
	Name    tree.Name
	Binding engine.Binding
}

// Ask matches a pattern (in YATL concrete syntax) against the virtual
// target and returns one answer per (object, binding). Optional
// functors restrict the search to objects minted by those Skolem
// functors.
func (m *Mediator) Ask(patternSrc string, functors ...string) ([]Answer, error) {
	pt, err := yatl.ParsePattern(patternSrc)
	if err != nil {
		return nil, fmt.Errorf("mediator: %w", err)
	}
	return m.AskPattern(pt, functors...)
}

// AskPattern is Ask over a parsed pattern.
func (m *Mediator) AskPattern(pt *pattern.PTree, functors ...string) ([]Answer, error) {
	start := time.Now()
	defer func() { m.askNanos.Add(time.Since(start).Nanoseconds()) }()
	m.asks.Add(1)
	res, warm, err := m.materialize()
	if warm {
		m.cacheHits.Add(1)
	} else {
		m.cacheMiss.Add(1)
	}
	if err != nil {
		return nil, err
	}
	want := map[string]bool{}
	for _, f := range functors {
		want[f] = true
	}
	matcher := &engine.Matcher{Store: res.Outputs}
	var out []Answer
	for _, e := range res.Outputs.Entries() {
		if len(want) > 0 && !want[e.Name.Functor] {
			continue
		}
		for _, b := range matcher.MatchTree(pt, e.Tree) {
			out = append(out, Answer{Name: e.Name, Binding: b})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if k := out[i].Name.Key(); k != out[j].Name.Key() {
			return k < out[j].Name.Key()
		}
		return out[i].Binding.Key() < out[j].Binding.Key()
	})
	return out, nil
}

// Get resolves one virtual object by Skolem identity.
func (m *Mediator) Get(name tree.Name) (*tree.Node, bool, error) {
	res, _, err := m.materialize()
	if err != nil {
		return nil, false, err
	}
	n, ok := res.Outputs.Get(name)
	return n, ok, nil
}

// Functors lists the Skolem functors present in the target, sorted.
func (m *Mediator) Functors() ([]string, error) {
	res, _, err := m.materialize()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	for _, e := range res.Outputs.Entries() {
		if !seen[e.Name.Functor] {
			seen[e.Name.Functor] = true
			out = append(out, e.Name.Functor)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Stats reports the mediator's materialization state and query
// counters. The zero value of every field is meaningful before the
// first query.
type Stats struct {
	// Run holds the statistics of the current materialization when
	// one succeeded, else those of the last good generation (kept
	// readable across Invalidate until the replacement materializes).
	Run engine.Stats
	// Materialized reports that the *current* generation has
	// materialized successfully. False both before the first query
	// and after Invalidate.
	Materialized bool
	// Err is the materialization error of the current generation, if
	// it ran and failed. Nil when the generation has not run yet —
	// Materialized false with a nil Err means "no query has run",
	// resolving the ambiguity a bare zero engine.Stats used to hide.
	Err error
	// Asks counts AskPattern calls; CacheHits of those found the
	// generation already materialized, CacheMisses triggered (or
	// waited on) a materialization.
	Asks, CacheHits, CacheMisses int64
	// AskTime is the cumulative wall time spent inside Ask calls;
	// divide by Asks for the mean per-query latency.
	AskTime time.Duration
}

// Stats exposes the mediator's statistics. It never triggers a
// materialization itself; the atomic done flag orders the read after
// the run's writes.
func (m *Mediator) Stats() Stats {
	m.mu.Lock()
	g := m.gen
	s := Stats{Run: m.lastGood}
	m.mu.Unlock()
	if g.done.Load() {
		if g.err != nil {
			s.Err = g.err
		} else {
			s.Materialized = true
			if g.result != nil {
				s.Run = g.result.Stats
			}
		}
	}
	s.Asks = m.asks.Load()
	s.CacheHits = m.cacheHits.Load()
	s.CacheMisses = m.cacheMiss.Load()
	s.AskTime = time.Duration(m.askNanos.Load())
	return s
}

// Invalidate drops the materialized target, forcing the next query to
// reconvert (sources changed). Queries already running against the
// old generation finish against its consistent snapshot.
func (m *Mediator) Invalidate() {
	m.mu.Lock()
	m.gen = &generation{}
	m.mu.Unlock()
}
