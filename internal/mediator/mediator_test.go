package mediator

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"yat/internal/compose"
	"yat/internal/engine"
	"yat/internal/tree"
	"yat/internal/workload"
	"yat/internal/yatl"
)

func newCarMediator(t *testing.T, n int) *Mediator {
	t.Helper()
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	inputs := workload.BrochureStore(n, 2, 5, 42)
	return New(prog, inputs, nil)
}

func TestAskCarsByName(t *testing.T) {
	m := newCarMediator(t, 10)
	answers, err := m.Ask(`class -> car < -> name -> N, -> desc -> D,
	                                  -> suppliers -> set -*> S >`, "Pcar")
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	for _, a := range answers {
		if a.Name.Functor != "Pcar" {
			t.Errorf("answer from wrong functor: %s", a.Name)
		}
		if _, ok := a.Binding["N"]; !ok {
			t.Errorf("N unbound in %v", a.Binding)
		}
		if _, ok := a.Binding["S"].(tree.Ref); !ok {
			t.Errorf("S should bind a supplier reference, got %v", a.Binding["S"])
		}
	}
}

func TestAskRestrictsFunctors(t *testing.T) {
	m := newCarMediator(t, 10)
	// A bare variable matches everything; the functor filter keeps
	// only supplier objects.
	all, err := m.Ask(`X`)
	if err != nil {
		t.Fatal(err)
	}
	sups, err := m.Ask(`X`, "Psup")
	if err != nil {
		t.Fatal(err)
	}
	if len(sups) == 0 || len(sups) >= len(all) {
		t.Errorf("functor filter wrong: %d of %d", len(sups), len(all))
	}
}

func TestMaterializeOnce(t *testing.T) {
	m := newCarMediator(t, 10)
	if s := m.Stats(); s.Materialized || s.Err != nil || s.Run.Outputs != 0 {
		t.Errorf("mediator materialized eagerly: %+v", s)
	}
	if _, err := m.Ask(`X`); err != nil {
		t.Fatal(err)
	}
	first := m.Stats()
	if !first.Materialized || first.Run.Outputs == 0 {
		t.Fatalf("no outputs after first query: %+v", first)
	}
	if first.Asks != 1 || first.CacheMisses != 1 || first.CacheHits != 0 {
		t.Errorf("first query counters wrong: %+v", first)
	}
	// Further queries reuse the run.
	if _, err := m.Ask(`class -> car -*> Y`); err != nil {
		t.Fatal(err)
	}
	second := m.Stats()
	if second.Run != first.Run {
		t.Error("second query re-ran the conversion")
	}
	if second.CacheHits != 1 || second.CacheMisses != 1 {
		t.Errorf("warm query not counted as a cache hit: %+v", second)
	}
	m.Invalidate()
	s := m.Stats()
	if s.Materialized {
		t.Error("Invalidate did not drop the cache")
	}
	// The last good generation's stats stay readable until the next
	// materialization replaces them.
	if s.Run != first.Run {
		t.Errorf("last good stats lost after Invalidate: %+v", s.Run)
	}
	if _, err := m.Ask(`X`); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); !s.Materialized || s.Run != first.Run || s.CacheMisses != 2 {
		t.Errorf("re-materialization after Invalidate wrong: %+v", s)
	}
}

// TestStatsDistinguishesFailure pins the reporting contract: a
// mediator whose conversion fails must not look like one that never
// ran — Err carries the materialization error.
func TestStatsDistinguishesFailure(t *testing.T) {
	prog := yatl.MustParse(`
program failing
rule R {
  head Pout(X) = out -> V
  from X = in -> D
  let V = raise(D)
}
`)
	store := tree.NewStore()
	store.Put(tree.PlainName("i1"), tree.Sym("in", tree.Str("boom")))
	m := New(prog, store, nil)
	if s := m.Stats(); s.Err != nil || s.Materialized {
		t.Fatalf("failure reported before any query: %+v", s)
	}
	if _, err := m.Ask(`X`); err == nil {
		t.Fatal("conversion should have failed")
	}
	s := m.Stats()
	if s.Materialized {
		t.Error("failed generation reported as materialized")
	}
	if s.Err == nil {
		t.Error("materialization error not surfaced through Stats")
	}
	if s.Asks != 1 || s.CacheMisses != 1 {
		t.Errorf("failed query not counted: %+v", s)
	}
}

// TestAskConcurrentWithInvalidate hammers Ask against Invalidate; with
// -race this is the regression gate for the generation swap. Every
// query must land on a consistent snapshot and succeed.
func TestAskConcurrentWithInvalidate(t *testing.T) {
	m := newCarMediator(t, 6)
	want, err := m.Ask(`X`, "Pcar")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := m.Ask(`X`, "Pcar")
				if err != nil {
					t.Errorf("Ask during Invalidate: %v", err)
					return
				}
				if len(got) != len(want) {
					t.Errorf("Ask saw %d answers, want %d", len(got), len(want))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			m.Invalidate()
			m.Stats()
		}
	}()
	wg.Wait()
}

func TestGet(t *testing.T) {
	m := newCarMediator(t, 5)
	n, ok, err := m.Get(tree.SkolemName("Pcar", tree.Ref{Name: tree.PlainName("b1")}))
	if err != nil || !ok {
		t.Fatalf("Get: %v %v", ok, err)
	}
	if !n.Label.Equal(tree.Symbol("class")) {
		t.Errorf("object = %s", n)
	}
	if _, ok, _ := m.Get(tree.PlainName("ghost")); ok {
		t.Error("Get(ghost) found")
	}
}

func TestFunctors(t *testing.T) {
	m := newCarMediator(t, 5)
	fs, err := m.Functors()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 || fs[0] != "Pcar" || fs[1] != "Psup" {
		t.Errorf("functors = %v", fs)
	}
}

func TestMediatorOverComposedProgram(t *testing.T) {
	// The §4.3 payoff: a mediator over the composed SGML→HTML program
	// answers HTML queries directly against brochures — the ODMG
	// intermediate never exists.
	first := yatl.MustParse(yatl.AnnotatedSGMLToODMGSource)
	second := yatl.MustParse(yatl.WebProgramSource)
	composed, err := compose.Compose(first, second, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := New(composed, workload.BrochureStore(5, 2, 4, 9), nil)
	answers, err := m.Ask(`html < -> head -> title -> T, -> body -*> B >`, "HtmlPage")
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no pages found through the composed mediator")
	}
	sawCar, sawSupplier := false, false
	for _, a := range answers {
		switch a.Binding["T"].Display() {
		case "car":
			sawCar = true
		case "supplier":
			sawSupplier = true
		}
	}
	if !sawCar || !sawSupplier {
		t.Errorf("expected both car and supplier pages (car %v, supplier %v)", sawCar, sawSupplier)
	}
}

// TestConcurrentAskSingleMaterialization hammers one mediator from
// many goroutines: the conversion must run exactly once (counted via
// an external function the rule calls per input) and every client
// must see the same answers. Run with -race this is the correctness
// gate for the mediator's concurrency.
func TestConcurrentAskSingleMaterialization(t *testing.T) {
	const inputs, clients = 8, 16
	var calls atomic.Int64
	reg := engine.NewRegistry()
	reg.Register(engine.Func{
		Name: "count_me", Params: []engine.ParamType{engine.Text}, Result: engine.Text,
		Fn: func(args []tree.Value) (tree.Value, error) {
			calls.Add(1)
			return args[0], nil
		},
	})
	prog := yatl.MustParse(`
program counted
rule R {
  head Pout(X) = out -> V
  from X = in -> D
  let V = count_me(D)
}
`)
	store := tree.NewStore()
	for i := 0; i < inputs; i++ {
		store.Put(tree.PlainName(fmt.Sprintf("i%d", i+1)), tree.Sym("in", tree.Str(fmt.Sprintf("v%d", i+1))))
	}
	m := New(prog, store, &engine.Options{Registry: reg, Parallelism: 4})

	var wg sync.WaitGroup
	counts := make([]int, clients)
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			answers, err := m.Ask(`out -> V`)
			counts[c], errs[c] = len(answers), err
		}(c)
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		if errs[c] != nil {
			t.Fatalf("client %d: %v", c, errs[c])
		}
		if counts[c] != inputs {
			t.Errorf("client %d saw %d answers, want %d", c, counts[c], inputs)
		}
	}
	if got := calls.Load(); got != inputs {
		t.Errorf("external function ran %d times, want %d (single materialization)", got, inputs)
	}
}

// TestConcurrentMixedUse exercises Ask, Get, Functors and Stats
// concurrently against one mediator.
func TestConcurrentMixedUse(t *testing.T) {
	m := newCarMediator(t, 10)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := m.Ask(`class -> car -*> X`); err != nil {
				t.Error(err)
			}
			if _, _, err := m.Get(tree.SkolemName("Pcar", tree.Ref{Name: tree.PlainName("b1")})); err != nil {
				t.Error(err)
			}
			if _, err := m.Functors(); err != nil {
				t.Error(err)
			}
			m.Stats()
		}()
	}
	wg.Wait()
}

func TestAskParseError(t *testing.T) {
	m := newCarMediator(t, 2)
	if _, err := m.Ask(`class -> <`); err == nil {
		t.Error("bad pattern accepted")
	}
}

func TestAnswersDeterministic(t *testing.T) {
	m := newCarMediator(t, 10)
	a1, _ := m.Ask(`class -> car -*> X`)
	a2, _ := m.Ask(`class -> car -*> X`)
	if len(a1) != len(a2) {
		t.Fatal("answer counts differ")
	}
	for i := range a1 {
		if !a1[i].Name.Equal(a2[i].Name) || a1[i].Binding.Key() != a2[i].Binding.Key() {
			t.Fatalf("answer %d differs between runs", i)
		}
	}
}
