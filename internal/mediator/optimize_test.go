package mediator

import (
	"testing"

	"yat/internal/engine"
	"yat/internal/workload"
	"yat/internal/yatl"
)

// The mediator now computes program facts per generation and runs the
// engine optimized. This gate compares it, answer for answer, against
// the same mediator with the optimizer disabled via the
// WithOptimize(false) escape hatch — full materialization and demand
// mode, cold and warm (cache-hit) asks, at several parallelism
// settings.
func TestMediatorOptimizedMatchesUnoptimized(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		pattern  string
		functors []string
	}{
		{"sgml2odmg-sup", yatl.SGMLToODMGSource, `X`, []string{"Psup"}},
		{"sgml2odmg-all", yatl.SGMLToODMGSource, `X`, nil},
		{"selective-one", workload.SelectiveProgram(6), `view < -> name -> N, -> city -> C, -> zip -> Z >`, []string{"Pview2"}},
	}
	inputs := workload.BrochureStore(8, 2, 5, 42)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog := yatl.MustParse(c.src)
			for _, par := range []int{1, 4, 8} {
				for _, demand := range []bool{false, true} {
					plain := New(prog, inputs,
						engine.WithParallelism(par), engine.WithOptimize(false), WithDemandDriven(demand))
					want, err := plain.Ask(c.pattern, c.functors...)
					if err != nil {
						t.Fatalf("unoptimized @%d demand=%v: %v", par, demand, err)
					}
					if len(want) == 0 {
						t.Fatalf("@%d: vacuous case, the pattern matches nothing", par)
					}
					opt := New(prog, inputs,
						engine.WithParallelism(par), WithDemandDriven(demand))
					got, err := opt.Ask(c.pattern, c.functors...)
					if err != nil {
						t.Fatalf("optimized @%d demand=%v: %v", par, demand, err)
					}
					if answersKey(t, got) != answersKey(t, want) {
						t.Fatalf("@%d demand=%v: optimized answers differ\n got:\n%s\nwant:\n%s",
							par, demand, answersKey(t, got), answersKey(t, want))
					}
					// Warm re-ask: in demand mode this is a pure cache
					// hit through the byFunctor snapshot.
					again, err := opt.Ask(c.pattern, c.functors...)
					if err != nil {
						t.Fatalf("warm @%d demand=%v: %v", par, demand, err)
					}
					if answersKey(t, again) != answersKey(t, want) {
						t.Fatalf("@%d demand=%v: warm optimized answers differ", par, demand)
					}
				}
			}
		})
	}
}

// TestAskMemoIsolation: the demand generation memoizes repeated asks,
// so the slices handed out must be isolated — a caller clobbering its
// result slice must not corrupt the next ask's answers.
func TestAskMemoIsolation(t *testing.T) {
	prog := yatl.MustParse(workload.SelectiveProgram(4))
	m := New(prog, workload.BrochureStore(6, 2, 5, 11), WithDemandDriven(true))
	const pat = `view < -> name -> N, -> city -> C, -> zip -> Z >`
	want, err := m.Ask(pat, "Pview1")
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("vacuous: no answers")
	}
	wantKey := answersKey(t, want)
	got, err := m.Ask(pat, "Pview1") // memo hit
	if err != nil {
		t.Fatal(err)
	}
	got[0] = Answer{} // caller scribbles over its copy
	_ = append(got, Answer{})
	again, err := m.Ask(pat, "Pview1")
	if err != nil {
		t.Fatal(err)
	}
	if answersKey(t, again) != wantKey {
		t.Errorf("memoized answers corrupted by a caller's writes:\n got:\n%s\nwant:\n%s",
			answersKey(t, again), wantKey)
	}
}
