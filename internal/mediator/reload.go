// Hot program reload: the demand-cache half of Mediator.Reload.
//
// Reload swaps the whole progState atomically, so its correctness
// burden is deciding which cached rule outputs may be carried from
// the old program's cache into the new one. The rule is conservative
// and purely syntactic: a functor group survives iff its slice in the
// new program names exactly the rules its slice in the old program
// named, and every one of those rules prints identically in both
// programs. Identical slice text means an identical sub-program, and
// the engine is deterministic over a sub-program and inputs, so the
// cached outputs are byte-identical to what a fresh run would
// produce. Anything less — a rule edited, added to or removed from
// the slice, or renamed — evicts the group through the same
// dropFunctor machinery InvalidateRule uses.
package mediator

import (
	"yat/internal/engine"
	"yat/internal/tree"
	"yat/internal/yatl"
)

// cloneFor builds the successor demand cache for a reload from oldProg
// to newProg: a copy of g holding only the functor groups whose slices
// are unchanged between the two programs. g itself is not modified —
// in-flight queries keep answering from it.
func (g *demandGen) cloneFor(oldProg, newProg *yatl.Program) *demandGen {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := newDemandGen()
	c.stats = g.stats
	c.runs = g.runs
	c.lastErr = g.lastErr
	c.store = g.store.Clone()
	for k, v := range g.degraded {
		c.degraded[k] = v
	}
	for r, ok := range g.cached {
		c.cached[r] = ok
	}
	for r, es := range g.ruleEntries {
		c.ruleEntries[r] = append([]tree.StoreEntry(nil), es...)
	}
	for r, set := range g.ruleSources {
		cp := make(map[string]bool, len(set))
		for k, v := range set {
			cp[k] = v
		}
		c.ruleSources[r] = cp
	}

	oldText := map[string]string{}
	for _, r := range oldProg.Rules {
		oldText[r.Name] = r.String()
	}
	// Enumerate and (where needed) evict against the OLD program: the
	// cached rule names were minted under it, and dropFunctor needs the
	// program whose rules committed the entries.
	// The functor index is rebuilt from the cloned store (fresh
	// buckets: the old generation's snapshots must not alias the new
	// one's), then trimmed by the evictions below.
	for _, e := range c.store.Entries() {
		c.byFunctor[e.Name.Functor] = append(c.byFunctor[e.Name.Functor], e)
	}
	for _, f := range c.cachedFunctors(oldProg) {
		if !sliceUnchanged(oldProg, newProg, f, oldText) {
			c.dropFunctor(oldProg, f)
		}
	}
	return c
}

// sliceUnchanged reports whether functor f's rule slice is the same
// closed sub-program in both programs: the construct and support rule
// name sets coincide, and every rule in the new slice prints exactly
// as its old namesake did.
func sliceUnchanged(oldProg, newProg *yatl.Program, f string, oldText map[string]string) bool {
	oldSl := engine.ComputeSlice(oldProg, f)
	newSl := engine.ComputeSlice(newProg, f)
	oldRules := append(append([]*yatl.Rule(nil), oldSl.Construct...), oldSl.Support...)
	newRules := append(append([]*yatl.Rule(nil), newSl.Construct...), newSl.Support...)
	if len(oldRules) != len(newRules) || len(newSl.Construct) != len(oldSl.Construct) {
		return false
	}
	oldNames := make(map[string]bool, len(oldRules))
	for _, r := range oldRules {
		oldNames[r.Name] = true
	}
	for _, r := range newRules {
		if !oldNames[r.Name] || r.String() != oldText[r.Name] {
			return false
		}
	}
	return true
}
