package mediator

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"yat/internal/engine"
	"yat/internal/tree"
	"yat/internal/workload"
	"yat/internal/yatl"
)

// versionedSelective is workload.SelectiveProgram with a version tag
// baked into each view's head, so an answer reveals which program
// edition produced it. tags[i] versions rule View(i+1); rules with
// equal tags print identically across editions.
func versionedSelective(tags ...string) string {
	var sb strings.Builder
	sb.WriteString("program selective\n")
	for i, tag := range tags {
		fmt.Fprintf(&sb, `
rule View%d {
  head Pview%d(SN) = view < -> tag -> %q, -> name -> SN, -> city -> C >
  from Pbr = brochure < -> number -> Num, -> title -> T,
                        -> model -> Year, -> desc -> D,
                        -> spplrs -*> supplier < -> name -> SN,
                                                 -> address -> Add > >
  let C = city(Add)
}
`, i+1, i+1, tag)
	}
	return sb.String()
}

const tagPattern = `view < -> tag -> TAG, -> name -> N, -> city -> C >`

// tagsOf collects the distinct TAG bindings of a response.
func tagsOf(t *testing.T, as []Answer) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for _, a := range as {
		v, ok := a.Binding["TAG"]
		if !ok {
			t.Fatalf("answer without TAG binding: %+v", a)
		}
		out[string(v.(tree.String))] = true
	}
	return out
}

// Reload on a demand-driven mediator keeps warm exactly the functor
// groups whose slices are textually unchanged, and evicts the rest.
func TestReloadPreservesUnchangedRules(t *testing.T) {
	v1 := yatl.MustParse(versionedSelective("v1", "v1", "v1"))
	v2 := yatl.MustParse(versionedSelective("v2", "v1", "v1")) // only View1 edited
	inputs := workload.BrochureStore(6, 2, 5, 11)

	m := New(v1, inputs, WithDemandDriven(true))
	for _, f := range []string{"Pview1", "Pview2"} {
		if _, err := m.Ask(tagPattern, f); err != nil {
			t.Fatalf("warming %s: %v", f, err)
		}
	}
	st := m.Stats()
	if st.CachedRules != 2 || st.SliceRuns != 2 {
		t.Fatalf("warmup: CachedRules=%d SliceRuns=%d, want 2/2", st.CachedRules, st.SliceRuns)
	}

	m.Reload(v2)
	st = m.Stats()
	if st.CachedRules != 1 {
		t.Fatalf("after reload: CachedRules=%d, want 1 (View2 warm, View1 evicted)", st.CachedRules)
	}
	if st.Generation != 2 {
		t.Fatalf("after reload: Generation=%d, want 2", st.Generation)
	}

	// The unchanged view answers from cache: no new slice run.
	got, err := m.Ask(tagPattern, "Pview2")
	if err != nil {
		t.Fatal(err)
	}
	if tags := tagsOf(t, got); !tags["v1"] || len(tags) != 1 {
		t.Fatalf("Pview2 after reload: tags %v, want {v1}", tags)
	}
	if runs := m.Stats().SliceRuns; runs != 2 {
		t.Fatalf("Pview2 after reload ran the engine (SliceRuns=%d, want 2)", runs)
	}

	// The edited view re-materializes under the new program.
	got, err = m.Ask(tagPattern, "Pview1")
	if err != nil {
		t.Fatal(err)
	}
	if tags := tagsOf(t, got); !tags["v2"] || len(tags) != 1 {
		t.Fatalf("Pview1 after reload: tags %v, want {v2}", tags)
	}
	if runs := m.Stats().SliceRuns; runs != 3 {
		t.Fatalf("Pview1 after reload: SliceRuns=%d, want 3", runs)
	}
}

// A renamed or removed rule evicts its group even when some other
// group is untouched, and a full-materialization mediator reconverts
// wholesale on reload.
func TestReloadEdgeCases(t *testing.T) {
	inputs := workload.BrochureStore(4, 2, 4, 3)
	t.Run("removed-rule", func(t *testing.T) {
		v1 := yatl.MustParse(versionedSelective("v1", "v1"))
		v2 := yatl.MustParse(versionedSelective("v1")) // View2 removed
		m := New(v1, inputs, WithDemandDriven(true))
		if _, err := m.Ask(tagPattern, "Pview2"); err != nil {
			t.Fatal(err)
		}
		m.Reload(v2)
		if st := m.Stats(); st.CachedRules != 0 {
			t.Fatalf("CachedRules=%d, want 0 (Pview2's rule is gone)", st.CachedRules)
		}
		got, err := m.Ask(tagPattern, "Pview2")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("removed view still answers: %d answers", len(got))
		}
	})
	t.Run("full-mode", func(t *testing.T) {
		v1 := yatl.MustParse(versionedSelective("v1"))
		v2 := yatl.MustParse(versionedSelective("v2"))
		m := New(v1, inputs)
		if _, err := m.Ask(tagPattern); err != nil {
			t.Fatal(err)
		}
		m.Reload(v2)
		if st := m.Stats(); st.Materialized {
			t.Fatal("full-mode reload must drop the materialization")
		}
		got, err := m.Ask(tagPattern)
		if err != nil {
			t.Fatal(err)
		}
		if tags := tagsOf(t, got); !tags["v2"] || len(tags) != 1 {
			t.Fatalf("tags after reload: %v, want {v2}", tags)
		}
	})
}

// The atomicity contract, pinned under the race detector at engine
// parallelism 1, 4 and 8: an Ask racing Reload observes the old
// program or the new one — every answer in one response carries the
// same version tag, never a mix.
func TestReloadAskRace(t *testing.T) {
	inputs := workload.BrochureStore(8, 2, 6, 17)
	editions := []*yatl.Program{
		yatl.MustParse(versionedSelective("v1", "v1")),
		yatl.MustParse(versionedSelective("v2", "v2")),
	}
	for _, par := range []int{1, 4, 8} {
		for _, demand := range []bool{true, false} {
			t.Run(fmt.Sprintf("par%d-demand%v", par, demand), func(t *testing.T) {
				m := New(editions[0], inputs,
					engine.WithParallelism(par), WithDemandDriven(demand))
				const reloads = 40
				const asksPerWorker = 30
				var wg sync.WaitGroup
				var done atomic.Bool
				for w := 0; w < 4; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < asksPerWorker; i++ {
							// No functor restriction: the answer spans
							// both rules, which is what makes a torn
							// reload observable as mixed tags.
							got, err := m.Ask(tagPattern)
							if err != nil {
								t.Errorf("ask: %v", err)
								return
							}
							if len(got) == 0 {
								t.Error("empty answer set")
								return
							}
							if tags := tagsOf(t, got); len(tags) != 1 {
								t.Errorf("mixed-generation answer: tags %v", tags)
								return
							}
						}
					}()
				}
				// Keep reloading while the askers run, with a floor of
				// `reloads` swaps so the test cannot pass vacuously.
				go func() { wg.Wait(); done.Store(true) }()
				n := 0
				for ; n < reloads || !done.Load(); n++ {
					m.Reload(editions[(n+1)%2])
					runtime.Gosched()
				}
				wg.Wait()
				if g := m.Generation(); g != int64(n+1) {
					t.Fatalf("generation %d, want %d", g, n+1)
				}
			})
		}
	}
}
