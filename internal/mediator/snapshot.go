// Durable warm starts: the mediator half of internal/snapshot.
//
// Snapshot serializes the current demand generation — the assembled
// store, the per-rule cache with its recorded source dependencies,
// and the ask memo — through the tree layer's canonical display
// syntax, stamped with the progState's program and options hashes.
// Restore is the inverse: it re-parses the payload into a fresh
// demand generation and swaps it in atomically, but only after the
// snapshot's hashes verify against what this mediator is about to
// serve. Any mismatch returns a typed *snapshot.LoadError and leaves
// the mediator exactly as cold as it was — the deterministic
// fallback the whole layer is built around.
package mediator

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"yat/internal/engine"
	"yat/internal/snapshot"
	"yat/internal/tree"
)

// ErrSnapshotDemandOnly reports a Snapshot or Restore on a
// full-materialization mediator. The durable generation store
// persists the demand-mode per-rule cache; a full-mode mediator has
// no such cache to persist or warm.
var ErrSnapshotDemandOnly = errors.New("mediator: snapshot/restore requires a demand-driven mediator (WithDemandDriven)")

// Snapshot captures the current demand generation as a persistable
// snapshot, keyed by the canonical program+options hashes so a
// restore can prove it is warming the exact computation it would
// otherwise perform cold. In-flight asks are unaffected: the capture
// happens under the generation lock against a consistent view.
func (m *Mediator) Snapshot() (*snapshot.Snapshot, error) {
	if !m.demand {
		return nil, ErrSnapshotDemandOnly
	}
	st := m.state()
	g := st.dgen
	g.mu.Lock()
	defer g.mu.Unlock()

	payload := &snapshot.Generation{
		Store: tree.FormatStore(g.store),
		Runs:  g.runs,
		Stats: snapshot.RunStats{
			Activations: g.stats.Activations,
			Bindings:    g.stats.Bindings,
			Outputs:     g.stats.Outputs,
			Rounds:      g.stats.Rounds,
		},
	}

	// One RuleCache per rule that holds any cached state: construct
	// rules carry entries (possibly none — "cached and empty" must
	// round-trip), support rules carry only their source record.
	ruleSet := map[string]bool{}
	for r := range g.cached {
		ruleSet[r] = true
	}
	for r := range g.ruleSources {
		ruleSet[r] = true
	}
	rules := make([]string, 0, len(ruleSet))
	for r := range ruleSet {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	for _, r := range rules {
		rc := snapshot.RuleCache{Rule: r, Cached: g.cached[r]}
		if rc.Cached {
			for _, e := range g.ruleEntries[r] {
				rc.Entries = append(rc.Entries, snapshot.Entry{Name: e.Name.String(), Tree: e.Tree.String()})
			}
		}
		if set := g.ruleSources[r]; len(set) > 0 {
			keys := make([]string, 0, len(set))
			for k := range set {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			rc.Sources = keys
		}
		payload.Rules = append(payload.Rules, rc)
	}

	for name, on := range g.degraded {
		if on {
			payload.Degraded = append(payload.Degraded, name)
		}
	}
	sort.Strings(payload.Degraded)

	// Memo entries persist only when the ask arrived as source text
	// (AskContext); pre-parsed asks have no re-keyable identity in
	// another process.
	for _, val := range g.askMemo {
		if val.src == "" {
			continue
		}
		me := snapshot.MemoEntry{Pattern: val.src, Functors: val.functors,
			Answers: []snapshot.MemoAnswer{}}
		for _, a := range val.answers {
			ma := snapshot.MemoAnswer{Name: a.Name.String()}
			if len(a.Binding) > 0 {
				ma.Binding = make(map[string]string, len(a.Binding))
				for v, tv := range a.Binding {
					ma.Binding[v] = tv.Display()
				}
			}
			me.Answers = append(me.Answers, ma)
		}
		payload.AskMemo = append(payload.AskMemo, me)
	}
	sort.Slice(payload.AskMemo, func(i, j int) bool {
		a, b := payload.AskMemo[i], payload.AskMemo[j]
		if a.Pattern != b.Pattern {
			return a.Pattern < b.Pattern
		}
		return strings.Join(a.Functors, "\x00") < strings.Join(b.Functors, "\x00")
	})

	return &snapshot.Snapshot{
		Format:      snapshot.FormatVersion,
		ProgramHash: st.progHash,
		OptionsHash: st.optsHash,
		Program:     st.prog.Name,
		Generation:  st.num,
		Payload:     payload,
	}, nil
}

// Restore warms the mediator from a snapshot: it verifies the
// snapshot's program and options hashes against the current state,
// re-parses the payload into a fresh demand generation, and swaps it
// in atomically. On any error the mediator is unchanged (cold). The
// intended call site is boot, before traffic; a restore over a warm
// generation replaces it, exactly like an Invalidate followed by a
// warm fill.
func (m *Mediator) Restore(s *snapshot.Snapshot) error {
	if !m.demand {
		return ErrSnapshotDemandOnly
	}
	st := m.state()
	if err := s.Verify(st.progHash, st.optsHash); err != nil {
		return err
	}

	g := newDemandGen()
	g.restored = true
	store, err := tree.ParseStore(s.Payload.Store)
	if err != nil {
		return fmt.Errorf("mediator: restoring snapshot store: %w", err)
	}
	g.store = store
	for _, e := range store.Entries() {
		g.byFunctor[e.Name.Functor] = append(g.byFunctor[e.Name.Functor], e)
	}
	for _, rc := range s.Payload.Rules {
		if rc.Cached {
			g.cached[rc.Rule] = true
			entries := make([]tree.StoreEntry, 0, len(rc.Entries))
			for _, pe := range rc.Entries {
				name, err := tree.ParseName(pe.Name)
				if err != nil {
					return fmt.Errorf("mediator: restoring rule %s entry name %q: %w", rc.Rule, pe.Name, err)
				}
				// Reuse the store's tree when the entry is still the one
				// committed there; re-parse only superseded entries.
				t, ok := store.Get(name)
				if !ok || t.String() != pe.Tree {
					if t, err = tree.Parse(pe.Tree); err != nil {
						return fmt.Errorf("mediator: restoring rule %s entry %q: %w", rc.Rule, pe.Name, err)
					}
				}
				entries = append(entries, tree.StoreEntry{Name: name, Tree: t})
			}
			g.ruleEntries[rc.Rule] = entries
		}
		if len(rc.Sources) > 0 {
			set := make(map[string]bool, len(rc.Sources))
			for _, k := range rc.Sources {
				set[k] = true
			}
			g.ruleSources[rc.Rule] = set
		}
	}
	for _, name := range s.Payload.Degraded {
		g.degraded[name] = true
	}
	g.stats = engine.Stats{
		Activations: s.Payload.Stats.Activations,
		Bindings:    s.Payload.Stats.Bindings,
		Outputs:     s.Payload.Stats.Outputs,
		Rounds:      s.Payload.Stats.Rounds,
	}
	g.runs = s.Payload.Runs

	for _, me := range s.Payload.AskMemo {
		pt, err := parsePatternCached(me.Pattern)
		if err != nil {
			return fmt.Errorf("mediator: restoring memoized pattern %q: %w", me.Pattern, err)
		}
		answers := make([]Answer, 0, len(me.Answers))
		for _, ma := range me.Answers {
			name, err := tree.ParseName(ma.Name)
			if err != nil {
				return fmt.Errorf("mediator: restoring memoized answer %q: %w", ma.Name, err)
			}
			var binding engine.Binding
			if len(ma.Binding) > 0 {
				binding = make(engine.Binding, len(ma.Binding))
				for v, disp := range ma.Binding {
					val, err := tree.ParseValue(disp)
					if err != nil {
						return fmt.Errorf("mediator: restoring memoized binding %s=%q: %w", v, disp, err)
					}
					binding[v] = val
				}
			}
			answers = append(answers, Answer{Name: name, Binding: binding})
		}
		key := askKey{pt: pt, functors: strings.Join(me.Functors, "\x00")}
		g.askMemo[key] = memoVal{answers: answers, src: me.Pattern,
			functors: append([]string(nil), me.Functors...)}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	// Re-check against the state current at swap time: a reload racing
	// the restore must not have its program replaced by a stale warm
	// cache.
	cur := m.cur
	if cur.progHash != st.progHash || cur.optsHash != st.optsHash {
		return s.Verify(cur.progHash, cur.optsHash)
	}
	m.cur = &progState{prog: cur.prog, gen: &generation{}, facts: cur.facts,
		progHash: cur.progHash, optsHash: cur.optsHash, num: cur.num, dgen: g}
	return nil
}
