package mediator

import (
	"errors"
	"fmt"
	"testing"

	"yat/internal/engine"
	"yat/internal/pattern"
	"yat/internal/snapshot"
	"yat/internal/tree"
	"yat/internal/workload"
	"yat/internal/yatl"
)

const viewPattern = `view < -> tag -> TAG, -> name -> N, -> city -> C >`

func selectiveMediator(t *testing.T, opts ...engine.Option) *Mediator {
	t.Helper()
	prog := yatl.MustParse(versionedSelective("v1", "v1", "v1"))
	inputs := workload.BrochureStore(6, 2, 5, 11)
	return New(prog, inputs, append([]engine.Option{WithDemandDriven(true)}, opts...)...)
}

// render flattens answers for byte-level comparison.
func render(as []Answer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name.String() + " " + a.Binding.Key()
	}
	return out
}

func sameAnswers(t *testing.T, got, want []Answer, label string) {
	t.Helper()
	g, w := render(got), render(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d answers, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: answer %d = %q, want %q", label, i, g[i], w[i])
		}
	}
	if len(w) == 0 {
		t.Fatalf("%s: vacuous comparison (no answers)", label)
	}
}

// The tentpole property: a restored mediator's first Ask is
// byte-identical to the cold-computed answer and registers as a
// demand-cache hit — at every parallelism, because the options hash
// deliberately ignores the worker count.
func TestSnapshotRestoreWarmStart(t *testing.T) {
	warm := selectiveMediator(t)
	cold, err := warm.Ask(viewPattern, "Pview1")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := warm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("parallelism-%d", par), func(t *testing.T) {
			m := selectiveMediator(t, engine.WithParallelism(par))
			if err := m.Restore(snap); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			st := m.Stats()
			if !st.Restored {
				t.Fatal("Stats.Restored = false after Restore")
			}
			got, err := m.Ask(viewPattern, "Pview1")
			if err != nil {
				t.Fatal(err)
			}
			sameAnswers(t, got, cold, "restored first ask")
			st = m.Stats()
			if st.CacheHits != 1 || st.CacheMisses != 0 {
				t.Fatalf("first ask after restore: hits=%d misses=%d, want 1/0",
					st.CacheHits, st.CacheMisses)
			}
			// The snapshot carries the donor's run counter (one slice run)
			// and a fully warm restored ask adds none.
			if st.SliceRuns != 1 {
				t.Fatalf("slice runs after restored ask: %d, want the donor's 1", st.SliceRuns)
			}
		})
	}
}

// A restored memoized ask short-circuits matching entirely, exactly
// like a warm repeat within one process.
func TestSnapshotCarriesAskMemo(t *testing.T) {
	warm := selectiveMediator(t)
	first, err := warm.Ask(viewPattern, "Pview2")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := warm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Payload.AskMemo) != 1 {
		t.Fatalf("snapshot carries %d memo entries, want 1", len(snap.Payload.AskMemo))
	}

	m := selectiveMediator(t)
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got, err := m.Ask(viewPattern, "Pview2")
	if err != nil {
		t.Fatal(err)
	}
	sameAnswers(t, got, first, "memoized restored ask")
}

// Asks that arrived pre-parsed (AskPattern) memoize in-process but
// cannot be persisted: their snapshot identity is a pointer.
func TestSnapshotSkipsPatternOnlyMemos(t *testing.T) {
	m := selectiveMediator(t)
	pt := mustParsePattern(t, viewPattern)
	if _, err := m.AskPattern(pt, "Pview1"); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Payload.AskMemo) != 0 {
		t.Fatalf("pre-parsed ask persisted %d memo entries, want 0", len(snap.Payload.AskMemo))
	}
	// The rule cache itself still persists.
	if len(snap.Payload.Rules) == 0 {
		t.Fatal("no rule cache in snapshot")
	}
}

func mustParsePattern(t *testing.T, src string) *pattern.PTree {
	t.Helper()
	pt, err := parsePatternCached(src)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

// Every identity mismatch deterministically refuses the restore and
// leaves the mediator cold.
func TestRestoreRefusesMismatches(t *testing.T) {
	donor := selectiveMediator(t)
	if _, err := donor.Ask(viewPattern, "Pview1"); err != nil {
		t.Fatal(err)
	}
	snap, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	reasonOf := func(t *testing.T, err error) snapshot.Reason {
		t.Helper()
		var lerr *snapshot.LoadError
		if !errors.As(err, &lerr) {
			t.Fatalf("want *snapshot.LoadError, got %T: %v", err, err)
		}
		return lerr.Reason
	}

	t.Run("program-hash", func(t *testing.T) {
		other := New(yatl.MustParse(versionedSelective("v2", "v1", "v1")),
			workload.BrochureStore(6, 2, 5, 11), WithDemandDriven(true))
		err := other.Restore(snap)
		if got := reasonOf(t, err); got != snapshot.ReasonProgramHash {
			t.Fatalf("reason %q, want %q", got, snapshot.ReasonProgramHash)
		}
		if st := other.Stats(); st.Restored || st.CachedRules != 0 {
			t.Fatalf("refused restore left state: %+v", st)
		}
	})

	t.Run("options-hash", func(t *testing.T) {
		reg := engine.NewRegistry()
		reg.Register(engine.Func{Name: "extra", Fn: func([]tree.Value) (tree.Value, error) {
			return tree.String("x"), nil
		}})
		other := selectiveMediator(t, engine.WithRegistry(reg))
		err := other.Restore(snap)
		if got := reasonOf(t, err); got != snapshot.ReasonOptionsHash {
			t.Fatalf("reason %q, want %q", got, snapshot.ReasonOptionsHash)
		}
	})

	t.Run("full-mode", func(t *testing.T) {
		full := New(donor.Program(), workload.BrochureStore(6, 2, 5, 11))
		if err := full.Restore(snap); !errors.Is(err, ErrSnapshotDemandOnly) {
			t.Fatalf("full-mode restore: %v, want ErrSnapshotDemandOnly", err)
		}
		if _, err := full.Snapshot(); !errors.Is(err, ErrSnapshotDemandOnly) {
			t.Fatalf("full-mode snapshot: %v, want ErrSnapshotDemandOnly", err)
		}
	})
}

// Satellite: Reload's warm-cache carryover keys on the program+options
// hash, not rule text alone. Mutating the registry between reloads
// changes the options hash, so a reload with byte-identical program
// text must still drop the cache.
func TestReloadDropsCacheOnOptionsChange(t *testing.T) {
	reg := engine.NewRegistry()
	prog := yatl.MustParse(versionedSelective("v1", "v1", "v1"))
	inputs := workload.BrochureStore(6, 2, 5, 11)
	m := New(prog, inputs, WithDemandDriven(true), engine.WithRegistry(reg))
	if _, err := m.Ask(viewPattern, "Pview1"); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.CachedRules == 0 {
		t.Fatal("warm-up cached nothing")
	}

	// Identical rule text, unchanged registry: the cache survives.
	m.Reload(yatl.MustParse(versionedSelective("v1", "v1", "v1")))
	if st := m.Stats(); st.CachedRules == 0 {
		t.Fatal("reload with identical text and options dropped the cache")
	}

	// Identical rule text, mutated registry surface: sliceUnchanged
	// sees identical rules, but the options hash differs — carryover
	// must not happen.
	reg.Register(engine.Func{Name: "extra", Fn: func([]tree.Value) (tree.Value, error) {
		return tree.String("x"), nil
	}})
	m.Reload(yatl.MustParse(versionedSelective("v1", "v1", "v1")))
	if st := m.Stats(); st.CachedRules != 0 {
		t.Fatalf("reload after registry change kept %d cached rules, want 0", st.CachedRules)
	}
}

// Restore over sources: a degraded-source record survives the round
// trip, so RefreshSource in the restored process still knows to drop
// the generation when the source recovers.
func TestSnapshotRoundTripsDegraded(t *testing.T) {
	donor := selectiveMediator(t)
	if _, err := donor.Ask(viewPattern, "Pview1"); err != nil {
		t.Fatal(err)
	}
	snap, err := donor.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Payload.Degraded = []string{"src1"}

	m := selectiveMediator(t)
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	g := m.state().dgen
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.degraded["src1"] {
		t.Fatal("degraded record lost in restore")
	}
}
