package mediator

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"yat/internal/engine"
	"yat/internal/source"
	"yat/internal/trace"
	"yat/internal/tree"
	"yat/internal/yatl"
)

// twoSourceProgram has two independent rules: Alpha reads only alpha
// trees, Beta reads only beta trees. Failing the source serving beta
// must leave every Pa answer untouched.
const twoSourceProgram = `
program twosrc

rule Alpha {
  head Pa(N) = item < -> name -> N >
  from A = alpha < -> name -> N >
}

rule Beta {
  head Pb(N) = item < -> name -> N >
  from B = beta < -> name -> N >
}
`

func alphaStore(names ...string) *tree.Store {
	s := tree.NewStore()
	for i, n := range names {
		s.Put(tree.PlainName(fmt.Sprintf("a%d", i+1)), tree.Sym("alpha", tree.Sym("name", tree.Str(n))))
	}
	return s
}

func betaStore(names ...string) *tree.Store {
	s := tree.NewStore()
	for i, n := range names {
		s.Put(tree.PlainName(fmt.Sprintf("b%d", i+1)), tree.Sym("beta", tree.Sym("name", tree.Str(n))))
	}
	return s
}

// The acceptance gate: with one source failing, asks over functors not
// depending on it return byte-identical answers to the all-healthy
// run, Stats reports the per-source failure, and the EXPLAIN profile
// records the fetch failures and retries — in both evaluation modes,
// at parallelism 1, 4 and 8.
func TestPartialFailureDegradation(t *testing.T) {
	prog := yatl.MustParse(twoSourceProgram)
	alphas := alphaStore("ant", "asp", "auk")
	betas := betaStore("bee", "boa")
	for _, demand := range []bool{false, true} {
		for _, par := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("demand=%v/par=%d", demand, par), func(t *testing.T) {
				healthy := New(prog, nil,
					engine.WithParallelism(par),
					WithDemandDriven(demand),
					WithSources(source.Static("src1", alphas), source.Static("src2", betas)))
				want, err := healthy.Ask(`X`, "Pa")
				if err != nil {
					t.Fatalf("healthy ask: %v", err)
				}
				if len(want) != 3 {
					t.Fatalf("healthy Pa answers = %d, want 3", len(want))
				}

				clock := source.NewFakeClock()
				down := source.NewFault("src2", betas).WithClock(clock)
				down.SetErr(errors.New("connection refused"))
				prof := trace.NewProfile()
				degraded := New(prog, nil,
					engine.WithParallelism(par),
					engine.WithTrace(prof),
					WithDemandDriven(demand),
					WithSources(
						source.Static("src1", alphas),
						source.WithRetry(down, source.RetryOptions{MaxAttempts: 3, Clock: clock, Jitter: -1}),
					))
				got, err := degraded.Ask(`X`, "Pa")
				if err != nil {
					t.Fatalf("degraded ask: %v", err)
				}
				if answersKey(t, got) != answersKey(t, want) {
					t.Fatalf("degraded Pa answers differ from healthy\n got:\n%s\nwant:\n%s",
						answersKey(t, got), answersKey(t, want))
				}
				// The functor that does depend on the dead source
				// degrades to no answers, not an error.
				bs, err := degraded.Ask(`X`, "Pb")
				if err != nil {
					t.Fatalf("degraded Pb ask: %v", err)
				}
				if len(bs) != 0 {
					t.Fatalf("degraded Pb answers = %d, want 0", len(bs))
				}

				st := degraded.Stats()
				if len(st.Sources) != 2 {
					t.Fatalf("Stats.Sources = %d entries, want 2", len(st.Sources))
				}
				s1, s2 := st.Sources[0], st.Sources[1]
				if s1.Name != "src1" || s1.FetchErr != "" || s1.Entries != 3 {
					t.Errorf("src1 status = %+v, want healthy with 3 entries", s1)
				}
				if s2.Name != "src2" || s2.FetchErr == "" || s2.Entries != 0 {
					t.Errorf("src2 status = %+v, want a fetch error and 0 entries", s2)
				}
				if s2.Retries == 0 || s2.Failures == 0 {
					t.Errorf("src2 chain counters = %+v, want retries and failures", s2)
				}

				var src1p, src2p *trace.SourceProfile
				for i, sp := range prof.Sources() {
					switch sp.Source {
					case "src1":
						src1p = &prof.Sources()[i]
					case "src2":
						src2p = &prof.Sources()[i]
					}
				}
				if src1p == nil || src2p == nil {
					t.Fatalf("profile sources = %+v, want src1 and src2", prof.Sources())
				}
				if src1p.Failures != 0 || src1p.Fetches == 0 {
					t.Errorf("src1 profile = %+v", src1p)
				}
				if src2p.Failures == 0 || src2p.Retries == 0 {
					t.Errorf("src2 profile = %+v, want failures and retries", src2p)
				}
				var sb strings.Builder
				if err := prof.Render(&sb, false); err != nil {
					t.Fatal(err)
				}
				for _, wantLine := range []string{"source src1", "source src2", fmt.Sprintf("failures=%d", src2p.Failures), fmt.Sprintf("retries=%d", src2p.Retries)} {
					if !strings.Contains(sb.String(), wantLine) {
						t.Errorf("rendered profile missing %q:\n%s", wantLine, sb.String())
					}
				}
			})
		}
	}
}

// Sources compose with the constructor store: constructor entries merge
// first, then sources in declaration order, later sources winning name
// collisions — deterministically.
func TestSourceMergeOrder(t *testing.T) {
	prog := yatl.MustParse(twoSourceProgram)
	base := tree.NewStore()
	base.Put(tree.PlainName("a1"), tree.Sym("alpha", tree.Sym("name", tree.Str("base"))))
	over := tree.NewStore()
	over.Put(tree.PlainName("a1"), tree.Sym("alpha", tree.Sym("name", tree.Str("override"))))
	m := New(prog, base, WithSources(source.Static("over", over)))
	got, err := m.Ask(`X`, "Pa")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("answers = %d, want 1 (collision should replace, not add)", len(got))
	}
	n, ok, err := m.Get(got[0].Name)
	if err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	if s := n.String(); !strings.Contains(s, "override") {
		t.Errorf("later source did not win the collision: %s", s)
	}
}

func TestAllSourcesFailedIsAnError(t *testing.T) {
	prog := yatl.MustParse(twoSourceProgram)
	s1 := source.NewFault("s1", nil)
	s1.SetErr(errors.New("dns"))
	s2 := source.NewFault("s2", nil)
	s2.SetErr(errors.New("tls"))
	for _, demand := range []bool{false, true} {
		m := New(prog, nil, WithDemandDriven(demand), WithSources(s1, s2))
		_, err := m.Ask(`X`)
		var fe *FetchError
		if !errors.As(err, &fe) {
			t.Fatalf("demand=%v: err = %v, want *FetchError", demand, err)
		}
		msg := err.Error()
		for _, name := range []string{"s1", "s2", "dns", "tls"} {
			if !strings.Contains(msg, name) {
				t.Errorf("demand=%v: error %q does not mention %q", demand, msg, name)
			}
		}
	}
}

// RefreshSource after a recovery makes the healed source's data
// visible in both modes — including the demand-mode corner where rules
// were cached while the source was down and therefore carry no
// dependency record for it.
func TestRefreshSourceRecovery(t *testing.T) {
	prog := yatl.MustParse(twoSourceProgram)
	betas := betaStore("bee", "boa")
	for _, demand := range []bool{false, true} {
		t.Run(fmt.Sprintf("demand=%v", demand), func(t *testing.T) {
			flaky := source.NewFault("src2", betas)
			flaky.SetErr(errors.New("down"))
			m := New(prog, nil, WithDemandDriven(demand),
				WithSources(source.Static("src1", alphaStore("ant")), flaky))
			if got, err := m.Ask(`X`, "Pb"); err != nil || len(got) != 0 {
				t.Fatalf("degraded Pb = %d answers, %v; want 0, nil", len(got), err)
			}
			flaky.SetErr(nil)
			if err := m.RefreshSource(context.Background(), "src2"); err != nil {
				t.Fatal(err)
			}
			got, err := m.Ask(`X`, "Pb")
			if err != nil || len(got) != 2 {
				t.Fatalf("recovered Pb = %d answers, %v; want 2, nil", len(got), err)
			}
			if st := m.Stats(); st.Sources[1].FetchErr != "" {
				t.Errorf("src2 still reports %q after recovery", st.Sources[1].FetchErr)
			}
		})
	}
}

func TestRefreshSourceUnknownName(t *testing.T) {
	m := New(yatl.MustParse(twoSourceProgram), nil,
		WithSources(source.Static("src1", alphaStore("ant"))))
	err := m.RefreshSource(nil, "nope")
	var nf *NotFoundError
	if !errors.As(err, &nf) || nf.Kind != "source" || nf.Name != "nope" {
		t.Fatalf("err = %v, want *NotFoundError naming %q", err, "nope")
	}
	if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v, want unknown-source naming %q", err, "nope")
	}
}

// RefreshSource through a stale-while-revalidate cache forces the
// refresh; if the source is down the old snapshot keeps serving and
// nothing is invalidated.
func TestRefreshSourceThroughCache(t *testing.T) {
	prog := yatl.MustParse(twoSourceProgram)
	clock := source.NewFakeClock()
	fault := source.NewFault("src2", betaStore("bee")).WithClock(clock)
	cached := source.WithCache(fault, source.CacheOptions{TTL: time.Hour, Clock: clock})
	m := New(prog, nil, WithSources(source.Static("src1", alphaStore("ant")), cached))
	if got, err := m.Ask(`X`, "Pb"); err != nil || len(got) != 1 {
		t.Fatalf("warm Pb = %d, %v", len(got), err)
	}
	fault.SetErr(errors.New("down"))
	if err := m.RefreshSource(nil, "src2"); err == nil {
		t.Fatal("refresh of a down source should surface the error")
	}
	// The failed refresh kept the snapshot and the cache: still 1 answer.
	if got, err := m.Ask(`X`, "Pb"); err != nil || len(got) != 1 {
		t.Fatalf("post-failed-refresh Pb = %d, %v; want the cached answer", len(got), err)
	}
	cached.Wait()
}

// The Ask counter discipline on every path: Asks == CacheHits +
// CacheMisses + parse failures, AskTime grows, hits only from an
// already-successful materialization.
func TestAskCounterConsistency(t *testing.T) {
	prog := yatl.MustParse(twoSourceProgram)
	boom := errors.New("down")
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name string
		mk   func(t *testing.T) *Mediator
		ask  func(m *Mediator) error
		// wants after running ask twice
		asks, hits, misses int64
	}{
		{
			name: "parse failure counts neither hit nor miss",
			mk: func(t *testing.T) *Mediator {
				return New(prog, alphaStore("ant"))
			},
			ask:  func(m *Mediator) error { _, err := m.Ask(`<<< not a pattern`); return err },
			asks: 2, hits: 0, misses: 0,
		},
		{
			name: "full mode cold then warm",
			mk: func(t *testing.T) *Mediator {
				return New(prog, alphaStore("ant"))
			},
			ask:  func(m *Mediator) error { _, err := m.Ask(`X`, "Pa"); return err },
			asks: 2, hits: 1, misses: 1,
		},
		{
			name: "demand mode cold then warm",
			mk: func(t *testing.T) *Mediator {
				return New(prog, alphaStore("ant"), WithDemandDriven(true))
			},
			ask:  func(m *Mediator) error { _, err := m.Ask(`X`, "Pa"); return err },
			asks: 2, hits: 1, misses: 1,
		},
		{
			name: "full mode memoized failure is a miss every time",
			mk: func(t *testing.T) *Mediator {
				f := source.NewFault("s", nil)
				f.SetErr(boom)
				return New(prog, nil, WithSources(f))
			},
			ask:  func(m *Mediator) error { _, err := m.Ask(`X`); return err },
			asks: 2, hits: 0, misses: 2,
		},
		{
			name: "demand mode failure is a miss and retries",
			mk: func(t *testing.T) *Mediator {
				f := source.NewFault("s", nil)
				f.SetErr(boom)
				return New(prog, nil, WithDemandDriven(true), WithSources(f))
			},
			ask:  func(m *Mediator) error { _, err := m.Ask(`X`); return err },
			asks: 2, hits: 0, misses: 2,
		},
		{
			name: "cancelled context is a miss, not a hit",
			mk: func(t *testing.T) *Mediator {
				return New(prog, alphaStore("ant"))
			},
			ask:  func(m *Mediator) error { _, err := m.AskContext(cancelled, `X`, "Pa"); return err },
			asks: 2, hits: 0, misses: 2,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := c.mk(t)
			err1 := c.ask(m)
			err2 := c.ask(m)
			st := m.Stats()
			if st.Asks != c.asks || st.CacheHits != c.hits || st.CacheMisses != c.misses {
				t.Errorf("asks/hits/misses = %d/%d/%d, want %d/%d/%d (errs: %v, %v)",
					st.Asks, st.CacheHits, st.CacheMisses, c.asks, c.hits, c.misses, err1, err2)
			}
			if st.AskTime <= 0 {
				t.Errorf("AskTime = %v, want > 0 on every path", st.AskTime)
			}
			parseFailures := st.Asks - st.CacheHits - st.CacheMisses
			if parseFailures < 0 {
				t.Errorf("invariant broken: hits+misses (%d) exceed asks (%d)",
					st.CacheHits+st.CacheMisses, st.Asks)
			}
		})
	}
}

// Concurrent asks against a source flapping between failing and
// healthy, with invalidations forcing refetches — run under -race.
// Every successful answer set must be one of the two consistent
// worlds: all-healthy or src2-degraded.
func TestSourceFlapRace(t *testing.T) {
	prog := yatl.MustParse(twoSourceProgram)
	alphas := alphaStore("ant", "asp")
	betas := betaStore("bee", "boa")

	healthyWant := answersFor(t, prog, alphas, betas, `X`)
	degradedWant := answersFor(t, prog, alphas, nil, `X`)

	for _, demand := range []bool{false, true} {
		t.Run(fmt.Sprintf("demand=%v", demand), func(t *testing.T) {
			flap := source.NewFault("src2", betas)
			m := New(prog, nil,
				engine.WithParallelism(4),
				WithDemandDriven(demand),
				WithSources(source.Static("src1", alphas), flap))
			var wg sync.WaitGroup
			stop := make(chan struct{})
			wg.Add(1)
			go func() { // the flapper
				defer wg.Done()
				down := errors.New("flap")
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if i%2 == 0 {
						flap.SetErr(down)
					} else {
						flap.SetErr(nil)
					}
					m.Invalidate()
				}
			}()
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						got, err := m.Ask(`X`)
						if err != nil {
							t.Errorf("ask: %v", err)
							return
						}
						key := answersKey(t, got)
						if key != healthyWant && key != degradedWant {
							t.Errorf("inconsistent answer set:\n%s", key)
							return
						}
						m.Stats() // exercise the stats path under race too
					}
				}()
			}
			// Let the askers finish, then stop the flapper.
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			<-time.After(10 * time.Millisecond)
			close(stop)
			<-done
		})
	}
}

// answersFor computes the expected answer key for a program over fixed
// stores (nil betas = degraded world) without any source layer.
func answersFor(t *testing.T, prog *yatl.Program, alphas, betas *tree.Store, pattern string) string {
	t.Helper()
	merged := tree.NewStore()
	for _, e := range alphas.Entries() {
		merged.Put(e.Name, e.Tree)
	}
	if betas != nil {
		for _, e := range betas.Entries() {
			merged.Put(e.Name, e.Tree)
		}
	}
	got, err := New(prog, merged).Ask(pattern)
	if err != nil {
		t.Fatal(err)
	}
	return answersKey(t, got)
}

// The soak: a long scripted fault schedule driven through the full
// decorator chain, asserting the partial-result invariant on every
// iteration and zero goroutine leaks at the end. CI runs it with
// YAT_SOAK=1 for more iterations.
func TestSourceSoak(t *testing.T) {
	iters := 20
	if os.Getenv("YAT_SOAK") != "" {
		iters = 200
	}
	baseline := runtime.NumGoroutine()

	prog := yatl.MustParse(twoSourceProgram)
	alphas := alphaStore("ant", "asp")
	betas := betaStore("bee", "boa")
	healthyWant := answersFor(t, prog, alphas, betas, `X`)
	degradedWant := answersFor(t, prog, alphas, nil, `X`)

	clock := source.NewFakeClock()
	schedule := []source.Step{
		{}, // healthy
		{Fail: errors.New("timeout")},
		{Fail: errors.New("refused")},
		{}, // recovered
		{Latency: 5 * time.Millisecond},
		{Fail: errors.New("reset")},
	}
	fault := source.NewFault("src2", betas, schedule...).Loop(true).WithClock(clock)
	chain := source.WithBreaker(
		source.WithRetry(fault, source.RetryOptions{MaxAttempts: 2, Clock: clock, Jitter: -1}),
		source.BreakerOptions{Threshold: 4, Cooldown: time.Second, Clock: clock},
	)
	m := New(prog, nil, engine.WithParallelism(4),
		WithSources(source.Static("src1", alphas), chain))

	for i := 0; i < iters; i++ {
		got, err := m.Ask(`X`)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		key := answersKey(t, got)
		if key != healthyWant && key != degradedWant {
			t.Fatalf("iter %d: inconsistent answer set:\n%s", i, key)
		}
		st := m.Stats()
		if len(st.Sources) != 2 || st.Sources[0].FetchErr != "" {
			t.Fatalf("iter %d: src1 must stay healthy: %+v", i, st.Sources)
		}
		m.Invalidate()
		clock.Advance(300 * time.Millisecond)
	}

	// Goroutine-leak check (no external deps): all machinery above is
	// synchronous or waits on fetch goroutines, so the count must
	// return to the baseline once the scheduler settles.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Demand mode records which sources were down during cached slice runs
// and exposes the degradation through Stats.
func TestDemandDegradedStats(t *testing.T) {
	prog := yatl.MustParse(twoSourceProgram)
	flaky := source.NewFault("src2", betaStore("bee"))
	flaky.SetErr(errors.New("down"))
	m := New(prog, nil, WithDemandDriven(true),
		WithSources(source.Static("src1", alphaStore("ant")), flaky))
	if _, err := m.Ask(`X`, "Pa"); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Sources[1].FetchErr == "" {
		t.Errorf("src2 status = %+v, want a fetch error", st.Sources[1])
	}
	if st.Sources[0].Entries == 0 {
		t.Errorf("src1 status = %+v, want contributed entries", st.Sources[0])
	}
}
