// The one stats renderer. Every consumer that shows mediator
// statistics to a human or a machine — cmd/yatprof's -stats flag and
// yatserve's GET /stats endpoint — goes through StatsView, so the two
// report byte-identical documents for the same program and ask
// sequence and can never drift into rival hand-rolled formatters.
package mediator

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"yat/internal/engine"
	"yat/internal/source"
)

// RunView is the engine-work portion of a StatsView.
type RunView struct {
	Activations int `json:"activations"`
	Bindings    int `json:"bindings"`
	Outputs     int `json:"outputs"`
	Rounds      int `json:"rounds"`
}

// SourceView is one source's health in a StatsView.
type SourceView struct {
	Name         string  `json:"name"`
	Attempts     int64   `json:"attempts"`
	Failures     int64   `json:"failures"`
	Retries      int64   `json:"retries"`
	Timeouts     int64   `json:"timeouts"`
	BreakerState string  `json:"breaker_state,omitempty"`
	BreakerOpens int64   `json:"breaker_opens,omitempty"`
	Rejections   int64   `json:"rejections,omitempty"`
	StaleServed  int64   `json:"stale_served,omitempty"`
	StaleAgeMS   float64 `json:"stale_age_ms,omitempty"`
	LastErr      string  `json:"last_err,omitempty"`
	FetchErr     string  `json:"fetch_err,omitempty"`
	Entries      int     `json:"entries"`
}

// ShardView is one federation child's health in a StatsView.
type ShardView struct {
	Name     string `json:"name"`
	Remote   bool   `json:"remote,omitempty"`
	Functors int    `json:"functors"`
	Asks     int64  `json:"asks"`
	Failures int64  `json:"failures"`
	Healthy  bool   `json:"healthy"`
	Breaker  string `json:"breaker,omitempty"`
	LastErr  string `json:"last_err,omitempty"`
}

// StatsView is the stable rendering of a Stats snapshot. Timing
// fields (AskTimeMS, StaleAgeMS) are only populated when the view is
// built with timing on, so untimed views are deterministic for a given
// program and ask sequence — the property the yatprof/yatserve parity
// test pins.
type StatsView struct {
	Generation     int64        `json:"generation"`
	Materialized   bool         `json:"materialized"`
	Err            string       `json:"err,omitempty"`
	Demand         bool         `json:"demand"`
	Restored       bool         `json:"restored,omitempty"`
	Asks           int64        `json:"asks"`
	CacheHits      int64        `json:"cache_hits"`
	CacheMisses    int64        `json:"cache_misses"`
	AskTimeMS      float64      `json:"ask_time_ms,omitempty"`
	CachedRules    int          `json:"cached_rules"`
	SliceRuns      int64        `json:"slice_runs"`
	DeltaRuns      int64        `json:"delta_runs"`
	DeltaFallbacks int64        `json:"delta_fallbacks"`
	PatchedRules   int64        `json:"patched_rules"`
	Run            RunView      `json:"run"`
	Sources        []SourceView `json:"sources,omitempty"`
	Shards         []ShardView  `json:"shards,omitempty"`
}

// View builds the stable rendering of the snapshot. With timing off,
// wall-clock fields are zeroed (and omitted from JSON), leaving only
// fields deterministic for a given program and ask sequence.
func (s Stats) View(timing bool) StatsView {
	v := StatsView{
		Generation:     s.Generation,
		Materialized:   s.Materialized,
		Demand:         s.Demand,
		Restored:       s.Restored,
		Asks:           s.Asks,
		CacheHits:      s.CacheHits,
		CacheMisses:    s.CacheMisses,
		CachedRules:    s.CachedRules,
		SliceRuns:      s.SliceRuns,
		DeltaRuns:      s.DeltaRuns,
		DeltaFallbacks: s.DeltaFallbacks,
		PatchedRules:   s.PatchedRules,
		Run: RunView{
			Activations: s.Run.Activations,
			Bindings:    s.Run.Bindings,
			Outputs:     s.Run.Outputs,
			Rounds:      s.Run.Rounds,
		},
	}
	if s.Err != nil {
		v.Err = s.Err.Error()
	}
	if timing {
		v.AskTimeMS = float64(s.AskTime) / float64(time.Millisecond)
	}
	for _, src := range s.Sources {
		sv := SourceView{
			Name:         src.Name,
			Attempts:     src.Attempts,
			Failures:     src.Failures,
			Retries:      src.Retries,
			Timeouts:     src.Timeouts,
			BreakerState: src.BreakerState,
			BreakerOpens: src.BreakerOpens,
			Rejections:   src.Rejections,
			StaleServed:  src.StaleServed,
			LastErr:      src.LastErr,
			FetchErr:     src.FetchErr,
			Entries:      src.Entries,
		}
		if timing {
			sv.StaleAgeMS = float64(src.StaleAge) / float64(time.Millisecond)
		}
		v.Sources = append(v.Sources, sv)
	}
	for _, sh := range s.Shards {
		v.Shards = append(v.Shards, ShardView{
			Name:     sh.Name,
			Remote:   sh.Remote,
			Functors: sh.Functors,
			Asks:     sh.Asks,
			Failures: sh.Failures,
			Healthy:  sh.Healthy,
			Breaker:  sh.Breaker,
			LastErr:  sh.LastErr,
		})
	}
	return v
}

// Stats inverts View for the untimed fields: it reconstructs a Stats
// snapshot from its stable rendering. The remote shard client uses it
// to turn GET /stats documents back into the Stats the Asker
// interface promises, so a federation can Aggregate over remote
// children with the same fold it uses for local ones. Wall-clock
// fields survive the round trip only when the view carried them.
func (v StatsView) Stats() Stats {
	s := Stats{
		Generation:     v.Generation,
		Materialized:   v.Materialized,
		Demand:         v.Demand,
		Restored:       v.Restored,
		Asks:           v.Asks,
		CacheHits:      v.CacheHits,
		CacheMisses:    v.CacheMisses,
		AskTime:        time.Duration(v.AskTimeMS * float64(time.Millisecond)),
		CachedRules:    v.CachedRules,
		SliceRuns:      v.SliceRuns,
		DeltaRuns:      v.DeltaRuns,
		DeltaFallbacks: v.DeltaFallbacks,
		PatchedRules:   v.PatchedRules,
		Run: engine.Stats{
			Activations: v.Run.Activations,
			Bindings:    v.Run.Bindings,
			Outputs:     v.Run.Outputs,
			Rounds:      v.Run.Rounds,
		},
	}
	if v.Err != "" {
		s.Err = errors.New(v.Err)
	}
	for _, sv := range v.Sources {
		s.Sources = append(s.Sources, SourceStatus{
			Stats: source.Stats{
				Name:         sv.Name,
				Attempts:     sv.Attempts,
				Failures:     sv.Failures,
				Retries:      sv.Retries,
				Timeouts:     sv.Timeouts,
				BreakerState: sv.BreakerState,
				BreakerOpens: sv.BreakerOpens,
				Rejections:   sv.Rejections,
				StaleServed:  sv.StaleServed,
				StaleAge:     time.Duration(sv.StaleAgeMS * float64(time.Millisecond)),
				LastErr:      sv.LastErr,
			},
			FetchErr: sv.FetchErr,
			Entries:  sv.Entries,
		})
	}
	for _, sh := range v.Shards {
		s.Shards = append(s.Shards, ShardStatus{
			Name:     sh.Name,
			Remote:   sh.Remote,
			Functors: sh.Functors,
			Asks:     sh.Asks,
			Failures: sh.Failures,
			Healthy:  sh.Healthy,
			Breaker:  sh.Breaker,
			LastErr:  sh.LastErr,
		})
	}
	return s
}

// JSON renders the snapshot as indented, key-stable JSON.
func (s Stats) JSON(timing bool) ([]byte, error) {
	return json.MarshalIndent(s.View(timing), "", "  ")
}

// Render writes the snapshot as a human-oriented text table.
func (s Stats) Render(w io.Writer, timing bool) error {
	v := s.View(timing)
	mode := "full"
	if v.Demand {
		mode = "demand"
	}
	if v.Restored {
		mode += ", restored"
	}
	if _, err := fmt.Fprintf(w, "mediator stats (generation %d, %s mode)\n", v.Generation, mode); err != nil {
		return err
	}
	fmt.Fprintf(w, "  materialized: %v", v.Materialized)
	if v.Err != "" {
		fmt.Fprintf(w, "  err: %s", v.Err)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  asks: %d  hits: %d  misses: %d", v.Asks, v.CacheHits, v.CacheMisses)
	if timing {
		fmt.Fprintf(w, "  ask-time: %.3fms", v.AskTimeMS)
	}
	fmt.Fprintln(w)
	if v.Demand {
		fmt.Fprintf(w, "  cached-rules: %d  slice-runs: %d\n", v.CachedRules, v.SliceRuns)
		fmt.Fprintf(w, "  deltas: runs=%d fallbacks=%d patched-rules=%d\n",
			v.DeltaRuns, v.DeltaFallbacks, v.PatchedRules)
	}
	fmt.Fprintf(w, "  run: activations=%d bindings=%d outputs=%d rounds=%d\n",
		v.Run.Activations, v.Run.Bindings, v.Run.Outputs, v.Run.Rounds)
	for _, src := range v.Sources {
		fmt.Fprintf(w, "  source %s: attempts=%d failures=%d retries=%d entries=%d",
			src.Name, src.Attempts, src.Failures, src.Retries, src.Entries)
		if src.BreakerState != "" {
			fmt.Fprintf(w, " breaker=%s", src.BreakerState)
		}
		if src.FetchErr != "" {
			fmt.Fprintf(w, " fetch-err=%q", src.FetchErr)
		}
		fmt.Fprintln(w)
	}
	for _, sh := range v.Shards {
		kind := "local"
		if sh.Remote {
			kind = "remote"
		}
		fmt.Fprintf(w, "  shard %s (%s): functors=%d asks=%d failures=%d healthy=%v",
			sh.Name, kind, sh.Functors, sh.Asks, sh.Failures, sh.Healthy)
		if sh.Breaker != "" {
			fmt.Fprintf(w, " breaker=%s", sh.Breaker)
		}
		if sh.LastErr != "" {
			fmt.Fprintf(w, " last-err=%q", sh.LastErr)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Aggregate folds the stats of a pool of mediators serving the same
// program into one pool-wide snapshot: counters sum, Materialized is
// the conjunction, Generation is the minimum (the pool's slowest lane
// — the number every lane reaches once a reload settles), Err is the
// first non-nil, and Sources are taken from the first snapshot (pool
// lanes share the same source chains, whose counters are already
// chain-global). Aggregating a single snapshot returns it unchanged.
func Aggregate(ss ...Stats) Stats {
	if len(ss) == 0 {
		return Stats{}
	}
	out := ss[0]
	for _, s := range ss[1:] {
		out.Run.Activations += s.Run.Activations
		out.Run.Bindings += s.Run.Bindings
		out.Run.Outputs += s.Run.Outputs
		out.Run.Rounds += s.Run.Rounds
		out.Materialized = out.Materialized && s.Materialized
		// A pool is warm-started only if every lane restored.
		out.Restored = out.Restored && s.Restored
		if out.Err == nil {
			out.Err = s.Err
		}
		out.Asks += s.Asks
		out.CacheHits += s.CacheHits
		out.CacheMisses += s.CacheMisses
		out.AskTime += s.AskTime
		if s.Generation < out.Generation {
			out.Generation = s.Generation
		}
		out.CachedRules += s.CachedRules
		out.SliceRuns += s.SliceRuns
		out.DeltaRuns += s.DeltaRuns
		out.DeltaFallbacks += s.DeltaFallbacks
		out.PatchedRules += s.PatchedRules
		// Unlike Sources (shared chains, counted once), each snapshot's
		// Shards describe that lane's own children; concatenate them.
		out.Shards = append(out.Shards, s.Shards...)
	}
	return out
}
