// Package odmg implements the ODMG object database substrate of the
// translation scenario (Figure 1): the integration target where car
// and supplier objects are materialized. It provides class schemas
// (attributes typed over atoms, set/bag/list/array collections,
// tuples and object references), an in-memory object store with OIDs,
// and schema validation — the services the ODMG import/export
// wrappers build on.
package odmg

import (
	"fmt"
	"sort"
	"strings"
)

// TypeKind discriminates ODMG types.
type TypeKind uint8

// The ODMG type kinds.
const (
	TString TypeKind = iota
	TInt
	TFloat
	TBool
	TSet
	TBag
	TList
	TArray
	TTuple
	TRef
)

// String returns the ODL-ish spelling of the kind.
func (k TypeKind) String() string {
	switch k {
	case TString:
		return "string"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "boolean"
	case TSet:
		return "set"
	case TBag:
		return "bag"
	case TList:
		return "list"
	case TArray:
		return "array"
	case TTuple:
		return "tuple"
	case TRef:
		return "ref"
	default:
		return fmt.Sprintf("TypeKind(%d)", uint8(k))
	}
}

// Type is an ODMG type expression.
type Type struct {
	Kind   TypeKind
	Elem   *Type   // TSet, TBag, TList, TArray
	Fields []Field // TTuple
	Class  string  // TRef
}

// Field is one named component of a tuple type or class.
type Field struct {
	Name string
	Type *Type
}

// Atomic type constructors.
var (
	StringT = &Type{Kind: TString}
	IntT    = &Type{Kind: TInt}
	FloatT  = &Type{Kind: TFloat}
	BoolT   = &Type{Kind: TBool}
)

// SetOf returns a set type.
func SetOf(elem *Type) *Type { return &Type{Kind: TSet, Elem: elem} }

// BagOf returns a bag type.
func BagOf(elem *Type) *Type { return &Type{Kind: TBag, Elem: elem} }

// ListOf returns a list type.
func ListOf(elem *Type) *Type { return &Type{Kind: TList, Elem: elem} }

// ArrayOf returns an array type.
func ArrayOf(elem *Type) *Type { return &Type{Kind: TArray, Elem: elem} }

// TupleOf returns a tuple type.
func TupleOf(fields ...Field) *Type { return &Type{Kind: TTuple, Fields: fields} }

// RefTo returns an object reference type.
func RefTo(class string) *Type { return &Type{Kind: TRef, Class: class} }

// String renders the type.
func (t *Type) String() string {
	switch t.Kind {
	case TSet, TBag, TList, TArray:
		return t.Kind.String() + "<" + t.Elem.String() + ">"
	case TTuple:
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.Name + ": " + f.Type.String()
		}
		return "tuple<" + strings.Join(parts, ", ") + ">"
	case TRef:
		return "ref<" + t.Class + ">"
	default:
		return t.Kind.String()
	}
}

// Class is an ODMG class: a name and typed attributes.
type Class struct {
	Name  string
	Attrs []Field
}

// Attr returns an attribute by name.
func (c *Class) Attr(name string) (*Type, bool) {
	for _, f := range c.Attrs {
		if f.Name == name {
			return f.Type, true
		}
	}
	return nil, false
}

// String renders the class in ODL-ish syntax.
func (c *Class) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "class %s {\n", c.Name)
	for _, f := range c.Attrs {
		fmt.Fprintf(&b, "  attribute %s %s;\n", f.Type.String(), f.Name)
	}
	b.WriteString("}\n")
	return b.String()
}

// Schema is a set of classes in declaration order.
type Schema struct {
	order   []string
	classes map[string]*Class
}

// NewSchema returns a schema over the classes.
func NewSchema(classes ...*Class) *Schema {
	s := &Schema{classes: map[string]*Class{}}
	for _, c := range classes {
		s.Add(c)
	}
	return s
}

// Add inserts or replaces a class.
func (s *Schema) Add(c *Class) {
	if _, ok := s.classes[c.Name]; !ok {
		s.order = append(s.order, c.Name)
	}
	s.classes[c.Name] = c
}

// Class returns a class by name.
func (s *Schema) Class(name string) (*Class, bool) {
	c, ok := s.classes[name]
	return c, ok
}

// Classes returns class names in order.
func (s *Schema) Classes() []string { return append([]string(nil), s.order...) }

// Validate checks that every reference type targets a declared class.
func (s *Schema) Validate() error {
	for _, n := range s.order {
		for _, f := range s.classes[n].Attrs {
			if err := s.validateType(f.Type); err != nil {
				return fmt.Errorf("odmg: class %s attribute %s: %w", n, f.Name, err)
			}
		}
	}
	return nil
}

func (s *Schema) validateType(t *Type) error {
	switch t.Kind {
	case TSet, TBag, TList, TArray:
		return s.validateType(t.Elem)
	case TTuple:
		for _, f := range t.Fields {
			if err := s.validateType(f.Type); err != nil {
				return err
			}
		}
	case TRef:
		if _, ok := s.classes[t.Class]; !ok {
			return fmt.Errorf("reference to undeclared class %s", t.Class)
		}
	}
	return nil
}

// String renders the schema.
func (s *Schema) String() string {
	var b strings.Builder
	for _, n := range s.order {
		b.WriteString(s.classes[n].String())
	}
	return b.String()
}

// Value is an ODMG value.
type Value struct {
	Kind   TypeKind
	Str    string
	Int    int64
	Float  float64
	Bool   bool
	Elems  []*Value // collections
	Fields []Field  // tuple field types are not stored on values
	Named  []NamedValue
	Ref    string // target OID
}

// NamedValue is one tuple component.
type NamedValue struct {
	Name  string
	Value *Value
}

// Value constructors.
func Str(s string) *Value     { return &Value{Kind: TString, Str: s} }
func Int(i int64) *Value      { return &Value{Kind: TInt, Int: i} }
func Float(f float64) *Value  { return &Value{Kind: TFloat, Float: f} }
func Bool(b bool) *Value      { return &Value{Kind: TBool, Bool: b} }
func Ref(oid string) *Value   { return &Value{Kind: TRef, Ref: oid} }
func Set(es ...*Value) *Value { return &Value{Kind: TSet, Elems: es} }
func Bag(es ...*Value) *Value { return &Value{Kind: TBag, Elems: es} }
func List(es ...*Value) *Value {
	return &Value{Kind: TList, Elems: es}
}
func Array(es ...*Value) *Value {
	return &Value{Kind: TArray, Elems: es}
}

// Tuple builds a tuple value from name/value pairs.
func Tuple(named ...NamedValue) *Value { return &Value{Kind: TTuple, Named: named} }

// String renders the value.
func (v *Value) String() string {
	switch v.Kind {
	case TString:
		return fmt.Sprintf("%q", v.Str)
	case TInt:
		return fmt.Sprintf("%d", v.Int)
	case TFloat:
		return fmt.Sprintf("%g", v.Float)
	case TBool:
		return fmt.Sprintf("%t", v.Bool)
	case TRef:
		return "&" + v.Ref
	case TTuple:
		parts := make([]string, len(v.Named))
		for i, nv := range v.Named {
			parts[i] = nv.Name + ": " + nv.Value.String()
		}
		return "tuple(" + strings.Join(parts, ", ") + ")"
	default:
		parts := make([]string, len(v.Elems))
		for i, e := range v.Elems {
			parts[i] = e.String()
		}
		return v.Kind.String() + "(" + strings.Join(parts, ", ") + ")"
	}
}

// Object is one stored object.
type Object struct {
	OID   string
	Class string
	Attrs []NamedValue
}

// Attr returns an attribute value by name.
func (o *Object) Attr(name string) (*Value, bool) {
	for _, nv := range o.Attrs {
		if nv.Name == name {
			return nv.Value, true
		}
	}
	return nil, false
}

// Database is an in-memory object store over a schema.
type Database struct {
	Schema  *Schema
	order   []string
	objects map[string]*Object
	nextOID int
}

// NewDatabase returns an empty database.
func NewDatabase(s *Schema) *Database {
	return &Database{Schema: s, objects: map[string]*Object{}}
}

// NewOID mints a fresh object identifier.
func (db *Database) NewOID(class string) string {
	db.nextOID++
	return fmt.Sprintf("%s_%d", class, db.nextOID)
}

// Put stores an object (replacing any existing binding of its OID).
func (db *Database) Put(o *Object) {
	if _, ok := db.objects[o.OID]; !ok {
		db.order = append(db.order, o.OID)
	}
	db.objects[o.OID] = o
}

// Get returns an object by OID.
func (db *Database) Get(oid string) (*Object, bool) {
	o, ok := db.objects[oid]
	return o, ok
}

// Len reports the number of objects.
func (db *Database) Len() int { return len(db.order) }

// Objects returns the objects in insertion order.
func (db *Database) Objects() []*Object {
	out := make([]*Object, len(db.order))
	for i, oid := range db.order {
		out[i] = db.objects[oid]
	}
	return out
}

// OfClass returns the objects of one class, in insertion order.
func (db *Database) OfClass(class string) []*Object {
	var out []*Object
	for _, oid := range db.order {
		if db.objects[oid].Class == class {
			out = append(out, db.objects[oid])
		}
	}
	return out
}

// Extent returns the sorted OIDs of a class (the ODMG extent).
func (db *Database) Extent(class string) []string {
	var out []string
	for _, o := range db.OfClass(class) {
		out = append(out, o.OID)
	}
	sort.Strings(out)
	return out
}

// Check validates every object against its class: declared
// attributes, value/type conformance, resolvable references of the
// right class.
func (db *Database) Check() error {
	for _, oid := range db.order {
		o := db.objects[oid]
		class, ok := db.Schema.Class(o.Class)
		if !ok {
			return fmt.Errorf("odmg: object %s has undeclared class %s", oid, o.Class)
		}
		if len(o.Attrs) != len(class.Attrs) {
			return fmt.Errorf("odmg: object %s has %d attributes, class %s declares %d",
				oid, len(o.Attrs), o.Class, len(class.Attrs))
		}
		for i, nv := range o.Attrs {
			decl := class.Attrs[i]
			if nv.Name != decl.Name {
				return fmt.Errorf("odmg: object %s attribute %d is %s, class declares %s",
					oid, i, nv.Name, decl.Name)
			}
			if err := db.checkValue(nv.Value, decl.Type); err != nil {
				return fmt.Errorf("odmg: object %s attribute %s: %w", oid, nv.Name, err)
			}
		}
	}
	return nil
}

func (db *Database) checkValue(v *Value, t *Type) error {
	if v.Kind != t.Kind {
		return fmt.Errorf("value kind %s, declared %s", v.Kind, t.Kind)
	}
	switch t.Kind {
	case TSet, TBag, TList, TArray:
		for _, e := range v.Elems {
			if err := db.checkValue(e, t.Elem); err != nil {
				return err
			}
		}
	case TTuple:
		if len(v.Named) != len(t.Fields) {
			return fmt.Errorf("tuple arity %d, declared %d", len(v.Named), len(t.Fields))
		}
		for i, nv := range v.Named {
			if nv.Name != t.Fields[i].Name {
				return fmt.Errorf("tuple field %s, declared %s", nv.Name, t.Fields[i].Name)
			}
			if err := db.checkValue(nv.Value, t.Fields[i].Type); err != nil {
				return err
			}
		}
	case TRef:
		target, ok := db.Get(v.Ref)
		if !ok {
			return fmt.Errorf("dangling reference %s", v.Ref)
		}
		if target.Class != t.Class {
			return fmt.Errorf("reference %s has class %s, declared ref<%s>", v.Ref, target.Class, t.Class)
		}
	}
	return nil
}

// CarDealerSchema returns the ODMG schema of the running example:
// cars referencing their set of suppliers, suppliers optionally
// referencing back the cars they sell (Rule 1').
func CarDealerSchema() *Schema {
	car := &Class{Name: "car", Attrs: []Field{
		{Name: "name", Type: StringT},
		{Name: "desc", Type: StringT},
		{Name: "suppliers", Type: SetOf(RefTo("supplier"))},
	}}
	supplier := &Class{Name: "supplier", Attrs: []Field{
		{Name: "name", Type: StringT},
		{Name: "city", Type: StringT},
		{Name: "zip", Type: IntT},
	}}
	return NewSchema(car, supplier)
}
