package odmg

import (
	"strings"
	"testing"
)

func TestTypeString(t *testing.T) {
	cases := []struct {
		typ  *Type
		want string
	}{
		{StringT, "string"},
		{IntT, "int"},
		{SetOf(RefTo("supplier")), "set<ref<supplier>>"},
		{ListOf(StringT), "list<string>"},
		{ArrayOf(FloatT), "array<float>"},
		{BagOf(BoolT), "bag<boolean>"},
		{TupleOf(Field{"x", IntT}, Field{"y", IntT}), "tuple<x: int, y: int>"},
	}
	for _, c := range cases {
		if got := c.typ.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestSchemaValidate(t *testing.T) {
	s := CarDealerSchema()
	if err := s.Validate(); err != nil {
		t.Errorf("dealer schema invalid: %v", err)
	}
	if got := s.Classes(); len(got) != 2 || got[0] != "car" {
		t.Errorf("Classes = %v", got)
	}
	car, ok := s.Class("car")
	if !ok {
		t.Fatal("car class missing")
	}
	typ, ok := car.Attr("suppliers")
	if !ok || typ.Kind != TSet {
		t.Errorf("suppliers attr = %v", typ)
	}
	if _, ok := car.Attr("none"); ok {
		t.Error("Attr(none) found")
	}
	// Dangling reference type.
	bad := NewSchema(&Class{Name: "a", Attrs: []Field{{"r", RefTo("ghost")}}})
	if err := bad.Validate(); err == nil {
		t.Error("reference to undeclared class accepted")
	}
	// Nested collection validation.
	bad2 := NewSchema(&Class{Name: "a", Attrs: []Field{{"r", SetOf(TupleOf(Field{"x", RefTo("ghost")}))}}})
	if err := bad2.Validate(); err == nil {
		t.Error("nested dangling reference accepted")
	}
}

func buildDealerDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase(CarDealerSchema())
	s1 := &Object{OID: db.NewOID("supplier"), Class: "supplier", Attrs: []NamedValue{
		{"name", Str("VW center")}, {"city", Str("Paris")}, {"zip", Int(75005)},
	}}
	s2 := &Object{OID: db.NewOID("supplier"), Class: "supplier", Attrs: []NamedValue{
		{"name", Str("VW2")}, {"city", Str("Lyon")}, {"zip", Int(69001)},
	}}
	c1 := &Object{OID: db.NewOID("car"), Class: "car", Attrs: []NamedValue{
		{"name", Str("Golf")}, {"desc", Str("Compact")},
		{"suppliers", Set(Ref(s1.OID), Ref(s2.OID))},
	}}
	db.Put(s1)
	db.Put(s2)
	db.Put(c1)
	return db
}

func TestDatabaseCheck(t *testing.T) {
	db := buildDealerDB(t)
	if err := db.Check(); err != nil {
		t.Fatalf("valid database rejected: %v", err)
	}
	if db.Len() != 3 {
		t.Errorf("Len = %d", db.Len())
	}
	if len(db.OfClass("supplier")) != 2 {
		t.Errorf("OfClass(supplier) = %d", len(db.OfClass("supplier")))
	}
	ext := db.Extent("supplier")
	if len(ext) != 2 || ext[0] > ext[1] {
		t.Errorf("Extent = %v", ext)
	}
}

func TestDatabaseCheckFailures(t *testing.T) {
	mk := func(mutate func(db *Database)) error {
		db := buildDealerDB(t)
		mutate(db)
		return db.Check()
	}
	// Undeclared class.
	if err := mk(func(db *Database) {
		db.Put(&Object{OID: "x", Class: "ghost"})
	}); err == nil {
		t.Error("undeclared class accepted")
	}
	// Wrong attribute count.
	if err := mk(func(db *Database) {
		db.Put(&Object{OID: "x", Class: "supplier", Attrs: []NamedValue{{"name", Str("n")}}})
	}); err == nil {
		t.Error("missing attributes accepted")
	}
	// Wrong attribute type.
	if err := mk(func(db *Database) {
		db.Put(&Object{OID: "x", Class: "supplier", Attrs: []NamedValue{
			{"name", Str("n")}, {"city", Str("c")}, {"zip", Str("not-an-int")},
		}})
	}); err == nil {
		t.Error("string zip accepted for int attribute")
	}
	// Dangling reference.
	if err := mk(func(db *Database) {
		db.Put(&Object{OID: "x", Class: "car", Attrs: []NamedValue{
			{"name", Str("n")}, {"desc", Str("d")},
			{"suppliers", Set(Ref("nowhere"))},
		}})
	}); err == nil {
		t.Error("dangling reference accepted")
	}
	// Reference to wrong class.
	if err := mk(func(db *Database) {
		cars := db.OfClass("car")
		db.Put(&Object{OID: "x", Class: "car", Attrs: []NamedValue{
			{"name", Str("n")}, {"desc", Str("d")},
			{"suppliers", Set(Ref(cars[0].OID))},
		}})
	}); err == nil {
		t.Error("wrong-class reference accepted")
	}
}

func TestTupleValues(t *testing.T) {
	schema := NewSchema(&Class{Name: "point", Attrs: []Field{
		{"pos", TupleOf(Field{"x", IntT}, Field{"y", IntT})},
	}})
	db := NewDatabase(schema)
	db.Put(&Object{OID: "p1", Class: "point", Attrs: []NamedValue{
		{"pos", Tuple(NamedValue{"x", Int(1)}, NamedValue{"y", Int(2)})},
	}})
	if err := db.Check(); err != nil {
		t.Errorf("tuple value rejected: %v", err)
	}
	// Wrong field order.
	db.Put(&Object{OID: "p2", Class: "point", Attrs: []NamedValue{
		{"pos", Tuple(NamedValue{"y", Int(1)}, NamedValue{"x", Int(2)})},
	}})
	if err := db.Check(); err == nil {
		t.Error("misordered tuple accepted")
	}
}

func TestValueString(t *testing.T) {
	v := Set(Str("a"), Int(1), Ref("s1"))
	s := v.String()
	for _, frag := range []string{`"a"`, "1", "&s1", "set("} {
		if !strings.Contains(s, frag) {
			t.Errorf("value String missing %q: %s", frag, s)
		}
	}
	tu := Tuple(NamedValue{"x", Float(1.5)}, NamedValue{"b", Bool(true)})
	if !strings.Contains(tu.String(), "x: 1.5") || !strings.Contains(tu.String(), "b: true") {
		t.Errorf("tuple String = %s", tu)
	}
}

func TestNewOIDUnique(t *testing.T) {
	db := NewDatabase(CarDealerSchema())
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		oid := db.NewOID("car")
		if seen[oid] {
			t.Fatalf("duplicate OID %s", oid)
		}
		seen[oid] = true
	}
}

func TestObjectsOrderAndGet(t *testing.T) {
	db := buildDealerDB(t)
	objs := db.Objects()
	if len(objs) != 3 || objs[0].Class != "supplier" || objs[2].Class != "car" {
		t.Errorf("Objects order wrong")
	}
	if _, ok := db.Get(objs[0].OID); !ok {
		t.Error("Get failed")
	}
	if _, ok := db.Get("ghost"); ok {
		t.Error("Get(ghost) found")
	}
	// Put replaces without duplicating order.
	db.Put(objs[0])
	if db.Len() != 3 {
		t.Error("Put duplicated entry")
	}
}

func TestSchemaString(t *testing.T) {
	s := CarDealerSchema().String()
	for _, frag := range []string{"class car", "attribute set<ref<supplier>> suppliers", "class supplier"} {
		if !strings.Contains(s, frag) {
			t.Errorf("schema String missing %q:\n%s", frag, s)
		}
	}
}
