package pattern

import (
	"sort"
	"strings"

	"yat/internal/tree"
)

// Domain describes the set of constants (and variables) that may
// instantiate a variable (§2). The default domain is "all data
// constants and variable names". A domain can be restricted to:
//
//   - a union of atom kinds (e.g. Y : string|int|float|bool in the
//     ODMG Ptype pattern),
//   - an explicit set of symbols (e.g. X : (set|bag) in rule Web4),
//   - the instances of a pattern (e.g. P2 : Ptype), which makes the
//     variable a *pattern variable* binding a whole subtree.
//
// The zero value is the default (unrestricted) domain.
type Domain struct {
	Kinds   []tree.Kind // allowed atom kinds; nil when unrestricted
	Symbols []string    // allowed symbol constants; nil when unrestricted
	Pattern string      // non-empty: instances of this pattern
	// Ref refines a Pattern domain to *references to* instances of
	// the pattern (written &P). It is how the derived WebCar body
	// types its join variable: the paper's bold &Psup leaf means "a
	// reference to some Psup object".
	Ref bool
}

// AnyDomain is the default, unrestricted domain.
var AnyDomain = Domain{}

// KindDomain returns a domain restricted to atoms of the given kinds.
func KindDomain(kinds ...tree.Kind) Domain { return Domain{Kinds: kinds} }

// SymbolDomain returns a domain restricted to the given symbols.
func SymbolDomain(symbols ...string) Domain { return Domain{Symbols: symbols} }

// PatternDomain returns a domain of instances of the named pattern.
func PatternDomain(name string) Domain { return Domain{Pattern: name} }

// RefDomain returns a domain of references to instances of the named
// pattern (&P).
func RefDomain(name string) Domain { return Domain{Pattern: name, Ref: true} }

// IsAny reports whether the domain is unrestricted.
func (d Domain) IsAny() bool {
	return len(d.Kinds) == 0 && len(d.Symbols) == 0 && d.Pattern == ""
}

// IsPattern reports whether the domain is a pattern domain (making
// its variable a pattern variable). Reference domains are reported
// separately by IsRefPattern.
func (d Domain) IsPattern() bool { return d.Pattern != "" && !d.Ref }

// IsRefPattern reports whether the domain is a reference domain (&P).
func (d Domain) IsRefPattern() bool { return d.Pattern != "" && d.Ref }

// Contains reports whether constant v belongs to the domain. Pattern
// and reference domains cannot be decided from the value alone and
// always report false here; the engine checks them against the model.
func (d Domain) Contains(v tree.Value) bool {
	if d.Pattern != "" {
		return false
	}
	if d.IsAny() {
		return true
	}
	for _, k := range d.Kinds {
		if v.Kind() == k {
			return true
		}
	}
	if s, ok := v.(tree.Symbol); ok {
		for _, sym := range d.Symbols {
			if string(s) == sym {
				return true
			}
		}
	}
	return false
}

// SubsetOf reports whether every constant of d is also in e — the
// variable-instantiation condition of the paper ("a variable whose
// domain is a subset").
//
// Pattern domains are compared by name only at this level; the
// model-aware instantiation check refines pattern-domain inclusion
// via the instantiation relation itself.
func (d Domain) SubsetOf(e Domain) bool {
	if e.IsAny() {
		// Pattern domains range over trees, not constants; reference
		// domains range over references, which are labels.
		return !d.IsPattern()
	}
	if d.IsAny() {
		return false
	}
	if d.Pattern != "" || e.Pattern != "" {
		return d.Pattern == e.Pattern && d.Ref == e.Ref
	}
	for _, k := range d.Kinds {
		found := false
		for _, k2 := range e.Kinds {
			if k == k2 {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for _, s := range d.Symbols {
		if symbolCovered(s, e) {
			continue
		}
		return false
	}
	return true
}

func symbolCovered(s string, e Domain) bool {
	for _, k := range e.Kinds {
		if k == tree.KindSymbol {
			return true
		}
	}
	for _, s2 := range e.Symbols {
		if s == s2 {
			return true
		}
	}
	return false
}

// Intersect returns the intersection of two domains, used by type
// inference to accumulate restrictions on a variable. The second
// result reports whether the intersection is non-empty and
// representable (a pattern domain intersects only with itself or the
// unrestricted domain; an empty kind/symbol intersection reports
// false rather than returning the — otherwise identical — zero
// value, which denotes the unrestricted domain).
func (d Domain) Intersect(e Domain) (Domain, bool) {
	switch {
	case d.IsAny():
		return e, true
	case e.IsAny():
		return d, true
	case d.Pattern != "" || e.Pattern != "":
		if d.Pattern == e.Pattern && d.Ref == e.Ref {
			return d, true
		}
		return Domain{}, false
	}
	var out Domain
	for _, k := range d.Kinds {
		for _, k2 := range e.Kinds {
			if k == k2 {
				out.Kinds = append(out.Kinds, k)
				break
			}
		}
	}
	eHasSymbolKind := false
	for _, k := range e.Kinds {
		if k == tree.KindSymbol {
			eHasSymbolKind = true
		}
	}
	dHasSymbolKind := false
	for _, k := range d.Kinds {
		if k == tree.KindSymbol {
			dHasSymbolKind = true
		}
	}
	for _, s := range d.Symbols {
		if eHasSymbolKind || containsString(e.Symbols, s) {
			out.Symbols = append(out.Symbols, s)
		}
	}
	for _, s := range e.Symbols {
		if dHasSymbolKind && !containsString(out.Symbols, s) {
			out.Symbols = append(out.Symbols, s)
		}
	}
	if len(out.Kinds) == 0 && len(out.Symbols) == 0 {
		return Domain{}, false // empty intersection
	}
	return out, true
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// String renders the domain in concrete syntax: `string|int`,
// `(set|bag)`, `Ptype`, or `any`.
func (d Domain) String() string {
	if d.IsAny() {
		return "any"
	}
	if d.IsRefPattern() {
		return "&" + d.Pattern
	}
	if d.IsPattern() {
		return d.Pattern
	}
	var parts []string
	for _, k := range d.Kinds {
		parts = append(parts, k.String())
	}
	if len(d.Symbols) > 0 {
		syms := append([]string(nil), d.Symbols...)
		sort.Strings(syms)
		parts = append(parts, "("+strings.Join(syms, "|")+")")
	}
	return strings.Join(parts, "|")
}

// Equal reports whether two domains denote the same set.
func (d Domain) Equal(e Domain) bool {
	return d.SubsetOf(e) && e.SubsetOf(d)
}
