package pattern

import "yat/internal/tree"

// This file reconstructs the models of Figure 2 and the patterns used
// throughout the paper's examples. They serve as shared fixtures for
// tests, examples and the experiment harness (experiment E2).

// YatModel returns the universal model: the single pattern
//
//	Yat = L | L < -*> ^Yat > | &Yat
//
// that captures any data (top left of Figure 2).
func YatModel() *Model {
	yat := NewPattern("Yat",
		NewVar("L", AnyDomain),
		NewVar("L", AnyDomain, Star(NewPatRef("Yat", false))),
		NewPatRef("Yat", true),
	)
	return NewModel(yat)
}

// ODMGModel returns the model of ODMG-compliant data (top right of
// Figure 2): classes carry a class name and attribute/type pairs;
// types are atoms, collections, tuples or references to classes.
func ODMGModel() *Model {
	atomDomain := KindDomain(tree.KindString, tree.KindInt, tree.KindFloat, tree.KindBool)
	pclass := NewPattern("Pclass",
		NewSym("class",
			One(NewVar("Class_name", AnyDomain,
				Star(NewVar("Att", AnyDomain,
					One(NewPatRef("Ptype", false))))))),
	)
	ptype := NewPattern("Ptype",
		NewVar("Y", atomDomain),
		NewSym("set", Star(NewPatRef("Ptype", false))),
		NewSym("bag", Star(NewPatRef("Ptype", false))),
		NewSym("list", Star(NewPatRef("Ptype", false))),
		NewSym("array", Star(NewPatRef("Ptype", false))),
		NewSym("tuple", Star(NewVar("Att2", AnyDomain, One(NewPatRef("Ptype", false))))),
		NewPatRef("Pclass", true),
	)
	return NewModel(pclass, ptype)
}

// PcarPattern returns the pattern for car objects of the Car Schema
// model (§2):
//
//	Pcar: class -> car < -> name -> S1:string, -> desc -> S2:string,
//	                       -> suppliers -> set -*> &Psup >
func PcarPattern() *Pattern {
	str := KindDomain(tree.KindString)
	return NewPattern("Pcar",
		NewSym("class",
			One(NewSym("car",
				One(NewSym("name", One(NewVar("S1", str)))),
				One(NewSym("desc", One(NewVar("S2", str)))),
				One(NewSym("suppliers",
					One(NewSym("set", Star(NewPatRef("Psup", true)))))),
			))),
	)
}

// PsupPattern returns the pattern for supplier objects of the Car
// Schema model (§2).
func PsupPattern() *Pattern {
	str := KindDomain(tree.KindString)
	return NewPattern("Psup",
		NewSym("class",
			One(NewSym("supplier",
				One(NewSym("name", One(NewVar("S1", str)))),
				One(NewSym("city", One(NewVar("S2", str)))),
				One(NewSym("zip", One(NewVar("S3", str)))),
			))),
	)
}

// CarSchemaModel returns the Car Schema model (bottom left of Figure
// 2): the Pcar and Psup patterns, which are instances of both the
// ODMG and Yat models.
func CarSchemaModel() *Model {
	return NewModel(PcarPattern(), PsupPattern())
}

// GolfStore returns ground data for the Golf model (bottom right of
// Figure 2): the car object c1 referencing two supplier objects.
func GolfStore() *tree.Store {
	s := tree.NewStore()
	s.Put(tree.PlainName("c1"), tree.Sym("class",
		tree.Sym("car",
			tree.Sym("name", tree.Str("Golf")),
			tree.Sym("desc", tree.Str("A classic compact car")),
			tree.Sym("suppliers", tree.Sym("set",
				tree.RefLeaf(tree.PlainName("s1")),
				tree.RefLeaf(tree.PlainName("s2")),
			)),
		)))
	s.Put(tree.PlainName("s1"), tree.Sym("class",
		tree.Sym("supplier",
			tree.Sym("name", tree.Str("VW center")),
			tree.Sym("city", tree.Str("Paris")),
			tree.Sym("zip", tree.Str("75005")),
		)))
	s.Put(tree.PlainName("s2"), tree.Sym("class",
		tree.Sym("supplier",
			tree.Sym("name", tree.Str("VW2")),
			tree.Sym("city", tree.Str("Versailles")),
			tree.Sym("zip", tree.Str("78000")),
		)))
	return s
}

// GolfModel returns the Golf ground model derived from GolfStore.
func GolfModel() *Model { return StoreModel(GolfStore()) }

// BrochurePattern returns the pattern describing SGML brochures that
// comply with the paper's DTD (§3.1):
//
//	Pbr: brochure < -> number -> Num, -> title -> T, -> model -> Year,
//	                -> desc -> D, -> spplrs -*> supplier <
//	                    -> name -> SN, -> address -> Add > >
func BrochurePattern() *Pattern {
	return NewPattern("Pbr",
		NewSym("brochure",
			One(NewSym("number", One(NewVar("Num", AnyDomain)))),
			One(NewSym("title", One(NewVar("T", AnyDomain)))),
			One(NewSym("model", One(NewVar("Year", AnyDomain)))),
			One(NewSym("desc", One(NewVar("D", AnyDomain)))),
			One(NewSym("spplrs",
				Star(NewSym("supplier",
					One(NewSym("name", One(NewVar("SN", AnyDomain)))),
					One(NewSym("address", One(NewVar("Add", AnyDomain)))),
				)))),
		),
	)
}

// BrochureModel returns the model with the single brochure pattern.
func BrochureModel() *Model { return NewModel(BrochurePattern()) }

// HTMLModel returns a model of HTML pages as produced by the Web
// rules (Figure 5): a page is an html element with head/title and a
// body of recursively nested items.
func HTMLModel() *Model {
	atomDomain := KindDomain(tree.KindString, tree.KindInt, tree.KindFloat, tree.KindBool)
	page := NewPattern("Phtml",
		NewSym("html",
			One(NewSym("head", One(NewSym("title", One(NewVar("T", AnyDomain)))))),
			One(NewSym("body", Star(NewPatRef("Pelem", false)))),
		),
	)
	elem := NewPattern("Pelem",
		NewVar("S", atomDomain),
		NewVar("Tag", AnyDomain, Star(NewPatRef("Pelem", false))),
		NewSym("a",
			One(NewSym("href", One(NewPatRef("Phtml", true)))),
			One(NewSym("cont", One(NewVar("C", AnyDomain))))),
	)
	return NewModel(page, elem)
}
