package pattern

import (
	"fmt"
	"strings"
	"sync"

	"yat/internal/tree"
)

// InstanceOf reports whether model inst is an instance of model gen:
// every pattern of inst must instantiate some pattern of gen (§2).
// On failure the error names the offending patterns.
func InstanceOf(inst, gen *Model) error {
	c := newChecker(inst, gen)
	var errs []string
	for _, p := range inst.Patterns() {
		if _, ok := c.someGeneral(p); !ok {
			errs = append(errs, fmt.Sprintf("pattern %s instantiates no pattern of the general model", p.Name))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("not an instance:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

// PatternInstanceOf reports whether pattern instName of model inst is
// an instance of pattern genName of model gen.
func PatternInstanceOf(inst *Model, instName string, gen *Model, genName string) bool {
	p, ok := inst.Get(instName)
	if !ok {
		return false
	}
	q, ok := gen.Get(genName)
	if !ok {
		return false
	}
	return newChecker(inst, gen).patternInst(p, q)
}

// TreeInstanceOf reports whether pattern tree ti (interpreted in
// model inst) is an instance of pattern tree tg (interpreted in model
// gen). Either model may be nil when the corresponding tree contains
// no pattern references.
func TreeInstanceOf(inst *Model, ti *PTree, gen *Model, tg *PTree) bool {
	return newChecker(orEmpty(inst), orEmpty(gen)).treeInst(ti, tg)
}

// TreeInstanceOfLoose is TreeInstanceOf under rule-body conventions:
// a leaf variable with an unrestricted domain in the general tree
// matches ANY instance subtree (in rule bodies a bare variable such
// as `Data` binds the whole input). It is the relation used to order
// rules by specificity when building hierarchies (§4.2).
func TreeInstanceOfLoose(inst *Model, ti *PTree, gen *Model, tg *PTree) bool {
	c := newChecker(orEmpty(inst), orEmpty(gen))
	c.looseLeafVars = true
	return c.treeInst(ti, tg)
}

// Conforms reports whether the ground tree t (with references
// resolved in store) is an instance of pattern genName in model gen.
// It is the data-validation entry point ("typing on demand", §3.5).
// For repeated checks against the same store, use a
// ConformanceChecker, which converts the store once and caches
// results.
func Conforms(t *tree.Node, store *tree.Store, gen *Model, genName string) bool {
	return NewConformanceChecker(store, gen).Conforms(t, genName)
}

// ConformanceChecker validates ground trees against the patterns of a
// model, resolving references through a fixed store. The store-to-
// ground-model conversion happens once and results are cached per
// (node, pattern) pair, so per-binding domain checks during rule
// matching stay cheap. The checker is safe for concurrent use: the
// engine's parallel matching phase shares one checker across its
// worker goroutines.
type ConformanceChecker struct {
	instM *Model
	gen   *Model

	mu    sync.RWMutex
	cache map[conformKey]bool
}

type conformKey struct {
	node *tree.Node
	pat  string
}

// NewConformanceChecker returns a checker resolving references in
// store (which may be nil) against the patterns of gen.
func NewConformanceChecker(store *tree.Store, gen *Model) *ConformanceChecker {
	instM := NewModel()
	if store != nil {
		instM = StoreModel(store)
	}
	return &ConformanceChecker{instM: instM, gen: gen, cache: make(map[conformKey]bool)}
}

// Conforms reports whether t is an instance of pattern genName. Two
// goroutines racing on an uncached pair both compute the (identical,
// deterministic) answer; the duplicated work is bounded and the cache
// stays consistent.
func (cc *ConformanceChecker) Conforms(t *tree.Node, genName string) bool {
	key := conformKey{node: t, pat: genName}
	cc.mu.RLock()
	res, ok := cc.cache[key]
	cc.mu.RUnlock()
	if ok {
		return res
	}
	res = false
	if q, ok := cc.gen.Get(genName); ok {
		res = newChecker(cc.instM, cc.gen).patternBranchesTree(GroundTree(t), q)
	}
	cc.mu.Lock()
	cc.cache[key] = res
	cc.mu.Unlock()
	return res
}

func orEmpty(m *Model) *Model {
	if m == nil {
		return NewModel()
	}
	return m
}

// checker carries the two models and the coinductive assumption set.
// Recursive patterns (Pcar ↔ Psup, Ptype ↔ Pclass) make the relation
// a greatest fixpoint: a pattern pair currently being checked on the
// path is assumed to hold. Results are not memoized across union
// branches — a conclusion reached under an assumption that a sibling
// branch does not share would be unsound.
type checker struct {
	inst, gen     *Model
	inProgress    map[[2]string]bool
	looseLeafVars bool
}

func newChecker(inst, gen *Model) *checker {
	return &checker{inst: inst, gen: gen, inProgress: make(map[[2]string]bool)}
}

// someGeneral finds a pattern of gen that p instantiates.
func (c *checker) someGeneral(p *Pattern) (*Pattern, bool) {
	for _, q := range c.gen.Patterns() {
		if c.patternInst(p, q) {
			return q, true
		}
	}
	return nil, false
}

// patternInst reports whether p (inst side) instantiates q (gen side):
// every union branch of p must instantiate some union branch of q.
func (c *checker) patternInst(p, q *Pattern) bool {
	key := [2]string{p.Name, q.Name}
	if c.inProgress[key] {
		return true // coinductive assumption
	}
	c.inProgress[key] = true
	defer delete(c.inProgress, key)
	for _, tp := range p.Union {
		if !c.patternBranchesTree(tp, q) {
			return false
		}
	}
	return true
}

func (c *checker) patternBranchesTree(ti *PTree, q *Pattern) bool {
	for _, tq := range q.Union {
		if c.treeInst(ti, tq) {
			return true
		}
	}
	return false
}

// treeInst reports whether pattern tree ti instantiates pattern tree tg.
func (c *checker) treeInst(ti, tg *PTree) bool {
	switch lg := tg.Label.(type) {
	case Const:
		li, ok := ti.Label.(Const)
		if !ok || !li.Value.Equal(lg.Value) {
			return false
		}
		return c.edgesInst(ti.Edges, tg.Edges)

	case Var:
		if lg.Domain.IsRefPattern() {
			// Reference variable: the instance must denote a reference
			// to an instance of the domain pattern.
			dom, ok := c.gen.Get(lg.Domain.Pattern)
			if !ok {
				return false
			}
			if len(ti.Edges) > 0 {
				return false
			}
			switch li := ti.Label.(type) {
			case Var:
				if !li.Domain.IsRefPattern() {
					return false
				}
				if li.Domain.Pattern == lg.Domain.Pattern {
					return true
				}
				sub, ok := c.inst.Get(li.Domain.Pattern)
				return ok && c.patternInst(sub, dom)
			case PatRef:
				if !li.Ref {
					return false
				}
				sub, ok := c.inst.Get(li.Name)
				return ok && c.patternInst(sub, dom)
			case Const:
				ref, isRef := li.Value.(tree.Ref)
				if !isRef {
					return false
				}
				sub, ok := c.inst.Get(ref.Name.Key())
				return ok && c.patternInst(sub, dom)
			}
			return false
		}
		if lg.Domain.IsPattern() {
			// Pattern variable: the whole instance subtree must be an
			// instance of the domain pattern. A variable instance must
			// have a domain that is the same pattern or a pattern
			// instance of it.
			dom, ok := c.gen.Get(lg.Domain.Pattern)
			if !ok {
				return false
			}
			if vi, isVar := ti.Label.(Var); isVar && len(ti.Edges) == 0 && vi.Domain.IsPattern() {
				if vi.Domain.Pattern == lg.Domain.Pattern {
					return true
				}
				sub, ok := c.inst.Get(vi.Domain.Pattern)
				return ok && c.patternInst(sub, dom)
			}
			if ri, isRef := ti.Label.(PatRef); isRef && !ri.Ref && len(ti.Edges) == 0 {
				sub, ok := c.inst.Get(ri.Name)
				return ok && c.patternInst(sub, dom)
			}
			if vi, isVar := ti.Label.(Var); isVar && len(ti.Edges) == 0 && vi.Domain.IsRefPattern() {
				// A reference variable instantiates a pattern domain
				// through the domain's &P branches (the Ptype/&Pclass
				// case: a &Psup-typed variable is a Ptype instance).
				sub, ok := c.inst.Get(vi.Domain.Pattern)
				if !ok {
					return false
				}
				for _, branch := range dom.Union {
					br, isBr := branch.Label.(PatRef)
					if !isBr || !br.Ref || len(branch.Edges) > 0 {
						continue
					}
					target, ok := c.gen.Get(br.Name)
					if ok && c.patternInst(sub, target) {
						return true
					}
				}
				return false
			}
			return c.patternBranchesTree(ti, dom)
		}
		if c.looseLeafVars && len(tg.Edges) == 0 && lg.Domain.IsAny() {
			// Rule-body convention: a bare leaf variable matches any
			// subtree.
			return true
		}
		// Data variable: instance label must be a constant in the
		// domain, or a variable with a subset domain. Edges still
		// instantiate structurally.
		switch li := ti.Label.(type) {
		case Const:
			if ref, isRef := li.Value.(tree.Ref); isRef {
				// A minted reference is not a constant of a data
				// variable's domain unless the domain is unrestricted.
				_ = ref
				if !lg.Domain.IsAny() {
					return false
				}
			} else if !lg.Domain.Contains(li.Value) {
				return false
			}
		case Var:
			if !li.Domain.SubsetOf(lg.Domain) {
				return false
			}
		default:
			return false
		}
		return c.edgesInst(ti.Edges, tg.Edges)

	case PatRef:
		if lg.Ref {
			// &P: the instance must also be a reference, either to a
			// pattern instance of P or a ground minted identity whose
			// tree instantiates P.
			dom, ok := c.gen.Get(lg.Name)
			if !ok {
				return false
			}
			switch li := ti.Label.(type) {
			case PatRef:
				if !li.Ref {
					return false
				}
				sub, ok := c.inst.Get(li.Name)
				return ok && c.patternInst(sub, dom)
			case Const:
				ref, isRef := li.Value.(tree.Ref)
				if !isRef {
					return false
				}
				sub, ok := c.inst.Get(ref.Name.Key())
				return ok && c.patternInst(sub, dom)
			case Var:
				if len(ti.Edges) > 0 || !li.Domain.IsRefPattern() {
					return false
				}
				sub, ok := c.inst.Get(li.Domain.Pattern)
				return ok && c.patternInst(sub, dom)
			}
			return false
		}
		// ^P: dereferencing. The instance is either a pattern-name
		// leaf whose pattern instantiates P, or a whole subtree that
		// instantiates P directly.
		dom, ok := c.gen.Get(lg.Name)
		if !ok {
			return false
		}
		if ri, isRef := ti.Label.(PatRef); isRef && !ri.Ref && len(ti.Edges) == 0 {
			sub, ok := c.inst.Get(ri.Name)
			return ok && c.patternInst(sub, dom)
		}
		if vi, isVar := ti.Label.(Var); isVar && vi.Domain.IsPattern() && len(ti.Edges) == 0 {
			sub, ok := c.inst.Get(vi.Domain.Pattern)
			return ok && c.patternInst(sub, dom)
		}
		return c.patternBranchesTree(ti, dom)
	}
	return false
}

// edgesInst matches the instance edge sequence fs against the general
// edge sequence gs: a One edge is replaced by exactly one One edge; a
// Star (or Group/Ordered/Index, which refine Star) edge is replaced
// by any ordered sequence of edges whose targets all instantiate its
// target. Classic backtracking over the two sequences.
func (c *checker) edgesInst(fs, gs []Edge) bool {
	return c.edgesInstAt(fs, gs, 0, 0)
}

func (c *checker) edgesInstAt(fs, gs []Edge, fi, gi int) bool {
	if gi == len(gs) {
		return fi == len(fs)
	}
	g := gs[gi]
	if g.Occ == OccOne {
		if fi == len(fs) {
			return false
		}
		f := fs[fi]
		if f.Occ != OccOne {
			return false
		}
		return c.treeInst(f.To, g.To) && c.edgesInstAt(fs, gs, fi+1, gi+1)
	}
	// Star-like: try consuming k = 0.. edges.
	for k := fi; k <= len(fs); k++ {
		okSoFar := true
		for j := fi; j < k; j++ {
			if !c.treeInst(fs[j].To, g.To) {
				okSoFar = false
				break
			}
		}
		if okSoFar && c.edgesInstAt(fs, gs, k, gi+1) {
			return true
		}
		if k < len(fs) && !c.treeInst(fs[k].To, g.To) {
			// Extending the run further cannot succeed.
			// (We still tried k first with the shorter run.)
			break
		}
	}
	return false
}
