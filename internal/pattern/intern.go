// Symbol interning: a dense integer symbol table over the label,
// functor and Skolem-name strings of one program.
//
// Interning lives here rather than in internal/tree or
// internal/engine because pattern is the lowest layer that knows what
// a "symbol worth interning" is: tree holds arbitrary runtime values
// (most of which are data, not schema), while engine and analysis
// both consume patterns and must agree on one table. A SymTab is
// built once per parsed program, is immutable afterwards, and its
// dense int32 codes index bitsets and dispatch tables downstream.
package pattern

import (
	"sort"

	"yat/internal/tree"
)

// Sym is a dense interned symbol code. Codes are assigned in
// insertion order starting at 0; NoSym marks "not in the table".
type Sym int32

// NoSym is returned by Lookup for strings never interned.
const NoSym Sym = -1

// SymTab is an append-only interning table. It is not safe for
// concurrent mutation; the intended life cycle is build-once at
// parse/analysis time, then concurrent read-only lookups.
type SymTab struct {
	ids   map[string]Sym
	names []string
}

// NewSymTab returns an empty table.
func NewSymTab() *SymTab {
	return &SymTab{ids: make(map[string]Sym)}
}

// Intern returns the code for name, assigning the next dense code on
// first sight.
func (t *SymTab) Intern(name string) Sym {
	if s, ok := t.ids[name]; ok {
		return s
	}
	s := Sym(len(t.names))
	t.ids[name] = s
	t.names = append(t.names, name)
	return s
}

// Lookup returns the code for name, or NoSym if it was never
// interned. Safe for concurrent use once the table is built.
func (t *SymTab) Lookup(name string) Sym {
	if s, ok := t.ids[name]; ok {
		return s
	}
	return NoSym
}

// Name returns the string for a code. Codes outside the table return
// the empty string.
func (t *SymTab) Name(s Sym) string {
	if s < 0 || int(s) >= len(t.names) {
		return ""
	}
	return t.names[int(s)]
}

// Len returns the number of interned symbols.
func (t *SymTab) Len() int { return len(t.names) }

// Names returns the interned strings in sorted order (for stable
// reports; the dense codes themselves follow insertion order).
func (t *SymTab) Names() []string {
	out := append([]string(nil), t.names...)
	sort.Strings(out)
	return out
}

// InternTree interns every Const symbol label in a pattern tree, plus
// the name of every pattern reference. Var labels bind at match time
// and contribute nothing static.
func (t *SymTab) InternTree(p *PTree) {
	if p == nil {
		return
	}
	p.Walk(func(n *PTree) bool {
		switch l := n.Label.(type) {
		case Const:
			// Only symbol constants are schema; strings, ints and
			// other data atoms are runtime values and stay out.
			if sym, ok := l.Value.(tree.Symbol); ok {
				t.Intern(string(sym))
			}
		case PatRef:
			t.Intern(l.Name)
		}
		return true
	})
}
