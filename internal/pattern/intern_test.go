package pattern

import (
	"testing"

	"yat/internal/tree"
)

func TestSymTabDenseCodes(t *testing.T) {
	st := NewSymTab()
	a := st.Intern("brochure")
	b := st.Intern("supplier")
	if a != 0 || b != 1 {
		t.Fatalf("codes not dense from zero: %d, %d", a, b)
	}
	if again := st.Intern("brochure"); again != a {
		t.Errorf("re-interning changed the code: %d != %d", again, a)
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d, want 2", st.Len())
	}
	if got := st.Lookup("supplier"); got != b {
		t.Errorf("Lookup(supplier) = %d, want %d", got, b)
	}
	if got := st.Lookup("absent"); got != NoSym {
		t.Errorf("Lookup(absent) = %d, want NoSym", got)
	}
	if st.Name(a) != "brochure" || st.Name(b) != "supplier" {
		t.Errorf("Name round-trip broken: %q, %q", st.Name(a), st.Name(b))
	}
	if st.Name(NoSym) != "" || st.Name(99) != "" {
		t.Error("out-of-range Name should return empty string")
	}
}

// TestSymTabDistinguishesSameTextAcrossRoles pins the core interning
// invariant: the same text always gets the same code (codes identify
// strings, not occurrences), and two different texts never collide —
// even when one names a label and the other a pattern reference.
func TestSymTabDistinguishesSameTextAcrossRoles(t *testing.T) {
	st := NewSymTab()
	label := st.Intern("name")
	ref := st.Intern("Pcar")
	if label == ref {
		t.Fatal("distinct strings interned to the same code")
	}
	// Same text used both as a label and a functor: one code.
	if st.Intern("Pcar") != ref {
		t.Error("functor text re-interned to a new code")
	}
}

func TestInternTree(t *testing.T) {
	st := NewSymTab()
	p := NewSym("brochure",
		One(NewSym("name", One(NewVar("N", Domain{})))),
		Star(NewPatRef("Psup", true, VarArg("S"))),
		One(NewConst(tree.String("literal"))),
	)
	st.InternTree(p)
	for _, want := range []string{"brochure", "name", "Psup"} {
		if st.Lookup(want) == NoSym {
			t.Errorf("%q not interned", want)
		}
	}
	// Data atoms and variables stay out of the table.
	if st.Lookup("literal") != NoSym {
		t.Error("string literal was interned as a symbol")
	}
	if st.Lookup("N") != NoSym {
		t.Error("variable name was interned")
	}
	st.InternTree(nil) // must not panic
}

func TestSymTabNamesSorted(t *testing.T) {
	st := NewSymTab()
	st.Intern("zeta")
	st.Intern("alpha")
	names := st.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("Names() = %v, want sorted [alpha zeta]", names)
	}
}
