package pattern

import (
	"fmt"
	"strings"

	"yat/internal/tree"
)

// Model is a set of named patterns — one level of data representation
// (§2, Figure 2). Patterns are kept in insertion order for
// deterministic output.
type Model struct {
	names  []string
	byName map[string]*Pattern
}

// NewModel returns a model holding the given patterns.
func NewModel(patterns ...*Pattern) *Model {
	m := &Model{byName: make(map[string]*Pattern)}
	for _, p := range patterns {
		m.Add(p)
	}
	return m
}

// Add inserts or replaces the pattern under its name.
func (m *Model) Add(p *Pattern) {
	if _, ok := m.byName[p.Name]; !ok {
		m.names = append(m.names, p.Name)
	}
	m.byName[p.Name] = p
}

// Get returns the pattern with the given name.
func (m *Model) Get(name string) (*Pattern, bool) {
	p, ok := m.byName[name]
	return p, ok
}

// Has reports whether the model defines name.
func (m *Model) Has(name string) bool {
	_, ok := m.byName[name]
	return ok
}

// Len reports the number of patterns.
func (m *Model) Len() int { return len(m.names) }

// Names returns pattern names in insertion order.
func (m *Model) Names() []string { return append([]string(nil), m.names...) }

// Patterns returns the patterns in insertion order.
func (m *Model) Patterns() []*Pattern {
	out := make([]*Pattern, 0, len(m.names))
	for _, n := range m.names {
		out = append(out, m.byName[n])
	}
	return out
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	c := NewModel()
	for _, p := range m.Patterns() {
		c.Add(p.Clone())
	}
	return c
}

// Merge adds all patterns of other into a copy of m (other wins on
// name clashes) and returns the copy.
func (m *Model) Merge(other *Model) *Model {
	c := m.Clone()
	for _, p := range other.Patterns() {
		c.Add(p.Clone())
	}
	return c
}

// Validate checks internal consistency: every pattern reference
// (deref, &ref or pattern-variable domain) resolves to a pattern of
// the model.
func (m *Model) Validate() error {
	var errs []string
	for _, p := range m.Patterns() {
		for _, t := range p.Union {
			t.Walk(func(pt *PTree) bool {
				switch l := pt.Label.(type) {
				case PatRef:
					if !m.Has(l.Name) {
						errs = append(errs, fmt.Sprintf("pattern %s references undefined pattern %s", p.Name, l.Name))
					}
				case Var:
					if l.Domain.IsPattern() && !m.Has(l.Domain.Pattern) {
						errs = append(errs, fmt.Sprintf("pattern %s: variable %s has undefined pattern domain %s", p.Name, l.Name, l.Domain.Pattern))
					}
				}
				return true
			})
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("model invalid:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

// String renders the model, one pattern per line.
func (m *Model) String() string {
	var b strings.Builder
	for _, p := range m.Patterns() {
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// GroundTree converts a ground data tree into a ground pattern tree:
// constants become Const labels and reference leaves become Const
// labels wrapping the tree.Ref (so they can be resolved against the
// ground model the store converts to).
func GroundTree(t *tree.Node) *PTree {
	pt := &PTree{Label: Const{Value: t.Label}}
	for _, c := range t.Children {
		pt.Edges = append(pt.Edges, One(GroundTree(c)))
	}
	return pt
}

// GroundPattern wraps a ground data tree as a single-branch pattern
// registered under the canonical key of its name.
func GroundPattern(name tree.Name, t *tree.Node) *Pattern {
	return NewPattern(name.Key(), GroundTree(t))
}

// StoreModel converts a store of ground trees into the corresponding
// ground model: one ground pattern per entry, named by the entry's
// canonical key. This is the bridge that lets ground data participate
// in the instantiation relation (Figure 2's Golf model).
func StoreModel(s *tree.Store) *Model {
	m := NewModel()
	for _, e := range s.Entries() {
		m.Add(GroundPattern(e.Name, e.Tree))
	}
	return m
}

// ToNode converts a ground pattern tree back into a data tree. It
// fails if the tree is not ground.
func ToNode(t *PTree) (*tree.Node, error) {
	c, ok := t.Label.(Const)
	if !ok {
		return nil, fmt.Errorf("pattern: ToNode on non-ground tree (label %s)", t.Label.Display())
	}
	n := tree.New(c.Value)
	for _, e := range t.Edges {
		if e.Occ != OccOne {
			return nil, fmt.Errorf("pattern: ToNode on non-ground tree (edge %s)", e.Occ)
		}
		child, err := ToNode(e.To)
		if err != nil {
			return nil, err
		}
		n.Add(child)
	}
	return n, nil
}
