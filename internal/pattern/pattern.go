// Package pattern implements the typed layer of the YAT data model:
// patterns (unions of pattern trees with variables, occurrence
// indicators and pattern references), models (sets of patterns with
// variable domains) and the instantiation relation between them.
//
// Instantiation is the paper's central novelty: a model can be
// refined into a more specific model, down to ground patterns that
// represent real data. The same relation doubles as the subtyping
// check used to type conversion programs and to validate their
// composition.
package pattern

import (
	"fmt"
	"strings"

	"yat/internal/tree"
)

// Occ is the occurrence indicator carried by a pattern edge.
type Occ uint8

// Occurrence indicators. One and Star are the two indicators of the
// model (§2); Group, Ordered and Index additionally appear in YATL
// rule heads and bodies (§3.1, §3.3) to control collection
// construction and array positions.
const (
	OccOne     Occ = iota // empty label: exactly one occurrence
	OccStar               // ★: zero or more occurrences (keeps duplicates, input order)
	OccGroup              // {}: grouping with duplicate elimination, no order
	OccOrdered            // [] v1,v2: grouping + ordering on criteria
	OccIndex              // superscript I: array index edge
)

// String returns the concrete-syntax arrow for the indicator.
func (o Occ) String() string {
	switch o {
	case OccOne:
		return "->"
	case OccStar:
		return "-*>"
	case OccGroup:
		return "-{}>"
	case OccOrdered:
		return "-[...]>"
	case OccIndex:
		return "-#...>"
	default:
		return fmt.Sprintf("Occ(%d)", uint8(o))
	}
}

// Label is a pattern-tree node label: Const, Var or PatRef (a sealed
// interface; consumers dispatch with type switches).
type Label interface {
	isLabel()
	// Display renders the label in concrete syntax.
	Display() string
}

// Const is a constant label (symbol or atom), as on ground patterns.
type Const struct {
	Value tree.Value
}

func (Const) isLabel() {}

// Display implements Label.
func (c Const) Display() string { return c.Value.Display() }

// Var is a data or pattern variable with its domain. A Var whose
// domain names a pattern (Domain.Pattern != "") is a pattern variable
// in the paper's sense: it matches any instance of that pattern and
// binds the whole subtree.
type Var struct {
	Name   string
	Domain Domain
}

func (Var) isLabel() {}

// Display implements Label.
func (v Var) Display() string {
	if v.Domain.IsAny() {
		return v.Name
	}
	return v.Name + " : " + v.Domain.String()
}

// PatRef is an occurrence of a pattern name at a leaf. With Ref set it
// denotes a reference (&P, sharing / cyclic structures); without, it
// denotes dereferencing (the pattern tree is plugged in, written ^P in
// our concrete syntax). Args carries Skolem-function arguments when
// the reference appears in a YATL rule (e.g. &Psup(SN)).
type PatRef struct {
	Name string
	Args []Arg
	Ref  bool
}

func (PatRef) isLabel() {}

// Display implements Label.
func (p PatRef) Display() string {
	var b strings.Builder
	if p.Ref {
		b.WriteByte('&')
	} else {
		b.WriteByte('^')
	}
	b.WriteString(p.Name)
	if len(p.Args) > 0 {
		b.WriteByte('(')
		for i, a := range p.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.Display())
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Arg is one Skolem-function argument: a variable or a constant.
type Arg struct {
	IsVar bool
	Var   string
	Const tree.Value
}

// VarArg returns a variable argument.
func VarArg(name string) Arg { return Arg{IsVar: true, Var: name} }

// ConstArg returns a constant argument.
func ConstArg(v tree.Value) Arg { return Arg{Const: v} }

// Display renders the argument.
func (a Arg) Display() string {
	if a.IsVar {
		return a.Var
	}
	return a.Const.Display()
}

// Edge is one outgoing edge of a pattern-tree node: an occurrence
// indicator, optional ordering criteria or index variable, and the
// child pattern tree.
type Edge struct {
	Occ     Occ
	OrderBy []string // OccOrdered: criteria variables, significant order
	Index   string   // OccIndex: position variable
	To      *PTree
	Pos     Pos // source position of the edge arrow, if parsed
}

// PTree is a pattern tree: a labeled node with annotated edges.
type PTree struct {
	Label Label
	Edges []Edge
	Pos   Pos // source position of the label, if parsed
}

// NewConst returns a pattern node with a constant label.
func NewConst(v tree.Value, edges ...Edge) *PTree {
	return &PTree{Label: Const{Value: v}, Edges: edges}
}

// NewSym returns a pattern node labeled with a symbol constant.
func NewSym(name string, edges ...Edge) *PTree {
	return NewConst(tree.Symbol(name), edges...)
}

// NewVar returns a pattern node labeled with a variable.
func NewVar(name string, dom Domain, edges ...Edge) *PTree {
	return &PTree{Label: Var{Name: name, Domain: dom}, Edges: edges}
}

// NewPatRef returns a leaf referencing a pattern by name.
func NewPatRef(name string, ref bool, args ...Arg) *PTree {
	return &PTree{Label: PatRef{Name: name, Args: args, Ref: ref}}
}

// One returns an exactly-once edge.
func One(to *PTree) Edge { return Edge{Occ: OccOne, To: to} }

// Star returns a zero-or-more edge.
func Star(to *PTree) Edge { return Edge{Occ: OccStar, To: to} }

// Group returns a duplicate-eliminating grouping edge ({}).
func Group(to *PTree) Edge { return Edge{Occ: OccGroup, To: to} }

// Ordered returns a grouping edge ordered by the given criteria
// variables ([]v1,v2).
func Ordered(to *PTree, orderBy ...string) Edge {
	return Edge{Occ: OccOrdered, OrderBy: orderBy, To: to}
}

// Index returns an index edge binding (or ordering by) variable v.
func Index(v string, to *PTree) Edge {
	return Edge{Occ: OccIndex, Index: v, To: to}
}

// Clone returns a deep copy of the pattern tree.
func (t *PTree) Clone() *PTree {
	if t == nil {
		return nil
	}
	c := &PTree{Label: t.Label, Pos: t.Pos}
	if len(t.Edges) > 0 {
		c.Edges = make([]Edge, len(t.Edges))
		for i, e := range t.Edges {
			c.Edges[i] = Edge{
				Occ:     e.Occ,
				OrderBy: append([]string(nil), e.OrderBy...),
				Index:   e.Index,
				To:      e.To.Clone(),
				Pos:     e.Pos,
			}
		}
	}
	return c
}

// Walk calls fn for every node in preorder; returning false prunes
// the subtree.
func (t *PTree) Walk(fn func(*PTree) bool) {
	if t == nil {
		return
	}
	if !fn(t) {
		return
	}
	for _, e := range t.Edges {
		e.To.Walk(fn)
	}
}

// Vars returns the names of all variables occurring in the tree:
// node-label variables, Skolem argument variables, ordering criteria
// and index variables. Order of first occurrence, no duplicates.
func (t *PTree) Vars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	var walk func(pt *PTree)
	walk = func(pt *PTree) {
		if pt == nil {
			return
		}
		switch l := pt.Label.(type) {
		case Var:
			add(l.Name)
		case PatRef:
			for _, a := range l.Args {
				if a.IsVar {
					add(a.Var)
				}
			}
		}
		for _, e := range pt.Edges {
			add(e.Index)
			for _, v := range e.OrderBy {
				add(v)
			}
			walk(e.To)
		}
	}
	walk(t)
	return out
}

// PatternRefs returns the names of all patterns referenced (deref or
// &ref) anywhere in the tree, in preorder, duplicates included.
func (t *PTree) PatternRefs() []PatRef {
	var out []PatRef
	t.Walk(func(pt *PTree) bool {
		if r, ok := pt.Label.(PatRef); ok {
			out = append(out, r)
		}
		return true
	})
	return out
}

// IsGround reports whether the tree is ground: no variables, no
// pattern derefs (references &name to minted identities are allowed
// on ground data), and all edges OccOne.
func (t *PTree) IsGround() bool {
	ground := true
	t.Walk(func(pt *PTree) bool {
		switch l := pt.Label.(type) {
		case Var:
			ground = false
		case PatRef:
			if !l.Ref {
				ground = false
			}
		}
		for _, e := range pt.Edges {
			if e.Occ != OccOne {
				ground = false
			}
		}
		return ground
	})
	return ground
}

// String renders the pattern tree in concrete syntax.
func (t *PTree) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t *PTree) write(b *strings.Builder) {
	if t == nil {
		b.WriteString("<nil>")
		return
	}
	b.WriteString(t.Label.Display())
	switch len(t.Edges) {
	case 0:
		return
	case 1:
		// Chain form: `a -> b -> c`, as in the paper.
		b.WriteByte(' ')
		t.Edges[0].write(b)
	default:
		b.WriteString(" < ")
		for i, e := range t.Edges {
			if i > 0 {
				b.WriteString(", ")
			}
			e.write(b)
		}
		b.WriteString(" >")
	}
}

func (e Edge) write(b *strings.Builder) {
	switch e.Occ {
	case OccOne:
		b.WriteString("-> ")
	case OccStar:
		b.WriteString("-*> ")
	case OccGroup:
		b.WriteString("-{}> ")
	case OccOrdered:
		b.WriteString("-[")
		b.WriteString(strings.Join(e.OrderBy, ","))
		b.WriteString("]> ")
	case OccIndex:
		b.WriteString("-#")
		b.WriteString(e.Index)
		b.WriteString("> ")
	}
	e.To.write(b)
}

// String renders the edge in concrete syntax.
func (e Edge) String() string {
	var b strings.Builder
	e.write(&b)
	return b.String()
}

// Pattern is a named union of pattern trees.
type Pattern struct {
	Name  string
	Union []*PTree
}

// NewPattern returns a pattern with the given name and union branches.
func NewPattern(name string, union ...*PTree) *Pattern {
	return &Pattern{Name: name, Union: union}
}

// Clone returns a deep copy.
func (p *Pattern) Clone() *Pattern {
	c := &Pattern{Name: p.Name, Union: make([]*PTree, len(p.Union))}
	for i, t := range p.Union {
		c.Union[i] = t.Clone()
	}
	return c
}

// IsGround reports whether the pattern is ground: a single union
// branch that is itself ground. Ground patterns represent real data
// and can only be instantiated by themselves.
func (p *Pattern) IsGround() bool {
	return len(p.Union) == 1 && p.Union[0].IsGround()
}

// String renders the pattern as `Name = tree | tree | ...`.
func (p *Pattern) String() string {
	parts := make([]string, len(p.Union))
	for i, t := range p.Union {
		parts[i] = t.String()
	}
	return p.Name + " = " + strings.Join(parts, " | ")
}
