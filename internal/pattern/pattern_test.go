package pattern

import (
	"strings"
	"testing"

	"yat/internal/tree"
)

func TestDomainContains(t *testing.T) {
	str := KindDomain(tree.KindString)
	cases := []struct {
		d    Domain
		v    tree.Value
		want bool
	}{
		{AnyDomain, tree.String("x"), true},
		{AnyDomain, tree.Symbol("set"), true},
		{str, tree.String("x"), true},
		{str, tree.Int(5), false},
		{str, tree.Symbol("x"), false},
		{KindDomain(tree.KindInt, tree.KindFloat), tree.Float(1.5), true},
		{SymbolDomain("set", "bag"), tree.Symbol("set"), true},
		{SymbolDomain("set", "bag"), tree.Symbol("list"), false},
		{SymbolDomain("set", "bag"), tree.String("set"), false},
		{PatternDomain("Ptype"), tree.String("x"), false},
	}
	for _, c := range cases {
		if got := c.d.Contains(c.v); got != c.want {
			t.Errorf("Domain(%s).Contains(%v) = %v, want %v", c.d, c.v, got, c.want)
		}
	}
}

func TestDomainSubsetOf(t *testing.T) {
	str := KindDomain(tree.KindString)
	atoms := KindDomain(tree.KindString, tree.KindInt, tree.KindFloat, tree.KindBool)
	cases := []struct {
		a, b Domain
		want bool
	}{
		{str, AnyDomain, true},
		{AnyDomain, str, false},
		{str, atoms, true},
		{atoms, str, false},
		{SymbolDomain("set"), SymbolDomain("set", "bag"), true},
		{SymbolDomain("set", "bag"), SymbolDomain("set"), false},
		{SymbolDomain("set"), KindDomain(tree.KindSymbol), true},
		{SymbolDomain("set"), str, false},
		{PatternDomain("P"), PatternDomain("P"), true},
		{PatternDomain("P"), PatternDomain("Q"), false},
		{PatternDomain("P"), AnyDomain, false}, // pattern vars range over trees
		{AnyDomain, AnyDomain, true},
	}
	for _, c := range cases {
		if got := c.a.SubsetOf(c.b); got != c.want {
			t.Errorf("(%s).SubsetOf(%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDomainIntersect(t *testing.T) {
	str := KindDomain(tree.KindString)
	atoms := KindDomain(tree.KindString, tree.KindInt)
	got, ok := str.Intersect(atoms)
	if !ok || !got.Equal(str) {
		t.Errorf("str ∩ atoms = %v, want %v", got, str)
	}
	got, ok = AnyDomain.Intersect(str)
	if !ok || !got.Equal(str) {
		t.Errorf("any ∩ str = %v", got)
	}
	got, ok = SymbolDomain("set", "bag").Intersect(SymbolDomain("bag", "list"))
	if !ok || !got.Equal(SymbolDomain("bag")) {
		t.Errorf("symbol intersect = %v", got)
	}
	if _, ok := PatternDomain("P").Intersect(str); ok {
		t.Error("pattern ∩ kind should fail")
	}
	if d, ok := PatternDomain("P").Intersect(PatternDomain("P")); !ok || d.Pattern != "P" {
		t.Error("pattern ∩ same pattern should succeed")
	}
}

func TestPTreeStringAndVars(t *testing.T) {
	pt := NewSym("class",
		One(NewSym("supplier",
			One(NewSym("name", One(NewVar("SN", AnyDomain)))),
			One(NewSym("sells", One(NewSym("set", Group(NewPatRef("Pcar", true, VarArg("Pbr"))))))),
		)))
	s := pt.String()
	for _, frag := range []string{"class", "-{}>", "&Pcar(Pbr)", "SN"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q: %s", frag, s)
		}
	}
	vars := pt.Vars()
	want := []string{"SN", "Pbr"}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Errorf("Vars[%d] = %q, want %q", i, vars[i], want[i])
		}
	}
}

func TestPTreeVarsIncludeCriteriaAndIndex(t *testing.T) {
	pt := NewSym("list",
		Ordered(NewPatRef("Psup", true, VarArg("SN")), "SN"),
		Index("I", NewVar("X", AnyDomain)),
	)
	vars := pt.Vars()
	has := func(name string) bool {
		for _, v := range vars {
			if v == name {
				return true
			}
		}
		return false
	}
	if !has("SN") || !has("I") || !has("X") {
		t.Errorf("Vars = %v, want SN, I, X present", vars)
	}
}

func TestPTreeCloneIndependent(t *testing.T) {
	pt := NewSym("a", Star(NewVar("X", KindDomain(tree.KindString))))
	c := pt.Clone()
	c.Edges[0].To.Label = Var{Name: "Y"}
	if pt.Edges[0].To.Label.(Var).Name != "X" {
		t.Error("clone shares structure")
	}
}

func TestIsGround(t *testing.T) {
	ground := NewSym("class", One(NewSym("car", One(NewConst(tree.String("Golf"))))))
	if !ground.IsGround() {
		t.Error("constant One-edge tree should be ground")
	}
	withVar := NewSym("class", One(NewVar("X", AnyDomain)))
	if withVar.IsGround() {
		t.Error("tree with variable is not ground")
	}
	withStar := NewSym("class", Star(NewSym("x")))
	if withStar.IsGround() {
		t.Error("tree with star edge is not ground")
	}
	withRef := NewSym("set", One(NewPatRef("s1", true)))
	if !withRef.IsGround() {
		t.Error("&refs are allowed on ground data")
	}
	withDeref := NewSym("set", One(NewPatRef("Ptype", false)))
	if withDeref.IsGround() {
		t.Error("pattern deref is not ground")
	}
}

func TestGroundTreeRoundTrip(t *testing.T) {
	n := tree.Sym("brochure",
		tree.Sym("number", tree.IntLeaf(1)),
		tree.Sym("title", tree.Str("Golf")),
		tree.RefLeaf(tree.PlainName("s1")),
	)
	pt := GroundTree(n)
	if !pt.IsGround() {
		t.Fatal("GroundTree output not ground")
	}
	back, err := ToNode(pt)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Equal(back) {
		t.Errorf("round trip changed tree: %s vs %s", n, back)
	}
}

func TestToNodeRejectsNonGround(t *testing.T) {
	if _, err := ToNode(NewVar("X", AnyDomain)); err == nil {
		t.Error("ToNode should reject variables")
	}
	if _, err := ToNode(NewSym("a", Star(NewSym("b")))); err == nil {
		t.Error("ToNode should reject star edges")
	}
}

func TestModelBasics(t *testing.T) {
	m := NewModel(PcarPattern(), PsupPattern())
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	if _, ok := m.Get("Pcar"); !ok {
		t.Error("Get(Pcar) failed")
	}
	if m.Has("Nope") {
		t.Error("Has(Nope) true")
	}
	names := m.Names()
	if names[0] != "Pcar" || names[1] != "Psup" {
		t.Errorf("Names order: %v", names)
	}
	// Replace keeps order.
	m.Add(NewPattern("Pcar", NewSym("x")))
	if m.Len() != 2 || m.Names()[0] != "Pcar" {
		t.Error("replace broke ordering")
	}
	p, _ := m.Get("Pcar")
	if p.Union[0].String() != "x" {
		t.Error("replace did not take effect")
	}
}

func TestModelValidate(t *testing.T) {
	ok := CarSchemaModel()
	if err := ok.Validate(); err != nil {
		t.Errorf("CarSchema should validate: %v", err)
	}
	bad := NewModel(NewPattern("P", NewSym("a", One(NewPatRef("Missing", false)))))
	if err := bad.Validate(); err == nil {
		t.Error("undefined pattern ref should fail validation")
	}
	bad2 := NewModel(NewPattern("P", NewVar("X", PatternDomain("Missing"))))
	if err := bad2.Validate(); err == nil {
		t.Error("undefined pattern domain should fail validation")
	}
}

func TestModelMerge(t *testing.T) {
	a := NewModel(NewPattern("P", NewSym("a")))
	b := NewModel(NewPattern("Q", NewSym("b")), NewPattern("P", NewSym("c")))
	m := a.Merge(b)
	if m.Len() != 2 {
		t.Fatalf("merged Len = %d", m.Len())
	}
	p, _ := m.Get("P")
	if p.Union[0].String() != "c" {
		t.Error("merge should let other win on clashes")
	}
	// Originals untouched.
	p, _ = a.Get("P")
	if p.Union[0].String() != "a" {
		t.Error("merge mutated receiver")
	}
}

// --- Figure 2: the instantiation chain ---------------------------------

func TestFigure2ODMGInstanceOfYat(t *testing.T) {
	if err := InstanceOf(ODMGModel(), YatModel()); err != nil {
		t.Errorf("ODMG should be an instance of Yat: %v", err)
	}
}

func TestFigure2CarSchemaInstanceOfODMG(t *testing.T) {
	if err := InstanceOf(CarSchemaModel(), ODMGModel()); err != nil {
		t.Errorf("Car Schema should be an instance of ODMG: %v", err)
	}
}

func TestFigure2CarSchemaInstanceOfYat(t *testing.T) {
	if err := InstanceOf(CarSchemaModel(), YatModel()); err != nil {
		t.Errorf("Car Schema should be an instance of Yat: %v", err)
	}
}

func TestFigure2GolfInstanceOfAll(t *testing.T) {
	golf := GolfModel()
	for _, gen := range []struct {
		name string
		m    *Model
	}{
		{"CarSchema", CarSchemaModel()},
		{"ODMG", ODMGModel()},
		{"Yat", YatModel()},
	} {
		if err := InstanceOf(golf, gen.m); err != nil {
			t.Errorf("Golf should be an instance of %s: %v", gen.name, err)
		}
	}
}

func TestFigure2NotInstanceBackwards(t *testing.T) {
	// The relation is not symmetric: Yat is not an instance of ODMG
	// (an arbitrary tree is not ODMG-compliant), and ODMG is not an
	// instance of Car Schema.
	if err := InstanceOf(YatModel(), ODMGModel()); err == nil {
		t.Error("Yat should NOT be an instance of ODMG")
	}
	if err := InstanceOf(ODMGModel(), CarSchemaModel()); err == nil {
		t.Error("ODMG should NOT be an instance of Car Schema")
	}
}

func TestPatternInstanceOfSpecific(t *testing.T) {
	if !PatternInstanceOf(CarSchemaModel(), "Pcar", ODMGModel(), "Pclass") {
		t.Error("Pcar should instantiate Pclass")
	}
	if !PatternInstanceOf(CarSchemaModel(), "Psup", ODMGModel(), "Pclass") {
		t.Error("Psup should instantiate Pclass")
	}
	if PatternInstanceOf(CarSchemaModel(), "Pcar", ODMGModel(), "Ptype") {
		t.Error("Pcar should not instantiate Ptype")
	}
}

func TestNonODMGStructureRejected(t *testing.T) {
	// A root other than `class` is not a Pclass instance, and a node
	// with children is not an atomic Ptype.
	bad := NewModel(NewPattern("Weird", NewSym("foo", One(NewVar("X", AnyDomain)))))
	if err := InstanceOf(bad, ODMGModel()); err == nil {
		t.Error("non-class root should not instantiate ODMG")
	}
	if err := InstanceOf(bad, YatModel()); err != nil {
		t.Errorf("but it is still a Yat instance: %v", err)
	}
}

func TestOneEdgeCannotBecomeStar(t *testing.T) {
	// "An empty labeled edge can only be replaced by a similar edge":
	// an instance with a star edge does not instantiate a general One
	// edge.
	gen := NewModel(NewPattern("G", NewSym("a", One(NewSym("b")))))
	inst := NewModel(NewPattern("I", NewSym("a", Star(NewSym("b")))))
	if err := InstanceOf(inst, gen); err == nil {
		t.Error("star edge should not instantiate a One edge")
	}
}

func TestStarEdgeExpansion(t *testing.T) {
	gen := NewModel(NewPattern("G", NewSym("a", Star(NewVar("X", AnyDomain)))))
	// Zero, one, many children all instantiate.
	for _, inst := range []*Pattern{
		NewPattern("I0", NewSym("a")),
		NewPattern("I1", NewSym("a", One(NewSym("x")))),
		NewPattern("I3", NewSym("a", One(NewSym("x")), One(NewConst(tree.Int(1))), Star(NewSym("y")))),
	} {
		if err := InstanceOf(NewModel(inst), gen); err != nil {
			t.Errorf("%s should instantiate star pattern: %v", inst.Name, err)
		}
	}
	// Wrong root label does not.
	if err := InstanceOf(NewModel(NewPattern("I", NewSym("b"))), gen); err == nil {
		t.Error("different root should not instantiate")
	}
}

func TestMultiStarBacktracking(t *testing.T) {
	// General: a < -*> b, -> c, -*> d >. The matcher must place the
	// One edge for c correctly between the two runs.
	gen := NewModel(NewPattern("G", NewSym("a",
		Star(NewSym("b")), One(NewSym("c")), Star(NewSym("d")))))
	good := NewPattern("I", NewSym("a",
		One(NewSym("b")), One(NewSym("b")), One(NewSym("c")), One(NewSym("d"))))
	if err := InstanceOf(NewModel(good), gen); err != nil {
		t.Errorf("backtracking match failed: %v", err)
	}
	noC := NewPattern("I", NewSym("a", One(NewSym("b")), One(NewSym("d"))))
	if err := InstanceOf(NewModel(noC), gen); err == nil {
		t.Error("missing mandatory c should fail")
	}
	cTwice := NewPattern("I", NewSym("a", One(NewSym("c")), One(NewSym("c"))))
	if err := InstanceOf(NewModel(cTwice), gen); err == nil {
		t.Error("second c matches neither b nor d run")
	}
}

func TestVariableDomainRestriction(t *testing.T) {
	str := KindDomain(tree.KindString)
	gen := NewModel(NewPattern("G", NewSym("a", One(NewVar("X", str)))))
	if err := InstanceOf(NewModel(NewPattern("I", NewSym("a", One(NewConst(tree.String("ok")))))), gen); err != nil {
		t.Errorf("string constant should instantiate string var: %v", err)
	}
	if err := InstanceOf(NewModel(NewPattern("I", NewSym("a", One(NewConst(tree.Int(5)))))), gen); err == nil {
		t.Error("int constant should not instantiate string var")
	}
	if err := InstanceOf(NewModel(NewPattern("I", NewSym("a", One(NewVar("Y", str))))), gen); err != nil {
		t.Errorf("same-domain var should instantiate: %v", err)
	}
	if err := InstanceOf(NewModel(NewPattern("I", NewSym("a", One(NewVar("Y", AnyDomain))))), gen); err == nil {
		t.Error("wider-domain var should not instantiate")
	}
}

func TestSymbolDomainVariable(t *testing.T) {
	// Rule Web4's X : (set|bag).
	gen := NewModel(NewPattern("G", NewVar("X", SymbolDomain("set", "bag"), Star(NewVar("Y", AnyDomain)))))
	if err := InstanceOf(NewModel(NewPattern("I", NewSym("set", One(NewSym("e"))))), gen); err != nil {
		t.Errorf("set node should instantiate: %v", err)
	}
	if err := InstanceOf(NewModel(NewPattern("I", NewSym("list", One(NewSym("e"))))), gen); err == nil {
		t.Error("list node should not instantiate (set|bag) var")
	}
}

func TestConformsGroundData(t *testing.T) {
	store := GolfStore()
	c1, _ := store.Get(tree.PlainName("c1"))
	s1, _ := store.Get(tree.PlainName("s1"))
	schema := CarSchemaModel()
	if !Conforms(c1, store, schema, "Pcar") {
		t.Error("c1 should conform to Pcar")
	}
	if !Conforms(s1, store, schema, "Psup") {
		t.Error("s1 should conform to Psup")
	}
	if Conforms(c1, store, schema, "Psup") {
		t.Error("c1 should not conform to Psup")
	}
	// Break the data: zip becomes an int, Psup requires string.
	broken := store.Clone()
	bs1, _ := broken.Get(tree.PlainName("s1"))
	bs1.Children[0].Children[2].Children[0].Label = tree.Int(75005)
	if Conforms(bs1, broken, schema, "Psup") {
		t.Error("int zip should not conform to Psup (S3:string)")
	}
	// But it still conforms to the ODMG model's Pclass.
	if !Conforms(bs1, broken, ODMGModel(), "Pclass") {
		t.Error("int zip is still ODMG-compliant")
	}
}

func TestConformsCyclicData(t *testing.T) {
	// Cyclic ground data (car ↔ supplier with sells back-edge) must
	// not loop the checker. Build a cyclic schema and cyclic data.
	str := KindDomain(tree.KindString)
	pcar := NewPattern("Pcar",
		NewSym("class", One(NewSym("car",
			One(NewSym("name", One(NewVar("S1", str)))),
			One(NewSym("suppliers", One(NewSym("set", Star(NewPatRef("Psup", true)))))),
		))))
	psup := NewPattern("Psup",
		NewSym("class", One(NewSym("supplier",
			One(NewSym("name", One(NewVar("S1", str)))),
			One(NewSym("sells", One(NewSym("set", Star(NewPatRef("Pcar", true)))))),
		))))
	schema := NewModel(pcar, psup)

	store := tree.NewStore()
	store.Put(tree.PlainName("c1"), tree.Sym("class", tree.Sym("car",
		tree.Sym("name", tree.Str("Golf")),
		tree.Sym("suppliers", tree.Sym("set", tree.RefLeaf(tree.PlainName("s1")))),
	)))
	store.Put(tree.PlainName("s1"), tree.Sym("class", tree.Sym("supplier",
		tree.Sym("name", tree.Str("VW")),
		tree.Sym("sells", tree.Sym("set", tree.RefLeaf(tree.PlainName("c1")))),
	)))
	c1, _ := store.Get(tree.PlainName("c1"))
	if !Conforms(c1, store, schema, "Pcar") {
		t.Error("cyclic data should conform to cyclic schema")
	}
	if err := InstanceOf(StoreModel(store), schema); err != nil {
		t.Errorf("cyclic store should be instance of cyclic schema: %v", err)
	}
}

func TestBrochurePatternConformance(t *testing.T) {
	b1 := tree.Sym("brochure",
		tree.Sym("number", tree.IntLeaf(1)),
		tree.Sym("title", tree.Str("Golf")),
		tree.Sym("model", tree.IntLeaf(1995)),
		tree.Sym("desc", tree.Str("nice")),
		tree.Sym("spplrs",
			tree.Sym("supplier",
				tree.Sym("name", tree.Str("VW center")),
				tree.Sym("address", tree.Str("Bd Lenoir, Paris"))),
			tree.Sym("supplier",
				tree.Sym("name", tree.Str("VW2")),
				tree.Sym("address", tree.Str("Bd Leblanc, Paris")))),
	)
	if !Conforms(b1, nil, BrochureModel(), "Pbr") {
		t.Error("well-formed brochure should conform to Pbr")
	}
	// Drop a mandatory element.
	bad := tree.Sym("brochure",
		tree.Sym("number", tree.IntLeaf(1)),
		tree.Sym("title", tree.Str("Golf")),
	)
	if Conforms(bad, nil, BrochureModel(), "Pbr") {
		t.Error("incomplete brochure should not conform")
	}
}

func TestHTMLModelIsYatInstance(t *testing.T) {
	if err := InstanceOf(HTMLModel(), YatModel()); err != nil {
		t.Errorf("HTML model should be a Yat instance: %v", err)
	}
	if err := HTMLModel().Validate(); err != nil {
		t.Errorf("HTML model should validate: %v", err)
	}
}

func TestAllFixtureModelsValidate(t *testing.T) {
	for _, m := range []struct {
		name string
		m    *Model
	}{
		{"Yat", YatModel()},
		{"ODMG", ODMGModel()},
		{"CarSchema", CarSchemaModel()},
		{"Brochure", BrochureModel()},
		{"HTML", HTMLModel()},
		{"Golf", GolfModel()},
	} {
		if err := m.m.Validate(); err != nil {
			t.Errorf("%s: %v", m.name, err)
		}
	}
}

func TestInstantiationReflexive(t *testing.T) {
	// Every fixture model is an instance of itself.
	for _, m := range []*Model{YatModel(), ODMGModel(), CarSchemaModel(), BrochureModel()} {
		if err := InstanceOf(m, m); err != nil {
			t.Errorf("model not self-instance: %v", err)
		}
	}
}

func TestGroundPatternOnlyInstantiatesItself(t *testing.T) {
	// "A ground pattern can only be instantiated by itself."
	g1 := NewModel(NewPattern("g1", GroundTree(tree.Sym("a", tree.Str("x")))))
	g2 := NewModel(NewPattern("g2", GroundTree(tree.Sym("a", tree.Str("y")))))
	if err := InstanceOf(g1, g1); err != nil {
		t.Errorf("ground self-instance failed: %v", err)
	}
	if err := InstanceOf(g2, g1); err == nil {
		t.Error("distinct ground patterns should not instantiate each other")
	}
}

func TestTreeInstanceOfDirect(t *testing.T) {
	ti := GroundTree(tree.Sym("a", tree.Str("x")))
	tg := NewSym("a", Star(NewVar("V", AnyDomain)))
	if !TreeInstanceOf(nil, ti, nil, tg) {
		t.Error("direct tree instance check failed")
	}
	if TreeInstanceOf(nil, tg, nil, ti) {
		t.Error("reverse should fail")
	}
}

func TestPatternString(t *testing.T) {
	p := PsupPattern()
	s := p.String()
	for _, frag := range []string{"Psup =", "supplier", "S3 : string"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Pattern.String missing %q: %s", frag, s)
		}
	}
	u := NewPattern("U", NewSym("a"), NewSym("b"))
	if got := u.String(); got != "U = a | b" {
		t.Errorf("union String = %q", got)
	}
}

func TestPatternIsGround(t *testing.T) {
	if !NewPattern("g", GroundTree(tree.Sym("a"))).IsGround() {
		t.Error("ground pattern not detected")
	}
	if PcarPattern().IsGround() {
		t.Error("Pcar is not ground")
	}
	if NewPattern("u", GroundTree(tree.Sym("a")), GroundTree(tree.Sym("b"))).IsGround() {
		t.Error("union is not ground")
	}
}
