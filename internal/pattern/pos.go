package pattern

import "fmt"

// Pos is a source position (1-based line and column) in the YATL
// concrete syntax the node was parsed from. The zero Pos means the
// node was built programmatically and has no source location.
type Pos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

// IsValid reports whether the position refers to an actual source
// location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders the position as "line:col", or "-" when the node has
// no source location.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Before reports whether p sorts before q in source order; invalid
// positions sort last.
func (p Pos) Before(q Pos) bool {
	if p.IsValid() != q.IsValid() {
		return p.IsValid()
	}
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}
