package pattern

import (
	"math/rand"
	"testing"

	"yat/internal/tree"
)

// randomGroundTree builds a random data tree without references.
func randomGroundTree(r *rand.Rand, depth int) *tree.Node {
	labels := []tree.Value{
		tree.Symbol("class"), tree.Symbol("set"), tree.Symbol("a"),
		tree.String("x"), tree.Int(int64(r.Intn(100))),
		tree.Float(r.Float64()), tree.Bool(r.Intn(2) == 0),
	}
	n := tree.New(labels[r.Intn(len(labels))])
	if depth > 0 {
		for i := 0; i < r.Intn(4); i++ {
			n.Add(randomGroundTree(r, depth-1))
		}
	}
	return n
}

// randomStore builds a store whose later entries may reference
// earlier ones (acyclic sharing).
func randomStore(r *rand.Rand, n int) *tree.Store {
	s := tree.NewStore()
	var names []tree.Name
	for i := 0; i < n; i++ {
		t := randomGroundTree(r, 3)
		// Sprinkle references to earlier entries on some leaves.
		if len(names) > 0 {
			t.Walk(func(m *tree.Node) bool {
				if m.IsLeaf() && r.Intn(5) == 0 {
					m.Label = tree.Ref{Name: names[r.Intn(len(names))]}
				}
				return true
			})
		}
		name := tree.PlainName(string(rune('a'+i%26)) + string(rune('0'+i/26)))
		s.Put(name, t)
		names = append(names, name)
	}
	return s
}

// Property: every ground tree is an instance of the universal Yat
// model — "one can easily map anything into a tree" (§2).
func TestPropertyEverythingConformsToYat(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	yat := YatModel()
	for i := 0; i < 200; i++ {
		store := randomStore(r, 3)
		for _, e := range store.Entries() {
			if !Conforms(e.Tree, store, yat, "Yat") {
				t.Fatalf("iteration %d: tree does not conform to Yat: %s", i, e.Tree)
			}
		}
		if err := InstanceOf(StoreModel(store), yat); err != nil {
			t.Fatalf("iteration %d: store model not a Yat instance: %v", i, err)
		}
	}
}

// Property: GroundTree/ToNode round-trips every reference-free tree.
func TestPropertyGroundRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		n := randomGroundTree(r, 4)
		pt := GroundTree(n)
		if !pt.IsGround() {
			t.Fatalf("iteration %d: GroundTree not ground", i)
		}
		back, err := ToNode(pt)
		if err != nil {
			t.Fatalf("iteration %d: ToNode: %v", i, err)
		}
		if !n.Equal(back) {
			t.Fatalf("iteration %d: round trip changed tree", i)
		}
	}
}

// Property: ground patterns only instantiate themselves ("a ground
// pattern can only be instantiated by itself", §2).
func TestPropertyGroundSelfInstanceOnly(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		a := randomGroundTree(r, 3)
		b := randomGroundTree(r, 3)
		ma := NewModel(NewPattern("ga", GroundTree(a)))
		mb := NewModel(NewPattern("gb", GroundTree(b)))
		if err := InstanceOf(ma, ma); err != nil {
			t.Fatalf("iteration %d: ground not self-instance: %v", i, err)
		}
		if a.Equal(b) {
			continue
		}
		if err := InstanceOf(ma, mb); err == nil {
			t.Fatalf("iteration %d: distinct ground trees instantiate each other:\n%s\n%s", i, a, b)
		}
	}
}

// Property: instantiation is transitive on the sampled chain
// ground ⊑ schema ⊑ ODMG ⊑ Yat — if X ⊑ Y and Y ⊑ Z then X ⊑ Z for
// every pair in the chain.
func TestPropertyInstantiationTransitiveOnChain(t *testing.T) {
	chain := []*Model{GolfModel(), CarSchemaModel(), ODMGModel(), YatModel()}
	for i := 0; i < len(chain); i++ {
		for j := i; j < len(chain); j++ {
			if err := InstanceOf(chain[i], chain[j]); err != nil {
				t.Errorf("chain[%d] should instantiate chain[%d]: %v", i, j, err)
			}
		}
	}
}

// Property: domain SubsetOf is a preorder on a sampled set of
// domains, and Contains is monotone along it.
func TestPropertyDomainPreorder(t *testing.T) {
	domains := []Domain{
		AnyDomain,
		KindDomain(tree.KindString),
		KindDomain(tree.KindInt),
		KindDomain(tree.KindString, tree.KindInt),
		KindDomain(tree.KindString, tree.KindInt, tree.KindFloat, tree.KindBool),
		SymbolDomain("set"),
		SymbolDomain("set", "bag"),
		KindDomain(tree.KindSymbol),
	}
	values := []tree.Value{
		tree.String("x"), tree.Int(1), tree.Float(1.5), tree.Bool(true),
		tree.Symbol("set"), tree.Symbol("bag"), tree.Symbol("other"),
	}
	for _, d := range domains {
		if !d.SubsetOf(d) {
			t.Errorf("domain %s not reflexive", d)
		}
	}
	for _, a := range domains {
		for _, b := range domains {
			if !a.SubsetOf(b) {
				continue
			}
			// Monotonicity: everything in a is in b.
			for _, v := range values {
				if a.Contains(v) && !b.Contains(v) {
					t.Errorf("%s ⊆ %s but %v only in the subset", a, b, v)
				}
			}
			// Transitivity.
			for _, c := range domains {
				if b.SubsetOf(c) && !a.SubsetOf(c) {
					t.Errorf("transitivity violated: %s ⊆ %s ⊆ %s", a, b, c)
				}
			}
		}
	}
}

// Property: Intersect agrees with Contains on samples.
func TestPropertyIntersectSound(t *testing.T) {
	domains := []Domain{
		AnyDomain,
		KindDomain(tree.KindString),
		KindDomain(tree.KindString, tree.KindInt),
		SymbolDomain("set", "bag"),
		KindDomain(tree.KindSymbol),
	}
	values := []tree.Value{
		tree.String("x"), tree.Int(1), tree.Symbol("set"), tree.Symbol("zap"), tree.Bool(false),
	}
	for _, a := range domains {
		for _, b := range domains {
			m, ok := a.Intersect(b)
			for _, v := range values {
				both := a.Contains(v) && b.Contains(v)
				if !ok {
					if both {
						t.Errorf("%s ∩ %s reported empty but both contain %v", a, b, v)
					}
					continue
				}
				if both != m.Contains(v) {
					t.Errorf("(%s ∩ %s = %s).Contains(%v) = %v, want %v", a, b, m, v, m.Contains(v), both)
				}
			}
		}
	}
}

// Property: the conformance checker never panics and is stable on
// random stores with cycles.
func TestPropertyConformsStableWithCycles(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	model := CarSchemaModel()
	for i := 0; i < 100; i++ {
		store := randomStore(r, 4)
		// Introduce a cycle.
		if store.Len() >= 2 {
			names := store.Names()
			first, _ := store.Get(names[0])
			first.Walk(func(m *tree.Node) bool {
				if m.IsLeaf() {
					m.Label = tree.Ref{Name: names[len(names)-1]}
					return false
				}
				return true
			})
		}
		checker := NewConformanceChecker(store, model)
		for _, e := range store.Entries() {
			a := checker.Conforms(e.Tree, "Pcar")
			b := checker.Conforms(e.Tree, "Pcar")
			if a != b {
				t.Fatalf("iteration %d: conformance not deterministic", i)
			}
		}
	}
}
