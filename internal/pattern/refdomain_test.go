package pattern

import (
	"strings"
	"testing"

	"yat/internal/tree"
)

func TestRefDomainBasics(t *testing.T) {
	d := RefDomain("Psup")
	if !d.IsRefPattern() || d.IsPattern() || d.IsAny() {
		t.Errorf("classification wrong: %+v", d)
	}
	if d.String() != "&Psup" {
		t.Errorf("String = %q", d.String())
	}
	if d.Contains(tree.Ref{Name: tree.PlainName("s1")}) {
		t.Error("Contains cannot decide reference domains (needs a store)")
	}
	if !d.SubsetOf(AnyDomain) {
		t.Error("reference domains are label domains: &P ⊆ any")
	}
	if !d.SubsetOf(RefDomain("Psup")) || d.SubsetOf(RefDomain("Pcar")) {
		t.Error("ref-domain subset by name wrong")
	}
	if d.SubsetOf(PatternDomain("Psup")) || PatternDomain("Psup").SubsetOf(d) {
		t.Error("ref and plain pattern domains are distinct")
	}
	if m, ok := d.Intersect(RefDomain("Psup")); !ok || !m.IsRefPattern() {
		t.Error("ref ∩ same ref should succeed")
	}
	if _, ok := d.Intersect(PatternDomain("Psup")); ok {
		t.Error("ref ∩ plain pattern should fail")
	}
}

func TestRefDomainInstantiation(t *testing.T) {
	schema := CarSchemaModel()
	// A &Psup-typed variable instantiates Ptype (through the &Pclass
	// branch) and the &Psup leaf itself.
	inst := NewModel(NewPattern("I",
		NewSym("set", Star(NewVar("X", RefDomain("Psup"))))))
	inst = inst.Merge(schema)
	genViaPtype := NewModel(NewPattern("G",
		NewSym("set", Star(NewPatRef("Ptype", false))))).Merge(ODMGModel())
	if !PatternInstanceOf(inst, "I", genViaPtype, "G") {
		t.Error("&Psup variable should instantiate set -*> ^Ptype")
	}
	genViaRef := NewModel(NewPattern("G",
		NewSym("set", Star(NewPatRef("Psup", true))))).Merge(schema)
	if !PatternInstanceOf(inst, "I", genViaRef, "G") {
		t.Error("&Psup variable should instantiate set -*> &Psup")
	}
	// But not an atom position.
	genAtom := NewModel(NewPattern("G",
		NewSym("set", Star(NewVar("Y", KindDomain(tree.KindString))))))
	if PatternInstanceOf(inst, "I", genAtom, "G") {
		t.Error("&Psup variable should not instantiate a string position")
	}
}

func TestRefDomainAsGeneralSide(t *testing.T) {
	schema := CarSchemaModel()
	gen := NewModel(NewPattern("G",
		NewSym("set", Star(NewVar("X", RefDomain("Psup")))))).Merge(schema)
	// Ground references to conforming objects instantiate it.
	store := GolfStore()
	inst := StoreModel(store).Merge(schema)
	ground := NewPattern("Iref", GroundTree(tree.Sym("set",
		tree.RefLeaf(tree.PlainName("s1")))))
	inst.Add(ground)
	if !PatternInstanceOf(inst, "Iref", gen, "G") {
		t.Error("ground &s1 should instantiate a &Psup-typed variable")
	}
	// A non-reference does not.
	instBad := NewModel(NewPattern("Ibad", GroundTree(tree.Sym("set", tree.Str("x"))))).Merge(schema)
	if PatternInstanceOf(instBad, "Ibad", gen, "G") {
		t.Error("an atom should not instantiate a &Psup-typed variable")
	}
	// A &Psup pattern leaf does.
	instRef := NewModel(NewPattern("Ileaf",
		NewSym("set", Star(NewPatRef("Psup", true))))).Merge(schema)
	if !PatternInstanceOf(instRef, "Ileaf", gen, "G") {
		t.Error("&Psup leaf should instantiate a &Psup-typed variable")
	}
}

func TestModelAndPatternRendering(t *testing.T) {
	m := CarSchemaModel()
	s := m.String()
	if !strings.Contains(s, "Pcar = ") || !strings.Contains(s, "Psup = ") {
		t.Errorf("Model.String: %s", s)
	}
	// Occ.String covers every indicator.
	occs := map[Occ]string{
		OccOne: "->", OccStar: "-*>", OccGroup: "-{}>",
		OccOrdered: "-[...]>", OccIndex: "-#...>",
	}
	for occ, want := range occs {
		if occ.String() != want {
			t.Errorf("Occ(%d).String = %q, want %q", occ, occ.String(), want)
		}
	}
	if !strings.Contains(Occ(99).String(), "Occ(99)") {
		t.Error("unknown Occ rendering")
	}
	// Edge.String renders criteria and index forms.
	e1 := Ordered(NewVar("X", AnyDomain), "A", "B")
	if e1.String() != "-[A,B]> X" {
		t.Errorf("ordered edge String = %q", e1.String())
	}
	e2 := Index("I", NewSym("v"))
	if e2.String() != "-#I> v" {
		t.Errorf("index edge String = %q", e2.String())
	}
	// ConstArg display.
	a := ConstArg(tree.String("x"))
	if a.Display() != `"x"` {
		t.Errorf("ConstArg Display = %q", a.Display())
	}
}

func TestPatternRefsCollection(t *testing.T) {
	p := PcarPattern()
	refs := p.Union[0].PatternRefs()
	if len(refs) != 1 || refs[0].Name != "Psup" || !refs[0].Ref {
		t.Errorf("PatternRefs = %+v", refs)
	}
}

func TestTreeInstanceOfLooseDirect(t *testing.T) {
	gen := NewVar("Data", AnyDomain)
	inst := NewSym("anything", One(NewSym("deep")))
	if !TreeInstanceOfLoose(nil, inst, nil, gen) {
		t.Error("loose leaf var should match any subtree")
	}
	if TreeInstanceOf(nil, inst, nil, gen) {
		t.Error("strict leaf var should not match a subtree")
	}
}
