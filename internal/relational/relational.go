// Package relational implements the relational database substrate of
// the translation scenario (Figure 1): the car dealer company "stores
// information about its dealers in a relational system". It provides
// typed schemas, in-memory tables with insertion-ordered rows,
// primary keys, scans with predicates, and CSV import/export — enough
// for a wrapper to expose relational data to YAT and for workloads to
// be generated at benchmark scale.
package relational

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ColType is the type of a column.
type ColType uint8

// Column types.
const (
	TInt ColType = iota
	TString
	TFloat
	TBool
)

// String returns the SQL-ish name of the type.
func (t ColType) String() string {
	switch t {
	case TInt:
		return "integer"
	case TString:
		return "string"
	case TFloat:
		return "float"
	case TBool:
		return "boolean"
	default:
		return fmt.Sprintf("ColType(%d)", uint8(t))
	}
}

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a relation: its name, columns and optional primary
// key column.
type Schema struct {
	Name    string
	Columns []Column
	Key     string // primary key column name; empty = none
}

// NewSchema builds a schema; columns are "name:type" declarations
// (types: int, string, float, bool). The first column marked with a
// leading '*' becomes the primary key: "*sid:int".
func NewSchema(name string, cols ...string) (*Schema, error) {
	s := &Schema{Name: name}
	for _, c := range cols {
		key := false
		if strings.HasPrefix(c, "*") {
			key = true
			c = c[1:]
		}
		parts := strings.SplitN(c, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("relational: bad column declaration %q", c)
		}
		var t ColType
		switch parts[1] {
		case "int", "integer":
			t = TInt
		case "string", "text":
			t = TString
		case "float", "double":
			t = TFloat
		case "bool", "boolean":
			t = TBool
		default:
			return nil, fmt.Errorf("relational: unknown column type %q", parts[1])
		}
		s.Columns = append(s.Columns, Column{Name: parts[0], Type: t})
		if key {
			if s.Key != "" {
				return nil, fmt.Errorf("relational: schema %s has two key columns", name)
			}
			s.Key = parts[0]
		}
	}
	if len(s.Columns) == 0 {
		return nil, fmt.Errorf("relational: schema %s has no columns", name)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error.
func MustSchema(name string, cols ...string) *Schema {
	s, err := NewSchema(name, cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Col returns the index of a column.
func (s *Schema) Col(name string) (int, bool) {
	for i, c := range s.Columns {
		if c.Name == name {
			return i, true
		}
	}
	return -1, false
}

// String renders the schema in the paper's notation:
// suppliers[sid: integer, name: string, ...].
func (s *Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = c.Name + ": " + c.Type.String()
	}
	return s.Name + "[" + strings.Join(parts, ", ") + "]"
}

// Value is one relational field value. Exactly one of the fields is
// meaningful, per the column type; Null marks SQL NULL.
type Value struct {
	Null bool
	I    int64
	S    string
	F    float64
	B    bool
}

// IntV returns an integer value.
func IntV(i int64) Value { return Value{I: i} }

// StrV returns a string value.
func StrV(s string) Value { return Value{S: s} }

// FloatV returns a float value.
func FloatV(f float64) Value { return Value{F: f} }

// BoolV returns a boolean value.
func BoolV(b bool) Value { return Value{B: b} }

// NullV returns the NULL value.
func NullV() Value { return Value{Null: true} }

// Render formats the value for its column type.
func (v Value) Render(t ColType) string {
	if v.Null {
		return "NULL"
	}
	switch t {
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TString:
		return v.S
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TBool:
		return strconv.FormatBool(v.B)
	}
	return ""
}

// Equal compares two values under a column type.
func (v Value) Equal(o Value, t ColType) bool {
	if v.Null || o.Null {
		return v.Null && o.Null
	}
	switch t {
	case TInt:
		return v.I == o.I
	case TString:
		return v.S == o.S
	case TFloat:
		return v.F == o.F
	case TBool:
		return v.B == o.B
	}
	return false
}

// Row is one tuple.
type Row []Value

// Table is an in-memory relation: schema plus rows in insertion
// order, with a hash index on the primary key when one is declared.
type Table struct {
	Schema *Schema
	rows   []Row
	index  map[string]int // key render -> row position
}

// NewTable returns an empty table over the schema.
func NewTable(s *Schema) *Table {
	t := &Table{Schema: s}
	if s.Key != "" {
		t.index = map[string]int{}
	}
	return t
}

// Len reports the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Insert appends a row, enforcing arity, basic typing (NULLs pass)
// and key uniqueness.
func (t *Table) Insert(r Row) error {
	if len(r) != len(t.Schema.Columns) {
		return fmt.Errorf("relational: %s: row arity %d, want %d", t.Schema.Name, len(r), len(t.Schema.Columns))
	}
	if t.index != nil {
		ki, _ := t.Schema.Col(t.Schema.Key)
		k := r[ki].Render(t.Schema.Columns[ki].Type)
		if _, dup := t.index[k]; dup {
			return fmt.Errorf("relational: %s: duplicate key %s", t.Schema.Name, k)
		}
		t.index[k] = len(t.rows)
	}
	t.rows = append(t.rows, r)
	return nil
}

// MustInsert is Insert that panics on error.
func (t *Table) MustInsert(vals ...Value) {
	if err := t.Insert(Row(vals)); err != nil {
		panic(err)
	}
}

// Rows returns the rows in insertion order; the slice must not be
// modified.
func (t *Table) Rows() []Row { return t.rows }

// Lookup finds a row by primary key value.
func (t *Table) Lookup(key Value) (Row, bool) {
	if t.index == nil {
		return nil, false
	}
	ki, _ := t.Schema.Col(t.Schema.Key)
	i, ok := t.index[key.Render(t.Schema.Columns[ki].Type)]
	if !ok {
		return nil, false
	}
	return t.rows[i], true
}

// Select returns the rows satisfying the predicate.
func (t *Table) Select(pred func(Row) bool) []Row {
	var out []Row
	for _, r := range t.rows {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// Project returns the values of one column across all rows.
func (t *Table) Project(col string) ([]Value, error) {
	i, ok := t.Schema.Col(col)
	if !ok {
		return nil, fmt.Errorf("relational: %s has no column %s", t.Schema.Name, col)
	}
	out := make([]Value, len(t.rows))
	for j, r := range t.rows {
		out[j] = r[i]
	}
	return out, nil
}

// Database is a named set of tables.
type Database struct {
	names  []string
	tables map[string]*Table
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: map[string]*Table{}}
}

// Create adds an empty table for the schema.
func (db *Database) Create(s *Schema) (*Table, error) {
	if _, dup := db.tables[s.Name]; dup {
		return nil, fmt.Errorf("relational: table %s already exists", s.Name)
	}
	t := NewTable(s)
	db.tables[s.Name] = t
	db.names = append(db.names, s.Name)
	return t, nil
}

// MustCreate is Create that panics on error.
func (db *Database) MustCreate(s *Schema) *Table {
	t, err := db.Create(s)
	if err != nil {
		panic(err)
	}
	return t
}

// Table returns a table by name.
func (db *Database) Table(name string) (*Table, bool) {
	t, ok := db.tables[name]
	return t, ok
}

// Names returns the table names in creation order.
func (db *Database) Names() []string { return append([]string(nil), db.names...) }

// String lists the schemas.
func (db *Database) String() string {
	var b strings.Builder
	for _, n := range db.names {
		b.WriteString(db.tables[n].Schema.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// DealerSchemas returns the §3.2 schemas of the paper:
//
//	suppliers[sid: integer, name: string, city: string, address: string, tel: string]
//	cars[cid: integer, broch_num: integer]
//	sales[sid: integer, cid: integer, year: integer, sold: integer]
//
// (broch_num is integer here: the SGML wrapper types numeric PCDATA,
// so the Rule 3 join compares like with like.)
func DealerSchemas() (suppliers, cars, sales *Schema) {
	return MustSchema("suppliers", "*sid:int", "name:string", "city:string", "address:string", "tel:string"),
		MustSchema("cars", "*cid:int", "broch_num:int"),
		MustSchema("sales", "sid:int", "cid:int", "year:int", "sold:int")
}

// ParseCSV loads comma-separated rows into a table; values are parsed
// per the column types. Lines are trimmed; empty lines skipped. No
// quoting: the workloads we generate avoid commas in strings.
func (t *Table) ParseCSV(data string) error {
	for ln, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != len(t.Schema.Columns) {
			return fmt.Errorf("relational: %s line %d: %d fields, want %d",
				t.Schema.Name, ln+1, len(fields), len(t.Schema.Columns))
		}
		row := make(Row, len(fields))
		for i, f := range fields {
			f = strings.TrimSpace(f)
			if f == "NULL" {
				row[i] = NullV()
				continue
			}
			switch t.Schema.Columns[i].Type {
			case TInt:
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return fmt.Errorf("relational: %s line %d col %s: %v", t.Schema.Name, ln+1, t.Schema.Columns[i].Name, err)
				}
				row[i] = IntV(v)
			case TFloat:
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return fmt.Errorf("relational: %s line %d col %s: %v", t.Schema.Name, ln+1, t.Schema.Columns[i].Name, err)
				}
				row[i] = FloatV(v)
			case TBool:
				v, err := strconv.ParseBool(f)
				if err != nil {
					return fmt.Errorf("relational: %s line %d col %s: %v", t.Schema.Name, ln+1, t.Schema.Columns[i].Name, err)
				}
				row[i] = BoolV(v)
			default:
				row[i] = StrV(f)
			}
		}
		if err := t.Insert(row); err != nil {
			return err
		}
	}
	return nil
}

// CSV renders the table as comma-separated rows (no header).
func (t *Table) CSV() string {
	var b strings.Builder
	for _, r := range t.rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.Render(t.Schema.Columns[i].Type)
		}
		b.WriteString(strings.Join(parts, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedBy returns the rows ordered by a column (stable; NULLs
// first). The receiver is unchanged.
func (t *Table) SortedBy(col string) ([]Row, error) {
	i, ok := t.Schema.Col(col)
	if !ok {
		return nil, fmt.Errorf("relational: %s has no column %s", t.Schema.Name, col)
	}
	out := make([]Row, len(t.rows))
	copy(out, t.rows)
	typ := t.Schema.Columns[i].Type
	sort.SliceStable(out, func(a, b int) bool {
		va, vb := out[a][i], out[b][i]
		switch {
		case va.Null:
			return !vb.Null
		case vb.Null:
			return false
		}
		switch typ {
		case TInt:
			return va.I < vb.I
		case TString:
			return va.S < vb.S
		case TFloat:
			return va.F < vb.F
		case TBool:
			return !va.B && vb.B
		}
		return false
	})
	return out, nil
}
