package relational

import (
	"strings"
	"testing"
)

func TestNewSchema(t *testing.T) {
	s, err := NewSchema("suppliers", "*sid:int", "name:string", "rate:float", "active:bool")
	if err != nil {
		t.Fatal(err)
	}
	if s.Key != "sid" || len(s.Columns) != 4 {
		t.Errorf("schema = %+v", s)
	}
	if i, ok := s.Col("rate"); !ok || i != 2 {
		t.Errorf("Col(rate) = %d, %v", i, ok)
	}
	if _, ok := s.Col("none"); ok {
		t.Error("Col(none) found")
	}
	want := "suppliers[sid: integer, name: string, rate: float, active: boolean]"
	if s.String() != want {
		t.Errorf("String = %q, want %q", s.String(), want)
	}
}

func TestNewSchemaErrors(t *testing.T) {
	cases := [][]string{
		{"bad"},              // no type
		{"a:unknown"},        // unknown type
		{"*a:int", "*b:int"}, // two keys
		{},                   // no columns
	}
	for _, cols := range cases {
		if _, err := NewSchema("t", cols...); err == nil {
			t.Errorf("NewSchema(%v) should fail", cols)
		}
	}
}

func TestTableInsertAndLookup(t *testing.T) {
	s := MustSchema("sup", "*sid:int", "name:string")
	tb := NewTable(s)
	tb.MustInsert(IntV(1), StrV("VW"))
	tb.MustInsert(IntV(2), StrV("Audi"))
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	row, ok := tb.Lookup(IntV(2))
	if !ok || row[1].S != "Audi" {
		t.Errorf("Lookup = %v, %v", row, ok)
	}
	if _, ok := tb.Lookup(IntV(9)); ok {
		t.Error("Lookup(9) found")
	}
	// Duplicate key rejected.
	if err := tb.Insert(Row{IntV(1), StrV("dup")}); err == nil {
		t.Error("duplicate key accepted")
	}
	// Wrong arity rejected.
	if err := tb.Insert(Row{IntV(3)}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestSelectAndProject(t *testing.T) {
	s := MustSchema("sales", "sid:int", "sold:int")
	tb := NewTable(s)
	for i := int64(1); i <= 5; i++ {
		tb.MustInsert(IntV(i), IntV(i*10))
	}
	big := tb.Select(func(r Row) bool { return r[1].I > 25 })
	if len(big) != 3 {
		t.Errorf("Select = %d rows", len(big))
	}
	vals, err := tb.Project("sold")
	if err != nil || len(vals) != 5 || vals[2].I != 30 {
		t.Errorf("Project = %v, %v", vals, err)
	}
	if _, err := tb.Project("none"); err == nil {
		t.Error("Project(none) should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := MustSchema("mixed", "i:int", "s:string", "f:float", "b:bool")
	tb := NewTable(s)
	src := "1,hello,2.5,true\n2,world,-1.25,false\n3,NULL,NULL,NULL\n"
	if err := tb.ParseCSV(src); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 3 {
		t.Fatalf("Len = %d", tb.Len())
	}
	if !tb.Rows()[2][1].Null {
		t.Error("NULL not parsed")
	}
	out := tb.CSV()
	tb2 := NewTable(s)
	if err := tb2.ParseCSV(out); err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows() {
		for j := range tb.Rows()[i] {
			if !tb.Rows()[i][j].Equal(tb2.Rows()[i][j], s.Columns[j].Type) {
				t.Errorf("row %d col %d differs after round trip", i, j)
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	s := MustSchema("t", "i:int")
	for _, src := range []string{"notanint\n", "1,2\n", "true\n"} {
		tb := NewTable(s)
		if err := tb.ParseCSV(src); err == nil {
			t.Errorf("ParseCSV(%q) should fail", src)
		}
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	sup, cars, sales := DealerSchemas()
	db.MustCreate(sup)
	db.MustCreate(cars)
	db.MustCreate(sales)
	if len(db.Names()) != 3 {
		t.Fatalf("Names = %v", db.Names())
	}
	if _, err := db.Create(sup); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, ok := db.Table("suppliers"); !ok {
		t.Error("Table(suppliers) missing")
	}
	if !strings.Contains(db.String(), "suppliers[sid: integer") {
		t.Errorf("String = %q", db.String())
	}
}

func TestSortedBy(t *testing.T) {
	s := MustSchema("t", "n:string", "v:int")
	tb := NewTable(s)
	tb.MustInsert(StrV("zeta"), IntV(3))
	tb.MustInsert(StrV("alpha"), IntV(1))
	tb.MustInsert(NullV(), IntV(2))
	rows, err := tb.SortedBy("n")
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0][0].Null || rows[1][0].S != "alpha" || rows[2][0].S != "zeta" {
		t.Errorf("sorted order wrong: %v", rows)
	}
	// Original order intact.
	if tb.Rows()[0][0].S != "zeta" {
		t.Error("SortedBy mutated table")
	}
	if _, err := tb.SortedBy("none"); err == nil {
		t.Error("SortedBy(none) should fail")
	}
	byInt, _ := tb.SortedBy("v")
	if byInt[0][1].I != 1 || byInt[2][1].I != 3 {
		t.Errorf("int sort wrong: %v", byInt)
	}
}

func TestValueEqualAndRender(t *testing.T) {
	if !IntV(5).Equal(IntV(5), TInt) || IntV(5).Equal(IntV(6), TInt) {
		t.Error("int equality wrong")
	}
	if !NullV().Equal(NullV(), TString) || NullV().Equal(StrV(""), TString) {
		t.Error("null equality wrong")
	}
	if IntV(5).Render(TInt) != "5" || StrV("x").Render(TString) != "x" ||
		FloatV(2.5).Render(TFloat) != "2.5" || BoolV(true).Render(TBool) != "true" ||
		NullV().Render(TInt) != "NULL" {
		t.Error("render wrong")
	}
}
