package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"yat/internal/federate"
	"yat/internal/mediator"
	"yat/internal/serve/wire"
	"yat/internal/source"
	"yat/internal/workload"
	"yat/internal/yatl"
)

// newFederatedServer fronts an in-process federation with the serve
// pool: one router lane, cfg.Askers mode.
func newFederatedServer(t *testing.T, shards int) (*federate.Federation, *Server, string) {
	t.Helper()
	prog := yatl.MustParse(workload.SelectiveProgram(4))
	inputs := workload.BrochureStore(4, 2, 4, 11)
	fed, err := federate.New(federate.Config{
		Programs: []*yatl.Program{prog},
		Shards:   shards,
		Inputs:   inputs,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{
		Askers: []mediator.Asker{fed},
		Prog:   prog,
		Inputs: inputs,
	})
	return fed, s, ts.URL
}

func TestFederatedServerAsk(t *testing.T) {
	_, _, url := newFederatedServer(t, 2)
	resp, out := postAsk(t, url, AskRequest{Pattern: "X", Functors: []string{"Pview1"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Count == 0 {
		t.Fatal("federated ask returned no answers")
	}
	for _, a := range out.Answers {
		if !strings.HasPrefix(a.Name, "Pview1(") {
			t.Errorf("answer outside the asked functor: %s", a.Name)
		}
	}
}

func TestFederatedServerUnroutable(t *testing.T) {
	_, _, url := newFederatedServer(t, 2)
	resp, _ := postAsk(t, url, AskRequest{Pattern: "X", Functors: []string{"Pnope"}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != "unroutable_functor" {
		t.Errorf("code %q, want unroutable_functor", e.Code)
	}
}

func TestFederatedServerHealthzShards(t *testing.T) {
	_, _, url := newFederatedServer(t, 2)
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc wire.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" {
		t.Errorf("status %q, want ok", doc.Status)
	}
	if len(doc.Shards) != 2 {
		t.Fatalf("healthz lists %d shards, want 2: %+v", len(doc.Shards), doc.Shards)
	}
	for _, sh := range doc.Shards {
		if !sh.Healthy {
			t.Errorf("shard %s unhealthy at rest: %+v", sh.Name, sh)
		}
	}
}

func TestFederatedServerStatsShards(t *testing.T) {
	_, _, url := newFederatedServer(t, 2)
	if resp, _ := postAsk(t, url, AskRequest{Pattern: "X"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up ask status %d", resp.StatusCode)
	}
	resp, err := http.Get(url + "/stats?timing=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc wire.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Mediator.Shards) != 2 {
		t.Fatalf("stats list %d shards, want 2", len(doc.Mediator.Shards))
	}
	for _, sh := range doc.Mediator.Shards {
		if sh.Asks == 0 {
			t.Errorf("shard %s saw no asks after the warm-up", sh.Name)
		}
	}
	if doc.Server.Pool != 1 {
		t.Errorf("pool = %d, want 1 (the federation router is the lane)", doc.Server.Pool)
	}
}

func TestFederatedServerReloadUnsupported(t *testing.T) {
	fed, _, url := newFederatedServer(t, 2)
	resp, err := http.Post(url+"/admin/reload", "text/plain",
		strings.NewReader(workload.SelectiveProgram(2)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != "reload_unsupported" {
		t.Errorf("code %q, want reload_unsupported", e.Code)
	}
	// The federation kept serving the original program.
	if _, err := fed.Ask("X", "Pview4"); err != nil {
		t.Errorf("federation broken after rejected reload: %v", err)
	}
}

func TestFederatedServerRefreshUnsupported(t *testing.T) {
	prog := yatl.MustParse(workload.SelectiveProgram(2))
	inputs := workload.BrochureStore(2, 1, 2, 3)
	fed, err := federate.New(federate.Config{
		Programs: []*yatl.Program{prog}, Shards: 2, Inputs: inputs,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Declare a source so the name check passes and the lane-capability
	// check is what answers.
	_, ts := newTestServer(t, Config{
		Askers:  []mediator.Asker{fed},
		Prog:    prog,
		Sources: []source.Source{source.Static("src1", inputs)},
	})
	resp, err := http.Post(ts.URL+"/admin/refresh-source/src1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != "refresh_unsupported" {
		t.Errorf("code %q, want refresh_unsupported", e.Code)
	}
}

// TestAskKeysParameter pins the ?keys=1 contract the shard client
// relies on: keys appear when asked for, never otherwise.
func TestAskKeysParameter(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})
	resp, out := postAsk(t, ts.URL, AskRequest{Pattern: tagPattern, Functors: []string{"Pview1"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, a := range out.Answers {
		if a.Key != "" {
			t.Fatalf("key present without ?keys=1: %+v", a)
		}
	}
	// postAsk appends /ask itself; issue the keyed request directly.
	body := `{"pattern": "` + tagPattern + `", "functors": ["Pview1"]}`
	r, err := http.Post(ts.URL+"/ask?keys=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var keyed AskResponse
	if err := json.NewDecoder(r.Body).Decode(&keyed); err != nil {
		t.Fatal(err)
	}
	if keyed.Count == 0 {
		t.Fatal("keyed ask returned no answers")
	}
	for _, a := range keyed.Answers {
		if a.Key == "" {
			t.Fatalf("key missing under ?keys=1: %+v", a)
		}
		if !strings.Contains(a.Key, "\x00") {
			t.Errorf("key %q lacks the name/binding separator", a.Key)
		}
	}
}
