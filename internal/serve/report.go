// Aliases kept for source compatibility: the load-report schema moved
// to internal/serve/wire so the server, the federation's shard client
// and cmd/yatload share one definition of the protocol.
package serve

import (
	"yat/internal/serve/wire"
)

// LatencySummary is a latency distribution in milliseconds.
type LatencySummary = wire.LatencySummary

// LoadReport summarizes one sustained load-test window (warmup
// excluded).
type LoadReport = wire.LoadReport

var (
	// Percentile reads the p-quantile from a sorted latency slice.
	Percentile = wire.Percentile
	// Summarize condenses raw request latencies into the report's
	// distribution.
	Summarize = wire.Summarize
)
