// Package serve turns the mediator into what the paper says it is —
// a service. A Server fronts a pool of demand-driven mediators with
// an HTTP/JSON API:
//
//	POST /ask                        pattern query over the virtual target
//	GET  /functors                   Skolem functors of the target
//	GET  /stats                      pool-wide mediator.Stats (shared renderer)
//	GET  /explain                    an ask under a request-scoped EXPLAIN profile
//	GET  /healthz                    liveness + per-source health
//	POST /admin/reload               hot-swap a recompiled program
//	POST /admin/refresh-source/{name}  re-fetch one source, invalidate dependents
//
// Requests ride the existing functional-options API: AskContext
// carries the request context for cancellation, typed engine errors
// map onto stable JSON error codes and HTTP statuses, and tracing is
// strictly request-scoped — the pool's mediators run with a nil trace
// sink (the zero-overhead guarantee), while /ask?explain=1 and
// /explain build a fresh profile, and a fresh mediator under it, for
// that one request.
//
// The pool is N independent lanes over the same program and sources,
// assigned round-robin: each lane memoizes its own demand cache, so
// lanes warm independently but never contend on one cache lock.
// Admin operations apply to every lane; hot reload calls
// Mediator.Reload per lane, which swaps the program behind an atomic
// generation and carries warm cache state for unchanged rule slices
// across the swap.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"yat/internal/engine"
	"yat/internal/federate"
	"yat/internal/mediator"
	"yat/internal/serve/wire"
	"yat/internal/snapshot"
	"yat/internal/source"
	"yat/internal/trace"
	"yat/internal/tree"
	"yat/internal/yatl"
)

// Config assembles a Server.
type Config struct {
	// Askers, when set, are the pool lanes themselves — any
	// mediator.Asker: a federation router, remote shard clients, or
	// pre-built mediators. Prog then becomes optional (it still feeds
	// /explain and the healthz program name when given) and Pool is
	// ignored.
	Askers []mediator.Asker
	// Prog is the conversion program to serve. Required unless Askers
	// is set.
	Prog *yatl.Program
	// Inputs is the pre-materialized input store (may be nil when
	// Sources feed the mediators instead).
	Inputs *tree.Store
	// Sources are fault-tolerant live sources, shared by every lane.
	Sources []source.Source
	// Options are engine options applied to every lane (parallelism,
	// registry, ...). Trace sinks are rejected: tracing is
	// request-scoped, the pool always runs with a nil sink.
	Options []engine.Option
	// Demand selects demand-driven lanes (per-ask slicing + per-rule
	// caching). Serving wants this on; it defaults to on in New.
	Demand *bool
	// Pool is the number of mediator lanes (default 4).
	Pool int
	// DrainTimeout bounds the graceful drain of in-flight asks on
	// shutdown (default 10s).
	DrainTimeout time.Duration
	// SnapshotDir, when set, enables durable warm starts: New restores
	// every lane from <dir>/yatserve.snapshot.json when the file's
	// program and options hashes match what the server is about to
	// serve (any mismatch is logged and boots cold), and POST
	// /admin/snapshot persists the warmest lane back to it.
	SnapshotDir string
	// SnapshotOnDrain also writes a snapshot during graceful shutdown,
	// after in-flight asks drain.
	SnapshotOnDrain bool
	// Logf receives one-line operational logs (nil = silent).
	Logf func(format string, args ...any)
}

// SnapshotFile is the name of the snapshot inside Config.SnapshotDir.
const SnapshotFile = "yatserve.snapshot.json"

// Server is the long-running mediator service. Its pool lanes are
// Askers — local mediators, federation routers and remote shard
// clients are interchangeable behind the query interface.
type Server struct {
	cfg    Config
	demand bool
	pool   []mediator.Asker
	next   atomic.Uint64

	admin sync.Mutex // serializes reload/refresh across the pool

	// Durable warm-start state; snapPath is empty when disabled.
	snapPath     string
	snapMu       sync.Mutex // serializes writes; guards the fields below
	snapRestored bool
	snapFallback string
	snapSaves    int64
	snapSaveErr  string

	inflight atomic.Int64
	served   atomic.Int64
	failed   atomic.Int64
	reloads  atomic.Int64
	start    time.Time
}

// New builds a Server over a pool of mediators. It fails fast on a
// nil program or a traced option set instead of surprising the first
// request.
func New(cfg Config) (*Server, error) {
	if cfg.Prog == nil && len(cfg.Askers) == 0 {
		return nil, errors.New("serve: Config.Prog or Config.Askers is required")
	}
	if engine.NewOptions(cfg.Options...).Trace != nil {
		return nil, errors.New("serve: tracing is request-scoped; do not configure a pool-wide sink")
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{cfg: cfg, demand: cfg.Demand == nil || *cfg.Demand, start: time.Now()}
	if cfg.SnapshotDir != "" {
		s.snapPath = filepath.Join(cfg.SnapshotDir, SnapshotFile)
	}
	if len(cfg.Askers) > 0 {
		s.pool = append(s.pool, cfg.Askers...)
	} else {
		if cfg.Pool <= 0 {
			cfg.Pool = 4
		}
		for i := 0; i < cfg.Pool; i++ {
			s.pool = append(s.pool, mediator.New(cfg.Prog, cfg.Inputs, s.laneOptions(nil)...))
		}
	}
	if s.snapPath != "" {
		s.restoreSnapshot()
	}
	return s, nil
}

// restoreSnapshot warm-starts the pool from the snapshot file. Every
// failure — missing file, integrity, identity mismatch, a lane that
// cannot restore — is a logged fallback to the cold boot New already
// performed; the server comes up either fully warm or fully cold,
// never half-restored answering stale conversions from some lanes.
func (s *Server) restoreSnapshot() {
	fallback := func(reason, detail string) {
		s.snapFallback = reason
		s.cfg.Logf("yatserve: cold boot (%s): %s", reason, detail)
	}
	snap, err := snapshot.Read(s.snapPath)
	if err != nil {
		var lerr *snapshot.LoadError
		if errors.As(err, &lerr) {
			fallback(string(lerr.Reason), err.Error())
		} else {
			fallback(string(snapshot.ReasonCorrupt), err.Error())
		}
		return
	}
	restorers := make([]interface {
		Restore(*snapshot.Snapshot) error
	}, len(s.pool))
	for i, m := range s.pool {
		r, ok := m.(interface {
			Restore(*snapshot.Snapshot) error
		})
		if !ok {
			fallback("unsupported", "pool lanes do not support restore (remote or federated askers)")
			return
		}
		restorers[i] = r
	}
	for i, r := range restorers {
		if err := r.Restore(snap); err != nil {
			reason := "restore_error"
			var lerr *snapshot.LoadError
			if errors.As(err, &lerr) {
				reason = string(lerr.Reason)
			}
			if i > 0 {
				// Later-lane failures are config bugs (all lanes share program
				// and options); re-cool the already-warmed lanes.
				for _, m := range s.pool {
					if inv, ok := m.(interface{ Invalidate() }); ok {
						inv.Invalidate()
					}
				}
			}
			fallback(reason, err.Error())
			return
		}
	}
	s.snapRestored = true
	s.cfg.Logf("yatserve: warm start from %s (generation %d, %d cached rules)",
		s.snapPath, snap.Generation, len(snap.Payload.Rules))
}

// writeSnapshot persists the warmest lane (most cached rules — the
// pool's lanes warm independently, so one file holds the best
// available cache) to the snapshot path. Serialized by snapMu so a
// drain and an admin request cannot interleave their temp files.
func (s *Server) writeSnapshot() (*wire.SnapshotResponse, error) {
	var (
		warmest interface {
			Snapshot() (*snapshot.Snapshot, error)
		}
		warmth int = -1
	)
	for _, m := range s.pool {
		sn, ok := m.(interface {
			Snapshot() (*snapshot.Snapshot, error)
		})
		if !ok {
			continue
		}
		if n := m.Stats().CachedRules; n > warmth {
			warmest, warmth = sn, n
		}
	}
	if warmest == nil {
		return nil, errors.New("serve: pool lanes do not support snapshots (remote or federated askers)")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	snap, err := warmest.Snapshot()
	if err == nil {
		var n int
		if n, err = snapshot.Write(s.snapPath, snap); err == nil {
			s.snapSaves++
			s.snapSaveErr = ""
			s.cfg.Logf("yatserve: snapshot %s (generation %d, %d bytes)",
				s.snapPath, snap.Generation, n)
			return &wire.SnapshotResponse{Path: s.snapPath, Generation: snap.Generation, Bytes: n}, nil
		}
	}
	s.snapSaveErr = err.Error()
	s.cfg.Logf("yatserve: snapshot failed: %v", err)
	return nil, err
}

// snapshotStatus reports the warm-start state for /stats and
// /healthz; nil when snapshots are not configured.
func (s *Server) snapshotStatus() *wire.SnapshotStatus {
	if s.snapPath == "" {
		return nil
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return &wire.SnapshotStatus{
		Path:           s.snapPath,
		Restored:       s.snapRestored,
		FallbackReason: s.snapFallback,
		Saves:          s.snapSaves,
		LastSaveErr:    s.snapSaveErr,
	}
}

// laneOptions assembles one mediator's option list: the configured
// engine options, the serving mode, the shared sources, and (for
// request-scoped tracing only) a sink.
func (s *Server) laneOptions(sink trace.Sink) []engine.Option {
	opts := append([]engine.Option(nil), s.cfg.Options...)
	opts = append(opts, mediator.WithDemandDriven(s.demand))
	if len(s.cfg.Sources) > 0 {
		opts = append(opts, mediator.WithSources(s.cfg.Sources...))
	}
	if sink != nil {
		opts = append(opts, engine.WithTrace(sink))
	}
	return opts
}

// lane picks the next pool lane, round-robin.
func (s *Server) lane() mediator.Asker {
	return s.pool[s.next.Add(1)%uint64(len(s.pool))]
}

// program is the currently served program (construction or the most
// recent successful reload; every lane agrees outside an in-flight
// reload). Lanes that cannot report one — remote clients — fall back
// to the configured program, which may be nil.
func (s *Server) program() *yatl.Program {
	if p, ok := s.pool[0].(interface{ Program() *yatl.Program }); ok {
		if prog := p.Program(); prog != nil {
			return prog
		}
	}
	return s.cfg.Prog
}

// progName is the served program's display name, tolerating opaque
// lanes.
func (s *Server) progName() string {
	if p := s.program(); p != nil {
		return p.Name
	}
	return "(remote)"
}

// generationOf reads a lane's generation, through the optional
// interface when offered, else from its stats snapshot.
func generationOf(a mediator.Asker) int64 {
	if g, ok := a.(interface{ Generation() int64 }); ok {
		return g.Generation()
	}
	return a.Stats().Generation
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ask", s.handleAsk)
	mux.HandleFunc("GET /functors", s.handleFunctors)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /explain", s.handleExplain)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /admin/reload", s.handleReload)
	mux.HandleFunc("POST /admin/refresh-source/{name}", s.handleRefreshSource)
	mux.HandleFunc("POST /admin/snapshot", s.handleSnapshot)
	return mux
}

// ErrorCode maps an ask error onto its stable JSON error code and
// HTTP status. The codes are part of the wire contract: clients
// dispatch on them, so they only ever grow.
func ErrorCode(err error) (code string, status int) {
	var (
		parseErr   *yatl.ParseError
		safety     *engine.SafetyError
		unconv     *engine.ErrUnconverted
		nondet     *engine.NonDetError
		fixpoint   *engine.FixpointError
		fetch      *mediator.FetchError
		notFound   *mediator.NotFoundError
		unroutable *federate.UnroutableError
		fanout     *federate.FanoutError
	)
	switch {
	case err == nil:
		return "", http.StatusOK
	case errors.As(err, &parseErr):
		return "parse_error", http.StatusBadRequest
	case errors.As(err, &safety):
		return "safety_error", http.StatusUnprocessableEntity
	case errors.As(err, &unconv):
		return "unconverted", http.StatusUnprocessableEntity
	case errors.As(err, &nondet):
		return "nondeterministic", http.StatusUnprocessableEntity
	case errors.As(err, &fixpoint):
		return "fixpoint_diverged", http.StatusUnprocessableEntity
	case errors.As(err, &fetch):
		return "sources_unavailable", http.StatusServiceUnavailable
	case errors.As(err, &unroutable):
		return "unroutable_functor", http.StatusNotFound
	case errors.As(err, &fanout):
		return "shards_unavailable", http.StatusServiceUnavailable
	case errors.As(err, &notFound):
		return "not_found", http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout", http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return "canceled", http.StatusServiceUnavailable
	default:
		return "internal", http.StatusInternalServerError
	}
}

type errorBody = wire.ErrorBody

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code, status := ErrorCode(err)
	writeJSON(w, status, wire.ErrorResponse{
		Error: errorBody{Code: code, Message: err.Error()},
	})
}

// The request/response shapes live in internal/serve/wire, shared
// with the federation's shard client and cmd/yatload; the aliases
// keep this package's historical API surface.
type (
	// AskRequest is the POST /ask body.
	AskRequest = wire.AskRequest
	// AskAnswer is one answer on the wire.
	AskAnswer = wire.AskAnswer
	// AskResponse is the POST /ask (and GET /explain) response.
	AskResponse = wire.AskResponse
)

// wireAnswers renders answers for the wire; withKeys adds each
// answer's canonical merge key (?keys=1 — the shard client always
// asks, so a parent federation can merge by the producer's order).
func wireAnswers(answers []mediator.Answer, withKeys bool) []AskAnswer {
	out := make([]AskAnswer, 0, len(answers))
	for _, a := range answers {
		wa := AskAnswer{Name: a.Name.String()}
		if len(a.Binding) > 0 {
			wa.Binding = make(map[string]string, len(a.Binding))
			for k, v := range a.Binding {
				wa.Binding[k] = v.Display()
			}
		}
		if withKeys {
			wa.Key = a.MergeKey()
		}
		out = append(out, wa)
	}
	return out
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	var req AskRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	if err != nil {
		s.failed.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]errorBody{
			"error": {Code: "bad_request", Message: "body must be JSON: " + err.Error()}})
		return
	}
	if req.Pattern == "" {
		s.failed.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]errorBody{
			"error": {Code: "bad_request", Message: `"pattern" is required`}})
		return
	}
	if r.URL.Query().Get("explain") == "1" {
		s.explainAsk(w, r, req.Pattern, req.Functors)
		return
	}
	med := s.lane()
	answers, err := med.AskContext(r.Context(), req.Pattern, req.Functors...)
	if err != nil {
		s.failed.Add(1)
		writeError(w, err)
		return
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, AskResponse{
		Generation: generationOf(med),
		Count:      len(answers),
		Answers:    wireAnswers(answers, r.URL.Query().Get("keys") == "1"),
	})
}

// explainAsk serves one ask under a request-scoped profile: a fresh
// mediator over the current program with its own trace.Profile, so
// the EXPLAIN covers exactly this request (cold, slices and cache
// decisions visible) and the pool's nil-sink lanes stay untouched.
func (s *Server) explainAsk(w http.ResponseWriter, r *http.Request, pattern string, functors []string) {
	prog := s.program()
	if prog == nil {
		// Askers-only servers over remote lanes have no local program to
		// re-run under a profile.
		s.failed.Add(1)
		writeJSON(w, http.StatusNotImplemented, wire.ErrorResponse{
			Error: errorBody{Code: "explain_unavailable",
				Message: "EXPLAIN needs a local program; this server fronts opaque askers"}})
		return
	}
	timing := r.URL.Query().Get("timing") == "1"
	profile := trace.NewProfile()
	med := mediator.New(prog, s.cfg.Inputs, s.laneOptions(profile)...)
	answers, err := med.AskContext(r.Context(), pattern, functors...)
	if err != nil {
		s.failed.Add(1)
		writeError(w, err)
		return
	}
	data, err := profile.JSON(timing)
	if err != nil {
		s.failed.Add(1)
		writeError(w, err)
		return
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, AskResponse{
		Generation: med.Generation(),
		Count:      len(answers),
		Answers:    wireAnswers(answers, r.URL.Query().Get("keys") == "1"),
		Profile:    data,
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	q := r.URL.Query()
	pattern := q.Get("pattern")
	if pattern == "" {
		writeJSON(w, http.StatusBadRequest, map[string]errorBody{
			"error": {Code: "bad_request", Message: `"pattern" query parameter is required`}})
		return
	}
	var functors []string
	for _, f := range strings.Split(q.Get("functors"), ",") {
		if f = strings.TrimSpace(f); f != "" {
			functors = append(functors, f)
		}
	}
	s.explainAsk(w, r, pattern, functors)
}

func (s *Server) handleFunctors(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	med := s.lane()
	fs, err := med.Functors()
	if err != nil {
		s.failed.Add(1)
		writeError(w, err)
		return
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, wire.FunctorsResponse{
		Functors:   fs,
		Generation: generationOf(med),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	timing := r.URL.Query().Get("timing") != "0"
	views := make([]mediator.Stats, len(s.pool))
	for i, m := range s.pool {
		views[i] = m.Stats()
	}
	agg := mediator.Aggregate(views...)
	srv := wire.ServerStats{
		Pool:     len(s.pool),
		Inflight: s.inflight.Load(),
		Served:   s.served.Load(),
		Failed:   s.failed.Load(),
		Reloads:  s.reloads.Load(),
	}
	if timing {
		srv.UptimeMS = float64(time.Since(s.start)) / float64(time.Millisecond)
	}
	srv.Snapshot = s.snapshotStatus()
	writeJSON(w, http.StatusOK, wire.StatsResponse{
		Mediator: agg.View(timing),
		Server:   srv,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// The chain counters in a SourceStatus are shared across the pool,
	// but FetchErr and Entries describe one lane's most recent fetch —
	// and round-robin means any single lane may never have served an
	// ask. Fold every lane's view: a source is unhealthy if any lane's
	// latest fetch of it failed.
	views := make([]mediator.Stats, len(s.pool))
	for i, m := range s.pool {
		views[i] = m.Stats()
	}
	st := views[0]
	status := "ok"
	var sources []wire.SourceHealth
	if n := len(st.Sources); n > 0 {
		failing := 0
		for i, src := range st.Sources {
			h := wire.SourceHealth{Name: src.Name, Healthy: true, Breaker: src.BreakerState}
			for _, v := range views {
				lane := v.Sources[i]
				if lane.FetchErr != "" {
					h.Healthy = false
					if h.FetchErr == "" {
						h.FetchErr = lane.FetchErr
					}
				}
				if lane.Entries > h.Entries {
					h.Entries = lane.Entries
				}
			}
			if !h.Healthy {
				failing++
			}
			sources = append(sources, h)
		}
		switch failing {
		case 0:
		case n:
			status = "failing"
		default:
			status = "degraded"
		}
	}
	// A federated lane reports its children; a dead shard degrades the
	// service (partial answers) rather than failing it — that is the
	// point of the scatter-gather's fault isolation.
	var shards []wire.ShardHealth
	if n := len(st.Shards); n > 0 {
		failing := 0
		for _, sh := range st.Shards {
			h := wire.ShardHealth{Name: sh.Name, Healthy: sh.Healthy, Breaker: sh.Breaker, LastErr: sh.LastErr}
			if !h.Healthy {
				failing++
			}
			shards = append(shards, h)
		}
		switch {
		case failing == 0:
		case failing == n:
			status = "failing"
		case status == "ok":
			status = "degraded"
		}
	}
	code := http.StatusOK
	if status == "failing" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, wire.HealthResponse{
		Generation: st.Generation,
		Program:    s.progName(),
		Sources:    sources,
		Status:     status,
		Shards:     shards,
		Snapshot:   s.snapshotStatus(),
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]errorBody{
			"error": {Code: "bad_request", Message: err.Error()}})
		return
	}
	prog, err := yatl.Parse(string(body))
	if err != nil {
		writeError(w, err)
		return
	}
	// An empty body parses to an empty program; swapping that in would
	// silently wipe the served target.
	if len(prog.Rules) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]errorBody{
			"error": {Code: "bad_request", Message: "program has no rules"}})
		return
	}
	if err := engine.CheckSafety(prog); err != nil {
		writeError(w, err)
		return
	}
	// Check every lane supports reloading before mutating any: a mixed
	// pool must not end up half-swapped.
	reloaders := make([]interface{ Reload(*yatl.Program) }, len(s.pool))
	for i, m := range s.pool {
		rl, ok := m.(interface{ Reload(*yatl.Program) })
		if !ok {
			writeJSON(w, http.StatusNotImplemented, wire.ErrorResponse{
				Error: errorBody{Code: "reload_unsupported",
					Message: "pool lanes do not support hot reload (remote or federated askers)"}})
			return
		}
		reloaders[i] = rl
	}
	s.admin.Lock()
	for _, rl := range reloaders {
		rl.Reload(prog)
	}
	gen := generationOf(s.pool[0])
	s.admin.Unlock()
	s.reloads.Add(1)
	s.cfg.Logf("yatserve: reloaded program %q (%d rules), generation %d",
		prog.Name, len(prog.Rules), gen)
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": gen,
		"program":    prog.Name,
		"rules":      len(prog.Rules),
	})
}

func (s *Server) handleRefreshSource(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	known := false
	for _, src := range s.cfg.Sources {
		if src.Name() == name {
			known = true
			break
		}
	}
	if !known {
		writeJSON(w, http.StatusNotFound, map[string]errorBody{
			"error": {Code: "unknown_source", Message: fmt.Sprintf("no source named %q", name)}})
		return
	}
	refreshers := make([]interface {
		RefreshSource(context.Context, string) error
	}, len(s.pool))
	for i, m := range s.pool {
		rf, ok := m.(interface {
			RefreshSource(context.Context, string) error
		})
		if !ok {
			writeJSON(w, http.StatusNotImplemented, wire.ErrorResponse{
				Error: errorBody{Code: "refresh_unsupported",
					Message: "pool lanes do not support source refresh (remote or federated askers)"}})
			return
		}
		refreshers[i] = rf
	}
	s.admin.Lock()
	defer s.admin.Unlock()
	for _, rf := range refreshers {
		if err := rf.RefreshSource(r.Context(), name); err != nil {
			writeError(w, err)
			return
		}
	}
	s.cfg.Logf("yatserve: refreshed source %q", name)
	writeJSON(w, http.StatusOK, map[string]any{"refreshed": name})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.snapPath == "" {
		writeJSON(w, http.StatusNotImplemented, wire.ErrorResponse{
			Error: errorBody{Code: "snapshot_unconfigured",
				Message: "server was started without a snapshot directory"}})
		return
	}
	resp, err := s.writeSnapshot()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, wire.ErrorResponse{
			Error: errorBody{Code: "snapshot_failed", Message: err.Error()}})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Serve runs the HTTP service on the listener until ctx is cancelled,
// then drains: in-flight asks get up to DrainTimeout to finish before
// the server gives up on them. A clean drain returns nil.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	s.cfg.Logf("yatserve: listening on %s (pool %d, program %q)",
		ln.Addr(), len(s.pool), s.progName())
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.cfg.Logf("yatserve: draining %d in-flight asks (deadline %s)",
		s.inflight.Load(), s.cfg.DrainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(dctx)
	<-errc // Serve has returned http.ErrServerClosed
	if s.cfg.SnapshotOnDrain && s.snapPath != "" {
		// Persist the warm cache after the last ask finished, so the
		// snapshot covers everything this process learned.
		_, _ = s.writeSnapshot()
	}
	if err != nil {
		s.cfg.Logf("yatserve: drain incomplete: %v", err)
		return fmt.Errorf("serve: drain incomplete: %w", err)
	}
	s.cfg.Logf("yatserve: drained, %d asks served (%d failed)",
		s.served.Load(), s.failed.Load())
	return nil
}

// ListenAndServe is Serve over a fresh TCP listener on addr.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}
