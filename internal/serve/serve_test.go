package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"yat/internal/engine"
	"yat/internal/mediator"
	"yat/internal/source"
	"yat/internal/workload"
	"yat/internal/yatl"
)

// versionedSelective mirrors workload.SelectiveProgram with a version
// tag baked into each view's head, so an answer reveals which program
// edition produced it.
func versionedSelective(tags ...string) string {
	var sb strings.Builder
	sb.WriteString("program selective\n")
	for i, tag := range tags {
		fmt.Fprintf(&sb, `
rule View%d {
  head Pview%d(SN) = view < -> tag -> %q, -> name -> SN, -> city -> C >
  from Pbr = brochure < -> number -> Num, -> title -> T,
                        -> model -> Year, -> desc -> D,
                        -> spplrs -*> supplier < -> name -> SN,
                                                 -> address -> Add > >
  let C = city(Add)
}
`, i+1, i+1, tag)
	}
	return sb.String()
}

const tagPattern = `view < -> tag -> TAG, -> name -> N, -> city -> C >`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Prog == nil {
		cfg.Prog = yatl.MustParse(versionedSelective("v1", "v1"))
	}
	if cfg.Inputs == nil && len(cfg.Sources) == 0 {
		cfg.Inputs = workload.BrochureStore(6, 2, 5, 11)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postAsk(t *testing.T, url string, req AskRequest) (*http.Response, AskResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/ask", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	// Buffer the body so callers can re-read it (e.g. decodeError).
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	resp.Body = io.NopCloser(bytes.NewReader(data))
	var out AskResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func decodeError(t *testing.T, resp *http.Response) errorBody {
	t.Helper()
	defer resp.Body.Close()
	var out map[string]errorBody
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out["error"]
}

func TestAskEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 2})
	resp, out := postAsk(t, ts.URL, AskRequest{Pattern: tagPattern, Functors: []string{"Pview1"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Count == 0 || len(out.Answers) != out.Count {
		t.Fatalf("count %d, answers %d", out.Count, len(out.Answers))
	}
	if out.Generation != 1 {
		t.Fatalf("generation %d, want 1", out.Generation)
	}
	for _, a := range out.Answers {
		if !strings.HasPrefix(a.Name, "Pview1(") {
			t.Fatalf("answer outside the asked functor: %s", a.Name)
		}
		if a.Binding["TAG"] != `"v1"` {
			t.Fatalf("TAG binding %q, want %q", a.Binding["TAG"], `"v1"`)
		}
	}
	if out.Profile != nil {
		t.Fatal("unrequested profile in response")
	}
}

func TestAskErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	t.Run("bad-pattern", func(t *testing.T) {
		resp, _ := postAsk(t, ts.URL, AskRequest{Pattern: "view < -> oops"})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if e := decodeError(t, resp); e.Code != "parse_error" {
			t.Fatalf("code %q, want parse_error", e.Code)
		}
	})
	t.Run("missing-pattern", func(t *testing.T) {
		resp, _ := postAsk(t, ts.URL, AskRequest{})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if e := decodeError(t, resp); e.Code != "bad_request" {
			t.Fatalf("code %q, want bad_request", e.Code)
		}
	})
	t.Run("non-json-body", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/ask", "application/json", strings.NewReader("not json"))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if e := decodeError(t, resp); e.Code != "bad_request" {
			t.Fatalf("code %q, want bad_request", e.Code)
		}
	})
	t.Run("wrong-method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/ask")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", resp.StatusCode)
		}
	})
}

// ErrorCode is a wire contract; pin the full mapping.
func TestErrorCode(t *testing.T) {
	cases := []struct {
		err    error
		code   string
		status int
	}{
		{&yatl.ParseError{}, "parse_error", 400},
		{fmt.Errorf("wrap: %w", &yatl.ParseError{}), "parse_error", 400},
		{&engine.SafetyError{}, "safety_error", 422},
		{&engine.ErrUnconverted{}, "unconverted", 422},
		{&engine.NonDetError{}, "nondeterministic", 422},
		{&engine.FixpointError{}, "fixpoint_diverged", 422},
		{&mediator.FetchError{}, "sources_unavailable", 503},
		{context.DeadlineExceeded, "timeout", 504},
		{context.Canceled, "canceled", 503},
		{errors.New("boom"), "internal", 500},
	}
	for _, c := range cases {
		code, status := ErrorCode(c.err)
		if code != c.code || status != c.status {
			t.Errorf("ErrorCode(%T) = %q/%d, want %q/%d", c.err, code, status, c.code, c.status)
		}
	}
}

func TestFunctorsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/functors")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Generation int64    `json:"generation"`
		Functors   []string `json:"functors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	want := []string{"Pview1", "Pview2"}
	if fmt.Sprint(out.Functors) != fmt.Sprint(want) {
		t.Fatalf("functors %v, want %v", out.Functors, want)
	}
}

// The stats parity contract: GET /stats renders the pool's aggregated
// mediator.Stats through the same StatsView renderer yatprof -stats
// uses, so a pool-of-one server and a directly driven mediator report
// byte-identical documents for the same program and ask sequence.
func TestStatsParity(t *testing.T) {
	prog := yatl.MustParse(versionedSelective("v1", "v1"))
	inputs := workload.BrochureStore(6, 2, 5, 11)
	_, ts := newTestServer(t, Config{Prog: prog, Inputs: inputs, Pool: 1})

	ref := mediator.New(prog, inputs, mediator.WithDemandDriven(true))
	asks := []struct {
		pattern  string
		functors []string
	}{
		{tagPattern, []string{"Pview1"}},
		{tagPattern, []string{"Pview1"}}, // warm repeat
		{tagPattern, nil},
	}
	for _, a := range asks {
		if resp, _ := postAsk(t, ts.URL, AskRequest{Pattern: a.pattern, Functors: a.functors}); resp.StatusCode != 200 {
			t.Fatalf("ask status %d", resp.StatusCode)
		}
		if _, err := ref.Ask(a.pattern, a.functors...); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(ts.URL + "/stats?timing=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Mediator json.RawMessage `json:"mediator"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Stats().JSON(false)
	if err != nil {
		t.Fatal(err)
	}
	var got, wantNorm any
	if err := json.Unmarshal(doc.Mediator, &got); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(want, &wantNorm); err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(wantNorm)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("server /stats diverges from the shared renderer\n got: %s\nwant: %s", gotJSON, wantJSON)
	}
}

// Request-scoped tracing: explain requests carry an EXPLAIN profile
// covering exactly that request, and the pool's lanes keep serving
// untraced (the profile of a later plain ask is absent again).
func TestExplain(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// POST /ask?explain=1 returns the answers plus a request-scoped
	// profile.
	body, _ := json.Marshal(AskRequest{Pattern: tagPattern, Functors: []string{"Pview1"}})
	resp, err := http.Post(ts.URL+"/ask?explain=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out AskResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || out.Count == 0 || out.Profile == nil {
		t.Fatalf("ask?explain=1: status=%d count=%d profile=%v",
			resp.StatusCode, out.Count, out.Profile != nil)
	}

	// GET /explain is the query-string form of the same thing.
	u := ts.URL + "/explain?functors=Pview1&pattern=" + url.QueryEscape(tagPattern)
	resp2, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out2 AskResponse
	if err := json.NewDecoder(resp2.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if out2.Count != out.Count || out2.Profile == nil {
		t.Fatalf("explain: count=%d (want %d) profile=%v", out2.Count, out.Count, out2.Profile != nil)
	}
	var profile struct {
		Rules []struct {
			Rule string `json:"rule"`
		} `json:"rules"`
	}
	if err := json.Unmarshal(out2.Profile, &profile); err != nil {
		t.Fatal(err)
	}
	if len(profile.Rules) == 0 {
		t.Fatal("explain profile has no rule lines")
	}

	// A plain ask afterwards carries no profile: tracing never leaks
	// into the pool lanes.
	resp3, out3 := postAsk(t, ts.URL, AskRequest{Pattern: tagPattern})
	if resp3.StatusCode != 200 || out3.Profile != nil {
		t.Fatalf("plain ask after explain: status=%d profile=%v", resp3.StatusCode, out3.Profile != nil)
	}
}

func TestHealthzAndRefresh(t *testing.T) {
	prog := yatl.MustParse(versionedSelective("v1"))
	parts := workload.SplitStore(workload.BrochureStore(6, 2, 5, 11), 2)
	flaky := source.NewFault("src2", parts[1])
	cfg := Config{
		Prog:    prog,
		Sources: []source.Source{source.Static("src1", parts[0]), flaky},
	}
	s, ts := newTestServer(t, cfg)
	_ = s

	health := func() (int, map[string]any) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	// Before any ask: no fetches yet, all sources count as healthy.
	if code, out := health(); code != 200 || out["status"] != "ok" {
		t.Fatalf("initial health: %d %v", code, out)
	}

	if resp, _ := postAsk(t, ts.URL, AskRequest{Pattern: tagPattern}); resp.StatusCode != 200 {
		t.Fatalf("ask status %d", resp.StatusCode)
	}
	if code, out := health(); code != 200 || out["status"] != "ok" {
		t.Fatalf("healthy: %d %v", code, out)
	}

	// Break src2, refresh it through the admin endpoint: the next
	// health probe shows the degradation after a failing ask fetch.
	flaky.SetErr(errors.New("src2 down"))
	req, _ := http.NewRequest("POST", ts.URL+"/admin/refresh-source/src2", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("refresh status %d", resp.StatusCode)
	}
	if resp, _ := postAsk(t, ts.URL, AskRequest{Pattern: tagPattern}); resp.StatusCode != 200 {
		t.Fatalf("degraded ask status %d", resp.StatusCode)
	}
	code, out := health()
	if code != 200 || out["status"] != "degraded" {
		t.Fatalf("degraded health: %d %v", code, out)
	}

	// Unknown source name is a 404 with a stable code.
	req, _ = http.NewRequest("POST", ts.URL+"/admin/refresh-source/nope", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown source: status %d, want 404", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != "unknown_source" {
		t.Fatalf("code %q, want unknown_source", e.Code)
	}
}

// Hot reload over HTTP, racing live asks at several engine
// parallelism settings: every response is entirely one program
// edition (one tag), the old or the new — never a mix.
func TestReloadRaceOverHTTP(t *testing.T) {
	editions := []string{
		versionedSelective("v1", "v1"),
		versionedSelective("v2", "v2"),
	}
	for _, par := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			_, ts := newTestServer(t, Config{
				Prog:    yatl.MustParse(editions[0]),
				Inputs:  workload.BrochureStore(6, 2, 5, 11),
				Options: []engine.Option{engine.WithParallelism(par)},
				Pool:    2,
			})
			const asksPerWorker = 25
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < asksPerWorker; i++ {
						resp, out := postAsk(t, ts.URL, AskRequest{Pattern: tagPattern})
						if resp.StatusCode != 200 {
							t.Errorf("ask status %d", resp.StatusCode)
							return
						}
						tags := map[string]bool{}
						for _, a := range out.Answers {
							tags[a.Binding["TAG"]] = true
						}
						if len(tags) != 1 {
							t.Errorf("mixed-generation response: %v", tags)
							return
						}
					}
				}()
			}
			go func() {
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					i++
					resp, err := http.Post(ts.URL+"/admin/reload", "text/plain",
						strings.NewReader(editions[i%2]))
					if err != nil {
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}()
			wg.Wait()
			close(stop)
		})
	}
}

func TestReloadRejectsBadPrograms(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/admin/reload", "text/plain", strings.NewReader("program broken\nrule {"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != "parse_error" {
		t.Fatalf("code %q, want parse_error", e.Code)
	}
	// An empty body parses, but swapping in a zero-rule program would
	// wipe the served target; it is refused too.
	resp, err = http.Post(ts.URL+"/admin/reload", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty reload status %d, want 400", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != "bad_request" {
		t.Fatalf("empty reload code %q, want bad_request", e.Code)
	}
	// The pool still serves the original program.
	if got := s.program().Name; got != "selective" {
		t.Fatalf("program swapped to %q on a failed reload", got)
	}
	if resp, _ := postAsk(t, ts.URL, AskRequest{Pattern: tagPattern}); resp.StatusCode != 200 {
		t.Fatalf("ask after failed reload: %d", resp.StatusCode)
	}
}

// Graceful shutdown: cancelling the serve context drains in-flight
// asks (the slow ask completes with its answer, nothing is dropped)
// and leaks no goroutines — the same leak idiom the flaky-source soak
// pins.
func TestGracefulDrain(t *testing.T) {
	baseline := runtime.NumGoroutine()

	prog := yatl.MustParse(versionedSelective("v1"))
	inputs := workload.BrochureStore(6, 2, 5, 11)
	slow := source.NewFault("slow", inputs, source.Step{Latency: 150 * time.Millisecond}).Loop(true)
	s, err := New(Config{Prog: prog, Sources: []source.Source{slow}, Pool: 1,
		DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	// Launch the slow in-flight ask, then pull the plug mid-flight.
	askDone := make(chan error, 1)
	go func() {
		resp, out := postAsk(t, base, AskRequest{Pattern: tagPattern})
		if resp.StatusCode != 200 {
			askDone <- fmt.Errorf("status %d", resp.StatusCode)
			return
		}
		if out.Count == 0 {
			askDone <- errors.New("drained ask lost its answers")
			return
		}
		askDone <- nil
	}()
	time.Sleep(50 * time.Millisecond) // let the ask reach the slow fetch
	cancel()

	if err := <-askDone; err != nil {
		t.Fatalf("in-flight ask: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestPercentiles(t *testing.T) {
	lat := make([]time.Duration, 100)
	for i := range lat {
		lat[i] = time.Duration(i+1) * time.Millisecond // 1..100ms
	}
	sum := Summarize(lat)
	if sum.P50Ms != 50 || sum.P95Ms != 95 || sum.P99Ms != 99 || sum.MaxMs != 100 {
		t.Fatalf("percentiles: %+v", sum)
	}
	if sum.MeanMs != 50.5 {
		t.Fatalf("mean %v, want 50.5", sum.MeanMs)
	}
	if got := Percentile(nil, 99); got != 0 {
		t.Fatalf("empty percentile %v", got)
	}
}
