package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"yat/internal/serve/wire"
	"yat/internal/snapshot"
	"yat/internal/workload"
	"yat/internal/yatl"
)

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func snapStatus(t *testing.T, baseURL string) *wire.SnapshotStatus {
	t.Helper()
	var stats wire.StatsResponse
	getJSON(t, baseURL+"/stats?timing=0", &stats)
	return stats.Server.Snapshot
}

func snapConfig(dir string) Config {
	return Config{
		Prog:        yatl.MustParse(versionedSelective("v1", "v1")),
		Inputs:      workload.BrochureStore(6, 2, 5, 11),
		Pool:        2,
		SnapshotDir: dir,
	}
}

// The serve-level warm-start cycle: cold boot (missing snapshot is a
// logged fallback), warm traffic, POST /admin/snapshot, then a
// "restarted" server over the same directory comes up restored and
// answers the first ask byte-identically from cache.
func TestServerSnapshotRestart(t *testing.T) {
	dir := t.TempDir()

	_, ts := newTestServer(t, snapConfig(dir))
	st := snapStatus(t, ts.URL)
	if st == nil || st.Restored || st.FallbackReason != string(snapshot.ReasonMissing) {
		t.Fatalf("cold boot status %+v, want fallback %q", st, snapshot.ReasonMissing)
	}

	resp, cold := postAsk(t, ts.URL, AskRequest{Pattern: tagPattern, Functors: []string{"Pview1"}})
	if resp.StatusCode != http.StatusOK || cold.Count == 0 {
		t.Fatalf("warm-up ask failed: %d %+v", resp.StatusCode, cold)
	}

	sresp, err := http.Post(ts.URL+"/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var saved wire.SnapshotResponse
	if err := json.NewDecoder(sresp.Body).Decode(&saved); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK || saved.Bytes == 0 {
		t.Fatalf("admin snapshot: %d %+v", sresp.StatusCode, saved)
	}
	if saved.Path != filepath.Join(dir, SnapshotFile) {
		t.Fatalf("snapshot path %q", saved.Path)
	}
	if st := snapStatus(t, ts.URL); st.Saves != 1 {
		t.Fatalf("saves %d, want 1", st.Saves)
	}

	// "Restart": a fresh server over the same directory and config.
	s2, ts2 := newTestServer(t, snapConfig(dir))
	st = snapStatus(t, ts2.URL)
	if st == nil || !st.Restored || st.FallbackReason != "" {
		t.Fatalf("restart status %+v, want restored", st)
	}
	// /healthz carries the same status block.
	var health wire.HealthResponse
	getJSON(t, ts2.URL+"/healthz", &health)
	if health.Snapshot == nil || !health.Snapshot.Restored {
		t.Fatalf("healthz snapshot status %+v", health.Snapshot)
	}

	resp, warm := postAsk(t, ts2.URL, AskRequest{Pattern: tagPattern, Functors: []string{"Pview1"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored ask status %d", resp.StatusCode)
	}
	coldJSON, _ := json.Marshal(cold.Answers)
	warmJSON, _ := json.Marshal(warm.Answers)
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Fatalf("restored answers differ:\n cold %s\n warm %s", coldJSON, warmJSON)
	}
	// The first ask after restore is a demand-cache hit on the lane
	// that served it; no slice ran in this process.
	var stats wire.StatsResponse
	getJSON(t, ts2.URL+"/stats?timing=0", &stats)
	if stats.Mediator.CacheHits != 1 || stats.Mediator.CacheMisses != 0 {
		t.Fatalf("restored first ask: hits=%d misses=%d, want 1/0",
			stats.Mediator.CacheHits, stats.Mediator.CacheMisses)
	}
	if !stats.Mediator.Restored {
		t.Fatal("aggregated stats not marked restored")
	}
	_ = s2
}

// Every on-disk failure mode boots cold with its reason surfaced —
// never a panic, never stale answers.
func TestServerSnapshotFallbacks(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SnapshotFile)

	// Seed a valid snapshot by warming a donor server.
	_, ts := newTestServer(t, snapConfig(dir))
	if resp, _ := postAsk(t, ts.URL, AskRequest{Pattern: tagPattern, Functors: []string{"Pview1"}}); resp.StatusCode != http.StatusOK {
		t.Fatal("warm-up failed")
	}
	if resp, err := http.Post(ts.URL+"/admin/snapshot", "application/json", nil); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("seed snapshot: %v %v", err, resp)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, cfg Config, wantReason string) {
		t.Helper()
		_, ts := newTestServer(t, cfg)
		st := snapStatus(t, ts.URL)
		if st == nil || st.Restored || st.FallbackReason != wantReason {
			t.Fatalf("status %+v, want fallback %q", st, wantReason)
		}
		// The cold server still answers.
		if resp, out := postAsk(t, ts.URL, AskRequest{Pattern: tagPattern, Functors: []string{"Pview1"}}); resp.StatusCode != http.StatusOK || out.Count == 0 {
			t.Fatalf("cold-boot ask failed: %d", resp.StatusCode)
		}
	}

	t.Run("corrupt-checksum", func(t *testing.T) {
		tampered := bytes.Replace(pristine, []byte("v1"), []byte("vX"), 1)
		if bytes.Equal(tampered, pristine) {
			t.Fatal("tamper target not found")
		}
		if err := os.WriteFile(path, tampered, 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, snapConfig(dir), string(snapshot.ReasonChecksum))
	})

	t.Run("truncated", func(t *testing.T) {
		if err := os.WriteFile(path, pristine[:len(pristine)/3], 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, snapConfig(dir), string(snapshot.ReasonCorrupt))
	})

	t.Run("version-mismatch", func(t *testing.T) {
		bumped := bytes.Replace(pristine,
			[]byte(`"format": 1`), []byte(`"format": 99`), 1)
		if bytes.Equal(bumped, pristine) {
			t.Fatal("format field not found")
		}
		// Re-sign nothing: version is checked before the checksum.
		if err := os.WriteFile(path, bumped, 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, snapConfig(dir), string(snapshot.ReasonVersion))
	})

	t.Run("program-hash-mismatch", func(t *testing.T) {
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := snapConfig(dir)
		cfg.Prog = yatl.MustParse(versionedSelective("v2", "v1"))
		check(t, cfg, string(snapshot.ReasonProgramHash))
	})

	// A crash mid-write leaves a stray temp file next to the previous
	// complete snapshot; the boot restores from the intact file.
	t.Run("mid-write-crash", func(t *testing.T) {
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path+".tmp-dead", pristine[:10], 0o644); err != nil {
			t.Fatal(err)
		}
		_, ts := newTestServer(t, snapConfig(dir))
		if st := snapStatus(t, ts.URL); st == nil || !st.Restored {
			t.Fatalf("status %+v, want restored despite stray temp file", st)
		}
	})
}

func TestAdminSnapshotUnconfigured(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})
	resp, err := http.Post(ts.URL+"/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501", resp.StatusCode)
	}
	if eb := decodeError(t, resp); eb.Code != "snapshot_unconfigured" {
		t.Fatalf("code %q", eb.Code)
	}
	// No snapshot block in /stats or /healthz when unconfigured.
	if st := snapStatus(t, ts.URL); st != nil {
		t.Fatalf("unexpected snapshot status %+v", st)
	}
}

// A graceful drain with SnapshotOnDrain persists the warm cache; the
// next boot restores from it.
func TestDrainWritesSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := snapConfig(dir)
	cfg.SnapshotOnDrain = true
	cfg.DrainTimeout = 2 * time.Second
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	body, _ := json.Marshal(AskRequest{Pattern: tagPattern, Functors: []string{"Pview1"}})
	resp, err := http.Post(url+"/ask", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up ask status %d", resp.StatusCode)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	snap, err := snapshot.Read(filepath.Join(dir, SnapshotFile))
	if err != nil {
		t.Fatalf("no snapshot after drain: %v", err)
	}
	if len(snap.Payload.Rules) == 0 {
		t.Fatal("drain snapshot carries no cached rules")
	}
	if !strings.Contains(snap.Payload.Store, "Pview1") {
		t.Fatal("drain snapshot store misses the warmed functor")
	}
}
