// LoadReport is the machine-readable outcome of a yatload run. The
// checked-in BENCH_serve.json trajectory and the CI serve-bench gate
// both consume this schema, so it changes compatibly or not at all.
package wire

import (
	"math"
	"sort"
	"time"
)

// LatencySummary is a latency distribution in milliseconds.
type LatencySummary struct {
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// LoadReport summarizes one sustained load-test window (warmup
// excluded).
type LoadReport struct {
	URL             string         `json:"url"`
	Pattern         string         `json:"pattern"`
	Functors        []string       `json:"functors,omitempty"`
	Workers         int            `json:"workers"`
	WarmupSeconds   float64        `json:"warmup_seconds"`
	DurationSeconds float64        `json:"duration_seconds"`
	Requests        int64          `json:"requests"`
	Errors          int64          `json:"errors"`
	QPS             float64        `json:"qps"`
	Latency         LatencySummary `json:"latency"`
}

// Percentile reads the p-quantile (0 < p <= 100) from an ASCENDING
// sorted latency slice using nearest-rank — the smallest value with at
// least p percent of the samples at or below it, rank ceil(n·p/100) —
// zero on an empty slice.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(float64(len(sorted))*p/100)) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Summarize condenses raw request latencies (any order) into the
// report's distribution. The slice is sorted in place.
func Summarize(lat []time.Duration) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var total time.Duration
	for _, d := range lat {
		total += d
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencySummary{
		P50Ms:  ms(Percentile(lat, 50)),
		P95Ms:  ms(Percentile(lat, 95)),
		P99Ms:  ms(Percentile(lat, 99)),
		MeanMs: ms(total / time.Duration(len(lat))),
		MaxMs:  ms(lat[len(lat)-1]),
	}
}
