package wire

import (
	"testing"
	"time"
)

// TestPercentileNearestRank pins the whole small-n surface against
// the doc comment's definition: nearest-rank, rank = ceil(n·p/100),
// 1-indexed. The divergent cases are where the old round-half-up
// arithmetic picked rank round(n·p/100) instead — e.g. p95 of 11
// samples (10.45 → ceil 11, round 10) and p99 of 51 (50.49 → ceil
// 51, round 50).
func TestPercentileNearestRank(t *testing.T) {
	// seq(n) = [1ms, 2ms, ..., n ms], so the expected value IS the
	// expected 1-indexed rank.
	seq := func(n int) []time.Duration {
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = time.Duration(i+1) * time.Millisecond
		}
		return out
	}
	cases := []struct {
		n    int
		p    float64
		rank int
	}{
		{1, 50, 1}, {1, 99, 1}, {1, 100, 1},
		{2, 50, 1}, // ceil(1.0) = 1; round-half-up said 1 too, but by accident
		{2, 51, 2},
		{3, 50, 2},
		{4, 50, 2}, // ceil(2.0) = 2
		{4, 75, 3},
		{5, 50, 3},
		{10, 90, 9},
		{10, 95, 10},
		{11, 95, 11}, // 10.45: ceil 11, round-half-up 10 — the off-by-one
		{51, 99, 51}, // 50.49: ceil 51, round-half-up 50
		{100, 50, 50},
		{100, 99, 99},
		{100, 100, 100},
	}
	for _, c := range cases {
		got := Percentile(seq(c.n), c.p)
		want := time.Duration(c.rank) * time.Millisecond
		if got != want {
			t.Errorf("Percentile(n=%d, p=%g) = %v, want rank %d (%v)", c.n, c.p, got, c.rank, want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(empty) = %v, want 0", got)
	}
}

// A zero-request window condenses to an all-zero summary — no NaN,
// no Inf, no panic (the yatload exit-code-3 path serializes this).
func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s != (LatencySummary{}) {
		t.Errorf("Summarize(nil) = %+v, want zero", s)
	}
}
