// Package wire defines the HTTP/JSON types of the yatserve protocol,
// shared by the server (internal/serve), the federation's remote
// shard client (internal/federate) and the load driver (cmd/yatload).
// One definition means the three can never drift; the JSON field
// names are part of the wire contract, pinned by the byte-stability
// test, and only ever grow.
package wire

import (
	"encoding/json"

	"yat/internal/mediator"
)

// AskRequest is the POST /ask body.
type AskRequest struct {
	// Pattern is the query, in YATL concrete pattern syntax.
	Pattern string `json:"pattern"`
	// Functors optionally restricts the ask to these Skolem functors
	// (a demand-driven lane then materializes only their slices).
	Functors []string `json:"functors,omitempty"`
}

// AskAnswer is one answer on the wire.
type AskAnswer struct {
	// Name is the Skolem identity of the matched target object.
	Name string `json:"name"`
	// Binding maps each pattern variable to its value's display form.
	Binding map[string]string `json:"binding,omitempty"`
	// Key is the producer-computed canonical merge key
	// (mediator.Answer.MergeKey), present only when the request asked
	// for it (?keys=1). The federation's shard client always asks: the
	// parent merges shard streams by this key, so the global order is
	// the child's exact order even if a display form fails to
	// round-trip.
	Key string `json:"key,omitempty"`
}

// AskResponse is the POST /ask (and GET /explain) response.
type AskResponse struct {
	Generation int64       `json:"generation"`
	Count      int         `json:"count"`
	Answers    []AskAnswer `json:"answers"`
	// Profile is the request-scoped EXPLAIN profile, present only when
	// the request asked for it (?explain=1, or GET /explain).
	Profile json.RawMessage `json:"profile,omitempty"`
}

// ErrorBody is the error payload inside an ErrorResponse.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the envelope of every non-2xx JSON response.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// FunctorsResponse is the GET /functors response. Field order matches
// the historical document (keys were alphabetical when it was built
// from a map).
type FunctorsResponse struct {
	Functors   []string `json:"functors"`
	Generation int64    `json:"generation"`
}

// ServerStats is the server's own half of GET /stats; the mediator
// half is the shared mediator.StatsView renderer.
type ServerStats struct {
	Pool     int     `json:"pool"`
	Inflight int64   `json:"inflight"`
	Served   int64   `json:"served"`
	Failed   int64   `json:"failed"`
	Reloads  int64   `json:"reloads"`
	UptimeMS float64 `json:"uptime_ms,omitempty"`
	// Snapshot rides at the end, omitted when no snapshot directory is
	// configured, so historical documents are byte-identical.
	Snapshot *SnapshotStatus `json:"snapshot,omitempty"`
}

// SnapshotStatus is the durable warm-start status, present in GET
// /stats and GET /healthz only when the server was configured with a
// snapshot directory.
type SnapshotStatus struct {
	// Path is the snapshot file the server restores from and writes to.
	Path string `json:"path"`
	// Restored reports whether this process warm-started its lanes from
	// the file at boot.
	Restored bool `json:"restored"`
	// FallbackReason classifies why a boot fell back to cold when it
	// did (snapshot.Reason: missing, corrupt, checksum, version,
	// program_hash, options_hash).
	FallbackReason string `json:"fallback_reason,omitempty"`
	// Saves counts successful snapshot writes by this process (drain
	// and POST /admin/snapshot).
	Saves int64 `json:"saves"`
	// LastSaveErr is the most recent failed write's error, cleared by
	// the next successful write.
	LastSaveErr string `json:"last_save_err,omitempty"`
}

// SnapshotResponse is the POST /admin/snapshot response.
type SnapshotResponse struct {
	Path       string `json:"path"`
	Generation int64  `json:"generation"`
	Bytes      int    `json:"bytes"`
}

// StatsResponse is the GET /stats document. Mediator precedes Server
// to preserve the historical (alphabetical) key order byte-for-byte.
type StatsResponse struct {
	Mediator mediator.StatsView `json:"mediator"`
	Server   ServerStats        `json:"server"`
}

// SourceHealth is one source's entry in GET /healthz.
type SourceHealth struct {
	Name     string `json:"name"`
	Healthy  bool   `json:"healthy"`
	FetchErr string `json:"fetch_err,omitempty"`
	Breaker  string `json:"breaker,omitempty"`
	Entries  int    `json:"entries"`
}

// ShardHealth is one federation child's entry in GET /healthz,
// present only when the server fronts a federation.
type ShardHealth struct {
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`
	Breaker string `json:"breaker,omitempty"`
	LastErr string `json:"last_err,omitempty"`
}

// HealthResponse is the GET /healthz document. Field order preserves
// the historical (alphabetical) key order; Shards rides at the end,
// omitted for non-federated servers so old documents are unchanged.
type HealthResponse struct {
	Generation int64          `json:"generation"`
	Program    string         `json:"program"`
	Sources    []SourceHealth `json:"sources"`
	Status     string         `json:"status"`
	Shards     []ShardHealth  `json:"shards,omitempty"`
	// Snapshot rides at the end, omitted when no snapshot directory is
	// configured, so historical documents are byte-identical.
	Snapshot *SnapshotStatus `json:"snapshot,omitempty"`
}
