package wire

import (
	"encoding/json"
	"testing"

	"yat/internal/mediator"
)

// TestWireByteStability pins the JSON field names and order of every
// wire document. These bytes are the protocol: yatserve emits them,
// the shard client and yatload parse them, and the CI gates diff
// them. A failure here means a wire-contract break — add fields at
// the end with omitempty, never rename or reorder.
func TestWireByteStability(t *testing.T) {
	cases := []struct {
		name string
		doc  any
		want string
	}{
		{
			"ask_request",
			AskRequest{Pattern: "X", Functors: []string{"Psup"}},
			`{"pattern":"X","functors":["Psup"]}`,
		},
		{
			"ask_answer_bare",
			AskAnswer{Name: "Psup(\"VW\")"},
			`{"name":"Psup(\"VW\")"}`,
		},
		{
			"ask_answer_keyed",
			AskAnswer{Name: "Psup(\"VW\")", Binding: map[string]string{"N": `"VW"`}, Key: "k"},
			`{"name":"Psup(\"VW\")","binding":{"N":"\"VW\""},"key":"k"}`,
		},
		{
			"ask_response",
			AskResponse{Generation: 1, Count: 0, Answers: []AskAnswer{}},
			`{"generation":1,"count":0,"answers":[]}`,
		},
		{
			"error_envelope",
			ErrorResponse{Error: ErrorBody{Code: "parse_error", Message: "boom"}},
			`{"error":{"code":"parse_error","message":"boom"}}`,
		},
		{
			"functors",
			FunctorsResponse{Functors: []string{"Pcar"}, Generation: 2},
			`{"functors":["Pcar"],"generation":2}`,
		},
		{
			"server_stats",
			ServerStats{Pool: 4, Inflight: 1, Served: 2, Failed: 3, Reloads: 4},
			`{"pool":4,"inflight":1,"served":2,"failed":3,"reloads":4}`,
		},
		{
			"source_health",
			SourceHealth{Name: "s1", Healthy: true, Entries: 7},
			`{"name":"s1","healthy":true,"entries":7}`,
		},
		{
			"shard_health",
			ShardHealth{Name: "shard0", Healthy: false, Breaker: "open", LastErr: "down"},
			`{"name":"shard0","healthy":false,"breaker":"open","last_err":"down"}`,
		},
		{
			"health_plain",
			HealthResponse{Generation: 1, Program: "p", Sources: []SourceHealth{}, Status: "ok"},
			`{"generation":1,"program":"p","sources":[],"status":"ok"}`,
		},
		{
			"server_stats_snapshot",
			ServerStats{Pool: 1, Snapshot: &SnapshotStatus{
				Path: "/tmp/s.json", Restored: true, Saves: 2}},
			`{"pool":1,"inflight":0,"served":0,"failed":0,"reloads":0,` +
				`"snapshot":{"path":"/tmp/s.json","restored":true,"saves":2}}`,
		},
		{
			"snapshot_status_fallback",
			SnapshotStatus{Path: "/tmp/s.json", FallbackReason: "checksum",
				LastSaveErr: "disk full"},
			`{"path":"/tmp/s.json","restored":false,"fallback_reason":"checksum",` +
				`"saves":0,"last_save_err":"disk full"}`,
		},
		{
			"snapshot_response",
			SnapshotResponse{Path: "/tmp/s.json", Generation: 3, Bytes: 512},
			`{"path":"/tmp/s.json","generation":3,"bytes":512}`,
		},
		{
			"health_snapshot",
			HealthResponse{Generation: 1, Program: "p", Sources: []SourceHealth{}, Status: "ok",
				Snapshot: &SnapshotStatus{Path: "s", Restored: true, Saves: 1}},
			`{"generation":1,"program":"p","sources":[],"status":"ok",` +
				`"snapshot":{"path":"s","restored":true,"saves":1}}`,
		},
		{
			"health_federated",
			HealthResponse{Generation: 1, Program: "p", Sources: []SourceHealth{}, Status: "degraded",
				Shards: []ShardHealth{{Name: "shard0", Healthy: true}}},
			`{"generation":1,"program":"p","sources":[],"status":"degraded",` +
				`"shards":[{"name":"shard0","healthy":true}]}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := json.Marshal(tc.doc)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != tc.want {
				t.Errorf("wire bytes drifted:\n got %s\nwant %s", data, tc.want)
			}
		})
	}
}

// TestStatsResponseKeyOrder pins that the stats document keeps the
// historical key order: "mediator" before "server" (alphabetical, as
// when the document was built from a map).
func TestStatsResponseKeyOrder(t *testing.T) {
	data, err := json.Marshal(StatsResponse{})
	if err != nil {
		t.Fatal(err)
	}
	med := indexOf(data, `"mediator"`)
	srv := indexOf(data, `"server"`)
	if med < 0 || srv < 0 || med > srv {
		t.Errorf("key order drifted: %s", data)
	}
	// The mediator half round-trips through the shared view type.
	var doc struct {
		Mediator mediator.StatsView `json:"mediator"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
}

func indexOf(data []byte, sub string) int {
	for i := 0; i+len(sub) <= len(data); i++ {
		if string(data[i:i+len(sub)]) == sub {
			return i
		}
	}
	return -1
}
