package sgml

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Element is one node of an SGML document: a tag with either child
// elements or character data (the brochure DTD has no mixed content).
type Element struct {
	Name     string
	Children []*Element
	Text     string // character data for #PCDATA elements
}

// NewElement returns an element with children.
func NewElement(name string, children ...*Element) *Element {
	return &Element{Name: name, Children: children}
}

// TextElement returns a #PCDATA element.
func TextElement(name, text string) *Element {
	return &Element{Name: name, Text: text}
}

// IsText reports whether the element holds character data.
func (e *Element) IsText() bool { return len(e.Children) == 0 && e.Text != "" }

// Find returns the first child with the given tag.
func (e *Element) Find(name string) (*Element, bool) {
	for _, c := range e.Children {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// FindAll returns every child with the given tag.
func (e *Element) FindAll(name string) []*Element {
	var out []*Element
	for _, c := range e.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// String renders the element as markup.
func (e *Element) String() string {
	var b strings.Builder
	e.write(&b, 0, false)
	return b.String()
}

// Pretty renders the element with indentation.
func (e *Element) Pretty() string {
	var b strings.Builder
	e.write(&b, 0, true)
	return b.String()
}

func (e *Element) write(b *strings.Builder, depth int, pretty bool) {
	indent := ""
	if pretty {
		indent = strings.Repeat("  ", depth)
		b.WriteString(indent)
	}
	fmt.Fprintf(b, "<%s>", e.Name)
	if len(e.Children) == 0 {
		b.WriteString(Escape(e.Text))
	} else {
		if pretty {
			b.WriteByte('\n')
		}
		for _, c := range e.Children {
			c.write(b, depth+1, pretty)
			if pretty {
				b.WriteByte('\n')
			}
		}
		if pretty {
			b.WriteString(indent)
		}
	}
	fmt.Fprintf(b, "</%s>", e.Name)
}

// Escape encodes the SGML character entities.
func Escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}

// Unescape decodes the SGML character entities.
func Unescape(s string) string {
	r := strings.NewReplacer("&lt;", "<", "&gt;", ">", "&quot;", `"`, "&apos;", "'", "&amp;", "&")
	return r.Replace(s)
}

// ParseDocument reads one SGML document instance: nested tags with
// character data, comments skipped, entities decoded. A leading
// in-line DOCTYPE declaration (with its internal subset) is skipped —
// callers use ParseDTD for it.
func ParseDocument(src string) (*Element, error) {
	p := &docParser{src: src}
	p.skipSpaceAndComments()
	if strings.HasPrefix(p.src[p.off:], "<!DOCTYPE") {
		depth := 0
		for p.off < len(p.src) {
			switch p.src[p.off] {
			case '[':
				depth++
			case ']':
				depth--
			case '>':
				if depth == 0 {
					p.off++
					goto doctypeDone
				}
			}
			p.off++
		}
		return nil, p.errorf("unterminated DOCTYPE declaration")
	}
doctypeDone:
	p.skipSpaceAndComments()
	root, err := p.element()
	if err != nil {
		return nil, err
	}
	p.skipSpaceAndComments()
	if p.off < len(p.src) {
		return nil, p.errorf("trailing content after document element")
	}
	return root, nil
}

// MustParseDocument is ParseDocument that panics on error.
func MustParseDocument(src string) *Element {
	e, err := ParseDocument(src)
	if err != nil {
		panic(err)
	}
	return e
}

type docParser struct {
	src string
	off int
}

func (p *docParser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sgml: document offset %d: %s", p.off, fmt.Sprintf(format, args...))
}

func (p *docParser) skipSpaceAndComments() {
	for p.off < len(p.src) {
		if strings.HasPrefix(p.src[p.off:], "<!--") {
			end := strings.Index(p.src[p.off:], "-->")
			if end < 0 {
				p.off = len(p.src)
				return
			}
			p.off += end + 3
			continue
		}
		r, w := utf8.DecodeRuneInString(p.src[p.off:])
		if !unicode.IsSpace(r) {
			return
		}
		p.off += w
	}
}

func (p *docParser) element() (*Element, error) {
	if p.off >= len(p.src) || p.src[p.off] != '<' {
		return nil, p.errorf("expected start tag")
	}
	p.off++
	name, err := p.name()
	if err != nil {
		return nil, err
	}
	// Attributes are tolerated and skipped (the paper's DTD declares
	// none).
	for p.off < len(p.src) && p.src[p.off] != '>' {
		p.off++
	}
	if p.off >= len(p.src) {
		return nil, p.errorf("unterminated start tag <%s", name)
	}
	p.off++ // consume >
	e := &Element{Name: name}

	var text strings.Builder
	for {
		if p.off >= len(p.src) {
			return nil, p.errorf("unterminated element <%s>", name)
		}
		if strings.HasPrefix(p.src[p.off:], "<!--") {
			end := strings.Index(p.src[p.off:], "-->")
			if end < 0 {
				return nil, p.errorf("unterminated comment")
			}
			p.off += end + 3
			continue
		}
		if strings.HasPrefix(p.src[p.off:], "</") {
			p.off += 2
			closing, err := p.name()
			if err != nil {
				return nil, err
			}
			if closing != name {
				return nil, p.errorf("mismatched end tag </%s> for <%s>", closing, name)
			}
			if p.off >= len(p.src) || p.src[p.off] != '>' {
				return nil, p.errorf("unterminated end tag </%s", closing)
			}
			p.off++
			break
		}
		if p.src[p.off] == '<' {
			child, err := p.element()
			if err != nil {
				return nil, err
			}
			e.Children = append(e.Children, child)
			continue
		}
		start := p.off
		for p.off < len(p.src) && p.src[p.off] != '<' {
			p.off++
		}
		text.WriteString(p.src[start:p.off])
	}
	if len(e.Children) == 0 {
		e.Text = Unescape(strings.TrimSpace(text.String()))
	} else if strings.TrimSpace(text.String()) != "" {
		return nil, p.errorf("mixed content in <%s> is not supported", name)
	}
	return e, nil
}

func (p *docParser) name() (string, error) {
	start := p.off
	for p.off < len(p.src) {
		r, w := utf8.DecodeRuneInString(p.src[p.off:])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.' {
			p.off += w
			continue
		}
		break
	}
	if p.off == start {
		return "", p.errorf("expected tag name")
	}
	return p.src[start:p.off], nil
}

// Validate checks the document against the DTD: the root element must
// be the declared document type and every element's children must
// match its content model.
func Validate(doc *Element, dtd *DTD) error {
	if doc.Name != dtd.Root {
		return fmt.Errorf("sgml: document element <%s>, DTD declares <%s>", doc.Name, dtd.Root)
	}
	return validateElement(doc, dtd)
}

func validateElement(e *Element, dtd *DTD) error {
	model, ok := dtd.Element(e.Name)
	if !ok {
		return fmt.Errorf("sgml: element <%s> is not declared", e.Name)
	}
	switch model.Kind {
	case MPCData:
		if len(e.Children) > 0 {
			return fmt.Errorf("sgml: <%s> declared #PCDATA but has child elements", e.Name)
		}
	case MEmpty:
		if len(e.Children) > 0 || e.Text != "" {
			return fmt.Errorf("sgml: <%s> declared EMPTY but has content", e.Name)
		}
	case MAny:
		// anything goes
	default:
		names := make([]string, len(e.Children))
		for i, c := range e.Children {
			names[i] = c.Name
		}
		if e.Text != "" {
			return fmt.Errorf("sgml: <%s> has character data but its model is %s", e.Name, model)
		}
		if !matchModel(model, names) {
			return fmt.Errorf("sgml: children of <%s> (%s) do not match %s",
				e.Name, strings.Join(names, ", "), model)
		}
	}
	for _, c := range e.Children {
		if err := validateElement(c, dtd); err != nil {
			return err
		}
	}
	return nil
}

// matchModel checks a child-name sequence against a content model
// with backtracking.
func matchModel(m *Model, names []string) bool {
	ok, rest := matchOcc(m, names)
	return ok && len(rest) == 0
}

// matchOcc matches one model node including its occurrence indicator,
// returning the unconsumed suffix. Greedy with backtracking through
// the recursion.
func matchOcc(m *Model, names []string) (bool, []string) {
	switch m.Occ {
	case One:
		return matchOnce(m, names)
	case Optional:
		if ok, rest := matchOnce(m, names); ok {
			return true, rest
		}
		return true, names
	case ZeroOrMore, OneOrMore:
		count := 0
		rest := names
		for {
			ok, next := matchOnce(m, rest)
			if !ok || len(next) == len(rest) {
				break
			}
			rest = next
			count++
		}
		if m.Occ == OneOrMore && count == 0 {
			return false, names
		}
		return true, rest
	}
	return false, names
}

func matchOnce(m *Model, names []string) (bool, []string) {
	switch m.Kind {
	case MName:
		if len(names) > 0 && names[0] == m.Name {
			return true, names[1:]
		}
		return false, names
	case MSeq:
		rest := names
		for _, it := range m.Items {
			ok, next := matchOcc(it, rest)
			if !ok {
				return false, names
			}
			rest = next
		}
		return true, rest
	case MChoice:
		for _, it := range m.Items {
			if ok, rest := matchOcc(it, names); ok {
				return true, rest
			}
		}
		return false, names
	case MPCData, MEmpty:
		return len(names) == 0, names
	case MAny:
		return true, nil
	}
	return false, names
}
