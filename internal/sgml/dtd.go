// Package sgml implements the SGML substrate of the translation
// scenario (Figure 1): the car descriptions "the company sells" live
// in SGML documents governed by a DTD. The package parses DTDs
// (element declarations with content models), parses documents, and
// validates documents against their DTD — the services the SGML
// import wrapper builds on.
package sgml

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Occurrence is a content-model repetition indicator.
type Occurrence uint8

// The SGML occurrence indicators.
const (
	One        Occurrence = iota // exactly one
	ZeroOrMore                   // *
	OneOrMore                    // +
	Optional                     // ?
)

func (o Occurrence) String() string {
	switch o {
	case ZeroOrMore:
		return "*"
	case OneOrMore:
		return "+"
	case Optional:
		return "?"
	default:
		return ""
	}
}

// ModelKind discriminates content-model nodes.
type ModelKind uint8

// Content model node kinds.
const (
	MPCData ModelKind = iota // #PCDATA
	MEmpty                   // EMPTY
	MAny                     // ANY
	MName                    // element reference
	MSeq                     // (a, b, c)
	MChoice                  // (a | b | c)
)

// Model is a content model node.
type Model struct {
	Kind  ModelKind
	Name  string   // MName
	Items []*Model // MSeq, MChoice
	Occ   Occurrence
}

// String renders the model in DTD syntax.
func (m *Model) String() string {
	var body string
	switch m.Kind {
	case MPCData:
		body = "(#PCDATA)"
	case MEmpty:
		body = "EMPTY"
	case MAny:
		body = "ANY"
	case MName:
		body = m.Name
	case MSeq, MChoice:
		sep := ", "
		if m.Kind == MChoice {
			sep = " | "
		}
		parts := make([]string, len(m.Items))
		for i, it := range m.Items {
			parts[i] = it.String()
		}
		body = "(" + strings.Join(parts, sep) + ")"
	}
	return body + m.Occ.String()
}

// DTD is a parsed document type definition: the document root element
// and a content model per element, in declaration order.
type DTD struct {
	Root     string
	order    []string
	elements map[string]*Model
}

// Element returns the content model of an element.
func (d *DTD) Element(name string) (*Model, bool) {
	m, ok := d.elements[name]
	return m, ok
}

// Elements returns the declared element names in order.
func (d *DTD) Elements() []string { return append([]string(nil), d.order...) }

// String renders the DTD.
func (d *DTD) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "<!DOCTYPE %s [\n", d.Root)
	for _, n := range d.order {
		fmt.Fprintf(&b, "<!ELEMENT %s %s>\n", n, declString(d.elements[n]))
	}
	b.WriteString("]>\n")
	return b.String()
}

// declString renders a content model at declaration position, where
// a bare element reference must be parenthesized to parse back.
func declString(m *Model) string {
	if m.Kind == MName {
		return "(" + m.Name + ")" + m.Occ.String()
	}
	return m.String()
}

// ParseDTD reads a document type definition:
//
//	<!DOCTYPE brochure [
//	<!ELEMENT brochure (number, title, model, desc, spplrs)>
//	<!ELEMENT number   (#PCDATA)>
//	<!ELEMENT spplrs   (supplier)*>
//	...
//	]>
func ParseDTD(src string) (*DTD, error) {
	p := &dtdParser{src: src}
	p.skipSpace()
	if !p.consume("<!DOCTYPE") {
		return nil, p.errorf("expected <!DOCTYPE")
	}
	root, err := p.name()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.consume("[") {
		return nil, p.errorf("expected [ after document type name")
	}
	d := &DTD{Root: root, elements: map[string]*Model{}}
	for {
		p.skipSpace()
		if p.consume("]") {
			break
		}
		if !p.consume("<!ELEMENT") {
			return nil, p.errorf("expected <!ELEMENT or ]")
		}
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		model, err := p.model()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if !p.consume(">") {
			return nil, p.errorf("expected > closing element declaration for %s", name)
		}
		if _, dup := d.elements[name]; dup {
			return nil, p.errorf("element %s declared twice", name)
		}
		d.elements[name] = model
		d.order = append(d.order, name)
	}
	p.skipSpace()
	p.consume(">") // optional closing of the DOCTYPE
	p.skipSpace()
	if p.off < len(p.src) {
		return nil, p.errorf("trailing input after DTD")
	}
	if _, ok := d.elements[root]; !ok {
		return nil, fmt.Errorf("sgml: root element %s is not declared", root)
	}
	// Every referenced element must be declared.
	for _, n := range d.order {
		var missing string
		walkModel(d.elements[n], func(m *Model) {
			if m.Kind == MName {
				if _, ok := d.elements[m.Name]; !ok && missing == "" {
					missing = m.Name
				}
			}
		})
		if missing != "" {
			return nil, fmt.Errorf("sgml: element %s references undeclared element %s", n, missing)
		}
	}
	return d, nil
}

// MustParseDTD is ParseDTD that panics on error.
func MustParseDTD(src string) *DTD {
	d, err := ParseDTD(src)
	if err != nil {
		panic(err)
	}
	return d
}

func walkModel(m *Model, fn func(*Model)) {
	fn(m)
	for _, it := range m.Items {
		walkModel(it, fn)
	}
}

type dtdParser struct {
	src string
	off int
}

func (p *dtdParser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sgml: dtd offset %d: %s", p.off, fmt.Sprintf(format, args...))
}

func (p *dtdParser) skipSpace() {
	for p.off < len(p.src) {
		r, w := utf8.DecodeRuneInString(p.src[p.off:])
		if strings.HasPrefix(p.src[p.off:], "<!--") {
			end := strings.Index(p.src[p.off:], "-->")
			if end < 0 {
				p.off = len(p.src)
				return
			}
			p.off += end + 3
			continue
		}
		if !unicode.IsSpace(r) {
			return
		}
		p.off += w
	}
}

func (p *dtdParser) consume(tok string) bool {
	if strings.HasPrefix(p.src[p.off:], tok) {
		p.off += len(tok)
		return true
	}
	return false
}

func (p *dtdParser) name() (string, error) {
	p.skipSpace()
	start := p.off
	for p.off < len(p.src) {
		r, w := utf8.DecodeRuneInString(p.src[p.off:])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.' {
			p.off += w
			continue
		}
		break
	}
	if p.off == start {
		return "", p.errorf("expected name")
	}
	return p.src[start:p.off], nil
}

// model parses a content model.
func (p *dtdParser) model() (*Model, error) {
	p.skipSpace()
	if p.consume("EMPTY") {
		return &Model{Kind: MEmpty}, nil
	}
	if p.consume("ANY") {
		return &Model{Kind: MAny}, nil
	}
	if !p.consume("(") {
		return nil, p.errorf("expected ( starting content model")
	}
	return p.group()
}

// group parses the inside of a parenthesized group, including the
// closing parenthesis and an optional occurrence indicator.
func (p *dtdParser) group() (*Model, error) {
	var items []*Model
	sep := byte(0)
	for {
		p.skipSpace()
		var item *Model
		switch {
		case p.consume("#PCDATA"):
			item = &Model{Kind: MPCData}
		case p.consume("("):
			sub, err := p.group()
			if err != nil {
				return nil, err
			}
			item = sub
		default:
			n, err := p.name()
			if err != nil {
				return nil, err
			}
			item = &Model{Kind: MName, Name: n}
			item.Occ = p.occurrence()
		}
		items = append(items, item)
		p.skipSpace()
		switch {
		case p.consume(","):
			if sep == '|' {
				return nil, p.errorf("mixed , and | in one group")
			}
			sep = ','
		case p.consume("|"):
			if sep == ',' {
				return nil, p.errorf("mixed , and | in one group")
			}
			sep = '|'
		case p.consume(")"):
			occ := p.occurrence()
			if len(items) == 1 && items[0].Occ == One {
				// (x)* is the repetition of x itself.
				items[0].Occ = occ
				return items[0], nil
			}
			kind := MSeq
			if sep == '|' {
				kind = MChoice
			}
			return &Model{Kind: kind, Items: items, Occ: occ}, nil
		default:
			return nil, p.errorf("expected , | or ) in content model")
		}
	}
}

func (p *dtdParser) occurrence() Occurrence {
	switch {
	case p.consume("*"):
		return ZeroOrMore
	case p.consume("+"):
		return OneOrMore
	case p.consume("?"):
		return Optional
	default:
		return One
	}
}

// BrochureDTDSource is the paper's §3.1 brochure DTD.
const BrochureDTDSource = `<!DOCTYPE brochure [
<!ELEMENT brochure (number, title, model, desc, spplrs)>
<!ELEMENT number   (#PCDATA)>
<!ELEMENT title    (#PCDATA)>
<!ELEMENT model    (#PCDATA)>
<!ELEMENT desc     (#PCDATA)>
<!ELEMENT spplrs   (supplier)*>
<!ELEMENT supplier (name, address)>
<!ELEMENT name     (#PCDATA)>
<!ELEMENT address  (#PCDATA)>
]>`

// BrochureDTD returns the parsed brochure DTD.
func BrochureDTD() *DTD { return MustParseDTD(BrochureDTDSource) }
