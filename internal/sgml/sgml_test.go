package sgml

import (
	"strings"
	"testing"
)

func TestParseBrochureDTD(t *testing.T) {
	d := BrochureDTD()
	if d.Root != "brochure" {
		t.Errorf("root = %q", d.Root)
	}
	if len(d.Elements()) != 9 {
		t.Errorf("elements = %v", d.Elements())
	}
	br, _ := d.Element("brochure")
	if br.Kind != MSeq || len(br.Items) != 5 {
		t.Errorf("brochure model = %s", br)
	}
	sp, _ := d.Element("spplrs")
	if sp.Kind != MName || sp.Name != "supplier" || sp.Occ != ZeroOrMore {
		t.Errorf("spplrs model = %s (kind %d)", sp, sp.Kind)
	}
	num, _ := d.Element("number")
	if num.Kind != MPCData {
		t.Errorf("number model = %s", num)
	}
}

func TestDTDStringRoundTrip(t *testing.T) {
	d := BrochureDTD()
	d2, err := ParseDTD(d.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, d.String())
	}
	if d2.String() != d.String() {
		t.Errorf("round trip unstable:\n%s\nvs\n%s", d.String(), d2.String())
	}
}

func TestParseDTDConstructs(t *testing.T) {
	d := MustParseDTD(`<!DOCTYPE doc [
<!ELEMENT doc (head?, (para | list)+, tail)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT para (#PCDATA)>
<!ELEMENT list (para)+>
<!ELEMENT tail EMPTY>
]>`)
	doc, _ := d.Element("doc")
	if doc.Kind != MSeq || len(doc.Items) != 3 {
		t.Fatalf("doc model = %s", doc)
	}
	if doc.Items[0].Occ != Optional {
		t.Errorf("head should be optional: %s", doc)
	}
	if doc.Items[1].Kind != MChoice || doc.Items[1].Occ != OneOrMore {
		t.Errorf("choice group wrong: %s", doc.Items[1])
	}
	tail, _ := d.Element("tail")
	if tail.Kind != MEmpty {
		t.Errorf("tail should be EMPTY")
	}
}

func TestParseDTDErrors(t *testing.T) {
	cases := []string{
		``,
		`<!DOCTYPE x`,
		`<!DOCTYPE x [ <!ELEMENT x (y)> ]>`, // y undeclared
		`<!DOCTYPE x [ <!ELEMENT y (#PCDATA)> ]>`, // root undeclared
		`<!DOCTYPE x [ <!ELEMENT x (a, b | c)> <!ELEMENT a (#PCDATA)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)> ]>`, // mixed separators
		`<!DOCTYPE x [ <!ELEMENT x (#PCDATA)> <!ELEMENT x (#PCDATA)> ]>`,                                                // duplicate
	}
	for _, src := range cases {
		if _, err := ParseDTD(src); err == nil {
			t.Errorf("ParseDTD(%q) should fail", src)
		}
	}
}

const sampleDoc = `<!-- a comment -->
<brochure>
  <number>1</number>
  <title>Golf</title>
  <model>1995</model>
  <desc>Nice &amp; compact</desc>
  <spplrs>
    <supplier><name>VW center</name><address>Bd Lenoir, 75005 Paris</address></supplier>
    <supplier><name>VW2</name><address>Bd Leblanc, 75015 Paris</address></supplier>
  </spplrs>
</brochure>`

func TestParseDocument(t *testing.T) {
	doc := MustParseDocument(sampleDoc)
	if doc.Name != "brochure" || len(doc.Children) != 5 {
		t.Fatalf("doc = %s", doc)
	}
	title, ok := doc.Find("title")
	if !ok || title.Text != "Golf" {
		t.Errorf("title = %v", title)
	}
	desc, _ := doc.Find("desc")
	if desc.Text != "Nice & compact" {
		t.Errorf("entity decoding wrong: %q", desc.Text)
	}
	spplrs, _ := doc.Find("spplrs")
	sups := spplrs.FindAll("supplier")
	if len(sups) != 2 {
		t.Fatalf("suppliers = %d", len(sups))
	}
	name, _ := sups[1].Find("name")
	if name.Text != "VW2" {
		t.Errorf("supplier 2 name = %q", name.Text)
	}
}

func TestDocumentStringRoundTrip(t *testing.T) {
	doc := MustParseDocument(sampleDoc)
	again, err := ParseDocument(doc.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, doc.String())
	}
	if again.String() != doc.String() {
		t.Errorf("round trip unstable")
	}
	// Pretty output parses too.
	pretty, err := ParseDocument(doc.Pretty())
	if err != nil {
		t.Fatalf("pretty reparse: %v", err)
	}
	if pretty.String() != doc.String() {
		t.Errorf("pretty round trip changed content")
	}
}

func TestParseDocumentWithInlineDoctype(t *testing.T) {
	src := BrochureDTDSource + "\n" + sampleDoc
	doc, err := ParseDocument(src)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "brochure" {
		t.Errorf("root = %q", doc.Name)
	}
}

func TestParseDocumentErrors(t *testing.T) {
	cases := []string{
		``,
		`<a>`,
		`<a></b>`,
		`<a><b></b>text</a>`, // mixed content
		`<a>text<b></b></a>`, // mixed content
		`<a></a><b></b>`,     // two roots
		`text only`,
	}
	for _, src := range cases {
		if _, err := ParseDocument(src); err == nil {
			t.Errorf("ParseDocument(%q) should fail", src)
		}
	}
}

func TestValidate(t *testing.T) {
	d := BrochureDTD()
	doc := MustParseDocument(sampleDoc)
	if err := Validate(doc, d); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
	// Zero suppliers is fine: (supplier)*.
	noSups := MustParseDocument(`<brochure><number>1</number><title>t</title>
		<model>1990</model><desc>d</desc><spplrs></spplrs></brochure>`)
	if err := Validate(noSups, d); err != nil {
		t.Errorf("empty spplrs rejected: %v", err)
	}
	// Missing mandatory element.
	missing := MustParseDocument(`<brochure><number>1</number><title>t</title></brochure>`)
	if err := Validate(missing, d); err == nil {
		t.Error("missing elements accepted")
	}
	// Wrong order.
	swapped := MustParseDocument(`<brochure><title>t</title><number>1</number>
		<model>1990</model><desc>d</desc><spplrs></spplrs></brochure>`)
	if err := Validate(swapped, d); err == nil {
		t.Error("wrong element order accepted")
	}
	// Wrong root.
	if err := Validate(MustParseDocument(`<other></other>`), d); err == nil {
		t.Error("wrong root accepted")
	}
	// Supplier missing address.
	badSup := MustParseDocument(`<brochure><number>1</number><title>t</title>
		<model>1990</model><desc>d</desc>
		<spplrs><supplier><name>n</name></supplier></spplrs></brochure>`)
	if err := Validate(badSup, d); err == nil {
		t.Error("incomplete supplier accepted")
	}
	// PCDATA element with children.
	badText := &Element{Name: "number", Children: []*Element{TextElement("x", "y")}}
	bad := MustParseDocument(sampleDoc)
	bad.Children[0] = badText
	if err := Validate(bad, d); err == nil {
		t.Error("children under #PCDATA accepted")
	}
}

func TestValidateChoiceAndPlus(t *testing.T) {
	d := MustParseDTD(`<!DOCTYPE doc [
<!ELEMENT doc (head?, (para | list)+)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT para (#PCDATA)>
<!ELEMENT list (para)+>
]>`)
	good := MustParseDocument(`<doc><para>a</para><list><para>b</para></list></doc>`)
	if err := Validate(good, d); err != nil {
		t.Errorf("valid choice document rejected: %v", err)
	}
	empty := MustParseDocument(`<doc></doc>`)
	if err := Validate(empty, d); err == nil {
		t.Error("(x)+ with zero occurrences accepted")
	}
	emptyList := MustParseDocument(`<doc><list></list></doc>`)
	if err := Validate(emptyList, d); err == nil {
		t.Error("empty (para)+ list accepted")
	}
}

func TestEscapeUnescape(t *testing.T) {
	raw := `a < b & c > "d" 'e'`
	if got := Unescape(Escape(raw)); got != raw {
		t.Errorf("escape round trip: %q", got)
	}
}

func TestFindMissing(t *testing.T) {
	doc := MustParseDocument(sampleDoc)
	if _, ok := doc.Find("absent"); ok {
		t.Error("Find(absent) found")
	}
	if got := doc.FindAll("absent"); len(got) != 0 {
		t.Error("FindAll(absent) nonempty")
	}
}

func TestValidateAnyAndEmpty(t *testing.T) {
	d := MustParseDTD(`<!DOCTYPE doc [
<!ELEMENT doc ANY>
<!ELEMENT leaf EMPTY>
]>`)
	doc := MustParseDocument(`<doc><leaf></leaf><leaf></leaf></doc>`)
	if err := Validate(doc, d); err != nil {
		t.Errorf("ANY content rejected: %v", err)
	}
	badLeaf := MustParseDocument(`<doc><leaf>text</leaf></doc>`)
	if err := Validate(badLeaf, d); err == nil {
		t.Error("EMPTY with text accepted")
	}
}

func TestModelString(t *testing.T) {
	d := MustParseDTD(`<!DOCTYPE doc [
<!ELEMENT doc (a?, b*, c+)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
]>`)
	m, _ := d.Element("doc")
	s := m.String()
	for _, frag := range []string{"a?", "b*", "c+"} {
		if !strings.Contains(s, frag) {
			t.Errorf("model String missing %q: %s", frag, s)
		}
	}
}
