// Package snapshot is the durable warm-start layer: a versioned,
// checksummed on-disk store for one mediator generation — the
// materialized demand store, the per-rule cache (post-deref entries
// plus recorded sources), and the per-generation ask memo.
//
// A snapshot is only ever served when it provably describes the exact
// computation the booting process would perform cold: the envelope
// carries the format version, a hash of the program text, and a hash
// of the result-affecting engine options (builtin registry surface
// included), and any mismatch — format, checksum, program, options,
// or a truncated write — deterministically falls back to a cold boot
// instead of answering from stale conversions. Writes go through a
// temp file in the target directory followed by an atomic rename, so
// a crash mid-write can never leave a loadable half-snapshot: the
// reader either sees the previous complete file or none at all.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"yat/internal/engine"
	"yat/internal/yatl"
)

// FormatVersion is the snapshot format this build writes and the only
// one it reads. Bump it whenever the payload schema or the semantics
// of any field change; old files then fall back to a cold boot.
const FormatVersion = 1

// Reason classifies why a snapshot was rejected. Every reason forces
// the same outcome — a cold boot — but the caller logs and reports
// which invariant failed.
type Reason string

const (
	// ReasonMissing: no snapshot file exists at the path.
	ReasonMissing Reason = "missing"
	// ReasonCorrupt: the file is not a parseable envelope — a
	// truncated write, stray bytes, or not JSON at all.
	ReasonCorrupt Reason = "corrupt"
	// ReasonChecksum: the payload bytes do not hash to the recorded
	// checksum.
	ReasonChecksum Reason = "checksum"
	// ReasonVersion: the envelope's format version is not the one this
	// build understands.
	ReasonVersion Reason = "version"
	// ReasonProgramHash: the snapshot was taken over different program
	// text.
	ReasonProgramHash Reason = "program_hash"
	// ReasonOptionsHash: the snapshot was taken under different
	// result-affecting engine options (registry surface included).
	ReasonOptionsHash Reason = "options_hash"
)

// LoadError reports a snapshot that could not be used, carrying the
// reason the caller falls back to a cold boot on.
type LoadError struct {
	Path   string
	Reason Reason
	Err    error
}

func (e *LoadError) Error() string {
	msg := fmt.Sprintf("snapshot: unusable (%s)", e.Reason)
	if e.Path != "" {
		msg = fmt.Sprintf("snapshot %s: unusable (%s)", e.Path, e.Reason)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *LoadError) Unwrap() error { return e.Err }

// Entry is one named output tree, in the display forms the wire layer
// already round-trips (tree.ParseName and tree.Parse are the inverses
// of Name.String and Node.String).
type Entry struct {
	Name string `json:"name"`
	Tree string `json:"tree"`
}

// RuleCache is one construct or support rule's cached state: its
// committed post-deref entries and the keys of the source inputs that
// directly matched it (the dependency record behind source
// invalidation). A construct rule with no outputs still appears here —
// "cached and empty" and "not cached" are different states.
type RuleCache struct {
	Rule string `json:"rule"`
	// Cached marks a construct rule whose result set is materialized —
	// true even when Entries is empty. Support rules appear with
	// Cached=false, carrying only their source record.
	Cached  bool     `json:"cached"`
	Entries []Entry  `json:"entries,omitempty"`
	Sources []string `json:"sources,omitempty"`
}

// MemoAnswer is one memoized answer: the object's Skolem identity and
// the binding's display forms.
type MemoAnswer struct {
	Name    string            `json:"name"`
	Binding map[string]string `json:"binding,omitempty"`
}

// MemoEntry is one memoized ask: the pattern source text, the functor
// restriction, and the fully-assembled answers in their canonical
// order.
type MemoEntry struct {
	Pattern  string       `json:"pattern"`
	Functors []string     `json:"functors,omitempty"`
	Answers  []MemoAnswer `json:"answers"`
}

// RunStats mirrors engine.Stats for the payload.
type RunStats struct {
	Activations int `json:"activations"`
	Bindings    int `json:"bindings"`
	Outputs     int `json:"outputs"`
	Rounds      int `json:"rounds"`
}

// Generation is the payload: one demand-mode materialization
// lifetime, serialized entirely through the tree layer's canonical
// display syntax so the restore re-parses to byte-identical values.
type Generation struct {
	// Store is the assembled demand store in tree.FormatStore syntax;
	// entry order is the store's insertion order, which the restore
	// preserves (answer determinism depends on it).
	Store string `json:"store"`
	// Rules lists each cached rule's state, sorted by rule name for
	// byte-stable snapshots.
	Rules []RuleCache `json:"rules"`
	// Degraded names sources that were failing during some cached
	// slice run (their recovery invalidates the generation).
	Degraded []string `json:"degraded,omitempty"`
	// Stats accumulates the engine work performed across slice runs.
	Stats RunStats `json:"stats"`
	// Runs counts engine slice executions.
	Runs int64 `json:"runs"`
	// AskMemo carries the memoized ask answers, sorted by (pattern,
	// functors) for byte-stable snapshots.
	AskMemo []MemoEntry `json:"ask_memo,omitempty"`
}

// Snapshot is one complete snapshot: the integrity/identity envelope
// plus the generation payload.
type Snapshot struct {
	// Format is the payload schema version (FormatVersion).
	Format int `json:"format"`
	// ProgramHash identifies the exact program text the generation was
	// computed from (HashProgram).
	ProgramHash string `json:"program_hash"`
	// OptionsHash identifies the result-affecting engine options and
	// the builtin registry surface (HashOptions).
	OptionsHash string `json:"options_hash"`
	// Program is the program's display name, for logs only — identity
	// is ProgramHash.
	Program string `json:"program"`
	// Generation is the mediator generation number the snapshot was
	// taken at, for logs and stats only.
	Generation int64 `json:"generation"`
	// Payload is the generation itself.
	Payload *Generation `json:"-"`
}

// envelope is the on-disk shape: the payload rides as raw JSON, and
// the checksum covers its compact form — canonical bytes independent
// of the file's pretty-printing — so any payload tampering or torn
// write fails the hash.
type envelope struct {
	Format      int             `json:"format"`
	ProgramHash string          `json:"program_hash"`
	OptionsHash string          `json:"options_hash"`
	Program     string          `json:"program"`
	Generation  int64           `json:"generation"`
	Checksum    string          `json:"checksum"`
	Payload     json.RawMessage `json:"payload"`
}

func sum(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// HashProgram is the canonical hash of a program: sha256 over its
// concrete-syntax rendering, which covers the name, models, orders
// and every rule's text — exactly the inputs rule evaluation depends
// on.
func HashProgram(prog *yatl.Program) string {
	return sum([]byte(prog.String()))
}

// HashOptions is the canonical hash of the result-affecting engine
// options: the registry fingerprint (names and type signatures of
// every callable), the model environments, the fixpoint bound, the
// non-determinism policy, the output checker, and the safety/optimizer
// toggles. Parallelism and tracing are deliberately excluded — the
// engine guarantees byte-identical outputs at every worker count, and
// a sink observes a run without changing it — so a snapshot taken at
// one parallelism restores at any other.
func HashOptions(opts *engine.Options) string {
	if opts == nil {
		opts = &engine.Options{}
	}
	model := ""
	if opts.Model != nil {
		model = opts.Model.String()
	}
	check := ""
	if opts.CheckOutputs != nil {
		check = opts.CheckOutputs.String()
	}
	doc := fmt.Sprintf("registry=%s\nmodel=%s\ncheck_outputs=%s\nmax_rounds=%d\nnondet_warn=%t\ndisable_safety=%t\nno_optimize=%t\n",
		opts.Registry.Fingerprint(), model, check,
		opts.MaxRounds, opts.NonDetWarn, opts.DisableSafety, opts.NoOptimize)
	return sum([]byte(doc))
}

// Encode renders the snapshot as its on-disk bytes: payload
// marshaled, checksummed, and wrapped in the envelope.
func (s *Snapshot) Encode() ([]byte, error) {
	if s.Payload == nil {
		return nil, fmt.Errorf("snapshot: nil payload")
	}
	raw, err := json.Marshal(s.Payload)
	if err != nil {
		return nil, fmt.Errorf("snapshot: marshaling payload: %w", err)
	}
	env := envelope{
		Format:      s.Format,
		ProgramHash: s.ProgramHash,
		OptionsHash: s.OptionsHash,
		Program:     s.Program,
		Generation:  s.Generation,
		Checksum:    sum(raw),
		Payload:     raw,
	}
	return json.MarshalIndent(env, "", " ")
}

// Write persists the snapshot at path atomically and returns the
// byte count written: the bytes go to a temp file in the same
// directory (same filesystem, so the rename is atomic), are synced,
// and the rename replaces any previous snapshot in one step. A crash
// at any point leaves either the old complete file or a stray temp
// file the next Read never looks at.
func Write(path string, s *Snapshot) (int, error) {
	data, err := s.Encode()
	if err != nil {
		return 0, err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	tmpName := tmp.Name()
	// Any failure from here on removes the temp file; the previous
	// snapshot (if any) is untouched.
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
	} else {
		tmp.Close()
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("snapshot: writing %s: %w", path, err)
	}
	return len(data), nil
}

// Read loads and integrity-checks the snapshot at path. Identity
// (program/options hashes) is the caller's check — only the caller
// knows what it is about to serve; Verify does it. Every failure is a
// *LoadError whose Reason says which fallback-to-cold invariant fired.
func Read(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &LoadError{Path: path, Reason: ReasonMissing, Err: err}
		}
		return nil, &LoadError{Path: path, Reason: ReasonCorrupt, Err: err}
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, &LoadError{Path: path, Reason: ReasonCorrupt, Err: err}
	}
	if env.Format != FormatVersion {
		return nil, &LoadError{Path: path, Reason: ReasonVersion,
			Err: fmt.Errorf("format %d, this build reads %d", env.Format, FormatVersion)}
	}
	if len(env.Payload) == 0 {
		return nil, &LoadError{Path: path, Reason: ReasonCorrupt, Err: fmt.Errorf("empty payload")}
	}
	// The checksum covers the payload's compact form — the canonical
	// bytes Encode hashed — not the pretty-printed layout of the file.
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Payload); err != nil {
		return nil, &LoadError{Path: path, Reason: ReasonCorrupt, Err: err}
	}
	if got := sum(compact.Bytes()); got != env.Checksum {
		return nil, &LoadError{Path: path, Reason: ReasonChecksum,
			Err: fmt.Errorf("payload hashes to %.12s, envelope records %.12s", got, env.Checksum)}
	}
	var payload Generation
	if err := json.Unmarshal(env.Payload, &payload); err != nil {
		return nil, &LoadError{Path: path, Reason: ReasonCorrupt, Err: err}
	}
	return &Snapshot{
		Format:      env.Format,
		ProgramHash: env.ProgramHash,
		OptionsHash: env.OptionsHash,
		Program:     env.Program,
		Generation:  env.Generation,
		Payload:     &payload,
	}, nil
}

// Verify checks the snapshot's identity against the program and
// options the caller is about to serve. The returned *LoadError
// carries no path — the mediator does not know where the snapshot
// came from; callers that do (serve's boot path) log it alongside.
func (s *Snapshot) Verify(programHash, optionsHash string) error {
	if s.ProgramHash != programHash {
		return &LoadError{Reason: ReasonProgramHash,
			Err: fmt.Errorf("snapshot program %.12s, serving %.12s", s.ProgramHash, programHash)}
	}
	if s.OptionsHash != optionsHash {
		return &LoadError{Reason: ReasonOptionsHash,
			Err: fmt.Errorf("snapshot options %.12s, serving %.12s", s.OptionsHash, optionsHash)}
	}
	return nil
}
