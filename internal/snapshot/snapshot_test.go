package snapshot

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"yat/internal/engine"
	"yat/internal/tree"
	"yat/internal/yatl"
)

func sample() *Snapshot {
	return &Snapshot{
		Format:      FormatVersion,
		ProgramHash: "prog-hash",
		OptionsHash: "opts-hash",
		Program:     "selective",
		Generation:  3,
		Payload: &Generation{
			Store: "&o1:Pview1 view < name -> \"acme\" >\n",
			Rules: []RuleCache{
				{Rule: "View1", Cached: true,
					Entries: []Entry{{Name: "&o1:Pview1", Tree: `view < name -> "acme" >`}},
					Sources: []string{"b1:Pbr"}},
				{Rule: "Empty", Cached: true},
				{Rule: "Support", Sources: []string{"b2:Pbr"}},
			},
			Degraded: []string{"src1"},
			Stats:    RunStats{Activations: 4, Bindings: 9, Outputs: 2, Rounds: 3},
			Runs:     2,
			AskMemo: []MemoEntry{{
				Pattern:  `view < -> name -> N >`,
				Functors: []string{"Pview1"},
				Answers:  []MemoAnswer{{Name: "&o1:Pview1", Binding: map[string]string{"N": `"acme"`}}},
			}},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	want := sample()
	n, err := Write(path, want)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || int(fi.Size()) != n {
		t.Fatalf("Write reported %d bytes, file is %v %v", n, fi, err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Format != want.Format || got.ProgramHash != want.ProgramHash ||
		got.OptionsHash != want.OptionsHash || got.Program != want.Program ||
		got.Generation != want.Generation {
		t.Fatalf("envelope mismatch: got %+v", got)
	}
	wantPayload, _ := json.Marshal(want.Payload)
	gotPayload, _ := json.Marshal(got.Payload)
	if string(wantPayload) != string(gotPayload) {
		t.Fatalf("payload mismatch:\n got %s\nwant %s", gotPayload, wantPayload)
	}
	if err := got.Verify("prog-hash", "opts-hash"); err != nil {
		t.Fatalf("Verify on matching hashes: %v", err)
	}
}

func TestWriteReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	if _, err := Write(path, sample()); err != nil {
		t.Fatal(err)
	}
	second := sample()
	second.Generation = 9
	if _, err := Write(path, second); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 9 {
		t.Fatalf("read generation %d after overwrite, want 9", got.Generation)
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(filepath.Dir(path))
	if len(entries) != 1 {
		t.Fatalf("stray files after writes: %v", entries)
	}
}

// reasonOf asserts err is a *LoadError and returns its reason.
func reasonOf(t *testing.T, err error) Reason {
	t.Helper()
	var lerr *LoadError
	if !errors.As(err, &lerr) {
		t.Fatalf("want *LoadError, got %T: %v", err, err)
	}
	return lerr.Reason
}

func TestReadMissing(t *testing.T) {
	_, err := Read(filepath.Join(t.TempDir(), "nope.json"))
	if got := reasonOf(t, err); got != ReasonMissing {
		t.Fatalf("reason %q, want %q", got, ReasonMissing)
	}
}

func TestReadCorruptJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := os.WriteFile(path, []byte("not json at all{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := reasonOf(t, readErr(t, path)); got != ReasonCorrupt {
		t.Fatalf("reason %q, want %q", got, ReasonCorrupt)
	}
}

func TestReadTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	if _, err := Write(path, sample()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A torn write that somehow bypassed the rename protocol: the file
	// ends mid-envelope.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if got := reasonOf(t, readErr(t, path)); got != ReasonCorrupt {
		t.Fatalf("reason %q, want %q", got, ReasonCorrupt)
	}
}

func TestReadVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	s := sample()
	s.Format = FormatVersion + 1
	if _, err := Write(path, s); err != nil {
		t.Fatal(err)
	}
	if got := reasonOf(t, readErr(t, path)); got != ReasonVersion {
		t.Fatalf("reason %q, want %q", got, ReasonVersion)
	}
}

func TestReadChecksumMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	if _, err := Write(path, sample()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the payload, keeping the envelope valid JSON.
	tampered := strings.Replace(string(data), "acme", "evil", 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := reasonOf(t, readErr(t, path)); got != ReasonChecksum {
		t.Fatalf("reason %q, want %q", got, ReasonChecksum)
	}
}

// A crash between CreateTemp and Rename leaves a stray temp file and
// the previous complete snapshot; Read never looks at the temp file.
func TestStrayTempFileIgnored(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	if _, err := Write(path, sample()); err != nil {
		t.Fatal(err)
	}
	junk := filepath.Join(dir, "snap.json.tmp-123456")
	if err := os.WriteFile(junk, []byte(`{"format":1,"payload":"gar`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 3 {
		t.Fatalf("read generation %d, want the intact snapshot's 3", got.Generation)
	}
}

func TestVerifyMismatches(t *testing.T) {
	s := sample()
	if got := reasonOf(t, s.Verify("other", "opts-hash")); got != ReasonProgramHash {
		t.Fatalf("reason %q, want %q", got, ReasonProgramHash)
	}
	if got := reasonOf(t, s.Verify("prog-hash", "other")); got != ReasonOptionsHash {
		t.Fatalf("reason %q, want %q", got, ReasonOptionsHash)
	}
}

func readErr(t *testing.T, path string) error {
	t.Helper()
	_, err := Read(path)
	if err == nil {
		t.Fatal("Read succeeded, want error")
	}
	return err
}

func TestHashProgramDiscriminates(t *testing.T) {
	p1 := yatl.MustParse(yatl.SGMLToODMGSource)
	p2 := yatl.MustParse(yatl.SGMLToODMGSource)
	if HashProgram(p1) != HashProgram(p2) {
		t.Fatal("identical programs hash differently")
	}
	p3 := yatl.MustParse(yatl.WebProgramSource)
	if HashProgram(p1) == HashProgram(p3) {
		t.Fatal("distinct programs hash identically")
	}
}

// HashOptions covers the registry surface and the result-affecting
// knobs, and deliberately ignores parallelism (outputs are
// byte-identical at every worker count).
func TestHashOptionsDiscriminates(t *testing.T) {
	base := engine.NewOptions()
	if HashOptions(base) != HashOptions(engine.NewOptions()) {
		t.Fatal("identical options hash differently")
	}
	if HashOptions(base) != HashOptions(nil) {
		t.Fatal("nil options differ from the zero options")
	}
	par := engine.NewOptions(engine.WithParallelism(8))
	if HashOptions(base) != HashOptions(par) {
		t.Fatal("parallelism must not affect the options hash")
	}
	rounds := engine.NewOptions(engine.WithMaxRounds(7))
	if HashOptions(base) == HashOptions(rounds) {
		t.Fatal("MaxRounds must affect the options hash")
	}
	reg := engine.NewRegistry()
	reg.Register(engine.Func{Name: "extra", Fn: func(args []tree.Value) (tree.Value, error) {
		return tree.String("x"), nil
	}})
	withReg := engine.NewOptions(engine.WithRegistry(reg))
	if HashOptions(base) == HashOptions(withReg) {
		t.Fatal("registry surface must affect the options hash")
	}
}
